// Command tracesum reduces a JSONL telemetry trace (produced by the
// -trace-out flag of vodplace/vodexp/vodsim) to a convergence summary: the
// per-pass series of every EPF stream rendered as a table or CSV, per-bin
// simulator streams condensed to totals, and — under -check — a
// monotonicity audit of the bound series (the lower bound may only rise,
// the duality gap may only fall; a violation means the solver lied about a
// bound and the trace is evidence).
//
// Usage:
//
//	tracesum [-csv] [-check] [trace.jsonl]
//
// With no file argument the trace is read from stdin. Output contains only
// deterministic event fields (wall-time stamps are dropped), so a
// fixed-seed trace summarizes bit-identically at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"vodplace/internal/obs"
)

func main() {
	var (
		csv   = flag.Bool("csv", false, "emit the per-pass EPF series as CSV instead of a table")
		check = flag.Bool("check", false, "exit nonzero when a bound series is non-monotone")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracesum: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	events, err := obs.ParseTrace(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracesum: %v\n", err)
		os.Exit(1)
	}
	sum := summarize(events)
	if *csv {
		sum.writeCSV(os.Stdout)
	} else {
		sum.writeTable(os.Stdout)
	}
	if *check {
		if bad := sum.monotoneViolations(); len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintf(os.Stderr, "tracesum: %s\n", m)
			}
			os.Exit(1)
		}
	}
}

// epfStream is one solver stream's pass series plus its optional summary.
type epfStream struct {
	name   string
	passes []obs.Event
	done   *obs.Event
	spans  []obs.Event
	// shards holds the stream's per-shard accounting events. Solvers emit
	// them only for multi-shard solves, so single-shard traces summarize
	// byte-identically to pre-sharding ones.
	shards []obs.Event
}

// simStream is one simulator stream's bin series.
type simStream struct {
	name   string
	slices []obs.Event
}

// summary is everything tracesum derives from a trace.
type summary struct {
	epf []*epfStream
	sim []*simStream
}

// summarize groups the events by stream, preserving first-appearance order
// so output order is as deterministic as the trace itself.
func summarize(events []obs.Event) *summary {
	s := &summary{}
	epfIdx := map[string]*epfStream{}
	simIdx := map[string]*simStream{}
	epfFor := func(name string) *epfStream {
		st, ok := epfIdx[name]
		if !ok {
			st = &epfStream{name: name}
			epfIdx[name] = st
			s.epf = append(s.epf, st)
		}
		return st
	}
	for i := range events {
		e := events[i]
		switch e.K {
		case "epf_pass":
			epfFor(e.Stream).passes = append(epfFor(e.Stream).passes, e)
		case "epf_done":
			ec := e
			epfFor(e.Stream).done = &ec
		case "span":
			epfFor(e.Stream).spans = append(epfFor(e.Stream).spans, e)
		case "epf_shard":
			epfFor(e.Stream).shards = append(epfFor(e.Stream).shards, e)
		case "sim_slice":
			st, ok := simIdx[e.Stream]
			if !ok {
				st = &simStream{name: e.Stream}
				simIdx[e.Stream] = st
				s.sim = append(s.sim, st)
			}
			st.slices = append(st.slices, e)
		}
	}
	return s
}

func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeCSV emits every EPF pass event as one CSV row. Only deterministic
// fields appear (no ms column).
func (s *summary) writeCSV(w io.Writer) {
	fmt.Fprintln(w, "stream,pass,phi,obj,lb,ub,gap,ubgap,viol,lmax,lmean,delta,blocks,warm")
	for _, st := range s.epf {
		for _, e := range st.passes {
			fmt.Fprintf(w, "%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%d,%d\n",
				csvEscape(st.name), e.Pass, g(e.Phi), g(e.Objective), g(e.LowerBound), g(e.UpperBound),
				g(e.Gap), g(e.UBGap), g(e.MaxViol), g(e.MaxLinkUtil), g(e.MeanLinkUtil), g(e.Delta),
				e.Blocks, e.WarmHits)
		}
	}
}

func csvEscape(v string) string {
	if !strings.ContainsAny(v, ",\"\n") {
		return v
	}
	return `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
}

// writeTable renders the human summary: per-stream pass rows in the shared
// console format, the convergence endpoint, the monotonicity verdicts and
// the simulator stream totals.
func (s *summary) writeTable(w io.Writer) {
	for _, st := range s.epf {
		if len(st.passes) == 0 && st.done == nil {
			continue
		}
		fmt.Fprintf(w, "== %s ==\n", st.name)
		for _, e := range st.passes {
			fmt.Fprintln(w, obs.PassRow(e.Pass, e.Objective, e.LowerBound, e.MaxViol))
		}
		if n := len(st.passes); n > 0 {
			last := st.passes[n-1]
			fmt.Fprintf(w, "passes %d  final obj %.1f  lb %.1f  gap %.2f%%", n, last.Objective, last.LowerBound, 100*last.Gap)
			if last.UBGap >= 0 {
				fmt.Fprintf(w, "  duality gap %.2f%%", 100*last.UBGap)
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "lower bound monotone nondecreasing: %v\n", monotoneLB(st.passes) == "")
			fmt.Fprintf(w, "duality gap monotone nonincreasing: %v\n", monotoneUBGap(st.passes) == "")
		}
		if d := st.done; d != nil {
			fmt.Fprintf(w, "done: passes %d  obj %.1f  lb %.1f  gap %.2f%%  converged %v  rounded %v\n",
				d.Passes, d.Objective, d.LowerBound, 100*d.Gap, d.Converged, d.Rounded)
		}
		// Per-shard accounting, present only for multi-shard solves. Every
		// field is deterministic (the block tallies are accumulated on the
		// driver in shard order), so these lines are golden-stable too.
		var shardBlocks int64
		for _, e := range st.shards {
			fmt.Fprintf(w, "shard %d  videos %d  nnz %d  blocks %d\n", e.Shard, e.Videos, e.NNZ, e.Blocks)
			shardBlocks += e.Blocks
		}
		if len(st.shards) > 0 {
			fmt.Fprintf(w, "shards %d  block solves %d\n", len(st.shards), shardBlocks)
		}
		fmt.Fprintln(w)
	}
	s.writePassTrends(w)
	for _, st := range s.sim {
		if len(st.slices) == 0 {
			continue
		}
		var peak, util, gbhop float64
		var req, remote, evict int
		for _, e := range st.slices {
			if e.PeakMbps > peak {
				peak = e.PeakMbps
			}
			if e.MaxUtil > util {
				util = e.MaxUtil
			}
			gbhop += e.GBHop
			req += e.Requests
			remote += e.RemoteServed
			evict += e.Evictions
		}
		local := 0.0
		if req > 0 {
			local = float64(req-remote) / float64(req)
		}
		fmt.Fprintf(w, "== sim %s ==\n", st.name)
		fmt.Fprintf(w, "bins %d  peak %.0f Mb/s  max util %.3f  total %.0f GBxhop  requests %d  local %.2f%%  evictions %d\n\n",
			len(st.slices), peak, util, gbhop, req, 100*local, evict)
	}
}

// dayStream splits a per-period stream name ("mip.day07") into its scheme
// prefix and day label. Streams without the suffix are not part of a
// multi-period pipeline and produce no trend row.
func dayStream(name string) (prefix, day string, ok bool) {
	i := strings.LastIndex(name, ".day")
	if i < 0 {
		return "", "", false
	}
	day = name[i+len(".day"):]
	if day == "" {
		return "", "", false
	}
	for _, c := range day {
		if c < '0' || c > '9' {
			return "", "", false
		}
	}
	return name[:i], day, true
}

// streamPasses is the stream's pass count: the solver's own final count when
// the stream carries a done event, the number of pass events otherwise (a
// truncated trace).
func streamPasses(st *epfStream) int {
	if st.done != nil {
		return st.done.Passes
	}
	return len(st.passes)
}

// writePassTrends renders one trend block per multi-period scheme: the
// per-day pass counts in day order plus the first/last/total line that shows
// at a glance whether convergence effort shrinks across periods — the
// headline signal for cross-period warm starts. Traces without day-grouped
// streams (single solves) produce no output here, keeping their summaries
// byte-identical.
func (s *summary) writePassTrends(w io.Writer) {
	type trend struct {
		prefix  string
		streams []*epfStream
	}
	var trends []*trend
	idx := map[string]*trend{}
	for _, st := range s.epf {
		prefix, _, ok := dayStream(st.name)
		if !ok || (len(st.passes) == 0 && st.done == nil) {
			continue
		}
		tr, seen := idx[prefix]
		if !seen {
			tr = &trend{prefix: prefix}
			idx[prefix] = tr
			trends = append(trends, tr)
		}
		tr.streams = append(tr.streams, st)
	}
	for _, tr := range trends {
		// Streams appear in solve order, which is day order by construction;
		// sort by day label anyway so a merged trace still reads correctly.
		sort.SliceStable(tr.streams, func(a, b int) bool {
			_, da, _ := dayStream(tr.streams[a].name)
			_, db, _ := dayStream(tr.streams[b].name)
			return da < db
		})
		fmt.Fprintf(w, "== passes trend: %s ==\n", tr.prefix)
		total := 0
		for _, st := range tr.streams {
			_, day, _ := dayStream(st.name)
			p := streamPasses(st)
			total += p
			fmt.Fprintf(w, "day %s  passes %3d", day, p)
			if st.done != nil {
				fmt.Fprintf(w, "  converged %v", st.done.Converged)
			}
			fmt.Fprintln(w)
		}
		first := streamPasses(tr.streams[0])
		last := streamPasses(tr.streams[len(tr.streams)-1])
		fmt.Fprintf(w, "first %d  last %d  total %d\n\n", first, last, total)
	}
}

// relTol is the relative slack the monotonicity audit allows: bound updates
// inside the solver use exact comparisons, so anything beyond float noise
// is a genuine regression.
const relTol = 1e-9

// monotoneLB returns "" when the stream's lower bound never decreases, else
// a description of the first violation.
func monotoneLB(passes []obs.Event) string {
	for i := 1; i < len(passes); i++ {
		prev, cur := passes[i-1].LowerBound, passes[i].LowerBound
		if cur < prev-relTol*abs(prev) {
			return fmt.Sprintf("lower bound fell %s -> %s at pass %d", g(prev), g(cur), passes[i].Pass)
		}
	}
	return ""
}

// monotoneUBGap returns "" when the duality-gap series never rises over the
// suffix where it is defined (≥ 0; −1 encodes "no incumbent yet", and an
// incumbent never disappears once found).
func monotoneUBGap(passes []obs.Event) string {
	started := false
	var prev float64
	for i := range passes {
		cur := passes[i].UBGap
		if cur < 0 {
			if started {
				return fmt.Sprintf("duality gap became undefined at pass %d after being defined", passes[i].Pass)
			}
			continue
		}
		if started && cur > prev+relTol*abs(prev) {
			return fmt.Sprintf("duality gap rose %s -> %s at pass %d", g(prev), g(cur), passes[i].Pass)
		}
		started = true
		prev = cur
	}
	return ""
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// monotoneViolations audits every EPF stream and returns one message per
// violated series, in stream order (stable across runs).
func (s *summary) monotoneViolations() []string {
	var out []string
	for _, st := range s.epf {
		if m := monotoneLB(st.passes); m != "" {
			out = append(out, st.name+": "+m)
		}
		if m := monotoneUBGap(st.passes); m != "" {
			out = append(out, st.name+": "+m)
		}
	}
	sort.Strings(out)
	return out
}
