package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vodplace/internal/catalog"
	"vodplace/internal/core"
	"vodplace/internal/epf"
	"vodplace/internal/obs"
	"vodplace/internal/topology"
	"vodplace/internal/verify"
	"vodplace/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden summary")

// solveTraced runs a fixed-seed integer solve with tracing on and returns
// the raw JSONL trace. Workers is pinned to 2 — the trace must not depend on
// it (see TestSummaryWorkerInvariance), but pinning keeps the golden's
// provenance explicit.
func solveTraced(t *testing.T, workers int) []byte {
	return solveTracedSharded(t, workers, 0)
}

// solveTracedSharded is solveTraced with a forced shard count; 0 keeps the
// solver's default single-shard layout.
func solveTracedSharded(t *testing.T, workers, shards int) []byte {
	t.Helper()
	inst, err := verify.RandomInstance(11, verify.InstanceOpts{Nodes: 8, Videos: 40, Slices: 2}.Defaults())
	if err != nil {
		t.Fatalf("RandomInstance: %v", err)
	}
	var buf bytes.Buffer
	rec := obs.New(&buf)
	if _, err := epf.SolveInteger(inst, epf.Options{
		Seed: 11, MaxPasses: 60, Workers: workers, Shards: shards, Recorder: rec,
	}); err != nil {
		t.Fatalf("SolveInteger: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// summaryFor reduces a trace exactly the way the CLI does.
func summaryFor(t *testing.T, trace []byte) *summary {
	t.Helper()
	events, err := obs.ParseTrace(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	return summarize(events)
}

// TestGoldenSummary pins tracesum's table output for a fixed-seed quick
// solve. The table contains only deterministic trace fields, so this golden
// is stable across machines and worker counts; regenerate with -update after
// an intentional solver or format change.
func TestGoldenSummary(t *testing.T) {
	sum := summaryFor(t, solveTraced(t, 2))
	var out bytes.Buffer
	sum.writeTable(&out)

	golden := filepath.Join("testdata", "quick.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("summary drifted from golden (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}

	// The same solve must pass the monotonicity audit the CLI's -check runs.
	if bad := sum.monotoneViolations(); len(bad) > 0 {
		t.Errorf("monotonicity violations in a clean solve: %v", bad)
	}
}

// TestGoldenShardedSummary pins the summary of the same solve run over three
// catalog shards: identical pass series and endpoint (sharding never changes
// numerics), plus the per-shard accounting block that only multi-shard traces
// carry. Regenerate with -update after an intentional change.
func TestGoldenShardedSummary(t *testing.T) {
	sum := summaryFor(t, solveTracedSharded(t, 2, 3))
	var out bytes.Buffer
	sum.writeTable(&out)

	if !strings.Contains(out.String(), "shard 0  videos ") {
		t.Fatalf("sharded summary missing per-shard block:\n%s", out.String())
	}

	golden := filepath.Join("testdata", "sharded.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("sharded summary drifted from golden (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}
	if bad := sum.monotoneViolations(); len(bad) > 0 {
		t.Errorf("monotonicity violations in a clean sharded solve: %v", bad)
	}
}

// TestSummaryShardInvariance: the CSV reduction (pass rows only) of a
// fixed-seed trace is bit-identical at any shard count — the tool-layer view
// of the bit-identity acceptance criterion.
func TestSummaryShardInvariance(t *testing.T) {
	var base bytes.Buffer
	summaryFor(t, solveTraced(t, 1)).writeCSV(&base)
	for _, shards := range []int{2, 5} {
		var got bytes.Buffer
		summaryFor(t, solveTracedSharded(t, 4, shards)).writeCSV(&got)
		if !bytes.Equal(base.Bytes(), got.Bytes()) {
			t.Errorf("CSV summary differs between unsharded and %d shards", shards)
		}
	}
}

// TestSummaryWorkerInvariance asserts the acceptance criterion directly at
// the tool layer: the CSV reduction of a fixed-seed trace is bit-identical
// at any worker count.
func TestSummaryWorkerInvariance(t *testing.T) {
	var base bytes.Buffer
	summaryFor(t, solveTraced(t, 1)).writeCSV(&base)
	for _, workers := range []int{2, 5} {
		var got bytes.Buffer
		summaryFor(t, solveTraced(t, workers)).writeCSV(&got)
		if !bytes.Equal(base.Bytes(), got.Bytes()) {
			t.Errorf("CSV summary differs between 1 and %d workers", workers)
		}
	}
}

// TestCSVShape sanity-checks the CSV header and row count against the
// table's pass count.
func TestCSVShape(t *testing.T) {
	trace := solveTraced(t, 2)
	sum := summaryFor(t, trace)
	var out bytes.Buffer
	sum.writeCSV(&out)
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if lines[0] != "stream,pass,phi,obj,lb,ub,gap,ubgap,viol,lmax,lmean,delta,blocks,warm" {
		t.Fatalf("header = %q", lines[0])
	}
	passes := 0
	for _, st := range sum.epf {
		passes += len(st.passes)
	}
	if got := len(lines) - 1; got != passes || passes == 0 {
		t.Fatalf("%d CSV rows for %d passes", got, passes)
	}
}

// TestMonotoneAudit feeds the checker hand-built violating series to prove
// -check actually fires.
func TestMonotoneAudit(t *testing.T) {
	mk := func(lbs, ubgaps []float64) []obs.Event {
		var evs []obs.Event
		for i := range lbs {
			evs = append(evs, obs.Event{K: "epf_pass", Stream: "s", Pass: i + 1,
				LowerBound: lbs[i], UBGap: ubgaps[i]})
		}
		return evs
	}
	cases := []struct {
		name   string
		events []obs.Event
		bad    bool
	}{
		{"clean", mk([]float64{1, 2, 2, 3}, []float64{-1, 0.5, 0.5, 0.2}), false},
		{"lb falls", mk([]float64{1, 2, 1.5}, []float64{-1, -1, -1}), true},
		{"gap rises", mk([]float64{1, 1, 1}, []float64{0.2, 0.2, 0.3}), true},
		{"gap vanishes", mk([]float64{1, 1}, []float64{0.2, -1}), true},
		{"float noise tolerated", mk([]float64{1, 1 - 1e-13}, []float64{-1, -1}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := summarize(tc.events).monotoneViolations()
			if (len(bad) > 0) != tc.bad {
				t.Errorf("violations = %v, want bad=%v", bad, tc.bad)
			}
		})
	}
}

// pipelineTraced runs a small fixed-seed multi-period warm pipeline with
// tracing on and returns the raw JSONL trace: three day-grouped EPF streams
// (mip.day07..mip.day09) plus the simulator stream.
func pipelineTraced(t *testing.T) []byte {
	t.Helper()
	g := topology.Random(6, 1.2, 4)
	lib := catalog.Generate(catalog.Config{NumVideos: 80, Weeks: 2}, 6)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 10, NumVHOs: 6, RequestsPerVideoPerDay: 10,
	}, 9)
	sys := &core.System{
		G:           g,
		Lib:         lib,
		DiskGB:      core.UniformDisk(lib, 6, 2.0),
		LinkCapMbps: core.UniformLinks(g, 20000),
	}
	var buf bytes.Buffer
	rec := obs.New(&buf)
	_, err := sys.RunMIP(tr, core.MIPOptions{
		UpdateEveryDays: 1,
		UpdateWeight:    0.5,
		Warm:            true,
		Solver:          epf.Options{Seed: 1, MaxPasses: 200, Epsilon: 0.05},
		Recorder:        rec,
	})
	if err != nil {
		t.Fatalf("RunMIP: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenPipelineSummary pins the summary of a warm multi-period trace,
// including the per-scheme passes-trend block that only day-grouped streams
// produce. Regenerate with -update after an intentional change.
func TestGoldenPipelineSummary(t *testing.T) {
	sum := summaryFor(t, pipelineTraced(t))
	var out bytes.Buffer
	sum.writeTable(&out)

	if !strings.Contains(out.String(), "== passes trend: mip ==") {
		t.Fatalf("pipeline summary missing passes-trend block:\n%s", out.String())
	}

	golden := filepath.Join("testdata", "pipeline.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("pipeline summary drifted from golden (re-run with -update if intentional)\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}
	if bad := sum.monotoneViolations(); len(bad) > 0 {
		t.Errorf("monotonicity violations in a clean pipeline: %v", bad)
	}
}

// TestDayStream pins the stream-name parser the trend block relies on.
func TestDayStream(t *testing.T) {
	cases := []struct {
		name, prefix, day string
		ok                bool
	}{
		{"mip.day07", "mip", "07", true},
		{"fig2.mip.day14", "fig2.mip", "14", true},
		{"epf", "", "", false},
		{"mip.day", "", "", false},
		{"mip.dayXX", "", "", false},
	}
	for _, tc := range cases {
		prefix, day, ok := dayStream(tc.name)
		if prefix != tc.prefix || day != tc.day || ok != tc.ok {
			t.Errorf("dayStream(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.name, prefix, day, ok, tc.prefix, tc.day, tc.ok)
		}
	}
}
