package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vodplace/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden summaries")

func loadTrace(t *testing.T, name string) []obs.Event {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ParseTrace(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return events
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestSummaryGolden pins the full table for the healthy fixture trace —
// resolves with verdict breakdown, swap timeline with lifetimes, demand
// totals — byte for byte.
func TestSummaryGolden(t *testing.T) {
	events := loadTrace(t, "serve_ok.trace.jsonl")
	var b bytes.Buffer
	summarize(events).writeTable(&b)
	checkGolden(t, "serve_ok.golden", b.Bytes())
}

// TestLatencyGolden pins the -metrics report from a committed /metrics
// snapshot: per-endpoint class counts and the conservative quantiles.
func TestLatencyGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := obs.ParseProm(f)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	writeLatency(&b, samples)
	checkGolden(t, "metrics.golden", b.Bytes())
}

// TestCheckClean proves the healthy fixture passes every invariant.
func TestCheckClean(t *testing.T) {
	if bad := violations(loadTrace(t, "serve_ok.trace.jsonl")); len(bad) != 0 {
		t.Errorf("clean trace flagged: %v", bad)
	}
}

// TestCheckViolations proves each committed violating fixture trips exactly
// the invariant it was built to violate.
func TestCheckViolations(t *testing.T) {
	for _, tc := range []struct {
		trace string
		want  []string
	}{
		{"bad_version.trace.jsonl", []string{
			"swap version not strictly increasing: v2 after v3",
		}},
		{"bad_noaudit.trace.jsonl", []string{
			"swap v2 without a swapped resolve verdict (audit gate bypassed?)",
		}},
		{"bad_gap.trace.jsonl", []string{
			"resolve start v3 while v2 still open",
			"resolve done v4 (failed) closes start v3",
			"resolve done v4 (cancelled) without a matching start",
			"resolve start v5 never completed",
		}},
	} {
		got := violations(loadTrace(t, tc.trace))
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d violations %v, want %d", tc.trace, len(got), got, len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: violation %d = %q, want %q", tc.trace, i, got[i], tc.want[i])
			}
		}
	}
}

// TestCheckDeltaEconomy covers invariant 4 and the -expect-delta predicate:
// the healthy fixture contains an incremental swap, a rebuilt count larger
// than the table is flagged, and a trace whose every swap is a full rebuild
// fails the expectation.
func TestCheckDeltaEconomy(t *testing.T) {
	events := loadTrace(t, "serve_ok.trace.jsonl")
	if !hasIncrementalSwap(events) {
		t.Error("healthy fixture has an incremental swap, predicate missed it")
	}
	if bad := violations(events); len(bad) != 0 {
		t.Errorf("healthy fixture flagged: %v", bad)
	}

	over := []obs.Event{{K: "serve_swap", Version: 2, Rows: 40, Rebuilt: 41}}
	found := false
	for _, m := range violations(over) {
		if m == "swap v2 rebuilt 41 of 40 route rows (count outside the table)" {
			found = true
		}
	}
	if !found {
		t.Errorf("rebuilt > rows not flagged: %v", violations(over))
	}

	full := []obs.Event{{K: "serve_swap", Version: 2, Rows: 40, Rebuilt: 40}}
	if hasIncrementalSwap(full) {
		t.Error("full-rebuild-only trace satisfied -expect-delta")
	}
	if hasIncrementalSwap(nil) {
		t.Error("empty trace satisfied -expect-delta")
	}
}

// TestCheckRealTrace runs the checker over a trace the real recorder
// emitted, closing the loop between the emitters in internal/obs and the
// invariants asserted here.
func TestCheckRealTrace(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.New(&buf)
	rec.RecordServeResolve(obs.ServeResolve{Phase: "start", Version: 2, Trigger: "demand"})
	rec.RecordServeSwap(obs.ServeSwap{Version: 2, RDelta: 9, BuildMS: 0.5})
	rec.RecordServeResolve(obs.ServeResolve{
		Phase: "done", Version: 2, Trigger: "demand", Verdict: "swapped",
		WarmFrac: 0.8, Passes: 6, SolveMS: 12, AuditMS: 0.5, BuildMS: 0.5,
	})
	rec.RecordServeDemand(obs.ServeDemand{Batch: 3, Drift: 42})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bad := violations(events); len(bad) != 0 {
		t.Errorf("recorder-emitted trace flagged: %v", bad)
	}
	var b bytes.Buffer
	summarize(events).writeTable(&b)
	for _, want := range []string{"== resolves ==", "== swaps ==", "== demand ==", "v2  demand  swapped"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, b.String())
		}
	}
}

// TestQuantileOrderStat pins the sorted-slice quantile helper.
func TestQuantileOrderStat(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 10}, {0.5, 30}, {0.9, 50}, {1, 50}} {
		if got := quantile(s, tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}
