// Command servestat reduces a serving-plane telemetry trace (produced by
// vodserved's -trace-out flag) to an operational summary: the re-solve
// ledger with verdicts, timing breakdowns and the delta-resolve economy
// (dirty videos, route rows rebuilt), the snapshot swap timeline with
// route churn, rebuilt/total rows and the delta fraction, and the
// demand-stream totals. With -metrics it additionally reads a scraped
// Prometheus /metrics snapshot and reports the server-side per-endpoint
// latency quantiles. Under -check it audits the trace's lifecycle
// invariants — swap versions strictly monotone, every swap covered by a
// swapped (audit-passing) resolve, start/done events properly bracketed,
// rebuilt row counts within the table — and exits nonzero on any
// violation: the serving plane promises these properties, so a violating
// trace is evidence of a bug. -expect-delta additionally requires that at
// least one swap was built incrementally (rebuilt < rows) — the smoke
// tests' proof that the delta resolve path actually fired.
//
// Usage:
//
//	servestat [-check] [-expect-delta] [-metrics snapshot.prom] [trace.jsonl]
//
// With no file argument the trace is read from stdin, unless -metrics is
// given alone (a metrics-only report). Output is deterministic for a fixed
// input, so fixture traces summarize byte-identically (the golden tests'
// contract). It is tracesum's sibling: tracesum reads the solver side of a
// trace, servestat the serving side; both ignore the other's event kinds,
// so one file serves both.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"vodplace/internal/obs"
)

func main() {
	var (
		check       = flag.Bool("check", false, "exit nonzero when a lifecycle invariant is violated")
		expectDelta = flag.Bool("expect-delta", false, "with -check, require at least one incrementally-built swap (rows rebuilt < catalog rows)")
		metrics     = flag.String("metrics", "", "Prometheus /metrics snapshot to report latency quantiles from")
	)
	flag.Parse()

	var events []obs.Event
	readTrace := flag.NArg() > 0 || *metrics == ""
	if readTrace {
		var in io.Reader = os.Stdin
		if flag.NArg() > 0 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fmt.Fprintf(os.Stderr, "servestat: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
		var err error
		events, err = obs.ParseTrace(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servestat: %v\n", err)
			os.Exit(1)
		}
	}
	var samples []obs.PromSample
	if *metrics != "" {
		f, err := os.Open(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servestat: %v\n", err)
			os.Exit(1)
		}
		samples, err = obs.ParseProm(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "servestat: %v\n", err)
			os.Exit(1)
		}
	}

	sum := summarize(events)
	sum.writeTable(os.Stdout)
	writeLatency(os.Stdout, samples)
	if *check {
		bad := violations(events)
		if *expectDelta && !hasIncrementalSwap(events) {
			bad = append(bad, "no incremental swap in trace (every snapshot build recomputed the full route table)")
		}
		if len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintf(os.Stderr, "servestat: %s\n", m)
			}
			os.Exit(1)
		}
	}
}

// summary is everything servestat derives from the serving events of a
// trace, in emission order.
type summary struct {
	resolves []obs.Event // serve_resolve done events
	swaps    []obs.Event // serve_swap events
	demands  []obs.Event // serve_demand events
}

func summarize(events []obs.Event) *summary {
	s := &summary{}
	for i := range events {
		e := events[i]
		switch e.K {
		case "serve_resolve":
			if e.Phase == "done" {
				s.resolves = append(s.resolves, e)
			}
		case "serve_swap":
			s.swaps = append(s.swaps, e)
		case "serve_demand":
			s.demands = append(s.demands, e)
		}
	}
	return s
}

func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ms renders a duration in seconds as milliseconds with 6 significant
// digits — enough for any bucket edge, without the float artifacts an
// exact ×1000 rendering would show.
func ms(sec float64) string { return strconv.FormatFloat(sec*1e3, 'g', 6, 64) }

// g6 renders a computed float (a TMS difference) with 6 significant
// digits, hiding subtraction artifacts the exact rendering would show.
func g6(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// quantile returns the q-th element of sorted (the conservative upper
// order statistic, matching the histogram convention everywhere else).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// writeTable renders the serving summary. Every line is a pure function of
// the input events, so fixed fixtures render byte-identically.
func (s *summary) writeTable(w io.Writer) {
	if len(s.resolves) > 0 {
		fmt.Fprintln(w, "== resolves ==")
		counts := map[string]int{}
		for _, e := range s.resolves {
			counts[e.Verdict]++
			fmt.Fprintf(w, "v%d  %s  %s  passes %d  warm %.0f%%  solve %s ms  audit %s ms  build %s ms",
				e.Version, e.Trigger, e.Verdict, e.Passes, 100*e.WarmFrac,
				g(e.SolveMS), g(e.AuditMS), g(e.BuildMS))
			// Delta columns only when the attempt carried them — pre-delta
			// traces render exactly as before.
			if e.Dirty > 0 || e.Rebuilt > 0 {
				fmt.Fprintf(w, "  dirty %d  rebuilt %d", e.Dirty, e.Rebuilt)
			}
			if e.Reason != "" {
				fmt.Fprintf(w, "  reason: %s", e.Reason)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "verdicts: swapped %d  audit_rejected %d  unconverged %d  cancelled %d  failed %d\n\n",
			counts["swapped"], counts["audit_rejected"], counts["unconverged"],
			counts["cancelled"], counts["failed"])
	}
	if len(s.swaps) > 0 {
		fmt.Fprintln(w, "== swaps ==")
		var churn int64
		var lifetimes []float64
		prev := 0.0
		for _, e := range s.swaps {
			life := e.TMS - prev
			prev = e.TMS
			lifetimes = append(lifetimes, life)
			churn += e.RDelta
			fmt.Fprintf(w, "v%d  routes changed %d", e.Version, e.RDelta)
			// Rows is zero in pre-delta traces; those timelines render
			// exactly as before.
			if e.Rows > 0 {
				fmt.Fprintf(w, "  rebuilt %d/%d rows  delta %s",
					e.Rebuilt, e.Rows, g6(float64(e.Rebuilt)/float64(e.Rows)))
			}
			fmt.Fprintf(w, "  build %s ms  after %s ms\n", g(e.BuildMS), g6(life))
		}
		sort.Float64s(lifetimes)
		fmt.Fprintf(w, "swaps %d  route churn %d  lifetime ms: p50 %s  p90 %s  max %s\n\n",
			len(s.swaps), churn,
			g6(quantile(lifetimes, 0.50)), g6(quantile(lifetimes, 0.90)),
			g6(lifetimes[len(lifetimes)-1]))
	}
	if len(s.demands) > 0 {
		var entries int
		for _, e := range s.demands {
			entries += e.Batch
		}
		last := s.demands[len(s.demands)-1]
		fmt.Fprintln(w, "== demand ==")
		fmt.Fprintf(w, "batches %d  entries %d  last drift %s\n\n", len(s.demands), entries, g(last.Drift))
	}
}

// writeLatency reports the server-side request instruments from a scraped
// /metrics snapshot: per-endpoint status-class counts and latency
// quantiles, endpoints in sorted order.
func writeLatency(w io.Writer, samples []obs.PromSample) {
	if len(samples) == 0 {
		return
	}
	type endpoint struct {
		classes map[string]float64
	}
	byName := map[string]*endpoint{}
	var names []string
	for _, sm := range samples {
		if sm.Name != obs.PromReqTotalName {
			continue
		}
		name := sm.Labels["endpoint"]
		ep, ok := byName[name]
		if !ok {
			ep = &endpoint{classes: map[string]float64{}}
			byName[name] = ep
			names = append(names, name)
		}
		ep.classes[sm.Labels["code"]] += sm.Value
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintln(w, "== latency (server) ==")
	for _, name := range names {
		ep := byName[name]
		var total float64
		for _, v := range ep.classes {
			total += v
		}
		fmt.Fprintf(w, "%-10s requests %.0f  2xx %.0f  4xx %.0f  5xx %.0f",
			name, total, ep.classes["2xx"], ep.classes["4xx"], ep.classes["5xx"])
		if h := obs.ExtractPromHist(samples, obs.PromReqDurName, map[string]string{"endpoint": name}); h != nil && h.Count > 0 {
			fmt.Fprintf(w, "  p50 %s ms  p90 %s ms  p99 %s ms",
				ms(h.Quantile(0.50)), ms(h.Quantile(0.90)), ms(h.Quantile(0.99)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// violations audits the lifecycle invariants of a serving trace:
//
//  1. serve_swap versions are strictly increasing (the snapshot sequence
//     is monotone by construction — a repeat or regression means the store
//     published out of order).
//  2. every serve_swap is covered by a passing audit: a serve_resolve
//     start with the same version must precede it, and a serve_resolve
//     done with verdict "swapped" and the same version must exist (the
//     daemon emits it right after the swap; its absence means the trace
//     stopped mid-publication or the gate was bypassed).
//  3. resolve events bracket properly: one open attempt at a time, no done
//     without a start, no start left open at end of trace.
//  4. a swap's delta economy is coherent: when it reports a table size
//     (rows > 0, i.e. a post-delta trace), the rebuilt count must lie in
//     [0, rows] — a count outside the table means the incremental builder
//     miscounted its work.
//
// Messages are returned in trace order, deterministically.
func violations(events []obs.Event) []string {
	var out []string
	// Pass 1: collect swapped-verdict versions (invariant 2 looks forward).
	swappedDone := map[int64]bool{}
	for i := range events {
		if events[i].K == "serve_resolve" && events[i].Phase == "done" && events[i].Verdict == "swapped" {
			swappedDone[events[i].Version] = true
		}
	}
	var lastSwap int64
	haveSwap := false
	startSeen := map[int64]bool{}
	var open int64
	haveOpen := false
	for i := range events {
		e := events[i]
		switch e.K {
		case "serve_resolve":
			switch e.Phase {
			case "start":
				if haveOpen {
					out = append(out, fmt.Sprintf("resolve start v%d while v%d still open", e.Version, open))
				}
				open, haveOpen = e.Version, true
				startSeen[e.Version] = true
			case "done":
				if !haveOpen {
					out = append(out, fmt.Sprintf("resolve done v%d (%s) without a matching start", e.Version, e.Verdict))
				} else if open != e.Version {
					out = append(out, fmt.Sprintf("resolve done v%d (%s) closes start v%d", e.Version, e.Verdict, open))
				}
				haveOpen = false
			}
		case "serve_swap":
			if haveSwap && e.Version <= lastSwap {
				out = append(out, fmt.Sprintf("swap version not strictly increasing: v%d after v%d", e.Version, lastSwap))
			}
			lastSwap, haveSwap = e.Version, true
			if !startSeen[e.Version] {
				out = append(out, fmt.Sprintf("swap v%d without a preceding resolve start", e.Version))
			}
			if !swappedDone[e.Version] {
				out = append(out, fmt.Sprintf("swap v%d without a swapped resolve verdict (audit gate bypassed?)", e.Version))
			}
			if e.Rows > 0 && (e.Rebuilt < 0 || e.Rebuilt > e.Rows) {
				out = append(out, fmt.Sprintf("swap v%d rebuilt %d of %d route rows (count outside the table)", e.Version, e.Rebuilt, e.Rows))
			}
		}
	}
	if haveOpen {
		out = append(out, fmt.Sprintf("resolve start v%d never completed", open))
	}
	return out
}

// hasIncrementalSwap reports whether any swap in the trace was built
// incrementally — it reports a table size and recomputed strictly fewer
// rows than it. The -expect-delta check, used by the serve smoke test to
// assert the delta resolve path actually fired.
func hasIncrementalSwap(events []obs.Event) bool {
	for i := range events {
		e := events[i]
		if e.K == "serve_swap" && e.Rows > 0 && e.Rebuilt < e.Rows {
			return true
		}
	}
	return false
}
