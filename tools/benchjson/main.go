// Command benchjson converts `go test -bench` text output into the JSON
// benchmark record committed as BENCH_epf.json.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/epf/ | go run ./tools/benchjson
//	go test ... | go run ./tools/benchjson -baseline BENCH_epf.json
//	go test -cpu 1,2,4 ... | go run ./tools/benchjson -cores
//
// With -baseline, the named file's "current" section is carried over as the
// new record's "baseline", so re-running `make bench-json` after an
// optimization automatically turns the previous numbers into the comparison
// point and reports the speedup per benchmark.
//
// With -cores, the per-line "-N" GOMAXPROCS suffixes are kept as distinct
// keys (a `go test -cpu 1,2,4` sweep; the suffixless key is the 1-CPU run)
// and the record gains a "speedup_vs_1cpu" section: 1-CPU ns/op divided by
// each multi-core variant's ns/op.
//
// Every record carries the host parallelism it was measured under (numcpu,
// and outside -cores mode the uniform gomaxprocs of the run), so committed
// numbers are honest about how many cores they had to scale across.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line: go test prints
// "BenchmarkName-8  12  212022615 ns/op  3804413 B/op  144746 allocs/op".
type Result struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Record is the committed file layout: environment header, the run being
// recorded, an optional baseline to compare against, and the derived
// speedups (baseline ns/op divided by current ns/op).
type Record struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	NumCPU int    `json:"numcpu,omitempty"`
	// Gomaxprocs is the uniform GOMAXPROCS of the run, inferred from the
	// benchmark-name suffixes; omitted for -cores sweeps, where the
	// per-key suffix carries it.
	Gomaxprocs   int                `json:"gomaxprocs,omitempty"`
	Current      map[string]Result  `json:"current"`
	Baseline     map[string]Result  `json:"baseline,omitempty"`
	Speedup      map[string]float64 `json:"speedup,omitempty"`
	SpeedupCores map[string]float64 `json:"speedup_vs_1cpu,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "", "JSON record whose 'current' section becomes this record's baseline")
	cores := flag.Bool("cores", false, "treat input as a -cpu sweep: keep -N name suffixes and derive speedup_vs_1cpu")
	flag.Parse()

	rec := Record{Current: map[string]Result{}, NumCPU: runtime.NumCPU()}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, procs, res, ok := parseLine(line, *cores)
			if !ok {
				continue
			}
			if !*cores && procs > rec.Gomaxprocs {
				rec.Gomaxprocs = procs
			}
			// -count N repeats a benchmark; keep the fastest run, the
			// standard way to suppress scheduling noise.
			if prev, dup := rec.Current[name]; !dup || res.NsPerOp < prev.NsPerOp {
				rec.Current[name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run for a new record file: nothing to carry over yet.
			fmt.Fprintf(os.Stderr, "benchjson: %s does not exist yet; emitting a record without a baseline\n", *baselinePath)
		case err != nil:
			fatal(err)
		default:
			var prev Record
			if err := json.Unmarshal(data, &prev); err != nil {
				fatal(fmt.Errorf("%s: %w", *baselinePath, err))
			}
			rec.Baseline = prev.Current
		}
	}
	if *cores {
		rec.SpeedupCores = map[string]float64{}
		for name, cur := range rec.Current {
			i := strings.LastIndex(name, "-")
			if i <= 0 {
				continue
			}
			if _, err := strconv.Atoi(name[i+1:]); err != nil {
				continue
			}
			if one, ok := rec.Current[name[:i]]; ok && cur.NsPerOp > 0 {
				rec.SpeedupCores[name] = round2(one.NsPerOp / cur.NsPerOp)
			}
		}
		if len(rec.SpeedupCores) == 0 {
			rec.SpeedupCores = nil
		}
	}
	if len(rec.Baseline) > 0 {
		rec.Speedup = map[string]float64{}
		for name, cur := range rec.Current {
			if base, ok := rec.Baseline[name]; ok && cur.NsPerOp > 0 {
				rec.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fatal(err)
	}
}

// round2 keeps committed ratios at two decimals; full float64 ratios churn
// the file on every noise-level rerun.
func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// parseLine splits one benchmark result row. The -benchmem columns are
// optional. Outside cores mode the name's "-8" GOMAXPROCS suffix is
// stripped (and returned) so records taken on different machines stay
// comparable keys; in cores mode the suffix is the point and stays in the
// key. A suffixless line ran at GOMAXPROCS=1.
func parseLine(line string, cores bool) (string, int, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return "", 0, Result{}, false
	}
	name, procs := f[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = n
			if !cores {
				name = name[:i]
			}
		}
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return "", 0, Result{}, false
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		}
		if err != nil {
			return "", 0, Result{}, false
		}
	}
	return name, procs, res, true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
