// Command benchjson converts `go test -bench` text output into the JSON
// benchmark record committed as BENCH_epf.json.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/epf/ | go run ./tools/benchjson
//	go test ... | go run ./tools/benchjson -baseline BENCH_epf.json
//
// With -baseline, the named file's "current" section is carried over as the
// new record's "baseline", so re-running `make bench-json` after an
// optimization automatically turns the previous numbers into the comparison
// point and reports the speedup per benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: go test prints
// "BenchmarkName-8  12  212022615 ns/op  3804413 B/op  144746 allocs/op".
type Result struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Record is the committed file layout: environment header, the run being
// recorded, an optional baseline to compare against, and the derived
// speedups (baseline ns/op divided by current ns/op).
type Record struct {
	Goos     string             `json:"goos,omitempty"`
	Goarch   string             `json:"goarch,omitempty"`
	Pkg      string             `json:"pkg,omitempty"`
	CPU      string             `json:"cpu,omitempty"`
	Current  map[string]Result  `json:"current"`
	Baseline map[string]Result  `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "", "JSON record whose 'current' section becomes this record's baseline")
	flag.Parse()

	rec := Record{Current: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, res, ok := parseLine(line)
			if !ok {
				continue
			}
			// -count N repeats a benchmark; keep the fastest run, the
			// standard way to suppress scheduling noise.
			if prev, dup := rec.Current[name]; !dup || res.NsPerOp < prev.NsPerOp {
				rec.Current[name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run for a new record file: nothing to carry over yet.
			fmt.Fprintf(os.Stderr, "benchjson: %s does not exist yet; emitting a record without a baseline\n", *baselinePath)
		case err != nil:
			fatal(err)
		default:
			var prev Record
			if err := json.Unmarshal(data, &prev); err != nil {
				fatal(fmt.Errorf("%s: %w", *baselinePath, err))
			}
			rec.Baseline = prev.Current
		}
	}
	if len(rec.Baseline) > 0 {
		rec.Speedup = map[string]float64{}
		for name, cur := range rec.Current {
			if base, ok := rec.Baseline[name]; ok && cur.NsPerOp > 0 {
				// Two decimals is plenty; full float64 ratios churn the
				// committed file on every noise-level rerun.
				rec.Speedup[name] = float64(int(base.NsPerOp/cur.NsPerOp*100+0.5)) / 100
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fatal(err)
	}
}

// parseLine splits one benchmark result row. The -benchmem columns are
// optional; the name's "-8" GOMAXPROCS suffix is stripped so records taken
// on different machines stay comparable keys.
func parseLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return "", Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		}
		if err != nil {
			return "", Result{}, false
		}
	}
	return name, res, true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
