GO ?= go

.PHONY: build vet test race check bench fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race run is the concurrency runtime's real gate: every solver fan-out,
# the CompareSchemes scheme pool and the cancellation paths execute under it.
race:
	$(GO) test -race -timeout 30m ./...

check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x ./...

fmt:
	gofmt -l -w .
