GO ?= go

# Per-target budget for `make fuzz`; CI uses FUZZTIME=30s. Targets are
# pkg:Fuzzname pairs because go test takes one -fuzz pattern per package.
FUZZTIME ?= 10s
FUZZ_TARGETS := \
	./internal/verify:FuzzNewInstance \
	./internal/verify:FuzzInstanceBuilder \
	./internal/verify:FuzzEPFSolve \
	./internal/verify:FuzzFacloc \
	./internal/serve:FuzzRouteTable

# Fixed-seed instance for the telemetry smoke test; small enough to solve in
# seconds, large enough for a nontrivial convergence trajectory.
# -no-incremental pins the legacy trajectory the committed golden predates.
TRACE_SMOKE_ARGS := -videos 60 -vhos 8 -passes 40 -seed 1 -no-incremental

# Fixed-seed daemon for the serve smoke: settings under which background
# re-solves converge, so the demand bursts vodload posts produce an
# audit-gated snapshot swap during the 2s run.
SERVE_SMOKE_ARGS := -videos 60 -vhos 8 -passes 200 -eps 0.02 -seed 1

.PHONY: build vet test race check bench bench-json bench-cores fuzz cover fmt trace-smoke trace-golden serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

# The race run is the concurrency runtime's real gate: every solver fan-out,
# the CompareSchemes scheme pool and the cancellation paths execute under it.
race:
	$(GO) test -race -shuffle=on -timeout 30m ./...

check: build vet race

# -run '^$' keeps the benchmark run from re-executing the whole test suite
# alongside the benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Refresh the committed benchmark records. The old files' numbers roll over
# into the new records' "baseline" sections, so after an optimization each
# BENCH_*.json answers "what did this change buy" per benchmark. -count 3
# with best-of selection suppresses scheduler noise. BENCH_epf.json covers
# the solver hot paths; BENCH_pipeline.json covers the week-long multi-period
# pipeline (BenchmarkRunMIPWeekCold vs ...Warm — the cross-period warm-start
# headline is their ns/op ratio); BENCH_scale.json covers the 1k/10k/100k
# catalog sweep through the sharded streaming pipeline (-count 1 — the long
# points dominate and best-of-3 would triple a multi-minute run).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/epf/ \
		| $(GO) run ./tools/benchjson -baseline BENCH_epf.json > BENCH_epf.json.tmp
	mv BENCH_epf.json.tmp BENCH_epf.json
	$(GO) test -run '^$$' -bench RunMIPWeek -benchmem -count 3 ./internal/core/ \
		| $(GO) run ./tools/benchjson -baseline BENCH_pipeline.json > BENCH_pipeline.json.tmp
	mv BENCH_pipeline.json.tmp BENCH_pipeline.json
	$(GO) test -run '^$$' -bench Scale -benchmem -count 1 -timeout 60m ./internal/experiments/ \
		| $(GO) run ./tools/benchjson -baseline BENCH_scale.json > BENCH_scale.json.tmp
	mv BENCH_scale.json.tmp BENCH_scale.json
	$(GO) test -run '^$$' -bench 'Serve|Resolve' -benchmem -count 3 ./internal/serve/ \
		| $(GO) run ./tools/benchjson -baseline BENCH_serve.json > BENCH_serve.json.tmp
	mv BENCH_serve.json.tmp BENCH_serve.json

# Cores sweep: the same solve at GOMAXPROCS 1, 2 and 4, recorded with
# per-core speedup ratios (speedup_vs_1cpu) in BENCH_cores.json. Three
# representative benchmarks: the quick EPF solve (solver hot loop), the
# warm week pipeline (end-to-end multi-period), and the 100k-video sharded
# scale solve (where the parallel reductions and rounding matter most).
# -count 1: the long points dominate and best-of-N would multiply an
# already multi-minute run.
bench-cores:
	( $(GO) test -run '^$$' -bench '^BenchmarkEPFSolveQuick$$' -benchmem -cpu 1,2,4 -count 1 ./internal/epf/ ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkRunMIPWeekWarm$$' -benchmem -cpu 1,2,4 -count 1 ./internal/core/ ; \
	  $(GO) test -run '^$$' -bench '^BenchmarkScaleSolve100k$$' -benchmem -cpu 1,2,4 -count 1 -timeout 60m ./internal/experiments/ ) \
		| $(GO) run ./tools/benchjson -cores > BENCH_cores.json.tmp
	mv BENCH_cores.json.tmp BENCH_cores.json

# go test accepts a single -fuzz pattern per invocation, so budgeted runs
# loop over the pkg:target pairs explicitly.
fuzz:
	for t in $(FUZZ_TARGETS); do \
		$(GO) test $${t%%:*} -run '^$$' -fuzz $${t##*:} -fuzztime $(FUZZTIME) || exit 1; \
	done

cover:
	$(GO) test -shuffle=on -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1

# End-to-end telemetry gate: a seeded solve writes a JSONL trace, tracesum
# audits the bound series for monotonicity (-check) and the reduced summary
# must match the committed golden byte for byte. The summary contains only
# deterministic fields, so this passes on any machine at any worker count.
trace-smoke:
	$(GO) run ./cmd/vodplace $(TRACE_SMOKE_ARGS) -trace-out trace-smoke.jsonl > /dev/null
	$(GO) run ./tools/tracesum -check trace-smoke.jsonl > trace-smoke.out
	diff -u testdata/trace_smoke.golden trace-smoke.out

# Regenerate the committed smoke golden after an intentional solver or
# trace-format change.
trace-golden:
	$(GO) run ./cmd/vodplace $(TRACE_SMOKE_ARGS) -trace-out trace-smoke.jsonl > /dev/null
	$(GO) run ./tools/tracesum -check trace-smoke.jsonl > testdata/trace_smoke.golden

# End-to-end service gate: a seeded vodserved on an ephemeral port, 2s of
# vodload with demand bursts, then SIGTERM. vodload's -golden-out is a
# normalized boolean field subset (throughput nonzero, zero errors, rps
# floor met, swap observed) diffed against the committed golden; the raw
# JSON summary and daemon log are left behind as evidence. `wait` at the
# end asserts the daemon's exit code — 0 means the drain was clean.
# Telemetry legs: the daemon writes a lifecycle trace (-trace-out), /metrics
# is scraped while the daemon is still serving, and after shutdown servestat
# audits the trace invariants (-check fails the target on any violation),
# asserts the delta resolve path actually fired (-expect-delta: at least one
# swap must have rebuilt fewer route rows than the catalog holds) and
# renders the trace + scrape into serve-smoke.telemetry.out. The Prometheus
# scrape and the telemetry summary carry wall-clock values, so they are
# evidence artifacts, not goldens.
serve-smoke:
	$(GO) build -o vodserved.smoke ./cmd/vodserved
	$(GO) build -o vodload.smoke ./cmd/vodload
	$(GO) build -o servestat.smoke ./tools/servestat
	rm -f serve-smoke.addr
	./vodserved.smoke $(SERVE_SMOKE_ARGS) -addr 127.0.0.1:0 -addr-file serve-smoke.addr \
		-trace-out serve-smoke.trace.jsonl > serve-smoke.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 300); do [ -s serve-smoke.addr ] && break; sleep 0.1; done; \
	[ -s serve-smoke.addr ] || { echo "vodserved never came up"; cat serve-smoke.log; exit 1; }; \
	./vodload.smoke -addr $$(cat serve-smoke.addr) -duration 2s -concurrency 4 \
		-updates 2 -update-size 6 -seed 1 -min-rps 1000 -wait 30s \
		-json serve-smoke.json -golden-out serve-smoke.out \
		|| { cat serve-smoke.log; exit 1; }; \
	curl -sf http://$$(cat serve-smoke.addr)/metrics > serve-smoke.prom \
		|| { echo "metrics scrape failed"; cat serve-smoke.log; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "vodserved exited nonzero"; cat serve-smoke.log; exit 1; }
	diff -u testdata/serve_smoke.golden serve-smoke.out
	./servestat.smoke -check -expect-delta -metrics serve-smoke.prom serve-smoke.trace.jsonl > serve-smoke.telemetry.out
	cat serve-smoke.telemetry.out

fmt:
	gofmt -l -w .
