module vodplace

go 1.22
