package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// timingRe matches wall-clock durations in CLI output; they are the only
// non-deterministic part of a fixed-seed run.
var timingRe = regexp.MustCompile(`\d+\.\d+s`)

func normalize(b []byte) []byte { return timingRe.ReplaceAll(b, []byte("X.Xs")) }

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vodplace")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestGolden pins the complete CLI output of fixed-seed runs. The solver is
// deterministic at any worker count, so everything except wall time is
// byte-stable; regenerate with `go test ./cmd/vodplace -run Golden -update`
// after an intentional output change.
func TestGolden(t *testing.T) {
	bin := buildBinary(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		// The historical cases pin the legacy trajectory via -no-incremental
		// (their goldens predate the fast default); small_fast pins the
		// incremental + parallel-rounding default on the same instance.
		{"small_verify", []string{"-videos", "60", "-vhos", "8", "-passes", "40", "-seed", "1", "-verify", "-no-incremental"}},
		{"tiny_seed7", []string{"-videos", "30", "-vhos", "6", "-passes", "30", "-seed", "7", "-no-incremental"}},
		{"small_fast", []string{"-videos", "60", "-vhos", "8", "-passes", "40", "-seed", "1", "-verify"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			got := normalize(out)
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output differs from %s (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
			}
		})
	}
}
