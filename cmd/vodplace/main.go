// Command vodplace solves one content-placement instance end to end:
// it synthesizes (or scales) a workload, estimates demand from the first
// week of history, runs the EPF solver plus rounding, and reports the
// placement — objective, optimality gap, constraint violations, copy
// distribution, and per-office disk use.
//
// Usage:
//
//	vodplace [-videos 2000] [-vhos 55] [-disk 2.0] [-link 1000] [-seed 1] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"vodplace/internal/catalog"
	"vodplace/internal/core"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/obs"
	"vodplace/internal/prof"
	"vodplace/internal/topology"
	"vodplace/internal/verify"
	"vodplace/internal/workload"
)

func main() {
	var (
		videos  = flag.Int("videos", 2000, "library size")
		vhos    = flag.Int("vhos", 55, "number of offices (55 = backbone)")
		rpd     = flag.Float64("rpd", 4, "requests per video per day")
		disk    = flag.Float64("disk", 2.0, "aggregate disk as multiple of library size")
		link    = flag.Float64("link", 1000, "uniform link capacity in Mb/s")
		slices  = flag.Int("slices", 2, "number of peak-window link constraints |T|")
		window  = flag.Int64("window", 3600, "peak window length in seconds")
		shards  = flag.Int("shards", 1, "catalog shards for instance building and block scheduling (1 = unsharded; any value yields bit-identical results)")
		seed    = flag.Int64("seed", 1, "random seed")
		passes  = flag.Int("passes", 120, "solver pass cap")
		verbose = flag.Bool("v", false, "per-pass solver progress")
		doAudit = flag.Bool("verify", false, "re-check the solution with the independent certificate auditor")
		doWarm  = flag.Bool("warm", false, "after the cold solve, re-solve seeded from its final state and report the convergence saving")
		noIncr  = flag.Bool("no-incremental", false, "run the legacy sequential solver mode (no incremental pricing, sequential rounding); pins the historical trajectory")
	)
	profFlags := prof.Register(flag.CommandLine)
	obsFlags := obs.Register(flag.CommandLine)
	flag.Parse()

	profStop, err := prof.Start(profFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
		os.Exit(1)
	}
	rec, obsStop, err := obs.Start(obsFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
		profStop() //nolint:errcheck // already failing
		os.Exit(1)
	}
	// Every exit path runs obsStop so the trace sink is flushed even when the
	// run was interrupted or the audit failed.
	exit := func(code int) {
		if err := obsStop(); err != nil {
			fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		if err := profStop(); err != nil {
			fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	var g *topology.Graph
	if *vhos == 55 {
		g = topology.Backbone55()
	} else {
		g = topology.Random(*vhos, 1.4, *seed)
	}
	lib := catalog.Generate(catalog.Config{NumVideos: *videos, Weeks: 2}, *seed+10)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 8, NumVHOs: *vhos, RequestsPerVideoPerDay: *rpd,
	}, *seed+20)

	builder := &demand.Builder{
		G: g, Lib: lib,
		DiskGB:      core.UniformDisk(lib, *vhos, *disk),
		LinkCapMbps: core.UniformLinks(g, *link),
		Cfg:         demand.Config{Slices: *slices, WindowSec: *window, HorizonDays: 7, Shards: *shards},
	}
	inst, err := builder.Instance(tr, 7)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
		exit(1)
	}
	fmt.Printf("instance: %d offices, %d links, %d videos, %d time slices\n",
		inst.NumVHOs(), g.NumLinks(), inst.NumVideos(), inst.Slices)

	opts := epf.Options{
		Seed: *seed, MaxPasses: *passes, Recorder: rec,
		IncrementalPricing: !*noIncr,
		ParallelRound:      !*noIncr,
	}
	if *verbose {
		opts.OnPass = func(pi epf.PassInfo) {
			fmt.Println(obs.PassRow(pi.Pass, pi.Objective, pi.LowerBound, pi.MaxViol))
		}
	}
	// Ctrl-C / SIGTERM cancels the solve cooperatively: the solver stops at
	// the next chunk boundary and the partial placement is still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := epf.SolveIntegerContext(ctx, inst, opts)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
		exit(1)
	}
	elapsed := time.Since(start)

	if interrupted {
		fmt.Printf("\ninterrupted after %.1fs (%d passes); reporting the partial placement\n",
			elapsed.Seconds(), res.Passes)
	} else {
		fmt.Printf("\nsolved in %.1fs (%d passes)\n", elapsed.Seconds(), res.Passes)
	}
	if *verbose {
		fmt.Printf("\nsolver stats:\n%s\n\n", res.Stats)
	}
	fmt.Printf("objective:     %.1f GB (transfer cost, hop-weighted)\n", res.Objective)
	fmt.Printf("lower bound:   %.1f GB (Lagrangian)\n", res.LowerBound)
	fmt.Printf("gap:           %.2f%%\n", 100*res.Gap)
	fmt.Printf("violations:    disk %.2f%%, link %.2f%%\n", 100*res.Violation.Disk, 100*res.Violation.Link)

	copies := res.Sol.Copies()
	hist := map[int]int{}
	total := 0
	for _, c := range copies {
		hist[c]++
		total += c
	}
	var keys []int
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Printf("\ncopies  videos\n")
	for _, k := range keys {
		fmt.Printf("%6d  %6d\n", k, hist[k])
	}
	fmt.Printf("total copies: %d (%.2fx library)\n", total, float64(total)/float64(len(copies)))

	use := res.Sol.DiskUsage()
	var minU, maxU float64 = use[0], use[0]
	for _, u := range use {
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
	}
	fmt.Printf("per-office disk use: min %.0f GB, max %.0f GB (capacity %.0f GB)\n",
		minU, maxU, inst.DiskGB[0])

	if *doAudit {
		rep := verify.Audit(inst, res)
		fmt.Printf("\nverify: %s\n", rep)
		if err := rep.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
			exit(1)
		}
	}

	// -warm demos the cross-period warm start on a single instance: re-solve
	// seeded from the cold result's exported state. In the multi-period
	// pipeline (vodexp -warm) the seed comes from the previous day instead;
	// here, with zero drift, the re-solve shows the mechanism's ceiling.
	if *doWarm && !interrupted {
		wopts := opts
		wopts.Warm = res.Warm
		wopts.TraceStream = "warm"
		wstart := time.Now()
		wres, err := epf.SolveIntegerContext(ctx, inst, wopts)
		if err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "vodplace: warm re-solve: %v\n", err)
			exit(1)
		}
		fmt.Printf("\nwarm re-solve: %.1fs, %d passes (cold: %.1fs, %d passes), %d/%d videos seeded\n",
			time.Since(wstart).Seconds(), wres.Passes, elapsed.Seconds(), res.Passes,
			wres.Stats.WarmVideos, inst.NumVideos())
		fmt.Printf("warm objective: %.1f GB  lb %.1f GB  gap %.2f%%\n",
			wres.Objective, wres.LowerBound, 100*wres.Gap)
		if *doAudit {
			rep := verify.Audit(inst, wres)
			fmt.Printf("verify (warm): %s\n", rep)
			if err := rep.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "vodplace: %v\n", err)
				exit(1)
			}
		}
	}
	exit(0)
}
