package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestEndToEndLoopback is the full serve/load smoke: build both binaries,
// start a seeded daemon on an ephemeral port, run vodload against it with
// demand bursts, and assert nonzero throughput, zero routing errors, and at
// least one audit-gated warm re-solve swapped in mid-run. SIGTERM must then
// shut the daemon down cleanly (exit 0).
func TestEndToEndLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two binaries and solves placements")
	}
	dir := t.TempDir()
	loadBin := buildLoadBinary(t)
	servedBin := filepath.Join(dir, "vodserved")
	if out, err := exec.Command("go", "build", "-o", servedBin, "../vodserved").CombinedOutput(); err != nil {
		t.Fatalf("go build vodserved: %v\n%s", err, out)
	}

	addrFile := filepath.Join(dir, "addr")
	daemon := exec.Command(servedBin,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-videos", "60", "-vhos", "8", "-passes", "200", "-eps", "0.02", "-seed", "1")
	var dout strings.Builder
	daemon.Stdout = &dout
	daemon.Stderr = &dout
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if daemon.Process != nil {
			daemon.Process.Kill() //nolint:errcheck
			daemon.Wait()         //nolint:errcheck
		}
	})

	deadline := time.Now().Add(60 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its address\noutput:\n%s", dout.String())
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	jsonPath := filepath.Join(dir, "load.json")
	load := exec.Command(loadBin,
		"-addr", addr, "-mode", "zipf", "-duration", "2s", "-concurrency", "4",
		"-updates", "2", "-update-size", "6", "-seed", "1",
		"-wait", "30s", "-json", jsonPath)
	if out, err := load.CombinedOutput(); err != nil {
		t.Fatalf("vodload: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("parsing %s: %v\n%s", jsonPath, err, raw)
	}
	if sum.Requests == 0 {
		t.Error("zero throughput")
	}
	if sum.RouteErrors != 0 || sum.HTTPErrors != 0 {
		t.Errorf("errors during run: route %d, http %d", sum.RouteErrors, sum.HTTPErrors)
	}
	if sum.ServerRouteErrors != 0 {
		t.Errorf("server-side route errors: %d", sum.ServerRouteErrors)
	}
	if sum.SwapsObserved < 1 {
		t.Errorf("no snapshot swap observed (v%d -> v%d)\ndaemon output:\n%s",
			sum.VersionStart, sum.VersionEnd, dout.String())
	}
	if sum.LatencyMs.P99 <= 0 {
		t.Errorf("p99 latency not reported: %+v", sum.LatencyMs)
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited nonzero after SIGTERM: %v\noutput:\n%s", err, dout.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit\noutput:\n%s", dout.String())
	}
	if !strings.Contains(dout.String(), "clean shutdown") {
		t.Errorf("no 'clean shutdown' in daemon output:\n%s", dout.String())
	}
}
