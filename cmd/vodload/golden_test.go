package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// usageRe strips the temp-dir binary path from the Usage line.
var usageRe = regexp.MustCompile(`Usage of \S+:`)

func normalizeHelp(b []byte) []byte {
	return usageRe.ReplaceAll(b, []byte("Usage of vodload:"))
}

func buildLoadBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vodload")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestGoldenHelp pins the harness's -h output. Regenerate with
// `go test ./cmd/vodload -run Golden -update` after an intentional change.
func TestGoldenHelp(t *testing.T) {
	bin := buildLoadBinary(t)
	out, err := exec.Command(bin, "-h").CombinedOutput()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Fatalf("run -h: %v\n%s", err, out)
		}
	}
	got := normalizeHelp(out)
	golden := filepath.Join("testdata", "help.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-h output differs from %s (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestAddrRequired pins the usage-error contract.
func TestAddrRequired(t *testing.T) {
	bin := buildLoadBinary(t)
	out, err := exec.Command(bin).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("no -addr: err %v (output %s), want exit 2", err, out)
	}
	if !bytes.Contains(out, []byte("-addr is required")) {
		t.Errorf("missing usage hint in %q", out)
	}
}
