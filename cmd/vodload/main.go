// Command vodload drives a running vodserved: it discovers the served
// video universe over /status and /placement, replays either a synthetic
// Zipf request mix or a regenerated workload trace against /route from N
// concurrent senders, optionally streams demand-update bursts to /demand,
// and reports throughput and latency quantiles (p50/p95/p99) plus the
// server-side counters. When the server exposes /metrics it also scrapes
// the route-latency histogram before and after the run and reports the
// server-side quantiles of the interval next to the client-side ones
// (client includes the HTTP round trip, server only the handler; a >2×
// P99 mismatch beyond that expectation is flagged on stderr). With -json
// the summary is machine-readable; with -golden-out a normalized boolean
// field subset is written for smoke-test diffing.
//
// Usage:
//
//	vodload -addr host:port [-mode zipf|trace] [-duration 5s] [-concurrency 8]
//	        [-updates 0] [-min-rps 0] [-json out.json]
//
// Exit status is nonzero on transport errors, routing errors, or a
// throughput below -min-rps.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vodplace/internal/catalog"
	"vodplace/internal/obs"
	"vodplace/internal/workload"
)

type statusResp struct {
	Version       uint64 `json:"version"`
	Certified     bool   `json:"certified"`
	Videos        int    `json:"videos"`
	VHOs          int    `json:"vhos"`
	RouteRequests int64  `json:"route_requests"`
	RouteErrors   int64  `json:"route_errors"`
	Resolves      struct {
		Swapped int64 `json:"swapped"`
	} `json:"resolves"`
}

type placementResp struct {
	Version uint64 `json:"version"`
	Videos  []struct {
		Video int `json:"video"`
	} `json:"videos"`
}

// summary is the -json report.
type summary struct {
	Addr        string  `json:"addr"`
	Mode        string  `json:"mode"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`

	Requests   int64   `json:"requests"`
	RPS        float64 `json:"rps"`
	HTTPErrors int64   `json:"http_errors"`
	// RouteErrors counts non-200 /route answers — with a universe discovered
	// from /placement these are genuine routing failures.
	RouteErrors int64 `json:"route_errors"`

	LatencyMs obs.Summary `json:"latency_ms"`
	// ServerLatencyMs is the server-side route handler latency over the run
	// (the /metrics histogram delta between the start and end scrapes);
	// absent when the server does not expose /metrics.
	ServerLatencyMs *obs.Summary `json:"server_latency_ms,omitempty"`

	VersionStart  uint64 `json:"version_start"`
	VersionEnd    uint64 `json:"version_end"`
	SwapsObserved int64  `json:"swaps_observed"`
	DemandPosted  int64  `json:"demand_posted"`

	ServerRouteRequests int64 `json:"server_route_requests"`
	ServerRouteErrors   int64 `json:"server_route_errors"`
	ServerSwapped       int64 `json:"server_resolves_swapped"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "", "vodserved address host:port (required)")
		mode        = flag.String("mode", "zipf", "request mix: zipf (synthetic over the served universe) or trace (replay a regenerated workload trace)")
		zipfS       = flag.Float64("zipf", 0.8, "Zipf exponent for -mode zipf")
		duration    = flag.Duration("duration", 5*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 8, "concurrent senders")
		seed        = flag.Int64("seed", 1, "random seed (also the trace seed for -mode trace)")
		updates     = flag.Int("updates", 0, "demand-update bursts to POST during the run")
		updateSize  = flag.Int("update-size", 8, "entries per demand burst")
		updateAdd   = flag.Float64("update-add", 25, "aggregate demand added per entry")
		wait        = flag.Duration("wait", 15*time.Second, "how long to wait for the server to become healthy")
		minRPS      = flag.Float64("min-rps", 0, "fail (exit 1) when sustained rps falls below this")
		jsonOut     = flag.String("json", "", "write the JSON summary to this file (- for stdout)")
		goldenOut   = flag.String("golden-out", "", "write a normalized boolean field subset for smoke diffing")
		traceVideos = flag.Int("videos", 2000, "library size for -mode trace (must match the server)")
		traceRPD    = flag.Float64("rpd", 4, "requests per video per day for -mode trace")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "vodload: -addr is required")
		return 2
	}
	if *mode != "zipf" && *mode != "trace" {
		fmt.Fprintf(os.Stderr, "vodload: unknown -mode %q\n", *mode)
		return 2
	}
	base := "http://" + *addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}

	// Wait for the daemon, then discover the served universe so the load
	// never asks about videos the placement does not contain.
	if err := waitHealthy(client, base, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "vodload: %v\n", err)
		return 1
	}
	var st statusResp
	if err := getJSON(client, base+"/status", &st); err != nil {
		fmt.Fprintf(os.Stderr, "vodload: status: %v\n", err)
		return 1
	}
	var pl placementResp
	if err := getJSON(client, base+"/placement", &pl); err != nil {
		fmt.Fprintf(os.Stderr, "vodload: placement: %v\n", err)
		return 1
	}
	ids := make([]int, len(pl.Videos))
	for i := range pl.Videos {
		ids[i] = pl.Videos[i].Video
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "vodload: server placement holds no videos")
		return 1
	}
	fmt.Printf("vodload: %s serving v%d, %d videos, %d offices\n", *addr, st.Version, len(ids), st.VHOs)

	// First /metrics scrape: the baseline the post-run scrape is diffed
	// against. nil (server without /metrics) disables the server-side report.
	histStart := scrapeRouteHist(client, base)

	// Per-sender request streams.
	streams, err := buildStreams(*mode, ids, st.VHOs, *concurrency, *zipfS, *seed, *traceVideos, *traceRPD)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodload: %v\n", err)
		return 1
	}

	var (
		requests    atomic.Int64
		httpErrors  atomic.Int64
		routeErrors atomic.Int64
	)
	hists := make([]*obs.Histogram, *concurrency)
	for i := range hists {
		hists[i] = new(obs.Histogram)
	}
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := streams[w]
			h := hists[w]
			for time.Now().Before(deadline) {
				video, vho := next()
				url := fmt.Sprintf("%s/route?video=%d&vho=%d", base, video, vho)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					httpErrors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				h.Observe(float64(time.Since(t0).Microseconds()) / 1000)
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					routeErrors.Add(1)
				}
			}
		}(w)
	}

	// Demand bursts: evenly spaced, each followed by a poll for the
	// audit-gated snapshot swap it should trigger.
	var posted atomic.Int64
	if *updates > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 99))
			gap := *duration / time.Duration(*updates+1)
			lastVersion := st.Version
			for u := 0; u < *updates; u++ {
				time.Sleep(gap)
				if !time.Now().Before(deadline) {
					return
				}
				var batch []map[string]any
				for e := 0; e < *updateSize; e++ {
					batch = append(batch, map[string]any{
						"video": ids[rng.Intn(len(ids))],
						"vho":   rng.Intn(st.VHOs),
						"add":   *updateAdd,
					})
				}
				body, _ := json.Marshal(batch) //nolint:errcheck // fixed shape
				resp, err := client.Post(base+"/demand", "application/json", bytes.NewReader(body))
				if err != nil {
					httpErrors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					httpErrors.Add(1)
					continue
				}
				posted.Add(int64(*updateSize))
				// Poll for the swap this burst should cause (bounded by the
				// run deadline; a late swap is caught by the final poll).
				for time.Now().Before(deadline) {
					var cur statusResp
					if err := getJSON(client, base+"/status", &cur); err == nil && cur.Version > lastVersion {
						lastVersion = cur.Version
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// One bounded post-run poll: a resolve kicked near the end may land
	// just after the senders stop.
	var end statusResp
	for i := 0; i < 100; i++ {
		if err := getJSON(client, base+"/status", &end); err != nil {
			fmt.Fprintf(os.Stderr, "vodload: final status: %v\n", err)
			return 1
		}
		if *updates == 0 || end.Resolves.Swapped > 0 || i == 99 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	swaps := int64(end.Version - st.Version)

	merged := new(obs.Histogram)
	for _, h := range hists {
		merged.Merge(h)
	}
	var serverMs *obs.Summary
	if histEnd := scrapeRouteHist(client, base); histEnd != nil {
		serverMs = promSummaryMs(histEnd.Sub(histStart))
	}
	sum := summary{
		Addr:        *addr,
		Mode:        *mode,
		DurationSec: elapsed.Seconds(),
		Concurrency: *concurrency,

		Requests:    requests.Load(),
		RPS:         float64(requests.Load()) / elapsed.Seconds(),
		HTTPErrors:  httpErrors.Load(),
		RouteErrors: routeErrors.Load(),
		LatencyMs:   merged.Summary(),

		ServerLatencyMs: serverMs,

		VersionStart:  st.Version,
		VersionEnd:    end.Version,
		SwapsObserved: swaps,
		DemandPosted:  posted.Load(),

		ServerRouteRequests: end.RouteRequests,
		ServerRouteErrors:   end.RouteErrors,
		ServerSwapped:       end.Resolves.Swapped,
	}

	fmt.Printf("requests:    %d in %.1fs (%.0f rps, %d senders)\n", sum.Requests, sum.DurationSec, sum.RPS, sum.Concurrency)
	fmt.Printf("errors:      http %d, route %d (server-side route errors %d)\n", sum.HTTPErrors, sum.RouteErrors, sum.ServerRouteErrors)
	fmt.Printf("latency ms:  p50 %.3g  p95 %.3g  p99 %.3g  max %.3g\n",
		sum.LatencyMs.P50, sum.LatencyMs.P95, sum.LatencyMs.P99, sum.LatencyMs.Max)
	if serverMs != nil {
		fmt.Printf("server ms:   p50 %.3g  p95 %.3g  p99 %.3g  (handler only, %d requests via /metrics)\n",
			serverMs.P50, serverMs.P95, serverMs.P99, serverMs.Count)
		// The client P99 includes the HTTP round trip, so it normally exceeds
		// the handler-only server P99 by far; the reverse ordering — server
		// P99 more than 2× the client's — can only mean a broken instrument
		// or clock, so that mismatch is flagged.
		if serverMs.P99 > 2*sum.LatencyMs.P99 {
			fmt.Fprintf(os.Stderr, "vodload: warning: server-side p99 %.3gms exceeds 2x client-observed p99 %.3gms (instrument or clock anomaly?)\n",
				serverMs.P99, sum.LatencyMs.P99)
		}
	}
	fmt.Printf("placement:   v%d -> v%d (%d swaps, %d demand entries posted)\n",
		sum.VersionStart, sum.VersionEnd, sum.SwapsObserved, sum.DemandPosted)

	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut, sum); err != nil {
			fmt.Fprintf(os.Stderr, "vodload: %v\n", err)
			return 1
		}
	}
	if *goldenOut != "" {
		g := fmt.Sprintf("mode=%s\nsenders=%d\nnonzero_throughput=%v\nzero_route_errors=%v\nzero_http_errors=%v\nmin_rps_met=%v\nswap_observed=%v\n",
			sum.Mode, sum.Concurrency,
			sum.Requests > 0, sum.RouteErrors == 0, sum.HTTPErrors == 0,
			sum.RPS >= *minRPS, sum.SwapsObserved > 0)
		if err := os.WriteFile(*goldenOut, []byte(g), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vodload: %v\n", err)
			return 1
		}
	}

	if sum.HTTPErrors > 0 || sum.RouteErrors > 0 {
		fmt.Fprintln(os.Stderr, "vodload: errors during run")
		return 1
	}
	if *minRPS > 0 && sum.RPS < *minRPS {
		fmt.Fprintf(os.Stderr, "vodload: %.0f rps below floor %.0f\n", sum.RPS, *minRPS)
		return 1
	}
	return 0
}

// buildStreams returns one request generator per sender. Zipf mode samples
// (video, vho) with rank-r weight r^-s over the served ids; trace mode
// regenerates the synthetic workload trace (same recipe and seed as the
// server) and replays its request sequence, filtered to the served
// universe, sharded round-robin across senders.
func buildStreams(mode string, ids []int, vhos, concurrency int, zipfS float64, seed int64, traceVideos int, traceRPD float64) ([]func() (int, int), error) {
	streams := make([]func() (int, int), concurrency)
	switch mode {
	case "zipf":
		w := workload.ZipfWeights(len(ids), zipfS)
		for i := range streams {
			smp := workload.NewSampler(w, seed+int64(i)*1000)
			streams[i] = func() (int, int) {
				return ids[smp.Next()], smp.Intn(vhos)
			}
		}
	case "trace":
		lib := catalog.Generate(catalog.Config{NumVideos: traceVideos, Weeks: 2}, seed+10)
		tr := workload.GenerateTrace(lib, workload.TraceConfig{
			Days: 8, NumVHOs: vhos, RequestsPerVideoPerDay: traceRPD,
		}, seed+20)
		served := make(map[int]bool, len(ids))
		for _, id := range ids {
			served[id] = true
		}
		type req struct{ video, vho int }
		var reqs []req
		for _, r := range tr.Requests {
			if served[int(r.Video)] && int(r.VHO) < vhos {
				reqs = append(reqs, req{int(r.Video), int(r.VHO)})
			}
		}
		if len(reqs) == 0 {
			return nil, fmt.Errorf("trace replay: no trace request targets a served video (mismatched -videos/-seed?)")
		}
		for i := range streams {
			pos := i // round-robin shard: sender i replays reqs[i], reqs[i+c], ...
			streams[i] = func() (int, int) {
				r := reqs[pos%len(reqs)]
				pos += concurrency
				return r.video, r.vho
			}
		}
	}
	return streams, nil
}

// scrapeRouteHist fetches /metrics and extracts the route-endpoint latency
// histogram. Any failure (no /metrics on the server, parse error, family
// absent) returns nil — the server-side report is best-effort.
func scrapeRouteHist(client *http.Client, base string) *obs.PromHist {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		return nil
	}
	return obs.ExtractPromHist(samples, obs.PromReqDurName, map[string]string{"endpoint": "route"})
}

// promSummaryMs renders an interval histogram (seconds) as the millisecond
// Summary the report uses. nil when the interval holds no samples.
func promSummaryMs(h *obs.PromHist) *obs.Summary {
	if h == nil || h.Count <= 0 {
		return nil
	}
	s := &obs.Summary{
		Count: int64(h.Count),
		Sum:   h.Sum * 1e3,
		P50:   h.Quantile(0.50) * 1e3,
		P90:   h.Quantile(0.90) * 1e3,
		P95:   h.Quantile(0.95) * 1e3,
		P99:   h.Quantile(0.99) * 1e3,
		Max:   h.Quantile(1) * 1e3,
	}
	s.Mean = s.Sum / float64(s.Count)
	return s
}

func waitHealthy(client *http.Client, base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not healthy after %s: %w", wait, err)
			}
			return fmt.Errorf("server not healthy after %s", wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
