package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches the built binary on an ephemeral port and waits for
// it to report healthy. Returns the command and the bound address.
func startDaemon(t *testing.T, bin string, extra ...string) (*exec.Cmd, string, *strings.Builder) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-videos", "60", "-vhos", "8", "-passes", "60", "-seed", "1",
	}, extra...)
	cmd := exec.Command(bin, args...)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck // cleanup of an already-exited process is fine
			cmd.Wait()         //nolint:errcheck
		}
	})

	deadline := time.Now().Add(60 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote %s\noutput:\n%s", addrFile, out.String())
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon on %s never became healthy\noutput:\n%s", addr, out.String())
		}
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return cmd, addr, &out
}

// TestSIGTERMGracefulShutdown: a SIGTERM mid-resolve drains in-flight
// requests, discards the partial solve, and exits 0.
func TestSIGTERMGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon and solves a placement")
	}
	bin := buildBinary(t)
	// Whether the signal lands mid-solve or just after the re-solve resolves
	// is timing-dependent at the binary level; the deterministic discard path
	// is pinned in-process by serve's TestCloseDiscardsInflightResolve.
	cmd, addr, out := startDaemon(t, bin, "-passes", "300", "-eps", "0.02")

	// Kick a background re-solve so the signal lands while one is in flight.
	var pl struct {
		Videos []struct {
			Video int `json:"video"`
		} `json:"videos"`
	}
	plResp, err := http.Get("http://" + addr + "/placement")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(plResp.Body).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	plResp.Body.Close()
	if len(pl.Videos) == 0 {
		t.Fatal("empty placement")
	}
	body := strings.NewReader(fmt.Sprintf(`[{"video":%d,"vho":0,"add":1000}]`, pl.Videos[0].Video))
	resp, err := http.Post("http://"+addr+"/demand", "application/json", body)
	if err != nil {
		t.Fatalf("post demand: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post demand: status %d", resp.StatusCode)
	}
	time.Sleep(150 * time.Millisecond) // let the resolver enter the solve

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited nonzero: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\noutput:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "clean shutdown") {
		t.Errorf("no 'clean shutdown' line in output:\n%s", s)
	}
	// The kicked re-solve must have been accounted for one way or another:
	// discarded by the shutdown, swapped in before the signal landed, or
	// completed-and-rejected. Silence would mean the resolver lost it.
	if !strings.Contains(s, "resolve discarded (shutdown)") &&
		!strings.Contains(s, "swapped in") &&
		!strings.Contains(s, "keeping v") {
		t.Errorf("the kicked re-solve left no trace in output:\n%s", s)
	}
}

// TestServeSmokeEndpoints: one daemon, every endpoint answers with the
// documented contract.
func TestServeSmokeEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon and solves a placement")
	}
	bin := buildBinary(t)
	cmd, addr, out := startDaemon(t, bin)
	base := "http://" + addr

	// Discover a real video id so the 200 case cannot 404 by accident.
	var pl struct {
		Videos []struct {
			Video int `json:"video"`
		} `json:"videos"`
	}
	resp, err := http.Get(base + "/placement")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pl.Videos) == 0 {
		t.Fatal("empty placement")
	}

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/healthz", 200},
		{"/status", 200},
		{"/placement", 200},
		{fmt.Sprintf("/route?video=%d&vho=0", pl.Videos[0].Video), 200},
		{"/route?video=abc&vho=0", 400},
		{"/route?video=999999&vho=0", 404},
	} {
		resp, err := http.Get(base + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited nonzero: %v\noutput:\n%s", err, out.String())
	}
}
