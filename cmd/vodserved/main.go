// Command vodserved runs the placement service: it synthesizes (or scales)
// a workload the same way vodplace does, solves and audits the initial
// placement, then serves routing lookups from an immutable snapshot while a
// background resolver folds streamed demand updates into warm-started,
// audit-gated re-placements.
//
// Endpoints: GET /route?video=&vho=, GET /placement, GET /healthz,
// GET /status, POST /demand. See DESIGN.md §12.
//
// Usage:
//
//	vodserved [-addr :8080] [-videos 2000] [-vhos 55] [-seed 1] ...
//
// SIGINT/SIGTERM drains in-flight requests, discards any in-flight
// re-solve, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vodplace/internal/catalog"
	"vodplace/internal/core"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/obs"
	"vodplace/internal/prof"
	"vodplace/internal/serve"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
		videos   = flag.Int("videos", 2000, "library size")
		vhos     = flag.Int("vhos", 55, "number of offices (55 = backbone)")
		rpd      = flag.Float64("rpd", 4, "requests per video per day")
		disk     = flag.Float64("disk", 2.0, "aggregate disk as multiple of library size")
		link     = flag.Float64("link", 1000, "uniform link capacity in Mb/s")
		slices   = flag.Int("slices", 2, "number of peak-window link constraints |T|")
		window   = flag.Int64("window", 3600, "peak window length in seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		passes   = flag.Int("passes", 120, "solver pass cap (initial solve and re-solves)")
		eps      = flag.Float64("eps", 0, "solver epsilon (0 = solver default)")
		warmOff  = flag.Bool("warm-off", false, "disable warm-starting re-solves from the last swapped solve")
		updateW  = flag.Float64("update-weight", 0, "migration-cost weight charged against moving copies between snapshots (0 = off)")
	)
	profFlags := prof.Register(flag.CommandLine)
	obsFlags := obs.Register(flag.CommandLine)
	flag.Parse()

	profStop, err := prof.Start(profFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		return 1
	}
	rec, obsStop, err := obs.Start(obsFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		profStop() //nolint:errcheck // already failing
		return 1
	}
	code := serveMain(*addr, *addrFile, genConfig{
		videos: *videos, vhos: *vhos, rpd: *rpd, disk: *disk, link: *link,
		slices: *slices, window: *window, seed: *seed,
	}, serve.Config{
		Solver: epf.Options{
			Seed: *seed, MaxPasses: *passes, Epsilon: *eps,
			// Fast solver defaults, unconditional: the serving loop's whole
			// point is re-solve latency, and the -h surface is pinned by
			// help.golden, so there is no legacy escape flag here.
			IncrementalPricing: true,
			ParallelRound:      true,
		},
		WarmOff:      *warmOff,
		UpdateWeight: *updateW,
		Recorder:     rec,
		// Share the recorder's registry (nil without -trace-out, which makes
		// the server create its own): one /metrics exposition then carries
		// both the request counters and the event-derived families.
		Metrics: rec.Metrics(),
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err := obsStop(); err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if err := profStop(); err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// genConfig mirrors vodplace's instance-generation knobs.
type genConfig struct {
	videos, vhos, slices int
	rpd, disk, link      float64
	window, seed         int64
}

// buildInstance synthesizes the daemon's placement instance exactly the way
// vodplace does, so a served placement is reproducible offline.
func buildInstance(c genConfig) (*topology.Graph, *demand.Builder, *workload.Trace, error) {
	var g *topology.Graph
	if c.vhos == 55 {
		g = topology.Backbone55()
	} else {
		g = topology.Random(c.vhos, 1.4, c.seed)
	}
	lib := catalog.Generate(catalog.Config{NumVideos: c.videos, Weeks: 2}, c.seed+10)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 8, NumVHOs: c.vhos, RequestsPerVideoPerDay: c.rpd,
	}, c.seed+20)
	b := &demand.Builder{
		G: g, Lib: lib,
		DiskGB:      core.UniformDisk(lib, c.vhos, c.disk),
		LinkCapMbps: core.UniformLinks(g, c.link),
		Cfg:         demand.Config{Slices: c.slices, WindowSec: c.window, HorizonDays: 7},
	}
	return g, b, tr, nil
}

func serveMain(addr, addrFile string, gen genConfig, cfg serve.Config) int {
	g, builder, tr, err := buildInstance(gen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		return 1
	}
	inst, err := builder.Instance(tr, 7)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		return 1
	}
	fmt.Printf("instance: %d offices, %d links, %d videos, %d time slices\n",
		inst.NumVHOs(), g.NumLinks(), inst.NumVideos(), inst.Slices)

	start := time.Now()
	s, err := serve.New(inst, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		return 1
	}
	defer s.Close()
	fmt.Printf("initial placement certified in %.1fs, serving v%d\n",
		time.Since(start).Seconds(), s.Snapshot().Version)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
			ln.Close() //nolint:errcheck
			return 1
		}
	}
	fmt.Printf("listening on %s\n", bound)

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// SIGINT/SIGTERM: drain in-flight requests, then stop the resolver
	// (discarding any in-flight re-solve) and exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("shutting down")
		drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(drain); err != nil {
			fmt.Fprintf(os.Stderr, "vodserved: shutdown: %v\n", err)
			return 1
		}
		<-serveErr // Serve has returned ErrServerClosed
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "vodserved: %v\n", err)
			return 1
		}
	}
	s.Close()
	fmt.Println("clean shutdown")
	return 0
}
