package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// Normalizers: wall time and ephemeral port numbers are the only
// non-deterministic parts of the pinned output.
var (
	timingRe = regexp.MustCompile(`\d+\.\d+s`)
	addrRe   = regexp.MustCompile(`(listening on )\S+`)
	usageRe  = regexp.MustCompile(`Usage of \S+:`)
)

func normalize(b []byte) []byte {
	b = timingRe.ReplaceAll(b, []byte("X.Xs"))
	b = addrRe.ReplaceAll(b, []byte("${1}HOST:PORT"))
	b = usageRe.ReplaceAll(b, []byte("Usage of vodserved:"))
	return b
}

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vodserved")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestGoldenHelp pins the daemon's -h output so flag renames and help-text
// drift show up in review. Regenerate with
// `go test ./cmd/vodserved -run Golden -update` after an intentional change.
func TestGoldenHelp(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-h").CombinedOutput()
	if err != nil {
		// flag.PrintDefaults exits 0 via flag.ErrHelp handling in the stdlib
		// FlagSet; the binary uses the default CommandLine which exits 2.
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Fatalf("run -h: %v\n%s", err, out)
		}
	}
	got := normalize(out)
	golden := filepath.Join("testdata", "help.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-h output differs from %s (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
