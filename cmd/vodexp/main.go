// Command vodexp regenerates the paper's tables and figures.
//
// Usage:
//
//	vodexp -list
//	vodexp -exp fig5 [-videos 2000] [-days 28] [-vhos 55] [-seed 1]
//	vodexp -exp all -quick
//
// Each experiment prints the same rows or series the corresponding paper
// artifact reports; EXPERIMENTS.md maps outputs to paper numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"vodplace/internal/experiments"
	"vodplace/internal/obs"
	"vodplace/internal/prof"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiments and exit")
		exp    = flag.String("exp", "", "experiment id (fig2..fig13, table2..table6, rounding) or 'all'")
		videos = flag.Int("videos", 0, "library size (default 2000; quick 300)")
		days   = flag.Int("days", 0, "trace days (default 28; quick 16)")
		vhos   = flag.Int("vhos", 0, "number of offices (default 55 = backbone)")
		rpd    = flag.Float64("rpd", 0, "requests per video per day (default 4; quick 2)")
		disk   = flag.Float64("disk", 0, "aggregate disk as multiple of library size (default 2)")
		link   = flag.Float64("link", 0, "uniform link capacity in Mb/s (default 1000)")
		seed   = flag.Int64("seed", 0, "random seed (default 1)")
		passes = flag.Int("passes", 0, "solver pass cap (default 80)")
		eps    = flag.Float64("eps", 0, "solver convergence tolerance (default: solver's)")
		shards = flag.Int("shards", 0, "catalog shards for block scheduling (0/1 = unsharded; any value yields bit-identical results)")
		quick  = flag.Bool("quick", false, "reduced scale for smoke runs")
		doAud  = flag.Bool("verify", false, "re-check every solver result with the independent certificate auditor")
		warm   = flag.Bool("warm", true, "seed each placement period's solve from the previous period's final state (cross-period warm starts)")
		cold   = flag.Bool("cold", false, "force cold per-period solves (overrides -warm)")
		noIncr = flag.Bool("no-incremental", false, "run the legacy sequential solver mode (no incremental pricing, sequential rounding)")
	)
	profFlags := prof.Register(flag.CommandLine)
	obsFlags := obs.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "vodexp: -exp required (or -list); see -h")
		os.Exit(2)
	}
	profStop, err := prof.Start(profFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodexp: %v\n", err)
		os.Exit(1)
	}
	rec, obsStop, err := obs.Start(obsFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodexp: %v\n", err)
		profStop() //nolint:errcheck // already failing
		os.Exit(1)
	}
	// Every exit path runs obsStop so an interrupted experiment still keeps
	// its buffered trace.
	exit := func(code int) {
		if err := obsStop(); err != nil {
			fmt.Fprintf(os.Stderr, "vodexp: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		if err := profStop(); err != nil {
			fmt.Fprintf(os.Stderr, "vodexp: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}
	cfg := experiments.Config{
		Videos:                 *videos,
		Days:                   *days,
		VHOs:                   *vhos,
		RequestsPerVideoPerDay: *rpd,
		DiskFactor:             *disk,
		LinkCapMbps:            *link,
		Seed:                   *seed,
		MaxPasses:              *passes,
		Epsilon:                *eps,
		Shards:                 *shards,
		Quick:                  *quick,
		Verify:                 *doAud,
		Warm:                   *warm && !*cold,
		NoIncremental:          *noIncr,
		Recorder:               rec,
	}
	// Ctrl-C / SIGTERM cancels the running experiment cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *exp == "all" {
		if err := experiments.RunAll(ctx, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "vodexp: %v\n", err)
			exit(1)
		}
		exit(0)
	}
	r, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "vodexp: unknown experiment %q; use -list\n", *exp)
		exit(2)
	}
	fmt.Printf("==== %s: %s ====\n", r.ID, r.Title)
	if err := r.Run(ctx, os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vodexp: %v\n", err)
		exit(1)
	}
	exit(0)
}
