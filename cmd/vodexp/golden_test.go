package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// timingRe matches wall-clock durations; fixed-seed output is otherwise
// byte-stable.
var timingRe = regexp.MustCompile(`\d+\.\d+s`)

func normalize(b []byte) []byte { return timingRe.ReplaceAll(b, []byte("X.Xs")) }

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vodexp")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestGolden pins the output of fixed-seed experiment runs (the fast
// analysis experiments, so the suite stays cheap). Regenerate with
// `go test ./cmd/vodexp -run Golden -update` after an intentional change.
func TestGolden(t *testing.T) {
	bin := buildBinary(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		// fig2/fig4 goldens predate the incremental + warm defaults and pin
		// the legacy trajectory through the escape hatches; fig2_fast pins
		// the same experiment under the new defaults.
		{"list", []string{"-list"}},
		{"fig2_quick", []string{"-exp", "fig2", "-quick", "-verify", "-cold", "-no-incremental"}},
		{"fig4_quick", []string{"-exp", "fig4", "-quick", "-cold", "-no-incremental"}},
		{"fig2_fast", []string{"-exp", "fig2", "-quick", "-verify"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			got := normalize(out)
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output differs from %s (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
			}
		})
	}
}
