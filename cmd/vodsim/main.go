// Command vodsim plays a synthetic request trace against the MIP placement
// scheme and the paper's caching baselines, printing the §VII-B comparison:
// peak link bandwidth, total hop-weighted transfer volume, and the fraction
// of requests served locally.
//
// Usage:
//
//	vodsim [-videos 2000] [-days 28] [-vhos 55] [-disk 2.0] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"vodplace/internal/cache"
	"vodplace/internal/core"
	"vodplace/internal/epf"
	"vodplace/internal/experiments"
	"vodplace/internal/obs"
	"vodplace/internal/prof"
	"vodplace/internal/sim"
)

func main() {
	var (
		videos = flag.Int("videos", 2000, "library size")
		days   = flag.Int("days", 28, "trace days")
		vhos   = flag.Int("vhos", 55, "number of offices")
		rpd    = flag.Float64("rpd", 4, "requests per video per day")
		disk   = flag.Float64("disk", 2.0, "aggregate disk as multiple of library size")
		link   = flag.Float64("link", 1000, "uniform link capacity in Mb/s")
		seed   = flag.Int64("seed", 1, "random seed")
		passes = flag.Int("passes", 80, "solver pass cap")
		topK   = flag.Int("topk", 100, "K for the Top-K+LRU baseline")
		origin = flag.Bool("origin", false, "also run LRU with 4 regional origin servers")
		noIncr = flag.Bool("no-incremental", false, "run the legacy sequential solver mode (no incremental pricing, sequential rounding)")
	)
	profFlags := prof.Register(flag.CommandLine)
	obsFlags := obs.Register(flag.CommandLine)
	flag.Parse()

	profStop, err := prof.Start(profFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodsim: %v\n", err)
		os.Exit(1)
	}
	rec, obsStop, err := obs.Start(obsFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodsim: %v\n", err)
		profStop() //nolint:errcheck // already failing
		os.Exit(1)
	}
	// Every exit path runs obsStop so an interrupted comparison still keeps
	// the buffered trace of the schemes that finished.
	exit := func(code int) {
		if err := obsStop(); err != nil {
			fmt.Fprintf(os.Stderr, "vodsim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		if err := profStop(); err != nil {
			fmt.Fprintf(os.Stderr, "vodsim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	// Ctrl-C / SIGTERM cancels the MIP solves cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sc := experiments.NewScenario(experiments.Config{
		Videos: *videos, Days: *days, VHOs: *vhos,
		RequestsPerVideoPerDay: *rpd, DiskFactor: *disk, LinkCapMbps: *link,
		Seed: *seed, MaxPasses: *passes,
	})
	fmt.Printf("scenario: %d offices (%s), %d videos (%.0f GB), %d days, %d requests\n",
		sc.G.NumNodes(), sc.G.Name(), sc.Lib.Len(), sc.Lib.TotalSizeGB(), sc.Trace.Days, len(sc.Trace.Requests))

	report := func(name string, r *sim.Result) {
		fmt.Printf("%-14s peak %8.0f Mb/s   total %12.0f GBxhop   local %6.2f%%   migrated %d\n",
			name, r.MaxLinkMbps, r.TotalGBHop, 100*r.LocalFrac, r.MigratedVideos)
	}

	mipRun, err := sc.Sys.RunMIPContext(ctx, sc.Trace, core.MIPOptions{
		Solver: epf.Options{
			Seed: *seed, MaxPasses: *passes, Recorder: rec,
			IncrementalPricing: !*noIncr,
			ParallelRound:      !*noIncr,
		},
		Recorder: rec,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vodsim: mip: %v\n", err)
		exit(1)
	}
	report("mip", mipRun.Sim)

	for _, b := range []struct {
		name string
		opts core.BaselineOptions
	}{
		{"random+lru", core.BaselineOptions{Policy: cache.LRU, Seed: *seed}},
		{"random+lfu", core.BaselineOptions{Policy: cache.LFU, Seed: *seed}},
		{fmt.Sprintf("top%d+lru", *topK), core.BaselineOptions{Policy: cache.LRU, TopK: *topK, Seed: *seed}},
	} {
		b.opts.Recorder = rec
		b.opts.Scheme = b.name
		r, err := sc.Sys.RunBaseline(sc.Trace, b.opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodsim: %s: %v\n", b.name, err)
			exit(1)
		}
		report(b.name, r)
	}
	if *origin {
		r, err := sc.Sys.RunOriginLRU(sc.Trace, 4, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vodsim: origin: %v\n", err)
			exit(1)
		}
		report("origin+lru", r)
	}
	exit(0)
}
