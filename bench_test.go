// Benchmarks regenerating every table and figure of the paper's evaluation,
// at reduced (Quick) scale so the full suite completes on a laptop. Each
// benchmark iteration performs the complete experiment — workload synthesis,
// placement solves, trace simulation — and discards the printed report; run
// cmd/vodexp for full-scale, human-readable output.
//
// Micro-benchmarks for the core solver components follow the per-artifact
// benchmarks.
package vodplace

import (
	"context"
	"io"
	"testing"

	"vodplace/internal/cache"
	"vodplace/internal/core"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/experiments"
	"vodplace/internal/workload"
)

// benchCfg is the reduced scale used by the per-artifact benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, Seed: 1, MaxPasses: 30}
}

// tinyCfg further shrinks experiments that run many solver invocations
// (binary searches, frequency sweeps).
func tinyCfg() experiments.Config {
	return experiments.Config{Quick: true, Videos: 200, Days: 14, VHOs: 8,
		RequestsPerVideoPerDay: 2, Seed: 1, MaxPasses: 25}
}

func runExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(context.Background(), io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 2: working set size during peak hours.
func BenchmarkFig2WorkingSet(b *testing.B) { runExperiment(b, "fig2", benchCfg()) }

// Fig. 3: request-mix cosine similarity vs window size.
func BenchmarkFig3Similarity(b *testing.B) { runExperiment(b, "fig3", benchCfg()) }

// Fig. 4: per-episode daily request counts.
func BenchmarkFig4Series(b *testing.B) { runExperiment(b, "fig4", benchCfg()) }

// Fig. 5: peak link bandwidth, MIP vs caching baselines.
func BenchmarkFig5PeakBandwidth(b *testing.B) { runExperiment(b, "fig5", benchCfg()) }

// Fig. 6: aggregate transfer volume per scheme.
func BenchmarkFig6Aggregate(b *testing.B) { runExperiment(b, "fig6", benchCfg()) }

// Fig. 7: disk usage by popularity class.
func BenchmarkFig7DiskByPopularity(b *testing.B) { runExperiment(b, "fig7", benchCfg()) }

// Fig. 8: copies per video by demand rank.
func BenchmarkFig8Copies(b *testing.B) { runExperiment(b, "fig8", benchCfg()) }

// Fig. 9: pure LRU cache cycling and uncachable requests.
func BenchmarkFig9LRUBehavior(b *testing.B) { runExperiment(b, "fig9", benchCfg()) }

// Fig. 10 / Table II: MIP vs LRU caching with origin servers.
func BenchmarkTable2Origin(b *testing.B) { runExperiment(b, "table2", tinyCfg()) }

// Fig. 11: feasibility region (disk vs link capacity).
func BenchmarkFig11Feasibility(b *testing.B) { runExperiment(b, "fig11", tinyCfg()) }

// Fig. 12: complementary cache sweep.
func BenchmarkFig12CacheSweep(b *testing.B) { runExperiment(b, "fig12", tinyCfg()) }

// Fig. 13: link capacity vs library size.
func BenchmarkFig13LibraryGrowth(b *testing.B) { runExperiment(b, "fig13", tinyCfg()) }

// Table III: running time and memory, EPF vs the general LP baseline.
func BenchmarkTable3Scalability(b *testing.B) { runExperiment(b, "table3", tinyCfg()) }

// Table IV: topology vs feasible link capacity.
func BenchmarkTable4Topology(b *testing.B) { runExperiment(b, "table4", tinyCfg()) }

// Table V: peak-window size vs bandwidth.
func BenchmarkTable5Windows(b *testing.B) { runExperiment(b, "table5", tinyCfg()) }

// Table VI: placement update frequency and estimation accuracy.
func BenchmarkTable6Updates(b *testing.B) { runExperiment(b, "table6", tinyCfg()) }

// §V-D: rounding optimality gap and violation.
func BenchmarkRoundingStats(b *testing.B) { runExperiment(b, "rounding", tinyCfg()) }

// ---- Core component micro-benchmarks ----

// benchInstance builds a mid-size placement instance once.
func benchInstance(b *testing.B) (*Instance, *experiments.Scenario) {
	b.Helper()
	sc := experiments.NewScenario(experiments.Config{
		Videos: 500, Days: 8, VHOs: 20, RequestsPerVideoPerDay: 2, Seed: 1})
	builder := &demand.Builder{
		G: sc.G, Lib: sc.Lib,
		DiskGB:      core.UniformDisk(sc.Lib, 20, 2.0),
		LinkCapMbps: core.UniformLinks(sc.G, 1000),
	}
	inst, err := builder.Instance(sc.Trace, 7)
	if err != nil {
		b.Fatal(err)
	}
	return inst, sc
}

// BenchmarkEPFSolve measures the fractional LP solve (the paper's core
// speed claim).
func BenchmarkEPFSolve(b *testing.B) {
	inst, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := epf.Solve(inst, epf.Options{Seed: 1, MaxPasses: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEPFSolveInteger measures LP solve plus rounding.
func BenchmarkEPFSolveInteger(b *testing.B) {
	inst, _ := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := epf.SolveInteger(inst, epf.Options{Seed: 1, MaxPasses: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures trace playback speed
// (requests/op via b.ReportMetric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	_, sc := benchInstance(b)
	pinned := make([][]int, 20)
	for _, v := range sc.Lib.Videos {
		pinned[v.ID%20] = append(pinned[v.ID%20], v.ID)
	}
	cfg := SimConfig{G: sc.G, Lib: sc.Lib, Pinned: pinned}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, sc.Trace); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(sc.Trace.Requests)), "requests/op")
}

// BenchmarkTraceGeneration measures workload synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	lib := GenerateLibrary(LibraryConfig{NumVideos: 1000, Weeks: 2}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateTrace(lib, TraceConfig{Days: 7, NumVHOs: 20, RequestsPerVideoPerDay: 2}, int64(i)+1)
	}
}

// BenchmarkDemandEstimation measures instance assembly from history.
func BenchmarkDemandEstimation(b *testing.B) {
	sc := experiments.NewScenario(experiments.Config{
		Videos: 1000, Days: 14, VHOs: 20, RequestsPerVideoPerDay: 2, Seed: 1})
	builder := &demand.Builder{
		G: sc.G, Lib: sc.Lib,
		DiskGB:      core.UniformDisk(sc.Lib, 20, 2.0),
		LinkCapMbps: core.UniformLinks(sc.G, 1000),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Instance(sc.Trace, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeakConcurrency measures the f_j^m(t) sweep.
func BenchmarkPeakConcurrency(b *testing.B) {
	sc := experiments.NewScenario(experiments.Config{
		Videos: 1000, Days: 14, VHOs: 20, RequestsPerVideoPerDay: 2, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Trace.PeakConcurrency(0, 7*workload.SecondsPerDay)
	}
}

// ---- Scheme-comparison parallelism benchmarks ----

// compareCfg is the scale for the CompareSchemes parallel-vs-serial pair.
// The MIP scheme dominates, so the parallel speedup is bounded by how much
// of the three baseline simulations overlaps with the solve.
func compareCfg() experiments.Config {
	return experiments.Config{Quick: true, Seed: 1, MaxPasses: 30}
}

// BenchmarkCompareSchemesParallel fans the four schemes (MIP, Random+LRU,
// Random+LFU, Top-K+LRU) across the shared worker pool.
func BenchmarkCompareSchemesParallel(b *testing.B) {
	sc := experiments.NewScenario(compareCfg())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CompareSchemes(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareSchemesSerial runs the same four schemes one after
// another — the pre-refactor behavior — as the baseline for the parallel
// fan-out above.
func BenchmarkCompareSchemesSerial(b *testing.B) {
	sc := experiments.NewScenario(compareCfg())
	topK := sc.Cfg.Videos / 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Sys.RunMIP(sc.Trace, core.MIPOptions{
			Solver: epf.Options{Seed: sc.Cfg.Seed, MaxPasses: sc.Cfg.MaxPasses},
		}); err != nil {
			b.Fatal(err)
		}
		for _, opts := range []core.BaselineOptions{
			{Policy: cache.LRU, Seed: sc.Cfg.Seed},
			{Policy: cache.LFU, Seed: sc.Cfg.Seed},
			{Policy: cache.LRU, TopK: topK, Seed: sc.Cfg.Seed},
		} {
			if _, err := sc.Sys.RunBaseline(sc.Trace, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Ablation benchmarks (design choices DESIGN.md calls out) ----

// ablationRun solves the shared instance with opts and reports the final
// optimality gap and violation as benchmark metrics, so variants can be
// compared at equal pass budgets.
func ablationRun(b *testing.B, opts epf.Options) {
	inst, _ := benchInstance(b)
	b.ResetTimer()
	var gap, viol float64
	for i := 0; i < b.N; i++ {
		res, err := epf.Solve(inst, opts)
		if err != nil {
			b.Fatal(err)
		}
		gap, viol = res.Gap, res.Violation.Max()
	}
	b.ReportMetric(gap, "gap")
	b.ReportMetric(viol, "maxviol")
}

// BenchmarkAblationShuffledOrder is the paper's Appendix observation:
// re-randomizing the block order each pass converges far faster than a
// fixed round-robin. Compare gap/maxviol at the same pass budget.
func BenchmarkAblationShuffledOrder(b *testing.B) {
	ablationRun(b, epf.Options{Seed: 1, MaxPasses: 25})
}

// BenchmarkAblationFixedOrder is the fixed-order control.
func BenchmarkAblationFixedOrder(b *testing.B) {
	ablationRun(b, epf.Options{Seed: 1, MaxPasses: 25, NoShuffle: true})
}

// BenchmarkAblationChunk1 refreshes duals after every block (maximum
// freshness, no batching).
func BenchmarkAblationChunk1(b *testing.B) {
	ablationRun(b, epf.Options{Seed: 1, MaxPasses: 25, ChunkSize: 1})
}

// BenchmarkAblationChunkWholePass freezes duals for an entire pass
// (the failure mode adaptive chunking avoids).
func BenchmarkAblationChunkWholePass(b *testing.B) {
	ablationRun(b, epf.Options{Seed: 1, MaxPasses: 25, ChunkSize: 1 << 20})
}

// BenchmarkAblationSparseLB computes lower bounds only every 5th pass,
// trading bound quality for pass throughput.
func BenchmarkAblationSparseLB(b *testing.B) {
	ablationRun(b, epf.Options{Seed: 1, MaxPasses: 25, LBEvery: 5})
}
