package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	c := New(LRU, 3)
	if !c.Admit(1, 1) || !c.Admit(2, 1) || !c.Admit(3, 1) {
		t.Fatal("admissions failed")
	}
	if c.UsedGB() != 3 || c.Len() != 3 {
		t.Fatalf("used %g len %d", c.UsedGB(), c.Len())
	}
	// Touch 1 so 2 becomes the LRU victim.
	if !c.Lookup(1) {
		t.Fatal("1 should be cached")
	}
	if !c.Admit(4, 1) {
		t.Fatal("admit 4 failed")
	}
	if c.Contains(2) {
		t.Error("2 should have been evicted (LRU)")
	}
	if !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Error("wrong survivors")
	}
	st := c.Stats()
	if st.Evicted != 1 || st.Admitted != 4 || st.Hits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestLFUBasics(t *testing.T) {
	c := New(LFU, 3)
	c.Admit(1, 1)
	c.Admit(2, 1)
	c.Admit(3, 1)
	// Make 1 and 3 popular; 2 stays at freq 1 and must be the victim.
	c.Lookup(1)
	c.Lookup(1)
	c.Lookup(3)
	if !c.Admit(4, 1) {
		t.Fatal("admit 4 failed")
	}
	if c.Contains(2) {
		t.Error("2 should have been evicted (LFU)")
	}
}

func TestRetainBlocksEviction(t *testing.T) {
	c := New(LRU, 2)
	c.Admit(1, 1)
	c.Admit(2, 1)
	c.Retain(1)
	c.Retain(2)
	if c.Admit(3, 1) {
		t.Error("admit should fail with everything referenced")
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", c.Stats().Rejected)
	}
	if c.ReferencedGB() != 2 {
		t.Errorf("ReferencedGB = %g, want 2", c.ReferencedGB())
	}
	c.Release(1)
	if !c.Admit(3, 1) {
		t.Error("admit should succeed after release")
	}
	if c.Contains(1) {
		t.Error("1 should have been evicted after release")
	}
	if !c.Contains(2) {
		t.Error("2 is referenced and must survive")
	}
}

func TestAdmitOversized(t *testing.T) {
	c := New(LRU, 1)
	if c.Admit(1, 2) {
		t.Error("oversized admit should fail")
	}
	if c.Admit(1, 0.5) != true {
		t.Error("fitting admit should succeed")
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(LRU, 0)
	if c.Admit(1, 0.5) {
		t.Error("zero-capacity cache admitted a video")
	}
	if c.Lookup(1) {
		t.Error("zero-capacity cache claims a hit")
	}
}

func TestAdmitExistingRefreshes(t *testing.T) {
	c := New(LRU, 2)
	c.Admit(1, 1)
	c.Admit(2, 1)
	c.Admit(1, 1) // refresh, no growth
	if c.UsedGB() != 2 {
		t.Errorf("used %g, want 2", c.UsedGB())
	}
	c.Admit(3, 1) // evicts 2 (1 was refreshed)
	if c.Contains(2) || !c.Contains(1) {
		t.Error("refresh did not update recency")
	}
}

func TestRemove(t *testing.T) {
	c := New(LFU, 2)
	c.Admit(1, 1)
	c.Retain(1)
	c.Remove(1) // Remove works even when referenced
	if c.Contains(1) || c.UsedGB() != 0 {
		t.Error("remove failed")
	}
	c.Remove(99) // no-op
}

func TestVariableSizes(t *testing.T) {
	c := New(LRU, 3)
	c.Admit(1, 2)
	c.Admit(2, 0.5)
	if !c.Admit(3, 2) { // must evict both 1 and 2? 2+0.5+2 > 3: evict 1 (LRU) -> 0.5+2 fits
		t.Fatal("admit 3 failed")
	}
	if c.Contains(1) {
		t.Error("1 should be evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("2 and 3 should be cached")
	}
	if c.UsedGB() != 2.5 {
		t.Errorf("used %g, want 2.5", c.UsedGB())
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" {
		t.Error("bad policy names")
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy should format")
	}
}

// Property: under random workloads, used size equals the sum of cached
// entries, never exceeds capacity, and stats balance.
func TestCacheInvariants(t *testing.T) {
	f := func(seed int64, policyRaw bool, ops []uint16) bool {
		policy := LRU
		if policyRaw {
			policy = LFU
		}
		rng := rand.New(rand.NewSource(seed))
		c := New(policy, 5)
		sizes := map[int]float64{}
		for _, op := range ops {
			video := int(op % 40)
			switch op % 5 {
			case 0, 1:
				c.Lookup(video)
			case 2:
				size := 0.5 + rng.Float64()*2
				if c.Contains(video) {
					size = sizes[video]
				}
				if c.Admit(video, size) {
					sizes[video] = size
				}
			case 3:
				c.Retain(video)
			case 4:
				c.Release(video)
			}
			if c.UsedGB() > c.CapGB()+1e-9 {
				return false
			}
			var sum float64
			for v := range sizes {
				if c.Contains(v) {
					sum += sizes[v]
				}
			}
			if diff := sum - c.UsedGB(); diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		st := c.Stats()
		return st.Hits >= 0 && st.Admitted >= st.Evicted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// LFU heap stress: many admissions with interleaved retains must never
// corrupt the heap (verified indirectly by consistent eviction behavior).
func TestLFUStress(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(LFU, 10)
	retained := map[int]int{}
	for i := 0; i < 5000; i++ {
		v := rng.Intn(100)
		switch rng.Intn(4) {
		case 0:
			c.Lookup(v)
		case 1:
			c.Admit(v, 0.5+rng.Float64())
		case 2:
			if c.Contains(v) {
				c.Retain(v)
				retained[v]++
			}
		case 3:
			if retained[v] > 0 {
				c.Release(v)
				retained[v]--
			}
		}
	}
	if c.UsedGB() > c.CapGB() {
		t.Errorf("over capacity: %g > %g", c.UsedGB(), c.CapGB())
	}
}
