// Package cache implements the size-bounded video caches the paper's
// baseline strategies (Random+LRU, Random+LFU, Top-K+LRU, origin+LRU) and
// the MIP scheme's small complementary cache (§VI-A) are built on.
//
// A video being streamed must stay in the cache for the stream's whole
// duration (§I notes this as a key cost of caching long videos), so entries
// carry a reference count; referenced entries are never evicted. When every
// cached byte is referenced and a new video cannot be admitted, the request
// is counted as "uncachable" — the Fig. 9 phenomenon.
package cache

import (
	"container/heap"
	"container/list"
	"fmt"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota
	LFU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Stats counts cache events.
type Stats struct {
	Hits     int // Lookup found the video
	Misses   int // Lookup did not
	Admitted int // videos inserted
	Rejected int // admissions that failed (all space referenced/too big)
	Evicted  int // videos displaced by admissions
}

// entry is one cached video.
type entry struct {
	video int
	size  float64
	refs  int
	freq  int
	seq   int64 // recency tiebreak for LFU
	// LRU bookkeeping
	elem *list.Element
	// LFU bookkeeping
	heapIdx int
}

// Cache is a size-bounded video cache. Not safe for concurrent use.
type Cache struct {
	// OnEvict, when non-nil, is invoked for every video displaced by an
	// admission (not for explicit Remove calls). The simulator uses it to
	// keep its replica-location index in sync.
	OnEvict func(video int)

	policy Policy
	capGB  float64
	used   float64
	items  map[int]*entry
	stats  Stats
	seq    int64

	// LRU: front = most recent.
	order *list.List
	// LFU: min-heap on (freq, seq).
	lfu lfuHeap
}

// New returns an empty cache with the given capacity and policy.
// A non-positive capacity yields a cache that rejects everything.
func New(policy Policy, capGB float64) *Cache {
	return &Cache{
		policy: policy,
		capGB:  capGB,
		items:  make(map[int]*entry),
		order:  list.New(),
	}
}

// CapGB returns the capacity.
func (c *Cache) CapGB() float64 { return c.capGB }

// UsedGB returns the bytes currently cached.
func (c *Cache) UsedGB() float64 { return c.used }

// Len returns the number of cached videos.
func (c *Cache) Len() int { return len(c.items) }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Contains reports whether the video is cached, without touching stats or
// recency.
func (c *Cache) Contains(video int) bool {
	_, ok := c.items[video]
	return ok
}

// Lookup records a hit or miss and refreshes the entry's recency/frequency
// on a hit.
func (c *Cache) Lookup(video int) bool {
	e, ok := c.items[video]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.touch(e)
	return true
}

func (c *Cache) touch(e *entry) {
	c.seq++
	e.seq = c.seq
	e.freq++
	switch c.policy {
	case LRU:
		c.order.MoveToFront(e.elem)
	case LFU:
		heap.Fix(&c.lfu, e.heapIdx)
	}
}

// Admit inserts the video, evicting per policy as needed. It returns false —
// and counts a rejection — when the video cannot fit because the remaining
// contents are all referenced by active streams (or the video exceeds the
// whole capacity). Admitting an already-cached video refreshes it.
func (c *Cache) Admit(video int, sizeGB float64) bool {
	if e, ok := c.items[video]; ok {
		c.touch(e)
		return true
	}
	if sizeGB > c.capGB {
		c.stats.Rejected++
		return false
	}
	// Evict until it fits; abort (restoring nothing — evictions are
	// permanent, as in a real cache) if no unreferenced victim remains.
	for c.used+sizeGB > c.capGB {
		victim := c.victim()
		if victim == nil {
			c.stats.Rejected++
			return false
		}
		c.removeEntry(victim)
		c.stats.Evicted++
		if c.OnEvict != nil {
			c.OnEvict(victim.video)
		}
	}
	c.seq++
	e := &entry{video: video, size: sizeGB, freq: 1, seq: c.seq}
	c.items[video] = e
	c.used += sizeGB
	switch c.policy {
	case LRU:
		e.elem = c.order.PushFront(e)
	case LFU:
		heap.Push(&c.lfu, e)
	}
	c.stats.Admitted++
	return true
}

// victim returns the next evictable (unreferenced) entry per policy, or nil.
func (c *Cache) victim() *entry {
	switch c.policy {
	case LRU:
		for el := c.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e.refs == 0 {
				return e
			}
		}
		return nil
	case LFU:
		// Pop referenced entries into a stash, then restore them.
		var stash []*entry
		var found *entry
		for c.lfu.Len() > 0 {
			e := heap.Pop(&c.lfu).(*entry)
			if e.refs == 0 {
				found = e
				break
			}
			stash = append(stash, e)
		}
		for _, e := range stash {
			heap.Push(&c.lfu, e)
		}
		if found != nil {
			// Re-add; removeEntry will take it out properly.
			heap.Push(&c.lfu, found)
		}
		return found
	default:
		return nil
	}
}

func (c *Cache) removeEntry(e *entry) {
	delete(c.items, e.video)
	c.used -= e.size
	switch c.policy {
	case LRU:
		c.order.Remove(e.elem)
	case LFU:
		heap.Remove(&c.lfu, e.heapIdx)
	}
}

// Remove drops the video if cached (regardless of references).
func (c *Cache) Remove(video int) {
	if e, ok := c.items[video]; ok {
		c.removeEntry(e)
	}
}

// Retain marks the video as in use by an active stream, protecting it from
// eviction. Calls nest.
func (c *Cache) Retain(video int) {
	if e, ok := c.items[video]; ok {
		e.refs++
	}
}

// Release undoes one Retain.
func (c *Cache) Release(video int) {
	if e, ok := c.items[video]; ok && e.refs > 0 {
		e.refs--
	}
}

// ReferencedGB returns the bytes currently protected by active streams —
// the quantity whose growth makes requests uncachable in Fig. 9.
func (c *Cache) ReferencedGB() float64 {
	var total float64
	for _, e := range c.items {
		if e.refs > 0 {
			total += e.size
		}
	}
	return total
}

// lfuHeap is a min-heap on (freq, seq): least frequently used first, oldest
// first among ties.
type lfuHeap []*entry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(a, b int) bool {
	if h[a].freq != h[b].freq {
		return h[a].freq < h[b].freq
	}
	return h[a].seq < h[b].seq
}
func (h lfuHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIdx = a
	h[b].heapIdx = b
}
func (h *lfuHeap) Push(x any) {
	e := x.(*entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
