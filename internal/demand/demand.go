// Package demand turns request-trace history into placement-MIP inputs: the
// aggregate demands a_j^m, the peak-window concurrent-stream counts f_j^m(t),
// and the §VI-A estimation strategies for videos that have no history yet —
// new TV-series episodes (estimated from the previous episode), blockbusters
// (estimated from the most popular recent movie), and everything else
// (no estimate; absorbed by the complementary LRU cache at runtime).
package demand

import (
	"fmt"
	"sort"

	"vodplace/internal/catalog"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

// Method selects how demand is forecast for the placement period.
type Method int

// Forecast methods of §VI-A / Table VI.
const (
	// History uses the previous HistoryDays of requests, plus series and
	// blockbuster estimation for new releases (the paper's deployed
	// strategy).
	History Method = iota
	// Perfect uses the actual requests of the placement period itself
	// (the "perfect estimate" row of Table VI).
	Perfect
	// None uses history for existing videos but nothing for new releases
	// (the "no estimate" row of Table VI).
	None
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case History:
		return "history"
	case Perfect:
		return "perfect"
	case None:
		return "no-estimate"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config parameterizes instance building.
type Config struct {
	// Method is the forecast method. Default History.
	Method Method
	// HistoryDays is the look-back window. Default 7 (§VI-A).
	HistoryDays int
	// HorizonDays is the placement period the instance must cover (new
	// videos released within it are included). Default 7.
	HorizonDays int
	// Slices is |T|, the number of peak windows whose link constraints are
	// enforced. Default 2 (§VI-B).
	Slices int
	// WindowSec is the peak-window length. Default 3600 (1 h, the Table V
	// sweet spot).
	WindowSec int64
	// Shards is the number of catalog shards the built instance is split
	// into (mip.Instance.Shards); the EPF solver adopts the instance's shard
	// count by default. ≤ 1 builds a single shard — exactly the historical
	// layout. Sharding never changes the instance's numeric content, only
	// its decomposition.
	Shards int
	// SeriesEstimation enables new-episode estimation from the previous
	// episode. Default true (disabled only by DisableSeriesEstimation).
	DisableSeriesEstimation bool
	// DisableBlockbusterEstimation disables blockbuster estimation.
	DisableBlockbusterEstimation bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HistoryDays <= 0 {
		out.HistoryDays = 7
	}
	if out.HorizonDays <= 0 {
		out.HorizonDays = 7
	}
	if out.Slices <= 0 {
		out.Slices = 2
	}
	if out.WindowSec <= 0 {
		out.WindowSec = 3600
	}
	return out
}

// Builder assembles placement instances for successive placement days over
// one trace.
type Builder struct {
	G           *topology.Graph
	Lib         *catalog.Library
	DiskGB      []float64
	LinkCapMbps []float64
	Cfg         Config
}

// profile is the demand observed for one video over a window.
type profile struct {
	agg  map[int32]float64   // office -> request count
	conc []map[int32]float64 // per slice: office -> concurrent streams
}

// Instance builds the placement instance for the period starting at
// placementDay. With Method History or None the inputs come from the
// HistoryDays before placementDay; with Perfect, from the period itself.
func (b *Builder) Instance(tr *workload.Trace, placementDay int) (*mip.Instance, error) {
	cfg := b.Cfg.withDefaults()
	if tr == nil {
		return nil, fmt.Errorf("demand: nil trace")
	}

	var from, to int64
	switch cfg.Method {
	case Perfect:
		from = int64(placementDay) * workload.SecondsPerDay
		to = int64(placementDay+cfg.HorizonDays) * workload.SecondsPerDay
	default:
		histStart := placementDay - cfg.HistoryDays
		if histStart < 0 {
			histStart = 0
		}
		from = int64(histStart) * workload.SecondsPerDay
		to = int64(placementDay) * workload.SecondsPerDay
	}
	if to <= from {
		return nil, fmt.Errorf("demand: empty observation window [%d, %d)", from, to)
	}

	// Aggregate demand and peak-window concurrency over the observation
	// window.
	sub := tr.Slice(from, to)
	aggCounts := tr.AggregateCounts(from, to)
	windows := sub.TopPeakWindows(cfg.WindowSec, cfg.Slices)
	concs := make([]map[workload.JM]int, len(windows))
	for t, w := range windows {
		concs[t] = tr.PeakConcurrency(w, w+cfg.WindowSec)
	}

	// Group by video.
	profiles := make(map[int]*profile)
	prof := func(v int) *profile {
		p, ok := profiles[v]
		if !ok {
			p = &profile{agg: make(map[int32]float64), conc: make([]map[int32]float64, cfg.Slices)}
			for t := range p.conc {
				p.conc[t] = make(map[int32]float64)
			}
			profiles[v] = p
		}
		return p
	}
	for key, c := range aggCounts {
		j, m := key.Split()
		prof(m).agg[int32(j)] += float64(c)
	}
	for t := range concs {
		if t >= cfg.Slices {
			break
		}
		for key, c := range concs[t] {
			j, m := key.Split()
			prof(m).conc[t][int32(j)] += float64(c)
		}
	}

	// Scale up partially observed videos (released mid-history): their
	// counts cover fewer days than the full window.
	if cfg.Method != Perfect {
		histStart := int(from / workload.SecondsPerDay)
		for v, p := range profiles {
			rel := b.Lib.Videos[v].ReleaseDay
			if rel <= histStart {
				continue
			}
			observed := placementDay - rel
			if observed < 1 {
				observed = 1
			}
			scale := float64(cfg.HistoryDays) / float64(observed)
			if scale > 3 {
				scale = 3
			}
			for j := range p.agg {
				p.agg[j] *= scale
			}
			// Concurrency is a peak, not a sum; leave it unscaled.
		}
	}

	// Estimation for videos released during the placement period.
	if cfg.Method == History {
		b.estimateNewVideos(profiles, placementDay, cfg)
	}

	// Stream one VideoDemand per available video into an InstanceBuilder.
	// A single reused staging row set (Js/Agg/Conc below) is the only dense
	// per-video state alive at any moment — the builder copies what it keeps
	// and stores concurrency as CSR nonzeros — so build memory is bounded by
	// the largest single video plus the sealed shards, never by a dense
	// all-catalog intermediate. Videos are emitted in library order, exactly
	// the order the historical batch path materialized them in.
	lastDay := placementDay + cfg.HorizonDays
	eligible := 0
	for i := range b.Lib.Videos {
		if b.Lib.Videos[i].ReleaseDay < lastDay {
			eligible++
		}
	}
	shardSize := 0
	if cfg.Shards > 1 && eligible > 0 {
		shardSize = (eligible + cfg.Shards - 1) / cfg.Shards
	}
	ib, err := mip.NewInstanceBuilder(b.G, b.DiskGB, b.LinkCapMbps, cfg.Slices, shardSize)
	if err != nil {
		return nil, err
	}
	stage := mip.VideoDemand{Conc: make([][]float64, cfg.Slices)}
	for _, v := range b.Lib.Videos {
		if v.ReleaseDay >= lastDay {
			continue
		}
		stage.Video, stage.SizeGB, stage.RateMbps = v.ID, v.SizeGB, v.RateMbps
		stage.Js, stage.Agg = stage.Js[:0], stage.Agg[:0]
		for t := range stage.Conc {
			stage.Conc[t] = stage.Conc[t][:0]
		}
		if p, ok := profiles[v.ID]; ok {
			for j := range p.agg {
				stage.Js = append(stage.Js, j)
			}
			sort.Slice(stage.Js, func(x, y int) bool { return stage.Js[x] < stage.Js[y] })
			for _, j := range stage.Js {
				stage.Agg = append(stage.Agg, p.agg[j])
			}
			for t := 0; t < cfg.Slices; t++ {
				for _, j := range stage.Js {
					stage.Conc[t] = append(stage.Conc[t], p.conc[t][j])
				}
			}
		}
		if err := ib.Add(&stage); err != nil {
			return nil, err
		}
	}
	return ib.Seal()
}

// estimateNewVideos adds §VI-A estimated profiles for videos released in
// [placementDay, placementDay+HorizonDays) that have no history.
func (b *Builder) estimateNewVideos(profiles map[int]*profile, placementDay int, cfg Config) {
	// Most popular movie of the window, for blockbuster estimation.
	bestMovie, bestMovieAgg := -1, 0.0
	if !cfg.DisableBlockbusterEstimation {
		for v, p := range profiles {
			vid := b.Lib.Videos[v]
			if vid.Class != catalog.Movie1h && vid.Class != catalog.Movie2h {
				continue
			}
			var total float64
			for _, a := range p.agg {
				total += a
			}
			if total > bestMovieAgg {
				bestMovieAgg, bestMovie = total, v
			}
		}
	}

	lastDay := placementDay + cfg.HorizonDays
	for i := range b.Lib.Videos {
		v := b.Lib.Videos[i]
		if v.ReleaseDay < placementDay || v.ReleaseDay >= lastDay {
			continue
		}
		if _, seen := profiles[v.ID]; seen {
			continue
		}
		var src int = -1
		switch {
		case v.Series != catalog.NoSeries && !cfg.DisableSeriesEstimation:
			if prev, ok := b.Lib.PreviousEpisode(v); ok {
				if _, has := profiles[prev.ID]; has {
					src = prev.ID
				}
			}
		case v.Blockbuster && bestMovie >= 0:
			src = bestMovie
		}
		if src < 0 {
			continue
		}
		srcP := profiles[src]
		p := &profile{agg: make(map[int32]float64, len(srcP.agg)), conc: make([]map[int32]float64, cfg.Slices)}
		for j, a := range srcP.agg {
			p.agg[j] = a
		}
		for t := range p.conc {
			p.conc[t] = make(map[int32]float64, len(srcP.conc[t]))
			for j, c := range srcP.conc[t] {
				p.conc[t][j] = c
			}
		}
		profiles[v.ID] = p
	}
}
