package demand

import (
	"math"
	"testing"

	"vodplace/internal/catalog"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

func testSetup(t *testing.T) (*topology.Graph, *catalog.Library, *workload.Trace, *Builder) {
	t.Helper()
	g := topology.Random(6, 1.0, 3)
	lib := catalog.Generate(catalog.Config{NumVideos: 300, Weeks: 4, NumSeries: 2, BlockbustersPerWeek: 1}, 5)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 28, NumVHOs: 6, RequestsPerVideoPerDay: 3,
	}, 7)
	disk := make([]float64, 6)
	for i := range disk {
		disk[i] = lib.TotalSizeGB() * 2 / 6
	}
	caps := make([]float64, g.NumLinks())
	for l := range caps {
		caps[l] = 1000
	}
	b := &Builder{G: g, Lib: lib, DiskGB: disk, LinkCapMbps: caps}
	return g, lib, tr, b
}

func TestInstanceBasics(t *testing.T) {
	_, lib, tr, b := testSetup(t)
	inst, err := b.Instance(tr, 14)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Slices != 2 {
		t.Errorf("slices = %d, want 2", inst.Slices)
	}
	// Every video released before day 21 must be present.
	want := 0
	for _, v := range lib.Videos {
		if v.ReleaseDay < 21 {
			want++
		}
	}
	if got := inst.NumVideos(); got != want {
		t.Errorf("instance has %d videos, want %d", got, want)
	}
	// Demand entries must reference the trace's offices and carry positive
	// aggregate demand for popular videos.
	anyDemand := false
	for _, d := range inst.Demands {
		for k, j := range d.Js {
			if j < 0 || int(j) >= 6 {
				t.Fatalf("video %d: bad office %d", d.Video, j)
			}
			if d.Agg[k] > 0 {
				anyDemand = true
			}
		}
	}
	if !anyDemand {
		t.Error("no demand found in instance")
	}
}

func TestHistoryMatchesTraceCounts(t *testing.T) {
	_, _, tr, b := testSetup(t)
	inst, err := b.Instance(tr, 14)
	if err != nil {
		t.Fatal(err)
	}
	// For a video released on day 0, Agg must equal the raw counts over
	// days [7, 14).
	counts := tr.AggregateCounts(7*workload.SecondsPerDay, 14*workload.SecondsPerDay)
	for _, d := range inst.Demands {
		if b.Lib.Videos[d.Video].ReleaseDay != 0 {
			continue
		}
		for k, j := range d.Js {
			want := float64(counts[workload.MakeJM(int(j), d.Video)])
			if math.Abs(d.Agg[k]-want) > 1e-9 {
				t.Fatalf("video %d office %d: agg %g, want %g", d.Video, j, d.Agg[k], want)
			}
		}
		return // one confirmed video suffices
	}
	t.Fatal("no day-0 video found")
}

func TestSeriesEstimation(t *testing.T) {
	_, lib, tr, b := testSetup(t)
	// Find an episode released on day 14 (placement day): it has no history,
	// so its demand must be copied from the previous episode.
	inst, err := b.Instance(tr, 14)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range inst.Demands {
		v := lib.Videos[d.Video]
		if v.Series == catalog.NoSeries || v.ReleaseDay != 14 {
			continue
		}
		found = true
		if len(d.Js) == 0 {
			t.Errorf("new episode %d (series %d ep %d) has no estimated demand", d.Video, v.Series, v.Episode)
			continue
		}
		// The estimate must equal the previous episode's history counts.
		prev, ok := lib.PreviousEpisode(v)
		if !ok {
			t.Fatal("missing previous episode")
		}
		counts := tr.AggregateCounts(7*workload.SecondsPerDay, 14*workload.SecondsPerDay)
		for k, j := range d.Js {
			want := float64(counts[workload.MakeJM(int(j), prev.ID)])
			if math.Abs(d.Agg[k]-want) > 1e-9 {
				t.Errorf("episode estimate mismatch at office %d: %g vs %g", j, d.Agg[k], want)
			}
		}
	}
	if !found {
		t.Skip("no episode released exactly on day 14 in this library")
	}
}

func TestNoneMethodSkipsNewVideos(t *testing.T) {
	_, lib, tr, b := testSetup(t)
	b.Cfg.Method = None
	inst, err := b.Instance(tr, 14)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range inst.Demands {
		v := lib.Videos[d.Video]
		if v.ReleaseDay >= 14 && len(d.Js) != 0 {
			t.Errorf("method None estimated demand for new video %d", d.Video)
		}
	}
}

func TestPerfectUsesFuture(t *testing.T) {
	_, _, tr, b := testSetup(t)
	b.Cfg.Method = Perfect
	inst, err := b.Instance(tr, 14)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.AggregateCounts(14*workload.SecondsPerDay, 21*workload.SecondsPerDay)
	checked := 0
	for _, d := range inst.Demands {
		for k, j := range d.Js {
			want := float64(counts[workload.MakeJM(int(j), d.Video)])
			if math.Abs(d.Agg[k]-want) > 1e-9 {
				t.Fatalf("video %d office %d: agg %g, want future count %g", d.Video, j, d.Agg[k], want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestPartialHistoryScaling(t *testing.T) {
	_, lib, tr, b := testSetup(t)
	inst, err := b.Instance(tr, 14)
	if err != nil {
		t.Fatal(err)
	}
	// A video released on day 10 has 4 observed days; its counts must be
	// scaled by 7/4.
	counts := tr.AggregateCounts(7*workload.SecondsPerDay, 14*workload.SecondsPerDay)
	for _, d := range inst.Demands {
		v := lib.Videos[d.Video]
		if v.ReleaseDay != 10 {
			continue
		}
		for k, j := range d.Js {
			raw := float64(counts[workload.MakeJM(int(j), d.Video)])
			want := raw * 7.0 / 4.0
			if math.Abs(d.Agg[k]-want) > 1e-9 {
				t.Fatalf("video %d (day 10): agg %g, want scaled %g", d.Video, d.Agg[k], want)
			}
		}
		return
	}
	t.Skip("no day-10 release in this library")
}

func TestConcurrencyPopulated(t *testing.T) {
	_, _, tr, b := testSetup(t)
	inst, err := b.Instance(tr, 14)
	if err != nil {
		t.Fatal(err)
	}
	// Built demands carry only the CSR view (dense Conc staging is dropped
	// at construction), so sum concurrency through ConcNZ.
	var totalConc float64
	for _, d := range inst.Demands {
		for k := range d.Js {
			_, fv := d.ConcNZ(k)
			for _, f := range fv {
				totalConc += f
			}
		}
	}
	if totalConc == 0 {
		t.Error("no concurrency recorded in any peak window")
	}
}

func TestInstanceErrors(t *testing.T) {
	_, _, tr, b := testSetup(t)
	if _, err := b.Instance(nil, 14); err == nil {
		t.Error("nil trace accepted")
	}
	// Disk too small for the library must fail instance validation.
	small := make([]float64, len(b.DiskGB))
	for i := range small {
		small[i] = 0.01
	}
	b2 := *b
	b2.DiskGB = small
	if _, err := b2.Instance(tr, 14); err == nil {
		t.Error("undersized disk accepted")
	}
}

func TestMethodString(t *testing.T) {
	if History.String() != "history" || Perfect.String() != "perfect" || None.String() != "no-estimate" {
		t.Error("bad method names")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should format")
	}
}
