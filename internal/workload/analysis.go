package workload

import (
	"math"
	"sort"
)

// JM packs a (VHO, video) pair into a map key.
type JM uint64

// MakeJM builds the packed key for office j and video m.
func MakeJM(j, m int) JM { return JM(uint64(j)<<32 | uint64(uint32(m))) }

// Split returns the office and video of the key.
func (k JM) Split() (j, m int) { return int(k >> 32), int(uint32(k)) }

// RequestCounts returns, for each office, a sparse per-video request count
// over requests with times in [from, to).
func (t *Trace) RequestCounts(from, to int64) []map[int]int {
	out := make([]map[int]int, t.NumVHOs)
	for j := range out {
		out[j] = make(map[int]int)
	}
	sub := t.Slice(from, to)
	for _, r := range sub.Requests {
		out[r.VHO][int(r.Video)]++
	}
	return out
}

// AggregateCounts returns a_j^m over [from, to): the total request count per
// (office, video) pair, keyed by MakeJM.
func (t *Trace) AggregateCounts(from, to int64) map[JM]int {
	out := make(map[JM]int)
	sub := t.Slice(from, to)
	for _, r := range sub.Requests {
		out[MakeJM(int(r.VHO), int(r.Video))]++
	}
	return out
}

// PeakHour returns the hour (0-23) of the given day with the most requests
// system-wide.
func (t *Trace) PeakHour(day int) int {
	var counts [24]int
	sub := t.DaySlice(day, day+1)
	for _, r := range sub.Requests {
		h := int((r.Time % SecondsPerDay) / 3600)
		counts[h]++
	}
	best := 0
	for h, c := range counts {
		if c > counts[best] {
			best = h
		}
		_ = c
	}
	return best
}

// WorkingSetSizes returns, for each office, the number of distinct videos
// requested during the peak hour of the given day — the Fig. 2 quantity.
func (t *Trace) WorkingSetSizes(day int) []int {
	h := t.PeakHour(day)
	from := int64(day)*SecondsPerDay + int64(h)*3600
	counts := t.RequestCounts(from, from+3600)
	out := make([]int, t.NumVHOs)
	for j, m := range counts {
		out[j] = len(m)
	}
	return out
}

// WorkingSetGB returns, for each office, the total size in GB of the
// distinct videos requested during the peak hour of the given day.
func (t *Trace) WorkingSetGB(day int) []float64 {
	h := t.PeakHour(day)
	from := int64(day)*SecondsPerDay + int64(h)*3600
	counts := t.RequestCounts(from, from+3600)
	out := make([]float64, t.NumVHOs)
	for j, m := range counts {
		for v := range m {
			out[j] += t.Lib.Videos[v].SizeGB
		}
	}
	return out
}

// sparseCosine computes cosine similarity between two sparse count vectors.
func sparseCosine(a, b map[int]int) float64 {
	var dot, na, nb float64
	for k, va := range a {
		fa := float64(va)
		na += fa * fa
		if vb, ok := b[k]; ok {
			dot += fa * float64(vb)
		}
	}
	for _, vb := range b {
		fb := float64(vb)
		nb += fb * fb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// PeakWindowIndex returns the index of the fixed-size window (of windowSec
// seconds, partitioning the horizon from time 0) that contains the instant
// of peak total concurrent streams.
func (t *Trace) PeakWindowIndex(windowSec int64) int {
	peakT := t.PeakConcurrencyInstant()
	return int(peakT / windowSec)
}

// PeakConcurrencyInstant returns the time of the maximum system-wide number
// of concurrent streams (the "peak demand instant" of Fig. 3), at 60-second
// resolution.
func (t *Trace) PeakConcurrencyInstant() int64 {
	const step = 60
	curve := t.TotalConcurrencyCurve(step)
	best := 0
	for i, c := range curve {
		if c > curve[best] {
			best = i
		}
		_ = c
	}
	return int64(best) * step
}

// TotalConcurrencyCurve returns the total number of active streams sampled
// every stepSec seconds across the horizon (index i covers time
// [i*stepSec, (i+1)*stepSec)); a stream is counted in every bucket it
// overlaps.
func (t *Trace) TotalConcurrencyCurve(stepSec int64) []int {
	horizon := int64(t.Days) * SecondsPerDay
	buckets := int((horizon + stepSec - 1) / stepSec)
	diff := make([]int, buckets+1)
	for _, r := range t.Requests {
		start := r.Time / stepSec
		end := (r.End(t.Lib) - 1) / stepSec
		if end >= int64(buckets) {
			end = int64(buckets) - 1
		}
		if start >= int64(buckets) {
			continue
		}
		diff[start]++
		diff[end+1]--
	}
	out := make([]int, buckets)
	cur := 0
	for i := 0; i < buckets; i++ {
		cur += diff[i]
		out[i] = cur
	}
	return out
}

// SimilarityAtPeak computes, for each office, the cosine similarity between
// its per-video request-count vector in the window containing the peak
// demand instant and the vector for the previous window — the Fig. 3
// quantity. Offices with an empty vector in either window get similarity 0.
// If the peak falls in window 0 the first two windows are compared instead.
func (t *Trace) SimilarityAtPeak(windowSec int64) []float64 {
	w := t.PeakWindowIndex(windowSec)
	if w == 0 {
		w = 1
	}
	cur := t.RequestCounts(int64(w)*windowSec, int64(w+1)*windowSec)
	prev := t.RequestCounts(int64(w-1)*windowSec, int64(w)*windowSec)
	out := make([]float64, t.NumVHOs)
	for j := range out {
		out[j] = sparseCosine(cur[j], prev[j])
	}
	return out
}

// SeriesDailyCounts returns, for every episode of the given series, the
// per-day system-wide request counts — the Fig. 4 quantity. The result maps
// episode number to a slice of Days counts.
func (t *Trace) SeriesDailyCounts(series int) map[int][]int {
	episodeOf := make(map[int32]int)
	for _, v := range t.Lib.Videos {
		if v.Series == series {
			episodeOf[int32(v.ID)] = v.Episode
		}
	}
	out := make(map[int][]int)
	for _, r := range t.Requests {
		ep, ok := episodeOf[r.Video]
		if !ok {
			continue
		}
		if _, ok := out[ep]; !ok {
			out[ep] = make([]int, t.Days)
		}
		day := int(r.Time / SecondsPerDay)
		if day >= 0 && day < t.Days {
			out[ep][day]++
		}
	}
	return out
}

// PeakConcurrency returns, per (office, video) pair, the maximum number of
// concurrent streams overlapping the window [t0, t1) — the f_j^m(t) input of
// constraint (6), aggregated over a peak window as §VI-B prescribes.
func (t *Trace) PeakConcurrency(t0, t1 int64) map[JM]int {
	type event struct {
		time  int64
		delta int
	}
	events := make(map[JM][]event)
	for _, r := range t.Requests {
		end := r.End(t.Lib)
		if r.Time >= t1 || end <= t0 {
			continue
		}
		start := r.Time
		if start < t0 {
			start = t0
		}
		if end > t1 {
			end = t1
		}
		key := MakeJM(int(r.VHO), int(r.Video))
		events[key] = append(events[key], event{start, 1}, event{end, -1})
	}
	out := make(map[JM]int, len(events))
	for key, evs := range events {
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].time != evs[b].time {
				return evs[a].time < evs[b].time
			}
			return evs[a].delta < evs[b].delta // process ends before starts
		})
		cur, peak := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		out[key] = peak
	}
	return out
}

// TopPeakWindows returns the start times of the k fixed-size windows (of
// windowSec seconds, partitioning the horizon) with the highest peak total
// concurrency, in decreasing order of peak. These are the |T| time slices at
// which the MIP enforces link constraints (§VI-B, |T| = 2 by default).
func (t *Trace) TopPeakWindows(windowSec int64, k int) []int64 {
	step := windowSec
	if step > 300 {
		step = 300 // finer sampling inside coarse windows
	}
	curve := t.TotalConcurrencyCurve(step)
	perWindow := int(windowSec / step)
	if perWindow < 1 {
		perWindow = 1
	}
	numWindows := (len(curve) + perWindow - 1) / perWindow
	type wpeak struct {
		window int
		peak   int
	}
	peaks := make([]wpeak, numWindows)
	for w := 0; w < numWindows; w++ {
		p := 0
		for i := w * perWindow; i < (w+1)*perWindow && i < len(curve); i++ {
			if curve[i] > p {
				p = curve[i]
			}
		}
		peaks[w] = wpeak{w, p}
	}
	sort.Slice(peaks, func(a, b int) bool {
		if peaks[a].peak != peaks[b].peak {
			return peaks[a].peak > peaks[b].peak
		}
		return peaks[a].window < peaks[b].window
	})
	if k > len(peaks) {
		k = len(peaks)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = int64(peaks[i].window) * windowSec
	}
	return out
}
