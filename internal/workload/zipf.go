package workload

import (
	"math"
	"math/rand"
)

// ZipfWeights returns normalized Zipf(s) weights over n ranks: weight of
// rank r (0-based) proportional to 1/(r+1)^s. s = 0 is uniform. The load
// harness uses this to synthesize request mixes over whatever video set a
// placement server reports, without regenerating a full trace.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		w[r] = 1 / math.Pow(float64(r+1), s)
		total += w[r]
	}
	for r := range w {
		w[r] /= total
	}
	return w
}

// Sampler draws indices from a fixed discrete distribution by inverse-CDF
// binary search. Deterministic for a given (weights, seed); not safe for
// concurrent use — give each goroutine its own Sampler.
type Sampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewSampler builds a sampler over weights (need not be normalized;
// non-positive entries get zero mass). Returns nil when no entry has
// positive mass.
func NewSampler(weights []float64, seed int64) *Sampler {
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cdf[i] = total
	}
	if total <= 0 {
		return nil
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Sampler{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next sampled index.
func (s *Sampler) Next() int {
	u := s.rng.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Intn returns a uniform int in [0, n), from the sampler's stream.
func (s *Sampler) Intn(n int) int { return s.rng.Intn(n) }
