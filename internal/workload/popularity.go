// Package workload generates and analyzes VoD request traces.
//
// The paper evaluates placement against one month of request traces from a
// nationally deployed VoD service, plus synthetic traces that follow the
// YouTube popularity distribution measured by Cha et al. Neither data set is
// available, so this package synthesizes traces that reproduce the properties
// the paper's results depend on:
//
//   - a long-tailed (Zipf with exponential cutoff) video popularity
//     distribution in which "medium popular" videos carry substantial load,
//   - per-VHO demand proportional to metro population, with per-VHO
//     preference skew so different offices see different request mixes,
//   - strong diurnal and day-of-week modulation (Friday/Saturday peaks),
//   - weekly TV-series episodes whose demand tracks the previous episode,
//     blockbuster releases, and a stream of less predictable new videos,
//   - optional flash crowds.
//
// Everything is deterministic given a seed.
package workload

import (
	"math"
	"math/rand"

	"vodplace/internal/catalog"
)

// PopularityModel assigns every video a base popularity weight and a
// time-varying recency boost. Weights are relative: only ratios matter.
type PopularityModel struct {
	lib *catalog.Library
	// base[v] is the video's long-run popularity weight.
	base []float64
	// zipf parameters, recorded for introspection.
	Exponent float64
	Cutoff   float64
}

// PopularityConfig parameterizes the popularity model.
type PopularityConfig struct {
	// Exponent is the Zipf exponent. Default 1.0, which gives the
	// 10%-of-videos ≈ 70%-of-views concentration of VoD catalogs; the
	// exponential cutoff keeps a fat medium-popularity band (Fig. 7).
	Exponent float64
	// CutoffFraction sets the exponential cutoff rank as a fraction of the
	// library size (the "long tail with a cutoff" shape). Default 0.5.
	CutoffFraction float64
	// SeriesBoost multiplies the base weight of TV-series episodes, which in
	// the paper account for more than half the requests to new releases.
	// Default 4.
	SeriesBoost float64
	// BlockbusterBoost multiplies blockbuster movies. Default 12.
	BlockbusterBoost float64
}

func (cfg *PopularityConfig) withDefaults() PopularityConfig {
	out := *cfg
	if out.Exponent <= 0 {
		out.Exponent = 1.0
	}
	if out.CutoffFraction <= 0 {
		out.CutoffFraction = 0.5
	}
	if out.SeriesBoost <= 0 {
		out.SeriesBoost = 4
	}
	if out.BlockbusterBoost <= 0 {
		out.BlockbusterBoost = 12
	}
	return out
}

// NewPopularityModel builds the popularity model for lib. Ranks are assigned
// by a seeded permutation so that popularity is uncorrelated with video id or
// release order, except that series episodes inherit a per-series weight
// (episodes of one series draw similar demand, the Fig. 4 observation) and
// blockbusters land near the head.
func NewPopularityModel(lib *catalog.Library, cfg PopularityConfig, seed int64) *PopularityModel {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	n := lib.Len()
	m := &PopularityModel{
		lib:      lib,
		base:     make([]float64, n),
		Exponent: c.Exponent,
		Cutoff:   c.CutoffFraction * float64(n),
	}
	if m.Cutoff < 1 {
		m.Cutoff = 1
	}

	// Random rank permutation.
	perm := rng.Perm(n)
	zipf := func(rank int) float64 {
		r := float64(rank + 1)
		return math.Pow(r, -c.Exponent) * math.Exp(-r/m.Cutoff)
	}
	for i, v := range lib.Videos {
		rank := perm[i]
		// §VI-A: series episodes and blockbusters account for the bulk of
		// new-release demand; the remaining new videos (music videos,
		// unpopular movies) are minor. Keep non-estimable new releases out
		// of the popularity head, as in the paper's traces.
		if v.ReleaseDay > 0 && v.Series == catalog.NoSeries && !v.Blockbuster && rank < n/5 {
			rank += n / 5
		}
		m.base[i] = zipf(rank)
		if v.Blockbuster {
			m.base[i] = zipf(perm[i]%25) * c.BlockbusterBoost / 4
		}
	}
	// Per-series weight: draw once per series from the head of the
	// distribution, then give each episode that weight with mild jitter.
	seriesWeight := make([]float64, lib.NumSeries)
	for s := range seriesWeight {
		seriesWeight[s] = zipf(rng.Intn(50)) * c.SeriesBoost / 4
	}
	for i, v := range lib.Videos {
		if v.Series != catalog.NoSeries {
			jitter := 0.8 + 0.45*rng.Float64() // Fig 4: similar but not equal
			m.base[i] = seriesWeight[v.Series] * jitter
		}
	}
	return m
}

// Base returns the long-run popularity weight of video v.
func (m *PopularityModel) Base(v int) float64 { return m.base[v] }

// recencyBoost is the demand multiplier applied to a video age days after
// its release: new content opens hot and decays toward steady state over
// about two weeks.
func recencyBoost(age int) float64 {
	switch {
	case age < 0:
		return 0 // not yet released
	case age == 0:
		return 8
	case age == 1:
		return 6
	case age == 2:
		return 4.5
	case age <= 4:
		return 3
	case age <= 6:
		return 2
	case age <= 9:
		return 1.5
	case age <= 13:
		return 1.2
	default:
		return 1
	}
}

// WeightOn returns video v's demand weight on the given day (0 for videos
// not yet released).
func (m *PopularityModel) WeightOn(v, day int) float64 {
	age := day - m.lib.Videos[v].ReleaseDay
	return m.base[v] * recencyBoost(age)
}

// dayWeights fills out[v] with every video's weight on the given day and
// returns the total. Flash-crowd multipliers (if any) are applied by the
// trace generator on top of these weights.
func (m *PopularityModel) dayWeights(day int, out []float64) float64 {
	var total float64
	for v := range m.base {
		w := m.WeightOn(v, day)
		out[v] = w
		total += w
	}
	return total
}

// Populations returns normalized per-VHO demand weights for n offices. For
// the default 55-office backbone it reproduces the paper's heterogeneity
// experiment: 12 large offices (relative weight 4), 19 medium (2), and 24
// small (1); other sizes use the same 22%/35%/43% split. Weights are jittered
// ±20% and normalized to sum to 1.
func Populations(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	large := n * 12 / 55
	medium := n * 19 / 55
	if large < 1 {
		large = 1
	}
	if large+medium > n {
		medium = n - large
	}
	weights := make([]float64, n)
	var total float64
	for i := range weights {
		var w float64
		switch {
		case i < large:
			w = 4
		case i < large+medium:
			w = 2
		default:
			w = 1
		}
		w *= 0.8 + 0.4*rng.Float64()
		weights[i] = w
		total += w
	}
	for i := range weights {
		weights[i] /= total
	}
	return weights
}

// VHOSizeClass labels an office as large, medium or small per the Fig. 11
// heterogeneous-disk experiment (12 large / 19 medium / 24 small on the
// 55-office backbone; proportional otherwise).
type VHOSizeClass int

// Office size classes.
const (
	SmallVHO VHOSizeClass = iota
	MediumVHO
	LargeVHO
)

// SizeClasses returns each office's class under the same split Populations
// uses, so offices with the largest populations are the large offices.
func SizeClasses(n int) []VHOSizeClass {
	large := n * 12 / 55
	medium := n * 19 / 55
	if large < 1 {
		large = 1
	}
	if large+medium > n {
		medium = n - large
	}
	out := make([]VHOSizeClass, n)
	for i := range out {
		switch {
		case i < large:
			out[i] = LargeVHO
		case i < large+medium:
			out[i] = MediumVHO
		default:
			out[i] = SmallVHO
		}
	}
	return out
}
