package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vodplace/internal/catalog"
)

func testLibrary(n, weeks int) *catalog.Library {
	return catalog.Generate(catalog.Config{NumVideos: n, Weeks: weeks, NumSeries: 2}, 11)
}

func smallTrace(t *testing.T) *Trace {
	t.Helper()
	lib := testLibrary(200, 2)
	return GenerateTrace(lib, TraceConfig{
		Days:                   14,
		NumVHOs:                8,
		RequestsPerVideoPerDay: 2,
	}, 5)
}

func TestPopulationsNormalized(t *testing.T) {
	for _, n := range []int{5, 23, 55} {
		pops := Populations(n, 1)
		if len(pops) != n {
			t.Fatalf("n=%d: got %d weights", n, len(pops))
		}
		var sum float64
		for _, p := range pops {
			if p <= 0 {
				t.Errorf("n=%d: non-positive weight %g", n, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: weights sum to %g, want 1", n, sum)
		}
	}
}

func TestPopulationsHeterogeneous(t *testing.T) {
	pops := Populations(55, 3)
	classes := SizeClasses(55)
	var largeSum, smallSum float64
	var nLarge, nSmall int
	for i, c := range classes {
		switch c {
		case LargeVHO:
			largeSum += pops[i]
			nLarge++
		case SmallVHO:
			smallSum += pops[i]
			nSmall++
		}
	}
	if nLarge != 12 {
		t.Errorf("large offices = %d, want 12", nLarge)
	}
	if nSmall != 24 {
		t.Errorf("small offices = %d, want 24", nSmall)
	}
	if largeSum/float64(nLarge) <= 2*smallSum/float64(nSmall) {
		t.Errorf("large offices should have ~4x small weight: large avg %g, small avg %g",
			largeSum/float64(nLarge), smallSum/float64(nSmall))
	}
}

func TestPopularityLongTail(t *testing.T) {
	lib := testLibrary(1000, 1)
	m := NewPopularityModel(lib, PopularityConfig{}, 1)
	weights := make([]float64, lib.Len())
	var total float64
	for v := range weights {
		weights[v] = m.Base(v)
		total += weights[v]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(weights)))
	var top10 float64
	for _, w := range weights[:100] { // top 10%
		top10 += w
	}
	frac := top10 / total
	// Zipf-0.8 with cutoff: the top 10% should carry a large but not
	// overwhelming share — the paper stresses that medium-popular videos
	// still matter.
	if frac < 0.30 || frac > 0.95 {
		t.Errorf("top-10%% share = %g, want a skewed but long-tailed split", frac)
	}
}

func TestRecencyBoostShape(t *testing.T) {
	if recencyBoost(-1) != 0 {
		t.Error("unreleased video should have zero boost")
	}
	prev := recencyBoost(0)
	for age := 1; age < 20; age++ {
		b := recencyBoost(age)
		if b > prev {
			t.Errorf("boost should be non-increasing: boost(%d)=%g > boost(%d)=%g", age, b, age-1, prev)
		}
		prev = b
	}
	if recencyBoost(30) != 1 {
		t.Error("old videos should have boost 1")
	}
}

func TestSeriesEpisodesSimilarPopularity(t *testing.T) {
	lib := testLibrary(2000, 4)
	m := NewPopularityModel(lib, PopularityConfig{}, 2)
	eps := lib.SeriesEpisodes(0)
	if len(eps) < 3 {
		t.Fatal("need several episodes")
	}
	var lo, hi float64 = math.Inf(1), 0
	for _, e := range eps {
		b := m.Base(e.ID)
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if hi/lo > 2.0 {
		t.Errorf("episode popularity spread %g too large; Fig 4 expects similar demand", hi/lo)
	}
}

func TestGenerateTraceBasics(t *testing.T) {
	tr := smallTrace(t)
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	// Sorted by time; valid fields.
	horizon := int64(tr.Days) * SecondsPerDay
	for i, r := range tr.Requests {
		if i > 0 && r.Time < tr.Requests[i-1].Time {
			t.Fatalf("requests not sorted at %d", i)
		}
		if r.Time < 0 || r.Time >= horizon {
			t.Fatalf("request %d time %d outside horizon", i, r.Time)
		}
		if r.VHO < 0 || int(r.VHO) >= tr.NumVHOs {
			t.Fatalf("request %d has bad VHO %d", i, r.VHO)
		}
		if r.Video < 0 || int(r.Video) >= tr.Lib.Len() {
			t.Fatalf("request %d has bad video %d", i, r.Video)
		}
		// No requests before release.
		rel := int64(tr.Lib.Videos[r.Video].ReleaseDay) * SecondsPerDay
		if r.Time < rel {
			t.Fatalf("request %d at %d precedes release %d of video %d", i, r.Time, rel, r.Video)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	lib := testLibrary(100, 1)
	cfg := TraceConfig{Days: 3, NumVHOs: 4, RequestsPerVideoPerDay: 3}
	a := GenerateTrace(lib, cfg, 9)
	b := GenerateTrace(lib, cfg, 9)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestTraceWeekendPeak(t *testing.T) {
	tr := smallTrace(t)
	perDay := make([]int, tr.Days)
	for _, r := range tr.Requests {
		perDay[r.Time/SecondsPerDay]++
	}
	// Friday (day 4) and Saturday (day 5) should beat Monday-Thursday of the
	// same week on average.
	weekend := float64(perDay[4]+perDay[5]) / 2
	weekday := float64(perDay[0]+perDay[1]+perDay[2]+perDay[3]) / 4
	if weekend <= weekday {
		t.Errorf("weekend volume %g should exceed weekday %g", weekend, weekday)
	}
}

func TestTraceDiurnal(t *testing.T) {
	tr := smallTrace(t)
	var evening, night int
	for _, r := range tr.Requests {
		h := (r.Time % SecondsPerDay) / 3600
		if h >= 19 && h <= 21 {
			evening++
		}
		if h >= 2 && h <= 4 {
			night++
		}
	}
	if evening <= night {
		t.Errorf("evening volume %d should exceed overnight %d", evening, night)
	}
}

func TestTracePopulationSkew(t *testing.T) {
	lib := testLibrary(150, 1)
	pops := []float64{0.7, 0.1, 0.1, 0.1}
	tr := GenerateTrace(lib, TraceConfig{Days: 5, NumVHOs: 4, Populations: pops, RequestsPerVideoPerDay: 4}, 3)
	counts := make([]int, 4)
	for _, r := range tr.Requests {
		counts[r.VHO]++
	}
	if counts[0] <= 3*counts[1] {
		t.Errorf("VHO 0 with 7x weight got %d vs %d requests", counts[0], counts[1])
	}
}

func TestFlashCrowds(t *testing.T) {
	lib := testLibrary(300, 1)
	tr := GenerateTrace(lib, TraceConfig{Days: 7, NumVHOs: 4, FlashCrowds: 2, RequestsPerVideoPerDay: 2}, 6)
	if len(tr.FlashEvents) != 2 {
		t.Fatalf("flash events = %d, want 2", len(tr.FlashEvents))
	}
	ev := tr.FlashEvents[0]
	if lib.Videos[ev.Video].ReleaseDay > ev.Day {
		t.Skip("flash event landed on unreleased video; no observable spike")
	}
	// The flash video should be requested far more on its flash day than on
	// a typical other day.
	flashDay, otherDays := 0, 0
	for _, r := range tr.Requests {
		if int(r.Video) != ev.Video {
			continue
		}
		if int(r.Time/SecondsPerDay) == ev.Day {
			flashDay++
		} else {
			otherDays++
		}
	}
	avgOther := float64(otherDays) / float64(tr.Days-1)
	if float64(flashDay) < 3*avgOther {
		t.Errorf("flash day count %d not a clear spike over avg %g", flashDay, avgOther)
	}
}

func TestSliceAndDaySlice(t *testing.T) {
	tr := smallTrace(t)
	sub := tr.DaySlice(3, 5)
	for _, r := range sub.Requests {
		d := r.Time / SecondsPerDay
		if d < 3 || d >= 5 {
			t.Fatalf("DaySlice(3,5) contains request on day %d", d)
		}
	}
	whole := tr.Slice(0, int64(tr.Days)*SecondsPerDay)
	if len(whole.Requests) != len(tr.Requests) {
		t.Errorf("full slice has %d requests, want %d", len(whole.Requests), len(tr.Requests))
	}
}

func TestRequestCountsAndAggregate(t *testing.T) {
	tr := smallTrace(t)
	horizon := int64(tr.Days) * SecondsPerDay
	counts := tr.RequestCounts(0, horizon)
	agg := tr.AggregateCounts(0, horizon)
	var totalSparse, totalAgg int
	for j := range counts {
		for _, c := range counts[j] {
			totalSparse += c
		}
	}
	for _, c := range agg {
		totalAgg += c
	}
	if totalSparse != len(tr.Requests) || totalAgg != len(tr.Requests) {
		t.Errorf("count totals %d/%d, want %d", totalSparse, totalAgg, len(tr.Requests))
	}
	// Cross-check one pair.
	for key, c := range agg {
		j, m := key.Split()
		if counts[j][m] != c {
			t.Fatalf("mismatch at (%d,%d): %d vs %d", j, m, counts[j][m], c)
		}
		break
	}
}

func TestJMRoundTrip(t *testing.T) {
	f := func(j uint16, m int32) bool {
		if m < 0 {
			m = -m
		}
		key := MakeJM(int(j), int(m))
		gj, gm := key.Split()
		return gj == int(j) && gm == int(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSets(t *testing.T) {
	tr := smallTrace(t)
	ws := tr.WorkingSetSizes(4) // Friday
	if len(ws) != tr.NumVHOs {
		t.Fatalf("working set entries = %d, want %d", len(ws), tr.NumVHOs)
	}
	any := false
	for _, w := range ws {
		if w > 0 {
			any = true
		}
		if w > tr.Lib.Len() {
			t.Errorf("working set %d exceeds library size", w)
		}
	}
	if !any {
		t.Error("all working sets empty on a Friday")
	}
	gb := tr.WorkingSetGB(4)
	for j := range gb {
		if (gb[j] > 0) != (ws[j] > 0) {
			t.Errorf("GB and count disagree at office %d", j)
		}
	}
}

func TestTotalConcurrencyCurve(t *testing.T) {
	lib := testLibrary(50, 1)
	tr := &Trace{Days: 1, NumVHOs: 1, Lib: lib}
	// One request for video 0 at t=1000, active for its full duration.
	tr.Requests = []Request{{Time: 1000, VHO: 0, Video: 0}}
	end := 1000 + lib.Videos[0].DurationSec
	curve := tr.TotalConcurrencyCurve(100)
	for i, c := range curve {
		from, to := int64(i)*100, int64(i+1)*100
		active := from < end && to > 1000
		want := 0
		if active {
			want = 1
		}
		if c != want {
			t.Errorf("bucket %d [%d,%d): concurrency %d, want %d", i, from, to, c, want)
		}
	}
}

func TestPeakConcurrency(t *testing.T) {
	lib := testLibrary(50, 1)
	tr := &Trace{Days: 1, NumVHOs: 2, Lib: lib}
	// Two overlapping streams of video 3 at office 1, one disjoint.
	tr.Requests = []Request{
		{Time: 0, VHO: 1, Video: 3},
		{Time: 100, VHO: 1, Video: 3},
		{Time: 10000, VHO: 1, Video: 3},
	}
	fjm := tr.PeakConcurrency(0, SecondsPerDay)
	if got := fjm[MakeJM(1, 3)]; got != 2 {
		t.Errorf("peak concurrency = %d, want 2", got)
	}
	// Window excluding the overlap sees only one.
	fjm = tr.PeakConcurrency(9000, 20000)
	if got := fjm[MakeJM(1, 3)]; got != 1 {
		t.Errorf("peak concurrency in late window = %d, want 1", got)
	}
}

func TestPeakConcurrencyMatchesCurve(t *testing.T) {
	tr := smallTrace(t)
	// Sum of per-(j,m) peaks must be >= the global curve peak (peaks need
	// not align in time, so >= rather than ==).
	curve := tr.TotalConcurrencyCurve(60)
	peak := 0
	for _, c := range curve {
		if c > peak {
			peak = c
		}
	}
	fjm := tr.PeakConcurrency(0, int64(tr.Days)*SecondsPerDay)
	sum := 0
	for _, c := range fjm {
		sum += c
	}
	if sum < peak {
		t.Errorf("sum of pair peaks %d < global peak %d", sum, peak)
	}
}

func TestSimilarityAtPeakWindows(t *testing.T) {
	tr := smallTrace(t)
	simDay := tr.SimilarityAtPeak(SecondsPerDay)
	simHour := tr.SimilarityAtPeak(3600)
	if len(simDay) != tr.NumVHOs || len(simHour) != tr.NumVHOs {
		t.Fatal("bad lengths")
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// Fig 3: larger windows look more similar than small ones.
	if avg(simDay) <= avg(simHour) {
		t.Errorf("day-window similarity %g should exceed hour-window %g", avg(simDay), avg(simHour))
	}
	for j, s := range simDay {
		if s < 0 || s > 1+1e-9 {
			t.Errorf("similarity[%d] = %g outside [0,1]", j, s)
		}
	}
}

func TestSeriesDailyCounts(t *testing.T) {
	lib := testLibrary(400, 3)
	tr := GenerateTrace(lib, TraceConfig{Days: 21, NumVHOs: 6, RequestsPerVideoPerDay: 2}, 8)
	counts := tr.SeriesDailyCounts(0)
	if len(counts) == 0 {
		t.Fatal("no episodes observed")
	}
	eps := lib.SeriesEpisodes(0)
	for _, e := range eps[1:] { // episodes released during horizon
		daily, ok := counts[e.Episode]
		if !ok {
			continue
		}
		// No requests before release.
		for d := 0; d < e.ReleaseDay && d < len(daily); d++ {
			if daily[d] != 0 {
				t.Errorf("episode %d requested on day %d before release day %d", e.Episode, d, e.ReleaseDay)
			}
		}
		// Release-day demand should be a spike relative to two weeks later.
		if e.ReleaseDay+14 < tr.Days && daily[e.ReleaseDay] > 0 &&
			daily[e.ReleaseDay] < daily[e.ReleaseDay+13] {
			t.Logf("episode %d release-day count %d below later count %d (noisy, informational)",
				e.Episode, daily[e.ReleaseDay], daily[e.ReleaseDay+13])
		}
	}
}

func TestTopPeakWindows(t *testing.T) {
	tr := smallTrace(t)
	wins := tr.TopPeakWindows(3600, 2)
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	if wins[0] == wins[1] {
		t.Error("peak windows must be distinct")
	}
	for _, w := range wins {
		if w%3600 != 0 {
			t.Errorf("window start %d not aligned", w)
		}
		// Peak windows should be in an evening (hours 17-23) given the
		// diurnal curve.
		h := (w % SecondsPerDay) / 3600
		if h < 15 {
			t.Errorf("peak window at hour %d; expected evening", h)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 5, 100} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Errorf("poisson(%g) sample mean %g", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("nonpositive lambda must yield 0")
	}
}

func TestPrefMultiplierRange(t *testing.T) {
	for vho := 0; vho < 10; vho++ {
		for video := 0; video < 100; video++ {
			m := prefMultiplier(vho, video, 1)
			if m < 0.5-1e-9 || m > 2+1e-9 {
				t.Fatalf("prefMultiplier(%d,%d,1) = %g outside [0.5,2]", vho, video, m)
			}
		}
	}
	// Deterministic.
	if prefMultiplier(3, 7, 1) != prefMultiplier(3, 7, 1) {
		t.Error("prefMultiplier not deterministic")
	}
}
