package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vodplace/internal/catalog"
)

// SecondsPerDay is the length of one trace day.
const SecondsPerDay = 86400

// Request is one VoD request: a user in VHO j starts streaming video m at
// time t. The stream occupies its path for the video's full duration.
type Request struct {
	Time  int64 // seconds since the start of the trace horizon
	VHO   int32
	Video int32
}

// End returns the stream's completion time given the library.
func (r Request) End(lib *catalog.Library) int64 {
	return r.Time + lib.Videos[r.Video].DurationSec
}

// FlashEvent records a synthetic flash crowd: video Video receives a large
// demand multiplier on day Day.
type FlashEvent struct {
	Day   int
	Video int
}

// Trace is a time-ordered request log over a fixed horizon.
type Trace struct {
	Requests []Request
	Days     int
	NumVHOs  int
	Lib      *catalog.Library
	// Pops are the per-VHO demand weights the trace was generated with.
	Pops []float64
	// FlashEvents lists injected flash crowds (empty unless configured).
	FlashEvents []FlashEvent
}

// TraceConfig parameterizes trace generation.
type TraceConfig struct {
	// Days is the horizon length. Default 28 (the paper uses one month).
	Days int
	// NumVHOs is the number of offices. Default 55.
	NumVHOs int
	// RequestsPerVideoPerDay scales volume: the system-wide average daily
	// request count is this value times the library size (the paper's
	// synthetic traces make requests proportional to library size). Default 1.
	RequestsPerVideoPerDay float64
	// Populations optionally overrides the per-VHO demand weights; must have
	// NumVHOs entries summing to ~1. Defaults to Populations(NumVHOs, seed).
	Populations []float64
	// PrefSkew controls how much request mixes differ across offices: each
	// (office, video) pair gets a deterministic multiplier in
	// [2^-PrefSkew, 2^PrefSkew]. Default 1.
	PrefSkew float64
	// FlashCrowds injects this many single-day ×100 demand spikes on random
	// videos. Default 0.
	FlashCrowds int
	// Popularity configures the popularity model.
	Popularity PopularityConfig
}

func (cfg *TraceConfig) withDefaults() TraceConfig {
	out := *cfg
	if out.Days <= 0 {
		out.Days = 28
	}
	if out.NumVHOs <= 0 {
		out.NumVHOs = 55
	}
	if out.RequestsPerVideoPerDay <= 0 {
		out.RequestsPerVideoPerDay = 1
	}
	if out.PrefSkew <= 0 {
		out.PrefSkew = 1
	}
	return out
}

// hourShare is the fraction of a day's requests arriving in each hour:
// quiet overnight, ramping through the day to a strong evening peak —
// the canonical VoD diurnal curve.
var hourShare = func() [24]float64 {
	raw := [24]float64{
		0.30, 0.20, 0.15, 0.10, 0.10, 0.15,
		0.25, 0.40, 0.50, 0.60, 0.70, 0.80,
		0.90, 0.90, 0.90, 1.00, 1.10, 1.30,
		1.60, 1.90, 2.00, 1.80, 1.20, 0.60,
	}
	var sum float64
	for _, v := range raw {
		sum += v
	}
	for i := range raw {
		raw[i] /= sum
	}
	return raw
}()

// dayFactor scales daily volume by weekday; day 0 is a Monday. Fridays and
// Saturdays are the busiest days, as in §IV/§VI-B.
func dayFactor(day int) float64 {
	switch day % 7 {
	case 4: // Friday
		return 1.35
	case 5: // Saturday
		return 1.45
	case 6: // Sunday
		return 1.10
	default:
		return 0.90
	}
}

// DayFactor exposes the weekday volume multiplier (day 0 is a Monday).
func DayFactor(day int) float64 { return dayFactor(day) }

// prefMultiplier returns the deterministic (office, video) preference
// multiplier in [2^-skew, 2^skew] derived from a 64-bit mix of the pair.
func prefMultiplier(vho, video int, skew float64) float64 {
	x := uint64(vho)*0x9E3779B97F4A7C15 + uint64(video)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53) // [0, 1)
	return math.Pow(2, (2*u-1)*skew)
}

// poisson draws a Poisson(lambda) variate: Knuth's method for small lambda,
// a rounded normal approximation for large lambda.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GenerateTrace synthesizes a request trace for lib under cfg and seed.
func GenerateTrace(lib *catalog.Library, cfg TraceConfig, seed int64) *Trace {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	n := lib.Len()
	pops := c.Populations
	if pops == nil {
		pops = Populations(c.NumVHOs, seed+1)
	}
	if len(pops) != c.NumVHOs {
		panic(fmt.Sprintf("workload: %d populations for %d VHOs", len(pops), c.NumVHOs))
	}
	model := NewPopularityModel(lib, c.Popularity, seed+2)

	tr := &Trace{
		Days:    c.Days,
		NumVHOs: c.NumVHOs,
		Lib:     lib,
		Pops:    append([]float64(nil), pops...),
	}

	// Schedule flash crowds on random (day >= 1, day-0 video) pairs.
	flashMult := make(map[[2]int]float64)
	for f := 0; f < c.FlashCrowds; f++ {
		day := 1 + rng.Intn(max(1, c.Days-1))
		video := rng.Intn(n)
		ev := FlashEvent{Day: day, Video: video}
		tr.FlashEvents = append(tr.FlashEvents, ev)
		flashMult[[2]int{day, video}] = 100
	}

	baseDaily := c.RequestsPerVideoPerDay * float64(n)
	weights := make([]float64, n)
	cum := make([]float64, n+1)
	maxMult := math.Pow(2, c.PrefSkew)

	for day := 0; day < c.Days; day++ {
		total := model.dayWeights(day, weights)
		for key, mult := range flashMult {
			if key[0] == day && lib.Videos[key[1]].ReleaseDay <= day {
				total += weights[key[1]] * (mult - 1)
				weights[key[1]] *= mult
			}
		}
		if total <= 0 {
			continue
		}
		cum[0] = 0
		for v := 0; v < n; v++ {
			cum[v+1] = cum[v] + weights[v]
		}
		sample := func() int {
			u := rng.Float64() * cum[n]
			v := sort.SearchFloat64s(cum[1:], u)
			if v >= n {
				v = n - 1
			}
			return v
		}
		dailyVolume := baseDaily * dayFactor(day)
		for j := 0; j < c.NumVHOs; j++ {
			for h := 0; h < 24; h++ {
				lambda := dailyVolume * pops[j] * hourShare[h]
				k := poisson(rng, lambda)
				for r := 0; r < k; r++ {
					// Rejection-sample the office's preference skew.
					var v int
					for attempt := 0; ; attempt++ {
						v = sample()
						m := prefMultiplier(j, v, c.PrefSkew)
						if attempt >= 16 || rng.Float64() < m/maxMult {
							break
						}
					}
					t := int64(day)*SecondsPerDay + int64(h)*3600 + int64(rng.Intn(3600))
					tr.Requests = append(tr.Requests, Request{Time: t, VHO: int32(j), Video: int32(v)})
				}
			}
		}
	}
	sort.Slice(tr.Requests, func(a, b int) bool {
		ra, rb := tr.Requests[a], tr.Requests[b]
		if ra.Time != rb.Time {
			return ra.Time < rb.Time
		}
		if ra.VHO != rb.VHO {
			return ra.VHO < rb.VHO
		}
		return ra.Video < rb.Video
	})
	return tr
}

// Slice returns the sub-trace with request times in [from, to) seconds,
// sharing the underlying request storage.
func (t *Trace) Slice(from, to int64) *Trace {
	lo := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Time >= from })
	hi := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Time >= to })
	out := *t
	out.Requests = t.Requests[lo:hi]
	return &out
}

// DaySlice returns the sub-trace for days [fromDay, toDay).
func (t *Trace) DaySlice(fromDay, toDay int) *Trace {
	return t.Slice(int64(fromDay)*SecondsPerDay, int64(toDay)*SecondsPerDay)
}
