package workload

import (
	"math"
	"testing"
)

func TestZipfWeights(t *testing.T) {
	if got := ZipfWeights(0, 1); got != nil {
		t.Fatalf("ZipfWeights(0) = %v, want nil", got)
	}
	w := ZipfWeights(100, 0.8)
	sum := 0.0
	for r, v := range w {
		sum += v
		if r > 0 && v >= w[r-1] {
			t.Fatalf("weights not strictly decreasing at rank %d", r)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
	// Exact ratio check: w[0]/w[9] = 10^0.8.
	if got, want := w[0]/w[9], math.Pow(10, 0.8); math.Abs(got-want) > 1e-9 {
		t.Fatalf("w[0]/w[9] = %g, want %g", got, want)
	}
	// s=0 is uniform.
	u := ZipfWeights(5, 0)
	for _, v := range u {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("uniform weights %v", u)
		}
	}
}

func TestSampler(t *testing.T) {
	if s := NewSampler(nil, 1); s != nil {
		t.Fatal("sampler over no mass should be nil")
	}
	if s := NewSampler([]float64{0, -1, 0}, 1); s != nil {
		t.Fatal("sampler over non-positive mass should be nil")
	}

	// Zero-mass entries are never drawn; frequencies track weights.
	w := []float64{0, 3, 0, 1, 0}
	s := NewSampler(w, 7)
	counts := make([]int, len(w))
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	for i, c := range counts {
		if w[i] == 0 && c != 0 {
			t.Fatalf("zero-weight index %d drawn %d times", i, c)
		}
	}
	ratio := float64(counts[1]) / float64(counts[3])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("draw ratio %g, want ~3", ratio)
	}

	// Deterministic per (weights, seed).
	a, b := NewSampler(w, 42), NewSampler(w, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}
