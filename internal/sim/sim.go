// Package sim plays request traces against a content placement, tracking
// every backbone link's bandwidth over time — the custom simulator behind
// all of §VII's comparative results.
//
// A request for video m at office j is served locally when j pins or caches
// the video; otherwise the simulator picks a serving office — by the MIP
// solution's x-distribution, from the region's origin server, or from the
// nearest replica via the same Oracle the paper grants its baselines — and
// the stream occupies every link on the fixed path for the video's full
// duration. Per-5-minute bins record the peak per-link bandwidth (Fig. 5),
// the aggregate transfer volume weighted by hop count (Fig. 6), and cache
// statistics (Fig. 9, Table II).
package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
	"math/rand"

	"vodplace/internal/cache"
	"vodplace/internal/catalog"
	"vodplace/internal/mip"
	"vodplace/internal/obs"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	G   *topology.Graph
	Lib *catalog.Library
	// Pinned[i] lists the videos pre-positioned at office i. Every video
	// should be pinned somewhere unless Origins is set.
	Pinned [][]int
	// CacheGB[i] is office i's cache capacity (0 disables the cache there).
	// nil disables caching entirely.
	CacheGB []float64
	// CachePolicy selects the replacement policy for all caches.
	CachePolicy cache.Policy
	// XDist optionally gives the MIP solution's request-routing
	// distribution: for (office j, video m), the fractions x_ij^m. Requests
	// without an entry fall back to the nearest-replica oracle.
	XDist map[workload.JM][]mip.Frac
	// Origins, when non-nil, routes every miss at office j to the origin
	// server attached at office Origins[j] (Table II's comparison), instead
	// of the nearest replica.
	Origins []int
	// BinSec is the metric bin width. Default 300 (5 minutes, as in Fig. 5).
	BinSec int64
	// Seed drives x-distribution sampling.
	Seed int64
	// Updates are placement changes applied when simulated time reaches
	// AtSec (ascending). They model the periodic re-placement of §VI-C.
	Updates []Update
	// MetricsFromSec excludes earlier requests and bins from the counters
	// and maxima (the paper warms caches for nine days before measuring).
	// Bin series still cover the whole horizon.
	MetricsFromSec int64
	// Recorder, when non-nil, receives one telemetry event per completed
	// metric bin (hit rate, evictions, offered load vs. capacity). Telemetry
	// never feeds back into the simulation.
	Recorder *obs.Recorder
	// Scheme names this run's event stream in the trace (default "sim");
	// comparison runs label each scheme so their bin series stay separate.
	Scheme string
	// LinkCapMbps, when it has one entry per link, lets traced runs report
	// per-bin offered/capacity utilization; the simulator itself never
	// enforces capacities.
	LinkCapMbps []float64
}

// Update is a placement change at a point in simulated time.
type Update struct {
	AtSec  int64
	Pinned [][]int
	// XDist replaces the routing distribution (may be nil to clear it).
	XDist map[workload.JM][]mip.Frac
}

// Result carries the run's metrics.
type Result struct {
	// BinPeakMbps[b] is the maximum per-link bandwidth observed during bin
	// b (the Fig. 5 series). BinAggMbps[b] is the peak aggregate (summed
	// over links) bandwidth in the bin; BinGBHop[b] the gigabytes
	// transferred in the bin summed over links — i.e. GB × hops (Fig. 6).
	BinPeakMbps []float64
	BinAggMbps  []float64
	BinGBHop    []float64

	// MaxLinkMbps is the overall peak per-link bandwidth; MaxAggMbps the
	// overall peak aggregate bandwidth; TotalGBHop the total transfer
	// volume weighted by hop count (the Table VI metric).
	MaxLinkMbps float64
	MaxAggMbps  float64
	TotalGBHop  float64

	Requests     int
	PinnedHits   int // served from the local pinned store
	CacheHits    int // served from the local cache
	RemoteServed int // fetched from another office (or origin)
	Uncachable   int // misses that could not be admitted to the local cache
	Evictions    int // cache evictions across all offices

	// MigratedVideos and MigratedGB count the copies each placement update
	// had to add relative to the previous placement (§VII-H's update cost;
	// the paper argues these transfers are piggybacked off-peak, so they do
	// not load the links here).
	MigratedVideos int
	MigratedGB     float64

	// LocalFrac is the fraction of requests served locally; HitRate is the
	// same quantity (the paper's "cache hit rate" counts pinned and cached
	// service together).
	LocalFrac float64
	HitRate   float64
}

// endEvent is a stream completion.
type endEvent struct {
	time  int64
	src   int
	dst   int
	video int
	rate  float64
	// release lists offices whose cache entry was retained for the stream.
	release []int
}

type endHeap []endEvent

func (h endHeap) Len() int           { return len(h) }
func (h endHeap) Less(a, b int) bool { return h[a].time < h[b].time }
func (h endHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *endHeap) Push(x any)        { *h = append(*h, x.(endEvent)) }
func (h *endHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// bitset is a fixed-size bitmap over offices.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// tracker maintains per-link loads and per-bin metrics.
type tracker struct {
	binSec  int64
	loads   []float64
	agg     float64
	curBin  int
	lastT   int64
	binPeak []float64
	binAgg  []float64
	binGB   []float64
	// Telemetry extras, active only for traced runs: caps enables per-bin
	// peak utilization tracking (loads[l]/caps[l]), and onBin fires once per
	// completed bin with its final series values — the per-time-slice hook
	// the recorder attaches to.
	caps    []float64
	curUtil float64
	onBin   func(bin int, startSec int64, peak, agg, gb, util float64)
}

func newTracker(links int, bins int, binSec int64) *tracker {
	return &tracker{
		binSec:  binSec,
		loads:   make([]float64, links),
		binPeak: make([]float64, bins),
		binAgg:  make([]float64, bins),
		binGB:   make([]float64, bins),
	}
}

// advance moves logical time to t, accumulating the aggregate-load integral
// into the bins crossed and seeding each new bin's peaks with the carried
// load.
func (tr *tracker) advance(t int64) {
	for {
		binEnd := int64(tr.curBin+1) * tr.binSec
		if t < binEnd {
			break
		}
		tr.accumulate(binEnd)
		if tr.onBin != nil && tr.curBin < len(tr.binPeak) {
			tr.onBin(tr.curBin, int64(tr.curBin)*tr.binSec,
				tr.binPeak[tr.curBin], tr.binAgg[tr.curBin], tr.binGB[tr.curBin], tr.curUtil)
		}
		tr.curBin++
		if tr.curBin < len(tr.binPeak) {
			// Carried-over load seeds the new bin's peaks.
			var maxLoad, maxUtil float64
			for l, ld := range tr.loads {
				if ld > maxLoad {
					maxLoad = ld
				}
				if tr.caps != nil && tr.caps[l] > 0 {
					if u := ld / tr.caps[l]; u > maxUtil {
						maxUtil = u
					}
				}
			}
			tr.binPeak[tr.curBin] = maxLoad
			tr.binAgg[tr.curBin] = tr.agg
			tr.curUtil = maxUtil
		}
	}
	tr.accumulate(t)
}

// accumulate integrates the aggregate load from lastT to t into the current
// bin's GB counter (Mb/s × s → GB at /8000).
func (tr *tracker) accumulate(t int64) {
	if t <= tr.lastT {
		return
	}
	if tr.curBin < len(tr.binGB) {
		tr.binGB[tr.curBin] += tr.agg * float64(t-tr.lastT) / 8000
	}
	tr.lastT = t
}

func (tr *tracker) bump(kind []float64, v float64) {
	if tr.curBin < len(kind) && v > kind[tr.curBin] {
		kind[tr.curBin] = v
	}
}

func (tr *tracker) addStream(path []int32, rate float64) {
	for _, l := range path {
		tr.loads[l] += rate
		tr.bump(tr.binPeak, tr.loads[l])
		if tr.caps != nil && tr.caps[l] > 0 {
			if u := tr.loads[l] / tr.caps[l]; u > tr.curUtil {
				tr.curUtil = u
			}
		}
	}
	tr.agg += rate * float64(len(path))
	tr.bump(tr.binAgg, tr.agg)
}

func (tr *tracker) removeStream(path []int32, rate float64) {
	for _, l := range path {
		tr.loads[l] -= rate
	}
	tr.agg -= rate * float64(len(path))
}

// Run plays the trace against the configuration.
func Run(cfg Config, tr *workload.Trace) (*Result, error) {
	if cfg.G == nil || !cfg.G.Built() {
		return nil, fmt.Errorf("sim: graph must be built")
	}
	if cfg.Lib == nil || tr == nil {
		return nil, fmt.Errorf("sim: library and trace required")
	}
	n := cfg.G.NumNodes()
	if tr.NumVHOs > n {
		return nil, fmt.Errorf("sim: trace has %d offices but graph has %d", tr.NumVHOs, n)
	}
	if cfg.Pinned != nil && len(cfg.Pinned) != n {
		return nil, fmt.Errorf("sim: %d pinned sets for %d offices", len(cfg.Pinned), n)
	}
	if cfg.Origins != nil && len(cfg.Origins) != n {
		return nil, fmt.Errorf("sim: %d origins for %d offices", len(cfg.Origins), n)
	}
	binSec := cfg.BinSec
	if binSec <= 0 {
		binSec = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	horizon := int64(tr.Days) * workload.SecondsPerDay
	bins := int((horizon + binSec - 1) / binSec)
	track := newTracker(cfg.G.NumLinks(), bins, binSec)

	// Replica index: pinned and cached locations per video.
	numVideos := cfg.Lib.Len()
	pinnedAt := make([]bitset, numVideos)
	cachedAt := make([]bitset, numVideos)
	for v := 0; v < numVideos; v++ {
		pinnedAt[v] = newBitset(n)
		cachedAt[v] = newBitset(n)
	}
	for i, vids := range cfg.Pinned {
		for _, v := range vids {
			pinnedAt[v].set(i)
		}
	}

	// Offices sorted by hop distance from each office, for oracle lookups.
	order := make([][]int, n)
	for j := 0; j < n; j++ {
		order[j] = make([]int, n)
		for i := range order[j] {
			order[j][i] = i
		}
		js := order[j]
		// Insertion sort by (hops, index): n is small.
		for a := 1; a < len(js); a++ {
			for b := a; b > 0; b-- {
				hb, hp := cfg.G.Hops(js[b], j), cfg.G.Hops(js[b-1], j)
				if hb < hp || (hb == hp && js[b] < js[b-1]) {
					js[b], js[b-1] = js[b-1], js[b]
				} else {
					break
				}
			}
		}
	}

	// Caches.
	var caches []*cache.Cache
	res := &Result{}
	if cfg.CacheGB != nil {
		if len(cfg.CacheGB) != n {
			return nil, fmt.Errorf("sim: %d cache capacities for %d offices", len(cfg.CacheGB), n)
		}
		caches = make([]*cache.Cache, n)
		for i := range caches {
			i := i
			caches[i] = cache.New(cfg.CachePolicy, cfg.CacheGB[i])
			caches[i].OnEvict = func(video int) {
				cachedAt[video].clear(i)
			}
		}
	}

	// Per-bin telemetry: fire one SimSlice per completed bin, with counter
	// fields reported as deltas against the previous bin so each slice
	// stands alone. Attached only for traced runs, so the untraced simulator
	// pays nothing beyond a nil check per bin crossing.
	if cfg.Recorder.Enabled() {
		scheme := cfg.Scheme
		if scheme == "" {
			scheme = "sim"
		}
		if len(cfg.LinkCapMbps) == cfg.G.NumLinks() {
			track.caps = cfg.LinkCapMbps
		}
		var prev Result
		prevEvict := 0
		track.onBin = func(bin int, startSec int64, peak, agg, gb, util float64) {
			evict := 0
			for _, c := range caches {
				evict += c.Stats().Evicted
			}
			reqD := res.Requests - prev.Requests
			remoteD := res.RemoteServed - prev.RemoteServed
			hit := 0.0
			if reqD > 0 {
				hit = float64(reqD-remoteD) / float64(reqD)
			}
			cfg.Recorder.RecordSimSlice(obs.SimSlice{
				Stream:       scheme,
				Bin:          bin,
				StartSec:     startSec,
				PeakMbps:     peak,
				MaxUtil:      util,
				AggMbps:      agg,
				GBHop:        gb,
				Requests:     reqD,
				PinnedHits:   res.PinnedHits - prev.PinnedHits,
				CacheHits:    res.CacheHits - prev.CacheHits,
				RemoteServed: remoteD,
				Evictions:    evict - prevEvict,
				HitRate:      hit,
			})
			prev = *res
			prevEvict = evict
		}
	}

	// nearest returns the closest office to j holding video v (pinned or
	// cached), or -1.
	nearest := func(j, v int) int {
		pa, ca := pinnedAt[v], cachedAt[v]
		for _, i := range order[j] {
			if pa.has(i) || ca.has(i) {
				return i
			}
		}
		return -1
	}

	var ends endHeap
	finishUntil := func(t int64) {
		for len(ends) > 0 && ends[0].time <= t {
			e := heap.Pop(&ends).(endEvent)
			track.advance(e.time)
			if e.src != e.dst {
				track.removeStream(cfg.G.Path(e.src, e.dst), e.rate)
			}
			for _, office := range e.release {
				if caches != nil {
					caches[office].Release(e.video)
				}
			}
		}
	}

	// applyUpdate swaps in a new placement, counting added copies.
	xdist := cfg.XDist
	applyUpdate(&cfg, nil, pinnedAt, numVideos, n, res, cfg.Lib) // no-op shape check
	nextUpdate := 0
	for _, r := range tr.Requests {
		t := r.Time
		for nextUpdate < len(cfg.Updates) && cfg.Updates[nextUpdate].AtSec <= t {
			u := &cfg.Updates[nextUpdate]
			applyUpdate(&cfg, u, pinnedAt, numVideos, n, res, cfg.Lib)
			xdist = u.XDist
			nextUpdate++
		}
		finishUntil(t)
		track.advance(t)
		j := int(r.VHO)
		v := int(r.Video)
		vid := &cfg.Lib.Videos[v]
		counted := t >= cfg.MetricsFromSec
		if counted {
			res.Requests++
		}

		var release []int
		serveFrom := -1
		local := false
		switch {
		case pinnedAt[v].has(j):
			// Pinned service bypasses the cache entirely.
			if counted {
				res.PinnedHits++
			}
			serveFrom, local = j, true
		case caches != nil && caches[j].Lookup(v):
			if counted {
				res.CacheHits++
			}
			serveFrom, local = j, true
			caches[j].Retain(v)
			release = append(release, j)
		}

		if !local {
			// Remote service.
			if xdist != nil {
				if fr, ok := xdist[workload.MakeJM(j, v)]; ok && len(fr) > 0 {
					u := rng.Float64()
					var acc float64
					for _, f := range fr {
						acc += f.V
						if u <= acc {
							serveFrom = int(f.I)
							break
						}
					}
					if serveFrom < 0 {
						serveFrom = int(fr[len(fr)-1].I)
					}
					if !pinnedAt[v].has(serveFrom) && !cachedAt[v].has(serveFrom) {
						serveFrom = -1 // stale distribution; fall through
					}
				}
			}
			if serveFrom < 0 && cfg.Origins != nil {
				serveFrom = cfg.Origins[j]
			}
			if serveFrom < 0 {
				serveFrom = nearest(j, v)
			}
			if serveFrom < 0 {
				return nil, fmt.Errorf("sim: video %d has no replica anywhere (request at office %d)", v, j)
			}
			if serveFrom == j {
				// Replica appeared locally (e.g. cached but Lookup raced a
				// pin-less config); serve locally.
				local = true
			} else {
				if counted {
					res.RemoteServed++
				}
				// Retain the remote cached copy while it streams.
				if caches != nil && !pinnedAt[v].has(serveFrom) && cachedAt[v].has(serveFrom) {
					caches[serveFrom].Retain(v)
					release = append(release, serveFrom)
				}
				// Cache the fetched video locally.
				if caches != nil && caches[j].CapGB() > 0 {
					if caches[j].Admit(v, vid.SizeGB) {
						cachedAt[v].set(j)
						caches[j].Retain(v)
						release = append(release, j)
					} else if counted {
						res.Uncachable++
					}
				}
			}
		}
		if local && serveFrom < 0 {
			serveFrom = j
		}

		endT := t + vid.DurationSec
		if serveFrom != j {
			track.addStream(cfg.G.Path(serveFrom, j), vid.RateMbps)
		}
		heap.Push(&ends, endEvent{time: endT, src: serveFrom, dst: j, video: v, rate: vid.RateMbps, release: release})
	}
	finishUntil(horizon)
	track.advance(horizon)

	res.BinPeakMbps = track.binPeak
	res.BinAggMbps = track.binAgg
	res.BinGBHop = track.binGB
	firstBin := int(cfg.MetricsFromSec / binSec)
	for b := range track.binPeak {
		if b < firstBin {
			continue
		}
		if track.binPeak[b] > res.MaxLinkMbps {
			res.MaxLinkMbps = track.binPeak[b]
		}
		if track.binAgg[b] > res.MaxAggMbps {
			res.MaxAggMbps = track.binAgg[b]
		}
		res.TotalGBHop += track.binGB[b]
	}
	if caches != nil {
		for _, c := range caches {
			res.Evictions += c.Stats().Evicted
		}
	}
	if res.Requests > 0 {
		localServed := res.Requests - res.RemoteServed
		res.LocalFrac = float64(localServed) / float64(res.Requests)
		res.HitRate = res.LocalFrac
	}
	// Push buffered slice events out at run end so an interrupted caller
	// (SIGINT between scheme runs) still sees every completed bin.
	cfg.Recorder.Flush() //nolint:errcheck // sink errors surface from the caller's Close
	return res, nil
}

// applyUpdate swaps the pinned placement for u's (u == nil is a no-op used
// to keep the call shape uniform at start-up). Added copies are counted as
// migration cost; removed copies are dropped immediately. Cached content is
// untouched.
func applyUpdate(cfg *Config, u *Update, pinnedAt []bitset, numVideos, n int, res *Result, lib *catalog.Library) {
	if u == nil {
		return
	}
	newPinned := make([]bitset, numVideos)
	for v := range newPinned {
		newPinned[v] = newBitset(n)
	}
	for i, vids := range u.Pinned {
		for _, v := range vids {
			newPinned[v].set(i)
		}
	}
	for v := 0; v < numVideos; v++ {
		added := 0
		for w := range newPinned[v] {
			added += bits.OnesCount64(newPinned[v][w] &^ pinnedAt[v][w])
		}
		if added > 0 {
			res.MigratedVideos += added
			res.MigratedGB += float64(added) * lib.Videos[v].SizeGB
		}
		pinnedAt[v] = newPinned[v]
	}
	_ = cfg
}
