package sim

import (
	"math/rand"
	"sort"

	"vodplace/internal/catalog"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

// PinnedFromSolution extracts per-office pinned video lists from an integral
// placement solution (y_i^m ≥ ½ counts as stored).
func PinnedFromSolution(inst *mip.Instance, sol *mip.Solution) [][]int {
	n := inst.NumVHOs()
	pinned := make([][]int, n)
	for vi := range sol.Videos {
		video := inst.Demands[vi].Video
		for _, f := range sol.Videos[vi].Open {
			if f.V >= 0.5 {
				pinned[f.I] = append(pinned[f.I], video)
			}
		}
	}
	return pinned
}

// XDistFromSolution builds the request-routing distribution: for every
// (office, video) pair with demand in the instance, the fractions x_ij^m
// with which office j should fetch video m from office i (§V-B: requests
// are sent to server i with probability x_ij^m).
func XDistFromSolution(inst *mip.Instance, sol *mip.Solution) map[workload.JM][]mip.Frac {
	out := make(map[workload.JM][]mip.Frac)
	for vi := range sol.Videos {
		d := &inst.Demands[vi]
		for k, fr := range sol.Videos[vi].Assign {
			if len(fr) == 0 {
				continue
			}
			key := workload.MakeJM(int(d.Js[k]), d.Video)
			out[key] = append([]mip.Frac(nil), fr...)
		}
	}
	return out
}

// RandomPlacement pins one copy of every video at a uniformly random office
// (the baseline §VII-A strategies start from this layout).
func RandomPlacement(lib *catalog.Library, n int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	pinned := make([][]int, n)
	for _, v := range lib.Videos {
		i := rng.Intn(n)
		pinned[i] = append(pinned[i], v.ID)
	}
	return pinned
}

// TopKPlacement replicates the top k videos of ranked (video ids in
// decreasing popularity) at every office and assigns every remaining video
// to one random office — the simplified Valancius et al. [23] strategy of
// §VII-A. Videos missing from ranked are treated as unpopular.
func TopKPlacement(lib *catalog.Library, ranked []int, k int, n int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	pinned := make([][]int, n)
	if k > len(ranked) {
		k = len(ranked)
	}
	top := make(map[int]bool, k)
	for _, v := range ranked[:k] {
		top[v] = true
	}
	for i := 0; i < n; i++ {
		for _, v := range ranked[:k] {
			pinned[i] = append(pinned[i], v)
		}
	}
	for _, v := range lib.Videos {
		if top[v.ID] {
			continue
		}
		i := rng.Intn(n)
		pinned[i] = append(pinned[i], v.ID)
	}
	return pinned
}

// RankByPopularity returns video ids ordered by decreasing request count
// over the window [from, to) of the trace.
func RankByPopularity(tr *workload.Trace, from, to int64) []int {
	counts := make([]int, tr.Lib.Len())
	sub := tr.Slice(from, to)
	for _, r := range sub.Requests {
		counts[r.Video]++
	}
	ranked := make([]int, len(counts))
	for i := range ranked {
		ranked[i] = i
	}
	sort.SliceStable(ranked, func(a, b int) bool { return counts[ranked[a]] > counts[ranked[b]] })
	return ranked
}

// PinnedGB returns the storage consumed by each office's pinned videos.
func PinnedGB(lib *catalog.Library, pinned [][]int) []float64 {
	out := make([]float64, len(pinned))
	for i, vids := range pinned {
		for _, v := range vids {
			out[i] += lib.Videos[v].SizeGB
		}
	}
	return out
}

// CacheRemainder returns per-office cache capacities: the disk left after
// pinned content, clamped at zero (an office whose random assignment
// overflows its disk simply has no cache).
func CacheRemainder(lib *catalog.Library, pinned [][]int, diskGB []float64) []float64 {
	used := PinnedGB(lib, pinned)
	out := make([]float64, len(diskGB))
	for i := range out {
		out[i] = diskGB[i] - used[i]
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// RegionOrigins partitions the offices into k regions around well-separated
// attachment offices (greedy farthest-point selection) and returns, for each
// office, the attachment office of its region — the Table II origin-server
// layout ("we partitioned our network into four regions, each served by a
// separate origin server connected to one of the VHOs").
func RegionOrigins(g *topology.Graph, k int) []int {
	n := g.NumNodes()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	seeds := []int{0}
	for len(seeds) < k {
		best, bestDist := -1, -1
		for i := 0; i < n; i++ {
			d := 1 << 30
			for _, s := range seeds {
				if h := g.Hops(s, i); h < d {
					d = h
				}
			}
			if d > bestDist {
				bestDist, best = d, i
			}
		}
		seeds = append(seeds, best)
	}
	origins := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestDist := seeds[0], g.Hops(seeds[0], i)
		for _, s := range seeds[1:] {
			if h := g.Hops(s, i); h < bestDist {
				bestDist, best = h, s
			}
		}
		origins[i] = best
	}
	return origins
}
