package sim

import (
	"math"
	"testing"

	"vodplace/internal/cache"
	"vodplace/internal/catalog"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.New("line", n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	return g
}

// tinyTrace builds a trace with explicit requests.
func tinyTrace(lib *catalog.Library, days, vhos int, reqs []workload.Request) *workload.Trace {
	return &workload.Trace{Requests: reqs, Days: days, NumVHOs: vhos, Lib: lib}
}

func TestRunLocalService(t *testing.T) {
	g := lineGraph(t, 3)
	lib := catalog.Generate(catalog.Config{NumVideos: 5}, 1)
	// Everything pinned at every office: all requests local, zero transfer.
	pinned := make([][]int, 3)
	for i := range pinned {
		for _, v := range lib.Videos {
			pinned[i] = append(pinned[i], v.ID)
		}
	}
	tr := tinyTrace(lib, 1, 3, []workload.Request{
		{Time: 100, VHO: 0, Video: 0},
		{Time: 200, VHO: 2, Video: 1},
	})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGBHop != 0 || res.MaxLinkMbps != 0 {
		t.Errorf("local service should use no links: %+v", res)
	}
	if res.PinnedHits != 2 || res.LocalFrac != 1 {
		t.Errorf("expected 2 pinned hits: %+v", res)
	}
}

func TestRunRemoteStreamLoad(t *testing.T) {
	g := lineGraph(t, 3)
	lib := catalog.Generate(catalog.Config{NumVideos: 5}, 1)
	// Video 0 pinned only at office 0; request at office 2 → path of 2 links.
	pinned := make([][]int, 3)
	pinned[0] = []int{0, 1, 2, 3, 4}
	tr := tinyTrace(lib, 1, 3, []workload.Request{{Time: 0, VHO: 2, Video: 0}})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned}, tr)
	if err != nil {
		t.Fatal(err)
	}
	vid := lib.Videos[0]
	if res.RemoteServed != 1 {
		t.Fatalf("remote served = %d, want 1", res.RemoteServed)
	}
	if math.Abs(res.MaxLinkMbps-vid.RateMbps) > 1e-9 {
		t.Errorf("MaxLinkMbps = %g, want %g", res.MaxLinkMbps, vid.RateMbps)
	}
	// GB×hop: rate × duration × 2 hops.
	wantGB := vid.RateMbps * float64(vid.DurationSec) / 8000 * 2
	if math.Abs(res.TotalGBHop-wantGB) > 1e-6 {
		t.Errorf("TotalGBHop = %g, want %g", res.TotalGBHop, wantGB)
	}
	// Load must be released after the stream ends: the peak of the final
	// bins must be zero.
	last := res.BinPeakMbps[len(res.BinPeakMbps)-1]
	if last != 0 {
		t.Errorf("load leaked to the last bin: %g", last)
	}
}

func TestRunOverlappingStreamsStack(t *testing.T) {
	g := lineGraph(t, 2)
	lib := catalog.Generate(catalog.Config{NumVideos: 3}, 1)
	pinned := [][]int{{0, 1, 2}, nil}
	// Two concurrent streams of the same video to office 1.
	tr := tinyTrace(lib, 1, 2, []workload.Request{
		{Time: 0, VHO: 1, Video: 0},
		{Time: 10, VHO: 1, Video: 1},
	})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned}, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := lib.Videos[0].RateMbps + lib.Videos[1].RateMbps
	if math.Abs(res.MaxLinkMbps-want) > 1e-9 {
		t.Errorf("MaxLinkMbps = %g, want stacked %g", res.MaxLinkMbps, want)
	}
}

func TestRunCachingReducesSecondFetch(t *testing.T) {
	g := lineGraph(t, 2)
	lib := catalog.Generate(catalog.Config{NumVideos: 3}, 1)
	pinned := [][]int{{0, 1, 2}, nil}
	cacheGB := []float64{0, 10}
	// Same video requested twice at office 1, far apart in time.
	tr := tinyTrace(lib, 1, 2, []workload.Request{
		{Time: 0, VHO: 1, Video: 0},
		{Time: 40000, VHO: 1, Video: 0},
	})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned, CacheGB: cacheGB, CachePolicy: cache.LRU}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteServed != 1 || res.CacheHits != 1 {
		t.Errorf("second request should hit the cache: %+v", res)
	}
}

func TestRunUncachableWhenAllReferenced(t *testing.T) {
	g := lineGraph(t, 2)
	lib := catalog.Generate(catalog.Config{NumVideos: 4}, 1)
	pinned := [][]int{{0, 1, 2, 3}, nil}
	// Cache fits exactly one 2-GB movie; find two movie-2h videos.
	var movies []int
	for _, v := range lib.Videos {
		if v.Class == catalog.Movie2h {
			movies = append(movies, v.ID)
		}
	}
	if len(movies) < 2 {
		t.Skip("library lacks two 2h movies")
	}
	cacheGB := []float64{0, 2.5}
	tr := tinyTrace(lib, 1, 2, []workload.Request{
		{Time: 0, VHO: 1, Video: int32(movies[0])},
		{Time: 100, VHO: 1, Video: int32(movies[1])}, // overlaps; first is referenced
	})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned, CacheGB: cacheGB, CachePolicy: cache.LRU}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Uncachable != 1 {
		t.Errorf("Uncachable = %d, want 1 (second movie cannot displace a streaming one): %+v", res.Uncachable, res)
	}
}

func TestRunOracleNearest(t *testing.T) {
	g := lineGraph(t, 4)
	lib := catalog.Generate(catalog.Config{NumVideos: 2}, 1)
	// Video 0 pinned at offices 0 and 2; request at 3 must come from 2
	// (1 hop), not 0 (3 hops).
	pinned := [][]int{{0, 1}, nil, {0}, nil}
	tr := tinyTrace(lib, 1, 4, []workload.Request{{Time: 0, VHO: 3, Video: 0}})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned}, tr)
	if err != nil {
		t.Fatal(err)
	}
	wantGB := lib.Videos[0].RateMbps * float64(lib.Videos[0].DurationSec) / 8000 * 1
	if math.Abs(res.TotalGBHop-wantGB) > 1e-6 {
		t.Errorf("TotalGBHop = %g, want %g (1 hop from office 2)", res.TotalGBHop, wantGB)
	}
}

func TestRunOrigins(t *testing.T) {
	g := lineGraph(t, 4)
	lib := catalog.Generate(catalog.Config{NumVideos: 2}, 1)
	origins := []int{0, 0, 0, 0}
	tr := tinyTrace(lib, 1, 4, []workload.Request{{Time: 0, VHO: 3, Video: 0}})
	res, err := Run(Config{G: g, Lib: lib, Origins: origins, CacheGB: []float64{5, 5, 5, 5}, CachePolicy: cache.LRU}, tr)
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops from office 0.
	wantGB := lib.Videos[0].RateMbps * float64(lib.Videos[0].DurationSec) / 8000 * 3
	if math.Abs(res.TotalGBHop-wantGB) > 1e-6 {
		t.Errorf("TotalGBHop = %g, want %g (3 hops from origin)", res.TotalGBHop, wantGB)
	}
}

func TestRunXDist(t *testing.T) {
	g := lineGraph(t, 3)
	lib := catalog.Generate(catalog.Config{NumVideos: 2}, 1)
	// Video 0 pinned at 0 and 2 (2 hops and 0 hops from office 2's view of
	// office 0... request at office 1: both 1 hop). Force all service from
	// office 0 via the x-distribution.
	pinned := [][]int{{0, 1}, nil, {0}}
	xdist := map[workload.JM][]mip.Frac{
		workload.MakeJM(1, 0): {{I: 0, V: 1}},
	}
	tr := tinyTrace(lib, 1, 3, []workload.Request{{Time: 0, VHO: 1, Video: 0}})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned, XDist: xdist}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteServed != 1 {
		t.Fatalf("remote served = %d", res.RemoteServed)
	}
	// Path 0→1 must carry load; link 1→... check via hop count (1 hop).
	wantGB := lib.Videos[0].RateMbps * float64(lib.Videos[0].DurationSec) / 8000
	if math.Abs(res.TotalGBHop-wantGB) > 1e-6 {
		t.Errorf("TotalGBHop = %g, want %g", res.TotalGBHop, wantGB)
	}
}

func TestRunErrors(t *testing.T) {
	g := lineGraph(t, 2)
	lib := catalog.Generate(catalog.Config{NumVideos: 2}, 1)
	tr := tinyTrace(lib, 1, 2, nil)
	if _, err := Run(Config{Lib: lib}, tr); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Config{G: g, Lib: lib, Origins: []int{0}}, tr); err == nil {
		t.Error("mismatched origins accepted")
	}
	if _, err := Run(Config{G: g}, tr); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := Run(Config{G: g, Lib: lib, Pinned: make([][]int, 5)}, tr); err == nil {
		t.Error("mismatched pinned accepted")
	}
	// Request for a video with no replica must error.
	tr2 := tinyTrace(lib, 1, 2, []workload.Request{{Time: 0, VHO: 0, Video: 1}})
	if _, err := Run(Config{G: g, Lib: lib, Pinned: [][]int{{0}, nil}}, tr2); err == nil {
		t.Error("unplaced video accepted")
	}
}

func TestBinAccounting(t *testing.T) {
	g := lineGraph(t, 2)
	lib := catalog.Generate(catalog.Config{NumVideos: 2}, 1)
	pinned := [][]int{{0, 1}, nil}
	// One stream crossing several bins.
	tr := tinyTrace(lib, 1, 2, []workload.Request{{Time: 150, VHO: 1, Video: 0}})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned, BinSec: 300}, tr)
	if err != nil {
		t.Fatal(err)
	}
	vid := lib.Videos[0]
	// Bins fully covered by the stream must carry rate × 300s of traffic.
	fullBinGB := vid.RateMbps * 300 / 8000
	if math.Abs(res.BinGBHop[1]-fullBinGB) > 1e-9 {
		t.Errorf("bin 1 GB = %g, want %g", res.BinGBHop[1], fullBinGB)
	}
	// Total equals rate × duration.
	wantTotal := vid.RateMbps * float64(vid.DurationSec) / 8000
	if math.Abs(res.TotalGBHop-wantTotal) > 1e-6 {
		t.Errorf("total %g, want %g", res.TotalGBHop, wantTotal)
	}
	// Peak appears in bins the stream covers, not after it ends.
	endBin := int((150 + vid.DurationSec) / 300)
	if res.BinPeakMbps[0] != vid.RateMbps || res.BinPeakMbps[endBin+1] != 0 {
		t.Errorf("peak series wrong: first %g, post-end %g", res.BinPeakMbps[0], res.BinPeakMbps[endBin+1])
	}
}

func TestStrategies(t *testing.T) {
	lib := catalog.Generate(catalog.Config{NumVideos: 100}, 3)

	pinned := RandomPlacement(lib, 6, 1)
	seen := map[int]int{}
	for _, vids := range pinned {
		for _, v := range vids {
			seen[v]++
		}
	}
	if len(seen) != 100 {
		t.Errorf("random placement covered %d videos, want 100", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Errorf("video %d placed %d times", v, c)
		}
	}

	tr := workload.GenerateTrace(lib, workload.TraceConfig{Days: 3, NumVHOs: 6, RequestsPerVideoPerDay: 3}, 4)
	ranked := RankByPopularity(tr, 0, 3*workload.SecondsPerDay)
	if len(ranked) != 100 {
		t.Fatalf("ranked %d videos", len(ranked))
	}
	counts := make([]int, 100)
	for _, r := range tr.Requests {
		counts[r.Video]++
	}
	for i := 1; i < len(ranked); i++ {
		if counts[ranked[i-1]] < counts[ranked[i]] {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}

	topk := TopKPlacement(lib, ranked, 10, 6, 1)
	for i := 0; i < 6; i++ {
		has := map[int]bool{}
		for _, v := range topk[i] {
			has[v] = true
		}
		for _, v := range ranked[:10] {
			if !has[v] {
				t.Errorf("office %d missing top video %d", i, v)
			}
		}
	}

	disk := make([]float64, 6)
	for i := range disk {
		disk[i] = lib.TotalSizeGB() * 2 / 6
	}
	cacheGB := CacheRemainder(lib, pinned, disk)
	pg := PinnedGB(lib, pinned)
	for i := range cacheGB {
		if cacheGB[i] < 0 {
			t.Errorf("negative cache at %d", i)
		}
		if pg[i]+cacheGB[i] > disk[i]+1e-9 && cacheGB[i] > 0 {
			t.Errorf("office %d: pinned %g + cache %g exceeds disk %g", i, pg[i], cacheGB[i], disk[i])
		}
	}
}

func TestRegionOrigins(t *testing.T) {
	g := topology.Backbone55()
	origins := RegionOrigins(g, 4)
	if len(origins) != 55 {
		t.Fatalf("got %d origins", len(origins))
	}
	distinct := map[int]bool{}
	for i, o := range origins {
		distinct[o] = true
		// Each office's origin must be its nearest among chosen attachments.
		for o2 := range distinct {
			_ = o2
		}
		if o < 0 || o >= 55 {
			t.Fatalf("origin %d out of range", o)
		}
		_ = i
	}
	if len(distinct) != 4 {
		t.Errorf("expected 4 attachment offices, got %d", len(distinct))
	}
}

func TestPinnedAndXDistFromSolution(t *testing.T) {
	g := lineGraph(t, 3)
	demands := []mip.VideoDemand{{
		Video: 7, SizeGB: 1, RateMbps: 2,
		Js: []int32{0, 2}, Agg: []float64{5, 5},
		Conc: [][]float64{},
	}}
	caps := make([]float64, g.NumLinks())
	for i := range caps {
		caps[i] = 100
	}
	inst, err := mip.NewInstance(g, []float64{2, 2, 2}, caps, 0, demands)
	if err != nil {
		t.Fatal(err)
	}
	sol := mip.NewSolution(inst)
	sol.Videos[0].Open = []mip.Frac{{I: 0, V: 1}, {I: 2, V: 0.3}}
	sol.Videos[0].Assign[0] = []mip.Frac{{I: 0, V: 1}}
	sol.Videos[0].Assign[1] = []mip.Frac{{I: 0, V: 0.5}, {I: 2, V: 0.5}}

	pinned := PinnedFromSolution(inst, sol)
	if len(pinned[0]) != 1 || pinned[0][0] != 7 {
		t.Errorf("office 0 pinned = %v, want [7]", pinned[0])
	}
	if len(pinned[2]) != 0 {
		t.Errorf("office 2 should not pin (y=0.3): %v", pinned[2])
	}

	xd := XDistFromSolution(inst, sol)
	fr := xd[workload.MakeJM(2, 7)]
	if len(fr) != 2 || fr[0].V != 0.5 {
		t.Errorf("xdist for (2,7) = %v", fr)
	}
}
