package sim

import (
	"math"
	"testing"

	"vodplace/internal/catalog"
	"vodplace/internal/mip"
	"vodplace/internal/workload"
)

// TestPlacementUpdates verifies mid-run placement swaps: routing changes at
// the update boundary and migration costs are counted.
func TestPlacementUpdates(t *testing.T) {
	g := lineGraph(t, 3)
	lib := catalog.Generate(catalog.Config{NumVideos: 4}, 1)
	// Initially everything at office 0; after day 1, everything at office 2.
	pinnedA := [][]int{{0, 1, 2, 3}, nil, nil}
	pinnedB := [][]int{nil, nil, {0, 1, 2, 3}}
	day := int64(workload.SecondsPerDay)
	tr := tinyTrace(lib, 2, 3, []workload.Request{
		{Time: 1000, VHO: 2, Video: 0},       // before update: 2 hops from 0
		{Time: day + 1000, VHO: 2, Video: 0}, // after: local at 2
		{Time: day + 2000, VHO: 0, Video: 1}, // after: 2 hops from 2
	})
	res, err := Run(Config{
		G: g, Lib: lib, Pinned: pinnedA,
		Updates: []Update{{AtSec: day, Pinned: pinnedB}},
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteServed != 2 {
		t.Errorf("remote served = %d, want 2", res.RemoteServed)
	}
	// Migration: all four videos moved to a new office.
	if res.MigratedVideos != 4 {
		t.Errorf("migrated = %d, want 4", res.MigratedVideos)
	}
	wantGB := 0.0
	for _, v := range lib.Videos {
		wantGB += v.SizeGB
	}
	if math.Abs(res.MigratedGB-wantGB) > 1e-9 {
		t.Errorf("migrated GB = %g, want %g", res.MigratedGB, wantGB)
	}
}

// TestPartialUpdateMigration counts only added copies.
func TestPartialUpdateMigration(t *testing.T) {
	g := lineGraph(t, 2)
	lib := catalog.Generate(catalog.Config{NumVideos: 3}, 1)
	pinnedA := [][]int{{0, 1, 2}, nil}
	pinnedB := [][]int{{0, 1}, {1, 2}} // adds 1@office1 and 2@office1... copies: video1 at both, video2 moved
	tr := tinyTrace(lib, 2, 2, []workload.Request{
		{Time: workload.SecondsPerDay + 100, VHO: 0, Video: 0},
	})
	res, err := Run(Config{
		G: g, Lib: lib, Pinned: pinnedA,
		Updates: []Update{{AtSec: workload.SecondsPerDay, Pinned: pinnedB}},
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Added copies: video 1 at office 1, video 2 at office 1 → 2 additions.
	if res.MigratedVideos != 2 {
		t.Errorf("migrated = %d, want 2", res.MigratedVideos)
	}
}

// TestMetricsWindow verifies the warm-up exclusion.
func TestMetricsWindow(t *testing.T) {
	g := lineGraph(t, 2)
	lib := catalog.Generate(catalog.Config{NumVideos: 2}, 1)
	pinned := [][]int{{0, 1}, nil}
	day := int64(workload.SecondsPerDay)
	tr := tinyTrace(lib, 2, 2, []workload.Request{
		{Time: 100, VHO: 1, Video: 0},       // warm-up: not counted
		{Time: day + 100, VHO: 1, Video: 0}, // counted
	})
	res, err := Run(Config{G: g, Lib: lib, Pinned: pinned, MetricsFromSec: day}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 || res.RemoteServed != 1 {
		t.Errorf("counted %d requests (%d remote), want 1/1", res.Requests, res.RemoteServed)
	}
	// Transfer volume before the metrics window must be excluded too.
	vid := lib.Videos[0]
	wantGB := vid.RateMbps * float64(vid.DurationSec) / 8000
	if math.Abs(res.TotalGBHop-wantGB) > wantGB*0.02+1e-9 {
		t.Errorf("TotalGBHop = %g, want ~%g (warm-up excluded)", res.TotalGBHop, wantGB)
	}
}

// TestXDistFallbackToOracle: a stale x-distribution pointing at an office
// without the video must fall back to the nearest replica.
func TestXDistFallbackToOracle(t *testing.T) {
	g := lineGraph(t, 3)
	lib := catalog.Generate(catalog.Config{NumVideos: 2}, 1)
	pinned := [][]int{{0, 1}, nil, nil}
	res, err := Run(Config{
		G: g, Lib: lib, Pinned: pinned,
		XDist: map[workload.JM][]mip.Frac{
			workload.MakeJM(2, 0): {{I: 1, V: 1}}, // office 1 has nothing
		},
	}, tinyTrace(lib, 1, 3, []workload.Request{{Time: 0, VHO: 2, Video: 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteServed != 1 {
		t.Fatalf("remote = %d", res.RemoteServed)
	}
	// Served from office 0 (2 hops) since office 1 holds nothing.
	vid := lib.Videos[0]
	wantGB := vid.RateMbps * float64(vid.DurationSec) / 8000 * 2
	if math.Abs(res.TotalGBHop-wantGB) > 1e-6 {
		t.Errorf("TotalGBHop = %g, want %g (oracle fallback)", res.TotalGBHop, wantGB)
	}
}
