// Package core wires the substrates into the paper's operational pipeline:
// estimate demand from request history (§VI-A), solve the placement MIP with
// the EPF decomposition plus rounding (§V), push the placement and routing
// distribution into the trace simulator with a small complementary LRU cache
// (§VI-A), and re-place periodically (§VI-C). It also provides the baseline
// schemes the paper compares against: Random+LRU, Random+LFU, Top-K+LRU and
// LRU with regional origin servers.
package core

import (
	"context"
	"fmt"

	"vodplace/internal/cache"
	"vodplace/internal/catalog"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/obs"
	"vodplace/internal/par"
	"vodplace/internal/sim"
	"vodplace/internal/topology"
	"vodplace/internal/verify"
	"vodplace/internal/workload"
)

// System is a deployed VoD footprint: the backbone, the library, and the
// per-office disk and per-link bandwidth budgets.
type System struct {
	G           *topology.Graph
	Lib         *catalog.Library
	DiskGB      []float64
	LinkCapMbps []float64
}

// MIPOptions configures the MIP-based scheme.
type MIPOptions struct {
	// UpdateEveryDays is the re-placement period. Default 7 (§VI-C).
	UpdateEveryDays int
	// HistoryDays is the demand-estimation look-back. Default 7.
	HistoryDays int
	// CacheFraction is the share of each office's disk reserved for the
	// complementary LRU cache. Default 0.05 (§VII-B); set negative for 0.
	CacheFraction float64
	// Method is the demand-estimation method. Default History.
	Method demand.Method
	// Slices is |T|. Default 2.
	Slices int
	// WindowSec is the peak-window size. Default 3600.
	WindowSec int64
	// Shards is the number of catalog shards each period's instance is built
	// with (demand.Config.Shards); the EPF solver adopts the instance's
	// layout, so this also shards the per-period solves. ≤ 1 (the default)
	// keeps the historical single-shard pipeline. Sharding never changes a
	// period's numeric result.
	Shards int
	// FirstPlacementDay is when the first placement takes effect; it also
	// needs that much history. Default HistoryDays.
	FirstPlacementDay int
	// EvalFromDay excludes earlier days from the reported metrics.
	// Default 9 (§VII-B warms up with the first nine days).
	EvalFromDay int
	// UpdateWeight is w in objective (11): the cost of migrating copies.
	UpdateWeight float64
	// Warm threads each period's final solver state into the next period's
	// solve (epf.Options.Warm ← previous epf.Result.Warm): initial point,
	// lower-bound duals, penalty scale and facility-location seeds all carry
	// over, keyed by stable video IDs so catalog churn falls back per video
	// to the cold init. Successive daily instances differ only marginally,
	// so warm solves converge in a fraction of the cold pass count. Opt-in
	// because, like epf.Options.IncrementalPricing, it changes floating-point
	// trajectories (never correctness: every warm solve's bound is
	// re-certified on its own instance). The first period always runs cold.
	Warm bool
	// Solver configures the EPF solver.
	Solver epf.Options
	// Verify runs the independent certificate auditor (internal/verify) on
	// every per-period solution and fails the run on any violated claim.
	Verify bool
	// Recorder receives per-pass solver events (one stream per placement
	// period), verify spans and per-bin simulator events. Defaults to
	// Solver.Recorder so callers that already thread a recorder through the
	// solver options get the pipeline events too.
	Recorder *obs.Recorder
	// Scheme names this run's simulator event stream. Default "mip".
	Scheme string
}

func (o *MIPOptions) withDefaults() MIPOptions {
	out := *o
	if out.UpdateEveryDays <= 0 {
		out.UpdateEveryDays = 7
	}
	if out.HistoryDays <= 0 {
		out.HistoryDays = 7
	}
	if out.CacheFraction == 0 {
		out.CacheFraction = 0.05
	}
	if out.CacheFraction < 0 {
		out.CacheFraction = 0
	}
	if out.Slices <= 0 {
		out.Slices = 2
	}
	if out.WindowSec <= 0 {
		out.WindowSec = 3600
	}
	if out.FirstPlacementDay <= 0 {
		out.FirstPlacementDay = out.HistoryDays
	}
	if out.EvalFromDay <= 0 {
		out.EvalFromDay = 9
	}
	if out.Recorder == nil {
		out.Recorder = out.Solver.Recorder
	}
	if out.Scheme == "" {
		out.Scheme = "mip"
	}
	return out
}

// Plan is one solved placement period.
type Plan struct {
	Day      int
	Instance *mip.Instance
	Result   *epf.Result
	Pinned   [][]int
	XDist    map[workload.JM][]mip.Frac
}

// MIPRun is the outcome of the MIP scheme over a trace.
type MIPRun struct {
	Sim   *sim.Result
	Plans []*Plan
}

// RunMIP executes the full §VII-B pipeline over the trace.
func (s *System) RunMIP(tr *workload.Trace, opts MIPOptions) (*MIPRun, error) {
	return s.RunMIPContext(context.Background(), tr, opts)
}

// RunMIPContext is RunMIP with cooperative cancellation: ctx is passed to
// every per-period solve and checked between periods, so a long multi-week
// pipeline stops within one solver chunk of a cancellation.
func (s *System) RunMIPContext(ctx context.Context, tr *workload.Trace, opts MIPOptions) (*MIPRun, error) {
	o := opts.withDefaults()
	n := s.G.NumNodes()
	if len(s.DiskGB) != n || len(s.LinkCapMbps) != s.G.NumLinks() {
		return nil, fmt.Errorf("core: system capacities do not match the graph")
	}

	pinnedDisk := make([]float64, n)
	cacheGB := make([]float64, n)
	for i := range pinnedDisk {
		pinnedDisk[i] = s.DiskGB[i] * (1 - o.CacheFraction)
		cacheGB[i] = s.DiskGB[i] * o.CacheFraction
	}

	builder := &demand.Builder{
		G: s.G, Lib: s.Lib, DiskGB: pinnedDisk, LinkCapMbps: s.LinkCapMbps,
		Cfg: demand.Config{
			Method:      o.Method,
			HistoryDays: o.HistoryDays,
			HorizonDays: o.UpdateEveryDays,
			Slices:      o.Slices,
			WindowSec:   o.WindowSec,
			Shards:      o.Shards,
		},
	}

	var days []int
	for day := o.FirstPlacementDay; day < tr.Days; day += o.UpdateEveryDays {
		days = append(days, day)
	}

	// Instance building is pipelined one period ahead of the solves: the
	// producer goroutine builds day d+1's instance while day d solves.
	// Builder.Instance reads only the trace, library and built graph (all
	// immutable here), so the overlap is race-free, and instances are
	// produced strictly in day order, so numerics are identical to the old
	// serial loop. The per-period mutations (update objective below) happen
	// on this goroutine after the handoff.
	pre := par.NewPrefetch(ctx, len(days), func(i int) (*mip.Instance, error) {
		return builder.Instance(tr, days[i])
	})
	defer pre.Close()

	run := &MIPRun{}
	var prevPinned [][]int
	var warm *epf.WarmState
	for _, day := range days {
		inst, err := pre.Next()
		if err != nil {
			return nil, fmt.Errorf("core: building instance for day %d: %w", day, err)
		}
		if o.UpdateWeight > 0 && prevPinned != nil {
			inst.UpdateWeight = o.UpdateWeight
			inst.Origin = originsFromPinned(inst, prevPinned, n)
		}
		// Each placement period traces as its own stream, so pass series from
		// successive solves never interleave in one stream.
		sopts := o.Solver
		sopts.Recorder = o.Recorder
		sopts.TraceStream = fmt.Sprintf("%s.day%02d", o.Scheme, day)
		if o.Warm {
			sopts.Warm = warm // nil on the first period: cold start
		}
		res, err := epf.SolveIntegerContext(ctx, inst, sopts)
		if err != nil {
			return nil, fmt.Errorf("core: solving day %d: %w", day, err)
		}
		if o.Warm {
			warm = res.Warm
		}
		recordPeriod(o.Recorder, sopts.TraceStream, inst, res)
		if o.Verify {
			sp := o.Recorder.StartSpan(sopts.TraceStream, "verify")
			rep := verify.Audit(inst, res)
			sp.End()
			if !rep.Ok() {
				// Flush before failing: the trace up to the rejected solve is
				// exactly what the postmortem needs.
				o.Recorder.Flush() //nolint:errcheck // already failing with the audit error
				return nil, fmt.Errorf("core: day %d: %w", day, rep.Err())
			}
		}
		plan := &Plan{
			Day:      day,
			Instance: inst,
			Result:   res,
			Pinned:   sim.PinnedFromSolution(inst, res.Sol),
			XDist:    sim.XDistFromSolution(inst, res.Sol),
		}
		run.Plans = append(run.Plans, plan)
		prevPinned = plan.Pinned
	}
	if len(run.Plans) == 0 {
		return nil, fmt.Errorf("core: trace too short for any placement (days=%d, first placement day=%d)", tr.Days, o.FirstPlacementDay)
	}

	cfg := sim.Config{
		G: s.G, Lib: s.Lib,
		Pinned:         run.Plans[0].Pinned,
		XDist:          run.Plans[0].XDist,
		CacheGB:        cacheGB,
		CachePolicy:    cache.LRU,
		Seed:           o.Solver.Seed,
		MetricsFromSec: int64(o.EvalFromDay) * workload.SecondsPerDay,
		Recorder:       o.Recorder,
		Scheme:         o.Scheme,
		LinkCapMbps:    s.LinkCapMbps,
	}
	if o.CacheFraction == 0 {
		cfg.CacheGB = nil
	}
	for _, plan := range run.Plans[1:] {
		cfg.Updates = append(cfg.Updates, sim.Update{
			AtSec:  int64(plan.Day) * workload.SecondsPerDay,
			Pinned: plan.Pinned,
			XDist:  plan.XDist,
		})
	}
	simRes, err := sim.Run(cfg, tr)
	if err != nil {
		return nil, fmt.Errorf("core: simulating: %w", err)
	}
	run.Sim = simRes
	return run, nil
}

// recordPeriod publishes one placement period's convergence telemetry: how
// many passes the solve took and what fraction of videos reused carried-over
// warm state (zero on cold solves). Keyed by the period's trace stream so
// tools/tracesum and the /progress endpoint can show per-day trends.
func recordPeriod(r *obs.Recorder, stream string, inst *mip.Instance, res *epf.Result) {
	if !r.Enabled() {
		return
	}
	nv := len(inst.Demands)
	frac := 0.0
	if nv > 0 {
		frac = float64(res.Stats.WarmVideos) / float64(nv)
	}
	r.PublishKV("pipeline."+stream, map[string]any{
		"passes":     res.Stats.Passes,
		"warmVideos": res.Stats.WarmVideos,
		"numVideos":  nv,
		"warmFrac":   frac,
	})
	if m := r.Metrics(); m != nil {
		m.Gauge(stream + ".passes").Set(float64(res.Stats.Passes))
		m.Gauge(stream + ".warm_frac").Set(frac)
	}
}

// originsFromPinned maps each instance video to an office currently holding
// it (for the migration-cost objective). Videos absent from the previous
// placement — new releases, nothing to migrate — get the −1 sentinel, which
// mip.PlacementCost treats as "no prior copy": zero migration cost anywhere,
// rather than a spurious free ride at office 0.
func originsFromPinned(inst *mip.Instance, pinned [][]int, n int) []int32 {
	holder := make(map[int]int32)
	for i, vids := range pinned {
		for _, v := range vids {
			if _, ok := holder[v]; !ok {
				holder[v] = int32(i)
			}
		}
	}
	out := make([]int32, len(inst.Demands))
	for vi := range inst.Demands {
		if o, ok := holder[inst.Demands[vi].Video]; ok {
			out[vi] = o
		} else {
			out[vi] = -1
		}
	}
	return out
}

// BaselineOptions configures the caching baselines.
type BaselineOptions struct {
	// Policy is the replacement policy (LRU or LFU).
	Policy cache.Policy
	// TopK > 0 replicates the K most popular videos (ranked over the first
	// RankDays) at every office before random assignment of the rest.
	TopK int
	// RankDays is the popularity-ranking window for TopK. Default 7.
	RankDays int
	// EvalFromDay excludes earlier days from metrics. Default 9.
	EvalFromDay int
	// Seed drives the random assignment.
	Seed int64
	// Recorder receives per-bin simulator events; Scheme names the stream
	// (default "baseline").
	Recorder *obs.Recorder
	Scheme   string
}

func (o *BaselineOptions) withDefaults() BaselineOptions {
	out := *o
	if out.RankDays <= 0 {
		out.RankDays = 7
	}
	if out.EvalFromDay <= 0 {
		out.EvalFromDay = 9
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Scheme == "" {
		out.Scheme = "baseline"
	}
	return out
}

// RunBaseline plays a Random+LRU / Random+LFU / Top-K+LRU baseline: one
// random copy of every video (plus the Top-K head everywhere), the rest of
// each office's disk as a cache.
func (s *System) RunBaseline(tr *workload.Trace, opts BaselineOptions) (*sim.Result, error) {
	o := opts.withDefaults()
	n := s.G.NumNodes()
	var pinned [][]int
	if o.TopK > 0 {
		ranked := sim.RankByPopularity(tr, 0, int64(o.RankDays)*workload.SecondsPerDay)
		pinned = sim.TopKPlacement(s.Lib, ranked, o.TopK, n, o.Seed)
	} else {
		pinned = sim.RandomPlacement(s.Lib, n, o.Seed)
	}
	cfg := sim.Config{
		G: s.G, Lib: s.Lib,
		Pinned:         pinned,
		CacheGB:        sim.CacheRemainder(s.Lib, pinned, s.DiskGB),
		CachePolicy:    o.Policy,
		Seed:           o.Seed,
		MetricsFromSec: int64(o.EvalFromDay) * workload.SecondsPerDay,
		Recorder:       o.Recorder,
		Scheme:         o.Scheme,
		LinkCapMbps:    s.LinkCapMbps,
	}
	return sim.Run(cfg, tr)
}

// RunOriginLRU plays the Table II comparison: regional origin servers hold
// the whole library, every office's disk is an LRU cache, and misses fetch
// from the region's origin.
func (s *System) RunOriginLRU(tr *workload.Trace, regions, evalFromDay int) (*sim.Result, error) {
	if regions <= 0 {
		regions = 4
	}
	if evalFromDay <= 0 {
		evalFromDay = 9
	}
	cfg := sim.Config{
		G: s.G, Lib: s.Lib,
		Origins:        sim.RegionOrigins(s.G, regions),
		CacheGB:        append([]float64(nil), s.DiskGB...),
		CachePolicy:    cache.LRU,
		MetricsFromSec: int64(evalFromDay) * workload.SecondsPerDay,
	}
	return sim.Run(cfg, tr)
}

// UniformDisk returns n equal disk budgets totalling factor × library size.
func UniformDisk(lib *catalog.Library, n int, factor float64) []float64 {
	out := make([]float64, n)
	per := lib.TotalSizeGB() * factor / float64(n)
	for i := range out {
		out[i] = per
	}
	return out
}

// HeterogeneousDisk returns disk budgets totalling factor × library size,
// with large offices getting 4×, medium 2× and small 1× shares — the
// Fig. 11 "nonuniform VHOs" layout (12 large / 19 medium / 24 small at 55
// offices; proportional otherwise).
func HeterogeneousDisk(lib *catalog.Library, n int, factor float64) []float64 {
	classes := workload.SizeClasses(n)
	weights := make([]float64, n)
	var total float64
	for i, c := range classes {
		switch c {
		case workload.LargeVHO:
			weights[i] = 4
		case workload.MediumVHO:
			weights[i] = 2
		default:
			weights[i] = 1
		}
		total += weights[i]
	}
	budget := lib.TotalSizeGB() * factor
	out := make([]float64, n)
	for i := range out {
		out[i] = budget * weights[i] / total
	}
	return out
}

// UniformLinks returns equal capacities for every directed link.
func UniformLinks(g *topology.Graph, mbps float64) []float64 {
	out := make([]float64, g.NumLinks())
	for l := range out {
		out[l] = mbps
	}
	return out
}
