package core

import (
	"testing"

	"vodplace/internal/catalog"
	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

// warmSystem builds the multi-period setup the warm-start tests and the
// pipeline benchmarks share: a denser trace than testSystem (15 requests per
// video per day) so successive daily instances drift marginally — the §VI-C
// regime cross-period warm starts are designed for — instead of being
// dominated by sampling noise.
func warmSystem(tb testing.TB) (*System, *workload.Trace) {
	tb.Helper()
	g := topology.Random(10, 1.2, 4)
	lib := catalog.Generate(catalog.Config{NumVideos: 600, Weeks: 2, NumSeries: 2}, 6)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 14, NumVHOs: 10, RequestsPerVideoPerDay: 15,
	}, 9)
	s := &System{
		G:           g,
		Lib:         lib,
		DiskGB:      UniformDisk(lib, 10, 2.0),
		LinkCapMbps: UniformLinks(g, 40000),
	}
	return s, tr
}

// warmOptions is the daily re-placement configuration for warmSystem: one
// placement per day over the second week, migration-penalized, at the 5%
// tolerance the integrality gap of the dense instances needs.
func warmOptions() MIPOptions {
	return MIPOptions{
		UpdateEveryDays: 1,
		UpdateWeight:    0.5,
		Solver:          epf.Options{Seed: 1, MaxPasses: 400, Epsilon: 0.05},
	}
}

// TestRunMIPWarmParity runs the same daily pipeline cold and warm and checks
// the tentpole contract: every warm solve is independently audited (Verify:
// true runs verify.Audit, certificate included, on each period), each day's
// warm objective stays within the certified tolerance band of the cold
// solve's, the first period runs cold, later periods reuse carried state, and
// the warm pipeline converges in materially fewer total passes.
func TestRunMIPWarmParity(t *testing.T) {
	s, tr := warmSystem(t)
	opts := warmOptions()
	opts.Verify = true
	cold, err := s.RunMIP(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	wopts := opts
	wopts.Warm = true
	warm, err := s.RunMIP(tr, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Plans) != len(cold.Plans) {
		t.Fatalf("warm run has %d plans, cold has %d", len(warm.Plans), len(cold.Plans))
	}
	var coldPasses, warmPasses int
	for i := range cold.Plans {
		cp, wp := cold.Plans[i], warm.Plans[i]
		if cp.Day != wp.Day {
			t.Fatalf("plan %d: days differ (%d vs %d)", i, cp.Day, wp.Day)
		}
		coldPasses += cp.Result.Passes
		warmPasses += wp.Result.Passes
		if !cp.Result.Converged || !wp.Result.Converged {
			t.Fatalf("day %d: solves did not converge (cold %v, warm %v)",
				cp.Day, cp.Result.Converged, wp.Result.Converged)
		}
		// Both solves ended ε-converged on the same instance, so both
		// objectives lie in [opt·(1−O(ε)), opt·(1+ε)] — within ~2ε+slack of
		// each other relatively (ε = 0.05 here).
		if rel := relDiff(wp.Result.Objective, cp.Result.Objective); rel > 0.12 {
			t.Errorf("day %d: warm objective %g vs cold %g (rel diff %.3f) outside tolerance band",
				cp.Day, wp.Result.Objective, cp.Result.Objective, rel)
		}
		if i == 0 {
			if wp.Result.Stats.WarmVideos != 0 {
				t.Errorf("first period seeded %d videos; must run cold", wp.Result.Stats.WarmVideos)
			}
			if wp.Result.Objective != cp.Result.Objective || wp.Result.Passes != cp.Result.Passes {
				t.Errorf("first period differs between runs; warm mode must not touch the cold first solve")
			}
		} else if wp.Result.Stats.WarmVideos == 0 {
			t.Errorf("day %d: no videos warm-seeded despite carried state", wp.Day)
		}
	}
	// The point of the exercise: warm re-solves converge in materially fewer
	// passes over the week (typically ~2.4×; require a comfortable margin).
	if float64(warmPasses) > 0.8*float64(coldPasses) {
		t.Errorf("warm pipeline took %d total passes vs cold %d; expected a clear reduction",
			warmPasses, coldPasses)
	}
	t.Logf("total passes: cold %d, warm %d", coldPasses, warmPasses)
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}

// TestRunMIPWarmWorkerInvariance: warm mode keeps the solver's determinism
// contract — the whole pipeline produces identical numbers at any worker
// count.
func TestRunMIPWarmWorkerInvariance(t *testing.T) {
	s, tr := warmSystem(t)
	var ref *MIPRun
	for _, workers := range []int{1, 4} {
		opts := warmOptions()
		opts.Warm = true
		opts.Verify = true
		opts.Solver.Workers = workers
		run, err := s.RunMIP(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = run
			continue
		}
		for i := range ref.Plans {
			a, b := ref.Plans[i].Result, run.Plans[i].Result
			if a.Objective != b.Objective || a.LowerBound != b.LowerBound || a.Passes != b.Passes {
				t.Errorf("workers=%d day %d: (obj %v lb %v passes %d) != workers=1 (obj %v lb %v passes %d)",
					workers, ref.Plans[i].Day, b.Objective, b.LowerBound, b.Passes,
					a.Objective, a.LowerBound, a.Passes)
			}
		}
	}
}

// TestOriginsFromPinnedUnseen: a video absent from the previous placement
// gets the −1 "no prior copy" sentinel, and the update objective exempts it
// — not the old behavior of silently treating office 0 as its origin.
func TestOriginsFromPinnedUnseen(t *testing.T) {
	g := topology.New("pair", 2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	demands := []mip.VideoDemand{
		{Video: 10, SizeGB: 1, RateMbps: 2, Js: []int32{0}, Agg: []float64{1}, Conc: [][]float64{{1}}},
		{Video: 20, SizeGB: 1, RateMbps: 2, Js: []int32{1}, Agg: []float64{1}, Conc: [][]float64{{1}}},
	}
	inst, err := mip.NewInstance(g, []float64{10, 10}, []float64{1000, 1000}, 1, demands)
	if err != nil {
		t.Fatal(err)
	}
	// Previous placement holds video 20 at office 1; video 10 is a new release.
	origins := originsFromPinned(inst, [][]int{{}, {20}}, 2)
	if origins[0] != -1 {
		t.Errorf("unseen video origin = %d, want -1", origins[0])
	}
	if origins[1] != 1 {
		t.Errorf("pinned video origin = %d, want 1", origins[1])
	}
	inst.UpdateWeight = 1
	inst.Origin = origins
	// New release: no migration cost anywhere, even at the remote office.
	if c := inst.PlacementCost(0, 1); c != 0 {
		t.Errorf("new release placement cost = %g, want 0", c)
	}
	// Held video: free at its origin, costs to move.
	if c := inst.PlacementCost(1, 1); c != 0 {
		t.Errorf("placement at origin cost = %g, want 0", c)
	}
	if c := inst.PlacementCost(1, 0); c <= 0 {
		t.Errorf("migration cost = %g, want > 0", c)
	}
}
