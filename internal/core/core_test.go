package core

import (
	"testing"

	"vodplace/internal/cache"
	"vodplace/internal/catalog"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

// testSystem builds a small but realistic end-to-end setup: 8 offices,
// 400 videos, 21 days.
func testSystem(t *testing.T) (*System, *workload.Trace) {
	t.Helper()
	g := topology.Random(8, 1.2, 4)
	lib := catalog.Generate(catalog.Config{NumVideos: 400, Weeks: 3, NumSeries: 2}, 6)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 21, NumVHOs: 8, RequestsPerVideoPerDay: 2,
	}, 9)
	s := &System{
		G:           g,
		Lib:         lib,
		DiskGB:      UniformDisk(lib, 8, 2.0),
		LinkCapMbps: UniformLinks(g, 1000),
	}
	return s, tr
}

func TestRunMIPEndToEnd(t *testing.T) {
	s, tr := testSystem(t)
	run, err := s.RunMIP(tr, MIPOptions{
		Solver: epf.Options{Seed: 1, MaxPasses: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Plans) != 2 { // placements at days 7 and 14
		t.Fatalf("plans = %d, want 2", len(run.Plans))
	}
	for _, p := range run.Plans {
		if !p.Result.Sol.IsIntegral(1e-6) {
			t.Errorf("day %d placement not integral", p.Day)
		}
		if p.Result.Violation.Unserved > 1e-6 {
			t.Errorf("day %d leaves demand unserved: %+v", p.Day, p.Result.Violation)
		}
	}
	if run.Sim.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if run.Sim.LocalFrac <= 0.2 {
		t.Errorf("MIP scheme serves only %.2f locally; placement is not working", run.Sim.LocalFrac)
	}
	if run.Sim.MigratedVideos == 0 {
		t.Error("second placement should migrate some copies")
	}
}

func TestMIPBeatsBaselines(t *testing.T) {
	s, tr := testSystem(t)
	mipRun, err := s.RunMIP(tr, MIPOptions{Solver: epf.Options{Seed: 1, MaxPasses: 60}})
	if err != nil {
		t.Fatal(err)
	}
	lru, err := s.RunBaseline(tr, BaselineOptions{Policy: cache.LRU, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lfu, err := s.RunBaseline(tr, BaselineOptions{Policy: cache.LFU, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The headline result (Fig. 5/6): the MIP scheme needs materially less
	// peak link bandwidth and transfers fewer bytes than LRU/LFU caching at
	// equal disk. Exact factors vary with the synthetic trace; require a
	// clear win rather than the paper's ~2x.
	if mipRun.Sim.MaxLinkMbps >= lru.MaxLinkMbps {
		t.Errorf("MIP peak %.0f Mbps not below Random+LRU %.0f", mipRun.Sim.MaxLinkMbps, lru.MaxLinkMbps)
	}
	if mipRun.Sim.TotalGBHop >= lru.TotalGBHop {
		t.Errorf("MIP transfer %.0f GBxhop not below Random+LRU %.0f", mipRun.Sim.TotalGBHop, lru.TotalGBHop)
	}
	if mipRun.Sim.LocalFrac <= lru.LocalFrac {
		t.Errorf("MIP local fraction %.2f not above Random+LRU %.2f", mipRun.Sim.LocalFrac, lru.LocalFrac)
	}
	t.Logf("peak Mbps: MIP %.0f, LRU %.0f, LFU %.0f", mipRun.Sim.MaxLinkMbps, lru.MaxLinkMbps, lfu.MaxLinkMbps)
	t.Logf("GBxhop: MIP %.0f, LRU %.0f, LFU %.0f", mipRun.Sim.TotalGBHop, lru.TotalGBHop, lfu.TotalGBHop)
	t.Logf("local: MIP %.2f, LRU %.2f, LFU %.2f", mipRun.Sim.LocalFrac, lru.LocalFrac, lfu.LocalFrac)
}

func TestTopKBaseline(t *testing.T) {
	s, tr := testSystem(t)
	topk, err := s.RunBaseline(tr, BaselineOptions{Policy: cache.LRU, TopK: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if topk.Requests == 0 {
		t.Fatal("no requests")
	}
	// Top-K storage must shrink the caches vs plain random.
	if topk.LocalFrac < 0 || topk.LocalFrac > 1 {
		t.Errorf("bad local fraction %g", topk.LocalFrac)
	}
}

func TestOriginLRU(t *testing.T) {
	s, tr := testSystem(t)
	res, err := s.RunOriginLRU(tr, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests")
	}
	// All misses route to origins, so remote service must occur.
	if res.RemoteServed == 0 {
		t.Error("origin scheme should serve some requests remotely")
	}
}

func TestRunMIPPerfectEstimate(t *testing.T) {
	s, tr := testSystem(t)
	perfect, err := s.RunMIP(tr, MIPOptions{
		Method: demand.Perfect,
		Solver: epf.Options{Seed: 1, MaxPasses: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	history, err := s.RunMIP(tr, MIPOptions{
		Method: demand.History,
		Solver: epf.Options{Seed: 1, MaxPasses: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Table VI: perfect knowledge should not do worse than history on
	// transfers (allowing a little noise).
	if perfect.Sim.TotalGBHop > history.Sim.TotalGBHop*1.1 {
		t.Errorf("perfect estimate transfers %.0f vs history %.0f", perfect.Sim.TotalGBHop, history.Sim.TotalGBHop)
	}
}

func TestRunMIPUpdateWeight(t *testing.T) {
	s, tr := testSystem(t)
	plain, err := s.RunMIP(tr, MIPOptions{Solver: epf.Options{Seed: 1, MaxPasses: 40}})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := s.RunMIP(tr, MIPOptions{UpdateWeight: 1, Solver: epf.Options{Seed: 1, MaxPasses: 40}})
	if err != nil {
		t.Fatal(err)
	}
	// Penalizing migration should not migrate more than the plain run.
	if weighted.Sim.MigratedVideos > plain.Sim.MigratedVideos {
		t.Errorf("update-weighted run migrated %d > plain %d", weighted.Sim.MigratedVideos, plain.Sim.MigratedVideos)
	}
}

func TestDiskHelpers(t *testing.T) {
	lib := catalog.Generate(catalog.Config{NumVideos: 100}, 1)
	uni := UniformDisk(lib, 5, 2.0)
	var totalU float64
	for _, d := range uni {
		totalU += d
		if d != uni[0] {
			t.Error("uniform disk not uniform")
		}
	}
	if diff := totalU - 2*lib.TotalSizeGB(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("uniform total %g, want %g", totalU, 2*lib.TotalSizeGB())
	}
	het := HeterogeneousDisk(lib, 55, 3.0)
	var totalH float64
	for _, d := range het {
		totalH += d
	}
	if diff := totalH - 3*lib.TotalSizeGB(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("heterogeneous total %g, want %g", totalH, 3*lib.TotalSizeGB())
	}
	if het[0] <= het[54] {
		t.Error("large office should have more disk than small office")
	}
	if het[0]/het[54] < 3.5 || het[0]/het[54] > 4.5 {
		t.Errorf("large/small ratio %g, want ~4", het[0]/het[54])
	}
}

func TestRunMIPErrors(t *testing.T) {
	s, tr := testSystem(t)
	short := tr.DaySlice(0, 5)
	short.Days = 5
	if _, err := s.RunMIP(short, MIPOptions{Solver: epf.Options{Seed: 1, MaxPasses: 5}}); err == nil {
		t.Error("trace shorter than first placement day accepted")
	}
	bad := &System{G: s.G, Lib: s.Lib, DiskGB: []float64{1}, LinkCapMbps: s.LinkCapMbps}
	if _, err := bad.RunMIP(tr, MIPOptions{}); err == nil {
		t.Error("mismatched disk accepted")
	}
}
