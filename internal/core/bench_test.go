package core

import (
	"testing"
)

// BenchmarkRunMIPWeek measures the full §VI-C daily re-placement pipeline —
// demand build, EPF solve, rounding and simulation for each day of a week —
// cold (every day from scratch) versus warm (each day seeded from the
// previous day's final solver state). The pair is the headline number for
// cross-period warm starts: identical work, the warm variant converging in a
// fraction of the passes. Recorded in BENCH_pipeline.json by `make
// bench-json`.
func benchmarkRunMIPWeek(b *testing.B, warm bool) {
	s, tr := warmSystem(b)
	opts := warmOptions()
	opts.Warm = warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := s.RunMIP(tr, opts)
		if err != nil {
			b.Fatal(err)
		}
		var passes int
		for _, p := range run.Plans {
			passes += p.Result.Passes
		}
		b.ReportMetric(float64(passes), "passes/op")
	}
}

func BenchmarkRunMIPWeekCold(b *testing.B) { benchmarkRunMIPWeek(b, false) }
func BenchmarkRunMIPWeekWarm(b *testing.B) { benchmarkRunMIPWeek(b, true) }
