// Package serve turns the batch placement solver into a control plane
// behind a long-running data plane. The data plane answers routing lookups
// ("which office serves video m for office j?") from an immutable,
// atomically-swapped Snapshot whose route tables are fully precomputed, so
// the hot path is array reads plus a JSON encode into a reused buffer —
// zero steady-state allocations. The control plane accepts streamed demand
// updates, re-solves the placement LP in the background with cross-period
// warm starts (epf.WarmState), and swaps a new snapshot in only after the
// independent certificate auditor (verify.Audit) passes; a rejected solve
// keeps the old snapshot serving and increments a counter. The data plane
// never blocks on the control plane: lookups hit whatever snapshot is
// current, re-solves happen entirely off the request path.
//
// See DESIGN.md §12 for the service architecture.
package serve

import (
	"context"
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/obs"
	"vodplace/internal/verify"
)

// Config configures the placement server.
type Config struct {
	// Solver configures every solve (the initial one and background
	// re-solves). MaxPasses, Shards etc. apply to both.
	Solver epf.Options
	// Warm threads each swapped-in solve's final state (epf.WarmState) into
	// the next background re-solve. Default true — the whole point of the
	// control plane is cheap incremental re-solves; set WarmOff to disable.
	WarmOff bool
	// UpdateWeight, when positive, charges re-solves for migrating copies
	// away from the currently-served placement (objective (11) with origins
	// taken from the live snapshot), damping churn between snapshots.
	UpdateWeight float64
	// DeltaOff disables the delta resolve path: every re-solve re-streams
	// the whole catalog into a fresh instance and rebuilds the full route
	// table, as pre-delta releases did. Default off — the resolver patches
	// the dirty videos of its live instance in place and the snapshot build
	// recomputes only rows whose open set or demand changed. Both paths
	// produce bit-identical snapshots (DESIGN.md §15); this switch exists
	// for differential tests and as an operational escape hatch.
	DeltaOff bool
	// Metrics receives the server's counters; a fresh private registry is
	// created when nil. The same instruments back the /status endpoint.
	Metrics *obs.Metrics
	// Recorder, when non-nil, receives solver telemetry for the initial
	// solve and every re-solve (streams "serve.vNN") plus the serving-plane
	// lifecycle events (serve_resolve / serve_swap / serve_demand).
	Recorder *obs.Recorder
	// SampleInterval is the period of the gauge sampler that refreshes
	// snapshot-age and demand-drift between scrapes. Zero means the default
	// (10s); the /metrics handler also refreshes on every scrape, so the
	// sampler only matters for expvar readers.
	SampleInterval time.Duration
	// Logf, when non-nil, receives one-line lifecycle messages (swap,
	// rejection, shutdown discard). The daemon points it at stdout; tests
	// capture it. May be called from the resolver goroutine.
	Logf func(format string, args ...any)
}

// Server is the placement service: an atomically-swapped snapshot store,
// the HTTP handlers over it, and the background resolver that folds demand
// updates into audited re-placements.
type Server struct {
	cfg  Config
	base *mip.Instance // capacities/topology template for rebuilds

	store atomic.Pointer[Snapshot]

	mu    sync.Mutex
	state *demandState
	warm  *epf.WarmState
	dirty bool
	// live is the instance re-solves run on. The delta path patches its
	// dirty demand rows in place (mip.ApplyDemandDelta) instead of
	// re-streaming the catalog; a full rebuild (DeltaOff, or a patch
	// failure) replaces it wholesale. Only the resolver goroutine mutates
	// it, and only demand-side fields — the identity fields snapshot
	// readers touch are immutable under a patch.
	live *mip.Instance
	// snapDirty accumulates the videos dirtied since the published
	// snapshot was built — across rejected resolve attempts, whose patches
	// stick to live without publishing — and is cleared on a swap. It is
	// the invalidation list handed to the incremental snapshot build.
	snapDirty map[int]struct{}
	// lastPasses/lastGap describe the most recent swapped-in solve;
	// lastReject the most recent rejected one ("" until a re-solve is
	// rejected). Both survive across swaps so /status always explains the
	// last anomaly.
	lastPasses int
	lastGap    float64
	lastReject string

	resolveCh   chan struct{}
	cancel      context.CancelFunc
	done        chan struct{}
	samplerDone chan struct{}
	closeOnce   sync.Once

	bufPool sync.Pool
	// demandPool recycles POST /demand decode scratch (see demandScratch).
	demandPool sync.Pool

	metrics *obs.Metrics
	// Counters, prefetched so the hot path is one atomic add.
	routeRequests   *expvar.Int
	routeErrors     *expvar.Int
	demandUpdates   *expvar.Int
	resolvesStarted *expvar.Int
	resolvesSwapped *expvar.Int
	auditRejected   *expvar.Int
	unconverged     *expvar.Int
	resolvesCancel  *expvar.Int
	resolvesFailed  *expvar.Int
	// Sampled gauges (see sampleGauges).
	ageGauge   *expvar.Float
	driftGauge *expvar.Float
	// deltaGauge is serve.delta_fraction: the dirty-video fraction of the
	// most recent resolve attempt (1 when the attempt fell back to a full
	// rebuild), the signal EXPERIMENTS.md correlates with resolve latency.
	deltaGauge *expvar.Float

	// Per-endpoint request instruments, exposed via /metrics. reqStats fixes
	// the exposition order.
	reqRoute     *obs.ReqStat
	reqPlacement *obs.ReqStat
	reqHealthz   *obs.ReqStat
	reqStatus    *obs.ReqStat
	reqDemand    *obs.ReqStat
	reqStats     []*obs.ReqStat
}

// New solves the initial placement on inst, audits it, and starts the
// background resolver. The returned server is serving (via Handler) as soon
// as New returns; Close stops the resolver and discards any in-flight
// re-solve.
//
// The server takes ownership of inst: the delta resolve path patches its
// demand rows in place (mip.ApplyDemandDelta) as updates arrive, so callers
// must not mutate inst afterwards or rely on its demand rows staying as
// passed. Build a separate instance for any use beyond the server.
func New(inst *mip.Instance, cfg Config) (*Server, error) {
	if inst == nil {
		return nil, fmt.Errorf("serve: nil instance")
	}
	opts := cfg.Solver
	opts.Recorder = cfg.Recorder
	opts.TraceStream = "serve.v1"
	res, err := epf.SolveIntegerContext(context.Background(), inst, opts)
	if err != nil {
		return nil, fmt.Errorf("serve: initial solve: %w", err)
	}
	if rep := verify.Audit(inst, res); !rep.Ok() {
		return nil, fmt.Errorf("serve: initial placement failed audit: %w", rep.Err())
	}
	return NewWithResult(inst, res, cfg)
}

// NewWithResult starts the server from an already-solved (and
// audit-checked) initial placement. Callers that did not run verify.Audit
// themselves should use New.
//
// Like New, the server takes ownership of inst (and of res.Sol, which the
// initial snapshot aliases): delta re-solves patch inst's demand rows in
// place, so callers must not retain either for reuse or comparison.
func NewWithResult(inst *mip.Instance, res *epf.Result, cfg Config) (*Server, error) {
	snap, err := buildSnapshot(inst, res.Sol, 1, true)
	if err != nil {
		return nil, err
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		base:       inst,
		state:      stateFromInstance(inst),
		warm:       res.Warm,
		live:       inst,
		snapDirty:  make(map[int]struct{}),
		lastPasses: res.Passes,
		lastGap:    res.Gap,
		resolveCh:  make(chan struct{}, 1),
		cancel:     cancel,
		done:       make(chan struct{}),
		metrics:    m,

		routeRequests:   m.Counter("serve.route_requests"),
		routeErrors:     m.Counter("serve.route_errors"),
		demandUpdates:   m.Counter("serve.demand_updates"),
		resolvesStarted: m.Counter("serve.resolves_started"),
		resolvesSwapped: m.Counter("serve.resolves_swapped"),
		auditRejected:   m.Counter("serve.audit_rejected"),
		unconverged:     m.Counter("serve.unconverged_rejected"),
		resolvesCancel:  m.Counter("serve.resolves_cancelled"),
		resolvesFailed:  m.Counter("serve.resolves_failed"),
		ageGauge:        m.Gauge("serve.snapshot_age_seconds"),
		driftGauge:      m.Gauge("serve.demand_drift"),
		deltaGauge:      m.Gauge("serve.delta_fraction"),

		reqRoute:     obs.NewReqStat("route"),
		reqPlacement: obs.NewReqStat("placement"),
		reqHealthz:   obs.NewReqStat("healthz"),
		reqStatus:    obs.NewReqStat("status"),
		reqDemand:    obs.NewReqStat("demand"),
	}
	s.reqStats = []*obs.ReqStat{s.reqRoute, s.reqPlacement, s.reqHealthz, s.reqStatus, s.reqDemand}
	s.samplerDone = make(chan struct{})
	s.bufPool.New = func() any {
		b := make([]byte, 0, 256)
		return &b
	}
	s.demandPool.New = func() any {
		return &demandScratch{body: make([]byte, 0, 4096)}
	}
	s.store.Store(snap)
	go s.resolveLoop(ctx)
	interval := cfg.SampleInterval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	go s.sampleLoop(ctx, interval)
	return s, nil
}

// sampleLoop refreshes the sampled gauges on a ticker so expvar readers see
// fresh snapshot-age/drift numbers even between /metrics scrapes.
func (s *Server) sampleLoop(ctx context.Context, interval time.Duration) {
	defer close(s.samplerDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.sampleGauges()
		}
	}
}

// sampleGauges publishes the two time-derived gauges: how stale the served
// snapshot is and how much demand (L1, aggregate request units) has been
// accepted since the last solved state.
func (s *Server) sampleGauges() {
	snap := s.store.Load()
	s.ageGauge.Set(time.Since(snap.BuiltAt).Seconds())
	s.mu.Lock()
	drift := s.state.drift
	s.mu.Unlock()
	s.driftGauge.Set(drift)
}

// Snapshot returns the currently-served snapshot.
func (s *Server) Snapshot() *Snapshot { return s.store.Load() }

// Metrics returns the server's counter registry.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Close stops the background resolver, cancelling (and discarding) any
// in-flight re-solve, and waits for it to exit. The handlers keep answering
// from the last snapshot — shutting the listener down is the caller's job.
// Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.cancel()
		<-s.done
		<-s.samplerDone
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Stats is a point-in-time copy of the server counters (the same numbers
// /status serves).
type Stats struct {
	Version         uint64
	RouteRequests   int64
	RouteErrors     int64
	DemandUpdates   int64
	ResolvesStarted int64
	ResolvesSwapped int64
	AuditRejected   int64
	Unconverged     int64
	Cancelled       int64
	Failed          int64
	// LastReject explains the most recent rejected re-solve ("" when every
	// re-solve so far swapped in).
	LastReject string
}

// setLastReject records why the most recent re-solve was rejected.
func (s *Server) setLastReject(reason string) {
	s.mu.Lock()
	s.lastReject = reason
	s.mu.Unlock()
}

// Stats returns the current counter values.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	lastReject := s.lastReject
	s.mu.Unlock()
	return Stats{
		LastReject:      lastReject,
		Version:         s.store.Load().Version,
		RouteRequests:   s.routeRequests.Value(),
		RouteErrors:     s.routeErrors.Value(),
		DemandUpdates:   s.demandUpdates.Value(),
		ResolvesStarted: s.resolvesStarted.Value(),
		ResolvesSwapped: s.resolvesSwapped.Value(),
		AuditRejected:   s.auditRejected.Value(),
		Unconverged:     s.unconverged.Value(),
		Cancelled:       s.resolvesCancel.Value(),
		Failed:          s.resolvesFailed.Value(),
	}
}
