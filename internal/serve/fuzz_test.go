package serve

import (
	"testing"

	"vodplace/internal/mip"
	"vodplace/internal/topology"
)

// fuzzBytes is a deterministic byte cursor over the fuzz input; an exhausted
// cursor yields zeros so every input decodes to *some* structure.
type fuzzBytes struct {
	data []byte
	pos  int
}

func (f *fuzzBytes) next() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

// FuzzRouteTable feeds arbitrary hand-built placements and topologies to the
// route-table builder and checks its contract: it never panics, every route
// it answers is a feasible open copy with minimal transfer cost (lowest
// office index on ties), and pairs with no open copy are reported
// unreachable — never mis-routed to a default office. Placements naming
// out-of-range offices must be rejected with an error at build time.
func FuzzRouteTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 0xff, 4, 2, 1, 3, 2, 1, 0x03, 2, 1, 80, 2, 60})
	f.Add([]byte{0, 5, 1, 1, 1, 0x1f, 3, 1, 2, 1, 3, 1, 4, 1, 5, 1, 2, 0, 149, 1, 20})
	f.Add([]byte{4, 3, 2, 5, 2, 0x0a, 4, 2, 3, 2, 1, 7, 120, 0, 49, 2, 2, 1, 1, 0x01, 1, 1, 1, 6, 99})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := &fuzzBytes{data: data}
		n := 2 + int(rd.next())%5  // 2..6 offices
		nv := 1 + int(rd.next())%6 // 1..6 videos
		var g *topology.Graph
		if rd.next()%2 == 0 {
			g = topology.Tree(n)
		} else {
			g = topology.FullMesh(n)
		}

		// Decode demands: strictly increasing library ids, per-office
		// aggregates from a presence mask, one concurrency slice.
		demands := make([]mip.VideoDemand, 0, nv)
		id := 0
		for v := 0; v < nv; v++ {
			id += 1 + int(rd.next())%4
			d := mip.VideoDemand{
				Video:    id,
				SizeGB:   1 + float64(rd.next()%8),
				RateMbps: 1 + float64(rd.next()%4),
				Conc:     [][]float64{nil},
			}
			mask := rd.next()
			for j := 0; j < n; j++ {
				if mask>>uint(j)&1 == 0 {
					continue
				}
				d.Js = append(d.Js, int32(j))
				d.Agg = append(d.Agg, float64(rd.next()%5))
				d.Conc[0] = append(d.Conc[0], float64(rd.next()%3))
			}
			demands = append(demands, d)
		}
		inst, err := mip.NewInstance(g, uniform(n, 1e6), uniform(g.NumLinks(), 1e6), 1, demands)
		if err != nil {
			return // instance validation rejected the decode; not our contract
		}

		// Decode an arbitrary placement: open lists with offices that may be
		// out of range and fractions straddling the 0.5 serving threshold.
		sol := mip.NewSolution(inst)
		badOffice := false
		for vi := range sol.Videos {
			cnt := int(rd.next()) % 4
			for c := 0; c < cnt; c++ {
				io := int(rd.next())%(n+2) - 1 // [-1, n]: both ends invalid
				y := float64(rd.next()%150) / 100
				sol.Videos[vi].Open = append(sol.Videos[vi].Open, mip.Frac{I: int32(io), V: y})
				if y >= openY && (io < 0 || io >= n) {
					badOffice = true
				}
			}
		}

		snap, err := buildSnapshot(inst, sol, 1, false)
		if badOffice {
			if err == nil {
				t.Fatal("placement with out-of-range open office was accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("well-formed placement rejected: %v", err)
		}

		// Cross-check every answer — including ids and offices outside the
		// snapshot's range — against the from-scratch recomputation.
		maxID := inst.Demands[len(inst.Demands)-1].Video
		for qid := -1; qid <= maxID+2; qid++ {
			vi := -1
			for k := range inst.Demands {
				if inst.Demands[k].Video == qid {
					vi = k
					break
				}
			}
			for j := -1; j <= n; j++ {
				office, ok := snap.Route(qid, j)
				want := -1
				if vi >= 0 && j >= 0 && j < n {
					want = cheapestCopy(inst, sol, vi, j)
				}
				if !ok {
					if want != -1 {
						t.Fatalf("video %d vho %d reported unreachable, but office %d holds a copy", qid, j, want)
					}
					continue
				}
				if office != want {
					t.Fatalf("video %d vho %d routed to %d, cheapest open copy is %d", qid, j, office, want)
				}
				// Feasibility: the routed office really holds an open copy.
				feasible := false
				for _, fr := range sol.Videos[vi].Open {
					if int(fr.I) == office && fr.V >= openY {
						feasible = true
					}
				}
				if !feasible {
					t.Fatalf("video %d vho %d routed to office %d which holds no open copy", qid, j, office)
				}
				// And the encoder agrees with the table.
				buf, status := snap.AppendRoute(nil, qid, j)
				if status != 200 {
					t.Fatalf("Route ok but AppendRoute returned %d: %s", status, buf)
				}
			}
		}
	})
}
