package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"vodplace/internal/obs"
)

// maxDemandBody bounds a POST /demand body (1 MiB is ~20k update entries).
const maxDemandBody = 1 << 20

// demandScratch is one pooled POST /demand decode state: the raw-body read
// buffer (grows toward maxDemandBody and stays) and the decoded batch
// slice, both reused across requests so a steady update stream stops
// churning the heap. Contents are only valid until the scratch goes back to
// the pool — apply/validate copy what they keep, so the handler can defer
// the Put.
type demandScratch struct {
	body    []byte
	updates []DemandUpdate
}

// readDemandBatch reads a request body into sc.body (capped at
// maxDemandBody via MaxBytesReader, which also closes the connection on
// abuse) and decodes it into sc.updates, reusing both buffers' capacity.
func readDemandBatch(w http.ResponseWriter, body io.ReadCloser, sc *demandScratch) error {
	lim := http.MaxBytesReader(w, body, maxDemandBody)
	sc.body = sc.body[:0]
	for {
		if len(sc.body) == cap(sc.body) {
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, err := lim.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	dec := json.NewDecoder(bytes.NewReader(sc.body))
	dec.DisallowUnknownFields()
	// encoding/json reuses the backing elements when the slice re-grows and
	// leaves fields absent from the JSON at their prior values, so the
	// reused capacity must be zeroed or an update that omits "add" would
	// inherit the value a previous request decoded into the same slot.
	clear(sc.updates[:cap(sc.updates)])
	sc.updates = sc.updates[:0]
	return dec.Decode(&sc.updates)
}

// Handler returns the service's HTTP surface:
//
//	GET  /route?video=<id>&vho=<office> — cheapest serving copy (hot path)
//	GET  /placement                     — the full served placement
//	GET  /healthz                       — liveness
//	GET  /status                        — version, counters, solve stats
//	GET  /metrics                       — Prometheus text exposition
//	POST /demand                        — streamed demand updates
//
// Contracts: malformed /route parameters are 400; a numeric but unknown
// video or vho, and (video, vho) pairs with no open copy, are 404 with an
// "error" field; wrong methods are 405; a /demand batch is validated as a
// whole and rejected atomically with 400.
//
// Every endpoint records its latency and status class into a per-endpoint
// obs.ReqStat served back through /metrics. /route records inline (its
// zero-allocation contract covers the instrument); the cold endpoints go
// through the instrumented wrapper.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/route", s.handleRoute)
	mux.HandleFunc("/placement", instrumented(s.reqPlacement, s.handlePlacement))
	mux.HandleFunc("/healthz", instrumented(s.reqHealthz, s.handleHealthz))
	mux.HandleFunc("/status", instrumented(s.reqStatus, s.handleStatus))
	mux.HandleFunc("/demand", instrumented(s.reqDemand, s.handleDemand))
	mux.Handle("/metrics", obs.PromHandler(s.writeMetrics))
	return mux
}

// statusRecorder captures the status code a handler writes so the wrapper
// can classify it (net/http offers no readback).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrumented wraps a cold-path handler with latency/status recording.
// The wrapper allocates one statusRecorder per request, which is why the
// hot /route path records inline instead.
func instrumented(st *obs.ReqStat, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		st.Record(sr.status, time.Since(t0))
	}
}

// writeMetrics renders the /metrics body: the registry families first (the
// counters the daemon always had, plus gauges and any recorder-side
// histograms when the registry is shared), then the per-endpoint request
// families. Gauges are refreshed first so every scrape sees current
// snapshot age and drift.
func (s *Server) writeMetrics(w io.Writer) {
	s.sampleGauges()
	s.metrics.WritePrometheus(w)
	obs.WriteReqProm(w, s.reqStats)
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		s.reqRoute.Record(http.StatusMethodNotAllowed, time.Since(t0))
		return
	}
	s.routeRequests.Add(1)
	snap := s.store.Load()
	video, vho, ok := parseRouteQuery(r.URL.RawQuery)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if !ok {
		s.routeErrors.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad request: want /route?video=<id>&vho=<office>"}` + "\n")) //nolint:errcheck
		s.reqRoute.Record(http.StatusBadRequest, time.Since(t0))
		return
	}
	bp := s.bufPool.Get().(*[]byte)
	buf, status := snap.AppendRoute((*bp)[:0], video, vho)
	if status != http.StatusOK {
		s.routeErrors.Add(1)
		w.WriteHeader(status)
	}
	w.Write(buf) //nolint:errcheck // nothing useful to do on a client hangup
	*bp = buf
	s.bufPool.Put(bp)
	s.reqRoute.Record(status, time.Since(t0))
}

// placementJSON is the /placement response shape.
type placementJSON struct {
	Version   uint64         `json:"version"`
	Certified bool           `json:"certified"`
	Videos    []placementRow `json:"videos"`
}

type placementRow struct {
	Video int   `json:"video"`
	Open  []int `json:"open"`
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := s.store.Load()
	out := placementJSON{
		Version:   snap.Version,
		Certified: snap.Certified,
		Videos:    make([]placementRow, len(snap.Sol.Videos)),
	}
	for vi := range snap.Sol.Videos {
		row := placementRow{Video: snap.Inst.Demands[vi].Video, Open: []int{}}
		for _, f := range snap.Sol.Videos[vi].Open {
			if f.V >= openY {
				row.Open = append(row.Open, int(f.I))
			}
		}
		out.Videos[vi] = row
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n")) //nolint:errcheck
}

// statusJSON is the /status response shape.
type statusJSON struct {
	Version    uint64  `json:"version"`
	Certified  bool    `json:"certified"`
	BuiltUnix  int64   `json:"built_unix"`
	AgeSeconds float64 `json:"age_seconds"`
	Videos     int     `json:"videos"`
	VHOs       int     `json:"vhos"`
	Links      int     `json:"links"`
	Slices     int     `json:"slices"`
	LastPasses int     `json:"last_passes"`
	LastGapPct float64 `json:"last_gap_pct"`
	LastReject string  `json:"last_reject"`

	RouteRequests int64 `json:"route_requests"`
	RouteErrors   int64 `json:"route_errors"`
	DemandUpdates int64 `json:"demand_updates"`

	Resolves struct {
		Started       int64 `json:"started"`
		Swapped       int64 `json:"swapped"`
		AuditRejected int64 `json:"audit_rejected"`
		Unconverged   int64 `json:"unconverged"`
		Cancelled     int64 `json:"cancelled"`
		Failed        int64 `json:"failed"`
	} `json:"resolves"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := s.store.Load()
	s.mu.Lock()
	lastPasses, lastGap, lastReject := s.lastPasses, s.lastGap, s.lastReject
	s.mu.Unlock()
	out := statusJSON{
		Version:       snap.Version,
		Certified:     snap.Certified,
		BuiltUnix:     snap.BuiltAt.Unix(),
		AgeSeconds:    time.Since(snap.BuiltAt).Seconds(),
		Videos:        snap.NumVideos(),
		VHOs:          snap.NumVHOs(),
		Links:         snap.Inst.G.NumLinks(),
		Slices:        snap.Inst.Slices,
		LastPasses:    lastPasses,
		LastGapPct:    100 * lastGap,
		LastReject:    lastReject,
		RouteRequests: s.routeRequests.Value(),
		RouteErrors:   s.routeErrors.Value(),
		DemandUpdates: s.demandUpdates.Value(),
	}
	out.Resolves.Started = s.resolvesStarted.Value()
	out.Resolves.Swapped = s.resolvesSwapped.Value()
	out.Resolves.AuditRejected = s.auditRejected.Value()
	out.Resolves.Unconverged = s.unconverged.Value()
	out.Resolves.Cancelled = s.resolvesCancel.Value()
	out.Resolves.Failed = s.resolvesFailed.Value()
	writeJSON(w, http.StatusOK, out)
}

// demandAck is the POST /demand success response.
type demandAck struct {
	Accepted int    `json:"accepted"`
	Version  uint64 `json:"version"`
}

func (s *Server) handleDemand(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sc := s.demandPool.Get().(*demandScratch)
	defer s.demandPool.Put(sc)
	if err := readDemandBatch(w, r.Body, sc); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed demand body: " + err.Error()})
		return
	}
	updates := sc.updates
	if len(updates) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty demand batch"})
		return
	}
	s.mu.Lock()
	if err := s.state.validate(updates); err != nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	s.state.apply(updates)
	s.dirty = true
	drift := s.state.drift
	s.mu.Unlock()
	s.demandUpdates.Add(int64(len(updates)))
	s.cfg.Recorder.RecordServeDemand(obs.ServeDemand{Batch: len(updates), Drift: drift})
	s.kickResolve()
	writeJSON(w, http.StatusAccepted, demandAck{Accepted: len(updates), Version: s.store.Load().Version})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // nothing useful to do on a client hangup
}
