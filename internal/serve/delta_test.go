package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
)

// syntheticInstance builds a catalog of sparse demand rows directly through
// the instance builder — no trace generation, no solver — cheap enough for
// the 100k-video delta benchmarks. Library ids are the video indices.
func syntheticInstance(tb testing.TB, videos, vhos, slices int, seed int64) *mip.Instance {
	tb.Helper()
	g := topology.Random(vhos, 1.2, seed)
	b, err := mip.NewInstanceBuilder(g, uniform(vhos, 1e12), uniform(g.NumLinks(), 1e12), slices, 0)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	js := make([]int32, 0, 3)
	agg := make([]float64, 0, 3)
	conc := make([][]float64, slices)
	for vi := 0; vi < videos; vi++ {
		js, agg = js[:0], agg[:0]
		for j := 0; j < vhos; j++ {
			// ~2.5 offices per video on a 10-office graph.
			if rng.Intn(4) != 0 {
				continue
			}
			js = append(js, int32(j))
			agg = append(agg, 1+rng.Float64()*20)
		}
		if len(js) == 0 {
			js = append(js, int32(vi%vhos))
			agg = append(agg, 1)
		}
		for t := range conc {
			conc[t] = conc[t][:0]
			for range js {
				conc[t] = append(conc[t], rng.Float64())
			}
		}
		d := mip.VideoDemand{
			Video: vi, SizeGB: 1 + float64(vi%7), RateMbps: 4,
			Js: js, Agg: agg, Conc: conc,
		}
		if err := b.Add(&d); err != nil {
			tb.Fatal(err)
		}
	}
	inst, err := b.Seal()
	if err != nil {
		tb.Fatal(err)
	}
	inst.Alpha, inst.Beta = 1, 0.25
	return inst
}

// onePerVideoSolution opens office vi%n for every video — the cheapest
// placement shape that exercises the route table without a solver run.
func onePerVideoSolution(inst *mip.Instance) *mip.Solution {
	n := inst.NumVHOs()
	sol := &mip.Solution{Inst: inst, Videos: make([]mip.VideoPlacement, len(inst.Demands))}
	for vi := range sol.Videos {
		sol.Videos[vi].Open = []mip.Frac{{I: int32(vi % n), V: 1}}
	}
	return sol
}

// deltaFx is the shared 100k-video fixture for the resolve benchmarks,
// built once: a live instance, its demand state, a synthetic placement and
// the published snapshot the incremental builds chain from.
var deltaFx struct {
	once sync.Once
	inst *mip.Instance
	st   *demandState
	sol  *mip.Solution
	snap *Snapshot
	ver  uint64
}

func deltaFixture(b *testing.B) {
	deltaFx.once.Do(func() {
		const videos, vhos = 100_000, 10
		deltaFx.inst = syntheticInstance(b, videos, vhos, 2, 1)
		deltaFx.st = stateFromInstance(deltaFx.inst)
		deltaFx.sol = onePerVideoSolution(deltaFx.inst)
		snap, err := buildSnapshot(deltaFx.inst, deltaFx.sol, 1, true)
		if err != nil {
			b.Fatal(err)
		}
		deltaFx.snap = snap
		deltaFx.ver = 1
	})
}

// benchmarkResolveDelta measures one delta resolve step minus the solver:
// fold a k-video update batch into the state, patch the live instance's
// dirty rows in place, and build the next snapshot incrementally from the
// previous one. The solver is excluded on purpose — its cost depends on
// convergence, not on the delta plumbing this benchmark isolates.
func benchmarkResolveDelta(b *testing.B, k int) {
	deltaFixture(b)
	videos := len(deltaFx.inst.Demands)
	updates := make([]DemandUpdate, k)
	stride := videos / k
	for x := range updates {
		vi := x * stride
		updates[x] = DemandUpdate{Video: deltaFx.inst.Demands[vi].Video, VHO: vi % deltaFx.snap.n, Add: 3}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deltaFx.st.apply(updates)
		dirty := deltaFx.st.drainDirty()
		if err := deltaFx.st.patchInstance(deltaFx.inst, dirty); err != nil {
			b.Fatal(err)
		}
		deltaFx.ver++
		snap, rebuilt, err := buildSnapshotFrom(deltaFx.snap, dirty, deltaFx.inst, deltaFx.sol, deltaFx.ver, true)
		if err != nil {
			b.Fatal(err)
		}
		if rebuilt != int64(len(dirty)) {
			b.Fatalf("rebuilt %d rows for %d dirty videos (incremental mode not engaged?)", rebuilt, len(dirty))
		}
		deltaFx.snap = snap
	}
}

func BenchmarkResolveDelta1of100k(b *testing.B)    { benchmarkResolveDelta(b, 1) }
func BenchmarkResolveDelta10of100k(b *testing.B)   { benchmarkResolveDelta(b, 10) }
func BenchmarkResolveDelta100of100k(b *testing.B)  { benchmarkResolveDelta(b, 100) }
func BenchmarkResolveDelta1000of100k(b *testing.B) { benchmarkResolveDelta(b, 1000) }

// BenchmarkResolveFull100k is the pre-delta baseline the ResolveDelta
// benchmarks are compared against: the same update batch, then a full
// catalog re-stream and a from-scratch route-table build.
func BenchmarkResolveFull100k(b *testing.B) {
	deltaFixture(b)
	videos := len(deltaFx.inst.Demands)
	const k = 1000
	updates := make([]DemandUpdate, k)
	for x := range updates {
		vi := x * (videos / k)
		updates[x] = DemandUpdate{Video: deltaFx.inst.Demands[vi].Video, VHO: vi % deltaFx.snap.n, Add: 3}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deltaFx.st.apply(updates)
		deltaFx.st.drainDirty()
		inst, err := deltaFx.st.instance(deltaFx.inst)
		if err != nil {
			b.Fatal(err)
		}
		sol := &mip.Solution{Inst: inst, Videos: deltaFx.sol.Videos}
		deltaFx.ver++
		if _, _, err := buildSnapshotFrom(nil, nil, inst, sol, deltaFx.ver, true); err != nil {
			b.Fatal(err)
		}
	}
	// The live instance missed this benchmark's state changes; resync so a
	// later delta benchmark in the same process patches from a consistent
	// base.
	b.StopTimer()
	inst, err := deltaFx.st.instance(deltaFx.inst)
	if err != nil {
		b.Fatal(err)
	}
	deltaFx.inst = inst
	deltaFx.sol = onePerVideoSolution(inst)
	snap, err := buildSnapshot(inst, deltaFx.sol, deltaFx.ver, true)
	if err != nil {
		b.Fatal(err)
	}
	deltaFx.snap = snap
}

// TestDemandDecodeNoLeakAcrossRequests pins the pooled-decode contract: a
// request whose updates omit fields must not inherit values a previous
// request decoded into the same reused batch slots (regression for the
// clear-before-decode in readDemandBatch).
func TestDemandDecodeNoLeakAcrossRequests(t *testing.T) {
	sc := &demandScratch{body: make([]byte, 0, 4096)}
	first := `[{"video":7,"vho":3,"add":100}]`
	if err := readDemandBatch(nil, io.NopCloser(strings.NewReader(first)), sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.updates) != 1 || sc.updates[0].Add != 100 {
		t.Fatalf("first decode: got %+v", sc.updates)
	}
	second := `[{"video":1,"vho":2}]`
	if err := readDemandBatch(nil, io.NopCloser(strings.NewReader(second)), sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.updates) != 1 {
		t.Fatalf("second decode: got %d updates, want 1", len(sc.updates))
	}
	if got := sc.updates[0]; got.Video != 1 || got.VHO != 2 || got.Add != 0 {
		t.Fatalf("second decode leaked pooled state: got %+v, want {Video:1 VHO:2 Add:0}", got)
	}
}

// BenchmarkServeDemandDecode measures the pooled POST /demand decode path:
// body read into the reused buffer plus JSON decode into the reused batch
// slice. The allocs/op figure is the satellite's contract — steady-state
// decoding must not re-allocate the megabyte read buffer or the batch.
func BenchmarkServeDemandDecode(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("[")
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"video":%d,"vho":%d,"add":%d.5}`, i*17, i%8, i)
	}
	sb.WriteString("]")
	body := []byte(sb.String())
	sc := &demandScratch{body: make([]byte, 0, 4096)}
	rd := bytes.NewReader(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		if err := readDemandBatch(nil, io.NopCloser(rd), sc); err != nil {
			b.Fatal(err)
		}
		if len(sc.updates) != 64 {
			b.Fatalf("decoded %d updates, want 64", len(sc.updates))
		}
	}
}

// equalInstanceDemands fails the test unless both instances carry
// bit-identical demand rows (identity fields, office sets, aggregates,
// concurrency CSR) and identical shard tallies.
func equalInstanceDemands(t *testing.T, got, want *mip.Instance) {
	t.Helper()
	if len(got.Demands) != len(want.Demands) {
		t.Fatalf("%d demands, want %d", len(got.Demands), len(want.Demands))
	}
	for vi := range want.Demands {
		a, b := &got.Demands[vi], &want.Demands[vi]
		if a.Video != b.Video || a.SizeGB != b.SizeGB || a.RateMbps != b.RateMbps {
			t.Fatalf("video index %d: identity mismatch", vi)
		}
		if len(a.Js) != len(b.Js) {
			t.Fatalf("video index %d: %d offices, want %d", vi, len(a.Js), len(b.Js))
		}
		for k := range b.Js {
			if a.Js[k] != b.Js[k] || a.Agg[k] != b.Agg[k] {
				t.Fatalf("video index %d office slot %d: agg mismatch", vi, k)
			}
			at, av := a.ConcNZ(k)
			bt, bv := b.ConcNZ(k)
			if len(at) != len(bt) {
				t.Fatalf("video index %d office slot %d: conc nnz mismatch", vi, k)
			}
			for x := range bt {
				if at[x] != bt[x] || av[x] != bv[x] {
					t.Fatalf("video index %d office slot %d: conc mismatch", vi, k)
				}
			}
		}
	}
	if len(got.Shards) != len(want.Shards) {
		t.Fatalf("%d shards, want %d", len(got.Shards), len(want.Shards))
	}
	for si := range want.Shards {
		if got.Shards[si] != want.Shards[si] {
			t.Fatalf("shard %d: %+v, want %+v", si, got.Shards[si], want.Shards[si])
		}
	}
}

// equalSnapshots fails the test unless both snapshots answer every routing
// question identically: same route table bytes, same id mapping, same
// recorded open sets.
func equalSnapshots(t *testing.T, round int, got, want *Snapshot) {
	t.Helper()
	if got.n != want.n || len(got.route) != len(want.route) {
		t.Fatalf("round %d: table shape %dx%d, want %dx%d", round, len(got.route), got.n, len(want.route), want.n)
	}
	for i := range want.route {
		if got.route[i] != want.route[i] {
			t.Fatalf("round %d: route[%d] = %d, want %d (video index %d, vho %d)",
				round, i, got.route[i], want.route[i], i/got.n, i%got.n)
		}
	}
	if len(got.vidIdx) != len(want.vidIdx) {
		t.Fatalf("round %d: vidIdx length %d, want %d", round, len(got.vidIdx), len(want.vidIdx))
	}
	for i := range want.vidIdx {
		if got.vidIdx[i] != want.vidIdx[i] {
			t.Fatalf("round %d: vidIdx[%d] = %d, want %d", round, i, got.vidIdx[i], want.vidIdx[i])
		}
	}
	if len(got.openOff) != len(want.openOff) || len(got.openIdx) != len(want.openIdx) {
		t.Fatalf("round %d: open CSR shape mismatch", round)
	}
	for i := range want.openOff {
		if got.openOff[i] != want.openOff[i] {
			t.Fatalf("round %d: openOff[%d] = %d, want %d", round, i, got.openOff[i], want.openOff[i])
		}
	}
	for i := range want.openIdx {
		if got.openIdx[i] != want.openIdx[i] {
			t.Fatalf("round %d: openIdx[%d] = %d, want %d", round, i, got.openIdx[i], want.openIdx[i])
		}
	}
}

// TestDeltaSnapshotEquivalence is the differential test of the tentpole:
// random demand-delta sequences are folded into two identical states; one
// side patches a live instance and builds snapshots incrementally, the
// other re-streams the catalog and builds from scratch every round. The
// patched instance (rows, CSR, shard tallies) and the incremental snapshot
// (route table, id map, open CSR) must stay byte-identical to the rebuilt
// ones through every round, including rows negative updates empty out.
func TestDeltaSnapshotEquivalence(t *testing.T) {
	const videos, vhos, slices, rounds = 300, 8, 2, 12
	rng := rand.New(rand.NewSource(17))
	base := syntheticInstance(t, videos, vhos, slices, 5)
	stA := stateFromInstance(base)
	stB := stateFromInstance(base)
	live, err := stA.instance(base)
	if err != nil {
		t.Fatal(err)
	}

	// The placement both sides share, mutated between rounds so the
	// incremental build sees open-set churn on top of demand churn.
	open := make([][]mip.Frac, videos)
	for vi := range open {
		open[vi] = []mip.Frac{{I: int32(vi % vhos), V: 1}}
	}
	buildVids := func() []mip.VideoPlacement {
		vids := make([]mip.VideoPlacement, videos)
		for vi := range vids {
			vids[vi].Open = open[vi]
		}
		return vids
	}
	snapA, err := buildSnapshot(live, &mip.Solution{Inst: live, Videos: buildVids()}, 1, true)
	if err != nil {
		t.Fatal(err)
	}

	sawPartial := false
	for round := 1; round <= rounds; round++ {
		// Random batch: a handful of videos, positive and negative adds —
		// occasionally violent enough to empty a row entirely.
		us := make([]DemandUpdate, 0, 16)
		for x := 0; x < 1+rng.Intn(15); x++ {
			vi := rng.Intn(videos)
			add := rng.Float64()*30 - 10
			if rng.Intn(8) == 0 {
				add = -1e6 // clamps every touched office to zero
			}
			us = append(us, DemandUpdate{Video: base.Demands[vi].Video, VHO: rng.Intn(vhos), Add: add})
		}
		stA.apply(us)
		stB.apply(us)

		// Open-set churn for a small subset of videos.
		for x := 0; x < 1+rng.Intn(5); x++ {
			vi := rng.Intn(videos)
			k := 1 + rng.Intn(3)
			perm := rng.Perm(vhos)[:k]
			var set []mip.Frac
			for j := 0; j < vhos; j++ {
				for _, p := range perm {
					if p == j {
						set = append(set, mip.Frac{I: int32(j), V: 1})
					}
				}
			}
			open[vi] = set
		}

		// Delta side: patch the live instance, build incrementally.
		dirty := stA.drainDirty()
		if err := stA.patchInstance(live, dirty); err != nil {
			t.Fatalf("round %d: patch: %v", round, err)
		}
		vids := buildVids()
		next, rebuilt, err := buildSnapshotFrom(snapA, dirty, live, &mip.Solution{Inst: live, Videos: vids}, uint64(round+1), true)
		if err != nil {
			t.Fatalf("round %d: incremental build: %v", round, err)
		}
		snapA = next
		if rebuilt < int64(len(dirty)) {
			t.Fatalf("round %d: rebuilt %d rows for %d dirty videos", round, rebuilt, len(dirty))
		}
		if rebuilt < int64(videos) {
			sawPartial = true
		}

		// Rebuild side: fresh instance, from-scratch snapshot.
		instB, err := stB.instance(base)
		if err != nil {
			t.Fatalf("round %d: rebuild: %v", round, err)
		}
		snapB, fullRows, err := buildSnapshotFrom(nil, nil, instB, &mip.Solution{Inst: instB, Videos: vids}, uint64(round+1), true)
		if err != nil {
			t.Fatalf("round %d: full build: %v", round, err)
		}
		if fullRows != int64(videos) {
			t.Fatalf("round %d: full build rebuilt %d rows, want %d", round, fullRows, videos)
		}

		equalInstanceDemands(t, live, instB)
		equalSnapshots(t, round, snapA, snapB)
	}
	if !sawPartial {
		t.Fatal("incremental build never copied a row; the delta path was not exercised")
	}
}

// TestDeltaMatchesFullResolve runs the whole resolver both ways: two
// servers over identical instances, one with the delta path and one with
// DeltaOff, fed the same update batches and driven through resolveOnce
// directly. The solver is deterministic and patched instances are
// bit-identical to rebuilt ones, so both servers must publish identical
// snapshots at every version.
func TestDeltaMatchesFullResolve(t *testing.T) {
	mk := func(deltaOff bool) *Server {
		inst := testInstance(t, 30, 6, 21)
		s, err := New(inst, Config{
			Solver:   epf.Options{Seed: 21, MaxPasses: 600, Epsilon: 0.05},
			DeltaOff: deltaOff,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	sA, sB := mk(false), mk(true)
	ids := make([]int, 0, 8)
	for vi := 0; vi < len(sA.base.Demands) && vi < 8; vi++ {
		ids = append(ids, sA.base.Demands[vi].Video)
	}
	for round := 1; round <= 3; round++ {
		us := make([]DemandUpdate, 0, len(ids))
		for x, id := range ids {
			us = append(us, DemandUpdate{Video: id, VHO: (x + round) % 6, Add: 40})
		}
		for _, s := range []*Server{sA, sB} {
			s.mu.Lock()
			s.state.apply(us)
			s.dirty = true
			s.mu.Unlock()
			if _, err := s.resolveOnce(context.Background()); err != nil {
				t.Fatalf("round %d: resolveOnce: %v", round, err)
			}
		}
		snapA, snapB := sA.Snapshot(), sB.Snapshot()
		if snapA.Version != snapB.Version {
			t.Fatalf("round %d: versions diverged: delta v%d, full v%d", round, snapA.Version, snapB.Version)
		}
		if snapA.Version != uint64(round+1) {
			t.Fatalf("round %d: snapshot v%d did not swap (stats %+v)", round, snapA.Version, sA.Stats())
		}
		equalSnapshots(t, round, snapA, snapB)
	}
}

// TestDeltaResolveRouteRace drives delta resolves (in-place patches of the
// instance the served snapshot also references) while reader goroutines
// hammer /route and /placement — the -race proof that patch writes touch
// only fields snapshot readers never load.
func TestDeltaResolveRouteRace(t *testing.T) {
	s := testServer(t, 40, 8, 31)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]int, 0, 10)
	for vi := 0; vi < len(s.base.Demands) && vi < 10; vi++ {
		ids = append(ids, s.base.Demands[vi].Video)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for x := 0; ; x++ {
				select {
				case <-stop:
					return
				default:
				}
				if w == 3 {
					getJSON(t, ts, "/placement", nil)
					continue
				}
				getJSON(t, ts, fmt.Sprintf("/route?video=%d&vho=%d", ids[x%len(ids)], x%8), nil)
			}
		}(w)
	}
	for round := 1; round <= 5; round++ {
		us := make([]DemandUpdate, 0, len(ids))
		for x, id := range ids {
			us = append(us, DemandUpdate{Video: id, VHO: (x + round) % 8, Add: 25})
		}
		s.mu.Lock()
		s.state.apply(us)
		s.dirty = true
		s.mu.Unlock()
		if _, err := s.resolveOnce(context.Background()); err != nil {
			t.Fatalf("round %d: resolveOnce: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}
