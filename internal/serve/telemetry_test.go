package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vodplace/internal/epf"
	"vodplace/internal/obs"
)

// TestServeLifecycleTrace runs a demand → re-solve → swap cycle with a
// recorder attached and checks the trace tells the whole story: the demand
// batch, the resolve bracket, and the swap with its route churn.
func TestServeLifecycleTrace(t *testing.T) {
	inst := testInstance(t, 30, 6, 17)
	var buf bytes.Buffer
	rec := obs.New(&buf)
	s, err := New(inst, Config{
		Solver:   epf.Options{Seed: 17, MaxPasses: 200, Epsilon: 0.02},
		Recorder: rec,
		Metrics:  rec.Metrics(),
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	snap := s.Snapshot()

	var entries []string
	for vi := 0; vi < len(snap.Inst.Demands) && vi < 8; vi++ {
		entries = append(entries, fmt.Sprintf(`{"video":%d,"vho":%d,"add":40}`,
			snap.Inst.Demands[vi].Video, vi%snap.NumVHOs()))
	}
	resp, err := ts.Client().Post(ts.URL+"/demand", "application/json",
		strings.NewReader("["+strings.Join(entries, ",")+"]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("demand status %d, want 202", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for s.Snapshot().Version < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no swap within deadline; stats %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close() // quiesce the resolver before reading the trace
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var demand, start, swapped int
	var swap *obs.Event
	for i := range events {
		e := &events[i]
		switch e.K {
		case "serve_demand":
			demand++
			if e.Batch != len(entries) || e.Drift <= 0 {
				t.Errorf("serve_demand %+v", e)
			}
		case "serve_resolve":
			if e.Phase == "start" {
				start++
				if e.Version < 2 || e.Trigger != "demand" {
					t.Errorf("serve_resolve start %+v", e)
				}
			} else if e.Verdict == "swapped" {
				swapped++
				if e.SolveMS <= 0 || e.Passes <= 0 || e.Reason != "" {
					t.Errorf("swapped done %+v", e)
				}
			}
		case "serve_swap":
			swap = e
		}
	}
	if demand != 1 || start < 1 || swapped < 1 {
		t.Fatalf("demand=%d start=%d swapped=%d, want 1/>=1/>=1", demand, start, swapped)
	}
	if swap == nil || swap.Version != 2 || swap.RDelta < 0 {
		t.Fatalf("serve_swap %+v", swap)
	}

	// The shared registry carries both the server's counters and the
	// recorder's event-derived families.
	m := rec.Metrics()
	if got := m.Counter("serve_swaps_total").Value(); got < 1 {
		t.Errorf("serve_swaps_total %d, want >= 1", got)
	}
	if got := m.Counter("serve.resolves_swapped").Value(); got < 1 {
		t.Errorf("serve.resolves_swapped %d, want >= 1", got)
	}
}

// TestMetricsEndpoint scrapes /metrics and checks the exposition parses and
// carries the request instruments and the sampled gauges.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, 30, 6, 18)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	snap := s.Snapshot()

	// Generate traffic so the route instrument has samples: hits and a 404.
	for j := 0; j < snap.NumVHOs(); j++ {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/route?video=%d&vho=%d",
			ts.URL, snap.Inst.Demands[0].Video, j))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/route?video=999999&vho=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, sm := range samples {
		if sm.Labels == nil {
			byName[sm.Name] = sm.Value
		}
	}
	if byName["serve_route_requests"] != float64(snap.NumVHOs())+1 {
		t.Errorf("serve_route_requests %v, want %d", byName["serve_route_requests"], snap.NumVHOs()+1)
	}
	if _, ok := byName["serve_snapshot_age_seconds"]; !ok {
		t.Error("serve_snapshot_age_seconds missing from exposition")
	}
	var ok2xx, ok4xx bool
	for _, sm := range samples {
		if sm.Name == obs.PromReqTotalName && sm.Labels["endpoint"] == "route" {
			switch sm.Labels["code"] {
			case "2xx":
				ok2xx = sm.Value == float64(snap.NumVHOs())
			case "4xx":
				ok4xx = sm.Value == 1
			}
		}
	}
	if !ok2xx || !ok4xx {
		t.Errorf("route status classes wrong (2xx ok=%v, 4xx ok=%v)", ok2xx, ok4xx)
	}
	h := obs.ExtractPromHist(samples, obs.PromReqDurName, map[string]string{"endpoint": "route"})
	if h == nil || h.Count != float64(snap.NumVHOs())+1 {
		t.Fatalf("route latency histogram %+v", h)
	}
	if q := h.Quantile(0.99); q <= 0 || q > 10 {
		t.Errorf("p99 %v seconds implausible", q)
	}
}

// TestStatusTelemetryFields checks the /status additions: build timestamp,
// age, and the empty last-reject on a healthy server.
func TestStatusTelemetryFields(t *testing.T) {
	s := testServer(t, 30, 6, 19)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var st statusJSON
	if code := getJSON(t, ts, "/status", &st); code != 200 {
		t.Fatalf("status code %d", code)
	}
	if st.BuiltUnix <= 0 {
		t.Errorf("built_unix %d, want > 0", st.BuiltUnix)
	}
	if st.AgeSeconds < 0 || st.AgeSeconds > 3600 {
		t.Errorf("age_seconds %v implausible", st.AgeSeconds)
	}
	if st.LastReject != "" {
		t.Errorf("last_reject %q, want empty", st.LastReject)
	}
	if got := s.Stats().LastReject; got != "" {
		t.Errorf("Stats().LastReject %q, want empty", got)
	}
}

// TestRouteDelta pins the swap-churn computation.
func TestRouteDelta(t *testing.T) {
	s := testServer(t, 30, 6, 20)
	snap := s.Snapshot()
	same, err := buildSnapshot(snap.Inst, snap.Sol, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := routeDelta(snap, same); d != 0 {
		t.Errorf("identical snapshots delta %d, want 0", d)
	}
	if d := routeDelta(nil, snap); d != int64(len(snap.route)) {
		t.Errorf("nil-old delta %d, want full table %d", d, len(snap.route))
	}
	// Flipping one route entry is a delta of exactly 1.
	mod, err := buildSnapshot(snap.Inst, snap.Sol, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	old := mod.route[0]
	mod.route[0] = old + 1
	if d := routeDelta(snap, mod); d != 1 {
		t.Errorf("one-entry delta %d, want 1", d)
	}
	mod.route[0] = old
}

// TestDemandDrift pins the drift accounting: accumulation on apply
// (including the zero clamp) and the post-swap settlement.
func TestDemandDrift(t *testing.T) {
	inst := testInstance(t, 20, 5, 21)
	st := stateFromInstance(inst)
	id := inst.Demands[0].Video
	st.apply([]DemandUpdate{{Video: id, VHO: 0, Add: 10}})
	if st.drift != 10 {
		t.Fatalf("drift %v, want 10", st.drift)
	}
	// A negative add that clamps at zero only counts the mass removed.
	before := st.rows[st.byID[id]].agg[1]
	st.apply([]DemandUpdate{{Video: id, VHO: 1, Add: -1e9}})
	if want := 10 + before; st.drift != want {
		t.Errorf("drift %v, want %v (clamped removal counts %v)", st.drift, want, before)
	}
}
