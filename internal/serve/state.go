package serve

import (
	"fmt"
	"math"

	"vodplace/internal/mip"
)

// DemandUpdate is one streamed demand delta (POST /demand): Add requests
// for Video at office VHO over the placement horizon. Negative adds decay
// demand; the state clamps at zero. Concurrency rows scale with the
// aggregate through the state's per-slice peak fractions, so an update
// shifts both the storage objective and the link constraints.
type DemandUpdate struct {
	Video int     `json:"video"`
	VHO   int     `json:"vho"`
	Add   float64 `json:"add"`
}

// demandRow is the canonical mutable demand for one video: dense per-office
// aggregates and per-(slice, office) peak concurrency. The server mutates
// rows under its lock and streams them through a fresh InstanceBuilder
// (which copies) on every re-solve, so built instances never alias state.
type demandRow struct {
	video    int
	sizeGB   float64
	rateMbps float64
	agg      []float64   // [office]
	conc     [][]float64 // [slice][office]
}

// demandState is the control plane's demand model: the videos of the
// initial instance with their live aggregate/concurrency numbers.
type demandState struct {
	rows   []demandRow
	byID   map[int]int // library video id -> rows index
	n      int         // offices
	slices int
	// concFrac[t] is the peak-concurrency mass added per unit of aggregate
	// demand by an update, derived from the seed instance's global
	// conc/agg ratio so streamed updates look like the existing mix.
	concFrac []float64
	// drift is the L1 aggregate-demand distance accumulated by apply since
	// the last state a swapped-in solve was built from: the staleness signal
	// behind the serve.demand_drift gauge. The resolver subtracts the mass a
	// successful swap covered (see resolveOnce) rather than zeroing, so
	// updates that land mid-solve stay counted.
	drift float64
}

// defaultConcFrac is the per-slice concurrency/aggregate ratio used when
// the seed instance carries no demand mass to derive one from.
const defaultConcFrac = 0.05

// stateFromInstance copies a built instance's demands into mutable dense
// state. The instance keeps only the CSR concurrency view, so the dense
// rows are reconstructed from it.
func stateFromInstance(inst *mip.Instance) *demandState {
	n := inst.NumVHOs()
	st := &demandState{
		rows:     make([]demandRow, len(inst.Demands)),
		byID:     make(map[int]int, len(inst.Demands)),
		n:        n,
		slices:   inst.Slices,
		concFrac: make([]float64, inst.Slices),
	}
	var totalAgg float64
	totalConc := make([]float64, inst.Slices)
	for vi := range inst.Demands {
		d := &inst.Demands[vi]
		row := demandRow{
			video:    d.Video,
			sizeGB:   d.SizeGB,
			rateMbps: d.RateMbps,
			agg:      make([]float64, n),
			conc:     make([][]float64, inst.Slices),
		}
		for t := range row.conc {
			row.conc[t] = make([]float64, n)
		}
		for k, j := range d.Js {
			row.agg[j] = d.Agg[k]
			totalAgg += d.Agg[k]
			ts, vs := d.ConcNZ(k)
			for x, t := range ts {
				row.conc[t][j] = vs[x]
				totalConc[t] += vs[x]
			}
		}
		st.rows[vi] = row
		st.byID[d.Video] = vi
	}
	for t := range st.concFrac {
		if totalAgg > 0 {
			st.concFrac[t] = totalConc[t] / totalAgg
		} else {
			st.concFrac[t] = defaultConcFrac
		}
	}
	return st
}

// validate checks a batch of updates against the state without applying
// anything, so a bad entry rejects the whole batch atomically.
func (st *demandState) validate(us []DemandUpdate) error {
	for i, u := range us {
		if _, ok := st.byID[u.Video]; !ok {
			return fmt.Errorf("entry %d: unknown video %d", i, u.Video)
		}
		if u.VHO < 0 || u.VHO >= st.n {
			return fmt.Errorf("entry %d: vho %d out of range [0,%d)", i, u.VHO, st.n)
		}
		if math.IsNaN(u.Add) || math.IsInf(u.Add, 0) {
			return fmt.Errorf("entry %d: non-finite add", i)
		}
	}
	return nil
}

// apply folds a validated batch into the state.
func (st *demandState) apply(us []DemandUpdate) {
	for _, u := range us {
		row := &st.rows[st.byID[u.Video]]
		prev := row.agg[u.VHO]
		row.agg[u.VHO] += u.Add
		if row.agg[u.VHO] < 0 {
			row.agg[u.VHO] = 0
		}
		st.drift += math.Abs(row.agg[u.VHO] - prev)
		for t := range row.conc {
			row.conc[t][u.VHO] += u.Add * st.concFrac[t]
			if row.conc[t][u.VHO] < 0 {
				row.conc[t][u.VHO] = 0
			}
		}
	}
}

// instance builds a fresh placement instance from the current state by
// streaming every row through an InstanceBuilder with one reused staging
// demand (the builder copies what it keeps).
func (st *demandState) instance(base *mip.Instance) (*mip.Instance, error) {
	b, err := mip.NewInstanceBuilder(base.G, base.DiskGB, base.LinkCapMbps, st.slices, 0)
	if err != nil {
		return nil, err
	}
	staging := mip.VideoDemand{
		Js:   make([]int32, 0, st.n),
		Agg:  make([]float64, 0, st.n),
		Conc: make([][]float64, st.slices),
	}
	for t := range staging.Conc {
		staging.Conc[t] = make([]float64, 0, st.n)
	}
	for vi := range st.rows {
		row := &st.rows[vi]
		staging.Video = row.video
		staging.SizeGB = row.sizeGB
		staging.RateMbps = row.rateMbps
		staging.Js = staging.Js[:0]
		staging.Agg = staging.Agg[:0]
		for t := range staging.Conc {
			staging.Conc[t] = staging.Conc[t][:0]
		}
		for j := 0; j < st.n; j++ {
			keep := row.agg[j] > 0
			for t := 0; !keep && t < st.slices; t++ {
				keep = row.conc[t][j] > 0
			}
			if !keep {
				continue
			}
			staging.Js = append(staging.Js, int32(j))
			staging.Agg = append(staging.Agg, row.agg[j])
			for t := range staging.Conc {
				staging.Conc[t] = append(staging.Conc[t], row.conc[t][j])
			}
		}
		if err := b.Add(&staging); err != nil {
			return nil, fmt.Errorf("video %d: %w", row.video, err)
		}
	}
	inst, err := b.Seal()
	if err != nil {
		return nil, err
	}
	inst.Alpha, inst.Beta = base.Alpha, base.Beta
	return inst, nil
}
