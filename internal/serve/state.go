package serve

import (
	"fmt"
	"math"
	"sort"

	"vodplace/internal/mip"
)

// DemandUpdate is one streamed demand delta (POST /demand): Add requests
// for Video at office VHO over the placement horizon. Negative adds decay
// demand; the state clamps at zero. Concurrency rows scale with the
// aggregate through the state's per-slice peak fractions, so an update
// shifts both the storage objective and the link constraints.
type DemandUpdate struct {
	Video int     `json:"video"`
	VHO   int     `json:"vho"`
	Add   float64 `json:"add"`
}

// demandRow is the canonical mutable demand for one video: dense per-office
// aggregates and per-(slice, office) peak concurrency. The server mutates
// rows under its lock and streams them through a fresh InstanceBuilder
// (which copies) on every re-solve, so built instances never alias state.
type demandRow struct {
	video    int
	sizeGB   float64
	rateMbps float64
	agg      []float64   // [office]
	conc     [][]float64 // [slice][office]
}

// demandState is the control plane's demand model: the videos of the
// initial instance with their live aggregate/concurrency numbers.
type demandState struct {
	rows   []demandRow
	byID   map[int]int // library video id -> rows index
	n      int         // offices
	slices int
	// concFrac[t] is the peak-concurrency mass added per unit of aggregate
	// demand by an update, derived from the seed instance's global
	// conc/agg ratio so streamed updates look like the existing mix.
	concFrac []float64
	// drift is the L1 aggregate-demand distance accumulated by apply since
	// the last state a swapped-in solve was built from: the staleness signal
	// behind the serve.demand_drift gauge. The resolver subtracts the mass a
	// successful swap covered (see resolveOnce) rather than zeroing, so
	// updates that land mid-solve stay counted.
	drift float64
	// dirty is the set of row indices apply has touched since the resolver
	// last drained it — the delta resolve path's work list. Tracked inside
	// apply (the single mutation point) so every caller, the HTTP ingest
	// path and tests driving apply directly alike, feeds it.
	dirty map[int]struct{}
}

// defaultConcFrac is the per-slice concurrency/aggregate ratio used when
// the seed instance carries no demand mass to derive one from.
const defaultConcFrac = 0.05

// stateFromInstance copies a built instance's demands into mutable dense
// state. The instance keeps only the CSR concurrency view, so the dense
// rows are reconstructed from it.
func stateFromInstance(inst *mip.Instance) *demandState {
	n := inst.NumVHOs()
	st := &demandState{
		rows:     make([]demandRow, len(inst.Demands)),
		byID:     make(map[int]int, len(inst.Demands)),
		n:        n,
		slices:   inst.Slices,
		concFrac: make([]float64, inst.Slices),
		dirty:    make(map[int]struct{}),
	}
	var totalAgg float64
	totalConc := make([]float64, inst.Slices)
	for vi := range inst.Demands {
		d := &inst.Demands[vi]
		row := demandRow{
			video:    d.Video,
			sizeGB:   d.SizeGB,
			rateMbps: d.RateMbps,
			agg:      make([]float64, n),
			conc:     make([][]float64, inst.Slices),
		}
		for t := range row.conc {
			row.conc[t] = make([]float64, n)
		}
		for k, j := range d.Js {
			row.agg[j] = d.Agg[k]
			totalAgg += d.Agg[k]
			ts, vs := d.ConcNZ(k)
			for x, t := range ts {
				row.conc[t][j] = vs[x]
				totalConc[t] += vs[x]
			}
		}
		st.rows[vi] = row
		st.byID[d.Video] = vi
	}
	for t := range st.concFrac {
		if totalAgg > 0 {
			st.concFrac[t] = totalConc[t] / totalAgg
		} else {
			st.concFrac[t] = defaultConcFrac
		}
	}
	return st
}

// validate checks a batch of updates against the state without applying
// anything, so a bad entry rejects the whole batch atomically.
func (st *demandState) validate(us []DemandUpdate) error {
	for i, u := range us {
		if _, ok := st.byID[u.Video]; !ok {
			return fmt.Errorf("entry %d: unknown video %d", i, u.Video)
		}
		if u.VHO < 0 || u.VHO >= st.n {
			return fmt.Errorf("entry %d: vho %d out of range [0,%d)", i, u.VHO, st.n)
		}
		if math.IsNaN(u.Add) || math.IsInf(u.Add, 0) {
			return fmt.Errorf("entry %d: non-finite add", i)
		}
	}
	return nil
}

// apply folds a validated batch into the state and marks the touched rows
// dirty for the next delta resolve.
func (st *demandState) apply(us []DemandUpdate) {
	for _, u := range us {
		ri := st.byID[u.Video]
		st.dirty[ri] = struct{}{}
		row := &st.rows[ri]
		prev := row.agg[u.VHO]
		row.agg[u.VHO] += u.Add
		if row.agg[u.VHO] < 0 {
			row.agg[u.VHO] = 0
		}
		st.drift += math.Abs(row.agg[u.VHO] - prev)
		for t := range row.conc {
			row.conc[t][u.VHO] += u.Add * st.concFrac[t]
			if row.conc[t][u.VHO] < 0 {
				row.conc[t][u.VHO] = 0
			}
		}
	}
}

// newStaging returns a reusable staging demand sized for this state's
// office/slice dimensions.
func (st *demandState) newStaging() mip.VideoDemand {
	staging := mip.VideoDemand{
		Js:   make([]int32, 0, st.n),
		Agg:  make([]float64, 0, st.n),
		Conc: make([][]float64, st.slices),
	}
	for t := range staging.Conc {
		staging.Conc[t] = make([]float64, 0, st.n)
	}
	return staging
}

// fillStaging loads row vi into the reused staging demand: the identity
// fields plus the sparse office profile under the keep-filter (an office
// appears iff its aggregate or any slice concurrency is positive). Both
// construction routes — the full-catalog rebuild in instance and the
// dirty-row patch in patchInstance — extract rows through this one helper,
// so they cannot disagree about which offices a row keeps.
func (st *demandState) fillStaging(vi int, staging *mip.VideoDemand) {
	row := &st.rows[vi]
	staging.Video = row.video
	staging.SizeGB = row.sizeGB
	staging.RateMbps = row.rateMbps
	staging.Js = staging.Js[:0]
	staging.Agg = staging.Agg[:0]
	for t := range staging.Conc {
		staging.Conc[t] = staging.Conc[t][:0]
	}
	for j := 0; j < st.n; j++ {
		keep := row.agg[j] > 0
		for t := 0; !keep && t < st.slices; t++ {
			keep = row.conc[t][j] > 0
		}
		if !keep {
			continue
		}
		staging.Js = append(staging.Js, int32(j))
		staging.Agg = append(staging.Agg, row.agg[j])
		for t := range staging.Conc {
			staging.Conc[t] = append(staging.Conc[t], row.conc[t][j])
		}
	}
}

// instance builds a fresh placement instance from the current state by
// streaming every row through an InstanceBuilder with one reused staging
// demand (the builder copies what it keeps).
func (st *demandState) instance(base *mip.Instance) (*mip.Instance, error) {
	b, err := mip.NewInstanceBuilder(base.G, base.DiskGB, base.LinkCapMbps, st.slices, 0)
	if err != nil {
		return nil, err
	}
	staging := st.newStaging()
	for vi := range st.rows {
		st.fillStaging(vi, &staging)
		if err := b.Add(&staging); err != nil {
			return nil, fmt.Errorf("video %d: %w", st.rows[vi].video, err)
		}
	}
	inst, err := b.Seal()
	if err != nil {
		return nil, err
	}
	inst.Alpha, inst.Beta = base.Alpha, base.Beta
	return inst, nil
}

// drainDirty returns the row indices apply has touched since the previous
// drain, ascending, and resets the set. Rows stream into instances in index
// order, so a row index is also the video's instance index in every
// instance built from (or patched against) this state.
func (st *demandState) drainDirty() []int {
	if len(st.dirty) == 0 {
		return nil
	}
	out := make([]int, 0, len(st.dirty))
	for vi := range st.dirty {
		out = append(out, vi)
	}
	sort.Ints(out)
	clear(st.dirty)
	return out
}

// patchInstance rewrites the dirty videos' demand rows of inst in place
// through mip.ApplyDemandDelta — the delta resolve path's alternative to
// re-streaming the whole catalog. inst must have been built from this state
// (row order == video index order); rows are extracted with the same
// fillStaging keep-filter the full rebuild uses, so a patched instance is
// bit-identical to a rebuilt one.
func (st *demandState) patchInstance(inst *mip.Instance, dirty []int) error {
	staging := st.newStaging()
	for _, vi := range dirty {
		st.fillStaging(vi, &staging)
		if err := inst.ApplyDemandDelta(vi, staging.Js, staging.Agg, staging.Conc); err != nil {
			return fmt.Errorf("video %d: %w", st.rows[vi].video, err)
		}
	}
	return nil
}
