//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in (allocation
// counts are unreliable under -race, so the zero-alloc test skips itself).
const raceEnabled = true
