package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vodplace/internal/epf"
)

// TestSnapshotSwapRace hammers /route from concurrent readers while the
// control plane swaps snapshots underneath them. Run under -race it pins the
// no-torn-reads invariant: every response a reader sees must be internally
// consistent with the snapshot whose version it carries, and versions must
// be monotone per reader. The resolver is driven directly (resolveOnce) so
// the test controls exactly how many swaps happen.
func TestSnapshotSwapRace(t *testing.T) {
	s := testServer(t, 30, 6, 21)
	mux := s.Handler()
	first := s.Snapshot()

	// Retain every version ever served so readers can be checked afterwards.
	var retainMu sync.Mutex
	retained := map[uint64]*Snapshot{first.Version: first}

	// Fixed request universe: all pairs exist in every snapshot because the
	// demand state only ever gains mass in this test.
	type pair struct{ video, vho int }
	var pairs []pair
	for vi := range first.Inst.Demands {
		pairs = append(pairs, pair{first.Inst.Demands[vi].Video, vi % first.NumVHOs()})
	}

	var stop atomic.Bool
	type sample struct {
		video, vho int
		serve      int // -1 for a 404
		version    uint64
	}
	const readers = 4
	samples := make([][]sample, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastVersion uint64
			for k := 0; !stop.Load(); k++ {
				p := pairs[(k*7+r)%len(pairs)]
				req := httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("/route?video=%d&vho=%d", p.video, p.vho), nil)
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, req)
				var rr routeResp
				if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
					t.Errorf("reader %d: bad body %q: %v", r, rec.Body.String(), err)
					return
				}
				if rr.Version < lastVersion {
					t.Errorf("reader %d: version went backwards %d -> %d", r, lastVersion, rr.Version)
					return
				}
				lastVersion = rr.Version
				sv := rr.Serve
				if rec.Code != http.StatusOK {
					sv = -1
				}
				samples[r] = append(samples[r], sample{p.video, p.vho, sv, rr.Version})
			}
		}(r)
	}

	// Control plane: three demand perturbations, each followed by a direct
	// audited re-solve. Every swap must succeed for the test to mean much.
	const swaps = 3
	for w := 0; w < swaps; w++ {
		s.mu.Lock()
		for vi := 0; vi < len(first.Inst.Demands); vi += 3 {
			s.state.apply([]DemandUpdate{{
				Video: first.Inst.Demands[vi].Video,
				VHO:   (vi + w) % first.NumVHOs(),
				Add:   25,
			}})
		}
		s.dirty = true
		s.mu.Unlock()
		snap, err := s.resolveOnce(context.Background())
		if err != nil {
			t.Fatalf("swap %d: %v", w, err)
		}
		if snap == nil {
			t.Fatalf("swap %d: re-solve did not swap (stats %+v)", w, s.Stats())
		}
		retainMu.Lock()
		retained[snap.Version] = snap
		retainMu.Unlock()
	}
	time.Sleep(20 * time.Millisecond) // let readers observe the final version
	stop.Store(true)
	wg.Wait()

	if got := s.Stats().ResolvesSwapped; got != swaps {
		t.Fatalf("resolves_swapped = %d, want %d", got, swaps)
	}

	// Validate every sample against the snapshot its version names.
	total, crossVersion := 0, 0
	seen := map[uint64]bool{}
	for r := range samples {
		for _, sm := range samples[r] {
			snap, ok := retained[sm.version]
			if !ok {
				t.Fatalf("reader %d saw unknown version %d", r, sm.version)
			}
			seen[sm.version] = true
			want, wantOK := snap.Route(sm.video, sm.vho)
			if !wantOK {
				want = -1
			}
			if sm.serve != want {
				t.Fatalf("torn read: video %d vho %d at version %d served by %d, snapshot says %d",
					sm.video, sm.vho, sm.version, sm.serve, want)
			}
			if sm.version != first.Version {
				crossVersion++
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("readers recorded no samples")
	}
	if crossVersion == 0 {
		t.Log("warning: no reads landed on a post-swap snapshot (slow machine?)")
	}
	t.Logf("%d reads across %d versions, %d on post-swap snapshots", total, len(seen), crossVersion)
}

// TestCloseDiscardsInflightResolve pins graceful shutdown: Close() while a
// background re-solve is mid-pass cancels it, the partial solve is discarded
// (version unchanged, cancelled counter bumped), and the data plane keeps
// answering from the old snapshot.
func TestCloseDiscardsInflightResolve(t *testing.T) {
	var armed atomic.Bool
	var entered sync.Once
	passEntered := make(chan struct{})
	release := make(chan struct{})

	inst := testInstance(t, 30, 6, 31)
	cfg := Config{Solver: epf.Options{Seed: 31, MaxPasses: 200, Epsilon: 0.02}}
	cfg.Solver.OnPass = func(epf.PassInfo) {
		if !armed.Load() {
			return
		}
		entered.Do(func() { close(passEntered) })
		<-release // closed exactly once cancellation is in flight
	}
	var logMu sync.Mutex
	var logs []string
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	s, err := New(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Kick a background re-solve and wait until it is provably mid-pass.
	armed.Store(true)
	s.mu.Lock()
	s.state.apply([]DemandUpdate{{Video: inst.Demands[0].Video, VHO: 0, Add: 50}})
	s.dirty = true
	s.mu.Unlock()
	s.kickResolve()
	select {
	case <-passEntered:
	case <-time.After(30 * time.Second):
		t.Fatal("re-solve never reached a pass")
	}

	// Cancel first (deterministically, before the solver can finish), then
	// unblock the pass hook and wait for the resolver to drain.
	s.cancel()
	close(release)
	s.Close()

	if got := s.Snapshot().Version; got != 1 {
		t.Errorf("version after shutdown = %d, want 1 (partial solve must be discarded)", got)
	}
	st := s.Stats()
	if st.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", st.Cancelled)
	}
	if st.ResolvesSwapped != 0 {
		t.Errorf("resolves_swapped = %d, want 0", st.ResolvesSwapped)
	}
	logMu.Lock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "resolve discarded (shutdown)") {
			found = true
		}
	}
	logMu.Unlock()
	if !found {
		t.Errorf("no 'resolve discarded (shutdown)' log line; got %q", logs)
	}

	// In-flight/late requests still answer from the old snapshot.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/route?video=%d&vho=0", inst.Demands[0].Video), nil))
	if rec.Code != http.StatusOK {
		t.Errorf("post-shutdown route: status %d, want 200", rec.Code)
	}

	// Close is idempotent.
	s.Close()
}
