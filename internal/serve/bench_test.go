package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vodplace/internal/obs"
)

// BenchmarkServeRouteLookup is the data-plane unit the acceptance rps gate
// rests on: parse + table lookup + JSON encode into a reused buffer.
func BenchmarkServeRouteLookup(b *testing.B) {
	s := testServer(b, 200, 10, 41)
	snap := s.Snapshot()
	var queries []string
	for vi := range snap.Inst.Demands {
		queries = append(queries, fmt.Sprintf("video=%d&vho=%d",
			snap.Inst.Demands[vi].Video, vi%snap.NumVHOs()))
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, j, ok := parseRouteQuery(queries[i%len(queries)])
		if !ok {
			b.Fatal("parse failed")
		}
		buf, _ = snap.AppendRoute(buf[:0], v, j)
	}
	_ = buf
}

// BenchmarkServeRouteLookupInstrumented is BenchmarkServeRouteLookup plus
// the per-request telemetry handleRoute performs (clock read + ReqStat
// record). bench-json diffs the two to report the instrumentation cost of a
// route lookup end to end.
func BenchmarkServeRouteLookupInstrumented(b *testing.B) {
	s := testServer(b, 200, 10, 41)
	snap := s.Snapshot()
	var queries []string
	for vi := range snap.Inst.Demands {
		queries = append(queries, fmt.Sprintf("video=%d&vho=%d",
			snap.Inst.Demands[vi].Video, vi%snap.NumVHOs()))
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		v, j, ok := parseRouteQuery(queries[i%len(queries)])
		if !ok {
			b.Fatal("parse failed")
		}
		var status int
		buf, status = snap.AppendRoute(buf[:0], v, j)
		s.reqRoute.Record(status, time.Since(t0))
	}
	_ = buf
}

// BenchmarkServeRecord isolates the recorder itself — one ReqStat.Record
// call with a synthetic duration, no clock reads — which is the number the
// <10 ns/op acceptance bound applies to.
func BenchmarkServeRecord(b *testing.B) {
	e := obs.NewReqStat("route")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Record(200, time.Duration(i&0xfffff))
	}
	if e.Requests() != int64(b.N) {
		b.Fatal("lost samples")
	}
}

// BenchmarkServeSnapshotBuild measures the control-plane cost of
// precomputing a full route table after a re-solve.
func BenchmarkServeSnapshotBuild(b *testing.B) {
	s := testServer(b, 200, 10, 42)
	snap := s.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildSnapshot(snap.Inst, snap.Sol, uint64(i+2), true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeRouteHTTP measures a full sequential request/response cycle
// through net/http on a loopback listener — the per-connection ceiling a
// single vodload sender sees.
func BenchmarkServeRouteHTTP(b *testing.B) {
	s := testServer(b, 100, 8, 43)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	snap := s.Snapshot()
	var urls []string
	for vi := range snap.Inst.Demands {
		urls = append(urls, fmt.Sprintf("%s/route?video=%d&vho=%d",
			ts.URL, snap.Inst.Demands[vi].Video, vi%snap.NumVHOs()))
	}
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(urls[i%len(urls)])
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
