package serve

import (
	"fmt"
	"strconv"
	"time"

	"vodplace/internal/mip"
)

// openY is the fractional-storage threshold above which an office counts as
// holding a servable copy — the same ≥ 0.5 convention mip.Solution.Copies
// uses to count copies of fractional placements. Integral placements (the
// only kind the daemon ever swaps in) sit exactly at 0 or 1.
const openY = 0.5

// Snapshot is one immutable view of the data plane: a placement, the
// instance it was solved on, and a fully precomputed route table answering
// "which office serves video m for office j" with a single array read. A
// snapshot is never mutated after construction; the server swaps whole
// snapshots through an atomic pointer, so readers see either the old or the
// new placement in full — never a torn mix.
type Snapshot struct {
	// Version is the monotone snapshot sequence number; the initial
	// placement is version 1 and every audit-approved re-solve increments
	// it by one.
	Version uint64
	// Inst and Sol are the solved placement this snapshot serves. Both are
	// treated as immutable from the moment the snapshot is built.
	Inst *mip.Instance
	Sol  *mip.Solution
	// Certified reports that the placement passed the independent
	// certificate auditor (internal/verify) before it was swapped in.
	Certified bool
	// BuiltAt is the wall-clock construction time; /status and the
	// snapshot-age gauge report staleness relative to it.
	BuiltAt time.Time

	// route[vi*n+j] is the serving office for instance video vi requested
	// at office j, or -1 when the video has no open copy (unreachable).
	route []int32
	// vidIdx[id] maps a library video ID to its instance index, -1 when the
	// video is not part of this placement. Flat so the hot path is one
	// bounds check and one load, no map hashing.
	vidIdx []int32
	n      int

	// openOff/openIdx record each video's thresholded open set (the y ≥
	// openY offices, in solution order) in CSR form: video vi's open offices
	// are openIdx[openOff[vi]:openOff[vi+1]]. A route row is a pure function
	// of this set and the (immutable) cost matrix, so the incremental
	// builder compares the next solution's open sets against these to decide
	// which rows it must recompute — never against Sol, which the next
	// attempt may alias.
	openOff []int32
	openIdx []int32
}

// buildSnapshot validates (inst, sol) and precomputes the route table.
// It is deliberately defensive — the fuzz target feeds it arbitrary
// hand-built placements — so malformed input yields an error, never a
// panic or a mis-route: out-of-range open offices are rejected, duplicate
// and unsorted open lists are tolerated, and videos without any open copy
// get the unreachable sentinel rather than a default office.
func buildSnapshot(inst *mip.Instance, sol *mip.Solution, version uint64, certified bool) (*Snapshot, error) {
	s, _, err := buildSnapshotFrom(nil, nil, inst, sol, version, certified)
	return s, err
}

// buildSnapshotFrom is buildSnapshot with an incremental mode: when prev is
// a snapshot built on the same instance value (pointer identity — the
// resolver's patched live instance), route rows are copied from prev instead
// of recomputed for every video whose thresholded open set is unchanged and
// whose demand is not in dirty (ascending video indices). An unchanged open
// set makes the recomputation bit-identical to the copy — the row depends
// only on the open set and the immutable cost matrix — so the incremental
// result is byte-for-byte the full rebuild's; the dirty list is the
// belt-and-braces invalidation for rows whose demand moved under the same
// open set. Returns the snapshot and the number of rows actually recomputed
// (== the video count on a full build).
func buildSnapshotFrom(prev *Snapshot, dirty []int, inst *mip.Instance, sol *mip.Solution, version uint64, certified bool) (*Snapshot, int64, error) {
	if inst == nil || sol == nil {
		return nil, 0, fmt.Errorf("serve: nil instance or solution")
	}
	if sol.Inst != inst {
		return nil, 0, fmt.Errorf("serve: solution belongs to a different instance")
	}
	if len(sol.Videos) != len(inst.Demands) {
		return nil, 0, fmt.Errorf("serve: %d video placements for %d demands", len(sol.Videos), len(inst.Demands))
	}
	n := inst.NumVHOs()
	nv := len(inst.Demands)
	incr := prev != nil && prev.Inst == inst && prev.n == n && len(prev.openOff) == nv+1

	s := &Snapshot{
		Version:   version,
		Inst:      inst,
		Sol:       sol,
		Certified: certified,
		BuiltAt:   time.Now(),
		route:     make([]int32, nv*n),
		n:         n,
		openOff:   make([]int32, nv+1),
	}
	if incr {
		// Library ids are immutable under a patch, so the previous table —
		// validated when prev was built — is shared as-is.
		s.vidIdx = prev.vidIdx
		s.openIdx = make([]int32, 0, len(prev.openIdx))
	} else {
		maxID := -1
		for vi := range inst.Demands {
			id := inst.Demands[vi].Video
			if id < 0 {
				return nil, 0, fmt.Errorf("serve: video index %d has negative library id %d", vi, id)
			}
			if id > maxID {
				maxID = id
			}
		}
		s.vidIdx = make([]int32, maxID+1)
		for i := range s.vidIdx {
			s.vidIdx[i] = -1
		}
		for vi := range inst.Demands {
			id := inst.Demands[vi].Video
			if s.vidIdx[id] != -1 {
				return nil, 0, fmt.Errorf("serve: duplicate library id %d", id)
			}
			s.vidIdx[id] = int32(vi)
		}
	}

	// Cheapest-copy routes: for each destination j, the open office with the
	// minimal transfer cost c_ij; strict < keeps the lowest office index on
	// ties, matching the from-scratch recomputation the tests do. Open-set
	// extraction and validation always run for every video — only the
	// per-destination scan is skipped on a reused row.
	var rebuilt int64
	var open []int32
	di := 0
	for vi := range sol.Videos {
		open = open[:0]
		for _, f := range sol.Videos[vi].Open {
			if f.V < openY {
				continue
			}
			if int(f.I) < 0 || int(f.I) >= n {
				return nil, 0, fmt.Errorf("serve: video %d open office %d out of range [0,%d)", vi, f.I, n)
			}
			open = append(open, f.I)
		}
		s.openIdx = append(s.openIdx, open...)
		s.openOff[vi+1] = int32(len(s.openIdx))

		row := s.route[vi*n : (vi+1)*n]
		if incr {
			for di < len(dirty) && dirty[di] < vi {
				di++
			}
			isDirty := di < len(dirty) && dirty[di] == vi
			if !isDirty && openSetEqual(open, prev.openIdx[prev.openOff[vi]:prev.openOff[vi+1]]) {
				copy(row, prev.route[vi*n:(vi+1)*n])
				continue
			}
		}
		rebuilt++
		if len(open) == 0 {
			for j := range row {
				row[j] = -1
			}
			continue
		}
		for j := 0; j < n; j++ {
			best := open[0]
			bestCost := inst.Cost(int(open[0]), j)
			for _, i := range open[1:] {
				if c := inst.Cost(int(i), j); c < bestCost || (c == bestCost && i < best) {
					best, bestCost = i, c
				}
			}
			row[j] = best
		}
	}
	return s, rebuilt, nil
}

// openSetEqual reports whether two thresholded open-office lists are
// identical (same offices in the same order — the deterministic solver
// emits open sets ascending, so order equality is set equality; an
// order-only difference merely costs one conservative recomputation).
func openSetEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// routeDelta counts route-table entries that differ between two snapshots,
// matching videos by library id so re-solves over a changed catalog compare
// sensibly: a video present on only one side contributes a full row (its
// every destination changed answer), matched videos contribute their
// per-destination differences. This is the churn number a swap event
// reports — how many (video, office) routing answers the swap changed.
func routeDelta(old, cur *Snapshot) int64 {
	if old == nil {
		return int64(len(cur.route))
	}
	var d int64
	for id := range cur.vidIdx {
		vi := cur.vidIdx[id]
		if vi < 0 {
			continue
		}
		var ovi int32 = -1
		if id < len(old.vidIdx) {
			ovi = old.vidIdx[id]
		}
		if ovi < 0 || old.n != cur.n {
			d += int64(cur.n)
			continue
		}
		row := cur.route[int(vi)*cur.n : (int(vi)+1)*cur.n]
		orow := old.route[int(ovi)*old.n : (int(ovi)+1)*old.n]
		for j := range row {
			if row[j] != orow[j] {
				d++
			}
		}
	}
	for id := range old.vidIdx {
		if old.vidIdx[id] < 0 {
			continue
		}
		if id >= len(cur.vidIdx) || cur.vidIdx[id] < 0 {
			d += int64(old.n)
		}
	}
	return d
}

// Route returns the serving office for library video id at office vho.
// ok is false when the video is not in this placement, vho is out of range,
// or the video has no open copy. It performs no allocations.
func (s *Snapshot) Route(videoID, vho int) (office int, ok bool) {
	if vho < 0 || vho >= s.n || videoID < 0 || videoID >= len(s.vidIdx) {
		return -1, false
	}
	vi := s.vidIdx[videoID]
	if vi < 0 {
		return -1, false
	}
	i := s.route[int(vi)*s.n+vho]
	if i < 0 {
		return -1, false
	}
	return int(i), true
}

// NumVideos returns the number of videos in this placement.
func (s *Snapshot) NumVideos() int { return len(s.Inst.Demands) }

// NumVHOs returns the number of offices.
func (s *Snapshot) NumVHOs() int { return s.n }

// Route response statuses, shared by AppendRoute and the HTTP handler.
const (
	routeOK          = 200
	routeNotFound    = 404
	routeUnreachable = 404
)

// AppendRoute answers one /route lookup: it appends the JSON response body
// for (videoID, vho) to buf and returns the extended buffer plus the HTTP
// status code. This is the data-plane hot path — a version-stamped route
// answer is two array loads and a hand-rolled JSON encode into the caller's
// reused buffer, so the steady state allocates nothing (pinned by
// TestRouteZeroAllocations).
func (s *Snapshot) AppendRoute(buf []byte, videoID, vho int) ([]byte, int) {
	if vho < 0 || vho >= s.n {
		buf = append(buf, `{"error":"unknown vho"`...)
		buf = appendKV(buf, `,"vho":`, int64(vho))
		buf = appendKV(buf, `,"version":`, int64(s.Version))
		buf = append(buf, "}\n"...)
		return buf, routeNotFound
	}
	var vi int32 = -1
	if videoID >= 0 && videoID < len(s.vidIdx) {
		vi = s.vidIdx[videoID]
	}
	if vi < 0 {
		buf = append(buf, `{"error":"unknown video"`...)
		buf = appendKV(buf, `,"video":`, int64(videoID))
		buf = appendKV(buf, `,"version":`, int64(s.Version))
		buf = append(buf, "}\n"...)
		return buf, routeNotFound
	}
	i := s.route[int(vi)*s.n+vho]
	if i < 0 {
		buf = append(buf, `{"error":"unreachable"`...)
		buf = appendKV(buf, `,"video":`, int64(videoID))
		buf = appendKV(buf, `,"vho":`, int64(vho))
		buf = appendKV(buf, `,"version":`, int64(s.Version))
		buf = append(buf, "}\n"...)
		return buf, routeUnreachable
	}
	buf = append(buf, `{"video":`...)
	buf = strconv.AppendInt(buf, int64(videoID), 10)
	buf = appendKV(buf, `,"vho":`, int64(vho))
	buf = appendKV(buf, `,"serve":`, int64(i))
	buf = appendKV(buf, `,"hops":`, int64(s.Inst.Hops(int(i), vho)))
	buf = append(buf, `,"cost":`...)
	buf = strconv.AppendFloat(buf, s.Inst.Cost(int(i), vho), 'g', -1, 64)
	buf = appendKV(buf, `,"version":`, int64(s.Version))
	buf = append(buf, "}\n"...)
	return buf, routeOK
}

func appendKV(b []byte, prefix string, v int64) []byte {
	b = append(b, prefix...)
	return strconv.AppendInt(b, v, 10)
}

// parseRouteQuery extracts video= and vho= from a raw query string without
// allocating. Both parameters must appear exactly once with a plain decimal
// value; unknown parameters are ignored. Returns ok=false on any malformed
// input (the 400 contract).
func parseRouteQuery(q string) (video, vho int, ok bool) {
	video, vho = -1, -1
	haveVideo, haveVHO := false, false
	for len(q) > 0 {
		var kv string
		if i := indexByte(q, '&'); i >= 0 {
			kv, q = q[:i], q[i+1:]
		} else {
			kv, q = q, ""
		}
		eq := indexByte(kv, '=')
		if eq < 0 {
			return 0, 0, false
		}
		key, val := kv[:eq], kv[eq+1:]
		switch key {
		case "video":
			if haveVideo {
				return 0, 0, false
			}
			v, good := parseUint(val)
			if !good {
				return 0, 0, false
			}
			video, haveVideo = v, true
		case "vho":
			if haveVHO {
				return 0, 0, false
			}
			v, good := parseUint(val)
			if !good {
				return 0, 0, false
			}
			vho, haveVHO = v, true
		}
	}
	return video, vho, haveVideo && haveVHO
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// parseUint parses a plain decimal value in [0, 1e9); anything else —
// empty, signs, hex, percent-escapes, overflow — is malformed.
func parseUint(s string) (int, bool) {
	if len(s) == 0 || len(s) > 9 {
		return 0, false
	}
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	return v, true
}
