package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestRouteZeroAllocations pins the /route hot path — query parse, snapshot
// lookup, and JSON encode into a reused buffer — at zero steady-state
// allocations. If this test starts failing, something on the data plane
// grew an allocation; fix it rather than relaxing the bound.
func TestRouteZeroAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	s := testServer(t, 30, 6, 11)
	snap := s.Snapshot()

	// Pre-built raw queries cycling over real pairs plus the 404 shapes, so
	// both the success and error encode paths are pinned.
	var queries []string
	for vi := range snap.Inst.Demands {
		queries = append(queries, fmt.Sprintf("video=%d&vho=%d",
			snap.Inst.Demands[vi].Video, vi%snap.NumVHOs()))
	}
	queries = append(queries, "video=999999&vho=0", "video=0&vho=999999")

	buf := make([]byte, 0, 256)
	// Warm-up: size the buffer to the longest response before measuring.
	for _, q := range queries {
		if v, j, ok := parseRouteQuery(q); ok {
			buf, _ = snap.AppendRoute(buf[:0], v, j)
		}
	}

	var idx int
	avg := testing.AllocsPerRun(500, func() {
		q := queries[idx%len(queries)]
		idx++
		v, j, ok := parseRouteQuery(q)
		if !ok {
			t.Fatalf("parseRouteQuery(%q) failed", q)
		}
		buf, _ = snap.AppendRoute(buf[:0], v, j)
	})
	if avg != 0 {
		t.Errorf("route hot path allocates %.1f times per lookup, want 0", avg)
	}

	// The instrumented path: the same work handleRoute does per request
	// with latency recording enabled — clock read, parse, lookup, encode,
	// instrument update — must also stay allocation-free.
	idx = 0
	avg = testing.AllocsPerRun(500, func() {
		t0 := time.Now()
		q := queries[idx%len(queries)]
		idx++
		v, j, ok := parseRouteQuery(q)
		if !ok {
			t.Fatalf("parseRouteQuery(%q) failed", q)
		}
		var status int
		buf, status = snap.AppendRoute(buf[:0], v, j)
		s.reqRoute.Record(status, time.Since(t0))
	})
	if avg != 0 {
		t.Errorf("instrumented route path allocates %.1f times per lookup, want 0", avg)
	}
	if got := s.reqRoute.Requests(); got == 0 {
		t.Error("instrument recorded nothing")
	}
}
