package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vodplace/internal/catalog"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

// testInstance builds a small seeded placement instance the same way the
// daemon does: synthetic catalog + trace, demand estimated from the first
// week of history.
func testInstance(tb testing.TB, videos, vhos int, seed int64) *mip.Instance {
	tb.Helper()
	g := topology.Random(vhos, 1.4, seed)
	lib := catalog.Generate(catalog.Config{NumVideos: videos, Weeks: 2}, seed+10)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 8, NumVHOs: vhos, RequestsPerVideoPerDay: 4,
	}, seed+20)
	per := lib.TotalSizeGB() * 2.0 / float64(vhos)
	disk := make([]float64, vhos)
	for i := range disk {
		disk[i] = per
	}
	link := make([]float64, g.NumLinks())
	for l := range link {
		link[l] = 1000
	}
	b := &demand.Builder{
		G: g, Lib: lib, DiskGB: disk, LinkCapMbps: link,
		Cfg: demand.Config{Slices: 2, WindowSec: 3600, HorizonDays: 7},
	}
	inst, err := b.Instance(tr, 7)
	if err != nil {
		tb.Fatalf("building test instance: %v", err)
	}
	return inst
}

// testServer solves the instance and starts a server with converging solver
// settings (re-solves must pass the Converged gate to swap).
func testServer(tb testing.TB, videos, vhos int, seed int64) *Server {
	tb.Helper()
	inst := testInstance(tb, videos, vhos, seed)
	s, err := New(inst, Config{Solver: epf.Options{Seed: seed, MaxPasses: 200, Epsilon: 0.02}})
	if err != nil {
		tb.Fatalf("serve.New: %v", err)
	}
	tb.Cleanup(s.Close)
	return s
}

// cheapestCopy is the from-scratch recomputation the route table is checked
// against: scan the video's open copies (y ≥ 0.5) and return the office
// with minimal transfer cost to j, lowest index on ties; -1 when none.
func cheapestCopy(inst *mip.Instance, sol *mip.Solution, vi, j int) int {
	best, bestCost := -1, 0.0
	for _, f := range sol.Videos[vi].Open {
		if f.V < openY {
			continue
		}
		c := inst.Cost(int(f.I), j)
		if best == -1 || c < bestCost || (c == bestCost && int(f.I) < best) {
			best, bestCost = int(f.I), c
		}
	}
	return best
}

type routeResp struct {
	Video   int     `json:"video"`
	VHO     int     `json:"vho"`
	Serve   int     `json:"serve"`
	Hops    int     `json:"hops"`
	Cost    float64 `json:"cost"`
	Version uint64  `json:"version"`
	Error   string  `json:"error"`
}

func getJSON(tb testing.TB, ts *httptest.Server, path string, out any) int {
	tb.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		tb.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tb.Fatalf("GET %s: decoding body: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestRouteCorrectness cross-checks every (video, vho) pair the server can
// be asked about against the from-scratch cheapest-copy recomputation.
func TestRouteCorrectness(t *testing.T) {
	s := testServer(t, 40, 8, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	snap := s.Snapshot()
	inst, sol := snap.Inst, snap.Sol
	checked := 0
	for vi := range inst.Demands {
		id := inst.Demands[vi].Video
		for j := 0; j < inst.NumVHOs(); j++ {
			var rr routeResp
			code := getJSON(t, ts, fmt.Sprintf("/route?video=%d&vho=%d", id, j), &rr)
			want := cheapestCopy(inst, sol, vi, j)
			if want < 0 {
				if code != http.StatusNotFound || rr.Error != "unreachable" {
					t.Fatalf("video %d vho %d: want unreachable 404, got %d %+v", id, j, code, rr)
				}
				continue
			}
			if code != http.StatusOK {
				t.Fatalf("video %d vho %d: status %d, want 200", id, j, code)
			}
			if rr.Serve != want {
				t.Errorf("video %d vho %d: routed to %d, from-scratch cheapest copy is %d", id, j, rr.Serve, want)
			}
			if rr.Cost != inst.Cost(want, j) {
				t.Errorf("video %d vho %d: cost %g, want %g", id, j, rr.Cost, inst.Cost(want, j))
			}
			if rr.Hops != inst.Hops(want, j) {
				t.Errorf("video %d vho %d: hops %d, want %d", id, j, rr.Hops, inst.Hops(want, j))
			}
			if rr.Version != 1 {
				t.Errorf("video %d vho %d: version %d, want 1", id, j, rr.Version)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no routable pairs checked")
	}
	if got := s.Stats().RouteRequests; got < int64(checked) {
		t.Errorf("route_requests counter %d, want >= %d", got, checked)
	}
}

// TestRouteContracts pins the 400/404/405 behavior of the hot endpoint.
func TestRouteContracts(t *testing.T) {
	s := testServer(t, 20, 6, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := s.Snapshot().Inst.Demands[0].Video
	for _, tc := range []struct {
		path    string
		code    int
		errWant string
	}{
		{"/route", 400, "bad request"},
		{fmt.Sprintf("/route?video=%d", id), 400, "bad request"},
		{"/route?vho=0", 400, "bad request"},
		{fmt.Sprintf("/route?video=%d&vho=abc", id), 400, "bad request"},
		{fmt.Sprintf("/route?video=-1&vho=0"), 400, "bad request"},
		{fmt.Sprintf("/route?video=%d&vho=0&video=%d", id, id), 400, "bad request"},
		{fmt.Sprintf("/route?video=%d&vho=0%%31", id), 400, "bad request"},
		{"/route?video=999999&vho=0", 404, "unknown video"},
		{fmt.Sprintf("/route?video=%d&vho=999", id), 404, "unknown vho"},
		{fmt.Sprintf("/route?video=%d&vho=0&extra=1", id), 200, ""},
	} {
		var rr routeResp
		code := getJSON(t, ts, tc.path, &rr)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.path, code, tc.code)
		}
		if tc.errWant != "" && !strings.Contains(rr.Error, tc.errWant) {
			t.Errorf("%s: error %q, want containing %q", tc.path, rr.Error, tc.errWant)
		}
	}

	resp, err := ts.Client().Post(ts.URL+"/route?video=0&vho=0", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /route: status %d, want 405", resp.StatusCode)
	}
}

// TestRouteUnreachable drives the handler over a hand-built placement with
// an uncovered video: the pair must be reported unreachable, not mis-routed
// to a default office.
func TestRouteUnreachable(t *testing.T) {
	g := topology.Tree(4)
	inst, err := mip.NewInstance(g, []float64{100, 100, 100, 100}, uniform(g.NumLinks(), 1000), 1, []mip.VideoDemand{
		{Video: 0, SizeGB: 1, RateMbps: 1, Js: []int32{1}, Agg: []float64{2}, Conc: [][]float64{{1}}},
		{Video: 7, SizeGB: 1, RateMbps: 1, Js: []int32{2}, Agg: []float64{2}, Conc: [][]float64{{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sol := mip.NewSolution(inst)
	sol.Videos[0].Open = []mip.Frac{{I: 3, V: 1}}
	// Video 7 has a fractional 0.4 copy only: below the serving threshold,
	// so every (7, j) pair is unreachable.
	sol.Videos[1].Open = []mip.Frac{{I: 0, V: 0.4}}
	s, err := NewWithResult(inst, &epf.Result{Sol: sol}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var rr routeResp
	if code := getJSON(t, ts, "/route?video=0&vho=1", &rr); code != 200 || rr.Serve != 3 {
		t.Fatalf("video 0: got code %d resp %+v, want routed to office 3", code, rr)
	}
	if code := getJSON(t, ts, "/route?video=7&vho=2", &rr); code != 404 || rr.Error != "unreachable" {
		t.Fatalf("video 7: got code %d resp %+v, want 404 unreachable", code, rr)
	}
	// Library id 3 sits inside the vidIdx range but belongs to no instance
	// video: unknown, not unreachable.
	if code := getJSON(t, ts, "/route?video=3&vho=0", &rr); code != 404 || rr.Error != "unknown video" {
		t.Fatalf("video 3: got code %d resp %+v, want 404 unknown video", code, rr)
	}
}

func uniform(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestPlacementEndpoint(t *testing.T) {
	s := testServer(t, 25, 6, 3)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var got struct {
		Version   uint64 `json:"version"`
		Certified bool   `json:"certified"`
		Videos    []struct {
			Video int   `json:"video"`
			Open  []int `json:"open"`
		} `json:"videos"`
	}
	if code := getJSON(t, ts, "/placement", &got); code != 200 {
		t.Fatalf("status %d, want 200", code)
	}
	snap := s.Snapshot()
	if got.Version != 1 || !got.Certified {
		t.Errorf("version %d certified %v, want 1/true", got.Version, got.Certified)
	}
	if len(got.Videos) != len(snap.Sol.Videos) {
		t.Fatalf("%d videos in response, want %d", len(got.Videos), len(snap.Sol.Videos))
	}
	for vi, row := range got.Videos {
		if row.Video != snap.Inst.Demands[vi].Video {
			t.Errorf("video %d: id %d, want %d", vi, row.Video, snap.Inst.Demands[vi].Video)
		}
		var want []int
		for _, f := range snap.Sol.Videos[vi].Open {
			if f.V >= openY {
				want = append(want, int(f.I))
			}
		}
		if len(row.Open) != len(want) {
			t.Errorf("video %d: open %v, want %v", row.Video, row.Open, want)
			continue
		}
		for k := range want {
			if row.Open[k] != want[k] {
				t.Errorf("video %d: open %v, want %v", row.Video, row.Open, want)
				break
			}
		}
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t, 20, 6, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 || body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q, want 200 \"ok\\n\"", resp.StatusCode, body.String())
	}
}

func TestStatusEndpoint(t *testing.T) {
	s := testServer(t, 20, 6, 5)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st statusJSON
	if code := getJSON(t, ts, "/status", &st); code != 200 {
		t.Fatalf("status %d, want 200", code)
	}
	snap := s.Snapshot()
	if st.Version != 1 || !st.Certified {
		t.Errorf("version %d certified %v, want 1/true", st.Version, st.Certified)
	}
	if st.Videos != snap.NumVideos() || st.VHOs != snap.NumVHOs() {
		t.Errorf("videos/vhos %d/%d, want %d/%d", st.Videos, st.VHOs, snap.NumVideos(), snap.NumVHOs())
	}
	if st.LastPasses <= 0 {
		t.Errorf("last_passes %d, want > 0", st.LastPasses)
	}

	// Counters move: one good route, one routing error.
	getJSON(t, ts, fmt.Sprintf("/route?video=%d&vho=0", snap.Inst.Demands[0].Video), nil)
	getJSON(t, ts, "/route?video=99999&vho=0", nil)
	var st2 statusJSON
	getJSON(t, ts, "/status", &st2)
	if st2.RouteRequests != st.RouteRequests+2 {
		t.Errorf("route_requests %d, want %d", st2.RouteRequests, st.RouteRequests+2)
	}
	if st2.RouteErrors != st.RouteErrors+1 {
		t.Errorf("route_errors %d, want %d", st2.RouteErrors, st.RouteErrors+1)
	}
}

func TestDemandEndpoint(t *testing.T) {
	s := testServer(t, 30, 6, 6)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	snap := s.Snapshot()
	id := snap.Inst.Demands[0].Video

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/demand", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode, b.String()
	}

	for _, tc := range []struct {
		body string
		code int
	}{
		{"not json", 400},
		{"[]", 400},
		{`[{"video":999999,"vho":0,"add":1}]`, 400},                                               // unknown video
		{fmt.Sprintf(`[{"video":%d,"vho":999,"add":1}]`, id), 400},                                // vho out of range
		{fmt.Sprintf(`[{"video":%d,"vho":0,"bogus":1}]`, id), 400},                                // unknown field
		{fmt.Sprintf(`[{"video":%d,"vho":0,"add":1e999}]`, id), 400},                              // non-finite
		{fmt.Sprintf(`[{"video":%d,"vho":0,"add":1},{"video":999999,"vho":0,"add":1}]`, id), 400}, // bad entry rejects whole batch
	} {
		if code, body := post(tc.body); code != tc.code {
			t.Errorf("POST %q: status %d (%s), want %d", tc.body, code, strings.TrimSpace(body), tc.code)
		}
	}
	if got := s.Stats().DemandUpdates; got != 0 {
		t.Fatalf("rejected batches counted as %d accepted updates, want 0", got)
	}

	// GET /demand is 405.
	resp, err := ts.Client().Get(ts.URL + "/demand")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /demand: status %d, want 405", resp.StatusCode)
	}

	// A valid batch is accepted and triggers an audit-gated background
	// re-solve that swaps in a new certified snapshot.
	var entries []string
	for vi := 0; vi < len(snap.Inst.Demands) && vi < 8; vi++ {
		entries = append(entries, fmt.Sprintf(`{"video":%d,"vho":%d,"add":40}`,
			snap.Inst.Demands[vi].Video, vi%snap.NumVHOs()))
	}
	code, body := post("[" + strings.Join(entries, ",") + "]")
	if code != http.StatusAccepted {
		t.Fatalf("valid batch: status %d (%s), want 202", code, body)
	}
	if got := s.Stats().DemandUpdates; got != int64(len(entries)) {
		t.Errorf("demand_updates %d, want %d", got, len(entries))
	}

	deadline := time.Now().Add(30 * time.Second)
	for s.Snapshot().Version < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot swap within deadline; stats %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	next := s.Snapshot()
	if !next.Certified {
		t.Error("swapped snapshot not certified")
	}
	if got := s.Stats().ResolvesSwapped; got < 1 {
		t.Errorf("resolves_swapped %d, want >= 1", got)
	}
	// Routes answered from the new snapshot remain internally consistent.
	for j := 0; j < next.NumVHOs(); j++ {
		var rr routeResp
		codeJ := getJSON(t, ts, fmt.Sprintf("/route?video=%d&vho=%d", id, j), &rr)
		want := cheapestCopy(next.Inst, next.Sol, 0, j)
		if want < 0 {
			continue
		}
		if codeJ != 200 || rr.Serve != want {
			t.Errorf("post-swap route video %d vho %d: code %d serve %d, want 200 serve %d", id, j, codeJ, rr.Serve, want)
		}
	}
}

// TestDemandStateRoundTrip: streaming the state back through the instance
// builder reproduces the seed instance's demands bit for bit.
func TestDemandStateRoundTrip(t *testing.T) {
	inst := testInstance(t, 35, 7, 9)
	st := stateFromInstance(inst)
	re, err := st.instance(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Demands) != len(inst.Demands) {
		t.Fatalf("%d demands after round trip, want %d", len(re.Demands), len(inst.Demands))
	}
	for vi := range inst.Demands {
		a, b := &inst.Demands[vi], &re.Demands[vi]
		if a.Video != b.Video || a.SizeGB != b.SizeGB || a.RateMbps != b.RateMbps {
			t.Fatalf("video %d: header mismatch", vi)
		}
		if len(a.Js) != len(b.Js) {
			t.Fatalf("video %d: %d offices, want %d", vi, len(b.Js), len(a.Js))
		}
		for k := range a.Js {
			if a.Js[k] != b.Js[k] || a.Agg[k] != b.Agg[k] {
				t.Fatalf("video %d office %d: agg mismatch", vi, k)
			}
			at, av := a.ConcNZ(k)
			bt, bv := b.ConcNZ(k)
			if len(at) != len(bt) {
				t.Fatalf("video %d office %d: conc nnz mismatch", vi, k)
			}
			for x := range at {
				if at[x] != bt[x] || av[x] != bv[x] {
					t.Fatalf("video %d office %d: conc mismatch", vi, k)
				}
			}
		}
	}
}

func TestParseRouteQuery(t *testing.T) {
	for _, tc := range []struct {
		q          string
		video, vho int
		ok         bool
	}{
		{"video=3&vho=7", 3, 7, true},
		{"vho=7&video=3", 3, 7, true},
		{"video=3&vho=7&other=x", 3, 7, true},
		{"video=0&vho=0", 0, 0, true},
		{"", 0, 0, false},
		{"video=3", 0, 0, false},
		{"vho=3", 0, 0, false},
		{"video=&vho=1", 0, 0, false},
		{"video=3&vho=1&video=3", 0, 0, false},
		{"video=-1&vho=1", 0, 0, false},
		{"video=3.5&vho=1", 0, 0, false},
		{"video=abc&vho=1", 0, 0, false},
		{"video=3&vho=1%31", 0, 0, false},
		{"video=9999999999&vho=1", 0, 0, false},
		{"video", 0, 0, false},
	} {
		v, j, ok := parseRouteQuery(tc.q)
		if ok != tc.ok || (ok && (v != tc.video || j != tc.vho)) {
			t.Errorf("parseRouteQuery(%q) = (%d, %d, %v), want (%d, %d, %v)", tc.q, v, j, ok, tc.video, tc.vho, tc.ok)
		}
	}
}
