package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/obs"
	"vodplace/internal/verify"
)

// resolveLoop is the control plane: it waits for demand to change and runs
// one audited re-solve per wakeup. The channel has capacity 1, so bursts of
// updates arriving during a solve coalesce into a single follow-up solve
// over the then-current state.
func (s *Server) resolveLoop(ctx context.Context) {
	defer close(s.done)
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.resolveCh:
		}
		if _, err := s.resolveOnce(ctx); err != nil && !errors.Is(err, context.Canceled) {
			s.logf("serve: resolve failed: %v", err)
		}
		if ctx.Err() != nil {
			return
		}
	}
}

// kickResolve schedules a background re-solve (coalescing with any already
// pending).
func (s *Server) kickResolve() {
	select {
	case s.resolveCh <- struct{}{}:
	default:
	}
}

// resolveOnce brings the live instance up to date with the demand state,
// solves it (warm-started from the last swapped-in solve unless disabled),
// audits the result, and — only if the audit passes and the solve converged
// — swaps a new snapshot in. The default delta path patches just the
// demand-dirty videos of the live instance in place (state.patchInstance)
// and hands the incremental snapshot build the set of videos dirtied since
// the published snapshot, so both the instance refresh and the route-table
// build cost O(changed) instead of O(catalog); DeltaOff (or a patch
// failure) falls back to the full re-stream, which is bit-identical
// (DESIGN.md §15). On any rejection the old snapshot keeps serving, the
// matching counter is incremented, and the reject reason is kept for
// /status; a cancellation (shutdown) discards the partial solve. The whole
// attempt is bracketed by serve_resolve start/done trace events (done
// carries the dirty count and rows rebuilt), and a swap additionally emits
// serve_swap with the route-table churn and delta economy. Returns the
// swapped-in snapshot, or nil when nothing was swapped.
func (s *Server) resolveOnce(ctx context.Context) (*Snapshot, error) {
	s.mu.Lock()
	if !s.dirty {
		s.mu.Unlock()
		return nil, nil
	}
	s.dirty = false
	dirty := s.state.drainDirty()
	catalog := len(s.state.rows)
	var inst *mip.Instance
	var err error
	delta := !s.cfg.DeltaOff && s.live != nil
	if delta {
		inst = s.live
		if perr := s.state.patchInstance(inst, dirty); perr != nil {
			// Should not happen — the state already validated these rows —
			// but a half-applied patch is recoverable: fall back to the full
			// rebuild, which replaces the live instance wholesale.
			s.logf("serve: demand patch failed, rebuilding from scratch: %v", perr)
			delta = false
		}
	}
	if !delta {
		inst, err = s.state.instance(s.base)
		if err == nil {
			s.live = inst
		} else {
			// The drained dirty rows never reached an instance; drop the
			// stale live so the next attempt rebuilds rather than patching
			// an instance that missed them.
			s.live = nil
		}
	}
	// Remember what this attempt dirtied until a snapshot actually
	// publishes: a rejected attempt leaves its patches in the live
	// instance, so the next successful build must still treat those rows
	// as suspect.
	for _, vi := range dirty {
		s.snapDirty[vi] = struct{}{}
	}
	snapDirty := make([]int, 0, len(s.snapDirty))
	for vi := range s.snapDirty {
		snapDirty = append(snapDirty, vi)
	}
	sort.Ints(snapDirty)
	warm := s.warm
	driftAtSolve := s.state.drift
	s.mu.Unlock()
	s.resolvesStarted.Add(1)
	if delta && catalog > 0 {
		s.deltaGauge.Set(float64(len(dirty)) / float64(catalog))
	} else {
		s.deltaGauge.Set(1)
	}

	cur := s.store.Load()
	rec := s.cfg.Recorder
	rec.RecordServeResolve(obs.ServeResolve{
		Phase: "start", Version: int64(cur.Version + 1), Trigger: "demand",
	})
	// done accumulates the attempt's outcome; every return path below emits
	// it exactly once.
	done := obs.ServeResolve{
		Phase: "done", Version: int64(cur.Version + 1), Trigger: "demand",
		Dirty: len(dirty),
	}
	if err != nil {
		s.resolvesFailed.Add(1)
		done.Verdict, done.Reason = "failed", err.Error()
		rec.RecordServeResolve(done)
		s.setLastReject("rebuild failed: " + err.Error())
		return nil, fmt.Errorf("serve: rebuilding instance: %w", err)
	}

	if s.cfg.UpdateWeight > 0 {
		inst.UpdateWeight = s.cfg.UpdateWeight
		inst.Origin = originsFromSnapshot(inst, cur)
	}

	opts := s.cfg.Solver
	opts.Recorder = s.cfg.Recorder
	opts.TraceStream = fmt.Sprintf("serve.v%d", cur.Version+1)
	if !s.cfg.WarmOff {
		opts.Warm = warm
	}
	if delta {
		// Full rebuilds re-stream the whole catalog, so per the
		// epf.Options/Stats contract they pass no dirty list — every video
		// is suspect, and Stats.DirtyVideos/ShardDirtyFrac stay zero.
		opts.DirtyVideos = dirty
	}
	tSolve := time.Now()
	res, err := epf.SolveIntegerContext(ctx, inst, opts)
	done.SolveMS = float64(time.Since(tSolve).Nanoseconds()) / 1e6
	if res != nil {
		done.Passes = res.Passes
		if nv := len(inst.Demands); nv > 0 {
			done.WarmFrac = float64(res.Stats.WarmVideos) / float64(nv)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			s.resolvesCancel.Add(1)
			done.Verdict = "cancelled"
			rec.RecordServeResolve(done)
			s.logf("serve: resolve discarded (shutdown) after %d passes", res.Passes)
			return nil, err
		}
		s.resolvesFailed.Add(1)
		done.Verdict, done.Reason = "failed", err.Error()
		rec.RecordServeResolve(done)
		s.setLastReject("solve failed: " + err.Error())
		return nil, fmt.Errorf("serve: re-solve: %w", err)
	}

	// The swap gate: the data plane only ever serves certified placements.
	// An audit failure means the solver's claims were wrong — keep the old
	// snapshot and record the rejection.
	tAudit := time.Now()
	rep := verify.Audit(inst, res)
	done.AuditMS = float64(time.Since(tAudit).Nanoseconds()) / 1e6
	if !rep.Ok() {
		s.auditRejected.Add(1)
		reason := "audit: " + rep.Err().Error()
		done.Verdict, done.Reason = "audit_rejected", reason
		rec.RecordServeResolve(done)
		s.setLastReject(reason)
		s.logf("serve: resolve rejected by audit, keeping v%d: %v", cur.Version, rep.Err())
		return nil, nil
	}
	if !res.Converged {
		s.unconverged.Add(1)
		reason := fmt.Sprintf("unconverged after %d passes", res.Passes)
		done.Verdict, done.Reason = "unconverged", reason
		rec.RecordServeResolve(done)
		s.setLastReject(reason)
		s.logf("serve: resolve did not converge (%d passes), keeping v%d", res.Passes, cur.Version)
		return nil, nil
	}

	tBuild := time.Now()
	snap, rebuilt, err := buildSnapshotFrom(cur, snapDirty, inst, res.Sol, cur.Version+1, true)
	if err != nil {
		s.resolvesFailed.Add(1)
		done.Verdict, done.Reason = "failed", err.Error()
		rec.RecordServeResolve(done)
		s.setLastReject("snapshot build failed: " + err.Error())
		return nil, fmt.Errorf("serve: building snapshot: %w", err)
	}
	rdelta := routeDelta(cur, snap)
	s.store.Store(snap)
	done.BuildMS = float64(time.Since(tBuild).Nanoseconds()) / 1e6
	done.Rebuilt = rebuilt
	s.mu.Lock()
	s.warm = res.Warm
	s.lastPasses = res.Passes
	s.lastGap = res.Gap
	// The published snapshot now reflects every row dirtied so far.
	clear(s.snapDirty)
	// The swap covered the demand mass captured at solve start; whatever
	// arrived since stays counted as drift against the new snapshot.
	s.state.drift -= driftAtSolve
	if s.state.drift < 0 {
		s.state.drift = 0
	}
	s.mu.Unlock()
	s.resolvesSwapped.Add(1)
	rec.RecordServeSwap(obs.ServeSwap{
		Version: int64(snap.Version), RDelta: rdelta, BuildMS: done.BuildMS,
		Rebuilt: rebuilt, Rows: int64(len(inst.Demands)),
	})
	done.Verdict = "swapped"
	rec.RecordServeResolve(done)
	s.logf("serve: placement v%d swapped in (%d passes, gap %.2f%%, objective %.1f GB)",
		snap.Version, res.Passes, 100*res.Gap, res.Objective)
	return snap, nil
}

// originsFromSnapshot maps each video of the new instance to an office
// currently serving it (the migration-cost origin of objective (11)).
// Videos the served placement does not hold get the −1 "no prior copy"
// sentinel.
func originsFromSnapshot(inst *mip.Instance, snap *Snapshot) []int32 {
	out := make([]int32, len(inst.Demands))
	for vi := range inst.Demands {
		out[vi] = -1
		id := inst.Demands[vi].Video
		if id < 0 || id >= len(snap.vidIdx) {
			continue
		}
		pv := snap.vidIdx[id]
		if pv < 0 {
			continue
		}
		for _, f := range snap.Sol.Videos[pv].Open {
			if f.V >= openY {
				out[vi] = f.I
				break
			}
		}
	}
	return out
}
