// Package simplex is a self-contained dense two-phase primal simplex LP
// solver. It plays the role CPLEX plays in the paper's Table III: a
// general-purpose LP method that solves the full placement LP relaxation
// exactly, but whose time and memory blow up superlinearly with library
// size — the comparison point that motivates the EPF decomposition. It also
// cross-validates the EPF solver's objective and lower bound on small
// instances in the integration tests.
//
// The implementation is a textbook dense tableau: constraints are
// standardized to equalities with slack/surplus variables, phase 1
// minimizes the sum of artificial variables, phase 2 the real objective.
// Dantzig pricing with a Bland's-rule fallback provides anti-cycling.
package simplex

import (
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

// Coef is one sparse constraint coefficient.
type Coef struct {
	Var int
	Val float64
}

type row struct {
	op    Op
	rhs   float64
	coefs []Coef
}

// LP is a linear program: minimize C·x subject to the added rows and x ≥ 0.
type LP struct {
	numVars int
	c       []float64
	rows    []row
}

// NewLP returns an LP with numVars non-negative variables and zero objective.
func NewLP(numVars int) *LP {
	return &LP{numVars: numVars, c: make([]float64, numVars)}
}

// NumVars returns the number of variables.
func (lp *LP) NumVars() int { return lp.numVars }

// NumRows returns the number of constraints.
func (lp *LP) NumRows() int { return len(lp.rows) }

// SetObjective sets the cost of variable v.
func (lp *LP) SetObjective(v int, cost float64) {
	lp.c[v] = cost
}

// AddRow adds the constraint Σ coefs {op} rhs.
func (lp *LP) AddRow(op Op, rhs float64, coefs ...Coef) error {
	for _, cf := range coefs {
		if cf.Var < 0 || cf.Var >= lp.numVars {
			return fmt.Errorf("simplex: coefficient references variable %d of %d", cf.Var, lp.numVars)
		}
	}
	lp.rows = append(lp.rows, row{op: op, rhs: rhs, coefs: append([]Coef(nil), coefs...)})
	return nil
}

// Status is the solver outcome.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result is the solver output.
type Result struct {
	Status    Status
	Objective float64
	X         []float64
}

const (
	tol = 1e-9
	// blandAfter switches to Bland's rule after this many Dantzig pivots
	// without termination, guaranteeing no cycling.
	blandAfter = 20000
)

// Solve runs two-phase primal simplex and returns the result. Memory is
// O(rows × (vars + rows)) — the point of the Table III comparison.
func Solve(lp *LP) (Result, error) {
	m := len(lp.rows)
	n := lp.numVars
	if m == 0 {
		// Unconstrained: x = 0 is optimal for non-negative costs; a negative
		// cost makes the LP unbounded.
		for _, c := range lp.c {
			if c < -tol {
				return Result{Status: Unbounded}, nil
			}
		}
		return Result{Status: Optimal, X: make([]float64, n)}, nil
	}

	// Standardize: count slack and artificial columns.
	numSlack := 0
	numArt := 0
	for _, r := range lp.rows {
		op, rhs := r.op, r.rhs
		if rhs < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	total := n + numSlack + numArt
	width := total + 1 // + rhs column

	// Build tableau rows.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt := n
	artAt := n + numSlack
	artCols := make([]bool, total)
	for i, r := range lp.rows {
		tr := make([]float64, width)
		sign := 1.0
		op := r.op
		if r.rhs < 0 {
			sign = -1
			op = flip(op)
		}
		for _, cf := range r.coefs {
			tr[cf.Var] += sign * cf.Val
		}
		tr[total] = sign * r.rhs
		switch op {
		case LE:
			tr[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			tr[slackAt] = -1
			slackAt++
			tr[artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		case EQ:
			tr[artAt] = 1
			basis[i] = artAt
			artCols[artAt] = true
			artAt++
		}
		tab[i] = tr
	}

	// Phase 1: minimize the sum of artificials.
	if numArt > 0 {
		// Reduced-cost row for min Σ artificials: start from the phase-1
		// cost vector (1 on artificial columns), then price out the
		// artificial basis.
		objRow := make([]float64, width)
		for c := 0; c < total; c++ {
			if artCols[c] {
				objRow[c] = 1
			}
		}
		for i := range tab {
			if artCols[basis[i]] {
				for c := 0; c < width; c++ {
					objRow[c] -= tab[i][c]
				}
			}
		}
		status := iterate(tab, basis, objRow, artCols, true)
		if status == Unbounded {
			return Result{Status: Infeasible}, nil
		}
		if status == IterLimit {
			return Result{Status: IterLimit}, nil
		}
		if -objRow[total] > 1e-6 {
			return Result{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis when possible; rows
		// whose artificial cannot leave are redundant and stay at zero.
		for i := range basis {
			if !artCols[basis[i]] {
				continue
			}
			for c := 0; c < n+numSlack; c++ {
				if math.Abs(tab[i][c]) > 1e-7 && !artCols[c] {
					pivot(tab, basis, i, c)
					break
				}
			}
		}
	}

	// Phase 2: the real objective. Reduced-cost row from original costs.
	objRow := make([]float64, width)
	for v := 0; v < n; v++ {
		objRow[v] = lp.c[v]
	}
	for i := range tab {
		bv := basis[i]
		if bv < n && lp.c[bv] != 0 {
			coef := lp.c[bv]
			for c := 0; c < width; c++ {
				objRow[c] -= coef * tab[i][c]
			}
		}
	}
	status := iterate(tab, basis, objRow, artCols, false)
	if status != Optimal {
		return Result{Status: status}, nil
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = tab[i][total]
		}
	}
	var obj float64
	for v := 0; v < n; v++ {
		obj += lp.c[v] * x[v]
	}
	return Result{Status: Optimal, Objective: obj, X: x}, nil
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// iterate runs simplex pivots on the tableau until optimality (no negative
// reduced cost), unboundedness, or the iteration cap. In phase 1
// (phase1=true) artificial columns may re-enter only while... they may not
// re-enter at all once their reduced cost is non-negative; in phase 2 they
// are excluded entirely.
func iterate(tab [][]float64, basis []int, objRow []float64, artCols []bool, phase1 bool) Status {
	m := len(tab)
	width := len(objRow)
	total := width - 1
	for iter := 0; ; iter++ {
		if iter > blandAfter*4 {
			return IterLimit
		}
		bland := iter > blandAfter
		// Entering column: most negative reduced cost (Dantzig) or first
		// negative (Bland).
		enter := -1
		best := -tol
		for c := 0; c < total; c++ {
			if !phase1 && artCols[c] {
				continue
			}
			rc := objRow[c]
			if rc < best {
				enter = c
				if bland {
					break
				}
				best = rc
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > tol {
				ratio := tab[i][total] / a
				if ratio < bestRatio-tol || (bland && ratio < bestRatio+tol && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		pivotWithObj(tab, basis, objRow, leave, enter)
	}
}

// pivot performs a basis exchange on constraint rows only.
func pivot(tab [][]float64, basis []int, r, c int) {
	width := len(tab[r])
	pv := tab[r][c]
	inv := 1 / pv
	for j := 0; j < width; j++ {
		tab[r][j] *= inv
	}
	tab[r][c] = 1 // exact
	for i := range tab {
		if i == r {
			continue
		}
		f := tab[i][c]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[r][j]
		}
		tab[i][c] = 0
	}
	basis[r] = c
}

// pivotWithObj is pivot plus the objective-row update.
func pivotWithObj(tab [][]float64, basis []int, objRow []float64, r, c int) {
	pivot(tab, basis, r, c)
	f := objRow[c]
	if f != 0 {
		width := len(objRow)
		for j := 0; j < width; j++ {
			objRow[j] -= f * tab[r][j]
		}
		objRow[c] = 0
	}
}
