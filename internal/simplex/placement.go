package simplex

import (
	"vodplace/internal/mip"
)

// VarMap records where each placement variable lives in the flat LP vector.
type VarMap struct {
	inst *mip.Instance
	// yBase[vi] is the index of y_0 for video vi; y_i is yBase[vi]+i.
	yBase []int
	// xBase[vi] is the index of x for video vi's first demand office; the
	// variable for demand index k served from office i is xBase[vi]+k*n+i.
	xBase []int
	n     int
}

// YVar returns the LP variable index of y_i^m for video index vi.
func (vm *VarMap) YVar(vi, i int) int { return vm.yBase[vi] + i }

// XVar returns the LP variable index of x for video vi, demand index k,
// serving office i.
func (vm *VarMap) XVar(vi, k, i int) int { return vm.xBase[vi] + k*vm.n + i }

// BuildPlacementLP converts a placement instance into its full LP
// relaxation: objective (2) (plus the update term of (11) when configured),
// constraints (3)-(7) and the relaxation y ≤ 1 of (8). This is exactly the
// LP the paper hands to CPLEX.
func BuildPlacementLP(inst *mip.Instance) (*LP, *VarMap, error) {
	n := inst.NumVHOs()
	vm := &VarMap{inst: inst, n: n}
	numVars := 0
	for vi := range inst.Demands {
		vm.yBase = append(vm.yBase, numVars)
		numVars += n
		vm.xBase = append(vm.xBase, numVars)
		numVars += len(inst.Demands[vi].Js) * n
	}
	lp := NewLP(numVars)

	for vi := range inst.Demands {
		d := &inst.Demands[vi]
		// Objective and per-video constraints.
		for i := 0; i < n; i++ {
			if inst.UpdateWeight != 0 {
				lp.SetObjective(vm.YVar(vi, i), inst.PlacementCost(vi, i))
			}
			// y_i ≤ 1 (relaxed integrality).
			if err := lp.AddRow(LE, 1, Coef{vm.YVar(vi, i), 1}); err != nil {
				return nil, nil, err
			}
		}
		for k := range d.Js {
			j := int(d.Js[k])
			coefs := make([]Coef, n)
			for i := 0; i < n; i++ {
				xv := vm.XVar(vi, k, i)
				lp.SetObjective(xv, d.SizeGB*d.Agg[k]*inst.Cost(i, j))
				coefs[i] = Coef{xv, 1}
				// x_ij ≤ y_i.
				if err := lp.AddRow(LE, 0, Coef{xv, 1}, Coef{vm.YVar(vi, i), -1}); err != nil {
					return nil, nil, err
				}
			}
			// Σ_i x_ij = 1.
			if err := lp.AddRow(EQ, 1, coefs...); err != nil {
				return nil, nil, err
			}
		}
		if len(d.Js) == 0 {
			// Zero-demand videos must still be stored: Σ_i y_i ≥ 1.
			coefs := make([]Coef, n)
			for i := 0; i < n; i++ {
				coefs[i] = Coef{vm.YVar(vi, i), 1}
			}
			if err := lp.AddRow(GE, 1, coefs...); err != nil {
				return nil, nil, err
			}
		}
	}

	// Disk constraints (5).
	for i := 0; i < n; i++ {
		coefs := make([]Coef, 0, len(inst.Demands))
		for vi := range inst.Demands {
			coefs = append(coefs, Coef{vm.YVar(vi, i), inst.Demands[vi].SizeGB})
		}
		if err := lp.AddRow(LE, inst.DiskGB[i], coefs...); err != nil {
			return nil, nil, err
		}
	}

	// Link constraints (6): Σ_m Σ_{i,j: l ∈ P_ij} r^m f_j^m(t) x_ij ≤ B_l.
	for t := 0; t < inst.Slices; t++ {
		coefs := make([][]Coef, inst.G.NumLinks())
		for vi := range inst.Demands {
			d := &inst.Demands[vi]
			for k := range d.Js {
				j := int(d.Js[k])
				f := d.ConcAt(t, k)
				if f == 0 {
					continue
				}
				for i := 0; i < n; i++ {
					if i == j {
						continue
					}
					flow := d.RateMbps * f
					for _, l := range inst.G.Path(i, j) {
						coefs[l] = append(coefs[l], Coef{vm.XVar(vi, k, i), flow})
					}
				}
			}
		}
		for l := 0; l < inst.G.NumLinks(); l++ {
			if err := lp.AddRow(LE, inst.LinkCapMbps[l], coefs[l]...); err != nil {
				return nil, nil, err
			}
		}
	}
	return lp, vm, nil
}

// ExtractSolution converts an LP vector into a placement solution.
func (vm *VarMap) ExtractSolution(x []float64) *mip.Solution {
	const tolY = mip.SparseTol
	sol := mip.NewSolution(vm.inst)
	for vi := range vm.inst.Demands {
		d := &vm.inst.Demands[vi]
		vp := &sol.Videos[vi]
		for i := 0; i < vm.n; i++ {
			if v := x[vm.YVar(vi, i)]; v > tolY {
				vp.Open = append(vp.Open, mip.Frac{I: int32(i), V: v})
			}
		}
		for k := range d.Js {
			for i := 0; i < vm.n; i++ {
				if v := x[vm.XVar(vi, k, i)]; v > tolY {
					vp.Assign[k] = append(vp.Assign[k], mip.Frac{I: int32(i), V: v})
				}
			}
		}
	}
	return sol
}
