package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, lp *LP, op Op, rhs float64, coefs ...Coef) {
	t.Helper()
	if err := lp.AddRow(op, rhs, coefs...); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBasicLE(t *testing.T) {
	// min -x0 - 2x1  s.t. x0 + x1 <= 4, x1 <= 2  → x = (2, 2), obj -6.
	lp := NewLP(2)
	lp.SetObjective(0, -1)
	lp.SetObjective(1, -2)
	mustAdd(t, lp, LE, 4, Coef{0, 1}, Coef{1, 1})
	mustAdd(t, lp, LE, 2, Coef{1, 1})
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Objective-(-6)) > 1e-8 {
		t.Errorf("objective %g, want -6", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.X[1]-2) > 1e-8 {
		t.Errorf("X = %v, want [2 2]", res.X)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// min x0 + x1  s.t. x0 + x1 = 3, x0 - x1 >= 1 → x = (2..3, ...), obj 3.
	lp := NewLP(2)
	lp.SetObjective(0, 1)
	lp.SetObjective(1, 1)
	mustAdd(t, lp, EQ, 3, Coef{0, 1}, Coef{1, 1})
	mustAdd(t, lp, GE, 1, Coef{0, 1}, Coef{1, -1})
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Objective-3) > 1e-8 {
		t.Errorf("objective %g, want 3", res.Objective)
	}
	if res.X[0]-res.X[1] < 1-1e-8 {
		t.Errorf("constraint violated: %v", res.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	lp := NewLP(1)
	mustAdd(t, lp, GE, 5, Coef{0, 1})
	mustAdd(t, lp, LE, 2, Coef{0, 1})
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status %v, want infeasible", res.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	lp := NewLP(1)
	lp.SetObjective(0, -1)
	mustAdd(t, lp, GE, 0, Coef{0, 1})
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status %v, want unbounded", res.Status)
	}
}

func TestSolveNoRows(t *testing.T) {
	lp := NewLP(2)
	lp.SetObjective(0, 1)
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.X[0] != 0 {
		t.Errorf("unconstrained min of non-negative costs should be x=0: %+v", res)
	}
	lp.SetObjective(1, -1)
	res, err = Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status %v, want unbounded", res.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x0 >= 2 written as -x0 <= -2.
	lp := NewLP(1)
	lp.SetObjective(0, 1)
	mustAdd(t, lp, LE, -2, Coef{0, -1})
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.X[0]-2) > 1e-8 {
		t.Errorf("got %+v, want x=2", res)
	}
}

func TestAddRowValidation(t *testing.T) {
	lp := NewLP(1)
	if err := lp.AddRow(LE, 1, Coef{1, 1}); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if err := lp.AddRow(LE, 1, Coef{-1, 1}); err == nil {
		t.Error("negative variable accepted")
	}
}

func TestDegenerateDiet(t *testing.T) {
	// Classic diet-style LP with degenerate vertices.
	// min 2a + 3b + c  s.t. a+b+c >= 10, a >= 2, b >= 2, c >= 2, a+b <= 8.
	lp := NewLP(3)
	lp.SetObjective(0, 2)
	lp.SetObjective(1, 3)
	lp.SetObjective(2, 1)
	mustAdd(t, lp, GE, 10, Coef{0, 1}, Coef{1, 1}, Coef{2, 1})
	mustAdd(t, lp, GE, 2, Coef{0, 1})
	mustAdd(t, lp, GE, 2, Coef{1, 1})
	mustAdd(t, lp, GE, 2, Coef{2, 1})
	mustAdd(t, lp, LE, 8, Coef{0, 1}, Coef{1, 1})
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	// Optimal: a=2, b=2, c=6 → 2·2+3·2+6 = 16.
	if math.Abs(res.Objective-16) > 1e-8 {
		t.Errorf("objective %g, want 16", res.Objective)
	}
}

// Random LPs: verify the returned point is feasible and no simple feasible
// point beats it (spot-check optimality via random feasible sampling).
func TestRandomLPsFeasibleAndLocallyBest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		lp := NewLP(n)
		for v := 0; v < n; v++ {
			lp.SetObjective(v, rng.Float64()*4-1)
		}
		// Box constraints keep it bounded, plus a couple of random rows.
		for v := 0; v < n; v++ {
			mustAdd(t, lp, LE, 1+rng.Float64()*3, Coef{v, 1})
		}
		rowsAdded := make([]row, 0, 3)
		for r := 0; r < 1+rng.Intn(3); r++ {
			coefs := make([]Coef, 0, n)
			for v := 0; v < n; v++ {
				coefs = append(coefs, Coef{v, rng.Float64() * 2})
			}
			rhs := 1 + rng.Float64()*4
			mustAdd(t, lp, LE, rhs, coefs...)
			rowsAdded = append(rowsAdded, row{op: LE, rhs: rhs, coefs: coefs})
		}
		res, err := Solve(lp)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		// Feasibility of the returned point.
		for _, rw := range rowsAdded {
			var lhs float64
			for _, cf := range rw.coefs {
				lhs += cf.Val * res.X[cf.Var]
			}
			if lhs > rw.rhs+1e-6 {
				t.Fatalf("trial %d: infeasible returned point", trial)
			}
		}
		for v := 0; v < n; v++ {
			if res.X[v] < -1e-9 {
				t.Fatalf("trial %d: negative variable %d = %g", trial, v, res.X[v])
			}
		}
		// x = 0 is always feasible here; optimal must not exceed 0 when all
		// costs could be avoided, i.e. objective ≤ max(0-achievable) check:
		if res.Objective > 1e-9 {
			// Possible only if all-zero were worse, but zero gives obj 0.
			t.Fatalf("trial %d: objective %g worse than the zero point", trial, res.Objective)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("bad status strings")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should still format")
	}
}
