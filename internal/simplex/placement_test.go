package simplex

import (
	"math"
	"math/rand"
	"testing"

	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
)

// smallInstance builds a placement instance small enough for the dense
// simplex: nodes offices, videos videos, one time slice.
func smallInstance(t *testing.T, seed int64, nodes, videos int, diskFactor, linkCap float64) *mip.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topology.Random(nodes, 1.0, seed)
	demands := make([]mip.VideoDemand, videos)
	var totalSize float64
	for v := range demands {
		size := []float64{0.5, 1, 2}[rng.Intn(3)]
		totalSize += size
		d := mip.VideoDemand{Video: v, SizeGB: size, RateMbps: 2}
		for j := 0; j < nodes; j++ {
			if rng.Float64() < 0.7 {
				d.Js = append(d.Js, int32(j))
				d.Agg = append(d.Agg, 1+rng.Float64()*10)
			}
		}
		conc := make([]float64, len(d.Js))
		for k := range conc {
			conc[k] = math.Ceil(d.Agg[k] / 3)
		}
		d.Conc = [][]float64{conc}
		demands[v] = d
	}
	disk := make([]float64, nodes)
	for i := range disk {
		disk[i] = totalSize * diskFactor / float64(nodes)
	}
	caps := make([]float64, g.NumLinks())
	for l := range caps {
		caps[l] = linkCap
	}
	inst, err := mip.NewInstance(g, disk, caps, 1, demands)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPlacementLPSolvesAndIsFeasible(t *testing.T) {
	inst := smallInstance(t, 3, 5, 8, 2.0, 100)
	lp, vm, err := BuildPlacementLP(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	sol := vm.ExtractSolution(res.X)
	v := sol.Check()
	if v.Max() > 1e-6 {
		t.Errorf("LP-optimal solution violates constraints: %+v", v)
	}
	if math.Abs(sol.Objective()-res.Objective) > 1e-6*(1+res.Objective) {
		t.Errorf("objective mismatch: solution says %g, LP says %g", sol.Objective(), res.Objective)
	}
}

func TestPlacementLPZeroDemandVideo(t *testing.T) {
	g := topology.Random(3, 1.0, 1)
	demands := []mip.VideoDemand{
		{Video: 0, SizeGB: 1, RateMbps: 2, Conc: [][]float64{}},
	}
	caps := make([]float64, g.NumLinks())
	for l := range caps {
		caps[l] = 10
	}
	inst, err := mip.NewInstance(g, []float64{2, 2, 2}, caps, 0, demands)
	if err != nil {
		t.Fatal(err)
	}
	lp, vm, err := BuildPlacementLP(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	sol := vm.ExtractSolution(res.X)
	var ysum float64
	for _, f := range sol.Videos[0].Open {
		ysum += f.V
	}
	if ysum < 1-1e-6 {
		t.Errorf("zero-demand video must be stored: Σy = %g", ysum)
	}
}

// The central cross-validation: on instances small enough for the exact LP,
// the EPF solver's Lagrangian lower bound must not exceed the true LP
// optimum, and its ε-feasible objective must be within a few percent of it.
func TestEPFMatchesExactLP(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		inst := smallInstance(t, seed, 5, 8, 3.0, 60)
		lp, _, err := BuildPlacementLP(inst)
		if err != nil {
			t.Fatal(err)
		}
		lpRes, err := Solve(lp)
		if err != nil {
			t.Fatal(err)
		}
		if lpRes.Status != Optimal {
			t.Fatalf("seed %d: LP status %v", seed, lpRes.Status)
		}
		opt := lpRes.Objective

		epfRes, err := epf.Solve(inst, epf.Options{Seed: seed, MaxPasses: 200})
		if err != nil {
			t.Fatal(err)
		}
		if epfRes.LowerBound > opt+1e-6*(1+opt) {
			t.Errorf("seed %d: EPF lower bound %g exceeds exact LP optimum %g", seed, epfRes.LowerBound, opt)
		}
		// The ε-feasible point may use up to (1+ε) of each capacity, so its
		// objective can fall slightly below OPT; it must not be far above.
		if epfRes.Objective > opt*1.06+1e-6 {
			t.Errorf("seed %d: EPF objective %g too far above LP optimum %g", seed, epfRes.Objective, opt)
		}
		if epfRes.Objective < opt*0.90-1e-6 {
			t.Errorf("seed %d: EPF objective %g suspiciously below LP optimum %g (violations: %+v)",
				seed, epfRes.Objective, opt, epfRes.Violation)
		}
		t.Logf("seed %d: LP opt %.3f, EPF obj %.3f (lb %.3f, gap %.3f%%, viol %.4f)",
			seed, opt, epfRes.Objective, epfRes.LowerBound, 100*epfRes.Gap, epfRes.Violation.Max())
	}
}

func TestIntegerRoundingNearLPOptimum(t *testing.T) {
	inst := smallInstance(t, 9, 5, 10, 4.0, 80)
	lp, _, err := BuildPlacementLP(inst)
	if err != nil {
		t.Fatal(err)
	}
	lpRes, err := Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if lpRes.Status != Optimal {
		t.Fatalf("LP status %v", lpRes.Status)
	}
	intRes, err := epf.SolveInteger(inst, epf.Options{Seed: 9, MaxPasses: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !intRes.Sol.IsIntegral(1e-6) {
		t.Fatal("not integral after rounding")
	}
	// The rounded solution may violate capacities by a few percent (§V-D
	// reports ~4% on 5K-video instances; this instance is far smaller, so
	// granularity is coarser) and, when it does, its objective can dip
	// slightly below the LP optimum because it effectively uses the extra
	// capacity. It must stay in a narrow band around the LP optimum.
	viol := intRes.Violation
	if viol.Disk > 0.08 || viol.Link > 0.08 {
		t.Errorf("rounding violations too large: %+v", viol)
	}
	if viol.Unserved > 1e-6 || viol.XExceedsY > 1e-6 {
		t.Errorf("block constraints violated: %+v", viol)
	}
	// A 10-video instance has very coarse rounding granularity (each video
	// is ~10% of an office's disk); §V-D reports gaps *shrinking* with
	// library size, 4.1% at 5K. Allow a wide band here; realistic-scale
	// rounding quality is asserted by the §V-D experiment reproduction.
	if intRes.Objective > lpRes.Objective*1.60+1e-9 {
		t.Errorf("integer objective %g too far above LP optimum %g", intRes.Objective, lpRes.Objective)
	}
	if intRes.Objective < lpRes.Objective*0.80-1e-9 {
		t.Errorf("integer objective %g implausibly below LP optimum %g (violations: %+v)",
			intRes.Objective, lpRes.Objective, viol)
	}
	t.Logf("LP opt %.3f, rounded obj %.3f, viol %.4f", lpRes.Objective, intRes.Objective, viol.Max())
}
