package epf

import (
	"fmt"
	"strings"
	"time"
)

// Stats reports the runtime behavior of one solve: how much work the hot
// path did, where the wall time went, and whether the per-worker scratch
// economy held (one allocation per worker, reuse everywhere else). Counters
// touched inside fan-outs are accumulated lock-free in per-worker scratch
// and merged when the result is built; everything else is counted on the
// sequential driver goroutine.
//
// Stats is observability only: nothing in the solver reads it back, so it
// never influences numeric output.
type Stats struct {
	// Workers is the pool size the solve ran with.
	Workers int
	// Shards is the number of catalog shards the block schedule was grouped
	// by (1 on unsharded solves).
	Shards int
	// Passes is the number of gradient-descent passes performed.
	Passes int
	// BlocksOptimized counts block subproblem solves in the descent loop
	// (chunk optimization), across all workers.
	BlocksOptimized int64
	// LBBlockSolves counts block solves performed for Lagrangian bound
	// evaluations (dual ascent, plus minimizers during polish).
	LBBlockSolves int64
	// DualRefreshes counts full dual-vector recomputations (chunk freezes,
	// bound evaluations, rounding chunks).
	DualRefreshes int64
	// LineSearches counts exact 1-D potential line searches.
	LineSearches int64
	// LBEvals counts LR(λ) evaluations (each is a full pass over blocks).
	LBEvals int64
	// Polishes counts subgradient dual-polish rounds.
	Polishes int
	// WarmStartTries / WarmStartHits report the warm-start economy of the
	// IncrementalPricing mode: block solves seeded from the video's previous
	// open set, and the subset where that seed's local optimum beat the cold
	// start. Both zero when the mode is off.
	WarmStartTries int64
	WarmStartHits  int64
	// WarmVideos counts videos whose initial point was seeded from a
	// cross-period WarmState (Options.Warm); the remainder fell back to the
	// cold init. WarmVideos / NumVideos is the warm reuse fraction the
	// pipeline telemetry reports. Zero on cold solves.
	WarmVideos int
	// DirtyVideos echoes len(Options.DirtyVideos): how many videos' demand
	// changed since the previous solve on this instance. Zero on cold solves
	// and full rebuilds that pass no dirty list.
	DirtyVideos int
	// ShardDirtyFrac is the fraction of each shard's videos that appear in
	// Options.DirtyVideos, indexed like the shard schedule. Nil when no
	// dirty list was passed; the delta-resolve telemetry uses it to show
	// whether a demand change was localized to a few shards or smeared
	// across the catalog.
	ShardDirtyFrac []float64
	// ScratchAllocs / ScratchReuses report the per-worker scratch economy:
	// allocs should stay ≤ Workers, everything else lands in reuses.
	ScratchAllocs int64
	ScratchReuses int64
	// InitTime is wall time in newSolver (buffers, cost table, initial
	// point); LPTime is wall time in the fractional descent phase (including
	// bound evaluations); RoundTime is wall time in the §V-D integer phase.
	InitTime  time.Duration
	LPTime    time.Duration
	RoundTime time.Duration
	// RoundResolves counts speculative parallel-rounding solves that were
	// discarded and re-solved at live duals because the disk prices drifted
	// during the chunk's sequential commits (Options.ParallelRound only).
	// High counts mean heavy in-chunk disk contention: the parallel rounding
	// degenerated toward the sequential trajectory to protect quality.
	RoundResolves int64
	// ReduceTime is wall time spent in driver-side reductions of per-block
	// results: activity/objective rebuilds, Lagrangian term sums, and
	// subgradient accumulation. A subset of LPTime (and of RoundTime for the
	// rebuilds rounding triggers); it is the serial-residue figure the
	// multi-core audit tracks.
	ReduceTime time.Duration
}

// String renders a compact multi-line report, the -v output of the CLIs.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workers %d, passes %d\n", st.Workers, st.Passes)
	if st.Shards > 1 {
		fmt.Fprintf(&b, "shards %d\n", st.Shards)
	}
	fmt.Fprintf(&b, "blocks optimized %d, lb block solves %d, lb evals %d, polish rounds %d\n",
		st.BlocksOptimized, st.LBBlockSolves, st.LBEvals, st.Polishes)
	fmt.Fprintf(&b, "dual refreshes %d, line searches %d\n", st.DualRefreshes, st.LineSearches)
	if st.WarmStartTries > 0 {
		fmt.Fprintf(&b, "warm starts: %d tried, %d won\n", st.WarmStartTries, st.WarmStartHits)
	}
	if st.WarmVideos > 0 {
		fmt.Fprintf(&b, "warm-seeded videos: %d\n", st.WarmVideos)
	}
	if st.DirtyVideos > 0 {
		fmt.Fprintf(&b, "dirty videos: %d", st.DirtyVideos)
		if len(st.ShardDirtyFrac) > 1 {
			b.WriteString(" (per-shard frac:")
			for _, f := range st.ShardDirtyFrac {
				fmt.Fprintf(&b, " %.2f", f)
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	if st.RoundResolves > 0 {
		fmt.Fprintf(&b, "rounding re-solves: %d\n", st.RoundResolves)
	}
	fmt.Fprintf(&b, "scratch: %d allocs, %d reuses\n", st.ScratchAllocs, st.ScratchReuses)
	fmt.Fprintf(&b, "time: init %.2fs, lp %.2fs, rounding %.2fs (reduce %.2fs)",
		st.InitTime.Seconds(), st.LPTime.Seconds(), st.RoundTime.Seconds(),
		st.ReduceTime.Seconds())
	return b.String()
}
