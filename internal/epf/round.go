package epf

import (
	"math"
	"sort"
	"time"

	"vodplace/internal/mip"
)

// integralTol is the tolerance below which a y value counts as integral
// (the shared stack-wide value; see the tolerance block in internal/mip).
const integralTol = mip.IntegralTol

// debugRound, when non-nil, receives solver snapshots at rounding phase
// boundaries (test instrumentation only).
var debugRound func(stage string, s *solver)

// roundChunk is the dual-refresh cadence of the rounding and polish loops:
// link duals are recomputed once per chunk of this many videos. Also the
// fan-out granularity of the parallel rounding mode, which freezes the full
// dual vector per chunk — the constant is mode-independent so sequential
// and parallel rounding see the same refresh schedule.
const roundChunk = 64

// initRound prepares the parallel rounding state (Options.ParallelRound):
// chunk-position solution slots sized for the rounding chunk, a chunkPos
// buffer wide enough for it (the adaptive descent ChunkSize may be
// smaller), and the fan-out body. The body mirrors chunkTaskFn but solves
// with the full local-search facility location (SolveWarmInto, matching the
// sequential rounding solves) under the chunk-frozen duals, and does not
// count toward BlocksOptimized — that counter means descent-loop solves.
func (s *solver) initRound() {
	s.roundSols = make([]intSol, roundChunk)
	for c := range s.roundSols {
		s.roundSols[c].open = make([]int32, 0, s.n)
		s.roundSols[c].assign = make([]int32, 0, s.n)
	}
	s.roundQ0 = make([]float64, s.n)
	if len(s.chunkPos) < roundChunk {
		s.chunkPos = make([]int32, roundChunk)
	}
	s.roundTaskFn = func(w, _, lo, hi int) {
		ws := s.scratch.Get(w)
		if ws.used == nil {
			ws.used = make([]bool, s.n)
		}
		for idx := lo; idx < hi; idx++ {
			c := int(s.chunkPos[idx])
			vi := s.chunk[c]
			s.buildBlockProblem(vi, s.q, &ws.prob)
			ws.fs.SolveWarmInto(&ws.prob, &ws.fsol, s.roundWarm(vi))
			toIntSolInto(&ws.fsol, &s.inst.Demands[vi], ws.used, &s.roundSols[c])
		}
	}
}

// parRoundSolve fans the rounding chunk's facility-location solves out to
// the pool under the chunk-frozen dual vector s.q — a speculative solve:
// the sequential rounding loop re-prices disk per video so each sees its
// predecessors' in-chunk pile-up, which the frozen prices cannot. The
// commit loop repairs that through validateRoundSol: commits run
// sequentially in chunk order with the sequential mode's per-video disk
// repricing, and any video whose live disk duals have drifted from the
// frozen snapshot (s.roundQ0, taken here) is re-solved on the driver at
// live prices. Uncongested or very large catalogs see ~no drift and keep
// the full fan-out win; heavy in-chunk pile-up degenerates to the
// sequential trajectory instead of herding every video onto the same
// cheap office. All validation state is committed solver state read in
// chunk order, so the trajectory stays independent of worker and shard
// counts. Returns false when the fan-out could not run (cancelled
// context); no solver state was modified.
func (s *solver) parRoundSolve(chunk []int) bool {
	s.chunk = chunk
	s.buildChunkTasks()
	copy(s.roundQ0, s.q[:s.n])
	return s.pool.RunTasks(s.ctx, s.tasks, s.roundTaskFn) == nil
}

// roundDualTol is the relative disk-dual drift beyond which a speculative
// rounding solve is discarded and re-solved at live prices. Dual prices are
// exponentials of row load, so a relative change of this size reflects a
// load shift big enough to redirect a facility choice; drift below it means
// the frozen-price solve saw effectively current prices.
const roundDualTol = 0.02

// roundDualsDrifted reports whether any disk dual moved more than
// roundDualTol (relatively, with an absolute floor for underflowed rows)
// since the chunk's dual freeze.
func (s *solver) roundDualsDrifted() bool {
	for i := 0; i < s.n; i++ {
		d := s.q[i] - s.roundQ0[i]
		if d < 0 {
			d = -d
		}
		if d > roundDualTol*s.roundQ0[i]+1e-12 {
			return true
		}
	}
	return false
}

// validateRoundSol finalizes chunk position c's speculative solution for
// video vi: with vi's rows already removed from act (caller), it re-prices
// disk exactly as the sequential loop would, and if the live prices have
// drifted from the chunk freeze it re-solves the block on the driver,
// overwriting the speculative slot. Returns the solution to commit.
func (s *solver) validateRoundSol(c, vi int) *intSol {
	s.refreshDiskDuals(s.q)
	if s.roundDualsDrifted() {
		s.stats.RoundResolves++
		ws := s.scratch.Get(0)
		if ws.used == nil {
			ws.used = make([]bool, s.n)
		}
		s.buildBlockProblem(vi, s.q, &ws.prob)
		ws.fs.SolveWarmInto(&ws.prob, &ws.fsol, s.roundWarm(vi))
		toIntSolInto(&ws.fsol, &s.inst.Demands[vi], ws.used, &s.roundSols[c])
	}
	return &s.roundSols[c]
}

func integralBlock(bs *blockSol) bool {
	for _, f := range bs.open {
		if f.V > integralTol && f.V < 1-integralTol {
			return false
		}
	}
	return true
}

// round performs the §V-D rounding pass on the solver's current point and
// rewrites res with the integral placement.
//
// Videos whose y values are already integral are left untouched. The
// remaining videos are processed in decreasing order of impact
// (s^m·(1+Σ_j a_j^m)): each is re-solved as an *integer* facility-location
// problem against the live potential (the Charikar–Guha-style local search
// in internal/facloc), then committed at full step so later videos see the
// updated congestion. Duals are refreshed every rounding chunk; the paper
// notes the whole pass costs about as much as one gradient-descent pass.
func (s *solver) round(res *Result) {
	roundStart := time.Now()
	// Retarget the potential for the integer phase. The LP phase left
	// B = LB and α tuned so the objective row competes with the capacity
	// rows; integer granularity cannot hold the objective that close to the
	// LP bound (the paper reports rounded gaps up to ~4% on small
	// libraries), so with the old target the objective row would dwarf
	// every capacity row and the polish would happily trade large disk
	// violations for pennies of objective. Instead the integer phase keeps
	// the objective target just above the *current* objective (r_0 ≈ 0, so
	// dual prices reduce to pure feasibility pricing exp(α·r_r)) and drives
	// the scale δ from feasibility alone.
	s.retuneScale()

	var frac []int
	for vi := range s.sol {
		if !integralBlock(&s.sol[vi]) {
			frac = append(frac, vi)
		}
	}
	impact := func(vi int) float64 {
		d := &s.inst.Demands[vi]
		var a float64
		for _, v := range d.Agg {
			a += v
		}
		return d.SizeGB * (1 + a)
	}
	sort.Slice(frac, func(a, b int) bool {
		ia, ib := impact(frac[a]), impact(frac[b])
		if ia != ib {
			return ia > ib
		}
		return frac[a] < frac[b]
	})

	// Link duals (whose path aggregation is the expensive part) refresh per
	// chunk; disk duals refresh per video, because sequential disk pile-up
	// is exactly what rounding must react to — with frozen disk prices,
	// every video in a chunk would favor the same cheap office.
	//
	// The sequential mode commits one video at a time (each sees its
	// predecessors' congestion and per-video disk re-pricing), borrowing
	// worker 0's scratch from the pool: the same facloc buffers the LP
	// fan-outs warmed up, reused between fan-outs. The parallel mode
	// (Options.ParallelRound) solves each chunk's blocks concurrently under
	// the chunk-frozen duals and commits in chunk order.
	ws := s.scratch.Get(0)
	for lo := 0; lo < len(frac); lo += roundChunk {
		hi := lo + roundChunk
		if hi > len(frac) {
			hi = len(frac)
		}
		if s.ctx.Err() != nil {
			break
		}
		s.computeDuals(s.q)
		s.computePathDuals(s.q)
		if s.opts.ParallelRound {
			if !s.parRoundSolve(frac[lo:hi]) {
				break
			}
			for c, vi := range frac[lo:hi] {
				bs := &s.sol[vi]
				s.addBlockRows(vi, bs, -1)
				oldCost := s.blockCost(vi, bs)
				ns := s.validateRoundSol(c, vi)
				s.replaceBlock(vi, ns)
				s.noteRoundSol(vi, ns)
				s.addBlockRows(vi, bs, +1)
				s.obj += s.blockCost(vi, bs) - oldCost
			}
			continue
		}
		for _, vi := range frac[lo:hi] {
			bs := &s.sol[vi]
			s.addBlockRows(vi, bs, -1)
			oldCost := s.blockCost(vi, bs)
			s.refreshDiskDuals(s.q)
			s.buildBlockProblem(vi, s.q, &ws.prob)
			fsol := ws.fs.SolveWarm(&ws.prob, s.roundWarm(vi))
			ns := toIntSol(&fsol, &s.inst.Demands[vi])
			s.replaceBlock(vi, &ns)
			s.noteRoundSol(vi, &ns)
			s.addBlockRows(vi, bs, +1)
			s.obj += s.blockCost(vi, bs) - oldCost
		}
	}

	s.retuneScale()
	bestScore := math.Inf(1)
	haveBest := false
	s.considerIntegerIncumbent(&bestScore, &haveBest)
	if debugRound != nil {
		debugRound("after-forced-rounding", s)
	}
	s.polishInteger(&bestScore, &haveBest)

	// Second candidate: threshold rounding of the fractional point (open
	// y ≥ ½ plus the argmax office, serve each office from its cheapest
	// copy), polished the same way under the shared incumbent. On small
	// instances the potential-guided rounding can settle in a poor local
	// optimum that this start escapes. Skipped entirely on cancellation —
	// the first candidate's incumbent is the prompt answer.
	if s.ctx.Err() == nil {
		if thr := thresholdRound(s.inst, res.Sol); thr != nil {
			s.loadSolution(thr)
			s.recomputeState()
			s.retuneScale()
			s.considerIntegerIncumbent(&bestScore, &haveBest)
			if debugRound != nil {
				debugRound("after-threshold-rounding", s)
			}
			s.polishInteger(&bestScore, &haveBest)
		}
	}

	if haveBest {
		s.restoreBest()
		s.recomputeState()
	}

	s.stats.RoundTime = time.Since(roundStart)
	s.opts.Recorder.RecordSpan(s.opts.TraceStream, "rounding", s.stats.RoundTime)
	rounded := s.buildResult(res.Passes, res.Converged)
	rounded.Rounded = true
	*res = *rounded
}

// polishInteger runs integer polish passes on the current integral point:
// every video is re-solved at live duals and replaced when the step
// criterion accepts; the shared incumbent tracks the best visited point.
// Rounding decisions were made one video at a time, so early videos may sit
// badly once later videos have landed (e.g. stacked on an office the duals
// later discover is overfull); this is the integer analogue of a gradient
// pass and costs about the same per pass.
func (s *solver) polishInteger(bestScore *float64, haveBest *bool) {
	const polishPasses = 6
	ws := s.scratch.Get(0)
	order := make([]int, len(s.sol))
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < polishPasses; pass++ {
		if s.ctx.Err() != nil {
			return
		}
		// Alternate the acceptance criterion: Lagrangian merit is
		// objective-aggressive (it will buy cost savings at priced
		// violations), the restricted potential is feasibility-conservative.
		// Alternating explores both sides of the trade; the incumbent keeps
		// whichever visited point scores best.
		useMerit := pass%2 == 0
		s.rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		changed := 0
		for lo := 0; lo < len(order); lo += roundChunk {
			hi := lo + roundChunk
			if hi > len(order) {
				hi = len(order)
			}
			s.computeDuals(s.q)
			s.computePathDuals(s.q)
			// Moves may not push any row above the chunk-start violation
			// level (or ε, whichever is larger): full-replacement steps
			// have no line-search damping, and without this trust region
			// the dual refresh between chunks lets objective and violation
			// ratchet each other upward.
			dcCap, _ := s.maxCouplingViol()
			// Merit passes may trade objective against violations up to the
			// §V-D band the paper itself reports (~4-5%); potential passes
			// stay within ε of the current level. The incumbent scoring
			// arbitrates the final choice.
			floor := s.opts.Epsilon
			if useMerit {
				floor = 4 * s.opts.Epsilon
			}
			if dcCap < floor {
				dcCap = floor
			}
			if s.opts.ParallelRound {
				if !s.parRoundSolve(order[lo:hi]) {
					return
				}
				for c, vi := range order[lo:hi] {
					bs := &s.sol[vi]
					s.addBlockRows(vi, bs, -1)
					oldCost := s.blockCost(vi, bs)
					ns := s.validateRoundSol(c, vi)
					if s.integerStepImproves(vi, bs, ns, oldCost, useMerit, dcCap) {
						s.replaceBlock(vi, ns)
						s.noteRoundSol(vi, ns)
						changed++
					}
					s.addBlockRows(vi, bs, +1)
					s.obj += s.blockCost(vi, bs) - oldCost
				}
				s.considerIntegerIncumbent(bestScore, haveBest)
				continue
			}
			for _, vi := range order[lo:hi] {
				bs := &s.sol[vi]
				s.addBlockRows(vi, bs, -1)
				s.refreshDiskDuals(s.q)
				oldCost := s.blockCost(vi, bs)
				s.buildBlockProblem(vi, s.q, &ws.prob)
				fsol := ws.fs.SolveWarm(&ws.prob, s.roundWarm(vi))
				ns := toIntSol(&fsol, &s.inst.Demands[vi])
				if s.integerStepImproves(vi, bs, &ns, oldCost, useMerit, dcCap) {
					s.replaceBlock(vi, &ns)
					s.noteRoundSol(vi, &ns)
					changed++
				}
				s.addBlockRows(vi, bs, +1)
				s.obj += s.blockCost(vi, bs) - oldCost
			}
			s.considerIntegerIncumbent(bestScore, haveBest)
		}
		s.retuneScale()
		if debugRound != nil {
			debugRound("after-polish-pass", s)
		}
		if changed == 0 && !useMerit {
			break
		}
	}
}

// roundWarm returns the facility-location warm start for video vi in the
// rounding phase: its latest block open set, maintained across the descent
// and updated as rounding commits replacements. nil (cold two-start solve,
// the pinned default behavior) outside cross-period warm mode — the
// IncrementalPricing-only mode keeps its historical rounding trajectory.
func (s *solver) roundWarm(vi int) []int32 {
	if !s.warmRound || s.warmOpen == nil {
		return nil
	}
	return s.warmOpen[vi]
}

// noteRoundSol records a committed rounding replacement as video vi's new
// warm set, so later polish passes seed from the freshest placement.
func (s *solver) noteRoundSol(vi int, ns *intSol) {
	if !s.warmRound || s.warmOpen == nil {
		return
	}
	s.warmOpen[vi] = append(s.warmOpen[vi][:0], ns.open...)
}

// loadSolution overwrites the solver's per-video state with sol.
func (s *solver) loadSolution(sol *mip.Solution) {
	for vi := range s.sol {
		bs := &s.sol[vi]
		bs.open = append(bs.open[:0], sol.Videos[vi].Open...)
		for k := range bs.assign {
			bs.assign[k] = append(bs.assign[k][:0], sol.Videos[vi].Assign[k]...)
		}
	}
}

// thresholdRound rounds a fractional solution by opening every office with
// y ≥ ½ (always at least the largest-y office) and assigning each demand
// office to its cheapest open copy.
func thresholdRound(inst *mip.Instance, frac *mip.Solution) *mip.Solution {
	sol := mip.NewSolution(inst)
	for vi := range frac.Videos {
		fp := &frac.Videos[vi]
		var best int32 = -1
		var bestV float64
		var open []int32
		for _, f := range fp.Open {
			if f.V > bestV {
				bestV, best = f.V, f.I
			}
			if f.V >= 0.5 {
				open = append(open, f.I)
			}
		}
		if len(open) == 0 {
			if best < 0 {
				return nil // fractional solution misses a video entirely
			}
			open = append(open, best)
		}
		for _, i := range open {
			sol.Videos[vi].Open = append(sol.Videos[vi].Open, mip.Frac{I: i, V: 1})
		}
		d := &inst.Demands[vi]
		for k := range d.Js {
			j := int(d.Js[k])
			bi := open[0]
			bc := inst.Cost(int(open[0]), j)
			for _, i := range open[1:] {
				if c := inst.Cost(int(i), j); c < bc {
					bc, bi = c, i
				}
			}
			sol.Videos[vi].Assign[k] = []mip.Frac{{I: bi, V: 1}}
		}
	}
	return sol
}

// considerIntegerIncumbent scores the current integer point — objective with
// a steep penalty for coupling violations beyond ε — and snapshots it if it
// beats the incumbent. The polish loop can wander (duals refresh between
// chunks), so the best visited point, not the last, is returned.
func (s *solver) considerIntegerIncumbent(bestScore *float64, haveBest *bool) {
	dc, _ := s.maxCouplingViol()
	over := dc - s.opts.Epsilon
	if over < 0 {
		over = 0
	}
	// The weighting mirrors the paper's own outcome: a ~4% violation is an
	// acceptable price for several percent of objective (§V-D reports
	// 4.1% gap with 4.4% violation); runaway violations stay heavily
	// penalized by the quadratic term.
	score := s.obj * (1 + 3*over + 100*over*over)
	if s.obj <= 0 {
		score = over // all-local placements compete on violation alone
	}
	if score < *bestScore {
		*bestScore = score
		s.snapshotBest()
		*haveBest = true
	}
}

// integerStepImproves decides whether replacing block vi's current solution
// cur with ns improves the chosen criterion. The block's own rows are
// already removed from act by the caller.
//
// With useMerit, the criterion is the Lagrangian merit — transfer cost plus
// dual-priced resource usage, the same objective the block facility-location
// solve minimized; it keeps the objective in play but will buy cost savings
// at priced violations. Without it, the criterion is the restricted
// potential over the touched rows plus the objective row — conservative
// about any move that pushes a busy row further.
func (s *solver) integerStepImproves(vi int, cur *blockSol, ns *intSol, curCost float64, useMerit bool, dcCap float64) bool {
	d := &s.inst.Demands[vi]
	// Blocks touch few rows; sparse maps keep this O(block footprint).
	curRows := make(map[int]float64, 16)
	newRows := make(map[int]float64, 16)
	for _, f := range cur.open {
		curRows[s.rowDisk(int(f.I))] += d.SizeGB * f.V
	}
	var newCost float64
	for _, i := range ns.open {
		newRows[s.rowDisk(int(i))] += d.SizeGB
	}
	for k, fr := range cur.assign {
		j := int(d.Js[k])
		for _, f := range fr {
			if int(f.I) == j || f.V == 0 {
				continue
			}
			path := s.inst.G.Path(int(f.I), j)
			// CSR nonzeros in ascending t: identical visit order to the dense
			// scan, so the map accumulation is bit-identical.
			ts, fv := d.ConcNZ(k)
			for ti, tt := range ts {
				flow := d.RateMbps * fv[ti] * f.V
				if flow == 0 {
					continue
				}
				for _, l := range path {
					curRows[s.rowLink(int(l), int(tt))] += flow
				}
			}
		}
	}
	for k, i := range ns.assign {
		j := int(d.Js[k])
		newCost += d.SizeGB * d.Agg[k] * s.inst.Cost(int(i), j)
		if int(i) == j {
			continue
		}
		path := s.inst.G.Path(int(i), j)
		ts, fv := d.ConcNZ(k)
		for ti, tt := range ts {
			flow := d.RateMbps * fv[ti]
			if flow == 0 {
				continue
			}
			for _, l := range path {
				newRows[s.rowLink(int(l), int(tt))] += flow
			}
		}
	}
	if s.inst.UpdateWeight != 0 {
		for _, i := range ns.open {
			newCost += s.inst.PlacementCost(vi, int(i))
		}
	}
	// Trust region: reject replacements that push any row past dcCap.
	for r, v := range newRows {
		if (s.act[r]+v)/s.b[r]-1 > dcCap+1e-12 {
			return false
		}
	}
	if useMerit {
		// Lagrangian merit under the live duals:
		// cost + Σ_r q_r·(block rows)_r.
		merit := func(rows map[int]float64, cost float64) float64 {
			m := cost
			for r, v := range rows {
				m += s.q[r] * v
			}
			return m
		}
		return merit(newRows, newCost) < merit(curRows, curCost)*(1-1e-12)
	}
	// Restricted potential over the union of touched rows + objective row.
	phi := func(rows map[int]float64, cost float64) float64 {
		var p float64
		for r := range curRows {
			p += expClamp(s.alpha * ((s.act[r]+rows[r])/s.b[r] - 1))
		}
		for r := range newRows {
			if _, seen := curRows[r]; seen {
				continue
			}
			p += expClamp(s.alpha * ((s.act[r]+rows[r])/s.b[r] - 1))
		}
		p += expClamp(s.alpha * ((s.obj-curCost+cost)/s.bObj - 1))
		return p
	}
	return phi(newRows, newCost) < phi(curRows, curCost)*(1-1e-12)
}

// retuneScale re-derives the integer-phase potential from the current
// point: the objective row targets a hair above the current objective (so
// the dual prices q_r = exp(α·(r_r − r_0)) ≈ exp(α·r_r) price feasibility,
// while the raw transfer costs in the block objective keep pulling the
// objective down), and δ follows the actual coupling violation in both
// directions — unlike the LP phase, where δ only shrinks.
func (s *solver) retuneScale() {
	s.bObj = 1.001 * math.Max(s.obj, s.lb)
	if s.bObj < 1e-9 {
		s.bObj = 1e-9
	}
	dc, _ := s.maxCouplingViol()
	d := math.Max(dc, s.opts.Epsilon/2)
	s.delta = d
	s.alpha = s.opts.Gamma * math.Log(float64(s.rows)+1) / d
}

// replaceBlock overwrites block vi with the integer solution ns.
func (s *solver) replaceBlock(vi int, ns *intSol) {
	bs := &s.sol[vi]
	bs.open = bs.open[:0]
	for _, i := range ns.open {
		bs.open = append(bs.open, mip.Frac{I: i, V: 1})
	}
	for k := range bs.assign {
		bs.assign[k] = append(bs.assign[k][:0], mip.Frac{I: ns.assign[k], V: 1})
	}
}
