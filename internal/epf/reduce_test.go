package epf

import (
	"bytes"
	"context"
	"testing"

	"vodplace/internal/obs"
)

// forceMultiLeaf shrinks the reduction-tree leaf width so small test
// instances exercise the multi-leaf machinery, restoring the default on
// cleanup.
func forceMultiLeaf(t *testing.T, leaf int) {
	t.Helper()
	old := reduceLeafBlocks
	reduceLeafBlocks = leaf
	t.Cleanup(func() { reduceLeafBlocks = old })
}

// The multi-leaf reduction contract: leaf boundaries depend only on the
// catalog size, so at a fixed leaf width every worker×shard combination
// must reproduce the same solve bit for bit — objective, bound, duals,
// solution, and trajectory.
func TestMultiLeafReductionInvariance(t *testing.T) {
	forceMultiLeaf(t, 16) // 60 videos -> 4 leaves
	base := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 30, Workers: 1})
	if len(base.RowDuals) == 0 {
		t.Fatal("baseline exported no duals")
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 3, 7} {
			res := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
				Options{Seed: 5, MaxPasses: 30, Workers: workers, Shards: shards})
			if res.Objective != base.Objective || res.LowerBound != base.LowerBound {
				t.Errorf("workers=%d shards=%d: (%.17g, %.17g) vs baseline (%.17g, %.17g)",
					workers, shards, res.Objective, res.LowerBound, base.Objective, base.LowerBound)
			}
			if !identicalDuals(base.RowDuals, res.RowDuals) {
				t.Errorf("workers=%d shards=%d: row duals differ from baseline", workers, shards)
			}
			if !identicalSolutions(base.Sol, res.Sol) {
				t.Errorf("workers=%d shards=%d: solutions differ from baseline", workers, shards)
			}
			if res.Passes != base.Passes {
				t.Errorf("workers=%d shards=%d: %d passes vs baseline %d", workers, shards, res.Passes, base.Passes)
			}
		}
	}
}

// A single-leaf catalog must reduce by exactly the historical flat sum: the
// multi-leaf code path stays inert and the solve is bit-identical to one
// with the default leaf width. (A different leaf width may legitimately
// change low-order bits — this pins that the default does not.)
func TestSingleLeafMatchesFlatReduction(t *testing.T) {
	base := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 30, Workers: 4})
	forceMultiLeaf(t, 60) // 60 videos in one leaf: still the flat path
	res := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 30, Workers: 4})
	if res.Objective != base.Objective || res.LowerBound != base.LowerBound {
		t.Errorf("single-leaf solve diverged from flat reduction: (%.17g, %.17g) vs (%.17g, %.17g)",
			res.Objective, res.LowerBound, base.Objective, base.LowerBound)
	}
	if !identicalSolutions(base.Sol, res.Sol) {
		t.Error("single-leaf solve solution differs from flat reduction")
	}
}

// The multi-leaf tree reorders float additions, so it need not match the
// flat sum bit for bit — but it must stay a faithful solve: certified
// bound, ε-feasibility, and an objective within solver tolerance of the
// flat-reduction run.
func TestMultiLeafReductionSanity(t *testing.T) {
	flat := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 40, Workers: 1})
	forceMultiLeaf(t, 16)
	res := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 40, Workers: 4})
	if res.LowerBound > res.Objective*(1+1e-9) {
		t.Errorf("LB %g above objective %g", res.LowerBound, res.Objective)
	}
	if v := res.Violation; v.Unserved > 1e-6 || v.XExceedsY > 1e-6 {
		t.Errorf("block constraints violated: %+v", v)
	}
	if rel := (res.Objective - flat.Objective) / flat.Objective; rel > 0.05 || rel < -0.05 {
		t.Errorf("multi-leaf objective %g drifted %.2f%% from flat %g",
			res.Objective, 100*rel, flat.Objective)
	}
}

// The fast mode (IncrementalPricing + ParallelRound, the new defaults at
// the CLI surfaces) carries the same invariance contract as the legacy
// mode: bit-identical integer output at any worker and shard count.
func TestFastModeWorkerShardInvariance(t *testing.T) {
	opts := func(workers, shards int) Options {
		return Options{Seed: 5, MaxPasses: 30, Workers: workers, Shards: shards,
			IncrementalPricing: true, ParallelRound: true}
	}
	base, err := SolveInteger(randomInstance(t, 9, 8, 60, 2.0, 100), opts(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.RowDuals) == 0 {
		t.Fatal("baseline exported no duals")
	}
	for _, workers := range []int{1, 4, 8} {
		for _, shards := range []int{0, 2, 7} {
			if workers == 1 && shards == 0 {
				continue
			}
			res, err := SolveInteger(randomInstance(t, 9, 8, 60, 2.0, 100), opts(workers, shards))
			if err != nil {
				t.Fatal(err)
			}
			if res.Objective != base.Objective || res.LowerBound != base.LowerBound {
				t.Errorf("workers=%d shards=%d: (%.17g, %.17g) vs baseline (%.17g, %.17g)",
					workers, shards, res.Objective, res.LowerBound, base.Objective, base.LowerBound)
			}
			if !identicalDuals(base.RowDuals, res.RowDuals) {
				t.Errorf("workers=%d shards=%d: row duals differ from baseline", workers, shards)
			}
			if !identicalSolutions(base.Sol, res.Sol) {
				t.Errorf("workers=%d shards=%d: rounded solutions differ from baseline", workers, shards)
			}
		}
	}
}

// The fast mode's whole traced convergence trajectory is also
// worker-invariant, not just the final point.
func TestFastModeTracedSeriesInvariance(t *testing.T) {
	trace := func(workers int) (*Result, []obs.Event) {
		var buf bytes.Buffer
		rec := obs.New(&buf)
		res := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
			Options{Seed: 5, MaxPasses: 30, Workers: workers, Recorder: rec,
				IncrementalPricing: true, ParallelRound: true})
		if err := rec.Close(); err != nil {
			t.Fatalf("recorder close: %v", err)
		}
		events, err := obs.ParseTrace(&buf)
		if err != nil {
			t.Fatalf("parse trace: %v", err)
		}
		return res, events
	}
	a, eventsA := trace(1)
	for _, workers := range []int{3, 8} {
		b, eventsB := trace(workers)
		if a.Objective != b.Objective || a.LowerBound != b.LowerBound {
			t.Errorf("Workers=1 vs %d: (%.17g, %.17g) vs (%.17g, %.17g)",
				workers, a.Objective, a.LowerBound, b.Objective, b.LowerBound)
		}
		if len(eventsA) != len(eventsB) {
			t.Errorf("Workers=1 vs %d: %d trace events vs %d", workers, len(eventsA), len(eventsB))
			continue
		}
		for i := range eventsA {
			ea, eb := eventsA[i], eventsB[i]
			if ea.K != eb.K || ea.Pass != eb.Pass {
				t.Errorf("Workers=1 vs %d: event %d is %s/%d vs %s/%d", workers, i, ea.K, ea.Pass, eb.K, eb.Pass)
				continue
			}
			if ea.K != "epf_pass" {
				continue
			}
			if ea.Phi != eb.Phi || ea.Objective != eb.Objective || ea.LowerBound != eb.LowerBound ||
				ea.UpperBound != eb.UpperBound || ea.Gap != eb.Gap || ea.UBGap != eb.UBGap ||
				ea.MaxViol != eb.MaxViol || ea.MaxLinkUtil != eb.MaxLinkUtil ||
				ea.MeanLinkUtil != eb.MeanLinkUtil || ea.Delta != eb.Delta || ea.Blocks != eb.Blocks {
				t.Errorf("Workers=1 vs %d: pass %d traced series diverges:\n  1: %+v\n  %d: %+v",
					workers, ea.Pass, ea, workers, eb)
			}
		}
	}
}

// Cross-period warm starts compose with parallel rounding: a warm-seeded
// fast-mode solve is worker- and shard-invariant.
func TestWarmParallelRoundInvariance(t *testing.T) {
	cold := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 20, Workers: 1})
	opts := func(workers, shards int) Options {
		return Options{Seed: 5, MaxPasses: 20, Workers: workers, Shards: shards,
			IncrementalPricing: true, ParallelRound: true, Warm: cold.Warm}
	}
	base, err := SolveInteger(randomInstance(t, 9, 8, 60, 2.0, 100), opts(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4} {
		for _, shards := range []int{0, 3} {
			res, err := SolveInteger(randomInstance(t, 9, 8, 60, 2.0, 100), opts(workers, shards))
			if err != nil {
				t.Fatal(err)
			}
			if res.Objective != base.Objective || res.LowerBound != base.LowerBound {
				t.Errorf("workers=%d shards=%d: (%.17g, %.17g) vs baseline (%.17g, %.17g)",
					workers, shards, res.Objective, res.LowerBound, base.Objective, base.LowerBound)
			}
			if !identicalSolutions(base.Sol, res.Sol) {
				t.Errorf("workers=%d shards=%d: warm rounded solutions differ", workers, shards)
			}
		}
	}
}

// The allocation contract extends to the parallel rounding path: once the
// chunk slots and block-row buffers are warm, a full fan-out + commit cycle
// (the forced-rounding inner loop) allocates nothing. The sequential
// rounding loop allocates per video (toIntSol); the parallel mode's Into
// variants are what make rounding allocation-free.
func TestParallelRoundZeroAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	inst := randomInstance(t, 11, 10, 90, 2.0, 150)
	s, err := newSolver(inst, Options{Seed: 3, Workers: 1, IncrementalPricing: true, ParallelRound: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	s.ctx = context.Background()
	s.initDescent()
	for i := 0; i < 4; i++ {
		if !s.descentPass() {
			t.Fatal("warm-up pass cancelled")
		}
	}
	s.retuneScale()
	var frac []int
	for vi := range s.sol {
		if !integralBlock(&s.sol[vi]) {
			frac = append(frac, vi)
		}
	}
	if len(frac) == 0 {
		t.Fatal("no fractional videos to round after 4 passes")
	}
	chunk := frac
	if len(chunk) > roundChunk {
		chunk = chunk[:roundChunk]
	}
	cycle := func() {
		s.computeDuals(s.q)
		s.computePathDuals(s.q)
		if !s.parRoundSolve(chunk) {
			t.Fatal("rounding fan-out cancelled")
		}
		for c, vi := range chunk {
			bs := &s.sol[vi]
			s.addBlockRows(vi, bs, -1)
			oldCost := s.blockCost(vi, bs)
			ns := s.validateRoundSol(c, vi)
			s.replaceBlock(vi, ns)
			s.noteRoundSol(vi, ns)
			s.addBlockRows(vi, bs, +1)
			s.obj += s.blockCost(vi, bs) - oldCost
		}
	}
	// Warm-up: roundSols capacities and per-block sparse rows grow to steady
	// state on the first cycles.
	cycle()
	cycle()
	allocs := testing.AllocsPerRun(3, func() { cycle() })
	if allocs != 0 {
		t.Errorf("steady-state parallel rounding cycle allocates %g times, want 0", allocs)
	}
}
