package epf

import (
	"testing"

	"vodplace/internal/mip"
)

// identicalDuals reports bit-identity of two dual vectors.
func identicalDuals(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The sharding invariant: shards decompose scheduling and telemetry, never
// numerics. Any shard count at any worker count must reproduce the unsharded
// single-worker solve bit for bit — objective, bound, duals, and solution.
func TestSolveShardCountInvariance(t *testing.T) {
	base := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 30, Workers: 1})
	for _, shards := range []int{1, 2, 4, 7} {
		for _, workers := range []int{1, 4} {
			res := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
				Options{Seed: 5, MaxPasses: 30, Workers: workers, Shards: shards})
			if res.Objective != base.Objective || res.LowerBound != base.LowerBound {
				t.Errorf("shards=%d workers=%d: (%.17g, %.17g) vs baseline (%.17g, %.17g)",
					shards, workers, res.Objective, res.LowerBound, base.Objective, base.LowerBound)
			}
			if !identicalDuals(base.RowDuals, res.RowDuals) {
				t.Errorf("shards=%d workers=%d: row duals differ from baseline", shards, workers)
			}
			if !identicalSolutions(base.Sol, res.Sol) {
				t.Errorf("shards=%d workers=%d: solutions differ from baseline", shards, workers)
			}
			if res.Passes != base.Passes || res.Converged != base.Converged {
				t.Errorf("shards=%d workers=%d: trajectory diverged (passes %d vs %d)",
					shards, workers, res.Passes, base.Passes)
			}
			// A forced re-partition packs ceil(videos/shards) videos per
			// shard, so the resolved count may fall below the request on a
			// tiny catalog. The 60-video instance resolves all four counts.
			per := (60 + shards - 1) / shards
			if want := (60 + per - 1) / per; res.Stats.Shards != want {
				t.Errorf("shards=%d: Stats.Shards = %d, want %d", shards, res.Stats.Shards, want)
			}
		}
	}
}

func TestSolveIntegerShardCountInvariance(t *testing.T) {
	base, err := SolveInteger(randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 30, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 7} {
		res, err := SolveInteger(randomInstance(t, 9, 8, 60, 2.0, 100),
			Options{Seed: 5, MaxPasses: 30, Workers: 4, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective != base.Objective || res.LowerBound != base.LowerBound {
			t.Errorf("shards=%d: (%.17g, %.17g) vs baseline (%.17g, %.17g)",
				shards, res.Objective, res.LowerBound, base.Objective, base.LowerBound)
		}
		if !identicalSolutions(base.Sol, res.Sol) {
			t.Errorf("shards=%d: rounded solutions differ from baseline", shards)
		}
	}
}

// An instance sealed by the streaming builder carries its own shard layout;
// Options.Shards == 0 adopts it. Adopted layouts must also be numerically
// invisible: the solve matches the batch-built unsharded instance bit for bit.
func TestSolveAdoptsInstanceShardLayout(t *testing.T) {
	base := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 30, Workers: 1})
	for _, shardSize := range []int{3, 10, 25} {
		g, disk, caps, demands := randomProblem(t, 9, 8, 60, 2.0, 100)
		b, err := mip.NewInstanceBuilder(g, disk, caps, 1, shardSize)
		if err != nil {
			t.Fatal(err)
		}
		for vi := range demands {
			if err := b.Add(&demands[vi]); err != nil {
				t.Fatal(err)
			}
		}
		inst, err := b.Seal()
		if err != nil {
			t.Fatal(err)
		}
		wantShards := (len(demands) + shardSize - 1) / shardSize
		if ns := inst.NumShards(); ns != wantShards {
			t.Fatalf("shardSize=%d: instance has %d shards, want %d", shardSize, ns, wantShards)
		}
		res := mustSolve(t, inst, Options{Seed: 5, MaxPasses: 30, Workers: 4})
		if res.Objective != base.Objective || res.LowerBound != base.LowerBound {
			t.Errorf("shardSize=%d: (%.17g, %.17g) vs baseline (%.17g, %.17g)",
				shardSize, res.Objective, res.LowerBound, base.Objective, base.LowerBound)
		}
		if !identicalDuals(base.RowDuals, res.RowDuals) {
			t.Errorf("shardSize=%d: row duals differ from baseline", shardSize)
		}
		if !identicalSolutions(base.Sol, res.Sol) {
			t.Errorf("shardSize=%d: solutions differ from baseline", shardSize)
		}
		if wantShards > 1 && res.Stats.Shards != wantShards {
			t.Errorf("shardSize=%d: Stats.Shards = %d, want %d", shardSize, res.Stats.Shards, wantShards)
		}
	}
}

// Warm starts must survive sharding in both directions: a sharded solve's
// carryover seeds an unsharded one and vice versa, with the warm trajectory
// itself shard-invariant.
func TestWarmStartShardInvariance(t *testing.T) {
	coldOpts := Options{Seed: 5, MaxPasses: 20, Workers: 1}
	cold := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100), coldOpts)
	shardedCold := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 20, Workers: 4, Shards: 4})

	warmFromPlain := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 20, Workers: 4, Shards: 4, Warm: cold.Warm})
	warmFromSharded := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
		Options{Seed: 5, MaxPasses: 20, Workers: 1, Warm: shardedCold.Warm})

	if warmFromPlain.Objective != warmFromSharded.Objective ||
		warmFromPlain.LowerBound != warmFromSharded.LowerBound {
		t.Errorf("warm cross-over diverges: sharded-from-plain (%.17g, %.17g) vs plain-from-sharded (%.17g, %.17g)",
			warmFromPlain.Objective, warmFromPlain.LowerBound,
			warmFromSharded.Objective, warmFromSharded.LowerBound)
	}
	if !identicalSolutions(warmFromPlain.Sol, warmFromSharded.Sol) {
		t.Error("warm cross-over solutions differ")
	}
	if len(shardedCold.Warm.Shards) != 4 {
		t.Errorf("sharded warm state carries %d shard spans, want 4", len(shardedCold.Warm.Shards))
	}
}
