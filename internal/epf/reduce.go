package epf

import (
	"time"

	"vodplace/internal/par"
)

// Deterministic parallel reductions (DESIGN.md §13).
//
// The driver-side reductions over per-block results — activity/objective
// rebuilds in recomputeState, the Lagrangian term sum and subgradient in
// lagrangianEval — historically ran as flat sequential sums in video order,
// which kept them bit-identical at any worker count but made them O(blocks)
// serial residue on large catalogs. The parallel scheme replaces the flat
// sum with a fixed two-level tree: the catalog is cut into leaves of
// reduceLeafBlocks consecutive videos, each leaf reduces its own videos in
// video order (fanned out across the pool into index-addressed leaf slots),
// and the driver merges the leaf partials in leaf order.
//
// The leaf boundaries are a function of the catalog size alone — never of
// the worker count, the shard layout, or the chunk schedule — so the
// floating-point summation tree is the same for every worker×shard
// combination, and a catalog that fits in one leaf reduces by exactly the
// historical flat sum. That is what lets the parallel reduction coexist
// with the bitwise invariance contract and the pinned goldens: small
// instances are byte-identical to every previous release, large ones are
// deterministic under a (fixed, documented) new tree.

// reduceLeafBlocks is the fixed leaf width of the deterministic reduction
// tree. It is a variable only so tests can force the multi-leaf machinery
// onto small instances; production solves always see the constant default.
var reduceLeafBlocks = 2048

// pdParallelMinEntries gates the parallel path-dual rebuild: below this
// table size the fan-out dispatch costs more than the sweep. The threshold
// compares against T·n·n, a function of the instance alone, so the gate
// never depends on the environment.
const pdParallelMinEntries = 1 << 14

// initReduce resolves the solve's reduction layout: the fixed leaf spans and
// their per-leaf partial buffers (multi-leaf catalogs only), and the
// parallel path-dual rebuild gate. Runs once in newSolver, before the
// initial recomputeState.
func (s *solver) initReduce() {
	numBlocks := len(s.inst.Demands)
	if numBlocks > reduceLeafBlocks {
		leaf := reduceLeafBlocks
		for lo := 0; lo < numBlocks; lo += leaf {
			hi := lo + leaf
			if hi > numBlocks {
				hi = numBlocks
			}
			s.leaves = append(s.leaves, shardSpan{lo: lo, hi: hi})
			s.leafTasks = append(s.leafTasks, par.Task{Tag: len(s.leaves) - 1, Lo: lo, Hi: hi})
		}
		nl := len(s.leaves)
		s.leafAct = make([]float64, nl*s.rows)
		s.leafObj = make([]float64, nl)
		s.leafSum = make([]float64, nl)
		s.stateLeafFn = func(_, li, lo, hi int) {
			dst := s.leafAct[li*s.rows : (li+1)*s.rows]
			for r := range dst {
				dst[r] = 0
			}
			var obj float64
			for vi := lo; vi < hi; vi++ {
				s.addBlockRowsTo(dst, vi, &s.sol[vi], +1)
				obj += s.blockCost(vi, &s.sol[vi])
			}
			s.leafObj[li] = obj
		}
		s.lbSumLeafFn = func(_, li, lo, hi int) {
			var sum float64
			for vi := lo; vi < hi; vi++ {
				sum += s.lbBuf[vi]
			}
			s.leafSum[li] = sum
		}
		s.gradLeafFn = func(_, li, lo, hi int) {
			dst := s.leafGrad[li*s.rows : (li+1)*s.rows]
			for r := range dst {
				dst[r] = 0
			}
			for vi := lo; vi < hi; vi++ {
				s.accumulateIntRows(vi, &s.lbSols[vi], dst)
			}
		}
	}
	// Parallel path-dual rebuild: every entry is an independent sum, so this
	// is bitwise-invisible and gates only on there being enough work and
	// more than one worker to share it.
	if s.pool.Workers() > 1 && s.T > 0 && s.T*s.n*s.n >= pdParallelMinEntries {
		s.pdParallel = true
		s.pdRowFn = func(_, lo, hi int) {
			s.rebuildPathDualRows(s.pdRebuildQ, lo, hi)
		}
	}
}

// parRecomputeState performs the multi-leaf parallel activity/objective
// rebuild. Returns false when the solve has a single leaf (caller runs the
// historical flat sum) or the fan-out could not be dispatched (cancelled
// context; the sequential fallback still leaves consistent state).
func (s *solver) parRecomputeState() bool {
	if s.leafAct == nil {
		return false
	}
	if err := s.pool.RunTasks(s.ctx, s.leafTasks, s.stateLeafFn); err != nil {
		return false
	}
	nl, rows := len(s.leaves), s.rows
	for r := 0; r < rows; r++ {
		var a float64
		for li := 0; li < nl; li++ {
			a += s.leafAct[li*rows+r]
		}
		s.act[r] = a
	}
	var obj float64
	for li := 0; li < nl; li++ {
		obj += s.leafObj[li]
	}
	s.obj = obj
	return true
}

// reduceLBSum reduces the per-block dual-ascent bounds in s.lbBuf to their
// total: the flat sequential sum on single-leaf solves, the fixed-leaf tree
// on multi-leaf ones.
func (s *solver) reduceLBSum(numBlocks int) float64 {
	start := time.Now()
	defer func() { s.stats.ReduceTime += time.Since(start) }()
	if s.leafSum != nil {
		if err := s.pool.RunTasks(s.ctx, s.leafTasks, s.lbSumLeafFn); err == nil {
			var lr float64
			for li := range s.leafSum {
				lr += s.leafSum[li]
			}
			return lr
		}
	}
	var lr float64
	for vi := 0; vi < numBlocks; vi++ {
		lr += s.lbBuf[vi]
	}
	return lr
}

// reduceGrad accumulates the subgradient A·z_q of the current per-block
// minimizers (s.lbSols) into grad, zeroing it first. Single-leaf solves run
// the flat sequential accumulation; multi-leaf solves reduce per leaf and
// merge in leaf order. The per-leaf gradient buffer is lazy — subgradients
// are only requested during dual polish.
func (s *solver) reduceGrad(grad []float64, numBlocks int) {
	start := time.Now()
	defer func() { s.stats.ReduceTime += time.Since(start) }()
	if s.leafSum != nil {
		if s.leafGrad == nil {
			s.leafGrad = make([]float64, len(s.leaves)*s.rows)
		}
		if err := s.pool.RunTasks(s.ctx, s.leafTasks, s.gradLeafFn); err == nil {
			nl, rows := len(s.leaves), s.rows
			for r := 0; r < rows; r++ {
				var a float64
				for li := 0; li < nl; li++ {
					a += s.leafGrad[li*rows+r]
				}
				grad[r] = a
			}
			return
		}
	}
	for r := range grad {
		grad[r] = 0
	}
	for vi := 0; vi < numBlocks; vi++ {
		s.accumulateIntRows(vi, &s.lbSols[vi], grad)
	}
}
