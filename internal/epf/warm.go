package epf

import (
	"math"

	"vodplace/internal/mip"
)

// WarmVideo is the per-video slice of a WarmState: the offices holding the
// video in the previous period's final placement.
type WarmVideo struct {
	// Open is the previous solve's open office set for this video, ascending.
	Open []int32
}

// WarmState is the cross-period carryover exported on every Result: the
// final Lagrangian row duals, the descent's final penalty scale, a
// line-search step hint, and each video's final open office set keyed by the
// catalog's stable video ID. A later solve over a shifted instance accepts
// it via Options.Warm to seed its initial point, its initial lower bound and
// its facility-location local searches.
//
// Staleness rules: the dual vector is used only when its dimension matches
// the new instance's coupling rows exactly (same office count, link count
// and slice count); open sets are matched per video ID, so catalog churn
// (new releases, evictions) degrades gracefully — unknown videos fall back
// to the cold single-copy init, known ones keep their sets. A warm solve is
// therefore always well-formed; warmth only changes the starting point, and
// every bound it reports is re-derived on the new instance.
type WarmState struct {
	// RowDuals is the coupling-row dual vector that certified the previous
	// solve's lower bound (layout as Result.RowDuals). It aliases the
	// producing Result's RowDuals slice; treat it as read-only. The layout
	// is shard-independent — duals are keyed by coupling row, never by
	// shard — so warm states move freely between sharded and unsharded
	// solves and across shard counts.
	RowDuals []float64
	// Delta is the penalty scale δ the previous LP descent ended at.
	Delta float64
	// TauHint is the mean accepted line-search step of the previous descent.
	// Advisory telemetry: the fixed-bisection line search no longer consumes
	// it (the Newton variant that did was rejected for plateau drift), but
	// it stays in the state so pipelines can track step-regime shifts across
	// periods.
	TauHint float64
	// Videos maps catalog video ID → final open set.
	Videos map[int]WarmVideo
	// Shards records the producing solve's shard layout (video-index ranges,
	// in order). Purely informational carryover for telemetry and debugging:
	// consuming solves resolve their own layout from their instance and
	// options and never read this field, so a stale layout can't skew a
	// warm solve.
	Shards []WarmShard
}

// WarmShard is one catalog shard [Lo, Hi) of the solve that produced a
// WarmState, in that solve's video-index space.
type WarmShard struct {
	Lo, Hi int
}

// exportWarm captures the solver's final state as a WarmState. Called from
// buildResult on every solve (cold or warm) so any Result can seed the next
// period; the export reads only driver-goroutine state and never feeds back
// into the producing solve.
func (s *solver) exportWarm(res *Result) *WarmState {
	w := &WarmState{
		RowDuals: res.RowDuals,
		Delta:    s.lpDelta,
		Videos:   make(map[int]WarmVideo, len(s.sol)),
		Shards:   make([]WarmShard, len(s.shards)),
	}
	for si, sp := range s.shards {
		w.Shards[si] = WarmShard{Lo: sp.lo, Hi: sp.hi}
	}
	if s.tauN > 0 {
		w.TauHint = s.tauSum / float64(s.tauN)
	}
	for vi := range s.sol {
		open := warmOpenSet(s.sol[vi].open)
		if len(open) == 0 {
			continue
		}
		w.Videos[s.inst.Demands[vi].Video] = WarmVideo{Open: open}
	}
	return w
}

// warmOpenSet extracts the integral open set of a block: offices with
// y ≥ ½, falling back to the largest-y office when the block is spread thin.
// The input is ascending, so the output is too.
func warmOpenSet(open []mip.Frac) []int32 {
	var out []int32
	var best int32 = -1
	var bestV float64
	for _, f := range open {
		if f.V > bestV {
			bestV, best = f.V, f.I
		}
		if f.V >= 0.5 {
			out = append(out, f.I)
		}
	}
	if len(out) == 0 && best >= 0 {
		out = append(out, best)
	}
	return out
}

// warmVideoOpen returns the valid warm open set for video index vi, or nil
// when the warm state has none (unknown ID, or offices outside [0, n) from a
// topology change) — the per-video cold fallback.
func (s *solver) warmVideoOpen(vi int) []int32 {
	w := s.opts.Warm
	if w == nil {
		return nil
	}
	wv, ok := w.Videos[s.inst.Demands[vi].Video]
	if !ok || len(wv.Open) == 0 {
		return nil
	}
	for _, i := range wv.Open {
		if i < 0 || int(i) >= s.n {
			return nil
		}
	}
	return wv.Open
}

// seedWarmBlock initializes block vi from the warm open set: every listed
// office holds a full copy and each demand office is served from its
// cheapest open copy (lowest index on ties, matching the deterministic scan
// order used everywhere else).
func (s *solver) seedWarmBlock(vi int, open []int32) {
	d := &s.inst.Demands[vi]
	bs := &s.sol[vi]
	bs.open = bs.open[:0]
	for _, i := range open {
		bs.open = append(bs.open, mip.Frac{I: i, V: 1})
	}
	bs.assign = make([][]mip.Frac, len(d.Js))
	n := s.n
	for k := range bs.assign {
		col := s.costT[int(d.Js[k])*n : (int(d.Js[k])+1)*n]
		bi := open[0]
		bc := col[open[0]]
		for _, i := range open[1:] {
			if col[i] < bc {
				bc, bi = col[i], i
			}
		}
		bs.assign[k] = []mip.Frac{{I: bi, V: 1}}
	}
}

// seedWarmDescent folds the warm state into the freshly initialized descent:
// the previous duals are re-evaluated on this instance (a valid Lagrangian
// bound wherever they came from, so the certificate invariant holds — if the
// warm bound wins, lbDuals is exactly the vector that achieves it) and seed
// the smoothed-dual series; the previous δ may sharpen the initial penalty
// scale but never below the seeded point's actual violation. Called from
// initDescent, after the cold defaults are in place.
func (s *solver) seedWarmDescent() {
	w := s.opts.Warm
	if w == nil {
		return
	}
	dualsOK := len(w.RowDuals) == s.rows && finiteNonNegative(w.RowDuals)
	if dualsOK {
		if lr := s.lagrangianBound(w.RowDuals); lr > s.lb {
			s.lb = lr
			copy(s.lbDuals, w.RowDuals)
		}
		copy(s.qBar, w.RowDuals)
		s.qBarSet = true
		s.lbScale = 1
		s.retargetB()
	}
	// δ and τ hints describe where the previous descent's *guided* trajectory
	// ended; without the dual guidance (stale vector rejected above) a small
	// δ over the concentrated warm point sends the exponential penalties into
	// overdrive and the descent thrashes — so they ride only with the duals.
	if !dualsOK {
		return
	}
	if w.Delta > 0 {
		dc, _ := s.maxCouplingViol()
		floor := math.Max(dc, s.opts.Epsilon/2)
		if d := math.Max(w.Delta, floor); d < s.delta {
			s.delta = d
			s.alpha = s.gammaLnM1 / s.delta
		}
	}
}

// finiteNonNegative reports whether every entry is a usable dual value.
func finiteNonNegative(v []float64) bool {
	for _, x := range v {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
