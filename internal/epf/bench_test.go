package epf

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"vodplace/internal/facloc"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
)

// benchInstance builds a mid-size instance with several time slices and a
// sparse concurrency matrix (off-peak slices have zero concurrency at many
// offices), the shape the flat kernels are designed for.
func benchInstance(b *testing.B, seed int64, nodes, videos, slices int) *mip.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topology.Random(nodes, 1.0, seed)
	demands := make([]mip.VideoDemand, videos)
	var totalSize float64
	for v := range demands {
		size := []float64{0.1, 0.5, 1, 2}[rng.Intn(4)]
		totalSize += size
		nj := 1 + int(float64(nodes-1)*math.Pow(float64(v+1), -0.5))
		if extra := rng.Intn(3); nj+extra <= nodes {
			nj += extra
		}
		js := rng.Perm(nodes)[:nj]
		for a := 1; a < len(js); a++ {
			for c := a; c > 0 && js[c-1] > js[c]; c-- {
				js[c-1], js[c] = js[c], js[c-1]
			}
		}
		d := mip.VideoDemand{Video: v, SizeGB: size, RateMbps: 2}
		for _, j := range js {
			d.Js = append(d.Js, int32(j))
			d.Agg = append(d.Agg, rng.Float64()*20*math.Pow(float64(v+1), -0.8))
		}
		d.Conc = make([][]float64, slices)
		for t := range d.Conc {
			row := make([]float64, len(d.Js))
			for k := range row {
				// Peak slice 0 is dense; later slices are increasingly sparse,
				// exercising the nonzero-slice fast paths.
				if t == 0 || rng.Intn(t+1) == 0 {
					row[k] = math.Ceil(d.Agg[k] / float64(4+t))
				}
			}
			d.Conc[t] = row
		}
		demands[v] = d
	}
	disk := make([]float64, nodes)
	for i := range disk {
		disk[i] = totalSize * 2.0 / float64(nodes)
	}
	caps := make([]float64, g.NumLinks())
	for i := range caps {
		caps[i] = 300
	}
	inst, err := mip.NewInstance(g, disk, caps, slices, demands)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// benchSolver returns a solver advanced a few passes into a representative
// mid-solve state (warm scratch, non-trivial activities and duals).
func benchSolver(b *testing.B) *solver {
	b.Helper()
	inst := benchInstance(b, 1, 20, 400, 3)
	s, err := newSolver(inst, Options{Seed: 1, MaxPasses: 3, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.close)
	s.run(context.Background())
	return s
}

// BenchmarkAddBlockRows measures one full add+remove activity sweep over
// every block (the incremental state-update kernel).
func BenchmarkAddBlockRows(b *testing.B) {
	s := benchSolver(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for vi := range s.sol {
			s.addBlockRows(vi, &s.sol[vi], +1)
			s.addBlockRows(vi, &s.sol[vi], -1)
		}
	}
}

// BenchmarkComputePathDuals measures one full path-dual aggregation (the
// per-chunk dual refresh kernel).
func BenchmarkComputePathDuals(b *testing.B) {
	s := benchSolver(b)
	s.computeDuals(s.q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.computePathDuals(s.q)
	}
}

// BenchmarkBuildBlockProblem measures pricing every video's facility-location
// block under frozen duals (the dominant per-chunk kernel).
func BenchmarkBuildBlockProblem(b *testing.B) {
	s := benchSolver(b)
	s.computeDuals(s.q)
	s.computePathDuals(s.q)
	var prob facloc.Problem
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for vi := range s.sol {
			s.buildBlockProblem(vi, s.q, &prob)
		}
	}
}

// BenchmarkLineSearch measures one exact potential line search over a
// synthetic 48-row delta whose root is interior (so the search never exits on
// the endpoint tests and the full iteration budget runs).
func BenchmarkLineSearch(b *testing.B) {
	s := benchSolver(b)
	s.touched = s.touched[:0]
	m := 48
	if m > s.rows {
		m = s.rows
	}
	for r := 0; r < m; r++ {
		s.touched = append(s.touched, int32(r))
		if r%2 == 0 {
			s.act[r] = 1.2 * s.b[r] // hot row relieved by the step
			s.acc[r] = -0.3 * s.b[r]
		} else {
			s.act[r] = 0.8 * s.b[r] // cold row loaded by the step
			s.acc[r] = 0.45 * s.b[r]
		}
	}
	s.alpha = 50
	dObj := 1e-6 * s.bObj
	if got := s.lineSearch(dObj); got <= 0 || got >= 1 {
		b.Fatalf("line-search root %g not interior; benchmark state is degenerate", got)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.lineSearch(dObj)
	}
}

// BenchmarkEPFSolveQuick is the end-to-end tracked benchmark: a complete LP
// solve (default options, fixed seed) on a mid-size instance. BENCH_epf.json
// records its trajectory across PRs.
func BenchmarkEPFSolveQuick(b *testing.B) {
	inst := benchInstance(b, 1, 20, 400, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(inst, Options{Seed: 1, MaxPasses: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
