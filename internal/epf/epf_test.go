package epf

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"vodplace/internal/mip"
	"vodplace/internal/topology"
)

func pathGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.New("path", n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	return g
}

func uniformCaps(g *topology.Graph, c float64) []float64 {
	out := make([]float64, g.NumLinks())
	for i := range out {
		out[i] = c
	}
	return out
}

// inst2x2: two offices, one link. Video 0 is hot at office 0, video 1 hot at
// office 1; disk fits exactly one video per office. The optimum stores each
// video at its hot office and serves the cold demand remotely: cost 2.
func inst2x2(t *testing.T) *mip.Instance {
	t.Helper()
	g := topology.New("pair", 2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	demands := []mip.VideoDemand{
		{
			Video: 0, SizeGB: 1, RateMbps: 2,
			Js: []int32{0, 1}, Agg: []float64{10, 1},
			Conc: [][]float64{{3, 1}},
		},
		{
			Video: 1, SizeGB: 1, RateMbps: 2,
			Js: []int32{0, 1}, Agg: []float64{1, 10},
			Conc: [][]float64{{1, 3}},
		},
	}
	inst, err := mip.NewInstance(g, []float64{1, 1}, uniformCaps(g, 1000), 1, demands)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSolveIntegerFindsOptimum2x2(t *testing.T) {
	inst := inst2x2(t)
	res, err := SolveInteger(inst, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rounded {
		t.Error("result not marked rounded")
	}
	if !res.Sol.IsIntegral(1e-9) {
		t.Error("SolveInteger returned fractional y")
	}
	// Optimal cost is 2 (one remote unit each way).
	if res.Objective < 2-1e-6 {
		t.Errorf("objective %g below true optimum 2", res.Objective)
	}
	if res.Objective > 2+1e-6 {
		t.Errorf("objective %g, want optimal 2", res.Objective)
	}
	if v := res.Sol.Check(); v.Max() > 0.02 {
		t.Errorf("violations too large: %+v", v)
	}
	if res.LowerBound > res.Objective+1e-9 {
		t.Errorf("lower bound %g exceeds objective %g", res.LowerBound, res.Objective)
	}
	// Each video stored exactly at its hot office.
	if y := res.Sol.Videos[0].YAt(0); y != 1 {
		t.Errorf("video 0 not stored at office 0 (y=%g)", y)
	}
	if y := res.Sol.Videos[1].YAt(1); y != 1 {
		t.Errorf("video 1 not stored at office 1 (y=%g)", y)
	}
}

func TestLinkConstraintForcesReplication(t *testing.T) {
	// One video, heavy concurrent demand at both ends of a 3-office path,
	// links too small for remote streaming: the only near-feasible placement
	// stores copies at both ends.
	g := pathGraph(t, 3)
	demands := []mip.VideoDemand{{
		Video: 0, SizeGB: 1, RateMbps: 2,
		Js: []int32{0, 2}, Agg: []float64{10, 10},
		Conc: [][]float64{{10, 10}},
	}}
	inst, err := mip.NewInstance(g, []float64{1, 1, 1}, uniformCaps(g, 5), 1, demands)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveInteger(inst, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Sol.Check(); v.Link > 0.05 {
		t.Errorf("link violation %g; placement did not respect link capacity", v.Link)
	}
	cp := res.Sol.Copies()[0]
	if cp < 2 {
		t.Errorf("video has %d copies; link capacity requires at least 2", cp)
	}
	// Local service costs nothing, so the objective should be near zero.
	if res.Objective > 1 {
		t.Errorf("objective %g; expected near-local service", res.Objective)
	}
}

func TestSolveNoTimeSlices(t *testing.T) {
	// T = 0: pure disk-constrained placement (no link rows).
	g := pathGraph(t, 3)
	demands := []mip.VideoDemand{
		{Video: 0, SizeGB: 1, RateMbps: 2, Js: []int32{0}, Agg: []float64{5}, Conc: [][]float64{}},
		{Video: 1, SizeGB: 1, RateMbps: 2, Js: []int32{2}, Agg: []float64{5}, Conc: [][]float64{}},
	}
	inst, err := mip.NewInstance(g, []float64{1, 1, 1}, uniformCaps(g, 1000), 0, demands)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveInteger(inst, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 1e-6 {
		t.Errorf("objective %g, want 0 (both videos fit locally)", res.Objective)
	}
	if v := res.Sol.Check(); v.Max() > 1e-6 {
		t.Errorf("violations: %+v", v)
	}
}

func TestZeroDemandVideosPlaced(t *testing.T) {
	g := pathGraph(t, 3)
	demands := []mip.VideoDemand{
		{Video: 0, SizeGB: 1, RateMbps: 2, Conc: [][]float64{{}}[0:0]},
		{Video: 1, SizeGB: 1, RateMbps: 2, Conc: nil},
	}
	// Fix Conc to match slices=0.
	demands[0].Conc = [][]float64{}
	demands[1].Conc = [][]float64{}
	inst, err := mip.NewInstance(g, []float64{1, 1, 1}, uniformCaps(g, 10), 0, demands)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveInteger(inst, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for vi := range res.Sol.Videos {
		var ysum float64
		for _, f := range res.Sol.Videos[vi].Open {
			ysum += f.V
		}
		if ysum < 1-1e-9 {
			t.Errorf("zero-demand video %d not stored (Σy = %g)", vi, ysum)
		}
	}
	if v := res.Sol.Check(); v.Max() > 1e-9 {
		t.Errorf("violations: %+v", v)
	}
}

// randomInstance builds a medium random instance for convergence tests.
func randomInstance(t *testing.T, seed int64, nodes, videos int, diskFactor float64, linkCap float64) *mip.Instance {
	t.Helper()
	g, disk, caps, demands := randomProblem(t, seed, nodes, videos, diskFactor, linkCap)
	inst, err := mip.NewInstance(g, disk, caps, 1, demands)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// randomProblem returns the raw pieces of randomInstance's problem so tests
// can assemble the same instance through alternative construction paths
// (e.g. the streaming InstanceBuilder).
func randomProblem(t *testing.T, seed int64, nodes, videos int, diskFactor float64, linkCap float64) (*topology.Graph, []float64, []float64, []mip.VideoDemand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topology.Random(nodes, 1.0, seed)
	demands := make([]mip.VideoDemand, videos)
	var totalSize float64
	for v := range demands {
		size := []float64{0.1, 0.5, 1, 2}[rng.Intn(4)]
		totalSize += size
		// Realistic demand sparsity: head videos are requested at most
		// offices, tail videos at one or two (the long-tail structure the
		// paper's traces exhibit, and what makes integer placements good).
		nj := 1 + int(float64(nodes-1)*math.Pow(float64(v+1), -0.5))
		if extra := rng.Intn(3); nj+extra <= nodes {
			nj += extra
		}
		js := rng.Perm(nodes)[:nj]
		intJs := make([]int, len(js))
		copy(intJs, js)
		// sort ascending
		for a := 1; a < len(intJs); a++ {
			for b := a; b > 0 && intJs[b-1] > intJs[b]; b-- {
				intJs[b-1], intJs[b] = intJs[b], intJs[b-1]
			}
		}
		d := mip.VideoDemand{Video: v, SizeGB: size, RateMbps: 2}
		for _, j := range intJs {
			d.Js = append(d.Js, int32(j))
			a := rng.Float64() * 20 * math.Pow(float64(v+1), -0.8)
			d.Agg = append(d.Agg, a)
		}
		conc := make([]float64, len(d.Js))
		for k := range conc {
			conc[k] = math.Ceil(d.Agg[k] / 4)
		}
		d.Conc = [][]float64{conc}
		demands[v] = d
	}
	disk := make([]float64, nodes)
	for i := range disk {
		disk[i] = totalSize * diskFactor / float64(nodes)
	}
	return g, disk, uniformCaps(g, linkCap), demands
}

func TestSolveMediumInstance(t *testing.T) {
	// An adversarial dense-random instance with tight disk (aggregate 2×
	// library). The paper reports typical observed gaps of 1-2% against the
	// Lagrangian bound; require ε-feasibility and a gap within that band.
	inst := randomInstance(t, 7, 10, 120, 2.0, 200)
	res, err := Solve(inst, Options{Seed: 2, MaxPasses: 250})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation.Disk > 0.011 || res.Violation.Link > 0.011 {
		t.Errorf("ε-feasibility violated: %+v", res.Violation)
	}
	if res.Violation.Unserved > 1e-6 || res.Violation.XExceedsY > 1e-6 {
		t.Errorf("block constraints violated: %+v", res.Violation)
	}
	if res.LowerBound > res.Objective*(1+1e-9) {
		t.Errorf("LB %g above objective %g", res.LowerBound, res.Objective)
	}
	if res.Gap > 0.025 {
		t.Errorf("gap %g outside the paper's 1-2%% band", res.Gap)
	}
}

func TestSolveIntegerMediumInstance(t *testing.T) {
	inst := randomInstance(t, 11, 10, 150, 2.0, 200)
	res, err := SolveInteger(inst, Options{Seed: 2, MaxPasses: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sol.IsIntegral(integralTol) {
		t.Error("rounded solution not integral")
	}
	if res.Violation.Unserved > 1e-6 || res.Violation.XExceedsY > 1e-6 {
		t.Errorf("block constraints violated after rounding: %+v", res.Violation)
	}
	// The paper reports rounding keeps violations and gap small (§V-D:
	// ≤ ~4-5% on 5K-video instances).
	if res.Violation.Disk > 0.10 || res.Violation.Link > 0.10 {
		t.Errorf("rounding blew up violations: %+v", res.Violation)
	}
	if res.LowerBound > 0 && res.Gap > 0.25 {
		t.Errorf("rounded gap %g too large", res.Gap)
	}
}

func TestSolveDeterministic(t *testing.T) {
	a := mustSolve(t, randomInstance(t, 3, 8, 60, 2.0, 100), Options{Seed: 5, MaxPasses: 40})
	b := mustSolve(t, randomInstance(t, 3, 8, 60, 2.0, 100), Options{Seed: 5, MaxPasses: 40})
	if math.Abs(a.Objective-b.Objective) > 1e-9 || math.Abs(a.LowerBound-b.LowerBound) > 1e-9 {
		t.Errorf("same seed diverged: (%g,%g) vs (%g,%g)", a.Objective, a.LowerBound, b.Objective, b.LowerBound)
	}
}

func mustSolve(t *testing.T, inst *mip.Instance, o Options) *Result {
	t.Helper()
	res, err := Solve(inst, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// White-box: incremental activity tracking must agree with a from-scratch
// recompute after several passes.
func TestActivityConsistency(t *testing.T) {
	inst := randomInstance(t, 13, 8, 80, 2.5, 150)
	s, err := newSolver(inst, Options{Seed: 4, MaxPasses: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	_ = s.run(context.Background())
	saved := append([]float64(nil), s.act...)
	savedObj := s.obj
	s.recomputeState()
	for r := range s.act {
		scale := math.Max(1, math.Abs(s.act[r]))
		if math.Abs(s.act[r]-saved[r])/scale > 1e-6 {
			t.Errorf("row %d drift: incremental %g vs exact %g", r, saved[r], s.act[r])
		}
	}
	if math.Abs(savedObj-s.obj)/math.Max(1, s.obj) > 1e-6 {
		t.Errorf("objective drift: %g vs %g", savedObj, s.obj)
	}
}

func TestMergeFracs(t *testing.T) {
	s := &solver{mergeBuf: make([]mip.Frac, 0, 8)}
	mergeFracs := func(a []mip.Frac, ib int32, tau, prune float64) []mip.Frac {
		s.mergeFracs(a, ib, tau, prune)
		return append([]mip.Frac(nil), s.mergeBuf...)
	}
	a := []mip.Frac{{I: 1, V: 0.5}, {I: 3, V: 0.5}}
	got := mergeFracs(a, 2, 0.4, 1e-12)
	// (1-0.4)*a + 0.4*unit(2) = {1:0.3, 2:0.4, 3:0.3}
	want := []mip.Frac{{I: 1, V: 0.3}, {I: 2, V: 0.4}, {I: 3, V: 0.3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	var sum float64
	for i := range got {
		if got[i].I != want[i].I || math.Abs(got[i].V-want[i].V) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
		sum += got[i].V
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("merged sum %g, want 1", sum)
	}
	// Existing office case.
	got = mergeFracs(a, 3, 0.5, 1e-12)
	if len(got) != 2 || math.Abs(got[1].V-0.75) > 1e-12 {
		t.Fatalf("merge into existing: got %v", got)
	}
	// Empty input.
	got = mergeFracs(nil, 4, 1, 1e-12)
	if len(got) != 1 || got[0].I != 4 || got[0].V != 1 {
		t.Fatalf("merge into empty: got %v", got)
	}
	// Insertion at the tail.
	got = mergeFracs([]mip.Frac{{I: 0, V: 1}}, 5, 0.25, 1e-12)
	if len(got) != 2 || got[1].I != 5 || math.Abs(got[1].V-0.25) > 1e-12 {
		t.Fatalf("tail insert: got %v", got)
	}
}

func TestExpClamp(t *testing.T) {
	if expClamp(-2*lineExpCap) != 0 {
		t.Error("large negative should underflow to 0")
	}
	if math.IsInf(expClamp(2*lineExpCap), 1) {
		t.Error("clamped exp must stay finite")
	}
	if expClamp(2*lineExpCap) != math.Exp(lineExpCap) {
		t.Error("positive overflow should saturate exactly at the cap")
	}
	if math.Abs(expClamp(1)-math.E) > 1e-12 {
		t.Error("expClamp(1) != e")
	}
}

// The two exponent caps are deliberately ordered: dual prices get multiplied
// by B/b_r and summed over paths, so they need more overflow headroom than
// the line-search derivative terms, which are only compared by sign and
// relative size.
func TestExpCapOrdering(t *testing.T) {
	if dualExpCap >= lineExpCap {
		t.Errorf("dualExpCap (%d) must be tighter than lineExpCap (%d)", dualExpCap, lineExpCap)
	}
	if !math.IsInf(math.Exp(2*lineExpCap), 1) {
		t.Error("caps only matter if the uncapped exponent would overflow")
	}
	if math.IsInf(math.Exp(lineExpCap), 1) {
		t.Error("lineExpCap itself must stay finite")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	d := o.withDefaults()
	if d.Epsilon != 0.01 || d.Gamma != 1 || d.MaxPasses <= 0 || d.Workers <= 0 || d.LBEvery != 1 {
		t.Errorf("bad defaults: %+v", d)
	}
	if d.ChunkSize != 0 {
		t.Errorf("ChunkSize should stay 0 (adaptive) until instance size is known, got %d", d.ChunkSize)
	}
	o = Options{Rho: -1}
	if d := o.withDefaults(); d.Rho != 0.5 {
		t.Errorf("negative rho not defaulted: %g", d.Rho)
	}
}

func TestSolveNilInstance(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Error("nil instance accepted")
	}
}

func TestOnPassCallback(t *testing.T) {
	inst := randomInstance(t, 21, 6, 30, 2.5, 100)
	calls := 0
	_, err := Solve(inst, Options{Seed: 1, MaxPasses: 10, OnPass: func(pi PassInfo) {
		calls++
		if pi.Pass <= 0 {
			t.Errorf("bad pass number %d", pi.Pass)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("OnPass never invoked")
	}
}

func TestLowerBoundMonotoneAcrossPasses(t *testing.T) {
	inst := randomInstance(t, 17, 8, 60, 2.0, 150)
	var lbs []float64
	_, err := Solve(inst, Options{Seed: 1, MaxPasses: 30, OnPass: func(pi PassInfo) {
		lbs = append(lbs, pi.LowerBound)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(lbs); i++ {
		if lbs[i] < lbs[i-1]-1e-9 {
			t.Errorf("lower bound decreased at pass %d: %g -> %g", i, lbs[i-1], lbs[i])
		}
	}
}

// TestRowDualsContract pins the exported dual certificate: RowDuals always
// has one entry per coupling row (n disk + L·T link), every entry is finite
// and non-negative, and the vector is a fresh copy per Result (mutating one
// result cannot corrupt another). internal/verify's CertifyLowerBound
// consumes exactly this contract.
func TestRowDualsContract(t *testing.T) {
	inst := randomInstance(t, 5, 6, 40, 2.5, 150)
	wantRows := inst.NumVHOs() + inst.G.NumLinks()*inst.Slices
	for _, solve := range []struct {
		name string
		fn   func() (*Result, error)
	}{
		{"Solve", func() (*Result, error) { return Solve(inst, Options{Seed: 4, MaxPasses: 60}) }},
		{"SolveInteger", func() (*Result, error) { return SolveInteger(inst, Options{Seed: 4, MaxPasses: 60}) }},
	} {
		t.Run(solve.name, func(t *testing.T) {
			res, err := solve.fn()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.RowDuals) != wantRows {
				t.Fatalf("RowDuals has %d entries, want %d", len(res.RowDuals), wantRows)
			}
			for r, v := range res.RowDuals {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("RowDuals[%d] = %g", r, v)
				}
			}
			// A second solve must return an independent copy.
			res2, err := solve.fn()
			if err != nil {
				t.Fatal(err)
			}
			before := res2.RowDuals[0]
			res.RowDuals[0] = math.NaN()
			if res2.RowDuals[0] != before {
				t.Error("RowDuals aliases solver-internal state across results")
			}
		})
	}
}
