package epf

import (
	"bytes"
	"context"
	"testing"

	"vodplace/internal/mip"
	"vodplace/internal/obs"
)

// identicalSolutions reports whether two solutions are bit-identical:
// every sparse entry equal with ==, no tolerance.
func identicalSolutions(a, b *mip.Solution) bool {
	if len(a.Videos) != len(b.Videos) {
		return false
	}
	for vi := range a.Videos {
		va, vb := &a.Videos[vi], &b.Videos[vi]
		if len(va.Open) != len(vb.Open) {
			return false
		}
		for i := range va.Open {
			if va.Open[i] != vb.Open[i] {
				return false
			}
		}
		if len(va.Assign) != len(vb.Assign) {
			return false
		}
		for k := range va.Assign {
			if len(va.Assign[k]) != len(vb.Assign[k]) {
				return false
			}
			for i := range va.Assign[k] {
				if va.Assign[k][i] != vb.Assign[k][i] {
					return false
				}
			}
		}
	}
	return true
}

// The determinism invariant: the worker count partitions work but never
// changes the floating-point summation order, so the same seed must produce
// bit-identical output at any parallelism.
func TestSolveWorkerCountInvariance(t *testing.T) {
	trace := func(workers int) (*Result, []obs.Event) {
		var buf bytes.Buffer
		rec := obs.New(&buf)
		res := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100),
			Options{Seed: 5, MaxPasses: 30, Workers: workers, Recorder: rec})
		if err := rec.Close(); err != nil {
			t.Fatalf("recorder close: %v", err)
		}
		events, err := obs.ParseTrace(&buf)
		if err != nil {
			t.Fatalf("parse trace: %v", err)
		}
		return res, events
	}
	a, eventsA := trace(1)
	for _, workers := range []int{2, 3, 8} {
		b, eventsB := trace(workers)
		if a.LowerBound != b.LowerBound {
			t.Errorf("Workers=1 vs %d: lower bound %.17g vs %.17g", workers, a.LowerBound, b.LowerBound)
		}
		if a.Objective != b.Objective {
			t.Errorf("Workers=1 vs %d: objective %.17g vs %.17g", workers, a.Objective, b.Objective)
		}
		if !identicalSolutions(a.Sol, b.Sol) {
			t.Errorf("Workers=1 vs %d: solutions differ", workers)
		}
		// The invariance extends to the whole traced convergence trajectory:
		// every deterministic field of every pass event must match bit-exactly.
		if len(eventsA) != len(eventsB) {
			t.Errorf("Workers=1 vs %d: %d trace events vs %d", workers, len(eventsA), len(eventsB))
			continue
		}
		for i := range eventsA {
			ea, eb := eventsA[i], eventsB[i]
			if ea.K != eb.K || ea.Pass != eb.Pass {
				t.Errorf("Workers=1 vs %d: event %d is %s/%d vs %s/%d", workers, i, ea.K, ea.Pass, eb.K, eb.Pass)
				continue
			}
			if ea.K != "epf_pass" {
				continue
			}
			if ea.Phi != eb.Phi || ea.Objective != eb.Objective || ea.LowerBound != eb.LowerBound ||
				ea.UpperBound != eb.UpperBound || ea.Gap != eb.Gap || ea.UBGap != eb.UBGap ||
				ea.MaxViol != eb.MaxViol || ea.MaxLinkUtil != eb.MaxLinkUtil ||
				ea.MeanLinkUtil != eb.MeanLinkUtil || ea.Delta != eb.Delta || ea.Blocks != eb.Blocks {
				t.Errorf("Workers=1 vs %d: pass %d traced series diverges:\n  1: %+v\n  %d: %+v",
					workers, ea.Pass, ea, workers, eb)
			}
		}
	}
}

func TestSolveIntegerWorkerCountInvariance(t *testing.T) {
	inst1 := randomInstance(t, 9, 8, 60, 2.0, 100)
	inst8 := randomInstance(t, 9, 8, 60, 2.0, 100)
	a, err := SolveInteger(inst1, Options{Seed: 5, MaxPasses: 30, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveInteger(inst8, Options{Seed: 5, MaxPasses: 30, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.LowerBound != b.LowerBound || a.Objective != b.Objective {
		t.Errorf("Workers=1 vs 8: (%.17g, %.17g) vs (%.17g, %.17g)",
			a.Objective, a.LowerBound, b.Objective, b.LowerBound)
	}
	if !identicalSolutions(a.Sol, b.Sol) {
		t.Error("Workers=1 vs 8: rounded solutions differ")
	}
}

func TestSolveContextCancelledMidSolve(t *testing.T) {
	inst := randomInstance(t, 7, 10, 120, 2.0, 200)
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Seed: 2, MaxPasses: 250, OnPass: func(pi PassInfo) {
		if pi.Pass == 2 {
			cancel()
		}
	}}
	res, err := SolveContext(ctx, inst, opts)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled solve returned nil result")
	}
	// Prompt: cancellation lands at the next chunk boundary, so at most one
	// extra pass starts after the cancelling callback.
	if res.Passes > 3 {
		t.Errorf("solve ran %d passes after cancellation at pass 2", res.Passes)
	}
	// Partial but usable: a real solution with sane bookkeeping.
	if res.Sol == nil || len(res.Sol.Videos) != len(inst.Demands) {
		t.Error("partial result has no usable solution")
	}
	if v := res.Violation; v.Unserved > 1e-6 || v.XExceedsY > 1e-6 {
		t.Errorf("partial solution violates block constraints: %+v", v)
	}
	if res.Stats.BlocksOptimized == 0 {
		t.Error("partial result reports no work done")
	}
}

func TestSolveContextPreCancelled(t *testing.T) {
	inst := randomInstance(t, 3, 8, 60, 2.0, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveIntegerContext(ctx, inst, Options{Seed: 1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Sol == nil {
		t.Fatal("pre-cancelled solve returned no result")
	}
	if res.Stats.BlocksOptimized != 0 {
		t.Errorf("pre-cancelled solve optimized %d blocks", res.Stats.BlocksOptimized)
	}
}

func TestResultStatsPopulated(t *testing.T) {
	inst := randomInstance(t, 3, 8, 60, 2.0, 100)
	res, err := SolveInteger(inst, Options{Seed: 5, MaxPasses: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Workers != 4 {
		t.Errorf("Stats.Workers = %d, want 4", st.Workers)
	}
	if st.Passes != res.Passes {
		t.Errorf("Stats.Passes = %d, want %d", st.Passes, res.Passes)
	}
	if st.BlocksOptimized == 0 || st.LBBlockSolves == 0 || st.LBEvals == 0 {
		t.Errorf("work counters empty: %+v", st)
	}
	if st.DualRefreshes == 0 || st.LineSearches == 0 {
		t.Errorf("sequential counters empty: %+v", st)
	}
	// The scratch economy: at most one allocation per worker, everything
	// else a reuse.
	if st.ScratchAllocs > int64(st.Workers) {
		t.Errorf("%d scratch allocs for %d workers", st.ScratchAllocs, st.Workers)
	}
	if st.ScratchReuses == 0 {
		t.Error("no scratch reuses recorded")
	}
	if st.LPTime <= 0 {
		t.Errorf("LPTime = %v, want > 0", st.LPTime)
	}
	if st.RoundTime <= 0 {
		t.Errorf("RoundTime = %v, want > 0", st.RoundTime)
	}
	if st.String() == "" {
		t.Error("Stats.String() empty")
	}
}
