package epf

import (
	"context"
	"testing"
)

// The performance architecture's allocation contract (DESIGN.md §8): once a
// solve is warmed up — per-worker scratch live, merge-row and chunk-result
// capacities grown to their steady state — a full gradient-descent pass
// allocates nothing. Every buffer a pass touches is created or
// capacity-bounded in newSolver/initRun, so a regression here means a hot
// kernel started allocating again (a closure escaping, a slice growing per
// call) and shows up long before it is visible in wall-clock benchmarks.
func TestDescentPassZeroAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	inst := randomInstance(t, 11, 10, 90, 2.0, 150)
	s, err := newSolver(inst, Options{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	s.ctx = context.Background()
	s.initDescent()
	// Warm-up: sparse row capacities (mergeFracs copies, chunk solutions)
	// grow during early passes and then stabilize. Workers=1 keeps the pass
	// fully deterministic, so the measurement is exact, not flaky.
	for i := 0; i < 6; i++ {
		if !s.descentPass() {
			t.Fatal("warm-up pass cancelled")
		}
	}
	allocs := testing.AllocsPerRun(3, func() {
		if !s.descentPass() {
			t.Fatal("measured pass cancelled")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state descent pass allocates %g times per pass, want 0", allocs)
	}
}

// The same contract for the incremental-pricing fast path: the delta-update
// machinery (qPrev snapshot, reverse-incidence scatter, Newton line search,
// warm-start open sets) must also run allocation-free once warm.
func TestDescentPassZeroAllocationsIncremental(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	inst := randomInstance(t, 11, 10, 90, 2.0, 150)
	s, err := newSolver(inst, Options{Seed: 3, Workers: 1, IncrementalPricing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	s.ctx = context.Background()
	s.initDescent()
	for i := 0; i < 6; i++ {
		if !s.descentPass() {
			t.Fatal("warm-up pass cancelled")
		}
	}
	allocs := testing.AllocsPerRun(3, func() {
		if !s.descentPass() {
			t.Fatal("measured pass cancelled")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state incremental-pricing pass allocates %g times per pass, want 0", allocs)
	}
}
