package epf

import (
	"math"
	"testing"

	"vodplace/internal/mip"
)

// warmBase builds the reference instance for the warm-start tests and a cold
// solve of it whose Result.Warm seeds the warm solves under test.
func warmBase(t *testing.T) (*mip.Instance, *Result) {
	t.Helper()
	inst := randomInstance(t, 17, 10, 80, 2.0, 200)
	res, err := SolveInteger(inst, Options{Seed: 5, MaxPasses: 250})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm == nil {
		t.Fatal("cold solve did not export warm state")
	}
	return inst, res
}

func TestWarmExport(t *testing.T) {
	inst, res := warmBase(t)
	w := res.Warm
	if len(w.RowDuals) != len(res.RowDuals) {
		t.Fatalf("warm duals: %d rows, result has %d", len(w.RowDuals), len(res.RowDuals))
	}
	if w.Delta <= 0 {
		t.Errorf("exported Delta = %g, want > 0", w.Delta)
	}
	if w.TauHint < 0 || w.TauHint > 1 {
		t.Errorf("exported TauHint = %g outside [0,1]", w.TauHint)
	}
	if len(w.Videos) != len(inst.Demands) {
		t.Fatalf("warm state covers %d videos, instance has %d", len(w.Videos), len(inst.Demands))
	}
	for vi := range inst.Demands {
		wv, ok := w.Videos[inst.Demands[vi].Video]
		if !ok {
			t.Fatalf("video %d missing from warm state", inst.Demands[vi].Video)
		}
		if len(wv.Open) == 0 {
			t.Fatalf("video %d exported an empty open set", inst.Demands[vi].Video)
		}
		for _, o := range wv.Open {
			if o < 0 || int(o) >= inst.NumVHOs() {
				t.Fatalf("video %d exported office %d out of range", inst.Demands[vi].Video, o)
			}
		}
	}
}

// TestWarmSolveValidAndCertified is the core tentpole invariant: a warm
// re-solve must stand on its own — audited feasibility claims and a lower
// bound its own duals certify on its own instance — and must land within the
// certified duality gap of the cold solve.
func TestWarmSolveValidAndCertified(t *testing.T) {
	inst, cold := warmBase(t)
	warm, err := SolveInteger(inst, Options{Seed: 5, MaxPasses: 250, Warm: cold.Warm})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmVideos != len(inst.Demands) {
		t.Errorf("warm-seeded %d of %d videos, want all (same catalog)",
			warm.Stats.WarmVideos, len(inst.Demands))
	}
	if v := warm.Sol.Check(); v.Unserved > mip.FeasTol || v.XExceedsY > mip.FeasTol {
		t.Errorf("warm solution violates block constraints: %+v", v)
	}
	// The warm bound must be certified by the warm result's own duals.
	if warm.LowerBound > warm.Objective+1e-9 {
		t.Errorf("warm lb %g exceeds its own objective %g", warm.LowerBound, warm.Objective)
	}
	// Parity: warm and cold objectives bracket the same optimum, so each must
	// lie within the other's certified gap.
	if warm.Objective < cold.LowerBound-1e-9 {
		t.Errorf("warm objective %g below cold certified bound %g", warm.Objective, cold.LowerBound)
	}
	if cold.Objective < warm.LowerBound-1e-9 {
		t.Errorf("cold objective %g below warm certified bound %g", cold.Objective, warm.LowerBound)
	}
	// The whole point: re-solving the same instance from its own final state
	// must not take more passes than the cold solve.
	if warm.Passes > cold.Passes {
		t.Errorf("warm re-solve took %d passes, cold took %d", warm.Passes, cold.Passes)
	}
}

// TestWarmWorkerInvariance: the determinism contract survives warm seeding —
// identical bytes at any worker count.
func TestWarmWorkerInvariance(t *testing.T) {
	inst, cold := warmBase(t)
	var ref *Result
	for _, workers := range []int{1, 3, 7} {
		res, err := SolveInteger(inst, Options{
			Seed: 5, MaxPasses: 250, Workers: workers, Warm: cold.Warm,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Objective != ref.Objective || res.LowerBound != ref.LowerBound || res.Passes != ref.Passes {
			t.Errorf("workers=%d: (obj %v lb %v passes %d) != workers=1 (obj %v lb %v passes %d)",
				workers, res.Objective, res.LowerBound, res.Passes,
				ref.Objective, ref.LowerBound, ref.Passes)
		}
		for vi := range ref.Sol.Videos {
			a, b := ref.Sol.Videos[vi].Open, res.Sol.Videos[vi].Open
			if len(a) != len(b) {
				t.Fatalf("workers=%d: video %d open-set size differs", workers, vi)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: video %d open entry %d differs", workers, vi, i)
				}
			}
		}
	}
}

// TestWarmDualMismatchFallsBack: a warm state whose dual vector does not
// match the new instance's row count (topology or slice-count change) must
// not poison the solve — duals are dropped, per-video seeds still apply.
func TestWarmDualMismatchFallsBack(t *testing.T) {
	inst, cold := warmBase(t)
	w := *cold.Warm
	w.RowDuals = w.RowDuals[:len(w.RowDuals)-1]
	res, err := SolveInteger(inst, Options{Seed: 5, MaxPasses: 250, Warm: &w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WarmVideos == 0 {
		t.Error("per-video seeding should survive a dual-dimension mismatch")
	}
	if res.LowerBound > res.Objective+1e-9 {
		t.Errorf("lb %g exceeds objective %g after dual fallback", res.LowerBound, res.Objective)
	}

	// NaN / negative duals are likewise rejected rather than trusted.
	w2 := *cold.Warm
	w2.RowDuals = append([]float64(nil), cold.Warm.RowDuals...)
	w2.RowDuals[0] = math.NaN()
	if _, err := SolveInteger(inst, Options{Seed: 5, MaxPasses: 250, Warm: &w2}); err != nil {
		t.Fatalf("NaN dual in warm state must fall back, not fail: %v", err)
	}
}

// TestWarmCatalogChurn: videos absent from the warm state (new releases) and
// warm entries with out-of-range offices (topology shrank) fall back to the
// cold init per video; everything else still seeds.
func TestWarmCatalogChurn(t *testing.T) {
	inst, cold := warmBase(t)

	w := &WarmState{
		RowDuals: cold.Warm.RowDuals,
		Delta:    cold.Warm.Delta,
		TauHint:  cold.Warm.TauHint,
		Videos:   make(map[int]WarmVideo, len(cold.Warm.Videos)),
	}
	dropped := 0
	for id, wv := range cold.Warm.Videos {
		switch {
		case id%5 == 0: // churned out of the catalog
			dropped++
		case id%7 == 1: // stale entry pointing at a removed office
			w.Videos[id] = WarmVideo{Open: []int32{int32(inst.NumVHOs())}}
			dropped++
		default:
			w.Videos[id] = wv
		}
	}
	if dropped == 0 {
		t.Fatal("test instance produced no churned videos; widen the filter")
	}

	res, err := SolveInteger(inst, Options{Seed: 5, MaxPasses: 250, Warm: w})
	if err != nil {
		t.Fatal(err)
	}
	want := len(inst.Demands) - dropped
	if res.Stats.WarmVideos != want {
		t.Errorf("WarmVideos = %d, want %d (churned entries must fall back cold)",
			res.Stats.WarmVideos, want)
	}
	if v := res.Sol.Check(); v.Unserved > mip.FeasTol || v.XExceedsY > mip.FeasTol {
		t.Errorf("churned warm solve violates block constraints: %+v", v)
	}
	if res.Objective < cold.LowerBound-1e-9 {
		t.Errorf("churned warm objective %g below certified bound %g", res.Objective, cold.LowerBound)
	}
}

// TestColdPathUnchangedByWarmPlumbing: Options without Warm must produce the
// exact bytes the pre-warm solver produced — the export of warm state and the
// tau bookkeeping must be numerically inert.
func TestColdPathUnchangedByWarmPlumbing(t *testing.T) {
	inst := randomInstance(t, 23, 8, 60, 2.0, 200)
	a, err := SolveInteger(inst, Options{Seed: 9, MaxPasses: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveInteger(inst, Options{Seed: 9, MaxPasses: 200})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.LowerBound != b.LowerBound || a.Passes != b.Passes {
		t.Errorf("cold solve not reproducible: (%v,%v,%d) vs (%v,%v,%d)",
			a.Objective, a.LowerBound, a.Passes, b.Objective, b.LowerBound, b.Passes)
	}
	if a.Stats.WarmVideos != 0 {
		t.Errorf("cold solve reports WarmVideos = %d", a.Stats.WarmVideos)
	}
}
