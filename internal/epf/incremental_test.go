package epf

import (
	"math"
	"testing"
)

// IncrementalPricing changes floating-point trajectories (delta-updated
// path duals, Newton line search, warm-started block solves) but must stay
// a correct solver: same feasibility and optimality guarantees, just a
// different path to them.
func TestIncrementalPricingSolves(t *testing.T) {
	inst := randomInstance(t, 21, 8, 60, 2.0, 100)
	res := mustSolve(t, inst, Options{Seed: 5, MaxPasses: 120, IncrementalPricing: true})
	if !res.Converged {
		t.Fatalf("incremental-pricing solve did not converge: gap %g, violation %+v", res.Gap, res.Violation)
	}
	v := res.Violation
	if v.Unserved > 1e-6 || v.XExceedsY > 1e-6 {
		t.Errorf("block constraints violated: %+v", v)
	}
	if res.Objective < res.LowerBound*(1-1e-9) {
		t.Errorf("objective %g below certified lower bound %g", res.Objective, res.LowerBound)
	}
	if res.Gap > 0.011 {
		t.Errorf("gap %g exceeds epsilon", res.Gap)
	}

	// The default solver on the same instance must agree on what "optimal"
	// means: both converged points sit within epsilon of a shared optimum,
	// so their objectives can differ by at most about two epsilons.
	base := mustSolve(t, randomInstance(t, 21, 8, 60, 2.0, 100), Options{Seed: 5, MaxPasses: 120})
	if base.Converged {
		rel := math.Abs(res.Objective-base.Objective) / math.Max(1, base.Objective)
		if rel > 0.03 {
			t.Errorf("incremental objective %g vs default %g: relative difference %g too large",
				res.Objective, base.Objective, rel)
		}
	}
}

// The determinism contract holds in the fast mode too: delta updates and
// warm starts run per block on the driver or in index-addressed slots, so
// the worker count still never changes the result.
func TestIncrementalPricingWorkerInvariance(t *testing.T) {
	opts := Options{Seed: 5, MaxPasses: 30, IncrementalPricing: true}
	a := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100), opts)
	for _, workers := range []int{3, 8} {
		o := opts
		o.Workers = workers
		b := mustSolve(t, randomInstance(t, 9, 8, 60, 2.0, 100), o)
		if a.LowerBound != b.LowerBound || a.Objective != b.Objective {
			t.Errorf("Workers=1 vs %d: (%.17g, %.17g) vs (%.17g, %.17g)",
				workers, a.Objective, a.LowerBound, b.Objective, b.LowerBound)
		}
		if !identicalSolutions(a.Sol, b.Sol) {
			t.Errorf("Workers=1 vs %d: solutions differ", workers)
		}
	}
}
