// Package epf implements the paper's core contribution: solving the
// content-placement LP relaxation with the exponential potential function
// (EPF) method — a Dantzig-Wolfe/Lagrangian decomposition in which each
// video is an independent block (a fractional uncapacitated facility
// location problem) and the coupling disk and link constraints are priced
// into block costs through exponential penalties (Appendix, Algorithm 1).
//
// The solver maintains a point z in the product of block polytopes and the
// activities of all coupling rows. Each pass:
//
//  1. shuffles the blocks (the paper reports a 40x pass reduction from
//     re-randomizing the round-robin order) and partitions them into chunks;
//  2. for each chunk, freezes the dual weights π derived from the potential,
//     optimizes every block in the chunk in parallel against those duals
//     (greedy + local-search facility location), then applies the steps
//     sequentially, each with an exact 1-D line search on the potential;
//  3. shrinks the scale δ when the maximum relative infeasibility drops,
//     which sharpens the penalty exponent α(δ) = γ·ln(m+1)/δ;
//  4. computes a Lagrangian lower bound LR(λ̄) from smoothed duals λ̄ using
//     per-block *dual ascent* bounds (a primal heuristic value would not be
//     a valid bound), and retargets the objective row at the new bound.
//
// Termination: the current point is ε-feasible (all coupling rows within
// 1+ε of capacity) and its objective is within 1+ε of the lower bound —
// the "within 1–2% of optimal" guarantee the paper reports.
//
// Integer rounding (§V-D) is implemented in round.go in this package, since
// it reuses the live potential state.
//
// The hot kernels run on flat structures: the topology's CSR path table,
// the instance's dense j-major cost matrix and per-demand sparse slice
// lists, and a (t,j)-major path-dual transpose, so block pricing walks
// contiguous memory. See DESIGN.md §8 for the layout and the determinism
// constraints the kernels honor.
package epf

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"vodplace/internal/facloc"
	"vodplace/internal/mip"
	"vodplace/internal/obs"
	"vodplace/internal/par"
)

// Options configures the solver. The zero value selects the defaults the
// paper's experiments use (ε = 1%).
type Options struct {
	// Epsilon is the feasibility/optimality tolerance ε. Default 0.01.
	Epsilon float64
	// Gamma is the exponent factor γ ≈ 1 in α(δ) = γ·ln(m+1)/δ. Default 1.
	Gamma float64
	// Rho is the dual smoothing parameter ρ ∈ [0,1). Default 0.5.
	Rho float64
	// ChunkSize is the number of blocks optimized against one frozen dual
	// vector. Default 128.
	ChunkSize int
	// MaxPasses bounds the number of full passes. Default 300.
	MaxPasses int
	// Workers is the parallelism for block optimization. Default
	// GOMAXPROCS(0), so `go test -cpu` sweeps and GOMAXPROCS-capped
	// deployments scale the pool with the runtime instead of the raw core
	// count. Results are bit-identical at any worker count either way.
	Workers int
	// Shards is the number of contiguous catalog shards the block schedule
	// is grouped by. 0 (the default) adopts the instance's own shard layout
	// (mip.Instance.Shards — one shard for batch-built instances, the
	// builder's layout for streamed ones); a positive value forces an even
	// contiguous re-partition with that many shards, capped at the video
	// count. Sharding changes only data locality, scheduling and per-shard
	// telemetry — every result is bit-identical at any shard count, exactly
	// as it is at any worker count, because block results land in
	// index-addressed slots and every reduction runs in index order.
	Shards int
	// Seed drives block shuffling. Default 1.
	Seed int64
	// LBEvery computes the Lagrangian lower bound every this many passes.
	// Default 1 (every pass, as in Algorithm 1).
	LBEvery int
	// NoShuffle processes blocks in a fixed order instead of re-randomizing
	// each pass. Exists for the ablation of the paper's observation that
	// re-shuffling cuts pass counts by a large factor; never set it in
	// production use.
	NoShuffle bool
	// IncrementalPricing enables the opt-in fast-pricing mode: path duals
	// are delta-updated from the links whose prices actually moved (with a
	// periodic full rebuild to bound drift), the line search switches to a
	// safeguarded Newton iteration, and block facility-location solves warm
	// start from the video's previous solution. These change floating-point
	// trajectories, so the mode is off by default — the default solve is
	// bit-identical across releases (CLI goldens pin it). Results remain
	// deterministic at any worker count either way; only the default mode's
	// exact output bytes are pinned.
	IncrementalPricing bool
	// ParallelRound dispatches the §V-D rounding and polish block solves
	// through the worker pool: each rounding chunk freezes the full dual
	// vector (disk rows included, where the sequential mode re-prices disk
	// per video), fans the chunk's facility-location solves out to the
	// workers, and commits the results sequentially in chunk order. Chunk
	// boundaries are fixed, so the output is deterministic and bit-identical
	// at any worker or shard count — but the chunk-frozen disk duals change
	// the rounding trajectory relative to the sequential mode, so like
	// IncrementalPricing this is a mode bit rather than a transparent
	// optimization, and the pinned legacy goldens keep it off.
	ParallelRound bool
	// Warm, when non-nil, seeds the solve from a previous period's final
	// state (see WarmState): initial placement from the per-video open sets
	// (unknown video IDs fall back to the cold init), initial lower bound
	// and smoothed duals from the previous row duals when the coupling-row
	// dimensions match, penalty scale and line-search step from the previous
	// descent, and facility-location warm starts in both the descent and the
	// rounding phase. Like IncrementalPricing this changes floating-point
	// trajectories (not correctness — every bound is re-derived on the new
	// instance and the usual certificates hold), so it is opt-in and the
	// cold path stays bit-identical.
	Warm *WarmState
	// OnPass, when non-nil, is invoked after every pass with progress
	// information (used by the CLI tools for -v output).
	OnPass func(PassInfo)
	// Recorder, when non-nil, receives per-pass telemetry events, phase
	// spans and live solver stats (see internal/obs). A nil recorder is the
	// disabled state and costs one pointer test per pass; nothing recorded
	// ever feeds back into the solve, so telemetry cannot change numerics.
	Recorder *obs.Recorder
	// TraceStream names this solve's event stream in the trace (default
	// "epf"). Callers running several solves in one process — e.g. one per
	// placement period — give each a distinct stream so their pass series
	// don't interleave.
	TraceStream string
	// DirtyVideos, when non-empty, lists the video indices (ascending) whose
	// demand changed since the instance was last solved. Telemetry only: the
	// solver records the count and the per-shard dirty fractions in Stats so
	// warm re-solves expose how localized the change was, but the solve
	// itself never reads it — numerics are identical with or without it.
	DirtyVideos []int
}

// PassInfo reports solver progress after a pass.
type PassInfo struct {
	Pass       int
	Objective  float64
	LowerBound float64
	MaxViol    float64 // δ_c(z): max relative coupling-row violation
	Delta      float64 // current scale δ
	UpperBound float64 // best ε-feasible objective so far (+Inf if none)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Epsilon <= 0 {
		out.Epsilon = 0.01
	}
	if out.Gamma <= 0 {
		out.Gamma = 1
	}
	if out.Rho < 0 || out.Rho >= 1 {
		out.Rho = 0.5
	}
	// ChunkSize 0 means adaptive: chosen per instance so that a pass spans
	// many dual refreshes (small instances) without sacrificing batching on
	// large ones. Resolved in newSolver.
	if out.MaxPasses <= 0 {
		out.MaxPasses = 300
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.LBEvery <= 0 {
		out.LBEvery = 1
	}
	if out.TraceStream == "" {
		out.TraceStream = "epf"
	}
	return out
}

// Result is the solver output.
type Result struct {
	// Sol is the best solution found. After Solve it is the final fractional
	// point (ε-feasible when Converged); after SolveInteger every y is 0/1.
	Sol *mip.Solution
	// LowerBound is the best Lagrangian bound on the LP optimum; it is also
	// a bound on the MIP optimum.
	LowerBound float64
	// Objective is Sol's objective value.
	Objective float64
	// Gap is (Objective − LowerBound)/LowerBound (0 when LowerBound is 0).
	Gap float64
	// RowDuals is the non-negative coupling-row dual vector λ that produced
	// LowerBound: entries 0..n-1 price the disk rows (office i), entry
	// n + t·L + l prices link l in time slice t. Together with per-block
	// dual-ascent bounds it certifies LowerBound ≤ OPT; internal/verify
	// re-derives that certificate without the solver's code paths. All-zero
	// when the bound is still the initial no-network bound.
	RowDuals []float64
	// Violation summarizes Sol's constraint violations.
	Violation mip.Violation
	// Passes is the number of gradient-descent passes performed.
	Passes int
	// Converged reports whether the ε-feasible/ε-optimal criterion was met
	// in the LP phase.
	Converged bool
	// Rounded reports whether the integer rounding pass ran.
	Rounded bool
	// Warm is the cross-period carryover: the state a subsequent solve over
	// a shifted instance passes as Options.Warm. Populated on every solve.
	Warm *WarmState
	// Stats reports the solve's runtime behavior (work counts, phase wall
	// times, scratch economy).
	Stats Stats
}

// blockSol is the solver-internal per-video fractional solution.
type blockSol struct {
	open   []mip.Frac   // sparse y, ascending office
	assign [][]mip.Frac // per demand index, sparse x
}

// intSol is an integer block solution produced by facility location.
type intSol struct {
	open   []int32
	assign []int32
}

// shardSpan is one contiguous catalog shard [lo, hi) in video-index space.
type shardSpan struct {
	lo, hi int
}

// workerScratch is one pool worker's reusable state: the facility-location
// solver and problem buffers (allocated once, reused across every chunk,
// pass and bound evaluation) plus lock-free stat counters. Slot w is only
// ever touched by the goroutine running worker w's range; the pool's
// completion barrier orders those writes before the sequential merge.
type workerScratch struct {
	fs   facloc.Solver
	prob facloc.Problem
	fsol facloc.Solution // block solution buffer, reused per solve
	used []bool          // toIntSolInto scratch, len n

	blocks   int64 // descent-loop block solves
	lbBlocks int64 // bound-evaluation block solves
}

// Exponent caps. Both clamp arguments to math.Exp well below the overflow
// threshold (exp(709) ≈ MaxFloat64), but they are deliberately different:
//
//   - dualExpCap bounds the *price ratio* between a coupling row and the
//     objective row when duals are materialized (computeDuals,
//     refreshDiskDuals). Prices are multiplied by B/b_r, summed over paths
//     and fed into facility-location costs, so the tighter cap keeps block
//     costs comfortably inside the float64 range even after those
//     amplifications; exp(300) ≈ 2e130 headroom below maxDual.
//
//   - lineExpCap bounds potential-derivative terms (expClamp, used by the
//     line search and the rounding criteria), where only the sign and the
//     relative magnitude of a sum matter and no further amplification
//     happens; the looser cap preserves ordering information deeper into
//     the saturated regime.
//
// Tests reference these constants rather than repeating the numbers.
const (
	dualExpCap = 300
	lineExpCap = 500
)

type solver struct {
	inst *mip.Instance
	opts Options

	n, L, T int
	rows    int       // coupling rows: n disk + L·T link
	b       []float64 // row capacities
	act     []float64 // row activities A·z
	obj     float64   // current objective c·z
	bObj    float64   // objective target B

	lb, ub float64
	delta  float64
	alpha  float64

	sol      []blockSol
	best     []blockSol // snapshot of the incumbent ε-feasible point
	haveUB   bool
	qBar     []float64 // smoothed normalized duals (resource rows)
	qBarSet  bool
	lbScale  float64   // adaptive multiplier for the Lagrangian dual vector
	bPremium float64   // FEAS(B) target premium over the proven bound
	bFloor   float64   // absolute floor for the objective target
	qTmp     []float64 // scaled-dual scratch for lower-bound evaluations
	qLB      []float64 // persistent polished dual vector (nil until first polish)
	lbDuals  []float64 // dual vector that achieved the best lower bound so far
	lbStall  int       // passes since the lower bound last improved
	polishes int       // completed polish rounds (decays the ascent step)

	// Shared execution runtime: one pool per solve, per-worker scratch
	// reused across all fan-outs, cancellation checked at chunk boundaries.
	ctx      context.Context
	pool     *par.Pool
	scratch  *par.Slots[workerScratch]
	stats    Stats
	runStart time.Time // descent start; trace events stamp elapsed ms from it

	// Lagrangian evaluation buffers, indexed by block so reductions run in
	// block order on the driver goroutine — the worker count never changes
	// the floating-point summation grouping, keeping results bit-identical
	// at any parallelism.
	lbBuf   []float64 // per-block dual-ascent bounds
	lbSols  []intSol  // per-block minimizers (subgradient evaluations only)
	gradBuf []float64 // subgradient scratch (len rows)

	rng *rand.Rand

	// sequential-apply scratch
	acc     []float64
	touched []int32
	yBuf    []float64
	// line-search gather arrays: the touched rows' deltas, activities,
	// capacities and precomputed delta/b coefficients, packed contiguously
	// so every derivative evaluation is one linear sweep.
	lsDelta, lsAct, lsB, lsDB []float64

	// frozen duals scratch (rebuilt per chunk)
	q []float64
	// pathDualT is the path-aggregated link price table in (t,j)-major
	// layout: pathDualT[(t*n+j)*n + i] = Σ_{l ∈ P_ij} q[link(l,t)]. Block
	// pricing fixes (t, j) and walks i, so the transpose keeps that scan
	// contiguous (the natural [t][i*n+j] layout strides by n).
	pathDualT []float64
	costT     []float64 // dense j-major cost table from the instance

	// Incremental pricing state (IncrementalPricing mode only).
	qPrev   []float64 // link-row duals the current pathDualT was built from
	pdInit  bool
	pdSince int // delta refreshes since the last full rebuild

	// run-loop state, fields so a steady-state pass allocates nothing
	gammaLnM1 float64
	perm      []int
	chunk     []int
	chunkSols []intSol
	swapFn    func(a, b int)
	dcHist    []float64
	mergeBuf  []mip.Frac // mergeFracs staging buffer
	warmOpen  [][]int32  // per-video previous block open set (warm starts)

	// Shard scheduling state. Shards are contiguous catalog ranges resolved
	// in newSolver (from the instance layout or Options.Shards); every
	// fan-out dispatches shard-affine index ranges via par.RunTasks so one
	// worker's consecutive blocks share a shard's working set. Because block
	// results are index-addressed and reductions run in chunk/video order on
	// the driver goroutine, the shard decomposition — like the worker count —
	// never changes numeric output.
	shards      []shardSpan
	shardOf     []int32    // video index -> shard index
	shardBlocks []int64    // per-shard descent block solves, driver-tallied
	chunkPos    []int32    // current chunk's positions, grouped by shard
	shardCnt    []int32    // counting-sort scratch: blocks per shard
	shardHead   []int32    // counting-sort scratch: group write heads
	tasks       []par.Task // descent-chunk task list (reused)
	chunkTaskFn func(w, tag, lo, hi int)
	lbTasks     []par.Task // static shard-affine split of all blocks
	lbTaskFn    func(w, tag, lo, hi int)
	lbQ         []float64 // frozen duals for the current bound fan-out
	lbWantGrad  bool

	// Deterministic parallel-reduction state (reduce.go). Leaves are fixed
	// spans of video-index space whose boundaries depend only on the catalog
	// size, so the reduction tree is identical at any worker or shard count;
	// a single-leaf catalog degenerates to the historical flat sequential
	// sum. All buffers nil on single-leaf solves.
	leaves      []shardSpan
	leafTasks   []par.Task
	leafAct     []float64 // per-leaf partial activities, numLeaves×rows flat
	leafObj     []float64 // per-leaf partial objective sums
	leafSum     []float64 // per-leaf partial Lagrangian-term sums
	leafGrad    []float64 // per-leaf partial subgradients (lazy, polish only)
	stateLeafFn func(w, tag, lo, hi int)
	lbSumLeafFn func(w, tag, lo, hi int)
	gradLeafFn  func(w, tag, lo, hi int)

	// Parallel path-dual rebuild state: the frozen duals staged for the row
	// fan-out and the once-built row body. Every pathDualT entry is an
	// independent sum over its own CSR path, so any row partition is
	// bitwise-identical to the sequential rebuild.
	pdRebuildQ []float64
	pdRowFn    func(w, lo, hi int)
	pdParallel bool // resolved once: pool > 1 worker and table big enough

	// Parallel rounding state (round.go, Options.ParallelRound): the current
	// chunk's per-video integer solutions, index-addressed by chunk position
	// and committed sequentially in chunk order.
	roundSols   []intSol
	roundQ0     []float64 // chunk-frozen disk duals, drift baseline
	roundTaskFn func(w, tag, lo, hi int)

	// Cross-period warm-start state (Options.Warm / Result.Warm).
	warmRound bool    // rounding-phase facloc solves seed from warmOpen
	tauSum    float64 // accepted line-search steps, for the TauHint export
	tauN      int64
	lpDelta   float64 // δ at the end of the LP descent (exported hint)
}

func (s *solver) rowDisk(i int) int    { return i }
func (s *solver) rowLink(l, t int) int { return s.n + t*s.L + l }

// Incremental-pricing tuning. A link row participates in a delta update
// only when its dual moved by more than pdRelTol relatively; unchanged rows
// keep their (within-tolerance) stale contribution. pdRebuildEvery bounds
// the accumulated drift with a periodic exact rebuild, and a refresh where
// more than a quarter of the link rows moved falls back to a full rebuild —
// at that density the scattered delta writes cost more than the rebuild.
const (
	pdRelTol       = 1e-9
	pdRebuildEvery = 16
)

// Solve runs the EPF LP solver on inst and returns the fractional result.
func Solve(inst *mip.Instance, opts Options) (*Result, error) {
	return SolveContext(context.Background(), inst, opts)
}

// SolveContext is Solve with cooperative cancellation: the solver checks
// ctx at every chunk boundary and bound evaluation. On cancellation it
// stops within roughly one chunk of work and returns the current (partial,
// possibly non-converged) result together with ctx.Err().
func SolveContext(ctx context.Context, inst *mip.Instance, opts Options) (*Result, error) {
	s, err := newSolver(inst, opts)
	if err != nil {
		return nil, err
	}
	defer s.close()
	res := s.run(ctx)
	s.finishTrace(res)
	return res, ctx.Err()
}

// SolveInteger runs Solve and then the §V-D rounding pass, returning an
// integral placement.
func SolveInteger(inst *mip.Instance, opts Options) (*Result, error) {
	return SolveIntegerContext(context.Background(), inst, opts)
}

// SolveIntegerContext is SolveInteger with cooperative cancellation; both
// the LP descent and the rounding/polish phases observe ctx. On
// cancellation the best point reached so far is returned with ctx.Err().
func SolveIntegerContext(ctx context.Context, inst *mip.Instance, opts Options) (*Result, error) {
	s, err := newSolver(inst, opts)
	if err != nil {
		return nil, err
	}
	defer s.close()
	res := s.run(ctx)
	s.round(res)
	s.finishTrace(res)
	return res, ctx.Err()
}

func newSolver(inst *mip.Instance, opts Options) (*solver, error) {
	if inst == nil {
		return nil, fmt.Errorf("epf: nil instance")
	}
	initStart := time.Now()
	o := opts.withDefaults()
	s := &solver{
		inst: inst,
		opts: o,
		n:    inst.NumVHOs(),
		L:    inst.G.NumLinks(),
		T:    inst.Slices,
		rng:  rand.New(rand.NewSource(o.Seed)),
	}
	s.rows = s.n + s.L*s.T
	s.b = make([]float64, s.rows)
	for i := 0; i < s.n; i++ {
		s.b[s.rowDisk(i)] = inst.DiskGB[i]
	}
	for t := 0; t < s.T; t++ {
		for l := 0; l < s.L; l++ {
			s.b[s.rowLink(l, t)] = inst.LinkCapMbps[l]
		}
	}
	s.act = make([]float64, s.rows)
	s.acc = make([]float64, s.rows)
	s.touched = make([]int32, 0, s.rows)
	s.yBuf = make([]float64, s.n)
	s.lsDelta = make([]float64, s.rows)
	s.lsAct = make([]float64, s.rows)
	s.lsB = make([]float64, s.rows)
	s.lsDB = make([]float64, s.rows)
	s.q = make([]float64, s.rows)
	s.mergeBuf = make([]mip.Frac, 0, s.n+1)
	s.qBar = make([]float64, s.rows)
	s.qTmp = make([]float64, s.rows)
	// The initial bound (LowerBoundNoNetwork) is the Lagrangian value at
	// λ = 0, so the zero vector is its certificate.
	s.lbDuals = make([]float64, s.rows)
	s.lbScale = 1
	if s.opts.ChunkSize <= 0 {
		// Adaptive: at least ~24 dual refreshes per pass, chunk in [8, 256].
		cs := len(inst.Demands) / 24
		if cs < 8 {
			cs = 8
		}
		if cs > 256 {
			cs = 256
		}
		s.opts.ChunkSize = cs
	}
	s.pathDualT = make([]float64, s.T*s.n*s.n)
	// The dense cost table is (re)validated against (Alpha, Beta) here, on
	// the driver goroutine, before any fan-out reads it.
	s.costT = inst.CostColumns()
	if s.opts.IncrementalPricing {
		s.qPrev = make([]float64, s.rows)
	}
	s.ctx = context.Background()
	s.pool = par.New(o.Workers)
	s.scratch = par.NewSlots[workerScratch](s.pool)
	s.lbBuf = make([]float64, len(inst.Demands))
	s.initShards()
	s.initReduce()
	if s.opts.ParallelRound {
		s.initRound()
	}
	s.warmRound = s.opts.Warm != nil
	s.initSolution()
	s.stats.InitTime = time.Since(initStart)
	s.opts.Recorder.RecordSpan(s.opts.TraceStream, "init", s.stats.InitTime)
	return s, nil
}

// close releases the solver's worker pool. Entry points defer it; the
// solver must not be used afterwards.
func (s *solver) close() {
	if s.pool != nil {
		s.pool.Close()
	}
}

// initShards resolves the solve's shard layout and builds the shard-affine
// scheduling state: the video→shard map, the static bound-evaluation task
// list, and the bound fan-out body. Runs once in newSolver; every buffer the
// steady-state dispatch touches is sized here.
func (s *solver) initShards() {
	numBlocks := len(s.inst.Demands)
	s.shards = resolveShards(s.inst, s.opts.Shards)
	S := len(s.shards)
	s.shardOf = make([]int32, numBlocks)
	for si, sp := range s.shards {
		for vi := sp.lo; vi < sp.hi; vi++ {
			s.shardOf[vi] = int32(si)
		}
	}
	s.shardBlocks = make([]int64, S)
	s.shardCnt = make([]int32, S)
	s.shardHead = make([]int32, S)
	s.chunkPos = make([]int32, s.opts.ChunkSize)
	// Σ_s ceil(g_s/per) ≤ S + W pieces for any chunk split, so the task
	// buffer never regrows.
	s.tasks = make([]par.Task, 0, S+s.opts.Workers)
	// Bound evaluations sweep every block; the split is static, so build it
	// once: each shard's range in pieces of at most ceil(numBlocks/W).
	per := (numBlocks + s.opts.Workers - 1) / s.opts.Workers
	if per < 1 {
		per = 1
	}
	for si, sp := range s.shards {
		for lo := sp.lo; lo < sp.hi; lo += per {
			hi := lo + per
			if hi > sp.hi {
				hi = sp.hi
			}
			s.lbTasks = append(s.lbTasks, par.Task{Tag: si, Lo: lo, Hi: hi})
		}
	}
	// The bound fan-out body, created once; the frozen duals and gradient
	// request flow through solver fields (s.lbQ, s.lbWantGrad). Per-block
	// bounds land in s.lbBuf, index-addressed, and the caller reduces them in
	// video order — bit-identical at any worker or shard count.
	s.lbTaskFn = func(w, _, lo, hi int) {
		ws := s.scratch.Get(w)
		if ws.used == nil {
			ws.used = make([]bool, s.n)
		}
		q := s.lbQ
		for vi := lo; vi < hi; vi++ {
			if (vi-lo)%64 == 0 && s.ctx.Err() != nil {
				return
			}
			s.buildBlockProblem(vi, q, &ws.prob)
			lb, _ := ws.fs.DualAscent(&ws.prob)
			s.lbBuf[vi] = lb
			if s.lbWantGrad {
				ws.fs.SolveQuickInto(&ws.prob, &ws.fsol, nil)
				toIntSolInto(&ws.fsol, &s.inst.Demands[vi], ws.used, &s.lbSols[vi])
			}
			ws.lbBlocks++
		}
	}
	s.stats.Shards = S
}

// resolveShards returns the contiguous catalog shards a solve schedules by.
// want = 0 adopts the instance's own layout (single shard when the instance
// carries none, e.g. hand-built literals); want > 0 forces an even
// re-partition into min(want, numVideos) shards.
func resolveShards(inst *mip.Instance, want int) []shardSpan {
	numBlocks := len(inst.Demands)
	if want <= 0 {
		if ns := inst.NumShards(); ns > 0 {
			out := make([]shardSpan, ns)
			for si := 0; si < ns; si++ {
				sh := inst.Shards[si]
				out[si] = shardSpan{lo: sh.Lo, hi: sh.Hi}
			}
			return out
		}
		return []shardSpan{{lo: 0, hi: numBlocks}}
	}
	if want > numBlocks {
		want = numBlocks
	}
	if want < 1 {
		want = 1
	}
	out := make([]shardSpan, 0, want)
	per := (numBlocks + want - 1) / want
	for lo := 0; lo < numBlocks; lo += per {
		hi := lo + per
		if hi > numBlocks {
			hi = numBlocks
		}
		out = append(out, shardSpan{lo: lo, hi: hi})
	}
	if len(out) == 0 {
		out = append(out, shardSpan{lo: 0, hi: numBlocks})
	}
	return out
}

// shardDirtyFractions maps an ascending dirty-video list onto the shard
// layout: out[si] is the fraction of shard si's videos appearing in dirty,
// computed with one merge pass since both sides are sorted. Nil when no
// dirty list was passed (cold solves, full rebuilds) so Stats stays compact
// in the common case.
func shardDirtyFractions(shards []shardSpan, dirty []int) []float64 {
	if len(dirty) == 0 || len(shards) == 0 {
		return nil
	}
	out := make([]float64, len(shards))
	di := 0
	for si, sp := range shards {
		for di < len(dirty) && dirty[di] < sp.lo {
			di++
		}
		n := 0
		for di < len(dirty) && dirty[di] < sp.hi {
			n++
			di++
		}
		if sp.hi > sp.lo {
			out[si] = float64(n) / float64(sp.hi-sp.lo)
		}
	}
	return out
}

// mergeStats folds the per-worker scratch counters into s.stats. Totals are
// recomputed from scratch (the counters are cumulative) so it can run again
// after the rounding phase without double counting.
func (s *solver) mergeStats() {
	s.stats.Workers = s.pool.Workers()
	s.stats.Polishes = s.polishes
	s.stats.BlocksOptimized, s.stats.LBBlockSolves = 0, 0
	s.stats.WarmStartTries, s.stats.WarmStartHits = 0, 0
	s.scratch.Each(func(_ int, ws *workerScratch) {
		s.stats.BlocksOptimized += ws.blocks
		s.stats.LBBlockSolves += ws.lbBlocks
		s.stats.WarmStartTries += ws.fs.WarmTries
		s.stats.WarmStartHits += ws.fs.WarmHits
	})
	s.stats.ScratchAllocs, s.stats.ScratchReuses = s.scratch.Counts()
}

// initSolution places one copy of each video at its highest-demand office
// and serves everything from there, then computes activities from scratch.
// Under Options.Warm, videos whose ID appears in the warm state start from
// their previous open set instead; the rest keep the cold init (the
// per-video catalog-churn fallback).
func (s *solver) initSolution() {
	s.sol = make([]blockSol, len(s.inst.Demands))
	for vi := range s.inst.Demands {
		if open := s.warmVideoOpen(vi); open != nil {
			s.seedWarmBlock(vi, open)
			s.stats.WarmVideos++
			continue
		}
		d := &s.inst.Demands[vi]
		home := int32(vi % s.n)
		var bestA float64 = -1
		for k, a := range d.Agg {
			if a > bestA {
				bestA = a
				home = d.Js[k]
			}
		}
		bs := &s.sol[vi]
		bs.open = []mip.Frac{{I: home, V: 1}}
		bs.assign = make([][]mip.Frac, len(d.Js))
		for k := range bs.assign {
			bs.assign[k] = []mip.Frac{{I: home, V: 1}}
		}
	}
	s.recomputeState()
}

// recomputeState rebuilds act and obj from the current solution. Multi-leaf
// catalogs reduce in parallel through the fixed-leaf tree (reduce.go);
// single-leaf catalogs run the historical flat sequential sum.
func (s *solver) recomputeState() {
	start := time.Now()
	if !s.parRecomputeState() {
		for r := range s.act {
			s.act[r] = 0
		}
		s.obj = 0
		for vi := range s.sol {
			s.addBlockRows(vi, &s.sol[vi], +1)
			s.obj += s.blockCost(vi, &s.sol[vi])
		}
	}
	s.stats.ReduceTime += time.Since(start)
}

// addBlockRows adds (sign=+1) or removes (sign=-1) block vi's contribution
// to the coupling-row activities.
func (s *solver) addBlockRows(vi int, bs *blockSol, sign float64) {
	s.addBlockRowsTo(s.act, vi, bs, sign)
}

// addBlockRowsTo adds (sign=+1) or removes (sign=-1) block vi's contribution
// to the coupling-row activities in act. Only the nonzero time slices of each
// demand (the instance's sparse concurrency lists) are visited, and link
// rows are addressed through the CSR path table. act is either the live
// activity vector or one leaf's partial (parallel reductions): the per-entry
// accumulation order is identical either way.
func (s *solver) addBlockRowsTo(act []float64, vi int, bs *blockSol, sign float64) {
	d := &s.inst.Demands[vi]
	for _, f := range bs.open {
		act[int(f.I)] += sign * d.SizeGB * f.V
	}
	if s.T == 0 {
		return
	}
	for k, fr := range bs.assign {
		j := int(d.Js[k])
		ts, fv := d.ConcNZ(k)
		if len(ts) == 0 {
			continue
		}
		for _, f := range fr {
			if int(f.I) == j || f.V == 0 {
				continue
			}
			path := s.inst.G.Path(int(f.I), j)
			for x, t := range ts {
				flow := sign * d.RateMbps * fv[x] * f.V
				base := s.n + int(t)*s.L
				for _, l := range path {
					act[base+int(l)] += flow
				}
			}
		}
	}
}

// blockCost returns block vi's objective contribution.
func (s *solver) blockCost(vi int, bs *blockSol) float64 {
	d := &s.inst.Demands[vi]
	n := s.n
	var c float64
	for k, fr := range bs.assign {
		col := s.costT[int(d.Js[k])*n : (int(d.Js[k])+1)*n]
		coef := d.SizeGB * d.Agg[k]
		for _, f := range fr {
			c += coef * col[f.I] * f.V
		}
	}
	if s.inst.UpdateWeight != 0 {
		for _, f := range bs.open {
			c += s.inst.PlacementCost(vi, int(f.I)) * f.V
		}
	}
	return c
}

// maxCouplingViol returns δ_c(z) = max_r (act_r/b_r − 1), and the value of
// r_0(z) = obj/B − 1.
func (s *solver) maxCouplingViol() (float64, float64) {
	dc := math.Inf(-1)
	for r := 0; r < s.rows; r++ {
		if v := s.act[r]/s.b[r] - 1; v > dc {
			dc = v
		}
	}
	return dc, s.obj/s.bObj - 1
}

func expClamp(x float64) float64 {
	if x > lineExpCap {
		x = lineExpCap
	}
	if x < -lineExpCap {
		return 0
	}
	return math.Exp(x)
}

// computeDuals fills s.q with the normalized dual weights
// q_r = (B/b_r)·exp(α(r_r − r_0)) used as block prices: the block objective
// is c^k·z + Σ_r q_r·(A^k z)_r, a positive rescaling of the potential
// gradient direction c(π^δ(z)).
func (s *solver) computeDuals(q []float64) {
	s.stats.DualRefreshes++
	r0 := s.obj/s.bObj - 1
	for r := 0; r < s.rows; r++ {
		rr := s.act[r]/s.b[r] - 1
		e := s.alpha * (rr - r0)
		if e > dualExpCap {
			// A row this much hotter than the objective row is effectively
			// infinitely priced; cap to keep block costs finite. Any finite
			// non-negative dual vector still yields a valid Lagrangian bound.
			e = dualExpCap
		}
		q[r] = clampDual(s.bObj / s.b[r] * math.Exp(e))
	}
}

// maxDual caps dual prices. On infeasible FEAS(B) instances the Lagrangian
// bound legitimately diverges (that divergence is the infeasibility
// certificate) and the B ← LB feedback would push prices to +Inf and then
// NaN within a few passes; clamping keeps the arithmetic finite, and a
// clamped lower bound is still a valid lower bound.
const maxDual = 1e120

func clampDual(v float64) float64 {
	if math.IsNaN(v) || v > maxDual {
		return maxDual
	}
	return v
}

// refreshDiskDuals recomputes only the disk rows of q from the live
// activities (used by the rounding pass between videos; link rows keep their
// chunk-frozen values).
func (s *solver) refreshDiskDuals(q []float64) {
	r0 := s.obj/s.bObj - 1
	for i := 0; i < s.n; i++ {
		r := s.rowDisk(i)
		rr := s.act[r]/s.b[r] - 1
		e := s.alpha * (rr - r0)
		if e > dualExpCap {
			e = dualExpCap
		}
		q[r] = clampDual(s.bObj / s.b[r] * math.Exp(e))
	}
}

// computePathDuals brings pathDualT in sync with q:
// pathDualT[(t*n+j)*n+i] = Σ_{l ∈ P_ij} q[link(l,t)].
//
// In the default mode every refresh is a full rebuild, byte-identical to
// summing along each path. In IncrementalPricing mode only the link rows
// whose dual moved beyond pdRelTol push their delta into the affected
// (i,j) pairs via the topology's reverse incidence lists, with a periodic
// full rebuild bounding the drift.
func (s *solver) computePathDuals(q []float64) {
	if s.T == 0 {
		return
	}
	if !s.opts.IncrementalPricing {
		s.rebuildPathDuals(q)
		return
	}
	if !s.pdInit || s.pdSince >= pdRebuildEvery {
		s.syncPathDuals(q)
		return
	}
	// First sweep: count moved link rows; a dense refresh rebuilds instead.
	moved := 0
	for t := 0; t < s.T; t++ {
		base := s.n + t*s.L
		for l := 0; l < s.L; l++ {
			r := base + l
			if dualMoved(q[r], s.qPrev[r]) {
				moved++
			}
		}
	}
	if moved*4 > s.L*s.T {
		s.syncPathDuals(q)
		return
	}
	n := s.n
	for t := 0; t < s.T; t++ {
		base := s.n + t*s.L
		tn := t * n
		for l := 0; l < s.L; l++ {
			r := base + l
			if !dualMoved(q[r], s.qPrev[r]) {
				continue
			}
			dq := q[r] - s.qPrev[r]
			for _, p := range s.inst.G.LinkPairs(l) {
				i, j := int(p)/n, int(p)%n
				s.pathDualT[(tn+j)*n+i] += dq
			}
			s.qPrev[r] = q[r]
		}
	}
	s.pdSince++
}

// dualMoved reports whether a link dual changed beyond the relative
// incremental-pricing tolerance.
func dualMoved(now, prev float64) bool {
	d := now - prev
	if d < 0 {
		d = -d
	}
	ref := prev
	if ref < 0 {
		ref = -ref
	}
	return d > pdRelTol*ref
}

// syncPathDuals performs a full rebuild and records q as the new baseline.
func (s *solver) syncPathDuals(q []float64) {
	s.rebuildPathDuals(q)
	copy(s.qPrev, q)
	s.pdInit = true
	s.pdSince = 0
}

// rebuildPathDuals recomputes every pathDualT entry from scratch, summing
// q along each CSR path in link order.
//
// Every entry is an independent sum over its own path's links, so the table
// partitions freely: the rebuild fans (t,i) rows out to the pool when the
// table is large enough to amortize the dispatch, and the result is
// bitwise-identical to the sequential sweep at any worker count. This was
// the top sequential-residue item of the multi-core audit — it runs inside
// every chunk's dual freeze in default mode.
func (s *solver) rebuildPathDuals(q []float64) {
	if s.pdParallel {
		s.pdRebuildQ = q
		if err := s.pool.Run(s.ctx, s.T*s.n, s.pdRowFn); err == nil {
			s.pdRebuildQ = nil
			return
		}
		// Pre-cancelled dispatch: fall through to the sequential rebuild so
		// the table is never left stale for the caller's final report.
		s.pdRebuildQ = nil
	}
	s.rebuildPathDualRows(q, 0, s.T*s.n)
}

// rebuildPathDualRows rebuilds the (t,i) rows in [lo, hi) of the flattened
// t·n row space. Both the sequential rebuild and each parallel range call
// this body, so the per-entry arithmetic is shared by construction.
func (s *solver) rebuildPathDualRows(q []float64, lo, hi int) {
	n := s.n
	links, off := s.inst.G.PathCSR()
	for row := lo; row < hi; row++ {
		t, i := row/n, row%n
		base := s.n + t*s.L
		tn := t * n
		in := i * n
		for j := 0; j < n; j++ {
			if i == j {
				s.pathDualT[(tn+j)*n+i] = 0
				continue
			}
			var sum float64
			for _, l := range links[off[in+j]:off[in+j+1]] {
				sum += q[base+int(l)]
			}
			s.pathDualT[(tn+j)*n+i] = sum
		}
	}
}

// buildBlockProblem fills prob with video vi's facility-location block under
// the frozen duals (q via pathDualT). Open cost: disk dual price plus any
// placement-transfer cost; assignment cost: transfer objective plus link
// dual prices along the path. All scans are over flat arrays: the j-th cost
// column, the demand's nonzero slices, and the (t,j) path-dual column.
func (s *solver) buildBlockProblem(vi int, q []float64, prob *facloc.Problem) {
	d := &s.inst.Demands[vi]
	n := s.n
	if cap(prob.Open) < n {
		prob.Open = make([]float64, n)
	}
	prob.Open = prob.Open[:n]
	for i := 0; i < n; i++ {
		prob.Open[i] = q[i]*d.SizeGB + s.inst.PlacementCost(vi, i)
	}
	K := len(d.Js)
	prob.Reshape(K)
	for k := 0; k < K; k++ {
		j := int(d.Js[k])
		coef := d.SizeGB * d.Agg[k]
		row := prob.Assign[k*n : k*n+n]
		col := s.costT[j*n : j*n+n]
		for i := 0; i < n; i++ {
			row[i] = coef * col[i]
		}
		ts, fv := d.ConcNZ(k)
		for x, t := range ts {
			w := d.RateMbps * fv[x]
			pd := s.pathDualT[(int(t)*n+j)*n : (int(t)*n+j)*n+n]
			for i := 0; i < n; i++ {
				row[i] += w * pd[i]
			}
		}
	}
}

// initRun prepares the per-run state (pass permutation, chunk buffers, the
// chunk fan-out closure) so that a steady-state descent pass performs no
// allocations: every buffer it touches is created or capacity-bounded here.
func (s *solver) initRun() {
	o := &s.opts
	numBlocks := len(s.sol)
	s.gammaLnM1 = o.Gamma * math.Log(float64(s.rows)+1)
	s.perm = make([]int, numBlocks)
	for i := range s.perm {
		s.perm[i] = i
	}
	s.swapFn = func(a, b int) { s.perm[a], s.perm[b] = s.perm[b], s.perm[a] }
	s.chunkSols = make([]intSol, o.ChunkSize)
	for c := range s.chunkSols {
		s.chunkSols[c].open = make([]int32, 0, s.n)
		s.chunkSols[c].assign = make([]int32, 0, s.n)
	}
	s.dcHist = make([]float64, 0, o.MaxPasses+1)
	if o.IncrementalPricing || o.Warm != nil {
		s.warmOpen = make([][]int32, numBlocks)
	}
	if o.Warm != nil {
		// Seed the facility-location warm starts from the previous period's
		// open sets, so even the first chunk's local searches start near the
		// old optimum. Videos without a valid warm set stay nil (cold).
		for vi := range s.warmOpen {
			if open := s.warmVideoOpen(vi); open != nil {
				s.warmOpen[vi] = append([]int32(nil), open...)
			}
		}
	}
	// The fan-out body is created once; per-chunk state flows through
	// solver fields (s.chunk, s.chunkPos, s.chunkSols) so no closure is
	// allocated on the hot path. Tasks are shard-affine position ranges
	// built by buildChunkTasks; chunkSols is index-addressed by chunk
	// position and applied sequentially in chunk order by the caller, so
	// neither the worker partition nor the shard grouping affects numerics.
	s.chunkTaskFn = func(w, _, lo, hi int) {
		ws := s.scratch.Get(w)
		if ws.used == nil {
			ws.used = make([]bool, s.n)
		}
		for idx := lo; idx < hi; idx++ {
			c := int(s.chunkPos[idx])
			vi := s.chunk[c]
			s.buildBlockProblem(vi, s.q, &ws.prob)
			var warm []int32
			if s.warmOpen != nil {
				warm = s.warmOpen[vi]
			}
			ws.fs.SolveQuickInto(&ws.prob, &ws.fsol, warm)
			toIntSolInto(&ws.fsol, &s.inst.Demands[vi], ws.used, &s.chunkSols[c])
			if s.warmOpen != nil {
				s.warmOpen[vi] = append(s.warmOpen[vi][:0], s.chunkSols[c].open...)
			}
		}
		ws.blocks += int64(hi - lo)
	}
}

// buildChunkTasks groups the current chunk's positions by shard (a stable
// counting sort into s.chunkPos) and splits each shard group into pieces of
// at most ceil(|chunk|/W), so a W-worker fan-out stays balanced while each
// piece touches a single shard's videos. Per-shard block counts are tallied
// here, on the driver goroutine, so the telemetry is deterministic. No
// allocations: every buffer was sized in initShards/initRun.
func (s *solver) buildChunkTasks() {
	S := len(s.shards)
	cnt, head := s.shardCnt, s.shardHead
	for si := 0; si < S; si++ {
		cnt[si] = 0
	}
	for _, vi := range s.chunk {
		cnt[s.shardOf[vi]]++
	}
	var sum int32
	for si := 0; si < S; si++ {
		head[si] = sum
		sum += cnt[si]
		s.shardBlocks[si] += int64(cnt[si])
	}
	for c, vi := range s.chunk {
		si := s.shardOf[vi]
		s.chunkPos[head[si]] = int32(c)
		head[si]++
	}
	per := (len(s.chunk) + s.opts.Workers - 1) / s.opts.Workers
	if per < 1 {
		per = 1
	}
	s.tasks = s.tasks[:0]
	pos := 0
	for si := 0; si < S; si++ {
		g := int(cnt[si])
		for g > 0 {
			sz := per
			if sz > g {
				sz = g
			}
			s.tasks = append(s.tasks, par.Task{Tag: si, Lo: pos, Hi: pos + sz})
			pos += sz
			g -= sz
		}
	}
}

// descentPass runs one full gradient-descent pass (shuffle, chunked block
// optimization, sequential application with line search, scale shrink).
// Returns false when the context was cancelled mid-pass. Steady-state
// passes allocate nothing; see initRun.
func (s *solver) descentPass() bool {
	o := &s.opts
	numBlocks := len(s.sol)
	if !o.NoShuffle {
		s.rng.Shuffle(numBlocks, s.swapFn)
	}
	for lo := 0; lo < numBlocks; lo += o.ChunkSize {
		hi := lo + o.ChunkSize
		if hi > numBlocks {
			hi = numBlocks
		}
		// Freeze duals for the chunk.
		s.computeDuals(s.q)
		s.computePathDuals(s.q)

		// Parallel block optimization on the shared pool, dispatched as
		// shard-affine position ranges.
		s.chunk = s.perm[lo:hi]
		s.buildChunkTasks()
		if err := s.pool.RunTasks(s.ctx, s.tasks, s.chunkTaskFn); err != nil {
			return false // cancelled before dispatch; chunkSols is stale
		}

		// Sequential application with line search.
		for c, vi := range s.chunk {
			s.applyBlock(vi, &s.chunkSols[c])
		}
		if s.ctx.Err() != nil {
			return false
		}

		// Step 11: shrink the scale when the point got less infeasible.
		dc, r0 := s.maxCouplingViol()
		dz := math.Max(math.Max(dc, r0), o.Epsilon/2)
		if dz < s.delta {
			s.delta = dz
			s.alpha = s.gammaLnM1 / s.delta
		}
	}
	return true
}

// initDescent sets the initial bound, objective target, per-run buffers and
// penalty scale. Split from run so the allocation-regression test can
// prepare a solver and then measure descentPass in isolation.
func (s *solver) initDescent() {
	// Initial lower bound: the no-capacity-pressure bound (every request
	// served at cost β). With β = 0 this is 0, so floor the objective
	// target to keep r_0 well defined.
	s.lb = s.inst.LowerBoundNoNetwork()
	s.ub = math.Inf(1)
	s.bPremium = 1
	s.bFloor = math.Max(1e-9, 1e-3*s.obj)
	s.retargetB()

	s.initRun()
	dc, r0 := s.maxCouplingViol()
	s.delta = math.Max(math.Max(dc, r0), s.opts.Epsilon/2)
	s.alpha = s.gammaLnM1 / s.delta
	s.seedWarmDescent()
}

// run executes Algorithm 1's main loop and returns the fractional result.
// ctx is observed at chunk boundaries: on cancellation the loop stops
// before the next fan-out and the current point is returned as-is.
func (s *solver) run(ctx context.Context) *Result {
	s.ctx = ctx
	lpStart := time.Now()
	s.runStart = lpStart
	o := s.opts
	s.initDescent()

	var res *Result
	pass := 0
passes:
	for pass = 1; pass <= o.MaxPasses; pass++ {
		if !s.descentPass() {
			break passes
		}

		// Periodic exact refresh: incremental activity updates accumulate
		// floating-point drift over thousands of block steps.
		if pass%8 == 0 {
			s.recomputeState()
		}

		// Incumbent update (step 12).
		dc, _ := s.maxCouplingViol()
		if dc <= o.Epsilon && s.obj < s.ub {
			s.ub = s.obj
			s.snapshotBest()
			s.haveUB = true
		}
		if s.done(o.Epsilon) {
			s.recordPass(pass)
			break
		}

		// FEAS(B) rescue: if no ε-feasible point has appeared by late in
		// the pass budget, the guess B is likely below the LP optimum (the
		// Lagrangian bound has not caught up) and the violation plateaus —
		// the potential is balancing a target that cannot be met. Raising
		// the guess is the move the FEAS(B) framework prescribes; it runs
		// only as a late rescue because it sacrifices objective pressure.
		// The first incumbent resets the premium so the normal dynamics
		// resume, and the incumbent snapshot protects what was found.
		s.dcHist = append(s.dcHist, dc)
		switch {
		case s.haveUB && s.bPremium > 1:
			s.bPremium = 1
			s.retargetB()
		case !s.haveUB && pass > o.MaxPasses*3/4 && dc > 1.8*o.Epsilon && len(s.dcHist) >= 8:
			ref := s.dcHist[len(s.dcHist)-8]
			if ref-dc < 0.05*(dc-o.Epsilon) {
				s.bPremium = math.Min(1.5, s.bPremium*1.03)
				s.retargetB()
				s.dcHist = s.dcHist[:0] // give the new target time to act
			}
		}

		// Lower-bound pass (steps 14-15) with smoothed duals. LR(λ) is not
		// scale-invariant in λ even though the block *directions* are, so a
		// short adaptive search over multiplicative scalings of the dual
		// vector is run each time; the best scale is carried to the next
		// pass. This is one of the update-mechanism tweaks the paper alludes
		// to in the Appendix.
		if pass%o.LBEvery == 0 {
			s.computeDuals(s.q)
			if !s.qBarSet {
				copy(s.qBar, s.q)
				s.qBarSet = true
			} else {
				for r := range s.qBar {
					s.qBar[r] = o.Rho*s.qBar[r] + (1-o.Rho)*s.q[r]
				}
			}
			bestScale := s.lbScale
			bestLR := math.Inf(-1)
			// The three-point scale search costs two extra full block
			// passes; run it while the duals are still moving (early
			// passes) and periodically afterwards, with a single
			// evaluation at the carried scale in between.
			mults := lbMultsWide[:]
			if pass > 8 && pass%3 != 0 {
				mults = lbMultsNarrow[:]
			}
			for _, mult := range mults {
				scale := s.lbScale * mult
				for r := range s.qTmp {
					s.qTmp[r] = scale * s.qBar[r]
				}
				if lr := s.lagrangianBound(s.qTmp); lr > bestLR {
					bestLR, bestScale = lr, scale
				}
			}
			s.lbScale = bestScale
			if bestLR > s.lb+1e-12*math.Abs(s.lb) {
				s.lb = bestLR
				s.lbStall = 0
				for r := range s.lbDuals {
					s.lbDuals[r] = bestScale * s.qBar[r]
				}
			} else {
				s.lbStall++
			}
			// When the potential-derived duals stop improving the bound,
			// polish the dual vector directly with subgradient ascent.
			if s.lbStall >= 3 {
				s.polishLB()
				s.lbStall = 0
			}
			s.retargetB()
			if s.done(o.Epsilon) {
				s.recordPass(pass)
				break
			}
		}

		if o.OnPass != nil {
			dc, _ := s.maxCouplingViol()
			o.OnPass(PassInfo{
				Pass: pass, Objective: s.obj, LowerBound: s.lb,
				MaxViol: dc, Delta: s.delta, UpperBound: s.ub,
			})
		}
		s.recordPass(pass)
	}
	if pass > o.MaxPasses {
		pass = o.MaxPasses
	}

	converged := s.done(o.Epsilon)
	s.lpDelta = s.delta // the δ the descent ended at, before rounding retunes
	// Prefer the incumbent; fall back to the current point.
	if s.haveUB {
		s.restoreBest()
		s.recomputeState()
	}
	s.stats.LPTime = time.Since(lpStart)
	s.opts.Recorder.RecordSpan(s.opts.TraceStream, "descent", s.stats.LPTime)
	res = s.buildResult(pass, converged)
	return res
}

// recordPass emits one per-pass telemetry event: the convergence state the
// paper's figures plot (Φ, bounds, duality gap, link utilization) plus the
// incrementally merged work counters, so a mid-run /progress snapshot shows
// live totals rather than the zeros the pre-telemetry solver reported until
// solve end. A nil recorder makes this a single pointer test; every field
// except the elapsed-ms stamp is bit-identical across worker counts.
func (s *solver) recordPass(pass int) {
	rec := s.opts.Recorder
	if !rec.Enabled() {
		return
	}
	dc, r0 := s.maxCouplingViol()
	lmax, lmean := s.linkUtil()
	gap := 0.0
	if s.lb > 1e-12 {
		gap = (s.obj - s.lb) / s.lb
	}
	// JSON cannot carry +Inf: until an ε-feasible incumbent exists the upper
	// bound is reported as 0 and the duality gap as −1 ("undefined").
	ub, ubGap := 0.0, -1.0
	if s.haveUB {
		ub = s.ub
		if s.lb > 1e-12 {
			ubGap = (s.ub - s.lb) / s.lb
		}
	}
	s.stats.Passes = pass
	s.mergeStats()
	rec.RecordEPFPass(obs.EPFPass{
		Stream:       s.opts.TraceStream,
		Pass:         pass,
		Phi:          s.potential(r0),
		Objective:    s.obj,
		LowerBound:   s.lb,
		UpperBound:   ub,
		Gap:          gap,
		UBGap:        ubGap,
		MaxViol:      dc,
		MaxLinkUtil:  lmax,
		MeanLinkUtil: lmean,
		Delta:        s.delta,
		Blocks:       s.stats.BlocksOptimized,
		WarmHits:     s.stats.WarmStartHits,
		ElapsedMS:    float64(time.Since(s.runStart).Nanoseconds()) / 1e6,
	})
	rec.PublishKV("epf_stats."+s.opts.TraceStream, s.stats)
}

// potential evaluates the potential Φ(z) at the live α: the capacity rows'
// exp(α(act_r/b_r − 1)) plus the objective row's exp(α·r_0) with
// r_0 = obj/B − 1. Telemetry only — the descent itself never calls it.
func (s *solver) potential(r0 float64) float64 {
	phi := expClamp(s.alpha * r0)
	for r := 0; r < s.rows; r++ {
		phi += expClamp(s.alpha * (s.act[r]/s.b[r] - 1))
	}
	return phi
}

// linkUtil returns the max and mean utilization act_r/b_r over the link
// rows (rows n .. rows−1). Zero when the instance has no time slices.
func (s *solver) linkUtil() (lmax, lmean float64) {
	nLinks := s.rows - s.n
	if nLinks <= 0 {
		return 0, 0
	}
	var sum float64
	for r := s.n; r < s.rows; r++ {
		u := s.act[r] / s.b[r]
		if u > lmax {
			lmax = u
		}
		sum += u
	}
	return lmax, sum / float64(nLinks)
}

// finishTrace emits the solve's summary event and forces the sink to disk.
// It runs on every exit from the public entry points — converged, pass
// budget exhausted, or cancelled — so a SIGINT'd run still keeps every
// buffered pass event (flushing here is what makes partial traces
// debuggable).
func (s *solver) finishTrace(res *Result) {
	rec := s.opts.Recorder
	if !rec.Enabled() || res == nil {
		return
	}
	rec.RecordEPFDone(obs.EPFDone{
		Stream:     s.opts.TraceStream,
		Passes:     res.Passes,
		Objective:  res.Objective,
		LowerBound: res.LowerBound,
		Gap:        res.Gap,
		Converged:  res.Converged,
		Rounded:    res.Rounded,
	})
	// Per-shard summaries ride only on sharded solves, so an unsharded
	// solve's trace stays byte-identical to pre-shard releases.
	if len(s.shards) > 1 {
		for si, sp := range s.shards {
			var nnz int64
			for vi := sp.lo; vi < sp.hi; vi++ {
				nnz += int64(s.inst.Demands[vi].NNZ())
			}
			rec.RecordEPFShard(obs.EPFShard{
				Stream: s.opts.TraceStream,
				Shard:  si,
				Videos: sp.hi - sp.lo,
				NNZ:    nnz,
				Blocks: s.shardBlocks[si],
			})
		}
	}
	rec.RecordSpan(s.opts.TraceStream, "reduce", res.Stats.ReduceTime)
	rec.PublishKV("epf_stats."+s.opts.TraceStream, res.Stats)
	rec.Flush() //nolint:errcheck // sink errors surface from the caller's Close
}

// Lower-bound scale-search multipliers (package-level so the pass loop
// doesn't materialize a slice literal per pass).
var (
	lbMultsWide   = [3]float64{0.5, 1, 2}
	lbMultsNarrow = [1]float64{1}
)

// retargetB recomputes the objective-row target from the proven bound and
// the current premium.
func (s *solver) retargetB() {
	s.bObj = math.Max(s.lb*s.bPremium, s.bFloor)
}

// done reports the Algorithm 1 termination criterion. A tiny absolute slack
// keeps instances with OPT = 0 (no capacity pressure, β = 0) terminating.
func (s *solver) done(eps float64) bool {
	if !s.haveUB {
		return false
	}
	return s.ub <= (1+eps)*s.lb+1e-9
}

func (s *solver) buildResult(passes int, converged bool) *Result {
	out := mip.NewSolution(s.inst)
	for vi := range s.sol {
		out.Videos[vi].Open = append([]mip.Frac(nil), s.sol[vi].open...)
		for k := range s.sol[vi].assign {
			out.Videos[vi].Assign[k] = append([]mip.Frac(nil), s.sol[vi].assign[k]...)
		}
	}
	obj := out.Objective()
	gap := 0.0
	if s.lb > 1e-12 {
		gap = (obj - s.lb) / s.lb
	}
	s.stats.Passes = passes
	s.stats.DirtyVideos = len(s.opts.DirtyVideos)
	s.stats.ShardDirtyFrac = shardDirtyFractions(s.shards, s.opts.DirtyVideos)
	s.mergeStats()
	res := &Result{
		Sol:        out,
		LowerBound: s.lb,
		Objective:  obj,
		Gap:        gap,
		RowDuals:   append([]float64(nil), s.lbDuals...),
		Violation:  out.Check(),
		Passes:     passes,
		Converged:  converged,
		Stats:      s.stats,
	}
	res.Warm = s.exportWarm(res)
	return res
}

func (s *solver) snapshotBest() {
	if s.best == nil {
		s.best = make([]blockSol, len(s.sol))
	}
	for vi := range s.sol {
		src := &s.sol[vi]
		dst := &s.best[vi]
		dst.open = append(dst.open[:0], src.open...)
		if dst.assign == nil {
			dst.assign = make([][]mip.Frac, len(src.assign))
		}
		for k := range src.assign {
			dst.assign[k] = append(dst.assign[k][:0], src.assign[k]...)
		}
	}
}

func (s *solver) restoreBest() {
	for vi := range s.best {
		src := &s.best[vi]
		dst := &s.sol[vi]
		dst.open = append(dst.open[:0], src.open...)
		for k := range src.assign {
			dst.assign[k] = append(dst.assign[k][:0], src.assign[k]...)
		}
	}
}

// toIntSol converts a facility-location solution to an intSol, dropping
// opened facilities that serve no demand (they only consume disk). Used by
// the (allocation-tolerant) rounding phase; the descent hot path uses
// toIntSolInto.
func toIntSol(fsol *facloc.Solution, d *mip.VideoDemand) intSol {
	var out intSol
	var used []bool
	if len(d.Js) > 0 {
		max := 0
		for _, i := range fsol.Open {
			if i >= max {
				max = i + 1
			}
		}
		used = make([]bool, max)
	}
	toIntSolInto(fsol, d, used, &out)
	return out
}

// toIntSolInto is toIntSol writing into out, reusing its backing arrays.
// used is caller scratch (len ≥ every facility index in fsol.Open); it is
// left all-false on return. fsol.Open is ascending, and the filter below
// preserves order, so out.open is ascending without sorting.
func toIntSolInto(fsol *facloc.Solution, d *mip.VideoDemand, used []bool, out *intSol) {
	out.open = out.open[:0]
	if len(d.Js) == 0 {
		out.assign = out.assign[:0]
		if len(fsol.Open) > 0 {
			out.open = append(out.open, int32(fsol.Open[0]))
		}
		return
	}
	if cap(out.assign) < len(fsol.Assign) {
		out.assign = make([]int32, 0, len(fsol.Assign))
	}
	out.assign = out.assign[:len(fsol.Assign)]
	for k, i := range fsol.Assign {
		out.assign[k] = int32(i)
		used[i] = true
	}
	for _, i := range fsol.Open {
		if used[i] {
			out.open = append(out.open, int32(i))
		}
	}
	for _, i := range fsol.Assign {
		used[i] = false
	}
}

// addDelta accumulates a sparse row delta into s.acc/s.touched.
func (s *solver) addDelta(r int, v float64) {
	if s.acc[r] == 0 && v != 0 {
		s.touched = append(s.touched, int32(r))
	}
	s.acc[r] += v
}

// applyBlock replaces block vi by a convex combination of its current
// solution and the integer solution ns, with the mixing weight chosen by an
// exact line search on the potential. Activities and objective are updated
// incrementally.
func (s *solver) applyBlock(vi int, ns *intSol) {
	d := &s.inst.Demands[vi]
	old := &s.sol[vi]
	n := s.n

	// Deltas: new block rows minus old block rows, into s.acc/s.touched.
	s.touched = s.touched[:0]
	// Old contribution, negated.
	for _, f := range old.open {
		s.addDelta(int(f.I), -d.SizeGB*f.V)
	}
	for k, fr := range old.assign {
		j := int(d.Js[k])
		ts, fv := d.ConcNZ(k)
		for _, f := range fr {
			if int(f.I) == j || f.V == 0 {
				continue
			}
			path := s.inst.G.Path(int(f.I), j)
			for x, t := range ts {
				flow := d.RateMbps * fv[x] * f.V
				base := s.n + int(t)*s.L
				for _, l := range path {
					s.addDelta(base+int(l), -flow)
				}
			}
		}
	}
	// New contribution.
	for _, i := range ns.open {
		s.addDelta(int(i), d.SizeGB)
	}
	var dObj float64
	dObj -= s.blockCost(vi, old)
	for k, i := range ns.assign {
		j := int(d.Js[k])
		dObj += d.SizeGB * d.Agg[k] * s.costT[j*n+int(i)]
		if int(i) == j {
			continue
		}
		path := s.inst.G.Path(int(i), j)
		ts, fv := d.ConcNZ(k)
		for x, t := range ts {
			flow := d.RateMbps * fv[x]
			base := s.n + int(t)*s.L
			for _, l := range path {
				s.addDelta(base+int(l), flow)
			}
		}
	}
	if s.inst.UpdateWeight != 0 {
		for _, i := range ns.open {
			dObj += s.inst.PlacementCost(vi, int(i))
		}
	}

	tau := s.lineSearch(dObj)
	if tau > 0 {
		// Sequential-apply path (driver goroutine): safe to accumulate the
		// step statistics the warm-state export reports as TauHint.
		s.tauSum += tau
		s.tauN++
		// Remove the old block's rows and cost, replace the block, add the
		// new (mixed and y-tightened) contribution back.
		s.addBlockRows(vi, old, -1)
		oldCost := s.blockCost(vi, old)
		s.mixBlock(vi, ns, tau)
		s.addBlockRows(vi, &s.sol[vi], +1)
		s.obj += s.blockCost(vi, &s.sol[vi]) - oldCost
	}
	// Clear scratch.
	for _, r := range s.touched {
		s.acc[r] = 0
	}
	s.touched = s.touched[:0]
}

// lineSearch minimizes Φ(z + τ·Δ) over τ ∈ [0, 1] given the sparse row
// deltas in s.acc/s.touched and the objective delta. Φ is convex in τ.
//
// The touched rows are first gathered into contiguous scratch arrays with
// the per-row delta/b coefficient divided out once, so each derivative
// evaluation is a single fused multiply-exp sweep. All modes then run the
// same fixed 30-step bisection, bit-identical to the historical trajectory.
//
// Every mode bisects on purpose. A safeguarded Newton iteration on Φ' was
// trialled for the fast modes (~5 sweeps instead of 30) and rejected by the
// differential sweep: Φ' routinely has wide numerically-flat plateaus — the
// clamped exponentials underflow when every touched row is far from its
// smoothed capacity — and inside a plateau any τ is a "root" to float
// precision. Newton parks at whatever plateau point its last step reached,
// while bisection's sign test walks to the plateau's left edge and takes
// the conservative step; the difference compounds over thousands of steps
// into a 5–18% objective regression on hard corpus seeds. The line search
// is driver-side serial residue either way; the fused gather above, not the
// probe count, is what keeps it cheap.
func (s *solver) lineSearch(dObj float64) float64 {
	s.stats.LineSearches++
	m := 0
	for _, r := range s.touched {
		delta := s.acc[r]
		if delta == 0 {
			continue
		}
		s.lsDelta[m] = delta
		s.lsAct[m] = s.act[r]
		s.lsB[m] = s.b[r]
		s.lsDB[m] = delta / s.b[r]
		m++
	}
	deriv := func(tau float64) float64 {
		var dsum float64
		for x := 0; x < m; x++ {
			rr := (s.lsAct[x]+tau*s.lsDelta[x])/s.lsB[x] - 1
			dsum += s.lsDB[x] * expClamp(s.alpha*rr)
		}
		if dObj != 0 {
			rr0 := (s.obj+tau*dObj)/s.bObj - 1
			dsum += dObj / s.bObj * expClamp(s.alpha*rr0)
		}
		return dsum
	}
	if deriv(0) >= 0 {
		return 0
	}
	if deriv(1) <= 0 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 30; iter++ {
		mid := (lo + hi) / 2
		if deriv(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// mixBlock sets s.sol[vi] ← (1−τ)·old + τ·ns, then tightens y to the
// pointwise maximum of the assignments (feasible and never worse for the
// potential) and prunes negligible entries.
func (s *solver) mixBlock(vi int, ns *intSol, tau float64) {
	d := &s.inst.Demands[vi]
	old := &s.sol[vi]
	const prune = 1e-12

	if tau >= 1 {
		// Full replacement.
		old.open = old.open[:0]
		for _, i := range ns.open {
			old.open = append(old.open, mip.Frac{I: i, V: 1})
		}
		for k := range old.assign {
			old.assign[k] = append(old.assign[k][:0], mip.Frac{I: ns.assign[k], V: 1})
		}
		return
	}

	// Mix assignments per demand point; track per-office max for y.
	y := s.yBuf
	for i := range y {
		y[i] = 0
	}
	for k := range old.assign {
		s.mergeFracs(old.assign[k], ns.assign[k], tau, prune)
		// Copy the staged merge back through the row's own backing array;
		// append only allocates while a row's capacity is still growing.
		merged := append(old.assign[k][:0], s.mergeBuf...)
		old.assign[k] = merged
		// Renormalize to sum exactly 1 (pruning can nudge it off).
		var sum float64
		for _, f := range merged {
			sum += f.V
		}
		if sum > 0 && math.Abs(sum-1) > 1e-15 {
			inv := 1 / sum
			for idx := range merged {
				merged[idx].V *= inv
			}
		}
		for _, f := range merged {
			if f.V > y[f.I] {
				y[f.I] = f.V
			}
		}
	}
	if len(d.Js) > 0 {
		old.open = old.open[:0]
		for i := 0; i < s.n; i++ {
			if y[i] > prune {
				old.open = append(old.open, mip.Frac{I: int32(i), V: y[i]})
			}
		}
		return
	}
	// Zero-demand video: mix the open vectors directly (Σy stays 1).
	for i := range y {
		y[i] = 0
	}
	for _, f := range old.open {
		y[f.I] += (1 - tau) * f.V
	}
	for _, i := range ns.open {
		y[i] += tau
	}
	old.open = old.open[:0]
	for i := 0; i < s.n; i++ {
		if y[i] > prune {
			old.open = append(old.open, mip.Frac{I: int32(i), V: y[i]})
		}
	}
}

// mergeFracs stages (1−τ)·a + τ·unit(i_b) into s.mergeBuf; a is sorted by
// office, the staged result is sorted, entries below prune are dropped. The
// caller copies the buffer back through the destination row's backing, so
// steady-state merges allocate nothing once row capacities stabilize.
func (s *solver) mergeFracs(a []mip.Frac, ib int32, tau, prune float64) {
	out := s.mergeBuf[:0]
	inserted := false
	for _, f := range a {
		v := (1 - tau) * f.V
		if f.I == ib {
			v += tau
			inserted = true
		} else if !inserted && f.I > ib {
			if tau > prune {
				out = append(out, mip.Frac{I: ib, V: tau})
			}
			inserted = true
		}
		if v > prune {
			out = append(out, mip.Frac{I: f.I, V: v})
		}
	}
	if !inserted && tau > prune {
		out = append(out, mip.Frac{I: ib, V: tau})
	}
	s.mergeBuf = out
}

// lagrangianBound computes LR(λ) = Σ_k LB_k(λ) − Σ_r λ_r·b_r with the given
// normalized duals, using per-block dual-ascent lower bounds so the result
// is a valid bound on OPT.
func (s *solver) lagrangianBound(q []float64) float64 {
	lr, _ := s.lagrangianEval(q, false)
	return lr
}

// lagrangianEval computes LR(q) and, when wantGrad is set, the activities
// A·z_q of an (approximate) block-minimizing point z_q — the subgradient of
// LR at q is A·z_q − b. The bound uses per-block dual ascent (valid lower
// bounds); the subgradient uses the facility-location primal heuristic.
//
// Workers write per-block results into s.lbBuf/s.lbSols and every reduction
// runs in block order on this goroutine, so the bound and subgradient are
// bit-identical at any worker count. On cancellation it returns (−Inf, nil):
// callers only ever take the max of the bound, so a cancelled evaluation
// can never corrupt the solve. The returned gradient is solver-owned
// scratch, valid until the next call.
func (s *solver) lagrangianEval(q []float64, wantGrad bool) (float64, []float64) {
	s.computePathDuals(q)
	s.stats.LBEvals++
	numBlocks := len(s.sol)
	if wantGrad && s.lbSols == nil {
		s.lbSols = make([]intSol, numBlocks)
	}
	s.lbQ, s.lbWantGrad = q, wantGrad
	err := s.pool.RunTasks(s.ctx, s.lbTasks, s.lbTaskFn)
	if err != nil || s.ctx.Err() != nil {
		return math.Inf(-1), nil
	}
	lr := s.reduceLBSum(numBlocks)
	for r := 0; r < s.rows; r++ {
		lr -= q[r] * s.b[r]
	}
	// A diverging bound certifies infeasibility of FEAS(B); clamp so the
	// B ← LB feedback stays finite (a clamped bound remains valid).
	if math.IsNaN(lr) {
		lr = math.Inf(-1)
	} else if lr > 1e100 {
		lr = 1e100
	}
	if !wantGrad {
		return lr, nil
	}
	if s.gradBuf == nil {
		s.gradBuf = make([]float64, s.rows)
	}
	grad := s.gradBuf
	s.reduceGrad(grad, numBlocks)
	return lr, grad
}

// accumulateIntRows adds the coupling-row activities of the integer block
// solution ns for video vi into act.
func (s *solver) accumulateIntRows(vi int, ns *intSol, act []float64) {
	d := &s.inst.Demands[vi]
	for _, i := range ns.open {
		act[int(i)] += d.SizeGB
	}
	if s.T == 0 {
		return
	}
	for k, i := range ns.assign {
		j := int(d.Js[k])
		if int(i) == j {
			continue
		}
		path := s.inst.G.Path(int(i), j)
		ts, fv := d.ConcNZ(k)
		for x, t := range ts {
			flow := d.RateMbps * fv[x]
			base := s.n + int(t)*s.L
			for _, l := range path {
				act[base+int(l)] += flow
			}
		}
	}
}

// polishLB runs a few exponentiated-gradient ascent steps on the Lagrangian
// dual vector: rows that the current dual's block minimizer overloads get
// their price multiplied up, slack rows decay. This closes the last
// percents of the lower bound when the potential-derived duals stall — the
// Appendix notes the production implementation replaces the textbook
// update mechanisms for exactly this reason.
func (s *solver) polishLB() {
	if s.qLB == nil {
		s.qLB = make([]float64, s.rows)
		for r := range s.qLB {
			v := s.lbScale * s.qBar[r]
			if v < 1e-12 {
				v = 1e-12
			}
			s.qLB[r] = v
		}
	}
	const iters = 6
	for it := 0; it < iters; it++ {
		lr, grad := s.lagrangianEval(s.qLB, true)
		if grad == nil {
			break // cancelled mid-evaluation
		}
		if lr > s.lb {
			s.lb = lr
			s.lbStall = 0
			copy(s.lbDuals, s.qLB) // before the ascent step mutates qLB
		}
		eta := 0.5 / (1 + float64(s.polishes) + float64(it))
		for r := range s.qLB {
			rel := grad[r]/s.b[r] - 1 // relative violation of the minimizer
			if rel > 3 {
				rel = 3
			}
			if rel < -3 {
				rel = -3
			}
			s.qLB[r] = clampDual(s.qLB[r] * math.Exp(eta*rel))
			if s.qLB[r] < 1e-15 {
				s.qLB[r] = 1e-15
			}
		}
	}
	s.polishes++
}
