// Package stats provides small numeric helpers used across the placement
// library: means, geometric means, percentiles, cosine similarity and
// fixed-width histograms.
//
// All functions are pure and allocate at most O(n); they are deliberately
// simple so that experiment code can depend on them without pulling in any
// heavier numerical machinery.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// All elements must be positive; non-positive elements are treated as a
// tiny positive epsilon so that a single zero sample does not collapse the
// whole aggregate (matching how the paper aggregates six scenario means).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-12
	var sumLog float64
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs)))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CosineSimilarity returns the cosine of the angle between two equal-length
// vectors, in [0, 1] for non-negative vectors (the request-count vectors used
// in the paper's Fig. 3 are non-negative). It returns 0 if either vector is
// all zeros or the lengths differ.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// CosineSimilarityCounts is CosineSimilarity over integer count vectors,
// the form produced by per-video request tallies.
func CosineSimilarityCounts(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Histogram is a fixed-width histogram over [Lo, Hi) with len(Counts) bins.
// Samples outside the range are clamped into the first or last bin so that
// totals are preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo, which indicate programmer error.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram bins must be positive, got %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram needs hi > lo, got [%g, %g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int {
	var n int
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// CDF returns the empirical cumulative distribution of the histogram as a
// slice of cumulative fractions per bin. An empty histogram yields all zeros.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	total := h.Total()
	if total == 0 {
		return out
	}
	cum := 0
	for i, c := range h.Counts {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}
