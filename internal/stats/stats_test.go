package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
			}
		})
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-9) {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	if got := GeoMean([]float64{8, 8, 8}); !almostEqual(got, 8, 1e-9) {
		t.Errorf("GeoMean(8,8,8) = %g, want 8", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", got)
	}
	// A zero sample must not collapse the mean to exactly zero.
	if got := GeoMean([]float64{0, 100}); got <= 0 {
		t.Errorf("GeoMean with zero sample = %g, want > 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g, want 7", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g, want -1", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %g, want 11", got)
	}
	if Max(nil) != 0 || Min(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice aggregates should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v, %g) = %g, want %g", xs, c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	// Input must not be mutated.
	unsorted := []float64{5, 1, 3}
	Percentile(unsorted, 50)
	if unsorted[0] != 5 || unsorted[1] != 1 || unsorted[2] != 3 {
		t.Errorf("Percentile mutated its input: %v", unsorted)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("identical vectors: got %g, want 1", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("orthogonal vectors: got %g, want 0", got)
	}
	if got := CosineSimilarity([]float64{1, 1}, []float64{2, 2}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("parallel vectors: got %g, want 1", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero vector: got %g, want 0", got)
	}
	if got := CosineSimilarity([]float64{1}, []float64{1, 2}); got != 0 {
		t.Errorf("mismatched lengths: got %g, want 0", got)
	}
}

func TestCosineSimilarityCounts(t *testing.T) {
	a := []int{3, 0, 4}
	b := []int{3, 0, 4}
	if got := CosineSimilarityCounts(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("identical count vectors: got %g, want 1", got)
	}
	if got := CosineSimilarityCounts([]int{1, 0}, []int{0, 1}); got != 0 {
		t.Errorf("orthogonal count vectors: got %g, want 0", got)
	}
}

// Property: cosine similarity of non-negative vectors lies in [0, 1] and is
// symmetric.
func TestCosineSimilarityProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[n+i])
		}
		s := CosineSimilarity(a, b)
		if s < -1e-9 || s > 1+1e-9 {
			return false
		}
		return almostEqual(s, CosineSimilarity(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(p1 % 101) // 0..100
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb+1e-9 && pa >= Min(xs)-1e-9 && pb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.9, 10, 15, -3} {
		h.Add(x)
	}
	if got := h.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	// -3 and 0 and 1.9 in bin 0; 2 in bin 1; 9.9, 10, 15 in bin 4.
	want := []int{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %g, want 1", got)
	}
	cdf := h.CDF()
	if !almostEqual(cdf[len(cdf)-1], 1, 1e-12) {
		t.Errorf("CDF last = %g, want 1", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone at %d: %v", i, cdf)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, c := range []struct {
		name   string
		lo, hi float64
		bins   int
	}{
		{"zero bins", 0, 1, 0},
		{"inverted range", 1, 0, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewHistogram(c.lo, c.hi, c.bins)
		})
	}
}

func TestHistogramEmptyCDF(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, v := range h.CDF() {
		if v != 0 {
			t.Errorf("empty CDF should be all zero, got %v", h.CDF())
		}
	}
}
