// Package topology models the VHO backbone network: a set of video hub
// offices (vertices) connected by directed links, with a fixed shortest-path
// route between every ordered pair of offices.
//
// The placement MIP only consumes the *set* of links on the path P_ij from a
// serving office i to a requesting office j and the hop count |P_ij|; the
// order of links is irrelevant (§V-A of the paper). Paths are computed once
// with a deterministic breadth-first search, matching the paper's assumption
// of predetermined shortest-path routing rather than arbitrary routing.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Link is one directed backbone link between two offices.
type Link struct {
	From, To int
}

// Graph is a backbone network with a fixed routing table. The zero value is
// an empty graph; use New and AddEdge, then Build, or one of the generator
// functions (Backbone55, Tree, FullMesh, Tiscali, Sprint, Ebone).
type Graph struct {
	name  string
	n     int
	links []Link
	index map[Link]int
	adj   [][]int // adj[u] = sorted neighbor node ids
	// Routing table in CSR (compressed sparse row) form: the link ids on the
	// fixed route i -> j are pathLinks[pathOff[i*n+j]:pathOff[i*n+j+1]], in
	// path order (empty for i == j). One flat array instead of n² small
	// slices keeps the solver's path walks on contiguous cache lines.
	pathLinks []int32
	pathOff   []int32 // len n*n+1
	// Reverse incidence, also CSR: the ordered pairs p = i*n+j whose route
	// uses directed link l are pairLinks[pairOff[l]:pairOff[l+1]], ascending.
	// Incremental dual-pricing kernels use it to propagate a single link's
	// price change to exactly the affected path sums.
	pairLinks []int32
	pairOff   []int32 // len NumLinks()+1
	built     bool
}

// New returns an empty graph over n offices. Office ids are 0..n-1.
func New(name string, n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("topology: graph needs at least one node, got %d", n))
	}
	return &Graph{
		name:  name,
		n:     n,
		index: make(map[Link]int),
		adj:   make([][]int, n),
	}
}

// Name returns the human-readable topology name (e.g. "backbone55").
func (g *Graph) Name() string { return g.name }

// NumNodes returns the number of offices.
func (g *Graph) NumNodes() int { return g.n }

// NumLinks returns the number of directed links (twice the number of
// bidirectional edges).
func (g *Graph) NumLinks() int { return len(g.links) }

// NumEdges returns the number of bidirectional edges.
func (g *Graph) NumEdges() int { return len(g.links) / 2 }

// Links returns the directed link table. The caller must not modify it.
func (g *Graph) Links() []Link { return g.links }

// Link returns directed link l.
func (g *Graph) Link(l int) Link { return g.links[l] }

// LinkID returns the id of the directed link u->v and whether it exists.
func (g *Graph) LinkID(u, v int) (int, bool) {
	id, ok := g.index[Link{u, v}]
	return id, ok
}

// AddEdge adds a bidirectional edge between u and v (two directed links).
// Duplicate edges and self-loops are rejected with an error. AddEdge must not
// be called after Build.
func (g *Graph) AddEdge(u, v int) error {
	if g.built {
		return fmt.Errorf("topology: AddEdge(%d, %d) after Build", u, v)
	}
	if u == v {
		return fmt.Errorf("topology: self-loop at node %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("topology: edge (%d, %d) out of range [0, %d)", u, v, g.n)
	}
	if _, dup := g.index[Link{u, v}]; dup {
		return fmt.Errorf("topology: duplicate edge (%d, %d)", u, v)
	}
	g.index[Link{u, v}] = len(g.links)
	g.links = append(g.links, Link{u, v})
	g.index[Link{v, u}] = len(g.links)
	g.links = append(g.links, Link{v, u})
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// mustAddEdge is AddEdge for generator code where failure is programmer error.
func (g *Graph) mustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build finalizes the graph: it sorts adjacency lists for determinism and
// computes the fixed shortest-path routing table with per-source BFS
// (uniform link weights, ties broken toward the lowest-numbered neighbor).
// Build returns an error if the graph is not connected, since a VHO that
// cannot reach a replica cannot be served.
func (g *Graph) Build() error {
	for u := range g.adj {
		sort.Ints(g.adj[u])
	}
	g.pathOff = make([]int32, g.n*g.n+1)
	g.pathLinks = g.pathLinks[:0]
	parent := make([]int, g.n)
	queue := make([]int, 0, g.n)
	rev := make([]int32, 0, g.n)
	for src := 0; src < g.n; src++ {
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue = queue[:0]
		queue = append(queue, src)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.adj[u] {
				if parent[v] < 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		for dst := 0; dst < g.n; dst++ {
			if parent[dst] < 0 {
				return fmt.Errorf("topology: graph %q is disconnected: node %d unreachable from %d", g.name, dst, src)
			}
			if dst != src {
				// Reconstruct src -> dst and record the directed links in
				// that direction. Walk dst back to src, then append reversed.
				rev = rev[:0]
				for v := dst; v != src; v = parent[v] {
					u := parent[v]
					id, ok := g.index[Link{u, v}]
					if !ok {
						return fmt.Errorf("topology: internal error: missing link (%d, %d)", u, v)
					}
					rev = append(rev, int32(id))
				}
				for i := len(rev) - 1; i >= 0; i-- {
					g.pathLinks = append(g.pathLinks, rev[i])
				}
			}
			g.pathOff[src*g.n+dst+1] = int32(len(g.pathLinks))
		}
	}
	g.buildReverseIncidence()
	g.built = true
	return nil
}

// buildReverseIncidence fills pairLinks/pairOff from the routing table: for
// every directed link, the ascending list of pairs whose path crosses it.
func (g *Graph) buildReverseIncidence() {
	L := len(g.links)
	counts := make([]int32, L+1)
	for _, l := range g.pathLinks {
		counts[l+1]++
	}
	g.pairOff = counts
	for l := 0; l < L; l++ {
		g.pairOff[l+1] += g.pairOff[l]
	}
	g.pairLinks = make([]int32, len(g.pathLinks))
	next := make([]int32, L)
	copy(next, g.pairOff[:L])
	for p := 0; p < g.n*g.n; p++ {
		for _, l := range g.pathLinks[g.pathOff[p]:g.pathOff[p+1]] {
			g.pairLinks[next[l]] = int32(p)
			next[l]++
		}
	}
}

// mustBuild panics on Build failure; used by generators that construct
// connected graphs by design.
func (g *Graph) mustBuild() *Graph {
	if err := g.Build(); err != nil {
		panic(err)
	}
	return g
}

// Built reports whether Build has completed successfully.
func (g *Graph) Built() bool { return g.built }

// Path returns the link ids on the fixed route from serving office i to
// requesting office j. The path is empty when i == j (local service uses no
// backbone links). The caller must not modify the returned slice (it aliases
// the shared CSR table).
func (g *Graph) Path(i, j int) []int32 {
	if !g.built {
		panic("topology: Path before Build")
	}
	p := i*g.n + j
	return g.pathLinks[g.pathOff[p]:g.pathOff[p+1]:g.pathOff[p+1]]
}

// PathCSR exposes the raw routing table: links is the concatenation of every
// path's link ids and off has length n²+1, so pair p = i*n+j occupies
// links[off[p]:off[p+1]]. Hot kernels index this directly to avoid per-call
// slice construction. Callers must not modify either slice.
func (g *Graph) PathCSR() (links, off []int32) {
	if !g.built {
		panic("topology: PathCSR before Build")
	}
	return g.pathLinks, g.pathOff
}

// LinkPairs returns the ordered pairs p = i*n+j whose fixed route uses
// directed link l, ascending. The caller must not modify the returned slice.
func (g *Graph) LinkPairs(l int) []int32 {
	if !g.built {
		panic("topology: LinkPairs before Build")
	}
	return g.pairLinks[g.pairOff[l]:g.pairOff[l+1]:g.pairOff[l+1]]
}

// Hops returns |P_ij|, the hop count of the fixed route from i to j.
func (g *Graph) Hops(i, j int) int {
	p := i*g.n + j
	return int(g.pathOff[p+1] - g.pathOff[p])
}

// Diameter returns the maximum hop count over all ordered pairs.
func (g *Graph) Diameter() int {
	var d int
	for i := 0; i < g.n; i++ {
		for j := 0; j < g.n; j++ {
			if h := g.Hops(i, j); h > d {
				d = h
			}
		}
	}
	return d
}

// Backbone55 returns a 55-office backbone modelled on the deployed IPTV
// network in the paper's default setup: 55 VHOs and 76 bidirectional links.
// The structure is a national ring with regional cross-links: a Hamiltonian
// ring (55 edges) plus 21 deterministic chords connecting offices roughly a
// quarter of the ring apart, giving hop counts and path diversity similar to
// published ISP backbones.
func Backbone55() *Graph {
	const n = 55
	g := New("backbone55", n)
	for i := 0; i < n; i++ {
		g.mustAddEdge(i, (i+1)%n)
	}
	// 21 chords: every third office gets a long-haul link about a quarter of
	// the ring away. Offsets vary slightly so the chords do not all have the
	// same length, which would create an overly regular path structure.
	chords := 0
	for i := 0; chords < 21; i += 3 {
		u := i % n
		v := (i + 13 + (i/3)%5) % n
		if u == v {
			continue
		}
		if _, dup := g.index[Link{u, v}]; dup {
			continue
		}
		g.mustAddEdge(u, v)
		chords++
	}
	return g.mustBuild()
}

// Tree returns a tree over n offices (n-1 bidirectional links): office 0 is
// the root and office i attaches to office (i-1)/3, a ternary hierarchy
// resembling a distribution tree. Used for the Table IV topology comparison.
func Tree(n int) *Graph {
	g := New(fmt.Sprintf("tree%d", n), n)
	for i := 1; i < n; i++ {
		g.mustAddEdge(i, (i-1)/3)
	}
	return g.mustBuild()
}

// FullMesh returns the complete graph over n offices (n(n-1)/2 edges), the
// other Table IV hypothetical.
func FullMesh(n int) *Graph {
	g := New(fmt.Sprintf("mesh%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.mustAddEdge(i, j)
		}
	}
	return g.mustBuild()
}

// randomConnected returns a graph with n nodes and exactly edges
// bidirectional links: a random spanning tree plus random chords, drawn
// deterministically from seed. It reproduces the node/link counts of the
// Rocketfuel maps used in the paper (the maps themselves are not
// redistributable); only those counts and general path diversity influence
// the experiments.
func randomConnected(name string, n, edges int, seed int64) *Graph {
	if edges < n-1 {
		panic(fmt.Sprintf("topology: %s needs at least %d edges for connectivity, got %d", name, n-1, edges))
	}
	maxEdges := n * (n - 1) / 2
	if edges > maxEdges {
		panic(fmt.Sprintf("topology: %s wants %d edges but only %d possible", name, edges, maxEdges))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(name, n)
	// Random spanning tree: attach each node to a uniformly random earlier
	// node (a random recursive tree — realistic small-diameter skeleton).
	for i := 1; i < n; i++ {
		g.mustAddEdge(i, rng.Intn(i))
	}
	for g.NumEdges() < edges {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if _, dup := g.index[Link{u, v}]; dup {
			continue
		}
		g.mustAddEdge(u, v)
	}
	return g.mustBuild()
}

// Tiscali returns a 49-office, 86-edge graph with the node/link counts of the
// Rocketfuel Tiscali map used in §VII (Table IV).
func Tiscali() *Graph { return randomConnected("tiscali", 49, 86, 4901) }

// Sprint returns a 33-office, 69-edge graph with the node/link counts of the
// Rocketfuel Sprint map used in §VII (Table IV).
func Sprint() *Graph { return randomConnected("sprint", 33, 69, 3301) }

// Ebone returns a 23-office, 38-edge graph with the node/link counts of the
// Rocketfuel Ebone map used in §VII (Table IV).
func Ebone() *Graph { return randomConnected("ebone", 23, 38, 2301) }

// Random returns a connected random graph for tests and fuzzing: n nodes and
// approximately density*n extra chords beyond a spanning tree.
func Random(n int, density float64, seed int64) *Graph {
	edges := n - 1 + int(float64(n)*density)
	// A connected graph needs at least a spanning tree; negative or tiny
	// densities (fuzzers pass arbitrary values) clamp to it.
	if edges < n-1 {
		edges = n - 1
	}
	if maxEdges := n * (n - 1) / 2; edges > maxEdges {
		edges = maxEdges
	}
	return randomConnected(fmt.Sprintf("random%d", n), n, edges, seed)
}
