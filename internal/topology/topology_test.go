package topology

import (
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New("t", 3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := g.AddEdge(-1, 1); err == nil {
		t.Error("negative node accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("reverse duplicate edge accepted")
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	g := New("t", 4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.Build(); err == nil {
		t.Error("Build accepted a disconnected graph")
	}
}

func TestAddEdgeAfterBuildRejected(t *testing.T) {
	g := New("t", 2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("AddEdge after Build accepted")
	}
}

func TestPathBasics(t *testing.T) {
	// Path graph 0-1-2-3.
	g := New("path", 4)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	if got := g.Hops(0, 3); got != 3 {
		t.Errorf("Hops(0,3) = %d, want 3", got)
	}
	if got := g.Hops(2, 2); got != 0 {
		t.Errorf("Hops(2,2) = %d, want 0 (local service)", got)
	}
	// Path links must be oriented src -> dst.
	path := g.Path(0, 3)
	at := 0
	for _, l := range path {
		lk := g.Link(int(l))
		if lk.From != at {
			t.Fatalf("path link %v does not continue from node %d", lk, at)
		}
		at = lk.To
	}
	if at != 3 {
		t.Errorf("path ends at %d, want 3", at)
	}
	if got := g.Diameter(); got != 3 {
		t.Errorf("Diameter = %d, want 3", got)
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name    string
		g       *Graph
		nodes   int
		edges   int
		maxDiam int
	}{
		{"backbone55", Backbone55(), 55, 76, 16},
		{"tiscali", Tiscali(), 49, 86, 12},
		{"sprint", Sprint(), 33, 69, 10},
		{"ebone", Ebone(), 23, 38, 10},
		{"tree55", Tree(55), 55, 54, 10},
		{"mesh10", FullMesh(10), 10, 45, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.g.NumNodes(); got != c.nodes {
				t.Errorf("nodes = %d, want %d", got, c.nodes)
			}
			if got := c.g.NumEdges(); got != c.edges {
				t.Errorf("edges = %d, want %d", got, c.edges)
			}
			if got := c.g.NumLinks(); got != 2*c.edges {
				t.Errorf("directed links = %d, want %d", got, 2*c.edges)
			}
			if d := c.g.Diameter(); d < 1 || d > c.maxDiam {
				t.Errorf("diameter = %d, want in [1, %d]", d, c.maxDiam)
			}
			if !c.g.Built() {
				t.Error("generator returned unbuilt graph")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := Tiscali(), Tiscali()
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("two Tiscali graphs differ in size")
	}
	for i, la := range a.Links() {
		if la != b.Link(i) {
			t.Fatalf("link %d differs: %v vs %v", i, la, b.Link(i))
		}
	}
	for i := 0; i < a.NumNodes(); i++ {
		for j := 0; j < a.NumNodes(); j++ {
			pa, pb := a.Path(i, j), b.Path(i, j)
			if len(pa) != len(pb) {
				t.Fatalf("path (%d,%d) lengths differ", i, j)
			}
			for k := range pa {
				if pa[k] != pb[k] {
					t.Fatalf("path (%d,%d) differs at %d", i, j, k)
				}
			}
		}
	}
}

// Properties that must hold for every graph: paths are shortest and
// consistent, link ids valid, local paths empty.
func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			path := g.Path(i, j)
			if i == j && len(path) != 0 {
				t.Fatalf("Path(%d,%d) not empty", i, j)
			}
			at := i
			for _, l := range path {
				if int(l) < 0 || int(l) >= g.NumLinks() {
					t.Fatalf("Path(%d,%d) has invalid link id %d", i, j, l)
				}
				lk := g.Link(int(l))
				if lk.From != at {
					t.Fatalf("Path(%d,%d) link %v discontinuous at %d", i, j, lk, at)
				}
				at = lk.To
			}
			if at != j {
				t.Fatalf("Path(%d,%d) ends at %d", i, j, at)
			}
			// BFS triangle inequality: hops(i,j) <= hops(i,k) + hops(k,j).
			if j > 0 {
				k := (i + j) % n
				if g.Hops(i, j) > g.Hops(i, k)+g.Hops(k, j) {
					t.Fatalf("Hops(%d,%d)=%d violates triangle via %d (%d+%d)",
						i, j, g.Hops(i, j), k, g.Hops(i, k), g.Hops(k, j))
				}
			}
		}
	}
}

func TestGraphInvariants(t *testing.T) {
	for _, g := range []*Graph{Backbone55(), Tiscali(), Sprint(), Ebone(), Tree(20), FullMesh(8)} {
		t.Run(g.Name(), func(t *testing.T) { checkGraphInvariants(t, g) })
	}
}

// Property-based: random graphs of varying size and density satisfy the
// invariants and BFS symmetry of hop counts (undirected edges imply
// hops(i,j) == hops(j,i)).
func TestRandomGraphProperties(t *testing.T) {
	f := func(rawN uint8, rawDensity uint8, seed int64) bool {
		n := int(rawN%30) + 2
		density := float64(rawDensity%40) / 10.0
		g := Random(n, density, seed)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.Hops(i, j) != g.Hops(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLinkID(t *testing.T) {
	g := Backbone55()
	lk := g.Link(0)
	id, ok := g.LinkID(lk.From, lk.To)
	if !ok || id != 0 {
		t.Errorf("LinkID(%d,%d) = %d,%v want 0,true", lk.From, lk.To, id, ok)
	}
	if _, ok := g.LinkID(0, 30); ok {
		// Ring+chords: 0 and 30 should not be adjacent in this construction.
		t.Log("unexpected adjacency 0-30; not fatal but construction changed")
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	New("bad", 0)
}

// TestRandomTable pins the contract of the Random generator across the
// parameter grid the verification harness and fuzzers exercise: the result
// is always connected, deterministic for a fixed seed, and its edge count
// and degrees stay within the advertised bounds (including the clamps for
// negative density and for densities beyond the complete graph).
func TestRandomTable(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		density float64
		seed    int64
	}{
		{"tree only", 5, 0, 3},
		{"sparse", 8, 0.5, 1},
		{"dense", 8, 1.4, 2},
		{"beyond complete", 4, 100, 4},
		{"negative density clamps", 6, -3, 5},
		{"two nodes", 2, 1, 6},
		{"large sparse", 40, 0.3, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := Random(tc.n, tc.density, tc.seed)
			if !g.Built() {
				t.Fatal("graph not built")
			}
			if g.NumNodes() != tc.n {
				t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), tc.n)
			}

			// Connectivity: every ordered pair has a path of valid links.
			for i := 0; i < tc.n; i++ {
				for j := 0; j < tc.n; j++ {
					if i == j {
						continue
					}
					p := g.Path(i, j)
					if len(p) == 0 {
						t.Fatalf("no path %d→%d", i, j)
					}
					for _, l := range p {
						if int(l) < 0 || int(l) >= g.NumLinks() {
							t.Fatalf("path %d→%d uses invalid link %d", i, j, l)
						}
					}
				}
			}

			// Edge-count bounds: at least a spanning tree, at most the
			// requested chord budget and the complete graph.
			minEdges := tc.n - 1
			maxEdges := tc.n * (tc.n - 1) / 2
			want := tc.n - 1 + int(float64(tc.n)*tc.density)
			if want > maxEdges {
				want = maxEdges
			}
			if want < minEdges {
				want = minEdges
			}
			if e := g.NumEdges(); e < minEdges || e > maxEdges || e > want {
				t.Errorf("NumEdges = %d, want within [%d, %d]", e, minEdges, want)
			}

			// Degree bounds: no self-loops, no vertex exceeds n-1 neighbors,
			// no isolated vertex.
			deg := make([]int, tc.n)
			for _, lk := range g.Links() {
				if lk.From == lk.To {
					t.Fatalf("self-loop at %d", lk.From)
				}
				deg[lk.From]++
			}
			for v, d := range deg {
				if d == 0 || d > tc.n-1 {
					t.Errorf("degree[%d] = %d outside [1, %d]", v, d, tc.n-1)
				}
			}

			// Determinism: the same (n, density, seed) yields the identical
			// link list; a different seed is allowed to differ.
			h := Random(tc.n, tc.density, tc.seed)
			if len(h.Links()) != len(g.Links()) {
				t.Fatalf("re-generation changed edge count: %d vs %d", len(h.Links()), len(g.Links()))
			}
			for l, lk := range g.Links() {
				if h.Links()[l] != lk {
					t.Fatalf("re-generation changed link %d: %+v vs %+v", l, lk, h.Links()[l])
				}
			}
		})
	}
}
