package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the registry exposition byte-for-byte: a
// fixed registry must always render the same text (sorted sanitized family
// names, # TYPE lines, cumulative buckets, shortest-float values). CI's
// /metrics contract rests on this determinism.
func TestWritePrometheusGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("serve.route_requests").Add(42)
	m.Gauge("serve.snapshot_age_seconds").Set(3.5)
	h := m.Histogram("epf.pass_ms")
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(100)

	var b strings.Builder
	m.WritePrometheus(&b)
	const want = `# TYPE epf_pass_ms histogram
epf_pass_ms_bucket{le="0.5"} 1
epf_pass_ms_bucket{le="2"} 2
epf_pass_ms_bucket{le="128"} 3
epf_pass_ms_bucket{le="+Inf"} 3
epf_pass_ms_sum 101.25
epf_pass_ms_count 3
# TYPE serve_route_requests counter
serve_route_requests 42
# TYPE serve_snapshot_age_seconds gauge
serve_snapshot_age_seconds 3.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteReqPromGolden(t *testing.T) {
	e := NewReqStat("route")
	e.Record(200, 500*time.Nanosecond)
	e.Record(200, 900*time.Nanosecond)
	e.Record(404, 2*time.Microsecond)

	var b strings.Builder
	WriteReqProm(&b, []*ReqStat{e, nil})
	const want = `# TYPE vod_http_requests_total counter
vod_http_requests_total{endpoint="route",code="1xx"} 0
vod_http_requests_total{endpoint="route",code="2xx"} 2
vod_http_requests_total{endpoint="route",code="3xx"} 0
vod_http_requests_total{endpoint="route",code="4xx"} 1
vod_http_requests_total{endpoint="route",code="5xx"} 0
# TYPE vod_http_request_duration_seconds histogram
vod_http_request_duration_seconds_bucket{endpoint="route",le="5.12e-07"} 1
vod_http_request_duration_seconds_bucket{endpoint="route",le="1.024e-06"} 2
vod_http_request_duration_seconds_bucket{endpoint="route",le="2.048e-06"} 3
vod_http_request_duration_seconds_bucket{endpoint="route",le="+Inf"} 3
vod_http_request_duration_seconds_sum{endpoint="route"} 2.688e-06
vod_http_request_duration_seconds_count{endpoint="route"} 3
`
	if got := b.String(); got != want {
		t.Errorf("request exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, out string }{
		{"serve.route_requests", "serve_route_requests"},
		{"epf:pass-ms", "epf:pass_ms"},
		{"9lives", "_9lives"},
		{"plain", "plain"},
	} {
		if got := PromName(tc.in); got != tc.out {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.out)
		}
	}
}

// TestParsePromRoundTrip feeds the writer's own output through the parser
// and reconstructs the latency histogram — the exact path vodload and
// servestat use on a scraped /metrics snapshot.
func TestParsePromRoundTrip(t *testing.T) {
	e := NewReqStat("route")
	for i := 1; i <= 100; i++ {
		e.Record(200, time.Duration(i)*time.Microsecond)
	}
	var b strings.Builder
	WriteReqProm(&b, []*ReqStat{e})
	samples, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	h := ExtractPromHist(samples, PromReqDurName, map[string]string{"endpoint": "route"})
	if h == nil {
		t.Fatal("histogram not found in parsed exposition")
	}
	if h.Count != 100 {
		t.Fatalf("count %v, want 100", h.Count)
	}
	// Samples 1..100 µs; the direct snapshot and the parsed reconstruction
	// must agree on every quantile (parsed is in seconds).
	snap := e.Latency()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := float64(snap.Quantile(q)) / 1e9
		if got := h.Quantile(q); math.Abs(got-want) > want*1e-9 {
			t.Errorf("q%.2f = %v, want %v", q, got, want)
		}
	}
	// The exposed sum is the midpoint-derived approximation; it must match
	// the direct snapshot exactly (same derivation) and the true sum
	// (5050 µs) within the documented factor-of-two bucket resolution.
	if want := float64(snap.Sum) / 1e9; math.Abs(h.Sum-want) > want*1e-9 {
		t.Errorf("sum %v, want %v", h.Sum, want)
	}
	if truth := 5050e-6; h.Sum < truth/2 || h.Sum > truth*2 {
		t.Errorf("approximate sum %v outside factor-2 band of %v", h.Sum, truth)
	}
}

func TestParsePromErrors(t *testing.T) {
	for _, in := range []string{
		"no_value_here",
		`bad{le="0.5" 3`,
		`bad{le=unquoted} 3`,
		"name notanumber",
	} {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm(%q): expected error", in)
		}
	}
	// Comments, blank lines and trailing timestamps parse cleanly.
	in := "# HELP x y\n\nx{a=\"b\\\"c\",d=\"e\"} 1.5 1700000000\n"
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Value != 1.5 || samples[0].Labels["a"] != `b"c` {
		t.Errorf("parsed %+v", samples)
	}
}

// TestPromHistSub covers the two-scrape delta path, including the case
// where the second scrape has buckets the first lacked.
func TestPromHistSub(t *testing.T) {
	e := NewReqStat("route")
	scrape := func() *PromHist {
		var b strings.Builder
		WriteReqProm(&b, []*ReqStat{e})
		samples, err := ParseProm(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		return ExtractPromHist(samples, PromReqDurName, map[string]string{"endpoint": "route"})
	}
	e.Record(200, 10*time.Microsecond)
	before := scrape()
	e.Record(200, 10*time.Microsecond)
	e.Record(200, 80*time.Millisecond) // new bucket, absent from `before`
	d := scrape().Sub(before)
	if d.Count != 2 {
		t.Fatalf("delta count %v, want 2", d.Count)
	}
	// p50 of the delta is the 10 µs bucket edge, p99 the 80 ms one.
	if q := d.Quantile(0.5); q > 20e-6 {
		t.Errorf("delta p50 %v too high", q)
	}
	if q := d.Quantile(0.99); q < 50e-3 {
		t.Errorf("delta p99 %v too low", q)
	}
	if d.Sub(nil).Count != d.Count {
		t.Errorf("Sub(nil) should copy")
	}
}

func TestPromHandler(t *testing.T) {
	m := NewMetrics()
	m.Counter("x").Add(7)
	h := PromHandler(func(w io.Writer) { m.WritePrometheus(w) })
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "x 7\n") {
		t.Errorf("body %q", rr.Body.String())
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/metrics", nil))
	if rr.Code != 405 {
		t.Errorf("POST status %d, want 405", rr.Code)
	}
}
