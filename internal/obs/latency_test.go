package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestAtomicBucketOf(t *testing.T) {
	for _, tc := range []struct {
		v int64
		b int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {math.MaxInt64, histBuckets - 1},
	} {
		if got := atomicBucketOf(tc.v); got != tc.b {
			t.Errorf("atomicBucketOf(%d) = %d, want %d", tc.v, got, tc.b)
		}
	}
	// The bucket invariant: v must lie within (2^(b-1), 2^b] for every v.
	var s HistSnap
	for _, v := range []int64{1, 2, 3, 7, 100, 1023, 1024, 1025, 1 << 40} {
		b := atomicBucketOf(v)
		if v > s.UpperBound(b) {
			t.Errorf("v=%d above bucket %d upper bound %d", v, b, s.UpperBound(b))
		}
		if b > 0 && v <= s.UpperBound(b-1) {
			t.Errorf("v=%d should fit bucket %d already", v, b-1)
		}
	}
}

func TestAtomicHistQuantiles(t *testing.T) {
	var h AtomicHist
	// 1000 samples 1..1000 ns: p50 upper bound is the bucket holding 500
	// (2^9 = 512), p99 the bucket holding 990 (2^10 = 1024).
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d, want 1000", s.Count)
	}
	if want := int64(1000 * 1001 / 2); s.Sum != want {
		t.Fatalf("sum %d, want %d", s.Sum, want)
	}
	if q := s.Quantile(0.50); q != 512 {
		t.Errorf("p50 %d, want 512", q)
	}
	if q := s.Quantile(0.99); q != 1024 {
		t.Errorf("p99 %d, want 1024", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 %d, want 1 (first bucket upper bound)", q)
	}
	h.Observe(-5) // dropped
	if got := h.Snapshot().Count; got != 1000 {
		t.Errorf("negative sample counted: %d", got)
	}

	sum := s.SummaryMs()
	if sum.Count != 1000 || sum.P50 != 512/1e6 || sum.Max != 1024/1e6 {
		t.Errorf("SummaryMs = %+v", sum)
	}
}

func TestHistSnapSub(t *testing.T) {
	var h AtomicHist
	h.Observe(10)
	h.Observe(1000)
	before := h.Snapshot()
	h.Observe(10)
	h.Observe(20)
	h.Observe(3000)
	d := h.Snapshot().Sub(before)
	if d.Count != 3 {
		t.Fatalf("interval count %d, want 3", d.Count)
	}
	if d.Sum != 3030 {
		t.Errorf("interval sum %d, want 3030", d.Sum)
	}
	// Subtracting the later snapshot from the earlier clamps at zero.
	z := before.Sub(h.Snapshot())
	if z.Count != 0 || z.Sum != 0 {
		t.Errorf("reverse Sub not clamped: %+v", z)
	}
}

// TestAtomicHistConcurrent hammers one histogram and one ReqStat from many
// goroutines; under -race this is the data-race gate for the lock-free
// design, and the final tallies must be exact (atomic adds lose nothing).
func TestAtomicHistConcurrent(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	var h AtomicHist
	e := NewReqStat("route")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				h.Observe(v)
				status := 200
				if i%10 == 0 {
					status = 404
				}
				e.Record(status, time.Duration(v))
			}
		}(w)
	}
	// Concurrent readers: snapshots must be well-formed while writes land.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := e.Latency()
			if s.Count < 0 || s.Sum < 0 {
				t.Error("negative snapshot")
				return
			}
			e.Requests()
		}
	}()
	wg.Wait()
	<-done

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Errorf("count %d, want %d", s.Count, writers*perWriter)
	}
	if got := e.Requests(); got != writers*perWriter {
		t.Errorf("requests %d, want %d", got, writers*perWriter)
	}
	want4xx := int64(writers * perWriter / 10)
	if got := e.Class(3); got != want4xx {
		t.Errorf("4xx class %d, want %d", got, want4xx)
	}
	if got := e.Class(1); got != int64(writers*perWriter)-want4xx {
		t.Errorf("2xx class %d, want %d", got, int64(writers*perWriter)-want4xx)
	}
}

// TestReqStatLatencySum pins the midpoint-derived sum: each bucket's
// contribution is count × midpoint, and the result stays within the
// documented factor-2 band of the true sum.
func TestReqStatLatencySum(t *testing.T) {
	e := NewReqStat("route")
	var truth int64
	for _, v := range []int64{1, 2, 3, 500, 900, 2000, 1 << 20} {
		e.Record(200, time.Duration(v))
		truth += v
	}
	s := e.Latency()
	// 1→1, 2→2, 3→3·2^0=3, 500→3·2^7=384, 900→3·2^8=768, 2000→3·2^9=1536,
	// 2^20→3·2^18.
	want := int64(1 + 2 + 3 + 384 + 768 + 1536 + 3<<18)
	if s.Sum != want {
		t.Errorf("derived sum %d, want %d", s.Sum, want)
	}
	if s.Sum < truth/2 || s.Sum > truth*2 {
		t.Errorf("derived sum %d outside factor-2 band of true %d", s.Sum, truth)
	}
	if m := midpointNS(63); m <= 0 {
		t.Errorf("top midpoint overflowed: %d", m)
	}
}

func TestStatusClass(t *testing.T) {
	for _, tc := range []struct{ status, class int }{
		{100, 0}, {200, 1}, {202, 1}, {301, 2}, {404, 3}, {405, 3}, {500, 4},
		{599, 4}, {0, 4}, {999, 4}, {-7, 4},
	} {
		if got := statusClass(tc.status); got != tc.class {
			t.Errorf("statusClass(%d) = %d, want %d", tc.status, got, tc.class)
		}
	}
}

// TestReqStatZeroAllocations pins the request-recording hot path at zero
// allocations — the serve handlers call Record on every request and the
// /route zero-alloc contract includes it.
func TestReqStatZeroAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	e := NewReqStat("route")
	var i int64
	avg := testing.AllocsPerRun(1000, func() {
		i++
		e.Record(200, time.Duration(i*137))
	})
	if avg != 0 {
		t.Errorf("ReqStat.Record allocates %.1f per call, want 0", avg)
	}
	var h AtomicHist
	avg = testing.AllocsPerRun(1000, func() {
		i++
		h.Observe(i)
	})
	if avg != 0 {
		t.Errorf("AtomicHist.Observe allocates %.1f per call, want 0", avg)
	}
}

func TestReqStatNil(t *testing.T) {
	var e *ReqStat
	e.Record(200, time.Millisecond) // must not panic
}
