package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestServeEventsRoundTrip records every serving-plane event kind and reads
// the trace back through ParseTrace, pinning the wire keys servestat
// depends on.
func TestServeEventsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.RecordServeResolve(ServeResolve{Phase: "start", Version: 2, Trigger: "demand"})
	r.RecordServeResolve(ServeResolve{
		Phase: "done", Version: 2, Trigger: "demand", Verdict: "swapped",
		WarmFrac: 0.75, Passes: 12, SolveMS: 34.5, AuditMS: 1.25, BuildMS: 0.5,
	})
	r.RecordServeResolve(ServeResolve{
		Phase: "done", Version: 3, Trigger: "demand", Verdict: "audit_rejected",
		Reason: "audit: coupling row violated", Passes: 9, SolveMS: 20,
	})
	r.RecordServeSwap(ServeSwap{Version: 2, RDelta: 17, BuildMS: 0.5})
	r.RecordServeDemand(ServeDemand{Batch: 40, Drift: 123.5})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	start := events[0]
	if start.K != "serve_resolve" || start.Phase != "start" || start.Version != 2 || start.Trigger != "demand" {
		t.Errorf("start event %+v", start)
	}
	if start.Verdict != "" {
		t.Errorf("start event carries a verdict: %+v", start)
	}
	done := events[1]
	if done.Phase != "done" || done.Verdict != "swapped" || done.WarmFrac != 0.75 ||
		done.Passes != 12 || done.SolveMS != 34.5 || done.AuditMS != 1.25 || done.BuildMS != 0.5 {
		t.Errorf("done event %+v", done)
	}
	rej := events[2]
	if rej.Verdict != "audit_rejected" || rej.Reason != "audit: coupling row violated" {
		t.Errorf("reject event %+v", rej)
	}
	swap := events[3]
	if swap.K != "serve_swap" || swap.Version != 2 || swap.RDelta != 17 || swap.BuildMS != 0.5 {
		t.Errorf("swap event %+v", swap)
	}
	dem := events[4]
	if dem.K != "serve_demand" || dem.Batch != 40 || dem.Drift != 123.5 {
		t.Errorf("demand event %+v", dem)
	}
	for i, e := range events {
		if e.TMS < 0 {
			t.Errorf("event %d negative tms %v", i, e.TMS)
		}
		if i > 0 && e.TMS < events[i-1].TMS {
			t.Errorf("event %d tms %v precedes event %d tms %v", i, e.TMS, i-1, events[i-1].TMS)
		}
	}

	// Metrics side effects.
	m := r.Metrics()
	if got := m.Counter("serve_resolves_total").Value(); got != 2 {
		t.Errorf("serve_resolves_total %d, want 2", got)
	}
	if got := m.Counter("serve_resolves_rejected_total").Value(); got != 1 {
		t.Errorf("serve_resolves_rejected_total %d, want 1", got)
	}
	if got := m.Counter("serve_swaps_total").Value(); got != 1 {
		t.Errorf("serve_swaps_total %d, want 1", got)
	}
	if got := m.Counter("serve_demand_entries_total").Value(); got != 40 {
		t.Errorf("serve_demand_entries_total %d, want 40", got)
	}
	if got := m.Gauge("serve_snapshot_version").Value(); got != 2 {
		t.Errorf("serve_snapshot_version %v, want 2", got)
	}
}

// TestServeEventsNilRecorder pins the disabled state: every serve-event
// method no-ops on a nil recorder.
func TestServeEventsNilRecorder(t *testing.T) {
	var r *Recorder
	r.RecordServeResolve(ServeResolve{Phase: "start"})
	r.RecordServeSwap(ServeSwap{Version: 1})
	r.RecordServeDemand(ServeDemand{Batch: 1})
}

// TestServeEventsMixedTrace checks a trace interleaving solver and serving
// events parses whole — the shared-sink property.
func TestServeEventsMixedTrace(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	r.RecordEPFDone(EPFDone{Stream: "serve", Passes: 3, Converged: true})
	r.RecordServeSwap(ServeSwap{Version: 1, RDelta: 4})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].K != "epf_done" || events[1].K != "serve_swap" {
		t.Fatalf("events %+v", events)
	}
}
