package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"sync"
	"testing"
)

// TestPublishIdempotent pins the double-publish contract: expvar.Publish
// panics on a duplicate name, Metrics.Publish must not — the first registry
// wins and later calls are no-ops.
func TestPublishIdempotent(t *testing.T) {
	m1 := NewMetrics()
	m1.Counter("wins").Set(7)
	m1.Publish("obs_test_ns")
	m2 := NewMetrics()
	m2.Counter("wins").Set(99)
	m2.Publish("obs_test_ns") // must not panic, must not replace m1

	got, ok := expvar.Get("obs_test_ns").(*expvar.Map)
	if !ok {
		t.Fatal("namespace not published as a map")
	}
	if v, ok := got.Get("wins").(*expvar.Int); !ok || v.Value() != 7 {
		t.Fatalf("published registry was replaced: wins = %v", got.Get("wins"))
	}
}

// TestInstrumentIdentity pins create-on-first-use: the same name always
// returns the same instrument, so increments from different call sites
// accumulate in one place.
func TestInstrumentIdentity(t *testing.T) {
	m := NewMetrics()
	if m.Counter("c") != m.Counter("c") {
		t.Error("Counter returned distinct instruments for one name")
	}
	if m.Gauge("g") != m.Gauge("g") {
		t.Error("Gauge returned distinct instruments for one name")
	}
	if m.Histogram("h") != m.Histogram("h") {
		t.Error("Histogram returned distinct instruments for one name")
	}
	// Nil registry: throwaway instruments, never nil, never shared state.
	var nilM *Metrics
	nilM.Counter("c").Add(1)
	nilM.Gauge("g").Set(1)
	nilM.Histogram("h").Observe(1)
	if nilM.String() != "{}" {
		t.Errorf("nil registry String = %q", nilM.String())
	}
}

// TestHistogram pins the log2-bucket semantics: quantiles are bucket upper
// edges (power of two at or above the sample), non-finite and negative
// samples are dropped, and the summary JSON is well-formed.
func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		h.Observe(v)
	}
	if h.Count() != 0 {
		t.Fatalf("invalid samples were counted: %d", h.Count())
	}
	// 100 samples at 3.0 → every quantile lands in bucket (2,4], upper edge 4.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	h.Observe(1000) // one outlier → p99 still 4, max exact
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("p50 = %v, want 4 (upper edge of (2,4])", got)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("p99 = %v, want 4", got)
	}
	if got := h.Quantile(1); got != 1024 {
		t.Errorf("p100 = %v, want 1024 (upper edge of (512,1024])", got)
	}
	if h.Count() != 101 || h.Sum() != 1300 {
		t.Errorf("count %d sum %v, want 101 / 1300", h.Count(), h.Sum())
	}
	var summary struct {
		Count int64   `json:"count"`
		Min   float64 `json:"min"`
		Max   float64 `json:"max"`
		P50   float64 `json:"p50"`
	}
	if err := json.Unmarshal([]byte(h.String()), &summary); err != nil {
		t.Fatalf("String() is not valid JSON: %v\n%s", err, h.String())
	}
	if summary.Count != 101 || summary.Min != 3 || summary.Max != 1000 || summary.P50 != 4 {
		t.Errorf("summary = %+v", summary)
	}
}

// TestHistogramConcurrent hammers one histogram from several goroutines; the
// race detector vets the locking and the final count must be exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i + 1))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 1 || h.Max() != workers*per {
		t.Fatalf("min/max = %v/%v, want 1/%d", h.Min(), h.Max(), workers*per)
	}
}
