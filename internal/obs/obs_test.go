package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func samplePass(stream string, pass int) EPFPass {
	return EPFPass{
		Stream: stream, Pass: pass,
		Phi: 224.25, Objective: 5.5, LowerBound: 4.25, UpperBound: 6,
		Gap: 0.294, UBGap: 0.41, MaxViol: 2.125, MaxLinkUtil: 0.75,
		MeanLinkUtil: 0.0625, Delta: 1.5, Blocks: int64(60 * pass),
		WarmHits: 3, ElapsedMS: 12.5,
	}
}

// TestNilRecorderNoOps pins the disabled path's contract: every method on a
// nil recorder is callable, returns zero values, and allocates nothing.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Metrics() != nil {
		t.Fatal("nil recorder returned a registry")
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if b, err := r.ProgressJSON(); err != nil || string(b) != "{}\n" {
		t.Fatalf("ProgressJSON = %q, %v", b, err)
	}
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	pass := samplePass("epf", 1)
	slice := SimSlice{Stream: "lru", Bin: 2, Requests: 10}
	done := EPFDone{Stream: "epf", Passes: 10}
	allocs := testing.AllocsPerRun(100, func() {
		r.RecordEPFPass(pass)
		r.RecordEPFDone(done)
		r.RecordSimSlice(slice)
		r.RecordSpan("epf", "descent", time.Millisecond)
		r.StartSpan("epf", "verify").End()
		r.PublishKV("k", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f per run, want 0", allocs)
	}
}

// TestEnabledSteadyStateAllocations pins the enabled emit path: after the
// first warm-up event per stream, recording allocates nothing (reused
// encode buffer, no per-event garbage), so tracing cannot erode the
// solver's allocation discipline.
func TestEnabledSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	r := New(struct{ io.Writer }{io.Discard})
	pass := samplePass("epf", 1)
	slice := SimSlice{Stream: "lru", Bin: 1, Requests: 5, HitRate: 0.5}
	// Warm up: first events create stream map entries and metric instruments.
	for i := 0; i < 4; i++ {
		r.RecordEPFPass(pass)
		r.RecordSimSlice(slice)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.RecordEPFPass(pass)
		r.RecordSimSlice(slice)
	})
	if allocs != 0 {
		t.Fatalf("steady-state record allocated %.1f per run, want 0", allocs)
	}
}

// TestTraceRoundTrip pins the hand-rolled encoder against the stdlib
// decoder: every field of every event kind survives the trip exactly.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	wantPass := samplePass("epf.day07", 3)
	// Values that stress the encoder: shortest-round-trip floats, negatives,
	// the non-finite fallback and string escaping.
	wantPass.Phi = 1.0 / 3.0
	wantPass.Objective = 5.684341886080802e-14
	wantPass.UBGap = -1
	r.RecordEPFPass(wantPass)
	wantDone := EPFDone{Stream: "epf.day07", Passes: 56, Objective: 322.3,
		LowerBound: 299.3934960043012, Gap: 0.0765, Converged: true, Rounded: true}
	r.RecordEPFDone(wantDone)
	wantSlice := SimSlice{Stream: `lru "quoted"`, Bin: 9, StartSec: 2700,
		PeakMbps: 812.5, MaxUtil: 0.8125, AggMbps: 1625, GBHop: 60.9375,
		Requests: 41, PinnedHits: 12, CacheHits: 7, RemoteServed: 22,
		Evictions: 3, HitRate: 19.0 / 41.0}
	r.RecordSimSlice(wantSlice)
	r.RecordSpan("epf.day07", "rounding", 1500*time.Microsecond)
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	events, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("decoded %d events, want 4", len(events))
	}
	gotPass := events[0]
	if gotPass.K != "epf_pass" {
		t.Fatalf("event 0 kind %q", gotPass.K)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"phi", gotPass.Phi, wantPass.Phi},
		{"obj", gotPass.Objective, wantPass.Objective},
		{"lb", gotPass.LowerBound, wantPass.LowerBound},
		{"ub", gotPass.UpperBound, wantPass.UpperBound},
		{"gap", gotPass.Gap, wantPass.Gap},
		{"ubgap", gotPass.UBGap, wantPass.UBGap},
		{"viol", gotPass.MaxViol, wantPass.MaxViol},
		{"lmax", gotPass.MaxLinkUtil, wantPass.MaxLinkUtil},
		{"lmean", gotPass.MeanLinkUtil, wantPass.MeanLinkUtil},
		{"delta", gotPass.Delta, wantPass.Delta},
		{"ms", gotPass.MS, wantPass.ElapsedMS},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("pass.%s = %v, want %v (must be bit-exact)", c.name, c.got, c.want)
		}
	}
	if gotPass.Stream != wantPass.Stream || gotPass.Pass != wantPass.Pass ||
		gotPass.Blocks != wantPass.Blocks || gotPass.WarmHits != wantPass.WarmHits {
		t.Errorf("pass identity fields: %+v", gotPass)
	}

	gotDone := events[1]
	if gotDone.K != "epf_done" || gotDone.Passes != wantDone.Passes ||
		gotDone.Objective != wantDone.Objective || gotDone.LowerBound != wantDone.LowerBound ||
		gotDone.Gap != wantDone.Gap || !gotDone.Converged || !gotDone.Rounded {
		t.Errorf("done = %+v", gotDone)
	}

	gotSlice := events[2]
	if gotSlice.K != "sim_slice" || gotSlice.Stream != wantSlice.Stream ||
		gotSlice.Bin != wantSlice.Bin || gotSlice.T != wantSlice.StartSec ||
		gotSlice.PeakMbps != wantSlice.PeakMbps || gotSlice.MaxUtil != wantSlice.MaxUtil ||
		gotSlice.GBHop != wantSlice.GBHop || gotSlice.Requests != wantSlice.Requests ||
		gotSlice.Evictions != wantSlice.Evictions || gotSlice.HitRate != wantSlice.HitRate {
		t.Errorf("slice = %+v", gotSlice)
	}

	gotSpan := events[3]
	if gotSpan.K != "span" || gotSpan.Phase != "rounding" || gotSpan.MS != 1.5 {
		t.Errorf("span = %+v", gotSpan)
	}
}

// TestNonFiniteEncoding pins the JSON-compatibility convention: non-finite
// floats encode as 0 rather than producing unparseable output.
func TestNonFiniteEncoding(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	e := samplePass("epf", 1)
	e.UpperBound = math.Inf(1)
	e.Phi = math.NaN()
	r.RecordEPFPass(e)
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	events, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace on non-finite input: %v", err)
	}
	if events[0].UpperBound != 0 || events[0].Phi != 0 {
		t.Errorf("non-finite fields decoded as ub=%v phi=%v, want 0", events[0].UpperBound, events[0].Phi)
	}
}

// TestConcurrentStreamsPreserveOrder emits two streams from two goroutines
// through one sink (the CompareSchemes shape) and checks that each stream's
// pass sequence comes out in emit order — the per-stream ordering guarantee
// the sink documents. Run under -race this also exercises the locking.
func TestConcurrentStreamsPreserveOrder(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf)
	const passes = 200
	var wg sync.WaitGroup
	for _, stream := range []string{"a", "b"} {
		stream := stream
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 1; p <= passes; p++ {
				e := samplePass(stream, p)
				e.Objective = float64(p)
				r.RecordEPFPass(e)
			}
		}()
	}
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	events, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	got := map[string][]int{}
	for _, e := range events {
		got[e.Stream] = append(got[e.Stream], e.Pass)
	}
	for _, stream := range []string{"a", "b"} {
		seq := got[stream]
		if len(seq) != passes {
			t.Fatalf("stream %s: %d events, want %d", stream, len(seq), passes)
		}
		for i, p := range seq {
			if p != i+1 {
				t.Fatalf("stream %s: pass %d at position %d — per-stream order not preserved", stream, p, i)
			}
		}
	}
}

// TestRecorderTable drives the snapshot/progress surface over a table of
// recorders (trace-backed, metrics-only, nil) to pin the shared behavior.
func TestRecorderTable(t *testing.T) {
	cases := []struct {
		name    string
		rec     *Recorder
		tracing bool
	}{
		{"with sink", New(&bytes.Buffer{}), true},
		{"metrics only", New(nil), true},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.rec.Enabled() != tc.tracing {
				t.Fatalf("Enabled = %v, want %v", tc.rec.Enabled(), tc.tracing)
			}
			tc.rec.RecordEPFPass(samplePass("epf", 1))
			tc.rec.PublishKV("answer", 42)
			b, err := tc.rec.ProgressJSON()
			if err != nil {
				t.Fatalf("ProgressJSON: %v", err)
			}
			if tc.tracing {
				if !strings.Contains(string(b), `"pass": 1`) || !strings.Contains(string(b), `"answer": 42`) {
					t.Errorf("progress snapshot missing recorded state:\n%s", b)
				}
				m := tc.rec.Metrics()
				if got := m.Counter("epf_passes_total").Value(); got != 1 {
					t.Errorf("epf_passes_total = %d, want 1", got)
				}
				if got := m.Gauge("epf_objective").Value(); got != 5.5 {
					t.Errorf("epf_objective gauge = %v, want 5.5", got)
				}
			} else if string(b) != "{}\n" {
				t.Errorf("nil recorder progress = %q", b)
			}
			if err := tc.rec.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// errWriter fails after n bytes, for sink-error propagation.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("sink full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestSinkErrorSurfacesOnClose(t *testing.T) {
	r := New(&errWriter{n: 10})
	for i := 1; i <= 1000; i++ {
		r.RecordEPFPass(samplePass("epf", i)) // overflow the 64 KB buffer
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close swallowed the sink write error")
	}
}
