package obs

import "time"

// Serving-plane lifecycle events. The serving daemon (internal/serve,
// cmd/vodserved) emits three event kinds through the same JSONL sink the
// solvers use, so one trace file carries a complete picture of a serving
// process: every background re-solve attempt with its outcome, every
// snapshot swap, every accepted demand batch. Unlike solver events these
// are wall-clock phenomena, so each carries TMS — milliseconds since the
// recorder started — which is what tools/servestat turns into staleness
// percentiles. Solver-side consumers (tracesum) ignore unknown kinds, so
// mixed traces stay valid.

// ServeResolve is one background re-solve attempt. Phase "start" opens the
// attempt (Version is the snapshot version the resolve would publish,
// Trigger names what woke the resolver); phase "done" closes it with the
// verdict and its timing breakdown.
type ServeResolve struct {
	Phase    string  `json:"phase"`    // "start" | "done"
	Version  int64   `json:"version"`  // version this attempt would publish
	Trigger  string  `json:"trigger"`  // "demand", "initial", ...
	Verdict  string  `json:"verdict"`  // done: "swapped", "audit_rejected", "unconverged", "cancelled", "failed"
	Reason   string  `json:"reason"`   // done, non-swapped: human-readable reject detail
	WarmFrac float64 `json:"warmfrac"` // done: fraction of videos warm-started from the previous solve
	Passes   int     `json:"passes"`   // done: descent passes the solve took
	SolveMS  float64 `json:"solvems"`  // done: integer-solve wall time
	AuditMS  float64 `json:"auditms"`  // done: certification wall time
	BuildMS  float64 `json:"buildms"`  // done, swapped: snapshot build+publish wall time
	Dirty    int     `json:"dirty"`    // done: demand-dirty videos this attempt resolved
	Rebuilt  int64   `json:"rebuilt"`  // done, swapped: route rows recomputed (vs copied) by the snapshot build
	TMS      float64 `json:"tms"`      // ms since recorder start (stamped by the recorder)
}

// ServeSwap is one published snapshot: the moment the serving plane's
// routing answer changed.
type ServeSwap struct {
	Version int64   `json:"version"` // the new snapshot's version
	RDelta  int64   `json:"rdelta"`  // route-table entries that changed vs. the previous snapshot
	BuildMS float64 `json:"buildms"` // snapshot build+publish wall time
	// Rebuilt/Rows report the snapshot build's delta economy: of the Rows
	// route rows (one per video), Rebuilt were recomputed and the rest
	// copied from the previous snapshot. Rebuilt == Rows on a full rebuild;
	// both zero in traces from pre-delta releases.
	Rebuilt int64   `json:"rebuilt"`
	Rows    int64   `json:"rows"`
	TMS     float64 `json:"tms"`
}

// ServeDemand is one accepted demand-update batch.
type ServeDemand struct {
	Batch int     `json:"batch"` // entries in the batch
	Drift float64 `json:"drift"` // post-apply demand drift vs. last solved state (L1, Mbps)
	TMS   float64 `json:"tms"`
}

// sinceMS stamps an event with the recorder-relative wall clock.
func (r *Recorder) sinceMS() float64 {
	return float64(time.Since(r.start).Nanoseconds()) / 1e6
}

// RecordServeResolve records one resolve phase event. The recorder stamps
// TMS itself; callers leave it zero. Start events carry only the identity
// fields, done events the full outcome, so traces stay compact.
func (r *Recorder) RecordServeResolve(e ServeResolve) {
	if r == nil {
		return
	}
	e.TMS = r.sinceMS()
	r.mu.Lock()
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"serve_resolve","phase":`...)
		b = appendJSONString(b, e.Phase)
		b = appendInt(b, ",\"version\":", e.Version)
		b = append(b, ",\"trigger\":"...)
		b = appendJSONString(b, e.Trigger)
		if e.Phase == "done" {
			b = append(b, ",\"verdict\":"...)
			b = appendJSONString(b, e.Verdict)
			if e.Reason != "" {
				b = append(b, ",\"reason\":"...)
				b = appendJSONString(b, e.Reason)
			}
			b = appendFloat(b, ",\"warmfrac\":", e.WarmFrac)
			b = appendInt(b, ",\"passes\":", int64(e.Passes))
			b = appendFloat(b, ",\"solvems\":", e.SolveMS)
			b = appendFloat(b, ",\"auditms\":", e.AuditMS)
			b = appendFloat(b, ",\"buildms\":", e.BuildMS)
			b = appendInt(b, ",\"dirty\":", int64(e.Dirty))
			b = appendInt(b, ",\"rebuilt\":", e.Rebuilt)
		}
		b = appendFloat(b, ",\"tms\":", e.TMS)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()
	if e.Phase == "done" {
		m := r.metrics
		m.Counter("serve_resolves_total").Add(1)
		if e.Verdict != "swapped" {
			m.Counter("serve_resolves_rejected_total").Add(1)
		}
		m.Gauge("serve_warm_frac").Set(e.WarmFrac)
		m.Histogram("serve_resolve_solve_ms").Observe(e.SolveMS)
		m.Histogram("serve_resolve_audit_ms").Observe(e.AuditMS)
		r.PublishKV("serve_resolve", e)
	}
}

// RecordServeSwap records one snapshot publication.
func (r *Recorder) RecordServeSwap(e ServeSwap) {
	if r == nil {
		return
	}
	e.TMS = r.sinceMS()
	r.mu.Lock()
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"serve_swap"`...)
		b = appendInt(b, ",\"version\":", e.Version)
		b = appendInt(b, ",\"rdelta\":", e.RDelta)
		b = appendFloat(b, ",\"buildms\":", e.BuildMS)
		b = appendInt(b, ",\"rebuilt\":", e.Rebuilt)
		b = appendInt(b, ",\"rows\":", e.Rows)
		b = appendFloat(b, ",\"tms\":", e.TMS)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()
	m := r.metrics
	m.Counter("serve_swaps_total").Add(1)
	m.Gauge("serve_snapshot_version").Set(float64(e.Version))
	m.Gauge("serve_route_delta").Set(float64(e.RDelta))
	m.Gauge("serve_rows_rebuilt").Set(float64(e.Rebuilt))
	m.Histogram("serve_swap_build_ms").Observe(e.BuildMS)
	r.PublishKV("serve_swap", e)
}

// RecordServeDemand records one accepted demand batch.
func (r *Recorder) RecordServeDemand(e ServeDemand) {
	if r == nil {
		return
	}
	e.TMS = r.sinceMS()
	r.mu.Lock()
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"serve_demand"`...)
		b = appendInt(b, ",\"batch\":", int64(e.Batch))
		b = appendFloat(b, ",\"drift\":", e.Drift)
		b = appendFloat(b, ",\"tms\":", e.TMS)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()
	m := r.metrics
	m.Counter("serve_demand_batches_total").Add(1)
	m.Counter("serve_demand_entries_total").Add(int64(e.Batch))
	// No drift gauge here: the serving daemon samples its own
	// serve.demand_drift gauge into the shared registry, and that name
	// sanitizes to the same Prometheus family.
}
