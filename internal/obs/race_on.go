//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in. Allocation
// regression tests skip under -race: the detector's shadow-memory
// bookkeeping allocates and would make AllocsPerRun counts meaningless.
const raceEnabled = true
