package obs

import (
	"flag"
	"fmt"
	"os"
)

// Flags holds the telemetry CLI surface shared by vodplace, vodexp and
// vodsim. All three default off; any one of them enables the recorder.
type Flags struct {
	TraceOut  string // JSONL event trace destination ("-" = stdout)
	Metrics   bool   // publish the registry via expvar + dump it on exit
	DebugAddr string // live HTTP endpoint (/debug/vars, /debug/pprof, /progress)
}

// Register installs the telemetry flags on fs and returns the destination
// struct to pass to Start after fs has been parsed.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a JSONL telemetry trace to this file (\"-\" for stdout)")
	fs.BoolVar(&f.Metrics, "metrics", false, "publish solver/simulator metrics via expvar and print them on exit")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /debug/vars, /debug/pprof and /progress on this address (e.g. localhost:6060)")
	return f
}

// Start builds the recorder the parsed flags ask for. When every flag is
// off it returns (nil, no-op stop, nil): the nil recorder threads through
// the solver and simulator as the disabled no-op. Otherwise the returned
// stop shuts the debug server down (if any), flushes and closes the trace
// sink, and — under -metrics — dumps the registry JSON to stderr. Call stop
// on every exit path, including signal-triggered ones, so an interrupted
// run still keeps its buffered trace.
func Start(f *Flags) (*Recorder, func() error, error) {
	if f.TraceOut == "" && !f.Metrics && f.DebugAddr == "" {
		return nil, func() error { return nil }, nil
	}

	var sink *os.File
	switch f.TraceOut {
	case "":
	case "-":
		sink = os.Stdout
	default:
		out, err := os.Create(f.TraceOut)
		if err != nil {
			return nil, nil, fmt.Errorf("trace-out: %w", err)
		}
		sink = out
	}
	var rec *Recorder
	if sink != nil {
		rec = New(sink)
		if sink == os.Stdout {
			rec.c = nil // flush stdout on stop, but never close it
		}
	} else {
		rec = New(nil)
	}

	// The debug endpoint serves /debug/vars from the process-global expvar
	// map, so the registry must be published for it too — not just under
	// -metrics.
	if f.Metrics || f.DebugAddr != "" {
		rec.Metrics().Publish("vodplace")
	}
	var shutdown func() error
	if f.DebugAddr != "" {
		var err error
		shutdown, err = ServeDebug(f.DebugAddr, rec)
		if err != nil {
			rec.Close() //nolint:errcheck // already failing
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "debug endpoint listening on http://%s (/debug/vars /debug/pprof /progress)\n", f.DebugAddr)
	}

	stop := func() error {
		var first error
		if shutdown != nil {
			first = shutdown()
		}
		if err := rec.Close(); err != nil && first == nil {
			first = err
		}
		if f.Metrics {
			fmt.Fprintf(os.Stderr, "metrics: %s\n", rec.Metrics().String())
		}
		return first
	}
	return rec, stop, nil
}
