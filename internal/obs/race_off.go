//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in. See
// race_on.go.
const raceEnabled = false
