package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file is the repo's dependency-free Prometheus integration: a
// text-format (version 0.0.4) writer over the Metrics registry and the
// ReqStat request instruments, and the minimal parser the consumers
// (vodload, servestat) use to read a scraped snapshot back. The format is
// hand-rolled for the same reason the JSONL tracer is: the module is
// stdlib-only by design, the subset we emit is tiny, and a deterministic
// byte-exact rendering (sorted families, fixed label order, shortest
// round-trip floats) is what lets CI pin the exposition with a golden.

// promContentType is the exposition content type scrapers expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes an instrument name into the Prometheus name charset
// [a-zA-Z0-9_:]: every other byte (the registry's "." separators) becomes
// "_", and a leading digit gains a "_" prefix.
func PromName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in the shortest round-trip form ('g', like the
// rest of the telemetry layer) so expositions are byte-deterministic.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every instrument of the registry in text format:
// counters (expvar.Int), gauges (expvar.Float) and histograms (cumulative
// _bucket/_sum/_count series with power-of-two le edges). Families are
// emitted in sorted sanitized-name order, so a fixed registry renders
// byte-identically — the property the exposition golden test pins.
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	type family struct {
		name string
		kind string // "counter", "gauge", "histogram"
		i    *expvar.Int
		f    *expvar.Float
		h    *Histogram
	}
	var fams []family
	m.vars.Do(func(kv expvar.KeyValue) {
		fam := family{name: PromName(kv.Key)}
		switch v := kv.Value.(type) {
		case *expvar.Int:
			fam.kind, fam.i = "counter", v
		case *expvar.Float:
			fam.kind, fam.f = "gauge", v
		case *Histogram:
			fam.kind, fam.h = "histogram", v
		default:
			return
		}
		fams = append(fams, fam)
	})
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	bw := bufio.NewWriter(w)
	defer bw.Flush() //nolint:errcheck // exposition best-effort, like expvar
	for _, fam := range fams {
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		switch fam.kind {
		case "counter":
			fmt.Fprintf(bw, "%s %d\n", fam.name, fam.i.Value())
		case "gauge":
			fmt.Fprintf(bw, "%s %s\n", fam.name, promFloat(fam.f.Value()))
		case "histogram":
			writeHistProm(bw, fam.name, "", fam.h.promSnapshot())
		}
	}
}

// promHistSnap is the unit-agnostic cumulative view both histogram kinds
// render through: ascending upper edges with per-bucket own counts.
type promHistSnap struct {
	edges  []float64 // upper bucket edges, ascending, no +Inf
	counts []int64   // own (non-cumulative) count per edge
	count  int64
	sum    float64
}

// promSnapshot extracts the mutex histogram's nonzero buckets under one
// lock hold. Edges are the documented Histogram upper bounds 2^(b-32).
func (h *Histogram) promSnapshot() promHistSnap {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := promHistSnap{count: h.count, sum: h.sum}
	for b := 0; b < histBuckets; b++ {
		if h.buckets[b] == 0 {
			continue
		}
		s.edges = append(s.edges, math.Ldexp(1, b-32))
		s.counts = append(s.counts, h.buckets[b])
	}
	return s
}

// writeHistProm emits one histogram family body: cumulative _bucket series
// over the nonzero edges plus the mandatory le="+Inf", then _sum and
// _count. labels, when non-empty, is the rendered shared label set without
// braces (e.g. `endpoint="route"`).
func writeHistProm(w io.Writer, name, labels string, s promHistSnap) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, edge := range s.edges {
		cum += s.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, promFloat(edge), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(s.sum))
		fmt.Fprintf(w, "%s_count %d\n", name, s.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, promFloat(s.sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.count)
	}
}

// Request-instrument family names. The duration histogram observes
// nanoseconds internally and exposes seconds, the Prometheus base-unit
// convention.
const (
	PromReqTotalName = "vod_http_requests_total"
	PromReqDurName   = "vod_http_request_duration_seconds"
)

// WriteReqProm renders the request instruments: one counter series per
// endpoint × status class (all five classes, a fixed shape) and one
// latency histogram per endpoint. Endpoints render in the order given, so
// callers pass a fixed slice and the output is deterministic for fixed
// counts.
func WriteReqProm(w io.Writer, stats []*ReqStat) {
	bw := bufio.NewWriter(w)
	defer bw.Flush() //nolint:errcheck // exposition best-effort
	fmt.Fprintf(bw, "# TYPE %s counter\n", PromReqTotalName)
	for _, e := range stats {
		if e == nil {
			continue
		}
		for c := range statusClassNames {
			fmt.Fprintf(bw, "%s{endpoint=%q,code=%q} %d\n",
				PromReqTotalName, e.Name, statusClassNames[c], e.Class(c))
		}
	}
	fmt.Fprintf(bw, "# TYPE %s histogram\n", PromReqDurName)
	for _, e := range stats {
		if e == nil {
			continue
		}
		lat := e.Latency()
		var s promHistSnap
		s.count = lat.Count
		s.sum = float64(lat.Sum) / 1e9
		for b := range lat.Buckets {
			if lat.Buckets[b] == 0 {
				continue
			}
			s.edges = append(s.edges, float64(lat.UpperBound(b))/1e9)
			s.counts = append(s.counts, lat.Buckets[b])
		}
		writeHistProm(bw, PromReqDurName, fmt.Sprintf("endpoint=%q", e.Name), s)
	}
}

// PromHandler wraps an exposition body writer as the GET /metrics handler.
func PromHandler(body func(io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		body(w)
	})
}

// PromSample is one parsed exposition line: a metric name, its label set
// (nil when bare) and the value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseProm decodes the text exposition subset this package emits (and the
// common subset real exporters emit): comment lines are skipped, every
// other non-empty line is `name[{labels}] value`. Timestamps and exemplars
// are not supported; a malformed line is an error naming its number.
func ParseProm(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return out, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading metrics: %w", err)
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	val := strings.TrimSpace(rest)
	// A trailing timestamp (rare, but legal) would appear as a second
	// field; take the first.
	if i := strings.IndexAny(val, " \t"); i >= 0 {
		val = val[:i]
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", val, err)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels decodes `k="v",k2="v2"` with the \\, \" and \n escapes
// the format defines.
func parsePromLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	rest := body
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", body)
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				rest = rest[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels[key] = val.String()
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	return labels, nil
}

// PromHist is a cumulative histogram reconstructed from parsed samples:
// ascending le edges (always ending in +Inf) with cumulative counts, plus
// the _sum/_count series.
type PromHist struct {
	Le    []float64 // ascending, last is +Inf
	Cum   []float64 // cumulative count at each Le
	Count float64
	Sum   float64
}

// labelsMatchSansLe reports whether got equals want after dropping got's
// "le" key: the bucket-series selector.
func labelsMatchSansLe(got, want map[string]string) bool {
	n := 0
	for k, v := range got {
		if k == "le" {
			continue
		}
		if want[k] != v {
			return false
		}
		n++
	}
	return n == len(want)
}

// ExtractPromHist assembles the named histogram family with the given
// label selector from parsed samples. Returns nil when the family is
// absent (no buckets).
func ExtractPromHist(samples []PromSample, name string, labels map[string]string) *PromHist {
	if labels == nil {
		labels = map[string]string{}
	}
	h := &PromHist{}
	for _, s := range samples {
		switch s.Name {
		case name + "_bucket":
			if !labelsMatchSansLe(s.Labels, labels) {
				continue
			}
			leStr, ok := s.Labels["le"]
			if !ok {
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			h.Le = append(h.Le, le)
			h.Cum = append(h.Cum, s.Value)
		case name + "_sum":
			if labelsMatchSansLe(s.Labels, labels) {
				h.Sum = s.Value
			}
		case name + "_count":
			if labelsMatchSansLe(s.Labels, labels) {
				h.Count = s.Value
			}
		}
	}
	if len(h.Le) == 0 {
		return nil
	}
	sort.Sort(promHistSorter{h})
	if !math.IsInf(h.Le[len(h.Le)-1], 1) {
		h.Le = append(h.Le, math.Inf(1))
		h.Cum = append(h.Cum, h.Count)
	}
	return h
}

type promHistSorter struct{ h *PromHist }

func (s promHistSorter) Len() int           { return len(s.h.Le) }
func (s promHistSorter) Less(a, b int) bool { return s.h.Le[a] < s.h.Le[b] }
func (s promHistSorter) Swap(a, b int) {
	s.h.Le[a], s.h.Le[b] = s.h.Le[b], s.h.Le[a]
	s.h.Cum[a], s.h.Cum[b] = s.h.Cum[b], s.h.Cum[a]
}

// cumAt returns the cumulative count at upper edge le: the count of the
// largest bucket with Le ≤ le (0 below the first).
func (h *PromHist) cumAt(le float64) float64 {
	i := sort.SearchFloat64s(h.Le, le)
	// SearchFloat64s returns the first index with Le >= le; an exact hit is
	// the bucket itself, otherwise step back.
	if i < len(h.Le) && h.Le[i] == le {
		return h.Cum[i]
	}
	if i == 0 {
		return 0
	}
	return h.Cum[i-1]
}

// Sub returns the interval histogram h − o (the samples recorded between
// scrape o and scrape h). Bucket sets may differ between scrapes — the
// writer omits empty buckets — so the delta is taken over the union of
// edges with cumulative-count interpolation. Negative deltas (counter
// reset) clamp to zero.
func (h *PromHist) Sub(o *PromHist) *PromHist {
	if o == nil {
		cp := &PromHist{Count: h.Count, Sum: h.Sum}
		cp.Le = append(cp.Le, h.Le...)
		cp.Cum = append(cp.Cum, h.Cum...)
		return cp
	}
	edges := append(append([]float64{}, h.Le...), o.Le...)
	sort.Float64s(edges)
	d := &PromHist{}
	for i, le := range edges {
		if i > 0 && le == edges[i-1] {
			continue
		}
		c := h.cumAt(le) - o.cumAt(le)
		if c < 0 {
			c = 0
		}
		d.Le = append(d.Le, le)
		d.Cum = append(d.Cum, c)
	}
	if d.Count = h.Count - o.Count; d.Count < 0 {
		d.Count = 0
	}
	if d.Sum = h.Sum - o.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	return d
}

// Quantile returns the upper edge of the bucket holding the q-th sample
// (the standard conservative histogram quantile), 0 when empty. The +Inf
// bucket answers with the largest finite edge.
func (h *PromHist) Quantile(q float64) float64 {
	total := h.Count
	if n := len(h.Cum); total == 0 && n > 0 {
		total = h.Cum[n-1]
	}
	if total <= 0 {
		return 0
	}
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	lastFinite := 0.0
	for i, le := range h.Le {
		if !math.IsInf(le, 1) {
			lastFinite = le
		}
		if h.Cum[i] >= rank {
			if math.IsInf(le, 1) {
				return lastFinite
			}
			return le
		}
	}
	return lastFinite
}
