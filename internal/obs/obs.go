// Package obs is the solver and simulator telemetry layer: a typed event
// tracer writing JSONL through a buffered sink, a metrics registry
// (counters, gauges, histograms) publishable via expvar, phase span timing,
// and a live progress snapshot served by the opt-in debug HTTP endpoint
// (ServeDebug, wired to the CLIs through the -trace-out / -metrics /
// -debug-addr flags in Register/Start).
//
// The layer is zero-dependency (stdlib only), allocation-conscious and
// nil-safe: every method on a nil *Recorder is a no-op, so instrumented
// code threads a possibly-nil recorder everywhere and pays one pointer test
// when telemetry is off — the solver's zero-allocation descent-pass
// contract (internal/epf alloc_test.go) is unaffected. When enabled, the
// steady-state emit path is also allocation-free: events are encoded into a
// reusable buffer under a single short mutex hold and flushed through a
// bufio.Writer, so a trace never serializes the hot path on the kernel.
//
// Events carry only deterministic solver state in their numeric fields
// (wall-clock milliseconds are the one exception, and every consumer that
// diffs traces ignores them), so a fixed-seed trace is bit-identical across
// worker counts — the same invariance the solver itself guarantees.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// EPFPass is one gradient-descent pass of the EPF solver: the convergence
// trajectory the paper judges the method by (potential Φ, bounds, duality
// gap, link utilization). Blocks and WarmHits are cumulative counters so a
// mid-run snapshot is meaningful on its own. All fields except ElapsedMS
// are bit-identical across worker counts for a fixed seed.
type EPFPass struct {
	Stream       string  `json:"stream"`
	Pass         int     `json:"pass"`
	Phi          float64 `json:"phi"`   // potential Σ_r exp(α(r_r−r_0)) + exp(α·r_0) at live α
	Objective    float64 `json:"obj"`   // current objective c·z
	LowerBound   float64 `json:"lb"`    // best Lagrangian bound so far
	UpperBound   float64 `json:"ub"`    // best ε-feasible objective (0 until one exists)
	Gap          float64 `json:"gap"`   // (obj − lb)/lb
	UBGap        float64 `json:"ubgap"` // duality gap (ub − lb)/lb; −1 until an incumbent exists
	MaxViol      float64 `json:"viol"`  // δ_c(z): max relative coupling-row violation
	MaxLinkUtil  float64 `json:"lmax"`  // max link-row activity/capacity
	MeanLinkUtil float64 `json:"lmean"` // mean link-row activity/capacity
	Delta        float64 `json:"delta"` // scale δ driving the penalty exponent
	Blocks       int64   `json:"blocks"`
	WarmHits     int64   `json:"warm"`
	ElapsedMS    float64 `json:"ms"` // wall time since descent start (non-deterministic)
}

// EPFShard describes one catalog shard of a sharded solve at solve end:
// its video range size, concurrency nonzeros, and the cumulative number of
// descent block solves scheduled from it. Emitted only when a solve runs
// with more than one shard, so unsharded traces carry no shard events.
type EPFShard struct {
	Stream string `json:"stream"`
	Shard  int    `json:"shard"`
	Videos int    `json:"videos"`
	NNZ    int64  `json:"nnz"`
	Blocks int64  `json:"blocks"`
}

// EPFDone summarizes a finished (or cancelled) solve.
type EPFDone struct {
	Stream     string  `json:"stream"`
	Passes     int     `json:"passes"`
	Objective  float64 `json:"obj"`
	LowerBound float64 `json:"lb"`
	Gap        float64 `json:"gap"`
	Converged  bool    `json:"converged"`
	Rounded    bool    `json:"rounded"`
}

// SimSlice is one completed metric bin of a simulator run. Counter fields
// are per-bin deltas; PeakMbps/AggMbps/GBHop are the bin's own series
// values, and MaxUtil is the bin's peak per-link offered/capacity ratio
// (0 when the run has no capacity vector).
type SimSlice struct {
	Stream       string  `json:"stream"` // scheme label
	Bin          int     `json:"bin"`
	StartSec     int64   `json:"t"`
	PeakMbps     float64 `json:"peak"`
	MaxUtil      float64 `json:"util"`
	AggMbps      float64 `json:"agg"`
	GBHop        float64 `json:"gbhop"`
	Requests     int     `json:"req"`
	PinnedHits   int     `json:"pin"`
	CacheHits    int     `json:"cache"`
	RemoteServed int     `json:"remote"`
	Evictions    int     `json:"evict"`
	HitRate      float64 `json:"hit"` // per-bin local service fraction
}

// Span is one completed phase timing (init, descent, rounding, verify, …).
type Span struct {
	Stream string  `json:"stream"`
	Phase  string  `json:"phase"`
	MS     float64 `json:"ms"`
}

// Event is the decoded union of every trace line; K discriminates
// ("epf_pass", "epf_shard", "epf_done", "sim_slice", "span", and the
// serving-plane kinds "serve_resolve", "serve_swap", "serve_demand").
// Field tags match the typed event structs, so a round trip through
// ParseTrace preserves every value.
type Event struct {
	K            string  `json:"k"`
	Stream       string  `json:"stream"`
	Pass         int     `json:"pass"`
	Shard        int     `json:"shard"`
	Videos       int     `json:"videos"`
	NNZ          int64   `json:"nnz"`
	Phi          float64 `json:"phi"`
	Objective    float64 `json:"obj"`
	LowerBound   float64 `json:"lb"`
	UpperBound   float64 `json:"ub"`
	Gap          float64 `json:"gap"`
	UBGap        float64 `json:"ubgap"`
	MaxViol      float64 `json:"viol"`
	MaxLinkUtil  float64 `json:"lmax"`
	MeanLinkUtil float64 `json:"lmean"`
	Delta        float64 `json:"delta"`
	Blocks       int64   `json:"blocks"`
	WarmHits     int64   `json:"warm"`
	MS           float64 `json:"ms"`
	Passes       int     `json:"passes"`
	Converged    bool    `json:"converged"`
	Rounded      bool    `json:"rounded"`
	Phase        string  `json:"phase"`
	Bin          int     `json:"bin"`
	T            int64   `json:"t"`
	PeakMbps     float64 `json:"peak"`
	MaxUtil      float64 `json:"util"`
	AggMbps      float64 `json:"agg"`
	GBHop        float64 `json:"gbhop"`
	Requests     int     `json:"req"`
	PinnedHits   int     `json:"pin"`
	CacheHits    int     `json:"cache"`
	RemoteServed int     `json:"remote"`
	Evictions    int     `json:"evict"`
	HitRate      float64 `json:"hit"`
	Version      int64   `json:"version"`
	Trigger      string  `json:"trigger"`
	Verdict      string  `json:"verdict"`
	Reason       string  `json:"reason"`
	WarmFrac     float64 `json:"warmfrac"`
	SolveMS      float64 `json:"solvems"`
	AuditMS      float64 `json:"auditms"`
	BuildMS      float64 `json:"buildms"`
	RDelta       int64   `json:"rdelta"`
	Batch        int     `json:"batch"`
	Drift        float64 `json:"drift"`
	Dirty        int     `json:"dirty"`
	Rebuilt      int64   `json:"rebuilt"`
	Rows         int64   `json:"rows"`
	TMS          float64 `json:"tms"`
}

// progress is the live snapshot behind the /progress endpoint: the latest
// event per stream plus arbitrary published values (solver stats).
type progress struct {
	epf   map[string]EPFPass
	done  map[string]EPFDone
	sim   map[string]SimSlice
	kv    map[string]any
	spans []Span
}

const maxProgressSpans = 64

// Recorder is the telemetry hub one process shares: a JSONL event sink
// (optional), a metrics registry, and the live progress snapshot. All
// methods are safe for concurrent use; events from different goroutines
// interleave in the file, but the emit order within one stream (one
// emitting goroutine per stream, by convention) is preserved because every
// write happens under the sink mutex in program order.
//
// A nil *Recorder is the disabled state: every method no-ops.
type Recorder struct {
	start   time.Time
	metrics *Metrics

	mu   sync.Mutex
	w    *bufio.Writer
	c    io.Closer
	buf  []byte
	err  error
	prog progress
}

// New returns an enabled recorder. trace is the JSONL sink and may be nil
// for a metrics/progress-only recorder; if it also implements io.Closer,
// Close closes it.
func New(trace io.Writer) *Recorder {
	r := &Recorder{
		start:   time.Now(),
		metrics: NewMetrics(),
		prog: progress{
			epf:  make(map[string]EPFPass),
			done: make(map[string]EPFDone),
			sim:  make(map[string]SimSlice),
			kv:   make(map[string]any),
		},
	}
	if trace != nil {
		r.w = bufio.NewWriterSize(trace, 1<<16)
		if c, ok := trace.(io.Closer); ok {
			r.c = c
		}
	}
	return r
}

// Enabled reports whether the recorder records anything at all. Callers use
// it to skip computing event fields (potential, utilizations) when off.
func (r *Recorder) Enabled() bool { return r != nil }

// Metrics returns the recorder's registry (nil on a nil recorder).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Flush forces buffered trace bytes to the sink and returns the first sink
// error seen so far. Solve entry points flush at every solve end — including
// cancelled ones — so a partial run's trace is always debuggable.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil {
		if err := r.w.Flush(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// Close flushes and closes the sink (when it is closable). Safe to call more
// than once and on a nil recorder.
func (r *Recorder) Close() error {
	err := r.Flush()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		if cerr := r.c.Close(); cerr != nil && r.err == nil {
			r.err = cerr
		}
		r.c = nil
		r.w = nil
	}
	if r.err != nil {
		return r.err
	}
	return err
}

// RecordEPFPass records one solver pass: trace line, progress snapshot, and
// the epf gauge/counter/histogram set.
func (r *Recorder) RecordEPFPass(e EPFPass) {
	if r == nil {
		return
	}
	r.mu.Lock()
	prev, hadPrev := r.prog.epf[e.Stream]
	r.prog.epf[e.Stream] = e
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"epf_pass","stream":`...)
		b = appendJSONString(b, e.Stream)
		b = appendInt(b, ",\"pass\":", int64(e.Pass))
		b = appendFloat(b, ",\"phi\":", e.Phi)
		b = appendFloat(b, ",\"obj\":", e.Objective)
		b = appendFloat(b, ",\"lb\":", e.LowerBound)
		b = appendFloat(b, ",\"ub\":", e.UpperBound)
		b = appendFloat(b, ",\"gap\":", e.Gap)
		b = appendFloat(b, ",\"ubgap\":", e.UBGap)
		b = appendFloat(b, ",\"viol\":", e.MaxViol)
		b = appendFloat(b, ",\"lmax\":", e.MaxLinkUtil)
		b = appendFloat(b, ",\"lmean\":", e.MeanLinkUtil)
		b = appendFloat(b, ",\"delta\":", e.Delta)
		b = appendInt(b, ",\"blocks\":", e.Blocks)
		b = appendInt(b, ",\"warm\":", e.WarmHits)
		b = appendFloat(b, ",\"ms\":", e.ElapsedMS)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()

	m := r.metrics
	m.Gauge("epf_pass").Set(float64(e.Pass))
	m.Gauge("epf_objective").Set(e.Objective)
	m.Gauge("epf_lower_bound").Set(e.LowerBound)
	m.Gauge("epf_gap").Set(e.Gap)
	m.Gauge("epf_max_viol").Set(e.MaxViol)
	m.Gauge("epf_max_link_util").Set(e.MaxLinkUtil)
	m.Counter("epf_passes_total").Add(1)
	if hadPrev && e.ElapsedMS >= prev.ElapsedMS {
		m.Histogram("epf_pass_ms").Observe(e.ElapsedMS - prev.ElapsedMS)
	} else {
		m.Histogram("epf_pass_ms").Observe(e.ElapsedMS)
	}
}

// RecordEPFShard records one catalog shard's solve-end summary: trace line
// plus per-shard block-count gauge. Call once per shard, only on sharded
// solves (an unsharded solve's trace must stay byte-identical to older
// releases).
func (r *Recorder) RecordEPFShard(e EPFShard) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"epf_shard","stream":`...)
		b = appendJSONString(b, e.Stream)
		b = appendInt(b, ",\"shard\":", int64(e.Shard))
		b = appendInt(b, ",\"videos\":", int64(e.Videos))
		b = appendInt(b, ",\"nnz\":", e.NNZ)
		b = appendInt(b, ",\"blocks\":", e.Blocks)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()
	m := r.metrics
	m.Gauge("epf_shard_blocks." + strconv.Itoa(e.Shard)).Set(float64(e.Blocks))
	m.Gauge("epf_shard_videos." + strconv.Itoa(e.Shard)).Set(float64(e.Videos))
}

// RecordEPFDone records a solve's final summary.
func (r *Recorder) RecordEPFDone(e EPFDone) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.prog.done[e.Stream] = e
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"epf_done","stream":`...)
		b = appendJSONString(b, e.Stream)
		b = appendInt(b, ",\"passes\":", int64(e.Passes))
		b = appendFloat(b, ",\"obj\":", e.Objective)
		b = appendFloat(b, ",\"lb\":", e.LowerBound)
		b = appendFloat(b, ",\"gap\":", e.Gap)
		b = appendBool(b, ",\"converged\":", e.Converged)
		b = appendBool(b, ",\"rounded\":", e.Rounded)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()
	r.metrics.Counter("epf_solves_total").Add(1)
}

// RecordSimSlice records one completed simulator bin.
func (r *Recorder) RecordSimSlice(e SimSlice) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.prog.sim[e.Stream] = e
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"sim_slice","stream":`...)
		b = appendJSONString(b, e.Stream)
		b = appendInt(b, ",\"bin\":", int64(e.Bin))
		b = appendInt(b, ",\"t\":", e.StartSec)
		b = appendFloat(b, ",\"peak\":", e.PeakMbps)
		b = appendFloat(b, ",\"util\":", e.MaxUtil)
		b = appendFloat(b, ",\"agg\":", e.AggMbps)
		b = appendFloat(b, ",\"gbhop\":", e.GBHop)
		b = appendInt(b, ",\"req\":", int64(e.Requests))
		b = appendInt(b, ",\"pin\":", int64(e.PinnedHits))
		b = appendInt(b, ",\"cache\":", int64(e.CacheHits))
		b = appendInt(b, ",\"remote\":", int64(e.RemoteServed))
		b = appendInt(b, ",\"evict\":", int64(e.Evictions))
		b = appendFloat(b, ",\"hit\":", e.HitRate)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()

	m := r.metrics
	m.Counter("sim_requests_total").Add(int64(e.Requests))
	m.Counter("sim_evictions_total").Add(int64(e.Evictions))
	m.Gauge("sim_peak_mbps").Set(e.PeakMbps)
	m.Gauge("sim_hit_rate").Set(e.HitRate)
	m.Histogram("sim_bin_peak_mbps").Observe(e.PeakMbps)
}

// RecordSpan records a completed phase timing.
func (r *Recorder) RecordSpan(stream, phase string, d time.Duration) {
	if r == nil {
		return
	}
	ms := float64(d.Nanoseconds()) / 1e6
	r.mu.Lock()
	r.prog.spans = append(r.prog.spans, Span{Stream: stream, Phase: phase, MS: ms})
	if len(r.prog.spans) > maxProgressSpans {
		r.prog.spans = r.prog.spans[len(r.prog.spans)-maxProgressSpans:]
	}
	if r.w != nil {
		b := append(r.buf[:0], `{"k":"span","stream":`...)
		b = appendJSONString(b, stream)
		b = append(b, ",\"phase\":"...)
		b = appendJSONString(b, phase)
		b = appendFloat(b, ",\"ms\":", ms)
		r.buf = r.writeLine(b)
	}
	r.mu.Unlock()
	r.metrics.Histogram("span_ms").Observe(ms)
	r.metrics.Gauge("span_" + phase + "_ms").Set(ms)
}

// SpanTimer measures one phase; End records it. The zero value (from a nil
// recorder) is a no-op and never reads the clock.
type SpanTimer struct {
	r      *Recorder
	stream string
	phase  string
	t0     time.Time
}

// StartSpan begins timing a phase on stream.
func (r *Recorder) StartSpan(stream, phase string) SpanTimer {
	if r == nil {
		return SpanTimer{}
	}
	return SpanTimer{r: r, stream: stream, phase: phase, t0: time.Now()}
}

// End records the span (no-op on the zero timer).
func (sp SpanTimer) End() {
	if sp.r == nil {
		return
	}
	sp.r.RecordSpan(sp.stream, sp.phase, time.Since(sp.t0))
}

// PublishKV stores an arbitrary value in the progress snapshot under key
// (e.g. a solver's live Stats struct). Values are marshaled when /progress
// is served, so they should be plain data.
func (r *Recorder) PublishKV(key string, v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.prog.kv[key] = v
	r.mu.Unlock()
}

// ProgressJSON renders the live snapshot: the latest pass/slice per stream,
// published values, recent spans and uptime.
func (r *Recorder) ProgressJSON() ([]byte, error) {
	if r == nil {
		return []byte("{}\n"), nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := struct {
		UptimeMS float64             `json:"uptime_ms"`
		EPF      map[string]EPFPass  `json:"epf,omitempty"`
		Done     map[string]EPFDone  `json:"done,omitempty"`
		Sim      map[string]SimSlice `json:"sim,omitempty"`
		KV       map[string]any      `json:"kv,omitempty"`
		Spans    []Span              `json:"spans,omitempty"`
	}{
		UptimeMS: float64(time.Since(r.start).Nanoseconds()) / 1e6,
		EPF:      r.prog.epf,
		Done:     r.prog.done,
		Sim:      r.prog.sim,
		KV:       r.prog.kv,
		Spans:    r.prog.spans,
	}
	return json.MarshalIndent(snap, "", "  ")
}

// writeLine terminates b with "}\n", writes it to the sink (mu held by the
// caller) and returns the buffer for reuse.
func (r *Recorder) writeLine(b []byte) []byte {
	b = append(b, '}', '\n')
	if _, err := r.w.Write(b); err != nil && r.err == nil {
		r.err = err
	}
	return b[:0]
}

// ParseTrace decodes a JSONL trace (tolerating a trailing partial line from
// a crashed writer, which it reports as an error after the decoded prefix).
func ParseTrace(rd io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// PassRow formats one solver pass for console output; the CLIs' -v progress
// mode and tracesum's table mode share it so the two never drift.
func PassRow(pass int, obj, lb, viol float64) string {
	gap := 0.0
	if lb > 1e-12 {
		gap = (obj - lb) / lb
	}
	return fmt.Sprintf("pass %3d  obj %12.1f  lb %12.1f  gap %6.2f%%  viol %6.3f%%",
		pass, obj, lb, 100*gap, 100*viol)
}

// Row renders the pass in the shared console format.
func (e EPFPass) Row() string { return PassRow(e.Pass, e.Objective, e.LowerBound, e.MaxViol) }

// appendInt appends `<prefix><v>` to b.
func appendInt(b []byte, prefix string, v int64) []byte {
	b = append(b, prefix...)
	return strconv.AppendInt(b, v, 10)
}

// appendFloat appends `<prefix><v>` with the shortest round-trip encoding.
// JSON cannot carry non-finite values, so NaN/±Inf encode as 0 — emit sites
// use in-band conventions (UBGap = −1) for "undefined" instead.
func appendFloat(b []byte, prefix string, v float64) []byte {
	b = append(b, prefix...)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendBool appends `<prefix><v>`.
func appendBool(b []byte, prefix string, v bool) []byte {
	b = append(b, prefix...)
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendJSONString appends v as a quoted, escaped JSON string. Stream and
// phase names are short and almost always plain ASCII; the escape path
// handles the rest correctly rather than quickly.
func appendJSONString(b []byte, v string) []byte {
	b = append(b, '"')
	for i := 0; i < len(v); {
		c := v[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			b = append(b, c)
			i++
			continue
		}
		if c < utf8.RuneSelf {
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, fmt.Sprintf(`\u%04x`, c)...)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(v[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, `�`...)
		} else {
			b = append(b, v[i:i+size]...)
		}
		i += size
	}
	return append(b, '"')
}
