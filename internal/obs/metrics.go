package obs

import (
	"expvar"
	"math"
	"strconv"
	"sync"
)

// Metrics is a small counter/gauge/histogram registry. Instruments are
// created on first use and live in the registry's own expvar.Map, which
// stays private until Publish exports it into the process-global expvar
// namespace — so tests and libraries can use registries freely without
// colliding on expvar's global, panic-on-duplicate Publish.
type Metrics struct {
	mu    sync.Mutex
	vars  *expvar.Map
	hists map[string]*Histogram
}

// NewMetrics returns an empty, unpublished registry.
func NewMetrics() *Metrics {
	return &Metrics{vars: new(expvar.Map).Init(), hists: make(map[string]*Histogram)}
}

var publishMu sync.Mutex

// Publish exports the registry under namespace in the process-global expvar
// map (served at /debug/vars). Publishing the same namespace twice is a
// no-op rather than the panic expvar.Publish would raise.
func (m *Metrics) Publish(namespace string) {
	if m == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(namespace) == nil {
		expvar.Publish(namespace, m.vars)
	}
}

// Counter returns the named monotone counter, creating it on first use.
// On a nil registry it returns a throwaway instrument so call sites never
// nil-check.
func (m *Metrics) Counter(name string) *expvar.Int {
	if m == nil {
		return new(expvar.Int)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.vars.Get(name).(*expvar.Int); ok {
		return v
	}
	v := new(expvar.Int)
	m.vars.Set(name, v)
	return v
}

// Gauge returns the named float gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *expvar.Float {
	if m == nil {
		return new(expvar.Float)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.vars.Get(name).(*expvar.Float); ok {
		return v
	}
	v := new(expvar.Float)
	m.vars.Set(name, v)
	return v
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return new(Histogram)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.hists[name]; ok {
		return h
	}
	h := new(Histogram)
	m.hists[name] = h
	m.vars.Set(name, h)
	return h
}

// String renders the whole registry as the expvar.Map JSON (also what
// /debug/vars serves for the published namespace).
func (m *Metrics) String() string {
	if m == nil {
		return "{}"
	}
	return m.vars.String()
}

// histBuckets is the fixed bucket count of Histogram: power-of-two buckets
// spanning ~2^-32 .. 2^31, which covers sub-microsecond spans through
// multi-week millisecond counts without configuration.
const histBuckets = 64

// Histogram is a log2-bucketed histogram of nonnegative float64
// observations (negative and non-finite samples are dropped). Bucket b
// holds values in (2^(b-33), 2^(b-32)], so quantiles reported by String are
// bucket upper bounds — accurate to a factor of 2, plenty for spotting a
// pass that takes 8× the median, which is what it exists for. Observations
// are mutex-guarded; instrumented sites observe at most once per descent
// pass or simulator bin, far off any hot path. The zero value is ready to
// use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// bucketOf maps v to its bucket index via the binary exponent.
func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	_, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	b := exp + 32
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest sample recorded (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample recorded (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]):
// the upper edge of the bucket holding the q-th sample.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b]
		if seen >= rank {
			return math.Ldexp(1, b-32) // upper edge 2^(b-32)
		}
	}
	return h.max
}

// Merge folds o's samples into h. Each histogram is locked on its own, so
// concurrent observers of either side stay consistent; merging h into
// itself is a no-op. The load harness uses this to combine per-sender
// latency histograms into one report without sharing a hot mutex.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	o.mu.Lock()
	count, sum, mn, mx := o.count, o.sum, o.min, o.max
	buckets := o.buckets
	o.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	if h.count == 0 || mn < h.min {
		h.min = mn
	}
	if h.count == 0 || mx > h.max {
		h.max = mx
	}
	h.count += count
	h.sum += sum
	for b := range buckets {
		h.buckets[b] += buckets[b]
	}
	h.mu.Unlock()
}

// Summary is a point-in-time digest of a histogram: counts, extremes, and
// the bucket-upper-bound quantiles the harnesses report.
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary returns a consistent snapshot of the histogram's digest (every
// field computed under one lock acquisition).
func (h *Histogram) Summary() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Summary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		s.P50 = h.quantileLocked(0.50)
		s.P90 = h.quantileLocked(0.90)
		s.P95 = h.quantileLocked(0.95)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}

// String implements expvar.Var: a JSON summary with approximate quantiles.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return `{"count":0}`
	}
	b := make([]byte, 0, 160)
	b = append(b, `{"count":`...)
	b = strconv.AppendInt(b, h.count, 10)
	b = appendFloat(b, `,"sum":`, h.sum)
	b = appendFloat(b, `,"mean":`, h.sum/float64(h.count))
	b = appendFloat(b, `,"min":`, h.min)
	b = appendFloat(b, `,"max":`, h.max)
	b = appendFloat(b, `,"p50":`, h.quantileLocked(0.50))
	b = appendFloat(b, `,"p90":`, h.quantileLocked(0.90))
	b = appendFloat(b, `,"p99":`, h.quantileLocked(0.99))
	b = append(b, '}')
	return string(b)
}
