package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// AtomicHist is the concurrent-writer sibling of Histogram: a fixed
// log2-bucketed histogram of nonnegative int64 observations (nanosecond
// durations in practice) whose hot path is two uncontended atomic adds —
// no mutex, no allocation, no branching beyond the bucket computation.
// It exists for the serving data plane, where every request records a
// latency sample from whichever handler goroutine it landed on and the
// /route contract is zero allocations per lookup; the solver-side
// Histogram keeps its mutex because its sites observe at most once per
// descent pass.
//
// Bucket b holds values in (2^(b-1), 2^b] (b = 0 holds 0 and 1), so a
// reported quantile is a bucket upper bound — accurate to a factor of two,
// the same contract Histogram documents. The zero value is ready to use.
type AtomicHist struct {
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// atomicBucketOf maps v to its bucket: the smallest b with v ≤ 2^b.
func atomicBucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one sample. Negative samples are dropped (a clock step
// mid-request); the call never blocks and never allocates.
func (h *AtomicHist) Observe(v int64) {
	if v < 0 {
		return
	}
	h.sum.Add(v)
	h.buckets[atomicBucketOf(v)].Add(1)
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *AtomicHist) ObserveSince(t0 time.Time) {
	h.Observe(int64(time.Since(t0)))
}

// Snapshot returns a point-in-time copy of the histogram. Buckets are read
// with individual atomic loads, so a snapshot taken while writers are live
// may be off by the handful of samples in flight — the standard scrape
// semantics of every production metrics system, and the reason no lock is
// needed.
func (h *AtomicHist) Snapshot() HistSnap {
	var s HistSnap
	s.Sum = h.sum.Load()
	for b := range h.buckets {
		c := h.buckets[b].Load()
		s.Buckets[b] = c
		s.Count += c
	}
	return s
}

// HistSnap is an immutable AtomicHist snapshot: per-bucket counts plus the
// running sum, in the observed unit (nanoseconds for latency instruments).
type HistSnap struct {
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// Sub returns the per-bucket difference s − o: the samples recorded between
// the two snapshots. Used to turn two /metrics scrapes into an interval
// histogram. Negative buckets (snapshots from different instruments, or
// taken out of order) are clamped to zero.
func (s HistSnap) Sub(o HistSnap) HistSnap {
	var d HistSnap
	for b := range s.Buckets {
		c := s.Buckets[b] - o.Buckets[b]
		if c < 0 {
			c = 0
		}
		d.Buckets[b] = c
		d.Count += c
	}
	if d.Sum = s.Sum - o.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	return d
}

// UpperBound returns bucket b's inclusive upper edge (2^b) in the observed
// unit.
func (HistSnap) UpperBound(b int) int64 {
	if b <= 0 {
		return 1
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return 1 << b
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// upper edge of the bucket holding the q-th sample, 0 when empty.
func (s HistSnap) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := range s.Buckets {
		seen += s.Buckets[b]
		if seen >= rank {
			return s.UpperBound(b)
		}
	}
	return s.UpperBound(histBuckets - 1)
}

// SummaryMs renders a nanosecond-unit snapshot as the millisecond Summary
// the load harness and /status report. Min is unknown (the instrument keeps
// no extremes to stay wait-free) and reported as 0; Max is the top nonzero
// bucket's upper bound.
func (s HistSnap) SummaryMs() Summary {
	out := Summary{Count: s.Count, Sum: float64(s.Sum) / 1e6}
	if s.Count == 0 {
		return out
	}
	out.Mean = out.Sum / float64(s.Count)
	out.P50 = float64(s.Quantile(0.50)) / 1e6
	out.P90 = float64(s.Quantile(0.90)) / 1e6
	out.P95 = float64(s.Quantile(0.95)) / 1e6
	out.P99 = float64(s.Quantile(0.99)) / 1e6
	for b := histBuckets - 1; b >= 0; b-- {
		if s.Buckets[b] > 0 {
			out.Max = float64(s.UpperBound(b)) / 1e6
			break
		}
	}
	return out
}

// Status classes a ReqStat distinguishes: 1xx..5xx. Anything outside
// [100,600) lands in the 5xx class (a handler that never writes a header
// counts as 200 via net/http's implicit WriteHeader).
const numStatusClasses = 5

// statusClassNames index the classes for exposition, in wire order.
var statusClassNames = [numStatusClasses]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// ReqStat is the per-endpoint request instrument of the serving plane: a
// latency histogram crossed with the HTTP status class, stored as one flat
// cell grid so recording a completed request is a single uncontended atomic
// add — cells[class×64+bucket]++ — no lock, no allocation, safe for any
// number of concurrent handler goroutines. Everything the instrument
// reports (per-class counts, totals, latency quantiles) is derived from the
// grid at snapshot time; the latency *sum* is approximated from bucket
// midpoints (values in bucket b average to ~3·2^(b-2)), the same
// factor-of-two contract the log2 quantiles already carry. Exactness was
// traded deliberately: a second atomic add for an exact sum doubles the
// hot-path cost, and nothing downstream needs the mean to better than the
// bucket resolution. Create one per endpoint up front (NewReqStat) and
// share the pointer.
type ReqStat struct {
	// Name labels the endpoint in exposition ("route", "status", ...).
	Name  string
	cells [numStatusClasses * histBuckets]atomic.Int64
}

// NewReqStat returns an instrument labeled name.
func NewReqStat(name string) *ReqStat { return &ReqStat{Name: name} }

// statusClass maps an HTTP status code to its class index.
func statusClass(status int) int {
	c := status/100 - 1
	if c < 0 || c >= numStatusClasses {
		return numStatusClasses - 1
	}
	return c
}

// Record counts one completed request: its status class and its latency,
// in one atomic add (the <10 ns/op budget BENCH_serve.json pins). Negative
// durations (a clock step mid-request) land in the first bucket. Zero
// allocations; nil receivers no-op so uninstrumented servers thread nil
// ReqStats freely.
func (e *ReqStat) Record(status int, d time.Duration) {
	if e == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	e.cells[statusClass(status)*histBuckets+atomicBucketOf(v)].Add(1)
}

// Class returns the cumulative request count of one status class
// ("1xx".."5xx" order, see statusClassNames).
func (e *ReqStat) Class(i int) int64 {
	var n int64
	for b := 0; b < histBuckets; b++ {
		n += e.cells[i*histBuckets+b].Load()
	}
	return n
}

// Requests returns the total recorded request count across classes.
func (e *ReqStat) Requests() int64 {
	var n int64
	for i := range e.cells {
		n += e.cells[i].Load()
	}
	return n
}

// midpointNS is the representative value of bucket b used for the derived
// sum: the midpoint 3·2^(b-2) of (2^(b-1), 2^b], saturating at the top.
func midpointNS(b int) int64 {
	switch {
	case b <= 0:
		return 1
	case b == 1:
		return 2
	case b >= 63:
		return math.MaxInt64 / 4
	}
	return 3 << (b - 2)
}

// Latency returns a snapshot of the endpoint's latency histogram across all
// status classes (nanoseconds). Snap.Sum is the midpoint-derived
// approximation described on ReqStat.
func (e *ReqStat) Latency() HistSnap {
	var s HistSnap
	for c := 0; c < numStatusClasses; c++ {
		for b := 0; b < histBuckets; b++ {
			n := e.cells[c*histBuckets+b].Load()
			if n == 0 {
				continue
			}
			s.Buckets[b] += n
			s.Count += n
			s.Sum += n * midpointNS(b)
		}
	}
	return s
}
