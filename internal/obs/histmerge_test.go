package obs

import (
	"sync"
	"testing"
)

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 100; i++ {
		v := float64(i)
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() {
		t.Fatalf("merged count/sum %d/%g, want %d/%g", a.Count(), a.Sum(), whole.Count(), whole.Sum())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged min/max %g/%g, want %g/%g", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%.2f: merged %g, want %g", q, a.Quantile(q), whole.Quantile(q))
		}
	}

	// Merging an empty histogram, nil-ish cases, and self-merge are no-ops.
	before := a.Summary()
	var empty Histogram
	a.Merge(&empty)
	a.Merge(&a)
	if a.Summary() != before {
		t.Fatal("no-op merges changed the histogram")
	}
	// Merging into an empty histogram adopts min/max.
	var c Histogram
	c.Merge(&a)
	if c.Min() != a.Min() || c.Max() != a.Max() || c.Count() != a.Count() {
		t.Fatal("merge into empty lost state")
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary %+v, want zero", s)
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != s.Sum/1000 {
		t.Fatalf("mean %g, want %g", s.Mean, s.Sum/1000)
	}
	// Quantiles are bucket upper bounds: monotone and bounding the rank.
	if !(s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.P50 < 500 || s.P50 > 1024 {
		t.Fatalf("p50 %g outside [500, 1024]", s.P50)
	}
	if s.P95 < 950 {
		t.Fatalf("p95 %g below the true quantile", s.P95)
	}
}

func TestHistogramMergeConcurrent(t *testing.T) {
	// Merge while both sides are being observed: no race, no lost counts
	// (checked loosely — the merge snapshot is a prefix of the stream).
	var dst, src Histogram
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			src.Observe(1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			dst.Observe(2)
		}
	}()
	dst.Merge(&src)
	wg.Wait()
	dst.Merge(&src) // final merge double-counts src; only racing safety matters here
	if dst.Count() < 2000 {
		t.Fatalf("count %d, want >= 2000", dst.Count())
	}
}
