package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"vodplace/internal/prof"
)

// ServeDebug starts the live introspection endpoint on addr (e.g.
// "localhost:6060") serving:
//
//	/debug/vars    — the process expvar namespace (Publish a registry first)
//	/debug/pprof/* — live profiling via internal/prof
//	/progress      — the recorder's live JSON snapshot
//	/metrics       — the recorder's registry in Prometheus text format
//
// It listens before returning, so a caller that gets a nil error can curl
// the address immediately; the server then runs on a background goroutine
// until the returned shutdown function is called. r may be nil, in which
// case /progress serves an empty object.
func ServeDebug(addr string, r *Recorder) (shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	prof.Routes(mux)
	mux.Handle("/metrics", PromHandler(func(w io.Writer) { r.Metrics().WritePrometheus(w) }))
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		b, err := r.ProgressJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b) //nolint:errcheck // nothing useful to do on a client hangup
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}, nil
}
