package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"vodplace/internal/stats"
	"vodplace/internal/workload"
)

func init() {
	register("fig2", "Working set size during peak hours (Fig. 2)", Fig2WorkingSet)
	register("fig3", "Request-mix cosine similarity vs time window (Fig. 3)", Fig3Similarity)
	register("fig4", "Daily request counts per episode of a series (Fig. 4)", Fig4Series)
}

// Fig2Result is the Fig. 2 data: per-office working set sizes, in GB and as
// a fraction of the library, during the peak hour of a Friday and Saturday.
type Fig2Result struct {
	LibraryGB  float64
	FridayGB   []float64
	SaturdayGB []float64
}

// MaxFraction returns the largest working set as a fraction of the library.
func (r *Fig2Result) MaxFraction() float64 {
	m := stats.Max(r.FridayGB)
	if s := stats.Max(r.SaturdayGB); s > m {
		m = s
	}
	return m / r.LibraryGB
}

// Fig2Compute runs the working-set analysis on a scenario.
func Fig2Compute(sc *Scenario) *Fig2Result {
	// Pick the second Friday/Saturday so the library's release schedule has
	// kicked in (days are Monday-based: Friday = 4, Saturday = 5).
	friday, saturday := 11, 12
	if sc.Cfg.Days <= 12 {
		friday, saturday = 4, 5
	}
	return &Fig2Result{
		LibraryGB:  sc.Lib.TotalSizeGB(),
		FridayGB:   sc.Trace.WorkingSetGB(friday),
		SaturdayGB: sc.Trace.WorkingSetGB(saturday),
	}
}

// Fig2WorkingSet prints per-office working sets sorted decreasing, as the
// paper plots them.
func Fig2WorkingSet(_ context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	r := Fig2Compute(sc)
	type row struct {
		vho      int
		fri, sat float64
	}
	rows := make([]row, len(r.FridayGB))
	for j := range rows {
		rows[j] = row{j, r.FridayGB[j], r.SaturdayGB[j]}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].fri > rows[b].fri })
	fmt.Fprintf(w, "library size: %.0f GB\n", r.LibraryGB)
	fmt.Fprintf(w, "%-6s %12s %12s %10s\n", "VHO", "Friday(GB)", "Saturday(GB)", "frac(lib)")
	for _, rw := range rows {
		fmt.Fprintf(w, "%-6d %12.1f %12.1f %9.1f%%\n", rw.vho, rw.fri, rw.sat, 100*rw.fri/r.LibraryGB)
	}
	fmt.Fprintf(w, "max working set = %.1f%% of library\n", 100*r.MaxFraction())
	return nil
}

// Fig3Result is the Fig. 3 data: for each window size, the per-office cosine
// similarity between the peak window's request mix and the previous window's.
type Fig3Result struct {
	WindowSec []int64
	// Similarity[i] are the per-office similarities for WindowSec[i].
	Similarity [][]float64
}

// Fig3Compute runs the similarity analysis for the paper's window ladder.
func Fig3Compute(sc *Scenario) *Fig3Result {
	windows := []int64{3600, 2 * 3600, 6 * 3600, 12 * 3600, workload.SecondsPerDay}
	out := &Fig3Result{WindowSec: windows}
	for _, ws := range windows {
		out.Similarity = append(out.Similarity, sc.Trace.SimilarityAtPeak(ws))
	}
	return out
}

// Fig3Similarity prints mean/min/max similarity per window size.
func Fig3Similarity(_ context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	r := Fig3Compute(sc)
	fmt.Fprintf(w, "%-10s %8s %8s %8s\n", "window", "mean", "min", "max")
	for i, ws := range r.WindowSec {
		sim := r.Similarity[i]
		fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f\n",
			formatWindow(ws), stats.Mean(sim), stats.Min(sim), stats.Max(sim))
	}
	return nil
}

func formatWindow(sec int64) string {
	switch {
	case sec >= workload.SecondsPerDay:
		return fmt.Sprintf("%dd", sec/workload.SecondsPerDay)
	case sec >= 3600:
		return fmt.Sprintf("%dh", sec/3600)
	case sec >= 60:
		return fmt.Sprintf("%dm", sec/60)
	default:
		return fmt.Sprintf("%ds", sec)
	}
}

// Fig4Result is the Fig. 4 data: per-episode daily request counts for one
// TV series.
type Fig4Result struct {
	Series int
	// Daily[episode] has one count per trace day.
	Daily map[int][]int
}

// ReleaseDayCounts returns each episode's request count on its release day,
// in episode order — the quantity whose stability justifies the §VI-A
// estimator.
func (r *Fig4Result) ReleaseDayCounts(days int) []int {
	var eps []int
	for ep := range r.Daily {
		eps = append(eps, ep)
	}
	sort.Ints(eps)
	var out []int
	for _, ep := range eps {
		best := 0
		for _, c := range r.Daily[ep] {
			if c > best {
				best = c
			}
		}
		out = append(out, best)
	}
	return out
}

// Fig4Compute tallies the series with the most requests.
func Fig4Compute(sc *Scenario) *Fig4Result {
	bestSeries, bestCount := 0, -1
	for s := 0; s < sc.Lib.NumSeries; s++ {
		counts := sc.Trace.SeriesDailyCounts(s)
		total := 0
		for _, daily := range counts {
			for _, c := range daily {
				total += c
			}
		}
		if total > bestCount {
			bestCount, bestSeries = total, s
		}
	}
	return &Fig4Result{Series: bestSeries, Daily: sc.Trace.SeriesDailyCounts(bestSeries)}
}

// Fig4Series prints the per-episode daily counts.
func Fig4Series(_ context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	r := Fig4Compute(sc)
	var eps []int
	for ep := range r.Daily {
		eps = append(eps, ep)
	}
	sort.Ints(eps)
	fmt.Fprintf(w, "series %d, %d episodes\n", r.Series, len(eps))
	fmt.Fprintf(w, "%-8s", "day")
	for _, ep := range eps {
		fmt.Fprintf(w, " ep%-5d", ep)
	}
	fmt.Fprintln(w)
	for day := 0; day < sc.Cfg.Days; day++ {
		fmt.Fprintf(w, "%-8d", day)
		for _, ep := range eps {
			fmt.Fprintf(w, " %-7d", r.Daily[ep][day])
		}
		fmt.Fprintln(w)
	}
	peaks := r.ReleaseDayCounts(sc.Cfg.Days)
	fmt.Fprintf(w, "peak-day counts per episode: %v\n", peaks)
	return nil
}
