package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"vodplace/internal/catalog"
	"vodplace/internal/core"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/simplex"
	"vodplace/internal/stats"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

func init() {
	register("table3", "Running time and memory: EPF vs general LP (Table III)", Table3Scalability)
	register("table6", "Placement update frequency and estimation accuracy (Table VI)", Table6Updates)
	register("rounding", "Rounding optimality gap and violation (§V-D)", RoundingStats)
}

// catalogForScale builds a library sized for a scenario config (shared by
// the scaling experiments, which sweep library sizes).
func catalogForScale(c Config) *catalog.Library {
	return catalog.Generate(catalog.Config{
		NumVideos: c.Videos,
		Weeks:     (c.Days + 6) / 7,
		NumSeries: maxInt(2, c.Videos/200),
	}, c.Seed+10)
}

// buildScaleInstance generates a library + trace of the given size on g and
// assembles the placement instance from the first week of history.
func buildScaleInstance(g *topology.Graph, videos int, diskFactor float64, seed int64) (*mip.Instance, error) {
	lib := catalog.Generate(catalog.Config{NumVideos: videos, Weeks: 2}, seed)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 8, NumVHOs: g.NumNodes(), RequestsPerVideoPerDay: 1,
	}, seed+1)
	b := &demand.Builder{
		G: g, Lib: lib,
		DiskGB:      core.UniformDisk(lib, g.NumNodes(), diskFactor),
		LinkCapMbps: core.UniformLinks(g, 20*float64(videos)/float64(g.NumNodes())),
		Cfg:         demand.Config{HorizonDays: 1},
	}
	return b.Instance(tr, 7)
}

// measure runs fn and returns the wall time and the cumulative heap
// allocation it caused. Allocation volume tracks working-set shape (a dense
// tableau allocates quadratically, the decomposition linearly), which is the
// Table III comparison that matters; resident peaks would need an external
// profiler.
func measure(fn func()) (time.Duration, float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	return elapsed, allocMB
}

// Table3Row is one library size's aggregate measurements.
type Table3Row struct {
	Videos     int
	EPFSeconds float64
	EPFAllocMB float64
	LPSeconds  float64 // 0 when the baseline was not run at this size
	LPAllocMB  float64
	Speedup    float64
}

// Table3Compute measures the EPF solver across library sizes (geometric mean
// over three networks × two disk sizes, as the paper aggregates) and the
// dense-simplex baseline on the sizes it can handle.
func Table3Compute(ctx context.Context, cfg Config, epfSizes, lpSizes []int) ([]Table3Row, error) {
	c := cfg.withDefaults()
	nets := []*topology.Graph{topology.Tiscali(), topology.Sprint(), topology.Ebone()}
	rows := make(map[int]*Table3Row)
	rowFor := func(videos int) *Table3Row {
		if r, ok := rows[videos]; ok {
			return r
		}
		r := &Table3Row{Videos: videos}
		rows[videos] = r
		return r
	}

	for _, videos := range epfSizes {
		var times, allocs []float64
		for _, g := range nets {
			for _, diskFactor := range []float64{2.0, 0.2 * float64(g.NumNodes())} {
				inst, err := buildScaleInstance(g, videos, diskFactor, c.Seed)
				if err != nil {
					return nil, fmt.Errorf("table3: building %d-video instance: %w", videos, err)
				}
				elapsed, allocMB := measure(func() {
					res, err := epf.SolveIntegerContext(ctx, inst, c.solver())
					if err != nil {
						panic(err)
					}
					c.mustAudit(inst, res)
				})
				times = append(times, elapsed.Seconds())
				allocs = append(allocs, allocMB)
			}
		}
		r := rowFor(videos)
		r.EPFSeconds = stats.GeoMean(times)
		r.EPFAllocMB = stats.GeoMean(allocs)
	}

	// The dense-simplex baseline can only handle small instances (the same
	// wall CPLEX hits at 20K videos in the paper); run it on a small graph.
	lpNet := topology.Random(6, 1.0, c.Seed)
	for _, videos := range lpSizes {
		inst, err := buildScaleInstance(lpNet, videos, 3.0, c.Seed)
		if err != nil {
			return nil, err
		}
		// EPF on the identical instance, for the speedup column.
		epfT, _ := measure(func() {
			res, err := epf.SolveIntegerContext(ctx, inst, c.solver())
			if err != nil {
				panic(err)
			}
			c.mustAudit(inst, res)
		})
		lpT, lpAlloc := measure(func() {
			lp, _, err := simplex.BuildPlacementLP(inst)
			if err != nil {
				panic(err)
			}
			if res, err := simplex.Solve(lp); err != nil || res.Status != simplex.Optimal {
				panic(fmt.Sprintf("lp baseline: %v/%v", res.Status, err))
			}
		})
		r := rowFor(videos)
		r.LPSeconds = lpT.Seconds()
		r.LPAllocMB = lpAlloc
		if epfT.Seconds() > 0 {
			r.Speedup = lpT.Seconds() / epfT.Seconds()
		}
		if r.EPFSeconds == 0 {
			r.EPFSeconds = epfT.Seconds()
		}
	}

	var out []Table3Row
	for _, videos := range append(append([]int(nil), lpSizes...), epfSizes...) {
		if r, ok := rows[videos]; ok {
			out = append(out, *r)
			delete(rows, videos)
		}
	}
	return out, nil
}

// Table3Scalability prints the scalability table.
func Table3Scalability(ctx context.Context, w io.Writer, cfg Config) error {
	c := cfg.withDefaults()
	epfSizes := []int{c.Videos / 2, c.Videos, c.Videos * 2, c.Videos * 5}
	lpSizes := []int{20, 40, 80}
	if c.Quick {
		epfSizes = []int{c.Videos / 2, c.Videos}
		lpSizes = []int{10, 20}
	}
	rows, err := Table3Compute(ctx, cfg, epfSizes, lpSizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %10s\n",
		"videos", "LP time(s)", "LP alloc MB", "EPF time(s)", "EPF allocMB", "speedup")
	for _, r := range rows {
		lpT, lpA, sp := "-", "-", "-"
		if r.LPSeconds > 0 {
			lpT = fmt.Sprintf("%.2f", r.LPSeconds)
			lpA = fmt.Sprintf("%.1f", r.LPAllocMB)
			sp = fmt.Sprintf("%.0fx", r.Speedup)
		}
		fmt.Fprintf(w, "%-10d %12s %12s %12.2f %12.1f %10s\n",
			r.Videos, lpT, lpA, r.EPFSeconds, r.EPFAllocMB, sp)
	}
	fmt.Fprintln(w, "(LP baseline runs on a 6-office network; larger instances exceed the dense tableau, as CPLEX did at 20K+ in the paper)")
	return nil
}

// Table6Row is one update policy's outcome.
type Table6Row struct {
	Policy      string
	MaxLinkMbps float64
	TotalGBHop  float64
	LocalFrac   float64
	Migrated    int
}

// Table6Compute reproduces Table VI: update frequency and estimation
// accuracy, without a complementary cache.
func Table6Compute(ctx context.Context, cfg Config) ([]Table6Row, error) {
	sc := NewScenario(cfg)
	type variant struct {
		name string
		opts core.MIPOptions
	}
	variants := []variant{
		{"once in 2 weeks", core.MIPOptions{UpdateEveryDays: 14, CacheFraction: -1, Solver: sc.Cfg.solver()}},
		{"weekly", core.MIPOptions{UpdateEveryDays: 7, CacheFraction: -1, Solver: sc.Cfg.solver()}},
		{"daily", core.MIPOptions{UpdateEveryDays: 1, CacheFraction: -1, Solver: sc.Cfg.solver()}},
		{"perfect estimate", core.MIPOptions{UpdateEveryDays: 7, CacheFraction: -1, Method: demand.Perfect, Solver: sc.Cfg.solver()}},
		{"no estimate", core.MIPOptions{UpdateEveryDays: 7, CacheFraction: -1, Method: demand.None, Solver: sc.Cfg.solver()}},
	}
	var rows []Table6Row
	for _, v := range variants {
		v.opts.Verify = sc.Cfg.Verify
		v.opts.Warm = sc.Cfg.Warm
		run, err := sc.Sys.RunMIPContext(ctx, sc.Trace, v.opts)
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", v.name, err)
		}
		rows = append(rows, Table6Row{
			Policy:      v.name,
			MaxLinkMbps: run.Sim.MaxLinkMbps,
			TotalGBHop:  run.Sim.TotalGBHop,
			LocalFrac:   run.Sim.LocalFrac,
			Migrated:    run.Sim.MigratedVideos,
		})
	}
	return rows, nil
}

// Table6Updates prints the update-frequency table.
func Table6Updates(ctx context.Context, w io.Writer, cfg Config) error {
	rows, err := Table6Compute(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %14s %16s %14s %10s\n", "policy", "max bw (Mb/s)", "total GB x hop", "locally served", "migrated")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %14.0f %16.0f %14.3f %10d\n", r.Policy, r.MaxLinkMbps, r.TotalGBHop, r.LocalFrac, r.Migrated)
	}
	return nil
}

// RoundingRow is one library size's rounding quality.
type RoundingRow struct {
	Videos        int
	FractionalGap float64
	RoundedGap    float64
	Violation     float64
}

// RoundingCompute reproduces the §V-D rounding report: optimality gap (vs
// the Lagrangian bound) and constraint violation before and after rounding,
// per library size.
func RoundingCompute(ctx context.Context, cfg Config, sizes []int) ([]RoundingRow, error) {
	c := cfg.withDefaults()
	g := topology.Sprint()
	var rows []RoundingRow
	for _, videos := range sizes {
		inst, err := buildScaleInstance(g, videos, 2.0, c.Seed)
		if err != nil {
			return nil, err
		}
		frac, err := epf.SolveContext(ctx, inst, c.solver())
		if err != nil {
			return nil, err
		}
		if err := c.audit(inst, frac); err != nil {
			return nil, err
		}
		rounded, err := epf.SolveIntegerContext(ctx, inst, c.solver())
		if err != nil {
			return nil, err
		}
		if err := c.audit(inst, rounded); err != nil {
			return nil, err
		}
		rows = append(rows, RoundingRow{
			Videos:        videos,
			FractionalGap: frac.Gap,
			RoundedGap:    rounded.Gap,
			Violation:     rounded.Violation.Max(),
		})
	}
	return rows, nil
}

// RoundingStats prints the rounding-quality report.
func RoundingStats(ctx context.Context, w io.Writer, cfg Config) error {
	c := cfg.withDefaults()
	sizes := []int{c.Videos / 4, c.Videos, c.Videos * 4}
	if c.Quick {
		sizes = []int{c.Videos / 2, c.Videos}
	}
	rows, err := RoundingCompute(ctx, cfg, sizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %16s %16s %14s\n", "videos", "fractional gap", "rounded gap", "violation")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %15.2f%% %15.2f%% %13.2f%%\n", r.Videos, 100*r.FractionalGap, 100*r.RoundedGap, 100*r.Violation)
	}
	fmt.Fprintln(w, "(paper: 4.1% gap / 4.4% violation at 5K videos, 1.0% / 0.8% at 200K — quality improves with size)")
	return nil
}
