package experiments

import (
	"context"
	"testing"
)

// TestInfeasibleProbeRegression pins the fix for a solver blow-up: on
// infeasible FEAS(B) instances (here: 1-second constraint windows at low
// link capacity probed by Table V's search) the Lagrangian bound diverges,
// and without clamping the B ← LB feedback loop drove dual prices to +Inf
// and a panic inside block assignment.
func TestInfeasibleProbeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := Config{Videos: 400, Days: 16, VHOs: 16, RequestsPerVideoPerDay: 30,
		MaxPasses: 30, Seed: 1, LinkCapMbps: 400}
	rows, err := Table5Compute(context.Background(), cfg, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("expected one row, got %d", len(rows))
	}
}
