// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV, §V-D, §VII). Each experiment is a named function that
// builds the required workload, runs the placement pipeline and baselines,
// and prints the same rows or series the paper reports. The cmd/vodexp tool
// and the repository's benchmark suite both drive this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"vodplace/internal/core"
	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/obs"
	"vodplace/internal/topology"
	"vodplace/internal/verify"
	"vodplace/internal/workload"

	"vodplace/internal/catalog"
)

// Config scales the experiments. The zero value selects the default
// evaluation scale (55-office backbone, 2 000 videos, 28 days); Quick
// selects a reduced scale suitable for unit tests and benchmarks.
type Config struct {
	// Videos is the library size. Default 2000 (Quick: 300).
	Videos int
	// Days is the trace length. Default 28 (Quick: 16).
	Days int
	// VHOs is the office count; the default 55 uses the backbone topology.
	VHOs int
	// RequestsPerVideoPerDay scales trace volume. Default 50 (Quick: 20) —
	// the paper's service sees hundreds of requests per video per week.
	RequestsPerVideoPerDay float64
	// DiskFactor is aggregate disk as a multiple of library size. Default 2.
	DiskFactor float64
	// LinkCapMbps is the uniform link capacity. Default 1000 (1 Gb/s).
	LinkCapMbps float64
	// Seed drives all randomness. Default 1.
	Seed int64
	// MaxPasses caps the EPF solver. Default 80 (Quick: 50).
	MaxPasses int
	// Epsilon overrides the solver's convergence tolerance (0 keeps the
	// solver default). Looser tolerances let small noisy instances converge
	// before the pass cap — useful when studying convergence trends.
	Epsilon float64
	// Shards is the catalog shard count passed to every EPF solve
	// (epf.Options.Shards). 0 keeps the solver's default (adopt the
	// instance's layout). Any value produces bit-identical experiment
	// output; sharding changes only scheduling and telemetry.
	Shards int
	// Quick shrinks everything for tests.
	Quick bool
	// Verify re-checks every solver result with the independent certificate
	// auditor (internal/verify) and fails loudly on any violated claim.
	Verify bool
	// Warm enables cross-period warm starts in every multi-period MIP
	// pipeline an experiment runs (core.MIPOptions.Warm): each day's solve is
	// seeded from the previous day's final solver state. Off by default —
	// warm solves change floating-point trajectories, so figure outputs
	// differ slightly (never beyond the certified tolerance).
	Warm bool
	// NoIncremental disables the fast solver defaults (incremental pricing
	// and parallel rounding), pinning the legacy sequential trajectory.
	NoIncremental bool
	// Recorder threads the telemetry layer (internal/obs) through every
	// solver and simulator run an experiment performs. nil disables it.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	out := c
	if out.Quick {
		if out.Videos <= 0 {
			out.Videos = 300
		}
		if out.Days <= 0 {
			out.Days = 16
		}
		if out.VHOs <= 0 {
			out.VHOs = 10
		}
		if out.RequestsPerVideoPerDay <= 0 {
			out.RequestsPerVideoPerDay = 20
		}
		if out.MaxPasses <= 0 {
			out.MaxPasses = 50
		}
	}
	if out.Videos <= 0 {
		out.Videos = 2000
	}
	if out.Days <= 0 {
		out.Days = 28
	}
	if out.VHOs <= 0 {
		out.VHOs = 55
	}
	if out.RequestsPerVideoPerDay <= 0 {
		// The paper's service sees "100 K's" of requests per day; scaled to
		// the default 2 000-video library this keeps per-office concurrency
		// in the regime where caches cycle and links matter.
		out.RequestsPerVideoPerDay = 25
	}
	if out.DiskFactor <= 0 {
		out.DiskFactor = 2.0
	}
	if out.LinkCapMbps <= 0 {
		out.LinkCapMbps = 1000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.MaxPasses <= 0 {
		out.MaxPasses = 80
	}
	return out
}

func (c Config) solver() epf.Options {
	return epf.Options{
		Seed: c.Seed, MaxPasses: c.MaxPasses, Epsilon: c.Epsilon,
		Shards: c.Shards, Recorder: c.Recorder,
		IncrementalPricing: !c.NoIncremental,
		ParallelRound:      !c.NoIncremental,
	}
}

// audit re-checks res against inst with the independent certificate auditor
// when Verify is set, returning the auditor's error on any violated claim.
func (c Config) audit(inst *mip.Instance, res *epf.Result) error {
	if !c.Verify {
		return nil
	}
	if rep := verify.Audit(inst, res); !rep.Ok() {
		return rep.Err()
	}
	return nil
}

// mustAudit is audit for call sites without an error path (feasibility
// probes, timing closures); a violated claim panics, which is the loud
// failure -verify promises.
func (c Config) mustAudit(inst *mip.Instance, res *epf.Result) {
	if err := c.audit(inst, res); err != nil {
		panic(err)
	}
}

// Scenario is a fully materialized evaluation setup.
type Scenario struct {
	Cfg   Config
	G     *topology.Graph
	Lib   *catalog.Library
	Trace *workload.Trace
	Sys   *core.System
}

// NewScenario builds the default evaluation setup for cfg: the 55-office
// backbone (or a random graph at other office counts), a library with weekly
// series episodes and blockbusters, and a full-horizon trace.
func NewScenario(cfg Config) *Scenario {
	c := cfg.withDefaults()
	var g *topology.Graph
	if c.VHOs == 55 {
		g = topology.Backbone55()
	} else {
		g = topology.Random(c.VHOs, 1.4, c.Seed)
	}
	lib := catalog.Generate(catalog.Config{
		NumVideos: c.Videos,
		Weeks:     (c.Days + 6) / 7,
		NumSeries: maxInt(2, c.Videos/200),
	}, c.Seed+10)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days:                   c.Days,
		NumVHOs:                c.VHOs,
		RequestsPerVideoPerDay: c.RequestsPerVideoPerDay,
	}, c.Seed+20)
	sys := &core.System{
		G:           g,
		Lib:         lib,
		DiskGB:      core.UniformDisk(lib, c.VHOs, c.DiskFactor),
		LinkCapMbps: core.UniformLinks(g, c.LinkCapMbps),
	}
	return &Scenario{Cfg: c, G: g, Lib: lib, Trace: tr, Sys: sys}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Runner is one registered experiment. Run observes ctx: experiments that
// reach the solver stop within one chunk of a cancellation.
type Runner struct {
	ID    string
	Title string
	Run   func(ctx context.Context, w io.Writer, cfg Config) error
}

var registry []Runner

func register(id, title string, run func(context.Context, io.Writer, Config) error) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by id.
func All() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// RunAll executes every experiment in id order, stopping at the first
// error or cancellation.
func RunAll(ctx context.Context, w io.Writer, cfg Config) error {
	for _, r := range All() {
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Fprintf(w, "==== %s: %s ====\n", r.ID, r.Title)
		if err := r.Run(ctx, w, cfg); err != nil {
			return fmt.Errorf("experiment %s: %w", r.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
