package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"vodplace/internal/core"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

func init() {
	register("fig11", "Feasibility region: disk vs link capacity (Fig. 11)", Fig11Feasibility)
	register("fig12", "Complementary cache size sweep (Fig. 12)", Fig12CacheSweep)
	register("fig13", "Link capacity vs library size (Fig. 13)", Fig13LibraryGrowth)
	register("table4", "Topology vs feasible link capacity (Table IV)", Table4Topology)
	register("table5", "Peak window size vs bandwidth (Table V)", Table5Windows)
}

// feasTolerance is the violation level below which a solve counts as
// feasible. It sits above the solver's ε because on very tight instances
// the fractional point plateaus 1-2% over capacity until the Lagrangian
// bound catches up; the paper's feasibility-region plots are coarse enough
// that this tolerance does not move any frontier visibly.
const feasTolerance = 0.03

// probeFeasible builds a placement instance from the trace's first history
// window and reports whether the EPF solver reaches an ε-feasible fractional
// point under the given capacities. A false result conflates true
// infeasibility with exceeding the pass budget, exactly as any numerical
// feasibility probe does.
func probeFeasible(ctx context.Context, sc *Scenario, diskGB []float64, linkCapMbps []float64, day int) bool {
	b := &demand.Builder{G: sc.G, Lib: sc.Lib, DiskGB: diskGB, LinkCapMbps: linkCapMbps,
		Cfg: demand.Config{HorizonDays: 7}}
	inst, err := b.Instance(sc.Trace, day)
	if err != nil {
		return false // disk cannot even hold one copy of each video
	}
	opts := sc.Cfg.solver()
	if opts.MaxPasses < 60 {
		opts.MaxPasses = 60
	}
	res, err := epf.SolveContext(ctx, inst, opts)
	if err != nil {
		return false
	}
	sc.Cfg.mustAudit(inst, res)
	v := res.Violation
	return v.Disk <= feasTolerance && v.Link <= feasTolerance && v.Unserved <= 1e-6
}

// Fig11Result is one feasibility-region line: for each link capacity, the
// minimum aggregate disk (as a multiple of library size) at which all
// requests can be served.
type Fig11Result struct {
	LinkCapMbps []float64
	// MinDiskFactor[i] corresponds to LinkCapMbps[i]; 0 means no feasible
	// disk was found within the search range.
	MinDiskFactor []float64
}

// Fig11Compute binary-searches the minimum disk factor per link capacity,
// for uniform or heterogeneous office disks.
func Fig11Compute(ctx context.Context, sc *Scenario, linkCaps []float64, heterogeneous bool) *Fig11Result {
	out := &Fig11Result{LinkCapMbps: linkCaps}
	day := minInt(7, sc.Cfg.Days-1)
	for _, cap := range linkCaps {
		if ctx.Err() != nil {
			break // cancelled: report only the caps probed so far
		}
		links := core.UniformLinks(sc.G, cap)
		disk := func(factor float64) []float64 {
			if heterogeneous {
				return core.HeterogeneousDisk(sc.Lib, sc.Cfg.VHOs, factor)
			}
			return core.UniformDisk(sc.Lib, sc.Cfg.VHOs, factor)
		}
		lo, hi := 1.02, 8.0
		if !probeFeasible(ctx, sc, disk(hi), links, day) {
			out.MinDiskFactor = append(out.MinDiskFactor, 0)
			continue
		}
		if probeFeasible(ctx, sc, disk(lo), links, day) {
			out.MinDiskFactor = append(out.MinDiskFactor, lo)
			continue
		}
		for iter := 0; iter < 7; iter++ {
			mid := (lo + hi) / 2
			if probeFeasible(ctx, sc, disk(mid), links, day) {
				hi = mid
			} else {
				lo = mid
			}
		}
		out.MinDiskFactor = append(out.MinDiskFactor, hi)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig11Feasibility prints the uniform and heterogeneous feasibility lines.
func Fig11Feasibility(ctx context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	caps := []float64{cfg.withDefaults().LinkCapMbps / 2, cfg.withDefaults().LinkCapMbps, cfg.withDefaults().LinkCapMbps * 2, cfg.withDefaults().LinkCapMbps * 4}
	uni := Fig11Compute(ctx, sc, caps, false)
	het := Fig11Compute(ctx, sc, caps, true)
	if err := ctx.Err(); err != nil {
		return err // cancelled probes read as infeasible; don't print them
	}
	fmt.Fprintf(w, "%-16s %18s %18s\n", "link cap (Mb/s)", "uniform min disk", "nonuniform min disk")
	for i, c := range caps {
		fmt.Fprintf(w, "%-16.0f %17.2fx %17.2fx\n", c, uni.MinDiskFactor[i], het.MinDiskFactor[i])
	}
	fmt.Fprintln(w, "(0 = infeasible within 8x library; minimum possible is 1x — one copy of each video)")
	return nil
}

// Fig12Result is the Fig. 12 data: peak and aggregate bandwidth as a
// function of the complementary cache share.
type Fig12Result struct {
	CacheFractions []float64
	PeakMbps       []float64
	TotalGBHop     []float64
}

// Fig12Compute sweeps the complementary cache share.
func Fig12Compute(ctx context.Context, sc *Scenario, fractions []float64) (*Fig12Result, error) {
	out := &Fig12Result{CacheFractions: fractions}
	for _, f := range fractions {
		cf := f
		if cf == 0 {
			cf = -1 // MIPOptions: negative means exactly zero cache
		}
		run, err := sc.Sys.RunMIPContext(ctx, sc.Trace, core.MIPOptions{
			CacheFraction: cf,
			Solver:        sc.Cfg.solver(),
			Verify:        sc.Cfg.Verify,
			Warm:          sc.Cfg.Warm,
		})
		if err != nil {
			return nil, err
		}
		out.PeakMbps = append(out.PeakMbps, run.Sim.MaxLinkMbps)
		out.TotalGBHop = append(out.TotalGBHop, run.Sim.TotalGBHop)
	}
	return out, nil
}

// Fig12CacheSweep prints the cache sweep.
func Fig12CacheSweep(ctx context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	fractions := []float64{0, 0.01, 0.05, 0.10, 0.25}
	r, err := Fig12Compute(ctx, sc, fractions)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %16s %16s\n", "cache frac", "peak (Mb/s)", "total GB x hop")
	for i, f := range fractions {
		fmt.Fprintf(w, "%-12s %16.0f %16.0f\n", fmt.Sprintf("%.0f%%", 100*f), r.PeakMbps[i], r.TotalGBHop[i])
	}
	return nil
}

// probeLinkFeasible is probeFeasible for link-capacity searches: the disk
// budget is fixed (and mathematically adequate) in those experiments, so the
// verdict hangs on the link rows; disk gets only a loose sanity guard
// against the solver's tight-disk plateau masquerading as link
// infeasibility.
func probeLinkFeasible(ctx context.Context, sc *Scenario, diskGB []float64, linkCapMbps []float64, day int) bool {
	b := &demand.Builder{G: sc.G, Lib: sc.Lib, DiskGB: diskGB, LinkCapMbps: linkCapMbps,
		Cfg: demand.Config{HorizonDays: 7}}
	inst, err := b.Instance(sc.Trace, day)
	if err != nil {
		return false
	}
	opts := sc.Cfg.solver()
	if opts.MaxPasses < 60 {
		opts.MaxPasses = 60
	}
	res, err := epf.SolveContext(ctx, inst, opts)
	if err != nil {
		return false
	}
	sc.Cfg.mustAudit(inst, res)
	v := res.Violation
	return v.Link <= feasTolerance && v.Disk <= 0.08 && v.Unserved <= 1e-6
}

// minFeasibleLinkCap binary-searches the lowest uniform link capacity at
// which the placement is ε-feasible, on a log scale over [loMbps, hiMbps].
func minFeasibleLinkCap(ctx context.Context, sc *Scenario, diskGB []float64, loMbps, hiMbps float64, day int) float64 {
	if !probeLinkFeasible(ctx, sc, diskGB, core.UniformLinks(sc.G, hiMbps), day) {
		return 0
	}
	if probeLinkFeasible(ctx, sc, diskGB, core.UniformLinks(sc.G, loMbps), day) {
		return loMbps
	}
	lo, hi := loMbps, hiMbps
	for iter := 0; iter < 8; iter++ {
		mid := sqrtGeo(lo, hi)
		if probeLinkFeasible(ctx, sc, diskGB, core.UniformLinks(sc.G, mid), day) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

func sqrtGeo(a, b float64) float64 {
	m := a * b
	// geometric midpoint without math.Sqrt overflow concerns at these scales
	lo, hi := a, b
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if mid*mid > m {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// Fig13Row is one scenario of the Fig. 13 scalability study.
type Fig13Row struct {
	Network     string
	Videos      int
	MinLinkMbps float64
	// PerVideo is the capacity normalized by library size (the Fig. 13
	// y-axis: required capacity stays flat as the library grows because
	// request volume scales with it).
	PerVideo float64
}

// Fig13Compute finds the required link capacity per network and library
// size, with aggregate disk fixed at 2x library.
func Fig13Compute(ctx context.Context, cfg Config, sizes []int, networks []string) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, netName := range networks {
		for _, videos := range sizes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			g := namedTopology(netName)
			c := cfg
			c.Videos = videos
			c.VHOs = g.NumNodes()
			c.Days = minInt(cfg.withDefaults().Days, 14)
			sc := buildScenarioOn(g, c)
			disk := core.UniformDisk(sc.Lib, g.NumNodes(), 2.0)
			cap := minFeasibleLinkCap(ctx, sc, disk, 5, 50000, 7)
			rows = append(rows, Fig13Row{
				Network:     netName,
				Videos:      videos,
				MinLinkMbps: cap,
				PerVideo:    cap / float64(videos),
			})
		}
	}
	return rows, nil
}

// buildScenarioOn materializes a scenario on a specific prebuilt graph.
func buildScenarioOn(g *topology.Graph, cfg Config) *Scenario {
	c := cfg.withDefaults()
	c.VHOs = g.NumNodes()
	lib := catalogForScale(c)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days:                   c.Days,
		NumVHOs:                c.VHOs,
		RequestsPerVideoPerDay: c.RequestsPerVideoPerDay,
	}, c.Seed+20)
	sys := &core.System{
		G:           g,
		Lib:         lib,
		DiskGB:      core.UniformDisk(lib, c.VHOs, c.DiskFactor),
		LinkCapMbps: core.UniformLinks(g, c.LinkCapMbps),
	}
	return &Scenario{Cfg: c, G: g, Lib: lib, Trace: tr, Sys: sys}
}

func namedTopology(name string) *topology.Graph {
	switch name {
	case "backbone":
		return topology.Backbone55()
	case "tree":
		return topology.Tree(55)
	case "mesh":
		return topology.FullMesh(55)
	case "tiscali":
		return topology.Tiscali()
	case "sprint":
		return topology.Sprint()
	case "ebone":
		return topology.Ebone()
	default:
		panic(fmt.Sprintf("experiments: unknown topology %q", name))
	}
}

// Fig13LibraryGrowth prints required capacity vs library size.
func Fig13LibraryGrowth(ctx context.Context, w io.Writer, cfg Config) error {
	c := cfg.withDefaults()
	sizes := []int{c.Videos / 4, c.Videos / 2, c.Videos}
	rows, err := Fig13Compute(ctx, cfg, sizes, []string{"tiscali", "sprint", "ebone"})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %8s %14s %16s\n", "network", "videos", "cap (Mb/s)", "cap/1K videos")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %14.0f %16.1f\n", r.Network, r.Videos, r.MinLinkMbps, 1000*r.PerVideo)
	}
	return nil
}

// Table4Row is one topology's minimum feasible link capacity.
type Table4Row struct {
	Topology    string
	Nodes       int
	Edges       int
	MinLinkMbps float64
}

// Table4Compute reproduces Table IV: same library and (remapped) trace, 3x
// aggregate disk, minimum uniform link capacity per topology. For networks
// smaller than the trace's office count, the offices with the largest
// request volumes are kept, as in the paper.
func Table4Compute(ctx context.Context, cfg Config, names []string) ([]Table4Row, error) {
	c := cfg.withDefaults()
	base := NewScenario(cfg)
	var rows []Table4Row
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g := namedTopology(name)
		sc := base
		switch {
		case g.NumNodes() < base.Cfg.VHOs:
			// Keep the offices with the largest request volumes, as in the
			// paper's RocketFuel runs.
			tr := remapTopVHOs(base.Trace, g.NumNodes())
			sysCfg := base.Cfg
			sysCfg.VHOs = g.NumNodes()
			sc = &Scenario{Cfg: sysCfg, G: g, Lib: base.Lib, Trace: tr,
				Sys: &core.System{G: g, Lib: base.Lib}}
		default:
			// Same or larger network: demand simply occupies the first
			// offices.
			sc = &Scenario{Cfg: base.Cfg, G: g, Lib: base.Lib, Trace: base.Trace,
				Sys: &core.System{G: g, Lib: base.Lib}}
		}
		disk := core.UniformDisk(sc.Lib, g.NumNodes(), 3.0)
		cap := minFeasibleLinkCap(ctx, sc, disk, 5, 80000, minInt(7, c.Days-1))
		rows = append(rows, Table4Row{
			Topology:    name,
			Nodes:       g.NumNodes(),
			Edges:       g.NumEdges(),
			MinLinkMbps: cap,
		})
	}
	return rows, nil
}

// remapTopVHOs keeps the n offices with the most requests and renumbers
// them 0..n-1 by decreasing volume.
func remapTopVHOs(tr *workload.Trace, n int) *workload.Trace {
	counts := make([]int, tr.NumVHOs)
	for _, r := range tr.Requests {
		counts[r.VHO]++
	}
	idx := make([]int, tr.NumVHOs)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
	remap := make(map[int32]int32)
	for newID, oldID := range idx[:n] {
		remap[int32(oldID)] = int32(newID)
	}
	out := &workload.Trace{Days: tr.Days, NumVHOs: n, Lib: tr.Lib}
	for _, r := range tr.Requests {
		if nj, ok := remap[r.VHO]; ok {
			out.Requests = append(out.Requests, workload.Request{Time: r.Time, VHO: nj, Video: r.Video})
		}
	}
	return out
}

// Table4Topology prints the topology comparison.
func Table4Topology(ctx context.Context, w io.Writer, cfg Config) error {
	names := []string{"backbone", "tree", "mesh", "tiscali", "sprint", "ebone"}
	if cfg.withDefaults().VHOs != 55 {
		names = []string{"tiscali", "sprint", "ebone"}
	}
	rows, err := Table4Compute(ctx, cfg, names)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %7s %7s %22s\n", "topology", "nodes", "edges", "feasible cap (Mb/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %7d %7d %22.0f\n", r.Topology, r.Nodes, r.Edges, r.MinLinkMbps)
	}
	return nil
}

// Table5Row is one peak-window size's outcome.
type Table5Row struct {
	WindowSec       int64
	FeasibleCapMbps float64
	MaxDuringWindow float64
	MaxEntirePeriod float64
}

// Table5Compute reproduces Table V: for each constraint-window size, the
// minimum feasible link capacity, then a placement solved at that capacity
// and played against the full trace, reporting the realized maxima inside
// the enforced windows and over the whole period.
func Table5Compute(ctx context.Context, cfg Config, windows []int64) ([]Table5Row, error) {
	sc := NewScenario(cfg)
	day := minInt(7, sc.Cfg.Days-1)
	var rows []Table5Row
	for _, win := range windows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Find the feasibility constraint for this window size.
		var cap float64
		probe := func(capMbps float64) bool {
			b := &demand.Builder{G: sc.G, Lib: sc.Lib,
				DiskGB:      core.UniformDisk(sc.Lib, sc.Cfg.VHOs, sc.Cfg.DiskFactor),
				LinkCapMbps: core.UniformLinks(sc.G, capMbps),
				Cfg:         demand.Config{WindowSec: win, HorizonDays: 7}}
			inst, err := b.Instance(sc.Trace, day)
			if err != nil {
				return false
			}
			opts := sc.Cfg.solver()
			if opts.MaxPasses < 60 {
				opts.MaxPasses = 60
			}
			res, err := epf.SolveContext(ctx, inst, opts)
			if err != nil {
				return false
			}
			sc.Cfg.mustAudit(inst, res)
			v := res.Violation
			return v.Disk <= feasTolerance && v.Link <= feasTolerance
		}
		lo, hi := 5.0, 50000.0
		if !probe(hi) {
			rows = append(rows, Table5Row{WindowSec: win})
			continue
		}
		for iter := 0; iter < 8; iter++ {
			mid := sqrtGeo(lo, hi)
			if probe(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
		cap = hi

		// Solve at that capacity and play the trace.
		run, err := sc.Sys.RunMIPContext(ctx, sc.Trace, core.MIPOptions{
			WindowSec:     win,
			CacheFraction: -1,
			Solver:        sc.Cfg.solver(),
			Verify:        sc.Cfg.Verify,
			Warm:          sc.Cfg.Warm,
		})
		if err != nil {
			return nil, err
		}
		// Realized maxima inside the enforced windows vs the whole horizon.
		maxWindow := maxDuringEnforcedWindows(sc, run, win)
		rows = append(rows, Table5Row{
			WindowSec:       win,
			FeasibleCapMbps: cap,
			MaxDuringWindow: maxWindow,
			MaxEntirePeriod: run.Sim.MaxLinkMbps,
		})
	}
	return rows, nil
}

// maxDuringEnforcedWindows returns the realized peak link bandwidth within
// the peak windows each plan enforced.
func maxDuringEnforcedWindows(sc *Scenario, run *core.MIPRun, win int64) float64 {
	binSec := int64(300)
	var peak float64
	for _, plan := range run.Plans {
		histFrom := int64(plan.Day-7) * workload.SecondsPerDay
		if histFrom < 0 {
			histFrom = 0
		}
		histTo := int64(plan.Day) * workload.SecondsPerDay
		sub := sc.Trace.Slice(histFrom, histTo)
		for _, start := range sub.TopPeakWindows(win, plan.Instance.Slices) {
			// The window was identified in history; the matching period in
			// the serving week is one week later.
			servStart := start + 7*workload.SecondsPerDay
			for b := servStart / binSec; b <= (servStart+win)/binSec; b++ {
				if b >= 0 && int(b) < len(run.Sim.BinPeakMbps) {
					if v := run.Sim.BinPeakMbps[b]; v > peak {
						peak = v
					}
				}
			}
		}
	}
	return peak
}

// Table5Windows prints the window sweep.
func Table5Windows(ctx context.Context, w io.Writer, cfg Config) error {
	windows := []int64{1, 60, 3600, workload.SecondsPerDay}
	rows, err := Table5Compute(ctx, cfg, windows)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %20s %20s %20s\n", "window", "feasible cap (Mb/s)", "max in LP window", "max entire period")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %20.0f %20.0f %20.0f\n",
			formatWindow(r.WindowSec), r.FeasibleCapMbps, r.MaxDuringWindow, r.MaxEntirePeriod)
	}
	return nil
}

// ensure mip import is used (instance types appear in signatures elsewhere).
var _ = mip.Frac{}
