package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"vodplace/internal/workload"
)

func quickCfg() Config {
	return Config{Quick: true, Seed: 3, MaxPasses: 40}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig11", "fig12", "fig13", "table2", "table3", "table4", "table5",
		"table6", "rounding",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		var ids []string
		for _, r := range All() {
			ids = append(ids, r.ID)
		}
		t.Errorf("registry has %d entries, want %d: %v", len(All()), len(want), ids)
	}
	for _, r := range All() {
		if r.Title == "" || r.Run == nil {
			t.Errorf("experiment %q incomplete", r.ID)
		}
	}
}

func TestNewScenarioDefaults(t *testing.T) {
	sc := NewScenario(Config{Quick: true})
	if sc.G.NumNodes() != 10 || sc.Lib.Len() != 300 || sc.Trace.Days != 16 {
		t.Errorf("quick scenario wrong shape: %d nodes, %d videos, %d days",
			sc.G.NumNodes(), sc.Lib.Len(), sc.Trace.Days)
	}
	sc55 := NewScenario(Config{Videos: 50, Days: 7, RequestsPerVideoPerDay: 1})
	if sc55.G.Name() != "backbone55" {
		t.Errorf("default topology %q, want backbone55", sc55.G.Name())
	}
}

func TestFig2(t *testing.T) {
	sc := NewScenario(quickCfg())
	r := Fig2Compute(sc)
	if len(r.FridayGB) != sc.Cfg.VHOs {
		t.Fatalf("working sets for %d offices, want %d", len(r.FridayGB), sc.Cfg.VHOs)
	}
	frac := r.MaxFraction()
	if frac <= 0 || frac > 1 {
		t.Errorf("max working-set fraction %g outside (0,1]", frac)
	}
	var buf bytes.Buffer
	if err := Fig2WorkingSet(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max working set") {
		t.Error("fig2 output missing summary")
	}
}

func TestFig3WindowMonotonicity(t *testing.T) {
	sc := NewScenario(quickCfg())
	r := Fig3Compute(sc)
	if len(r.Similarity) != len(r.WindowSec) {
		t.Fatal("shape mismatch")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// Fig 3's finding: 1-day windows look more similar than 1-hour windows.
	first := mean(r.Similarity[0])
	last := mean(r.Similarity[len(r.Similarity)-1])
	if last <= first {
		t.Errorf("similarity should grow with window size: 1h %.3f vs 1d %.3f", first, last)
	}
}

func TestFig4(t *testing.T) {
	sc := NewScenario(quickCfg())
	r := Fig4Compute(sc)
	if len(r.Daily) == 0 {
		t.Fatal("no episodes observed")
	}
	peaks := r.ReleaseDayCounts(sc.Cfg.Days)
	if len(peaks) != len(r.Daily) {
		t.Errorf("peak counts %d, episodes %d", len(peaks), len(r.Daily))
	}
}

func TestCompareSchemes(t *testing.T) {
	sc := NewScenario(quickCfg())
	res, err := CompareSchemes(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schemes) != 4 {
		t.Fatalf("%d schemes, want 4", len(res.Schemes))
	}
	mip := res.Outcome("mip")
	lru := res.Outcome("random+lru")
	if mip == nil || lru == nil {
		t.Fatal("missing schemes")
	}
	// Headline result: the MIP scheme wins on transfers.
	if mip.Sim.TotalGBHop >= lru.Sim.TotalGBHop {
		t.Errorf("MIP transfers %.0f not below LRU %.0f", mip.Sim.TotalGBHop, lru.Sim.TotalGBHop)
	}
	if mip.Sim.MaxLinkMbps >= lru.Sim.MaxLinkMbps {
		t.Errorf("MIP peak %.0f not below LRU %.0f", mip.Sim.MaxLinkMbps, lru.Sim.MaxLinkMbps)
	}
	// Fig 7/8 analyses on the same run.
	f7 := Fig7Compute(res.MIPRun)
	if f7.TotalGB <= 0 {
		t.Error("fig7: no placed bytes")
	}
	if f7.MediumGB <= 0 {
		t.Error("fig7: medium-popularity class empty; paper expects it substantial")
	}
	f8 := Fig8Compute(res.MIPRun)
	if f8.MultiCopy == 0 {
		t.Error("fig8: no videos with multiple copies")
	}
	// Popular videos should have at least as many copies as the deep tail.
	headAvg, tailAvg := 0.0, 0.0
	head := len(f8.Copies) / 10
	for _, c := range f8.Copies[:head] {
		headAvg += float64(c)
	}
	headAvg /= float64(head)
	for _, c := range f8.Copies[len(f8.Copies)-head:] {
		tailAvg += float64(c)
	}
	tailAvg /= float64(head)
	if headAvg < tailAvg {
		t.Errorf("head copies %.2f below tail %.2f", headAvg, tailAvg)
	}
}

func TestFig9(t *testing.T) {
	sc := NewScenario(quickCfg())
	r, err := Fig9Compute(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 {
		t.Fatal("no requests")
	}
	if r.RemoteFrac < 0 || r.RemoteFrac > 1 {
		t.Errorf("remote fraction %g", r.RemoteFrac)
	}
}

func TestProbeFeasibleBounds(t *testing.T) {
	cfg := quickCfg()
	cfg.Videos = 150
	cfg.Days = 10
	sc := NewScenario(cfg)
	// Generous capacities must be feasible.
	bigDisk := make([]float64, sc.Cfg.VHOs)
	for i := range bigDisk {
		bigDisk[i] = sc.Lib.TotalSizeGB()
	}
	bigLinks := make([]float64, sc.G.NumLinks())
	for l := range bigLinks {
		bigLinks[l] = 1e6
	}
	if !probeFeasible(context.Background(), sc, bigDisk, bigLinks, 7) {
		t.Error("generous capacities reported infeasible")
	}
	// Disk below one copy of the library must be infeasible.
	tinyDisk := make([]float64, sc.Cfg.VHOs)
	for i := range tinyDisk {
		tinyDisk[i] = sc.Lib.TotalSizeGB() * 0.5 / float64(sc.Cfg.VHOs)
	}
	if probeFeasible(context.Background(), sc, tinyDisk, bigLinks, 7) {
		t.Error("sub-library disk reported feasible")
	}
}

func TestRemapTopVHOs(t *testing.T) {
	sc := NewScenario(quickCfg())
	tr := remapTopVHOs(sc.Trace, 4)
	if tr.NumVHOs != 4 {
		t.Fatalf("remapped to %d offices", tr.NumVHOs)
	}
	counts := make([]int, 4)
	for _, r := range tr.Requests {
		if r.VHO < 0 || r.VHO >= 4 {
			t.Fatalf("bad office %d after remap", r.VHO)
		}
		counts[r.VHO]++
	}
	// Office 0 is the busiest original office.
	for j := 1; j < 4; j++ {
		if counts[0] < counts[j] {
			t.Errorf("office 0 (%d reqs) should be busiest, office %d has %d", counts[0], j, counts[j])
		}
	}
	if len(tr.Requests) >= len(sc.Trace.Requests) {
		t.Error("remap should drop requests from excluded offices")
	}
}

func TestFormatWindow(t *testing.T) {
	cases := map[int64]string{
		1:                          "1s",
		60:                         "1m",
		3600:                       "1h",
		workload.SecondsPerDay:     "1d",
		2 * workload.SecondsPerDay: "2d",
	}
	for sec, want := range cases {
		if got := formatWindow(sec); got != want {
			t.Errorf("formatWindow(%d) = %q, want %q", sec, got, want)
		}
	}
}

func TestRoundingComputeQuick(t *testing.T) {
	rows, err := RoundingCompute(context.Background(), quickCfg(), []int{150})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("expected one row")
	}
	r := rows[0]
	if r.RoundedGap < -1e-9 {
		t.Errorf("negative rounded gap %g", r.RoundedGap)
	}
	if r.Violation > 0.15 {
		t.Errorf("rounding violation %g too large", r.Violation)
	}
}

func TestNamedTopology(t *testing.T) {
	for _, name := range []string{"backbone", "tree", "mesh", "tiscali", "sprint", "ebone"} {
		g := namedTopology(name)
		if g == nil || !g.Built() {
			t.Errorf("topology %q not built", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown topology should panic")
		}
	}()
	namedTopology("nope")
}

func TestSqrtGeo(t *testing.T) {
	if got := sqrtGeo(1, 100); got < 9.9 || got > 10.1 {
		t.Errorf("sqrtGeo(1,100) = %g, want ~10", got)
	}
	if got := sqrtGeo(4, 4); got < 3.99 || got > 4.01 {
		t.Errorf("sqrtGeo(4,4) = %g, want 4", got)
	}
}
