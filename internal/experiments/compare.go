package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"vodplace/internal/cache"
	"vodplace/internal/core"
	"vodplace/internal/par"
	"vodplace/internal/sim"
	"vodplace/internal/workload"
)

func init() {
	register("fig5", "Peak link bandwidth: MIP vs caching baselines (Fig. 5)", Fig5PeakBandwidth)
	register("fig6", "Aggregate transfer volume per scheme (Fig. 6)", Fig6Aggregate)
	register("fig7", "Disk usage by popularity class (Fig. 7)", Fig7DiskByPopularity)
	register("fig8", "Copies per video by demand rank (Fig. 8)", Fig8Copies)
	register("fig9", "Pure LRU cache behavior (Fig. 9)", Fig9LRUBehavior)
	register("table2", "MIP vs LRU caching with origin servers (Fig. 10 / Table II)", Table2Origin)
}

// SchemeOutcome is one scheme's measurements in the comparative runs.
type SchemeOutcome struct {
	Name string
	Sim  *sim.Result
}

// CompareResult is the Fig. 5/6 data: all four schemes on one workload.
type CompareResult struct {
	Schemes []SchemeOutcome
	// MIPRun keeps the underlying plans for the Fig. 7/8 analyses.
	MIPRun *core.MIPRun
}

// Outcome returns the named scheme.
func (r *CompareResult) Outcome(name string) *SchemeOutcome {
	for i := range r.Schemes {
		if r.Schemes[i].Name == name {
			return &r.Schemes[i]
		}
	}
	return nil
}

// CompareSchemes runs the §VII-B comparison: the MIP scheme with weekly
// updates and a 5% complementary cache, against Random+LRU, Random+LFU and
// Top-100+LRU at identical disk budgets.
func CompareSchemes(sc *Scenario) (*CompareResult, error) {
	return CompareSchemesContext(context.Background(), sc)
}

// CompareSchemesContext fans the four schemes out across a worker pool:
// they share only immutable scenario state (graph path tables, library,
// trace) and write into index-addressed slots, so the reported order is the
// fixed scheme order regardless of which scheme finishes first.
func CompareSchemesContext(ctx context.Context, sc *Scenario) (*CompareResult, error) {
	topK := 100
	if sc.Cfg.Videos < 1000 {
		topK = sc.Cfg.Videos / 20
	}
	var mipRun *core.MIPRun
	type scheme struct {
		name string
		run  func() (*sim.Result, error)
	}
	schemes := []scheme{
		{"mip", func() (*sim.Result, error) {
			r, err := sc.Sys.RunMIPContext(ctx, sc.Trace, core.MIPOptions{Solver: sc.Cfg.solver(), Verify: sc.Cfg.Verify, Warm: sc.Cfg.Warm})
			if err != nil {
				return nil, err
			}
			mipRun = r // read back only after the pool barrier
			return r.Sim, nil
		}},
		{"random+lru", func() (*sim.Result, error) {
			return sc.Sys.RunBaseline(sc.Trace, core.BaselineOptions{Policy: cache.LRU, Seed: sc.Cfg.Seed, Recorder: sc.Cfg.Recorder, Scheme: "random+lru"})
		}},
		{"random+lfu", func() (*sim.Result, error) {
			return sc.Sys.RunBaseline(sc.Trace, core.BaselineOptions{Policy: cache.LFU, Seed: sc.Cfg.Seed, Recorder: sc.Cfg.Recorder, Scheme: "random+lfu"})
		}},
		{fmt.Sprintf("top%d+lru", topK), func() (*sim.Result, error) {
			return sc.Sys.RunBaseline(sc.Trace, core.BaselineOptions{Policy: cache.LRU, TopK: topK, Seed: sc.Cfg.Seed, Recorder: sc.Cfg.Recorder, Scheme: fmt.Sprintf("top%d+lru", topK)})
		}},
	}
	results := make([]*sim.Result, len(schemes))
	errs := make([]error, len(schemes))
	pool := par.New(len(schemes))
	defer pool.Close()
	if err := pool.Run(ctx, len(schemes), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i], errs[i] = schemes[i].run()
		}
	}); err != nil {
		return nil, err
	}
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("%s scheme: %w", schemes[i].name, e)
		}
	}
	out := &CompareResult{MIPRun: mipRun}
	for i := range schemes {
		out.Schemes = append(out.Schemes, SchemeOutcome{schemes[i].name, results[i]})
	}
	return out, nil
}

// Fig5PeakBandwidth prints the peak link bandwidth per scheme plus a daily
// peak series, the Fig. 5 content.
func Fig5PeakBandwidth(ctx context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	res, err := CompareSchemesContext(ctx, sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %16s\n", "scheme", "max link (Mb/s)")
	for _, s := range res.Schemes {
		fmt.Fprintf(w, "%-14s %16.0f\n", s.Name, s.Sim.MaxLinkMbps)
	}
	// Daily peak series (Fig. 5's time axis, coarsened).
	fmt.Fprintf(w, "\ndaily peak link bandwidth (Mb/s):\n%-6s", "day")
	for _, s := range res.Schemes {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintln(w)
	binsPerDay := int(workload.SecondsPerDay / 300)
	for day := 0; day < sc.Cfg.Days; day++ {
		fmt.Fprintf(w, "%-6d", day)
		for _, s := range res.Schemes {
			peak := 0.0
			for b := day * binsPerDay; b < (day+1)*binsPerDay && b < len(s.Sim.BinPeakMbps); b++ {
				if s.Sim.BinPeakMbps[b] > peak {
					peak = s.Sim.BinPeakMbps[b]
				}
			}
			fmt.Fprintf(w, " %14.0f", peak)
		}
		fmt.Fprintln(w)
	}
	mip := res.Outcome("mip").Sim.MaxLinkMbps
	lru := res.Outcome("random+lru").Sim.MaxLinkMbps
	if lru > 0 {
		fmt.Fprintf(w, "\nmip/lru peak ratio: %.2f (paper: ~0.5)\n", mip/lru)
	}
	return nil
}

// Fig6Aggregate prints total and per-day aggregate transfer volume.
func Fig6Aggregate(ctx context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	res, err := CompareSchemesContext(ctx, sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %18s %14s\n", "scheme", "total (GB x hop)", "local frac")
	for _, s := range res.Schemes {
		fmt.Fprintf(w, "%-14s %18.0f %14.3f\n", s.Name, s.Sim.TotalGBHop, s.Sim.LocalFrac)
	}
	return nil
}

// Fig7Result is the Fig. 7 data: how the placed bytes split across
// popularity classes.
type Fig7Result struct {
	HighGB, MediumGB, LowGB float64 // top-100, next 20%, rest
	TotalGB                 float64
}

// Fig7Compute classifies the first placement's copies by demand rank.
func Fig7Compute(run *core.MIPRun) *Fig7Result {
	plan := run.Plans[0]
	type vd struct {
		vi     int
		demand float64
	}
	ranked := make([]vd, len(plan.Instance.Demands))
	for vi := range plan.Instance.Demands {
		ranked[vi] = vd{vi, plan.Instance.Demands[vi].TotalDemandGB()}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].demand > ranked[b].demand })
	out := &Fig7Result{}
	highCut := 100
	if highCut > len(ranked) {
		highCut = len(ranked)
	}
	mediumCut := highCut + len(ranked)*20/100
	if mediumCut > len(ranked) {
		mediumCut = len(ranked)
	}
	for pos, r := range ranked {
		d := &plan.Instance.Demands[r.vi]
		copies := 0
		for _, f := range plan.Result.Sol.Videos[r.vi].Open {
			if f.V >= 0.5 {
				copies++
			}
		}
		gb := float64(copies) * d.SizeGB
		out.TotalGB += gb
		switch {
		case pos < highCut:
			out.HighGB += gb
		case pos < mediumCut:
			out.MediumGB += gb
		default:
			out.LowGB += gb
		}
	}
	return out
}

// Fig7DiskByPopularity prints the popularity-class disk split.
func Fig7DiskByPopularity(ctx context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	run, err := sc.Sys.RunMIPContext(ctx, sc.Trace, core.MIPOptions{Solver: sc.Cfg.solver(), Verify: sc.Cfg.Verify, Warm: sc.Cfg.Warm})
	if err != nil {
		return err
	}
	r := Fig7Compute(run)
	fmt.Fprintf(w, "%-22s %12s %8s\n", "class", "placed GB", "share")
	fmt.Fprintf(w, "%-22s %12.0f %7.1f%%\n", "high (top 100)", r.HighGB, 100*r.HighGB/r.TotalGB)
	fmt.Fprintf(w, "%-22s %12.0f %7.1f%%\n", "medium (next 20%)", r.MediumGB, 100*r.MediumGB/r.TotalGB)
	fmt.Fprintf(w, "%-22s %12.0f %7.1f%%\n", "unpopular (rest)", r.LowGB, 100*r.LowGB/r.TotalGB)
	return nil
}

// Fig8Result is the Fig. 8 data: copies per video ordered by demand rank.
type Fig8Result struct {
	// Copies[r] is the copy count of the r-th most demanded video.
	Copies []int
	// MultiCopy is the number of videos with ≥ 2 copies.
	MultiCopy int
}

// Fig8Compute extracts copy counts by rank from the first placement.
func Fig8Compute(run *core.MIPRun) *Fig8Result {
	plan := run.Plans[0]
	type vd struct {
		vi     int
		demand float64
	}
	ranked := make([]vd, len(plan.Instance.Demands))
	for vi := range plan.Instance.Demands {
		ranked[vi] = vd{vi, plan.Instance.Demands[vi].TotalDemandGB()}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].demand > ranked[b].demand })
	out := &Fig8Result{}
	for _, r := range ranked {
		copies := 0
		for _, f := range plan.Result.Sol.Videos[r.vi].Open {
			if f.V >= 0.5 {
				copies++
			}
		}
		out.Copies = append(out.Copies, copies)
		if copies >= 2 {
			out.MultiCopy++
		}
	}
	return out
}

// Fig8Copies prints copy counts at sampled ranks.
func Fig8Copies(ctx context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	run, err := sc.Sys.RunMIPContext(ctx, sc.Trace, core.MIPOptions{Solver: sc.Cfg.solver(), Verify: sc.Cfg.Verify, Warm: sc.Cfg.Warm})
	if err != nil {
		return err
	}
	r := Fig8Compute(run)
	fmt.Fprintf(w, "%-8s %8s\n", "rank", "copies")
	for _, rank := range []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000} {
		if rank > len(r.Copies) {
			break
		}
		fmt.Fprintf(w, "%-8d %8d\n", rank, r.Copies[rank-1])
	}
	fmt.Fprintf(w, "videos with >= 2 copies: %d of %d\n", r.MultiCopy, len(r.Copies))
	n := run.Plans[0].Instance.NumVHOs()
	maxCopies := 0
	for _, c := range r.Copies {
		if c > maxCopies {
			maxCopies = c
		}
	}
	fmt.Fprintf(w, "max copies: %d of %d offices (paper: even hot videos < all offices)\n", maxCopies, n)
	return nil
}

// Fig9Result is the Fig. 9 data: behavior of a pure LRU deployment.
type Fig9Result struct {
	RemoteFrac     float64
	UncachableFrac float64
	Evictions      int
	Requests       int
}

// Fig9Compute plays a Random+LRU run (half+ of disk as cache, as §VII-B's
// LRU experiment describes) and extracts the cache pathologies.
func Fig9Compute(sc *Scenario) (*Fig9Result, error) {
	res, err := sc.Sys.RunBaseline(sc.Trace, core.BaselineOptions{Policy: cache.LRU, Seed: sc.Cfg.Seed, Recorder: sc.Cfg.Recorder, Scheme: "random+lru"})
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{Evictions: res.Evictions, Requests: res.Requests}
	if res.Requests > 0 {
		out.RemoteFrac = float64(res.RemoteServed) / float64(res.Requests)
		out.UncachableFrac = float64(res.Uncachable) / float64(res.Requests)
	}
	return out, nil
}

// Fig9LRUBehavior prints the LRU pathology metrics.
func Fig9LRUBehavior(ctx context.Context, w io.Writer, cfg Config) error {
	sc := NewScenario(cfg)
	r, err := Fig9Compute(sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "requests:            %d\n", r.Requests)
	fmt.Fprintf(w, "served remotely:     %.1f%% (paper: ~60%%)\n", 100*r.RemoteFrac)
	fmt.Fprintf(w, "uncachable requests: %.1f%% (paper: ~20%%)\n", 100*r.UncachableFrac)
	fmt.Fprintf(w, "cache evictions:     %d (cycling)\n", r.Evictions)
	return nil
}

// Table2Result is the Table II data at one disk factor.
type Table2Result struct {
	DiskFactor float64
	MIPPeak    float64
	LRUPeak    float64
	MIPAggPeak float64
	LRUAggPeak float64
	MIPHitRate float64
	LRUHitRate float64
}

// Table2Compute compares the MIP scheme to LRU caching with 4 regional
// origin servers at the given disk factor.
func Table2Compute(ctx context.Context, cfg Config, diskFactor float64) (*Table2Result, error) {
	c := cfg
	c.DiskFactor = diskFactor
	sc := NewScenario(c)
	mipRun, err := sc.Sys.RunMIPContext(ctx, sc.Trace, core.MIPOptions{Solver: sc.Cfg.solver(), Verify: sc.Cfg.Verify, Warm: sc.Cfg.Warm})
	if err != nil {
		return nil, err
	}
	origin, err := sc.Sys.RunOriginLRU(sc.Trace, 4, 0)
	if err != nil {
		return nil, err
	}
	return &Table2Result{
		DiskFactor: diskFactor,
		MIPPeak:    mipRun.Sim.MaxLinkMbps,
		LRUPeak:    origin.MaxLinkMbps,
		MIPAggPeak: mipRun.Sim.MaxAggMbps,
		LRUAggPeak: origin.MaxAggMbps,
		MIPHitRate: mipRun.Sim.HitRate,
		LRUHitRate: origin.HitRate,
	}, nil
}

// Table2Origin prints the Table II comparison at 2x and 6x disk.
func Table2Origin(ctx context.Context, w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "%-28s %12s %12s %12s %12s\n", "", "2x MIP", "2x LRU", "6x MIP", "6x LRU")
	r2, err := Table2Compute(ctx, cfg, 2.0)
	if err != nil {
		return err
	}
	r6, err := Table2Compute(ctx, cfg, 6.0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-28s %12.0f %12.0f %12.0f %12.0f\n", "peak link b/w (Mb/s)", r2.MIPPeak, r2.LRUPeak, r6.MIPPeak, r6.LRUPeak)
	fmt.Fprintf(w, "%-28s %12.0f %12.0f %12.0f %12.0f\n", "max aggregate b/w (Mb/s)", r2.MIPAggPeak, r2.LRUAggPeak, r6.MIPAggPeak, r6.LRUAggPeak)
	fmt.Fprintf(w, "%-28s %11.0f%% %11.0f%% %11.0f%% %11.0f%%\n", "hit rate", 100*r2.MIPHitRate, 100*r2.LRUHitRate, 100*r6.MIPHitRate, 100*r6.LRUHitRate)
	return nil
}
