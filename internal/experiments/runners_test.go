package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestAllRunnersProduceOutput drives every registered experiment at a tiny
// scale, verifying each completes and prints a plausible report. This is the
// repository's broadest integration test (everything from workload synthesis
// through solving, rounding, simulation and formatting); skipped under
// -short.
func TestAllRunnersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	cfg := Config{
		Quick: true, Videos: 150, Days: 14, VHOs: 6,
		RequestsPerVideoPerDay: 10, Seed: 2, MaxPasses: 20,
	}
	// Expected content fragments per experiment.
	wantFragment := map[string]string{
		"fig2":     "max working set",
		"fig3":     "window",
		"fig4":     "episodes",
		"fig5":     "mip/lru peak ratio",
		"fig6":     "local frac",
		"fig7":     "medium",
		"fig8":     "copies",
		"fig9":     "served remotely",
		"fig11":    "link cap",
		"fig12":    "cache frac",
		"fig13":    "cap/1K videos",
		"table2":   "hit rate",
		"table3":   "speedup",
		"table4":   "feasible cap",
		"table5":   "max entire period",
		"table6":   "locally served",
		"rounding": "rounded gap",
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(context.Background(), &buf, cfg); err != nil {
				t.Fatalf("%s failed: %v", r.ID, err)
			}
			out := buf.String()
			if len(out) < 20 {
				t.Fatalf("%s produced almost no output: %q", r.ID, out)
			}
			if frag, ok := wantFragment[r.ID]; ok && !strings.Contains(out, frag) {
				t.Errorf("%s output missing %q:\n%s", r.ID, frag, out)
			}
		})
	}
}

// TestTable6Ordering checks the Table VI qualitative ordering at small
// scale: perfect knowledge transfers no more than no-estimate.
func TestTable6Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	cfg := Config{Quick: true, Videos: 200, Days: 16, VHOs: 6,
		RequestsPerVideoPerDay: 10, Seed: 4, MaxPasses: 25}
	rows, err := Table6Compute(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table6Row{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	perfect, none := byName["perfect estimate"], byName["no estimate"]
	if perfect.TotalGBHop > none.TotalGBHop {
		t.Errorf("perfect estimate transfers %.0f > no estimate %.0f", perfect.TotalGBHop, none.TotalGBHop)
	}
	if perfect.LocalFrac < none.LocalFrac {
		t.Errorf("perfect estimate serves %.3f locally < no estimate %.3f", perfect.LocalFrac, none.LocalFrac)
	}
}
