package experiments

import (
	"testing"

	"vodplace/internal/core"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/topology"
	"vodplace/internal/workload"

	"vodplace/internal/catalog"
)

// The scale sweep: instance construction and a short solve at 1k/10k/100k
// videos, recorded in BENCH_scale.json by `make bench-json`. Construction
// goes through the streaming demand→builder path with a bounded shard size,
// so its B/op column is the direct regression gate for the sharded pipeline's
// memory contract (peak staging O(shard), not O(catalog)); the solve rows
// track how block-sweep cost scales with the catalog dimension. Pass caps are
// deliberately tiny — the sweep measures per-pass cost at scale, not
// convergence.

// scaleShardSize keeps roughly catalog/64 videos per shard without dropping
// below one mid-size shard — enough shards that scheduling and telemetry are
// exercised, large enough that per-shard overhead stays invisible.
const scaleShardSize = 256

// scaleWorkload generates the library and trace for a scale point once per
// benchmark (outside the timed loop).
func scaleWorkload(b *testing.B, g *topology.Graph, videos int) (*workload.Trace, *demand.Builder) {
	b.Helper()
	lib := catalog.Generate(catalog.Config{NumVideos: videos, Weeks: 2}, 1)
	tr := workload.GenerateTrace(lib, workload.TraceConfig{
		Days: 8, NumVHOs: g.NumNodes(), RequestsPerVideoPerDay: 1,
	}, 2)
	db := &demand.Builder{
		G: g, Lib: lib,
		DiskGB:      core.UniformDisk(lib, g.NumNodes(), 2.0),
		LinkCapMbps: core.UniformLinks(g, 20*float64(videos)/float64(g.NumNodes())),
		Cfg:         demand.Config{HorizonDays: 1, Shards: (videos + scaleShardSize - 1) / scaleShardSize},
	}
	return tr, db
}

func benchmarkScaleBuild(b *testing.B, videos int) {
	g := topology.Random(10, 1.2, 1)
	tr, db := scaleWorkload(b, g, videos)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := db.Instance(tr, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(inst.NumShards()), "shards/op")
	}
}

func benchmarkScaleSolve(b *testing.B, videos, passes int) {
	g := topology.Random(10, 1.2, 1)
	tr, db := scaleWorkload(b, g, videos)
	inst, err := db.Instance(tr, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *epf.Result
	for i := 0; i < b.N; i++ {
		r, err := epf.SolveInteger(inst, epf.Options{Seed: 1, MaxPasses: passes})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.StopTimer()
	if res.Sol == nil || len(res.Sol.Videos) != inst.NumVideos() {
		b.Fatal("solve dropped videos")
	}
}

func BenchmarkScaleBuild1k(b *testing.B)   { benchmarkScaleBuild(b, 1_000) }
func BenchmarkScaleBuild10k(b *testing.B)  { benchmarkScaleBuild(b, 10_000) }
func BenchmarkScaleBuild100k(b *testing.B) { benchmarkScaleBuild(b, 100_000) }

// BenchmarkScaleBuild1M is the catalog-scale ceiling point: a full
// 1M-video trace generation + streamed instance build. Build only — a
// solve at this size belongs to a cores sweep, not the scale gate. The
// workload generation and the build peak at several GB, so -short (CI's
// bench smoke) skips it; `make bench-json` runs it for BENCH_scale.json.
func BenchmarkScaleBuild1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-video build needs several GB and minutes; skipped under -short")
	}
	benchmarkScaleBuild(b, 1_000_000)
}

func BenchmarkScaleSolve1k(b *testing.B)   { benchmarkScaleSolve(b, 1_000, 4) }
func BenchmarkScaleSolve10k(b *testing.B)  { benchmarkScaleSolve(b, 10_000, 3) }
func BenchmarkScaleSolve100k(b *testing.B) { benchmarkScaleSolve(b, 100_000, 2) }
