package mip

import (
	"math/rand"
	"strings"
	"testing"
)

// randomProfile draws a fresh sparse demand profile for one video: ascending
// offices (possibly none), non-negative aggregates, and sparse concurrency
// in the dense staging shape ApplyDemandDelta and InstanceBuilder.Add share.
func randomProfile(rng *rand.Rand, nodes, slices int) (js []int32, agg []float64, conc [][]float64) {
	for j := 0; j < nodes; j++ {
		if rng.Intn(2) == 0 {
			js = append(js, int32(j))
			agg = append(agg, rng.Float64()*8)
		}
	}
	conc = make([][]float64, slices)
	for t := range conc {
		conc[t] = make([]float64, len(js))
	}
	for z := 0; z < 5 && slices > 0 && len(js) > 0; z++ {
		conc[rng.Intn(slices)][rng.Intn(len(js))] = float64(rng.Intn(4))
	}
	return js, agg, conc
}

// TestApplyDemandDeltaEquivalence is the patch path's bit-for-bit contract:
// a randomized sequence of in-place patches leaves the instance value
// identical — demand rows, CSR nonzeros, shard geometry and NNZ tallies —
// to streaming the final demand set through a fresh builder at the same
// shard size.
func TestApplyDemandDeltaEquivalence(t *testing.T) {
	const (
		seed, nodes, videos, slices, shardSize = 11, 6, 40, 3, 7
	)
	g, disk, caps, demands := builderProblem(t, seed, nodes, videos, slices, 5)
	// mirror keeps the dense staging of every row so the from-scratch
	// rebuild sees the same final demand set the patches produced.
	mirror := make([]VideoDemand, len(demands))
	for vi := range demands {
		d := demands[vi]
		d.Js = append([]int32(nil), d.Js...)
		d.Agg = append([]float64(nil), d.Agg...)
		d.Conc = make([][]float64, slices)
		for tt := range d.Conc {
			d.Conc[tt] = append([]float64(nil), demands[vi].Conc[tt]...)
		}
		mirror[vi] = d
	}
	patched := streamBuild(t, g, disk, caps, slices, shardSize, demands)

	rng := rand.New(rand.NewSource(seed))
	const steps = 200
	for step := 0; step < steps; step++ {
		vi := rng.Intn(videos)
		js, agg, conc := randomProfile(rng, nodes, slices)
		if err := patched.ApplyDemandDelta(vi, js, agg, conc); err != nil {
			t.Fatalf("step %d: patch video %d: %v", step, vi, err)
		}
		// The mirror keeps pristine copies; the caller-owned slices are then
		// scribbled over, so any aliasing bug in the copy-on-write path shows
		// up as a mismatch against the from-scratch rebuild below.
		mirror[vi].Js = append([]int32(nil), js...)
		mirror[vi].Agg = append([]float64(nil), agg...)
		mirror[vi].Conc = make([][]float64, slices)
		for tt := range conc {
			mirror[vi].Conc[tt] = append([]float64(nil), conc[tt]...)
		}
		for k := range js {
			js[k] = -99
			agg[k] = -99
		}
		for tt := range conc {
			for k := range conc[tt] {
				conc[tt][k] = -99
			}
		}
	}
	if patched.Generation() != steps {
		t.Fatalf("generation %d after %d patches", patched.Generation(), steps)
	}

	rebuilt := streamBuild(t, g, disk, caps, slices, shardSize, mirror)
	assertInstancesEqual(t, patched, rebuilt)
	if len(patched.Shards) != len(rebuilt.Shards) {
		t.Fatalf("%d shards vs %d", len(patched.Shards), len(rebuilt.Shards))
	}
	for si := range patched.Shards {
		if patched.Shards[si] != rebuilt.Shards[si] {
			t.Fatalf("shard %d differs after patching: %+v vs %+v",
				si, patched.Shards[si], rebuilt.Shards[si])
		}
	}
}

// TestApplyDemandDeltaRejects pins the validation and atomicity contract: a
// profile the builder would reject is rejected with the builder's message,
// and a failed patch leaves the instance — row, shard tallies, generation —
// untouched.
func TestApplyDemandDeltaRejects(t *testing.T) {
	g, disk, caps, demands := builderProblem(t, 5, 5, 12, 2, 4)
	inst := streamBuild(t, g, disk, caps, 2, 4, demands)

	conc2 := func(k int) [][]float64 { return [][]float64{make([]float64, k), make([]float64, k)} }
	cases := []struct {
		name string
		vi   int
		js   []int32
		agg  []float64
		conc [][]float64
		want string
	}{
		{"index out of range", 12, nil, nil, conc2(0), "out of range"},
		{"negative index", -1, nil, nil, conc2(0), "out of range"},
		{"agg length mismatch", 3, []int32{0, 2}, []float64{1}, conc2(2), "agg entries"},
		{"slice count mismatch", 3, []int32{0}, []float64{1}, [][]float64{{0}}, "concurrency slices"},
		{"slice width mismatch", 3, []int32{0, 1}, []float64{1, 1}, [][]float64{{0, 0}, {0}}, "entries for"},
		{"office out of range", 3, []int32{0, 5}, []float64{1, 1}, conc2(2), "out of range"},
		{"offices not ascending", 3, []int32{2, 1}, []float64{1, 1}, conc2(2), "not strictly ascending"},
		{"negative aggregate", 3, []int32{0, 1}, []float64{1, -1}, conc2(2), "negative demand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			beforeRow := inst.Demands[3]
			beforeShards := append([]InstanceShard(nil), inst.Shards...)
			beforeGen := inst.Generation()
			err := inst.ApplyDemandDelta(tc.vi, tc.js, tc.agg, tc.conc)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
			after := inst.Demands[3]
			if &beforeRow.Js[0] != &after.Js[0] || len(beforeRow.Js) != len(after.Js) ||
				beforeRow.NNZ() != after.NNZ() {
				t.Fatal("failed patch mutated the row")
			}
			for si := range beforeShards {
				if inst.Shards[si] != beforeShards[si] {
					t.Fatalf("failed patch changed shard %d", si)
				}
			}
			if inst.Generation() != beforeGen {
				t.Fatal("failed patch bumped the generation")
			}
		})
	}
}

// TestApplyDemandDeltaShardOf pins the owning-shard lookup across every
// video index and shard boundary.
func TestApplyDemandDeltaShardOf(t *testing.T) {
	g, disk, caps, demands := builderProblem(t, 7, 4, 23, 2, 3)
	inst := streamBuild(t, g, disk, caps, 2, 5, demands)
	for vi := range inst.Demands {
		si := inst.shardOf(vi)
		sh := inst.Shards[si]
		if vi < sh.Lo || vi >= sh.Hi {
			t.Fatalf("video %d mapped to shard %d [%d,%d)", vi, si, sh.Lo, sh.Hi)
		}
	}
}
