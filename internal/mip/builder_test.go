package mip

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"vodplace/internal/topology"
)

// builderProblem generates a deterministic synthetic catalog: nodes offices on
// a random connected graph, videos demands with sparse concurrency (nnzPer
// nonzeros per video across slices slices).
func builderProblem(t *testing.T, seed int64, nodes, videos, slices, nnzPer int) (*topology.Graph, []float64, []float64, []VideoDemand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topology.Random(nodes, 1.2, seed)
	demands := make([]VideoDemand, videos)
	var total float64
	for v := range demands {
		d := VideoDemand{Video: v, SizeGB: 0.5 + float64(rng.Intn(4))/2, RateMbps: 2}
		total += d.SizeGB
		for j := 0; j < nodes; j++ {
			if rng.Intn(3) != 0 {
				d.Js = append(d.Js, int32(j))
				d.Agg = append(d.Agg, 1+rng.Float64()*9)
			}
		}
		d.Conc = make([][]float64, slices)
		for tt := range d.Conc {
			d.Conc[tt] = make([]float64, len(d.Js))
		}
		for z := 0; z < nnzPer && slices > 0 && len(d.Js) > 0; z++ {
			d.Conc[rng.Intn(slices)][rng.Intn(len(d.Js))] = float64(1 + rng.Intn(5))
		}
		demands[v] = d
	}
	disk := make([]float64, nodes)
	for i := range disk {
		disk[i] = total*2/float64(nodes) + 1 // +1 keeps empty catalogs valid
	}
	caps := make([]float64, g.NumLinks())
	for l := range caps {
		caps[l] = 100
	}
	return g, disk, caps, demands
}

// streamBuild runs the demands through an InstanceBuilder at the given shard
// size, reusing one staging demand the way the demand layer's streaming emit
// path does.
func streamBuild(t *testing.T, g *topology.Graph, disk, caps []float64, slices, shardSize int, demands []VideoDemand) *Instance {
	t.Helper()
	b, err := NewInstanceBuilder(g, disk, caps, slices, shardSize)
	if err != nil {
		t.Fatal(err)
	}
	stage := VideoDemand{Conc: make([][]float64, slices)}
	for vi := range demands {
		d := &demands[vi]
		stage.Video, stage.SizeGB, stage.RateMbps = d.Video, d.SizeGB, d.RateMbps
		stage.Js = append(stage.Js[:0], d.Js...)
		stage.Agg = append(stage.Agg[:0], d.Agg...)
		for tt := 0; tt < slices; tt++ {
			stage.Conc[tt] = append(stage.Conc[tt][:0], d.Conc[tt]...)
		}
		if err := b.Add(&stage); err != nil {
			t.Fatal(err)
		}
	}
	inst, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// assertInstancesEqual checks value identity of two instances down to the CSR
// nonzeros, bit for bit.
func assertInstancesEqual(t *testing.T, a, b *Instance) {
	t.Helper()
	if a.NumVideos() != b.NumVideos() {
		t.Fatalf("%d videos vs %d", a.NumVideos(), b.NumVideos())
	}
	for vi := range a.Demands {
		da, db := &a.Demands[vi], &b.Demands[vi]
		if da.Video != db.Video || da.SizeGB != db.SizeGB || da.RateMbps != db.RateMbps || len(da.Js) != len(db.Js) {
			t.Fatalf("video %d header mismatch", vi)
		}
		for k := range da.Js {
			if da.Js[k] != db.Js[k] || da.Agg[k] != db.Agg[k] {
				t.Fatalf("video %d demand %d differs", vi, k)
			}
			ta, fa := da.ConcNZ(k)
			tb, fb := db.ConcNZ(k)
			if len(ta) != len(tb) {
				t.Fatalf("video %d demand %d: %d vs %d nonzeros", vi, k, len(ta), len(tb))
			}
			for x := range ta {
				if ta[x] != tb[x] || fa[x] != fb[x] {
					t.Fatalf("video %d demand %d nonzero %d differs", vi, k, x)
				}
			}
		}
	}
	if la, lb := a.LowerBoundNoNetwork(), b.LowerBoundNoNetwork(); la != lb {
		t.Fatalf("trivial bounds differ: %.17g vs %.17g", la, lb)
	}
	for i := 0; i < a.G.NumNodes(); i++ {
		for j := 0; j < a.G.NumNodes(); j++ {
			if a.Cost(i, j) != b.Cost(i, j) {
				t.Fatalf("cost(%d,%d) differs", i, j)
			}
		}
	}
}

// The construction-path equivalence contract: streaming through the builder
// at any shard size yields the same instance the batch NewInstance path does,
// only the shard layout differs.
func TestBuilderStreamingMatchesBatch(t *testing.T) {
	g, disk, caps, demands := builderProblem(t, 3, 6, 40, 4, 6)
	batch, err := NewInstance(g, disk, caps, 4, demands)
	if err != nil {
		t.Fatal(err)
	}
	if batch.NumShards() != 1 {
		t.Fatalf("batch instance has %d shards, want 1", batch.NumShards())
	}
	for _, shardSize := range []int{0, 1, 3, 7, 40, 100} {
		streamed := streamBuild(t, g, disk, caps, 4, shardSize, demands)
		assertInstancesEqual(t, batch, streamed)
		want := 1
		if shardSize > 0 {
			want = (40 + shardSize - 1) / shardSize
		}
		if ns := streamed.NumShards(); ns != want {
			t.Errorf("shardSize=%d: %d shards, want %d", shardSize, ns, want)
		}
	}
}

func TestBuilderShardGeometry(t *testing.T) {
	g, disk, caps, demands := builderProblem(t, 5, 5, 8, 2, 3)
	inst := streamBuild(t, g, disk, caps, 2, 3, demands)
	wantRanges := [][2]int{{0, 3}, {3, 6}, {6, 8}}
	if inst.NumShards() != len(wantRanges) {
		t.Fatalf("%d shards, want %d", inst.NumShards(), len(wantRanges))
	}
	for si, want := range wantRanges {
		sh := inst.Shards[si]
		if sh.Lo != want[0] || sh.Hi != want[1] {
			t.Errorf("shard %d is [%d,%d), want [%d,%d)", si, sh.Lo, sh.Hi, want[0], want[1])
		}
		var nnz int64
		var size float64
		for vi := sh.Lo; vi < sh.Hi; vi++ {
			nnz += int64(inst.Demands[vi].NNZ())
			size += inst.Demands[vi].SizeGB
		}
		if nnz != sh.NNZ || size != sh.SizeGB {
			t.Errorf("shard %d tallies (%d, %g), recount (%d, %g)", si, sh.NNZ, sh.SizeGB, nnz, size)
		}
		if sd := inst.ShardDemands(si); len(sd) != sh.Videos() {
			t.Errorf("shard %d: ShardDemands returns %d rows for %d videos", si, len(sd), sh.Videos())
		}
	}
}

func TestBuilderLifecycleErrors(t *testing.T) {
	g, disk, caps, demands := builderProblem(t, 7, 4, 3, 1, 1)
	b, err := NewInstanceBuilder(g, disk, caps, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range demands {
		if err := b.Add(&demands[vi]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(&demands[0]); err == nil || !strings.Contains(err.Error(), "Add after Seal") {
		t.Errorf("Add after Seal: %v", err)
	}
	if _, err := b.Seal(); err == nil || !strings.Contains(err.Error(), "Seal called twice") {
		t.Errorf("second Seal: %v", err)
	}
}

func TestBuilderEmptyCatalog(t *testing.T) {
	g, disk, caps, _ := builderProblem(t, 7, 4, 0, 1, 0)
	b, err := NewInstanceBuilder(g, disk, caps, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumShards() != 1 || inst.Shards[0].Lo != 0 || inst.Shards[0].Hi != 0 {
		t.Errorf("empty catalog shards: %+v", inst.Shards)
	}
}

// The memory contract the streaming pipeline exists for: building through the
// builder with one reused dense staging row allocates far less than
// materializing the whole dense catalog first, because only CSR nonzeros are
// retained per video. The dense path's staging is O(videos × slices); the
// streaming path's is O(slices) + the nonzeros both must keep.
func TestBuilderPeakAllocBoundedByShard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const (
		seed   = 13
		nodes  = 8
		videos = 500
		slices = 48
		nnzPer = 2
	)
	// Generate once outside both measurements; the dense leg then re-copies
	// into its own dense catalog so the staging cost is attributed to it.
	g, disk, caps, demands := builderProblem(t, seed, nodes, videos, slices, nnzPer)

	var sink *Instance
	dense := measureAlloc(func() {
		// What a non-streaming caller must do: materialize every dense row.
		cat := make([]VideoDemand, len(demands))
		for vi := range demands {
			d := demands[vi]
			d.Js = append([]int32(nil), d.Js...)
			d.Agg = append([]float64(nil), d.Agg...)
			conc := make([][]float64, slices)
			for tt := range conc {
				conc[tt] = append([]float64(nil), d.Conc[tt]...)
			}
			d.Conc = conc
			cat[vi] = d
		}
		inst, err := NewInstance(g, disk, caps, slices, cat)
		if err != nil {
			t.Fatal(err)
		}
		sink = inst
	})
	stream := measureAlloc(func() {
		sink = streamBuild(t, g, disk, caps, slices, 64, demands)
	})
	_ = sink
	if stream*2 >= dense {
		t.Errorf("streaming build allocated %d bytes, dense %d; want well under half", stream, dense)
	}
}

func measureAlloc(f func()) uint64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}
