package mip

import "fmt"

// This file is the instance patch API behind the serving plane's delta
// resolve path (DESIGN.md §15). A built Instance is immutable by convention;
// ApplyDemandDelta is the one sanctioned mutation, and it is shaped so that
// patching video-by-video is exactly equivalent — bit for bit — to streaming
// the whole catalog through an InstanceBuilder again:
//
//   - validation is the shared validateDemand helper the builder uses, so a
//     profile the builder would reject, the patch rejects with the same
//     error (and leaves the instance untouched);
//   - the CSR concurrency view is built by the same buildConcCSR walk in the
//     same order, so concOff/concT/concV come out identical;
//   - the owning shard's NNZ tally is adjusted by the integer nonzero delta,
//     which matches the builder's per-shard integer sum regardless of the
//     order patches were applied in.
//
// Identity fields (Video, SizeGB, RateMbps) and the float SizeGB shard
// tallies are immutable under a patch: re-summing floats incrementally would
// break the bit-for-bit equivalence, and the serving plane's demand model
// never changes a video's size or rate anyway.

// Generation returns the number of in-place patches applied to the instance
// since construction. Derived state (route tables, cost snapshots, warm
// starts) can use it to detect that the instance value changed under them.
func (inst *Instance) Generation() uint64 { return inst.generation }

// ApplyDemandDelta replaces the demand profile of video index vi in place:
// js lists the offices with demand (strictly ascending), agg the aggregate
// requests per office, and conc the per-(slice, office) peak concurrency in
// the same dense staging shape InstanceBuilder.Add takes. The inputs are
// validated exactly as the builder validates them and copied into fresh
// backing arrays (the caller may reuse its slices), the CSR concurrency view
// is rebuilt, and the owning shard's NNZ tally is adjusted. On error the
// instance is unchanged.
//
// Only the demand-side fields (Js, Agg and the concurrency CSR) are written:
// Video, SizeGB and RateMbps are immutable under a patch, so concurrent
// readers of those identity fields (the serving data plane's snapshot
// handlers) never race with a patch. Patching itself is single-writer — the
// caller must serialize all calls on one goroutine.
//
// Valid only on constructed instances (NewInstance or InstanceBuilder);
// hand-built instances without a shard layout are rejected.
func (inst *Instance) ApplyDemandDelta(vi int, js []int32, agg []float64, conc [][]float64) error {
	if vi < 0 || vi >= len(inst.Demands) {
		return fmt.Errorf("mip: patch video index %d out of range [0,%d)", vi, len(inst.Demands))
	}
	if len(inst.Shards) == 0 {
		return fmt.Errorf("mip: ApplyDemandDelta on an instance without shards (not built by NewInstance or InstanceBuilder)")
	}
	old := &inst.Demands[vi]
	staged := VideoDemand{
		Video:    old.Video,
		SizeGB:   old.SizeGB,
		RateMbps: old.RateMbps,
		Js:       js,
		Agg:      agg,
		Conc:     conc,
	}
	if err := validateDemand(&staged, inst.G.NumNodes(), inst.Slices); err != nil {
		return err
	}

	// Copy-on-write: fresh backing arrays, identical to the builder's copy
	// path, so the caller's slices and any previously handed-out views of
	// the old row both stay valid.
	staged.Js = append([]int32(nil), js...)
	staged.Agg = append([]float64(nil), agg...)
	staged.buildConcCSR()
	staged.Conc = nil

	inst.Shards[inst.shardOf(vi)].NNZ += int64(len(staged.concT)) - int64(len(old.concT))
	old.Js = staged.Js
	old.Agg = staged.Agg
	old.Conc = nil
	old.concOff = staged.concOff
	old.concT = staged.concT
	old.concV = staged.concV
	inst.generation++
	return nil
}

// shardOf returns the index of the shard owning video index vi (shards are
// contiguous and sorted, so this is a binary search over their Hi bounds).
func (inst *Instance) shardOf(vi int) int {
	lo, hi := 0, len(inst.Shards)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if inst.Shards[mid].Hi <= vi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
