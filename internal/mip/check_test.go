package mip

import (
	"math"
	"testing"
)

// Edge-case coverage for Solution.Check and the tolerance constants it is
// used with. Check itself reports raw violation magnitudes; the tolerance
// policy (FeasTol, IntegralTol, SparseTol — documented in mip.go) is applied
// by callers, so these tests pin both the raw values and how they interact
// with the constants.

func TestCheckEmptyPlacement(t *testing.T) {
	inst := tinyInstance(t)
	sol := NewSolution(inst)
	v := sol.Check()
	if v.Unserved != 1 {
		t.Errorf("empty placement: Unserved = %g, want 1 (no demand row sums to 1)", v.Unserved)
	}
	if v.Disk != 0 || v.Link != 0 || v.XExceedsY != 0 {
		t.Errorf("empty placement shows capacity violations: %+v", v)
	}
	if sol.Objective() != 0 {
		t.Errorf("empty placement objective = %g, want 0", sol.Objective())
	}
	if !sol.IsIntegral(IntegralTol) {
		t.Error("empty placement should count as integral")
	}
}

func TestCheckEmptyPlacementZeroDemandVideo(t *testing.T) {
	g := pathGraph3(t)
	demands := []VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Conc: [][]float64{{}}}}
	inst, err := NewInstance(g, []float64{4, 4, 4}, caps(g, 100), 1, demands)
	if err != nil {
		t.Fatal(err)
	}
	sol := NewSolution(inst)
	if v := sol.Check(); v.Unserved != 1 {
		t.Errorf("unplaced zero-demand video: Unserved = %g, want 1 (Σy ≥ 1 missing)", v.Unserved)
	}
	sol.Videos[0].Open = []Frac{{I: 1, V: 1}}
	if v := sol.Check(); v.Max() != 0 {
		t.Errorf("stored zero-demand video still violates: %+v", sol.Check())
	}
}

// TestCheckFractionalTolerance drives x−y and Σx−1 just above and just below
// FeasTol: Check must report the raw deviation exactly, so a caller
// comparing against FeasTol accepts the sub-tolerance case and rejects the
// super-tolerance one.
func TestCheckFractionalTolerance(t *testing.T) {
	inst := tinyInstance(t)
	const above = 3 * FeasTol
	const below = FeasTol / 2
	for _, tc := range []struct {
		name string
		dev  float64
	}{
		{"above tolerance", above},
		{"below tolerance", below},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol := NewSolution(inst)
			// Serve both demand offices locally; office 0's x exceeds its y
			// by dev, and office 2's assignment under-serves by dev.
			sol.Videos[0].Open = []Frac{{I: 0, V: 1 - tc.dev}, {I: 2, V: 1}}
			sol.Videos[0].Assign[0] = []Frac{{I: 0, V: 1}}
			sol.Videos[0].Assign[1] = []Frac{{I: 2, V: 1 - tc.dev}}
			v := sol.Check()
			if math.Abs(v.XExceedsY-tc.dev) > 1e-15 {
				t.Errorf("XExceedsY = %g, want %g", v.XExceedsY, tc.dev)
			}
			if math.Abs(v.Unserved-tc.dev) > 1e-15 {
				t.Errorf("Unserved = %g, want %g", v.Unserved, tc.dev)
			}
			if pass := v.XExceedsY <= FeasTol; pass != (tc.dev < FeasTol) {
				t.Errorf("FeasTol acceptance = %v for deviation %g", pass, tc.dev)
			}
		})
	}
}

// TestIsIntegralTolerance: y within IntegralTol of 0 or 1 counts as
// integral; anything further does not.
func TestIsIntegralTolerance(t *testing.T) {
	inst := tinyInstance(t)
	sol := NewSolution(inst)
	sol.Videos[0].Open = []Frac{{I: 0, V: 1 - IntegralTol/2}, {I: 2, V: IntegralTol / 2}}
	if !sol.IsIntegral(IntegralTol) {
		t.Error("y within IntegralTol of {0,1} should be integral")
	}
	sol.Videos[0].Open[0].V = 1 - 10*IntegralTol
	if sol.IsIntegral(IntegralTol) {
		t.Error("y ten tolerances away from 1 should not be integral")
	}
}

// TestCheckZeroCapacityLink pins Check's behavior on hand-built instances
// with a zero-capacity link, which NewInstance rejects but serialized or
// synthetic instances can contain: an unused zero-capacity link is not a
// violation (0/0 → NaN compares false against the running max), while any
// flow across one reports +Inf.
func TestCheckZeroCapacityLink(t *testing.T) {
	g := pathGraph3(t)
	demands := []VideoDemand{{
		Video: 0, SizeGB: 1, RateMbps: 2,
		Js: []int32{0}, Agg: []float64{5}, Conc: [][]float64{{2}},
	}}
	inst := &Instance{
		G:           g,
		DiskGB:      []float64{4, 4, 4},
		LinkCapMbps: make([]float64, g.NumLinks()),
		Slices:      1,
		Demands:     demands,
		Alpha:       1,
	}
	inst.cacheHops()

	sol := NewSolution(inst)
	// Local service: no link carries flow.
	sol.Videos[0].Open = []Frac{{I: 0, V: 1}}
	sol.Videos[0].Assign[0] = []Frac{{I: 0, V: 1}}
	if v := sol.Check(); v.Link != 0 {
		t.Errorf("unused zero-capacity links: Link = %g, want 0", v.Link)
	}

	// Remote service: flow crosses a zero-capacity link.
	sol.Videos[0].Open = []Frac{{I: 2, V: 1}}
	sol.Videos[0].Assign[0] = []Frac{{I: 2, V: 1}}
	if v := sol.Check(); !math.IsInf(v.Link, 1) {
		t.Errorf("flow across a zero-capacity link: Link = %g, want +Inf", v.Link)
	}
}

// TestNewInstanceRejectsZeroCapacities documents that constructed instances
// can never reach the zero-capacity edge cases above.
func TestNewInstanceRejectsZeroCapacities(t *testing.T) {
	g := pathGraph3(t)
	demands := []VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Conc: [][]float64{{}}}}
	if _, err := NewInstance(g, []float64{4, 0, 4}, caps(g, 100), 1, demands); err == nil {
		t.Error("zero disk capacity accepted")
	}
	zero := caps(g, 100)
	zero[0] = 0
	if _, err := NewInstance(g, []float64{4, 4, 4}, zero, 1, demands); err == nil {
		t.Error("zero link capacity accepted")
	}
}
