package mip

import (
	"math"
	"strings"
	"testing"

	"vodplace/internal/topology"
)

// pathGraph3 returns the 3-office path 0-1-2.
func pathGraph3(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New("path3", 3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	return g
}

// tinyInstance: 3 offices in a path, one 1-GB video demanded 10x at office 0
// and 5x at office 2, one slice with concurrency 2 and 1.
func tinyInstance(t *testing.T) *Instance {
	t.Helper()
	g := pathGraph3(t)
	demands := []VideoDemand{{
		Video:    0,
		SizeGB:   1,
		RateMbps: 2,
		Js:       []int32{0, 2},
		Agg:      []float64{10, 5},
		Conc:     [][]float64{{2, 1}},
	}}
	inst, err := NewInstance(g, []float64{4, 4, 4}, caps(g, 100), 1, demands)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func caps(g *topology.Graph, c float64) []float64 {
	out := make([]float64, g.NumLinks())
	for i := range out {
		out[i] = c
	}
	return out
}

func TestNewInstanceValidation(t *testing.T) {
	g := pathGraph3(t)
	okDemand := []VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Js: []int32{0}, Agg: []float64{1}, Conc: [][]float64{{1}}}}
	cases := []struct {
		name    string
		disk    []float64
		link    []float64
		slices  int
		demands []VideoDemand
		wantErr string
	}{
		{"wrong disk count", []float64{1, 1}, caps(g, 1), 1, okDemand, "disk capacities"},
		{"zero disk", []float64{0, 1, 1}, caps(g, 1), 1, okDemand, "must be positive"},
		{"wrong link count", []float64{4, 4, 4}, []float64{1}, 1, okDemand, "link capacities"},
		{"zero link cap", []float64{4, 4, 4}, caps(g, 0), 1, okDemand, "must be positive"},
		{"negative slices", []float64{4, 4, 4}, caps(g, 1), -1, okDemand, "slice count"},
		{"bad video size", []float64{4, 4, 4}, caps(g, 1), 1,
			[]VideoDemand{{Video: 0, SizeGB: 0, RateMbps: 2}}, "size"},
		{"bad rate", []float64{4, 4, 4}, caps(g, 1), 1,
			[]VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 0}}, "rate"},
		{"agg mismatch", []float64{4, 4, 4}, caps(g, 1), 1,
			[]VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Js: []int32{0}, Agg: nil, Conc: [][]float64{{}}}}, "agg entries"},
		{"conc slice mismatch", []float64{4, 4, 4}, caps(g, 1), 2,
			[]VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Js: []int32{0}, Agg: []float64{1}, Conc: [][]float64{{1}}}}, "concurrency slices"},
		{"office out of range", []float64{4, 4, 4}, caps(g, 1), 1,
			[]VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Js: []int32{5}, Agg: []float64{1}, Conc: [][]float64{{1}}}}, "out of range"},
		{"unsorted offices", []float64{4, 4, 4}, caps(g, 1), 1,
			[]VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Js: []int32{1, 0}, Agg: []float64{1, 1}, Conc: [][]float64{{1, 1}}}}, "ascending"},
		{"negative demand", []float64{4, 4, 4}, caps(g, 1), 1,
			[]VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Js: []int32{0}, Agg: []float64{-1}, Conc: [][]float64{{1}}}}, "negative demand"},
		{"library too big", []float64{0.1, 0.1, 0.1}, caps(g, 1), 1, okDemand, "aggregate disk"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewInstance(g, c.disk, c.link, c.slices, c.demands)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	if _, err := NewInstance(nil, nil, nil, 0, nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestCost(t *testing.T) {
	inst := tinyInstance(t)
	inst.Alpha, inst.Beta = 2, 0.5
	if got := inst.Cost(0, 2); got != 2*2+0.5 {
		t.Errorf("Cost(0,2) = %g, want 4.5", got)
	}
	if got := inst.Cost(1, 1); got != 0.5 {
		t.Errorf("Cost(1,1) = %g, want 0.5 (local β)", got)
	}
	if got := inst.Hops(0, 2); got != 2 {
		t.Errorf("Hops(0,2) = %d, want 2", got)
	}
}

// storeAt builds an integral placement of the tiny instance's single video at
// the given office serving all demand.
func storeAt(inst *Instance, i int32) *Solution {
	s := NewSolution(inst)
	s.Videos[0].Open = []Frac{{I: i, V: 1}}
	for k := range inst.Demands[0].Js {
		s.Videos[0].Assign[k] = []Frac{{I: i, V: 1}}
	}
	return s
}

func TestObjective(t *testing.T) {
	inst := tinyInstance(t)
	// Store at office 1 (middle): office 0 pays hops 1 * 1GB * 10 req,
	// office 2 pays hops 1 * 1GB * 5 req. α=1, β=0.
	s := storeAt(inst, 1)
	if got := s.Objective(); math.Abs(got-15) > 1e-9 {
		t.Errorf("Objective = %g, want 15", got)
	}
	// Store at office 0: local for j=0 (0 cost), hops 2 for j=2.
	s = storeAt(inst, 0)
	if got := s.Objective(); math.Abs(got-10) > 1e-9 {
		t.Errorf("Objective = %g, want 10", got)
	}
	// β shifts everything by β·Σ s·a = 15β regardless of placement
	// (Proposition 5.1).
	inst.Beta = 1
	if got := storeAt(inst, 0).Objective(); math.Abs(got-25) > 1e-9 {
		t.Errorf("Objective with β=1 = %g, want 25", got)
	}
	inst.Beta = 0
}

func TestDiskAndLinkUsage(t *testing.T) {
	inst := tinyInstance(t)
	s := storeAt(inst, 0)
	disk := s.DiskUsage()
	if disk[0] != 1 || disk[1] != 0 || disk[2] != 0 {
		t.Errorf("DiskUsage = %v, want [1 0 0]", disk)
	}
	link := s.LinkUsage()
	if len(link) != 1 {
		t.Fatalf("slices = %d", len(link))
	}
	// Streams to office 2: rate 2 Mb/s × concurrency 1 over path 0->1->2.
	var used, unused int
	for l, u := range link[0] {
		lk := inst.G.Link(l)
		onPath := (lk.From == 0 && lk.To == 1) || (lk.From == 1 && lk.To == 2)
		if onPath {
			if math.Abs(u-2) > 1e-9 {
				t.Errorf("link %v usage %g, want 2", lk, u)
			}
			used++
		} else {
			if u != 0 {
				t.Errorf("link %v usage %g, want 0", lk, u)
			}
			unused++
		}
	}
	if used != 2 {
		t.Errorf("expected 2 used links, got %d", used)
	}
}

func TestFractionalAssignment(t *testing.T) {
	inst := tinyInstance(t)
	s := NewSolution(inst)
	// Copies at 0 and 2; office 0 served locally, office 2 splits 50/50.
	s.Videos[0].Open = []Frac{{0, 1}, {2, 1}}
	s.Videos[0].Assign[0] = []Frac{{0, 1}}
	s.Videos[0].Assign[1] = []Frac{{0, 0.5}, {2, 0.5}}
	// Objective: j=2 pays 0.5 × hops2 × 1GB × 5 = 5.
	if got := s.Objective(); math.Abs(got-5) > 1e-9 {
		t.Errorf("Objective = %g, want 5", got)
	}
	v := s.Check()
	if v.Max() > 1e-9 {
		t.Errorf("valid fractional solution flagged: %+v", v)
	}
	if s.IsIntegral(1e-6) {
		// y values are integral here even though x is fractional.
		t.Log("placement integral with fractional assignment (expected)")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	inst := tinyInstance(t)

	// Unserved demand.
	s := NewSolution(inst)
	s.Videos[0].Open = []Frac{{0, 1}}
	s.Videos[0].Assign[0] = []Frac{{0, 0.4}}
	s.Videos[0].Assign[1] = []Frac{{0, 1}}
	if v := s.Check(); math.Abs(v.Unserved-0.6) > 1e-9 {
		t.Errorf("Unserved = %g, want 0.6", v.Unserved)
	}

	// x exceeding y.
	s = NewSolution(inst)
	s.Videos[0].Open = []Frac{{0, 0.3}}
	s.Videos[0].Assign[0] = []Frac{{0, 1}}
	s.Videos[0].Assign[1] = []Frac{{0, 1}}
	if v := s.Check(); math.Abs(v.XExceedsY-0.7) > 1e-9 {
		t.Errorf("XExceedsY = %g, want 0.7", v.XExceedsY)
	}

	// Disk violation: shrink disk to 0.5 GB.
	inst2 := tinyInstance(t)
	inst2.DiskGB = []float64{0.5, 4, 4}
	s = storeAt(inst2, 0)
	if v := s.Check(); math.Abs(v.Disk-1) > 1e-9 { // 1/0.5 - 1 = 1
		t.Errorf("Disk violation = %g, want 1", v.Disk)
	}

	// Link violation: shrink link capacity to 1 Mb/s; flow is 2 Mb/s.
	inst3 := tinyInstance(t)
	for l := range inst3.LinkCapMbps {
		inst3.LinkCapMbps[l] = 1
	}
	s = storeAt(inst3, 0)
	if v := s.Check(); math.Abs(v.Link-1) > 1e-9 {
		t.Errorf("Link violation = %g, want 1", v.Link)
	}
}

func TestCheckUnplacedVideoWithNoDemand(t *testing.T) {
	g := pathGraph3(t)
	demands := []VideoDemand{{Video: 0, SizeGB: 1, RateMbps: 2, Conc: [][]float64{}}}
	inst, err := NewInstance(g, []float64{4, 4, 4}, caps(g, 10), 0, demands)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolution(inst)
	if v := s.Check(); math.Abs(v.Unserved-1) > 1e-9 {
		t.Errorf("unplaced zero-demand video: Unserved = %g, want 1", v.Unserved)
	}
	s.Videos[0].Open = []Frac{{1, 1}}
	if v := s.Check(); v.Max() > 1e-9 {
		t.Errorf("placed zero-demand video flagged: %+v", v)
	}
}

func TestCopiesAndIntegral(t *testing.T) {
	inst := tinyInstance(t)
	s := NewSolution(inst)
	s.Videos[0].Open = []Frac{{0, 1}, {1, 0.4}, {2, 0.7}}
	if got := s.Copies()[0]; got != 2 { // 1 and 0.7 count, 0.4 does not
		t.Errorf("Copies = %d, want 2", got)
	}
	if s.IsIntegral(1e-6) {
		t.Error("fractional y reported integral")
	}
	if got := s.TotalCopiesGB(); math.Abs(got-2.1) > 1e-9 {
		t.Errorf("TotalCopiesGB = %g, want 2.1", got)
	}
}

func TestUpdateCostObjective(t *testing.T) {
	inst := tinyInstance(t)
	inst.UpdateWeight = 1
	inst.Origin = []int32{2}
	s := storeAt(inst, 0)
	// Transfer objective 10 plus migration: 1 GB from origin 2 to 0 = hops 2.
	if got := s.Objective(); math.Abs(got-12) > 1e-9 {
		t.Errorf("Objective with update cost = %g, want 12", got)
	}
	if got := inst.PlacementCost(0, 2); got != 0 {
		t.Errorf("PlacementCost at origin = %g, want 0", got)
	}
}

func TestLowerBoundNoNetwork(t *testing.T) {
	inst := tinyInstance(t)
	inst.Beta = 0.5
	want := 0.5 * 1 * 15 // β · s · Σa
	if got := inst.LowerBoundNoNetwork(); math.Abs(got-want) > 1e-9 {
		t.Errorf("LowerBoundNoNetwork = %g, want %g", got, want)
	}
	// Any feasible solution must cost at least the bound.
	for i := int32(0); i < 3; i++ {
		if obj := storeAt(inst, i).Objective(); obj < want-1e-9 {
			t.Errorf("placement at %d costs %g below bound %g", i, obj, want)
		}
	}
}

func TestTotalDemandGB(t *testing.T) {
	d := VideoDemand{SizeGB: 2, Agg: []float64{3, 4}}
	if got := d.TotalDemandGB(); got != 14 {
		t.Errorf("TotalDemandGB = %g, want 14", got)
	}
}

func TestYAt(t *testing.T) {
	p := VideoPlacement{Open: []Frac{{1, 0.5}, {4, 1}}}
	if got := p.YAt(1); got != 0.5 {
		t.Errorf("YAt(1) = %g", got)
	}
	if got := p.YAt(2); got != 0 {
		t.Errorf("YAt(2) = %g, want 0", got)
	}
}
