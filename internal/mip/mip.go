// Package mip defines the content-placement optimization model of §V: the
// instance (inputs of Table I), placement solutions (decision variables
// y_i^m and x_ij^m), and exact evaluation of the objective (2) and the
// constraints (3)-(8).
//
// Solvers live elsewhere: internal/epf implements the Lagrangian /
// exponential-potential-function LP solver, internal/round the integer
// rounding pass, and internal/simplex the general-purpose LP baseline.
package mip

import (
	"math"

	"vodplace/internal/topology"
)

// Tolerance constants shared across the solver stack. Every layer that asks
// "is this integral / feasible / negligible" uses these values, collected
// here so the answers agree between the solvers, the verification layer and
// the tests.
const (
	// IntegralTol is the integrality tolerance: a y value within IntegralTol
	// of 0 or 1 counts as integral (Solution.IsIntegral, the epf rounding
	// pass's fractional-video detection).
	IntegralTol = 1e-6
	// FeasTol is the absolute slack allowed on the exact per-video
	// constraints — request conservation Σ_i x_ij^m = 1 and availability
	// x_ij^m ≤ y_i^m — which solvers maintain exactly up to floating-point
	// error. Coupling (disk/link) rows are instead judged against the
	// solver's configured ε band, not FeasTol.
	FeasTol = 1e-6
	// SparseTol is the magnitude below which a fractional entry is treated
	// as zero when extracting or pruning sparse solutions (e.g. the simplex
	// extraction path).
	SparseTol = 1e-9
)

// VideoDemand is the demand side of one video m: the offices that request it,
// the aggregate request counts a_j^m over the modeling period, and the
// concurrent-stream counts f_j^m(t) for each enforced time slice t.
type VideoDemand struct {
	// Video is the library id of the video (used for reporting; the solver
	// itself treats videos positionally).
	Video int
	// SizeGB is s^m, the storage footprint.
	SizeGB float64
	// RateMbps is r^m, the streaming rate.
	RateMbps float64
	// Js lists the offices with nonzero demand, ascending.
	Js []int32
	// Agg[k] is a_j^m for j = Js[k].
	Agg []float64
	// Conc[t][k] is f_j^m(t) for j = Js[k] and time slice t. Conc is an
	// input-side staging field: construction (NewInstance, InstanceBuilder.Add)
	// reads it once to build the CSR view below and then drops it, so demands
	// of a built instance carry only their nonzeros — readers use ConcNZ or
	// ConcAt. Hand-built instances that skip construction may keep Conc dense;
	// the evaluators in this package fall back to it when no CSR exists.
	Conc [][]float64

	// Sparse view of Conc in CSR form, built at construction: for demand
	// index k, the slices t with f_j^m(t) ≠ 0 are concT[concOff[k]:concOff[k+1]]
	// (ascending) with matching values in concV. Most videos are active in
	// only a few enforced slices, so the solver's hot kernels iterate these
	// instead of scanning a dense matrix.
	concOff []int32
	concT   []int32
	concV   []float64
}

// ConcNZ returns the nonzero time slices for demand index k (ascending) and
// their concurrency values, as parallel slices. Valid only on demands of a
// constructed Instance (NewInstance or InstanceBuilder); callers must not
// modify the results.
func (d *VideoDemand) ConcNZ(k int) (slices []int32, values []float64) {
	lo, hi := d.concOff[k], d.concOff[k+1]
	return d.concT[lo:hi:hi], d.concV[lo:hi:hi]
}

// ConcAt returns f_j^m(t) for demand index k, scanning the CSR row (falling
// back to the dense staging on hand-built demands without one). Per-column
// nonzero counts are tiny — |T| is 2 in the deployed configuration — so the
// linear scan is the right trade for consumers that genuinely need random
// access, like the dense-simplex constraint builder.
func (d *VideoDemand) ConcAt(t, k int) float64 {
	if d.concOff == nil {
		return d.Conc[t][k]
	}
	ts, vs := d.ConcNZ(k)
	for i, tt := range ts {
		if int(tt) == t {
			return vs[i]
		}
		if int(tt) > t {
			break
		}
	}
	return 0
}

// NNZ returns the number of stored concurrency nonzeros across all of the
// demand's offices and slices.
func (d *VideoDemand) NNZ() int { return len(d.concT) }

// buildConcCSR fills the sparse concurrency view from Conc.
func (d *VideoDemand) buildConcCSR() {
	K := len(d.Js)
	d.concOff = make([]int32, K+1)
	nz := 0
	for _, row := range d.Conc {
		for _, f := range row {
			if f != 0 {
				nz++
			}
		}
	}
	d.concT = make([]int32, 0, nz)
	d.concV = make([]float64, 0, nz)
	for k := 0; k < K; k++ {
		for t, row := range d.Conc {
			if f := row[k]; f != 0 {
				d.concT = append(d.concT, int32(t))
				d.concV = append(d.concV, f)
			}
		}
		d.concOff[k+1] = int32(len(d.concT))
	}
}

// TotalDemandGB returns s^m · Σ_j a_j^m, the total gigabytes requested.
func (d *VideoDemand) TotalDemandGB() float64 {
	var a float64
	for _, v := range d.Agg {
		a += v
	}
	return a * d.SizeGB
}

// Instance is a complete placement problem (Table I).
type Instance struct {
	// G provides V, L and the fixed paths P_ij.
	G *topology.Graph
	// DiskGB[i] is D_i.
	DiskGB []float64
	// LinkCapMbps[l] is B_l for directed link l.
	LinkCapMbps []float64
	// Slices is |T|, the number of enforced time slices.
	Slices int
	// Demands holds one entry per video in the instance. Videos with no
	// demand still require at least one stored copy (constraints (3)+(4)).
	Demands []VideoDemand
	// Shards partitions Demands into contiguous video ranges — the catalog
	// decomposition the solver stack schedules and accounts by. Instances
	// from NewInstance carry a single shard spanning the whole catalog;
	// InstanceBuilder seals one shard per ShardSize videos. Sharding is a
	// data/scheduling decomposition only: it never changes numeric output.
	Shards []InstanceShard
	// Alpha and Beta are the cost coefficients of (1): c_ij = α|P_ij| + β.
	Alpha, Beta float64

	// UpdateWeight is w in objective (11); when positive, placing a copy of
	// video m at office i adds w·s^m·c(origin(m), i) to the objective.
	UpdateWeight float64
	// Origin[v] is the office holding video v before this placement round
	// (nearest copy), used with UpdateWeight. Empty means office 0. A
	// negative entry marks a video with no prior copy (e.g. a new release):
	// its placement incurs no migration cost anywhere, rather than being
	// charged a spurious transfer away from office 0.
	Origin []int32

	hops []int16 // cached hop counts, row-major [i*n+j]

	// generation counts the in-place demand patches applied through
	// ApplyDemandDelta since construction (0 on a freshly built instance).
	// Patched rows get fresh backing arrays (copy-on-write), so slices read
	// from a demand before a patch stay valid; the counter is how a caller
	// holding derived state (route tables, warm starts) detects that the
	// instance value moved on. Single-writer: patches and the counter are
	// not synchronized, so all mutation must come from one goroutine.
	generation uint64

	// costT is the dense transfer-cost matrix in j-major (destination-major)
	// layout: costT[j*n+i] = c_ij = α|P_ij| + β. Block pricing walks a fixed
	// destination j over all sources i, so the column layout keeps that scan
	// contiguous. The table is lazily (re)built by CostColumns against the
	// (Alpha, Beta) pair it was computed from, because tests and the verify
	// harness mutate Alpha/Beta after NewInstance.
	costT               []float64
	costAlpha, costBeta float64
}

// NewInstance validates and finalizes an instance. The graph must be built;
// capacities must be positive; demand entries must be internally consistent.
//
// NewInstance is a thin wrapper over InstanceBuilder: it streams the given
// demands through the same validation and CSR conversion (adopting each
// entry's Js/Agg slices rather than copying them) and seals a single shard.
// The dense Conc staging rows are not retained on the result.
func NewInstance(g *topology.Graph, diskGB, linkCapMbps []float64, slices int, demands []VideoDemand) (*Instance, error) {
	b, err := NewInstanceBuilder(g, diskGB, linkCapMbps, slices, 0)
	if err != nil {
		return nil, err
	}
	b.demands = make([]VideoDemand, 0, len(demands))
	for vi := range demands {
		if err := b.add(&demands[vi], false); err != nil {
			return nil, err
		}
	}
	return b.Seal()
}

func (inst *Instance) cacheHops() {
	n := inst.G.NumNodes()
	inst.hops = make([]int16, n*n)
	for i := 0; i < n; i++ {
		row := inst.hops[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = int16(inst.G.Hops(i, j))
		}
	}
}

// CostColumns returns the dense j-major cost table: the returned slice has
// length n², with entry [j*n+i] equal to Cost(i, j), computed by the same
// expression so table lookups are bit-identical to direct calls. The table is
// rebuilt if Alpha or Beta changed since the last call. Not safe for
// concurrent mutation — callers obtain it once, serially, before fanning out
// (the epf solver does so in newSolver), and must not modify the result.
func (inst *Instance) CostColumns() []float64 {
	n := inst.G.NumNodes()
	if inst.costT != nil && inst.costAlpha == inst.Alpha && inst.costBeta == inst.Beta {
		return inst.costT
	}
	if inst.costT == nil {
		inst.costT = make([]float64, n*n)
	}
	for j := 0; j < n; j++ {
		col := inst.costT[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			col[i] = inst.Alpha*float64(inst.hops[i*n+j]) + inst.Beta
		}
	}
	inst.costAlpha, inst.costBeta = inst.Alpha, inst.Beta
	return inst.costT
}

// NumVHOs returns |V|.
func (inst *Instance) NumVHOs() int { return inst.G.NumNodes() }

// NumVideos returns |M|.
func (inst *Instance) NumVideos() int { return len(inst.Demands) }

// Cost returns c_ij = α|P_ij| + β.
func (inst *Instance) Cost(i, j int) float64 {
	return inst.Alpha*float64(inst.hops[i*inst.G.NumNodes()+j]) + inst.Beta
}

// Hops returns |P_ij| from the cached table.
func (inst *Instance) Hops(i, j int) int { return int(inst.hops[i*inst.G.NumNodes()+j]) }

// originOf returns the origin office for video index vi under the update-cost
// objective.
func (inst *Instance) originOf(vi int) int {
	if len(inst.Origin) == 0 {
		return 0
	}
	return int(inst.Origin[vi])
}

// PlacementCost returns the objective (11) term for storing video index vi
// at office i: w·s^m·c(origin, i). Zero when UpdateWeight is zero, and zero
// for videos with no prior copy (negative origin) — there is nothing to
// migrate, so the update term exempts them.
func (inst *Instance) PlacementCost(vi, i int) float64 {
	if inst.UpdateWeight == 0 {
		return 0
	}
	o := inst.originOf(vi)
	if o < 0 {
		return 0
	}
	return inst.UpdateWeight * inst.Demands[vi].SizeGB * inst.Cost(o, i)
}

// Frac is one sparse coefficient: office I with value V.
type Frac struct {
	I int32
	V float64
}

// VideoPlacement is the solution restricted to one video: fractional (or
// integral) storage decisions and request assignments.
type VideoPlacement struct {
	// Open holds the nonzero y_i^m entries, ascending by office.
	Open []Frac
	// Assign[k] holds the nonzero x_ij^m for j = Js[k], ascending by office.
	Assign [][]Frac
}

// YAt returns y_i^m.
func (p *VideoPlacement) YAt(i int) float64 {
	for _, f := range p.Open {
		if int(f.I) == i {
			return f.V
		}
	}
	return 0
}

// Solution is a complete placement: one VideoPlacement per instance video.
type Solution struct {
	Inst   *Instance
	Videos []VideoPlacement
}

// NewSolution returns an empty (all-zero) solution shell for inst.
func NewSolution(inst *Instance) *Solution {
	s := &Solution{Inst: inst, Videos: make([]VideoPlacement, len(inst.Demands))}
	for vi := range s.Videos {
		s.Videos[vi].Assign = make([][]Frac, len(inst.Demands[vi].Js))
	}
	return s
}

// Objective returns the transfer-cost objective (2) plus, when UpdateWeight
// is set, the placement-transfer term of (11).
func (s *Solution) Objective() float64 {
	var total float64
	for vi := range s.Videos {
		d := &s.Inst.Demands[vi]
		p := &s.Videos[vi]
		for k, fr := range p.Assign {
			j := int(d.Js[k])
			coef := d.SizeGB * d.Agg[k]
			for _, f := range fr {
				total += coef * s.Inst.Cost(int(f.I), j) * f.V
			}
		}
		if s.Inst.UpdateWeight != 0 {
			for _, f := range p.Open {
				total += s.Inst.PlacementCost(vi, int(f.I)) * f.V
			}
		}
	}
	return total
}

// DiskUsage returns per-office storage use Σ_m s^m y_i^m in GB.
func (s *Solution) DiskUsage() []float64 {
	use := make([]float64, s.Inst.NumVHOs())
	for vi := range s.Videos {
		size := s.Inst.Demands[vi].SizeGB
		for _, f := range s.Videos[vi].Open {
			use[f.I] += size * f.V
		}
	}
	return use
}

// LinkUsage returns per-(link, slice) bandwidth use in Mb/s:
// Σ_m Σ_{i,j: l ∈ P_ij} r^m f_j^m(t) x_ij^m.
func (s *Solution) LinkUsage() [][]float64 {
	use := make([][]float64, s.Inst.Slices)
	for t := range use {
		use[t] = make([]float64, s.Inst.G.NumLinks())
	}
	if s.Inst.Slices == 0 {
		return use
	}
	for vi := range s.Videos {
		d := &s.Inst.Demands[vi]
		p := &s.Videos[vi]
		for k, fr := range p.Assign {
			j := int(d.Js[k])
			for _, f := range fr {
				if int(f.I) == j {
					continue
				}
				path := s.Inst.G.Path(int(f.I), j)
				if d.concOff != nil {
					// CSR rows visit the same nonzeros in the same ascending-t
					// order the dense loop did, so the accumulation is
					// bit-identical.
					ts, fv := d.ConcNZ(k)
					for i, tt := range ts {
						flow := d.RateMbps * fv[i] * f.V
						if flow == 0 {
							continue
						}
						for _, l := range path {
							use[int(tt)][l] += flow
						}
					}
					continue
				}
				for t := 0; t < s.Inst.Slices; t++ {
					flow := d.RateMbps * d.Conc[t][k] * f.V
					if flow == 0 {
						continue
					}
					for _, l := range path {
						use[t][l] += flow
					}
				}
			}
		}
	}
	return use
}

// Violation summarizes constraint violations of a solution.
type Violation struct {
	// Disk is the maximum relative disk overuse: max_i use_i/D_i − 1
	// (0 if all within capacity).
	Disk float64
	// Link is the maximum relative link overuse across slices.
	Link float64
	// Unserved is the maximum absolute deviation of Σ_i x_ij^m from 1.
	Unserved float64
	// XExceedsY is the maximum of x_ij^m − y_i^m over all entries.
	XExceedsY float64
}

// Max returns the largest violation component.
func (v Violation) Max() float64 {
	return math.Max(math.Max(v.Disk, v.Link), math.Max(v.Unserved, v.XExceedsY))
}

// Check computes all constraint violations.
func (s *Solution) Check() Violation {
	var out Violation
	disk := s.DiskUsage()
	for i, u := range disk {
		rel := u/s.Inst.DiskGB[i] - 1
		if rel > out.Disk {
			out.Disk = rel
		}
	}
	link := s.LinkUsage()
	for t := range link {
		for l, u := range link[t] {
			rel := u/s.Inst.LinkCapMbps[l] - 1
			if rel > out.Link {
				out.Link = rel
			}
		}
	}
	for vi := range s.Videos {
		d := &s.Inst.Demands[vi]
		p := &s.Videos[vi]
		y := make(map[int32]float64, len(p.Open))
		for _, f := range p.Open {
			y[f.I] = f.V
		}
		for k := range d.Js {
			var sum float64
			for _, f := range p.Assign[k] {
				sum += f.V
				if ex := f.V - y[f.I]; ex > out.XExceedsY {
					out.XExceedsY = ex
				}
			}
			if dev := math.Abs(sum - 1); dev > out.Unserved {
				out.Unserved = dev
			}
		}
		// Every video needs at least one (fractional unit of) copy.
		var ysum float64
		for _, f := range p.Open {
			ysum += f.V
		}
		if len(d.Js) == 0 {
			if dev := 1 - ysum; dev > out.Unserved {
				out.Unserved = dev
			}
		}
	}
	return out
}

// IsIntegral reports whether every y_i^m is 0 or 1 (within tol).
func (s *Solution) IsIntegral(tol float64) bool {
	for vi := range s.Videos {
		for _, f := range s.Videos[vi].Open {
			if f.V > tol && f.V < 1-tol {
				return false
			}
		}
	}
	return true
}

// Copies returns the number of offices storing each video (counting y ≥ 0.5
// for fractional solutions).
func (s *Solution) Copies() []int {
	out := make([]int, len(s.Videos))
	for vi := range s.Videos {
		for _, f := range s.Videos[vi].Open {
			if f.V >= 0.5 {
				out[vi]++
			}
		}
	}
	return out
}

// TotalCopiesGB returns the storage consumed by the placement in GB.
func (s *Solution) TotalCopiesGB() float64 {
	var total float64
	for _, u := range s.DiskUsage() {
		total += u
	}
	return total
}

// LowerBoundNoNetwork returns the trivial objective lower bound β·Σ s^m a_j^m
// obtained by pretending every request is served locally (plus the update
// term's minimum when enabled). Every feasible solution costs at least this.
func (inst *Instance) LowerBoundNoNetwork() float64 {
	var total float64
	for vi := range inst.Demands {
		d := &inst.Demands[vi]
		for _, a := range d.Agg {
			total += inst.Beta * d.SizeGB * a
		}
		if inst.UpdateWeight != 0 {
			best := math.Inf(1)
			for i := 0; i < inst.NumVHOs(); i++ {
				if c := inst.PlacementCost(vi, i); c < best {
					best = c
				}
			}
			total += best
		}
	}
	return total
}
