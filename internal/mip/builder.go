package mip

import (
	"fmt"

	"vodplace/internal/topology"
)

// InstanceShard is one contiguous video range of an Instance: the unit the
// solver stack schedules, accounts and reports independently. The shared
// per-network state (graph, paths, capacities, cost tables) lives on the
// Instance; a shard owns only catalog-dimension state — its demand rows with
// their Conc CSR, and (via ShardOrigins) its slice of the origin vector.
type InstanceShard struct {
	// Lo, Hi delimit the shard's video index range [Lo, Hi) in Demands.
	Lo, Hi int
	// NNZ is the number of concurrency nonzeros stored across the range —
	// the shard's memory footprint is O(NNZ + videos), never O(slices×videos),
	// because the dense Conc staging is dropped as each video is added.
	NNZ int64
	// SizeGB is the total storage footprint of the range's videos.
	SizeGB float64
}

// Videos returns the number of videos in the shard.
func (sh InstanceShard) Videos() int { return sh.Hi - sh.Lo }

// NumShards returns the number of catalog shards (always ≥ 1 for instances
// built by NewInstance or an InstanceBuilder).
func (inst *Instance) NumShards() int { return len(inst.Shards) }

// ShardDemands returns the demand rows of shard s as a view into Demands.
func (inst *Instance) ShardDemands(s int) []VideoDemand {
	sh := inst.Shards[s]
	return inst.Demands[sh.Lo:sh.Hi]
}

// ShardOrigins returns shard s's slice of the origin vector, or nil when the
// instance has no origin vector (no prior placement).
func (inst *Instance) ShardOrigins(s int) []int32 {
	if len(inst.Origin) == 0 {
		return nil
	}
	sh := inst.Shards[s]
	return inst.Origin[sh.Lo:sh.Hi]
}

// InstanceBuilder assembles an Instance incrementally: demands stream in one
// at a time through Add and the builder seals them into contiguous shards,
// so no dense all-video intermediate ever exists. Each added video's dense
// Conc staging is converted to its CSR form immediately and only the CSR is
// retained — peak transient memory is one video's dense rows plus the sealed
// shards' nonzeros, bounded by shard size rather than catalog size.
//
// Add validates exactly as NewInstance does (same checks, same messages, in
// the same order), and NewInstance itself is a thin wrapper over a builder,
// so the streaming and batch construction paths cannot drift.
type InstanceBuilder struct {
	g           *topology.Graph
	diskGB      []float64
	linkCapMbps []float64
	slices      int
	shardSize   int

	demands []VideoDemand
	shards  []InstanceShard
	curLo   int
	curNNZ  int64
	curSize float64

	totalSize float64
	sealed    bool
}

// NewInstanceBuilder validates the shared per-network state and returns an
// empty builder. shardSize is the number of videos per sealed shard; values
// ≤ 0 build a single shard covering the whole catalog (exactly NewInstance's
// layout).
func NewInstanceBuilder(g *topology.Graph, diskGB, linkCapMbps []float64, slices, shardSize int) (*InstanceBuilder, error) {
	if g == nil || !g.Built() {
		return nil, fmt.Errorf("mip: graph must be non-nil and built")
	}
	n := g.NumNodes()
	if len(diskGB) != n {
		return nil, fmt.Errorf("mip: %d disk capacities for %d offices", len(diskGB), n)
	}
	for i, d := range diskGB {
		if d <= 0 {
			return nil, fmt.Errorf("mip: disk capacity at office %d must be positive, got %g", i, d)
		}
	}
	if len(linkCapMbps) != g.NumLinks() {
		return nil, fmt.Errorf("mip: %d link capacities for %d links", len(linkCapMbps), g.NumLinks())
	}
	for l, b := range linkCapMbps {
		if b <= 0 {
			return nil, fmt.Errorf("mip: capacity of link %d must be positive, got %g", l, b)
		}
	}
	if slices < 0 {
		return nil, fmt.Errorf("mip: negative slice count %d", slices)
	}
	return &InstanceBuilder{
		g:           g,
		diskGB:      diskGB,
		linkCapMbps: linkCapMbps,
		slices:      slices,
		shardSize:   shardSize,
	}, nil
}

// NumAdded returns the number of demands accepted so far.
func (b *InstanceBuilder) NumAdded() int { return len(b.demands) }

// validateDemand checks one staged demand against the instance dimensions
// (n offices, slices enforced time slices): positive size and rate, matching
// Js/Agg/Conc shapes, strictly ascending in-range offices, non-negative
// aggregates. Every construction route — InstanceBuilder.Add, NewInstance
// through it, and the in-place patch Instance.ApplyDemandDelta — runs this
// one helper, so the checks, messages and their order cannot drift between
// the streaming, batch and patch paths.
func validateDemand(d *VideoDemand, n, slices int) error {
	if d.SizeGB <= 0 {
		return fmt.Errorf("mip: video %d has non-positive size %g", d.Video, d.SizeGB)
	}
	if d.RateMbps <= 0 {
		return fmt.Errorf("mip: video %d has non-positive rate %g", d.Video, d.RateMbps)
	}
	if len(d.Agg) != len(d.Js) {
		return fmt.Errorf("mip: video %d has %d agg entries for %d offices", d.Video, len(d.Agg), len(d.Js))
	}
	if len(d.Conc) != slices {
		return fmt.Errorf("mip: video %d has %d concurrency slices, want %d", d.Video, len(d.Conc), slices)
	}
	for t := range d.Conc {
		if len(d.Conc[t]) != len(d.Js) {
			return fmt.Errorf("mip: video %d slice %d has %d entries for %d offices", d.Video, t, len(d.Conc[t]), len(d.Js))
		}
	}
	for k, j := range d.Js {
		if j < 0 || int(j) >= n {
			return fmt.Errorf("mip: video %d demand office %d out of range", d.Video, j)
		}
		if k > 0 && d.Js[k-1] >= j {
			return fmt.Errorf("mip: video %d demand offices not strictly ascending", d.Video)
		}
		if d.Agg[k] < 0 {
			return fmt.Errorf("mip: video %d has negative demand at office %d", d.Video, j)
		}
	}
	return nil
}

// Add validates one video demand and appends it to the instance under
// construction. The demand's Js, Agg and dense Conc staging are copied (Conc
// as CSR nonzeros only), so callers may reuse d — including its backing
// slices — for the next video. Demands keep their Add order, which is the
// instance's video index order.
func (b *InstanceBuilder) Add(d *VideoDemand) error {
	return b.add(d, true)
}

// add is Add with an ownership flag: with copyData false the demand's Js and
// Agg slices are adopted rather than copied (the NewInstance wrapper, which
// owns its input slice, uses this to keep the batch path allocation-neutral).
func (b *InstanceBuilder) add(d *VideoDemand, copyData bool) error {
	if b.sealed {
		return fmt.Errorf("mip: Add after Seal")
	}
	if err := validateDemand(d, b.g.NumNodes(), b.slices); err != nil {
		return err
	}

	nd := VideoDemand{
		Video:    d.Video,
		SizeGB:   d.SizeGB,
		RateMbps: d.RateMbps,
		Js:       d.Js,
		Agg:      d.Agg,
	}
	if copyData {
		nd.Js = append([]int32(nil), d.Js...)
		nd.Agg = append([]float64(nil), d.Agg...)
	}
	// CSR only: the dense staging rows in d.Conc are read once here and never
	// retained, so shard memory is bounded by the shard's nonzeros.
	nd.Conc = d.Conc
	nd.buildConcCSR()
	nd.Conc = nil

	b.totalSize += nd.SizeGB
	b.curSize += nd.SizeGB
	b.curNNZ += int64(len(nd.concT))
	b.demands = append(b.demands, nd)
	if b.shardSize > 0 && len(b.demands)-b.curLo >= b.shardSize {
		b.closeShard()
	}
	return nil
}

func (b *InstanceBuilder) closeShard() {
	b.shards = append(b.shards, InstanceShard{
		Lo:     b.curLo,
		Hi:     len(b.demands),
		NNZ:    b.curNNZ,
		SizeGB: b.curSize,
	})
	b.curLo = len(b.demands)
	b.curNNZ = 0
	b.curSize = 0
}

// Seal closes the final shard, checks the aggregate-capacity invariant and
// returns the finished instance. The builder must not be used afterwards.
func (b *InstanceBuilder) Seal() (*Instance, error) {
	if b.sealed {
		return nil, fmt.Errorf("mip: Seal called twice")
	}
	b.sealed = true
	var totalDisk float64
	for _, d := range b.diskGB {
		totalDisk += d
	}
	if b.totalSize > totalDisk {
		return nil, fmt.Errorf("mip: library needs %.1f GB for one copy of each video but aggregate disk is %.1f GB", b.totalSize, totalDisk)
	}
	// Close the tail shard; an instance always has at least one shard, even
	// when empty, so shard-iterating code needs no special case.
	if len(b.demands) > b.curLo || len(b.shards) == 0 {
		b.closeShard()
	}
	inst := &Instance{
		G:           b.g,
		DiskGB:      b.diskGB,
		LinkCapMbps: b.linkCapMbps,
		Slices:      b.slices,
		Demands:     b.demands,
		Shards:      b.shards,
		Alpha:       1,
		Beta:        0,
	}
	inst.cacheHops()
	return inst, nil
}
