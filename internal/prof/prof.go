// Package prof wires the standard pprof/trace collectors into the CLIs.
//
// Every binary that runs the solver accepts the same three flags
// (-cpuprofile, -memprofile, -traceprofile); Start opens whichever outputs
// were requested and returns a single Stop to flush them on the way out.
// Profiles are written with the stock runtime encoders, so the files feed
// directly into `go tool pprof` and `go tool trace`.
package prof

import (
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the three output paths. Empty means "don't collect".
type Flags struct {
	CPU   string
	Mem   string
	Trace string
}

// Register installs the standard profiling flags on fs (the default
// flag.CommandLine in the CLIs) and returns the destination struct to pass
// to Start after fs has been parsed.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "traceprofile", "", "write a runtime execution trace to this file")
	return f
}

// Routes installs the live pprof handlers (/debug/pprof/*) on mux. The
// debug HTTP endpoint uses its own mux rather than http.DefaultServeMux,
// so the handlers net/http/pprof registers on import never become
// reachable by accident; this wires them explicitly.
func Routes(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// Start begins whichever collectors f requests. The returned Stop must run
// exactly once before the process exits (defer it right after a successful
// Start); it stops the CPU profile and trace and takes the heap snapshot.
// On error every partially opened collector is shut down before returning,
// so the caller never has to clean up.
func Start(f *Flags) (stop func() error, err error) {
	var cleanup []func() error
	fail := func(err error) (func() error, error) {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]() //nolint:errcheck // already failing; report the first error
		}
		return nil, err
	}

	if f.CPU != "" {
		out, err := os.Create(f.CPU)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(out); err != nil {
			out.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		cleanup = append(cleanup, func() error {
			pprof.StopCPUProfile()
			return out.Close()
		})
	}
	if f.Trace != "" {
		out, err := os.Create(f.Trace)
		if err != nil {
			return fail(fmt.Errorf("traceprofile: %w", err))
		}
		if err := trace.Start(out); err != nil {
			out.Close()
			return fail(fmt.Errorf("traceprofile: %w", err))
		}
		cleanup = append(cleanup, func() error {
			trace.Stop()
			return out.Close()
		})
	}
	if f.Mem != "" {
		path := f.Mem
		cleanup = append(cleanup, func() error {
			out, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			// One final GC so the snapshot reflects live steady-state heap,
			// not garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(out); err != nil {
				out.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			return out.Close()
		})
	}

	return func() error {
		var first error
		for i := len(cleanup) - 1; i >= 0; i-- {
			if err := cleanup[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
