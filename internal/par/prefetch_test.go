package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPrefetchOrder(t *testing.T) {
	p := NewPrefetch(context.Background(), 10, func(i int) (int, error) {
		return i * i, nil
	})
	defer p.Close()
	for i := 0; i < 10; i++ {
		v, err := p.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if v != i*i {
			t.Fatalf("Next(%d) = %d, want %d", i, v, i*i)
		}
	}
	if _, err := p.Next(); !errors.Is(err, ErrPrefetchDone) {
		t.Fatalf("Next after end: %v, want ErrPrefetchDone", err)
	}
	// Exhaustion is stable.
	if _, err := p.Next(); !errors.Is(err, ErrPrefetchDone) {
		t.Fatalf("second Next after end: %v, want ErrPrefetchDone", err)
	}
}

func TestPrefetchBackpressure(t *testing.T) {
	var produced atomic.Int64
	p := NewPrefetch(context.Background(), 100, func(i int) (int, error) {
		produced.Add(1)
		return i, nil
	})
	defer p.Close()
	// Consume one item, then give the producer time to run ahead. With a
	// capacity-1 buffer it can have completed at most item 0 (consumed),
	// item 1 (buffered) and item 2 (computed, blocked in deliver): ≤ 3.
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := produced.Load(); n > 3 {
		t.Fatalf("producer ran %d items ahead, want bounded one-ahead (≤3)", n)
	}
}

func TestPrefetchProduceError(t *testing.T) {
	boom := errors.New("boom")
	p := NewPrefetch(context.Background(), 5, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	defer p.Close()
	for i := 0; i < 2; i++ {
		if _, err := p.Next(); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
	}
	if _, err := p.Next(); !errors.Is(err, boom) {
		t.Fatalf("Next(2): %v, want produce error", err)
	}
	// The error ends the sequence; items 3 and 4 are never produced.
	if _, err := p.Next(); !errors.Is(err, ErrPrefetchDone) {
		t.Fatalf("Next after error: %v, want ErrPrefetchDone", err)
	}
}

func TestPrefetchContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	p := NewPrefetch(ctx, 5, func(i int) (int, error) {
		if i == 1 {
			close(started)
			<-release
		}
		return i, nil
	})
	defer p.Close()
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	close(release)
	// After cancellation the sequence ends with either the context error
	// (if the cancellation check delivered it) or ErrPrefetchDone (if the
	// producer abandoned an in-flight send) — never a fabricated value
	// beyond what was produced.
	for {
		_, err := p.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrPrefetchDone) {
			t.Fatalf("Next after cancel: %v", err)
		}
		break
	}
}

func TestPrefetchCloseUnblocksProducer(t *testing.T) {
	done := make(chan struct{})
	p := NewPrefetch(context.Background(), 1000, func(i int) (int, error) {
		if i == 999 {
			close(done)
		}
		return i, nil
	})
	// Consume nothing: the producer fills the buffer and blocks in deliver.
	p.Close()
	select {
	case <-done:
		t.Fatal("producer ran to completion despite Close")
	default:
	}
	// Close is idempotent and Next after Close reports exhaustion.
	p.Close()
	if _, err := p.Next(); !errors.Is(err, ErrPrefetchDone) {
		t.Fatalf("Next after Close: %v, want ErrPrefetchDone", err)
	}
}
