package par

import (
	"context"
	"errors"
	"sync"
)

// ErrPrefetchDone is returned by Prefetch.Next after the sequence has been
// fully consumed.
var ErrPrefetchDone = errors.New("par: prefetch exhausted")

// prefetchItem is one produced value or the error that ended production.
type prefetchItem[T any] struct {
	val T
	err error
}

// Prefetch is a bounded one-ahead producer: a single goroutine computes
// produce(0), produce(1), … in order, staying at most one item ahead of the
// consumer. It exists to overlap per-period instance building with the
// previous period's solve in the multi-period pipeline — the producer works
// on item i+1 while the consumer processes item i, and backpressure (channel
// capacity 1) keeps memory bounded to two in-flight items.
//
// Determinism contract: items are produced strictly in index order by one
// goroutine, so overlapping changes wall-clock only, never values. The
// channel handoff orders the producer's writes before the consumer's reads,
// so the consumer may freely mutate a received item.
type Prefetch[T any] struct {
	ch   chan prefetchItem[T]
	stop chan struct{}
	once sync.Once
}

// NewPrefetch starts the producer for n items. Production stops at the first
// produce error (delivered to the consumer, then the sequence ends), on ctx
// cancellation, or on Close.
func NewPrefetch[T any](ctx context.Context, n int, produce func(i int) (T, error)) *Prefetch[T] {
	p := &Prefetch[T]{
		ch:   make(chan prefetchItem[T], 1),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(p.ch)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				p.deliver(ctx, prefetchItem[T]{err: err})
				return
			}
			v, err := produce(i)
			if !p.deliver(ctx, prefetchItem[T]{val: v, err: err}) || err != nil {
				return
			}
		}
	}()
	return p
}

// deliver sends one item, abandoning the send when the consumer closed the
// prefetch or the context was cancelled while the buffer was full.
func (p *Prefetch[T]) deliver(ctx context.Context, it prefetchItem[T]) bool {
	select {
	case p.ch <- it:
		return true
	case <-p.stop:
		return false
	case <-ctx.Done():
		return false
	}
}

// Next returns the next item in sequence. After the last item (or after a
// delivered error ended production) it returns ErrPrefetchDone; after a
// cancellation that cut production short it returns the context's error if
// that was delivered, ErrPrefetchDone otherwise — callers running under the
// same context will see its error from their own work either way.
func (p *Prefetch[T]) Next() (T, error) {
	it, ok := <-p.ch
	if !ok {
		var zero T
		return zero, ErrPrefetchDone
	}
	return it.val, it.err
}

// Close stops the producer and releases its goroutine; safe to call
// multiple times and concurrently with Next. Items already buffered are
// discarded by the closing of the sequence, not returned.
func (p *Prefetch[T]) Close() {
	p.once.Do(func() { close(p.stop) })
	// Drain so a producer blocked on a full buffer observes stop promptly
	// and the channel close propagates; at most one buffered item exists.
	for range p.ch { //nolint:revive // draining until the producer closes ch
	}
}
