package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 17} {
		p := New(workers)
		for _, n := range []int{1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			err := p.Run(context.Background(), n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestRunWorkerIndicesDistinct(t *testing.T) {
	p := New(4)
	defer p.Close()
	seen := make(map[int]int) // worker -> range size
	var mu sync.Mutex
	if err := p.Run(context.Background(), 100, func(w, lo, hi int) {
		mu.Lock()
		seen[w] += hi - lo
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for w, sz := range seen {
		if w < 0 || w >= 4 {
			t.Errorf("worker index %d out of range", w)
		}
		total += sz
	}
	if total != 100 {
		t.Errorf("ranges cover %d indices, want 100", total)
	}
}

func TestRunEmptyAndOversizedPool(t *testing.T) {
	p := New(8)
	defer p.Close()
	if err := p.Run(context.Background(), 0, func(_, _, _ int) {
		t.Error("fn invoked for n=0")
	}); err != nil {
		t.Fatal(err)
	}
	// n < workers: each non-empty range is a single index.
	var count int32
	if err := p.Run(context.Background(), 3, func(_, lo, hi int) {
		if hi-lo != 1 {
			t.Errorf("range [%d,%d) not a single index", lo, hi)
		}
		atomic.AddInt32(&count, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("%d ranges, want 3", count)
	}
}

func TestRunCancelledContext(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := p.Run(ctx, 10, func(_, _, _ int) { called = true })
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn dispatched despite cancelled context")
	}
}

func TestRunTasksCoversEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{1, 2, 7, 64, 500} {
			// Tagged tasks of uneven sizes covering [0, n).
			var tasks []Task
			for lo, tag := 0, 0; lo < n; tag++ {
				hi := lo + 1 + (lo % 5)
				if hi > n {
					hi = n
				}
				tasks = append(tasks, Task{Tag: tag, Lo: lo, Hi: hi})
				lo = hi
			}
			hits := make([]int32, n)
			tagSeen := make([]int32, len(tasks))
			err := p.RunTasks(context.Background(), tasks, func(_, tag, lo, hi int) {
				atomic.AddInt32(&tagSeen[tag], 1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
			for tag, h := range tagSeen {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: tag %d ran %d times", workers, n, tag, h)
				}
			}
		}
		p.Close()
	}
}

func TestRunTasksSingleWorkerRunsInSliceOrder(t *testing.T) {
	p := New(1)
	defer p.Close()
	tasks := []Task{{Tag: 2, Lo: 4, Hi: 6}, {Tag: 0, Lo: 0, Hi: 2}, {Tag: 1, Lo: 2, Hi: 4}}
	var order []int
	if err := p.RunTasks(context.Background(), tasks, func(w, tag, _, _ int) {
		if w != 0 {
			t.Errorf("worker %d on a single-worker pool", w)
		}
		order = append(order, tag)
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Errorf("tasks ran in order %v, want slice order [2 0 1]", order)
	}
}

func TestRunTasksEmptyAndFewerThanWorkers(t *testing.T) {
	p := New(8)
	defer p.Close()
	if err := p.RunTasks(context.Background(), nil, func(_, _, _, _ int) {
		t.Error("fn invoked for empty task list")
	}); err != nil {
		t.Fatal(err)
	}
	// Fewer tasks than workers: every task still runs exactly once.
	var count int32
	tasks := []Task{{Tag: 0, Lo: 0, Hi: 3}, {Tag: 1, Lo: 3, Hi: 5}}
	if err := p.RunTasks(context.Background(), tasks, func(_, _, _, _ int) {
		atomic.AddInt32(&count, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("%d task executions, want 2", count)
	}
}

func TestRunTasksCancelledContext(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := p.RunTasks(ctx, []Task{{Lo: 0, Hi: 10}}, func(_, _, _, _ int) { called = true })
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("fn dispatched despite cancelled context")
	}
}

func TestRunTasksInterleavesWithRun(t *testing.T) {
	// A pool must serve Run and RunTasks fan-outs back to back: the staged
	// task state is cleared between calls.
	p := New(3)
	defer p.Close()
	for round := 0; round < 20; round++ {
		var sum int64
		if err := p.Run(context.Background(), 10, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&sum, int64(i))
			}
		}); err != nil {
			t.Fatal(err)
		}
		if sum != 45 {
			t.Fatalf("round %d: Run sum %d, want 45", round, sum)
		}
		var tsum int64
		tasks := []Task{{Tag: 0, Lo: 0, Hi: 5}, {Tag: 1, Lo: 5, Hi: 10}}
		if err := p.RunTasks(context.Background(), tasks, func(_, _, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&tsum, int64(i))
			}
		}); err != nil {
			t.Fatal(err)
		}
		if tsum != 45 {
			t.Fatalf("round %d: RunTasks sum %d, want 45", round, tsum)
		}
	}
}

func TestPoolReuseAcrossRuns(t *testing.T) {
	p := New(3)
	defer p.Close()
	for round := 0; round < 50; round++ {
		var sum int64
		if err := p.Run(context.Background(), 10, func(_, lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			atomic.AddInt64(&sum, local)
		}); err != nil {
			t.Fatal(err)
		}
		if sum != 45 {
			t.Fatalf("round %d: sum %d, want 45", round, sum)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := New(2)
	p.Close()
	p.Close()
}

func TestDefaultWorkerCount(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Errorf("Workers() = %d, want >= 1", p.Workers())
	}
}

type scratchT struct {
	buf []float64
	n   int
}

func TestSlotsAllocateOncePerWorker(t *testing.T) {
	p := New(4)
	defer p.Close()
	slots := NewSlots[scratchT](p)
	const rounds = 20
	for r := 0; r < rounds; r++ {
		if err := p.Run(context.Background(), 400, func(w, lo, hi int) {
			ws := slots.Get(w)
			if ws.buf == nil {
				ws.buf = make([]float64, 16)
			}
			ws.n += hi - lo
		}); err != nil {
			t.Fatal(err)
		}
	}
	allocs, reuses := slots.Counts()
	if allocs > 4 {
		t.Errorf("%d allocations for 4 workers", allocs)
	}
	if allocs+reuses != 4*rounds {
		t.Errorf("allocs+reuses = %d, want %d gets", allocs+reuses, 4*rounds)
	}
	total := 0
	slots.Each(func(_ int, s *scratchT) { total += s.n })
	if total != 400*rounds {
		t.Errorf("scratch saw %d items, want %d", total, 400*rounds)
	}
}

// blockWork stands in for one block subproblem: enough arithmetic that the
// fan-out cost is visible but not dominant.
func blockWork(scratch []float64, i int) float64 {
	x := float64(i%97) + 1
	for k := range scratch {
		x = x*1.0000001 + scratch[k]
		scratch[k] = x * 0.5
	}
	return x
}

// BenchmarkPooledFanout measures the persistent-pool fan-out with reused
// per-worker scratch — the runtime every solver chunk now goes through.
func BenchmarkPooledFanout(b *testing.B) {
	const n = 128 // one default chunk
	p := New(8)
	defer p.Close()
	slots := NewSlots[scratchT](p)
	out := make([]float64, n)
	ctx := context.Background()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		_ = p.Run(ctx, n, func(w, lo, hi int) {
			ws := slots.Get(w)
			if ws.buf == nil {
				ws.buf = make([]float64, 256)
			}
			for i := lo; i < hi; i++ {
				out[i] = blockWork(ws.buf, i)
			}
		})
	}
}

// BenchmarkSpawnFanout is the pre-refactor baseline: goroutines spawned and
// scratch allocated per chunk, as the hand-rolled fan-outs in epf did.
func BenchmarkSpawnFanout(b *testing.B) {
	const n = 128
	const workers = 8
	out := make([]float64, n)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				scratch := make([]float64, 256)
				for i := lo; i < hi; i++ {
					out[i] = blockWork(scratch, i)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
}
