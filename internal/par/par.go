// Package par is the shared concurrent execution runtime for the solver,
// experiment and simulation layers: a persistent worker pool with stable
// worker identities, typed per-worker scratch slots, and an index-range
// fan-out primitive with cooperative context cancellation.
//
// The EPF solver's speed claim rests on block subproblems parallelizing;
// before this package each fan-out respawned goroutines and reallocated its
// facility-location scratch per chunk. A Pool is created once per solve and
// reused for every chunk, pass and bound evaluation, so a fan-out costs two
// channel operations per worker instead of goroutine spawns, and scratch
// allocated on a worker's first block survives for the whole solve.
//
// Determinism contract: Run partitions work by index range and callers
// write results into caller-owned, index-addressed slots; any reduction
// over those results must happen in index order on the caller's goroutine.
// Under that contract the worker count never changes numeric output.
package par

import (
	"context"
	"runtime"
	"sync"
)

// job is one contiguous index range dispatched to a worker.
type job struct {
	fn     func(worker, lo, hi int)
	lo, hi int
	done   *sync.WaitGroup
}

// Pool is a fixed-size worker pool. Workers are spawned once by New and live
// until Close; worker indices are stable across Run calls, so callers may
// keep per-worker state (see Slots) without locks.
//
// A Pool serializes fan-outs: it is not safe for concurrent Run calls from
// multiple goroutines. Each solve owns its pool.
type Pool struct {
	workers int
	jobs    []chan job
	live    sync.WaitGroup
	closed  bool
	// done is the fan-out completion barrier, a field rather than a Run
	// local so the WaitGroup doesn't escape to the heap on every Run call —
	// Run is on the solver's zero-allocation steady-state path. Safe because
	// a Pool serializes fan-outs by contract.
	done sync.WaitGroup

	// tasks/taskFn stage the current RunTasks fan-out; fields rather than
	// closure captures so RunTasks allocates nothing in steady state (the
	// single taskRunner closure below is created once in New). Safe because
	// a Pool serializes fan-outs by contract.
	tasks      []Task
	taskFn     func(worker, tag, lo, hi int)
	taskRunner func(worker, lo, hi int)
}

// Task is one tagged contiguous index range for RunTasks. Tag identifies the
// logical group the range belongs to (a catalog shard in the EPF solver), so
// one fan-out can interleave ranges from many groups while the callee still
// knows which group each range serves.
type Task struct {
	Tag, Lo, Hi int
}

// New returns a pool with n workers; n < 1 selects runtime.NumCPU().
func New(n int) *Pool {
	if n < 1 {
		n = runtime.NumCPU()
	}
	p := &Pool{workers: n, jobs: make([]chan job, n)}
	for w := 0; w < n; w++ {
		ch := make(chan job, 1)
		p.jobs[w] = ch
		p.live.Add(1)
		go func(w int, ch chan job) {
			defer p.live.Done()
			for j := range ch {
				j.fn(w, j.lo, j.hi)
				j.done.Done()
			}
		}(w, ch)
	}
	// One strided runner shared by every RunTasks fan-out: worker w executes
	// tasks w, w+W, w+2W, … so task order within a worker follows slice order
	// (groups stay contiguous per worker) and no per-call closure is needed.
	p.taskRunner = func(w, _, _ int) {
		ts, fn := p.tasks, p.taskFn
		for i := w; i < len(ts); i += p.workers {
			t := ts[i]
			fn(w, t.Tag, t.Lo, t.Hi)
		}
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run partitions [0, n) into at most Workers() contiguous ranges and
// executes fn(worker, lo, hi) for each non-empty range, one range per
// worker, blocking until all ranges complete. With one worker the range
// runs inline on the caller's goroutine.
//
// If ctx is already cancelled nothing is dispatched and ctx.Err() is
// returned. Once dispatched a fan-out always runs to completion — fns that
// process long ranges should poll ctx themselves and return early; Run
// still waits for them, it never abandons a worker mid-write.
func (p *Pool) Run(ctx context.Context, n int, fn func(worker, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.workers == 1 {
		fn(0, 0, n)
		return nil
	}
	per := (n + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		p.done.Add(1)
		p.jobs[w] <- job{fn: fn, lo: lo, hi: hi, done: &p.done}
	}
	p.done.Wait()
	return nil
}

// RunTasks executes an explicit task list: fn(worker, tag, lo, hi) runs once
// per task, with tasks assigned to workers in strided slice order (task i on
// worker i mod Workers()), blocking until all complete. With one worker the
// tasks run inline in slice order. Like Run, it allocates nothing in steady
// state and returns ctx.Err() without dispatching when ctx is already
// cancelled.
//
// The same determinism contract as Run applies: results go to caller-owned,
// index-addressed slots and reductions happen in index order on the caller's
// goroutine, so neither the worker count nor the task decomposition changes
// numeric output. RunTasks exists for callers that want locality-aware
// decompositions (e.g. shard-affine ranges) rather than Run's flat split.
func (p *Pool) RunTasks(ctx context.Context, tasks []Task, fn func(worker, tag, lo, hi int)) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.workers == 1 {
		for _, t := range tasks {
			fn(0, t.Tag, t.Lo, t.Hi)
		}
		return nil
	}
	p.tasks, p.taskFn = tasks, fn
	nw := p.workers
	if len(tasks) < nw {
		nw = len(tasks)
	}
	for w := 0; w < nw; w++ {
		p.done.Add(1)
		p.jobs[w] <- job{fn: p.taskRunner, done: &p.done}
	}
	p.done.Wait()
	p.tasks, p.taskFn = nil, nil
	return nil
}

// Close shuts the workers down and waits for them to exit. The pool must
// not be used afterwards. Close is idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.jobs {
		close(ch)
	}
	p.live.Wait()
}

// Slots is a typed per-worker scratch vector: one lazily-allocated *T per
// pool worker. During a fan-out, slot w is touched only by the goroutine
// running worker w's range, so Get is lock-free; the pool's completion
// barrier orders those writes before any caller-side read (Each, Counts).
//
// Slots also counts allocations vs reuses, the solver's scratch-economy
// observability: a healthy solve allocates once per worker and reuses for
// every subsequent chunk.
type Slots[T any] struct {
	slots  []*T
	allocs []int64
	gets   []int64
}

// NewSlots returns an empty scratch vector sized to p's worker count.
func NewSlots[T any](p *Pool) *Slots[T] {
	n := p.Workers()
	return &Slots[T]{
		slots:  make([]*T, n),
		allocs: make([]int64, n),
		gets:   make([]int64, n),
	}
}

// Get returns worker w's scratch slot, allocating it on first use. Call it
// once per Run range, not per item, so the reuse counters reflect fan-outs.
func (s *Slots[T]) Get(w int) *T {
	s.gets[w]++
	if s.slots[w] == nil {
		s.slots[w] = new(T)
		s.allocs[w]++
	}
	return s.slots[w]
}

// Counts returns total slot allocations and reuses (gets served by an
// already-live slot) across all workers.
func (s *Slots[T]) Counts() (allocs, reuses int64) {
	for w := range s.slots {
		allocs += s.allocs[w]
		reuses += s.gets[w] - s.allocs[w]
	}
	return allocs, reuses
}

// Each invokes fn for every allocated slot, in worker order. Call only
// between fan-outs (e.g. to merge per-worker counters after a solve).
func (s *Slots[T]) Each(fn func(worker int, t *T)) {
	for w, t := range s.slots {
		if t != nil {
			fn(w, t)
		}
	}
}
