package catalog

import (
	"testing"
	"testing/quick"
)

func TestClassProperties(t *testing.T) {
	cases := []struct {
		class    Class
		sizeGB   float64
		duration int64
		name     string
	}{
		{MusicVideo, 0.1, 300, "music-video"},
		{TVShow, 0.5, 1800, "tv-show"},
		{Movie1h, 1.0, 3600, "movie-1h"},
		{Movie2h, 2.0, 7200, "movie-2h"},
	}
	for _, c := range cases {
		if got := c.class.SizeGB(); got != c.sizeGB {
			t.Errorf("%v.SizeGB() = %g, want %g", c.class, got, c.sizeGB)
		}
		if got := c.class.DurationSec(); got != c.duration {
			t.Errorf("%v.DurationSec() = %d, want %d", c.class, got, c.duration)
		}
		if got := c.class.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.class, got, c.name)
		}
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Errorf("invalid class String = %q", got)
	}
}

func TestClassPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SizeGB on invalid class should panic")
		}
	}()
	Class(99).SizeGB()
}

func TestGenerateBasics(t *testing.T) {
	lib := Generate(Config{NumVideos: 500, Weeks: 4, NumSeries: 3}, 1)
	if got := lib.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	if lib.NumSeries != 3 {
		t.Fatalf("NumSeries = %d, want 3", lib.NumSeries)
	}
	// IDs are dense and ordered.
	for i, v := range lib.Videos {
		if v.ID != i {
			t.Fatalf("video %d has ID %d", i, v.ID)
		}
		if v.SizeGB != v.Class.SizeGB() {
			t.Errorf("video %d size %g inconsistent with class %v", i, v.SizeGB, v.Class)
		}
		if v.RateMbps != StandardRateMbps {
			t.Errorf("video %d rate %g, want %g", i, v.RateMbps, StandardRateMbps)
		}
	}
	if lib.TotalSizeGB() <= 0 {
		t.Error("TotalSizeGB must be positive")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{NumVideos: 300, Weeks: 3}, 42)
	b := Generate(Config{NumVideos: 300, Weeks: 3}, 42)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Videos {
		if a.Videos[i] != b.Videos[i] {
			t.Fatalf("video %d differs: %+v vs %+v", i, a.Videos[i], b.Videos[i])
		}
	}
	c := Generate(Config{NumVideos: 300, Weeks: 3}, 43)
	same := true
	for i := range a.Videos {
		if a.Videos[i] != c.Videos[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical libraries")
	}
}

func TestSeriesEpisodeSchedule(t *testing.T) {
	lib := Generate(Config{NumVideos: 400, Weeks: 4, NumSeries: 2}, 7)
	for s := 0; s < 2; s++ {
		eps := lib.SeriesEpisodes(s)
		if len(eps) != 4 { // episode 1 on day 0 plus one per later week
			t.Fatalf("series %d has %d episodes, want 4", s, len(eps))
		}
		for i, e := range eps {
			if e.Episode != i+1 {
				t.Errorf("series %d episode order broken: %+v", s, e)
			}
			wantDay := 0
			if i > 0 {
				wantDay = 7 * i
			}
			if e.ReleaseDay != wantDay {
				t.Errorf("series %d ep %d released day %d, want %d", s, e.Episode, e.ReleaseDay, wantDay)
			}
			if e.Class != TVShow {
				t.Errorf("series episode has class %v", e.Class)
			}
		}
	}
}

func TestPreviousEpisode(t *testing.T) {
	lib := Generate(Config{NumVideos: 400, Weeks: 3, NumSeries: 1}, 7)
	eps := lib.SeriesEpisodes(0)
	if len(eps) < 2 {
		t.Fatal("need at least 2 episodes")
	}
	prev, ok := lib.PreviousEpisode(eps[1])
	if !ok {
		t.Fatal("PreviousEpisode not found")
	}
	if prev.ID != eps[0].ID {
		t.Errorf("PreviousEpisode = %d, want %d", prev.ID, eps[0].ID)
	}
	if _, ok := lib.PreviousEpisode(eps[0]); ok {
		t.Error("episode 1 should have no previous episode")
	}
	if _, ok := lib.PreviousEpisode(lib.Videos[len(lib.Videos)-1]); lib.Videos[len(lib.Videos)-1].Series == NoSeries && ok {
		t.Error("non-series video should have no previous episode")
	}
}

func TestBlockbusters(t *testing.T) {
	lib := Generate(Config{NumVideos: 1000, Weeks: 4, BlockbustersPerWeek: 2}, 3)
	count := 0
	for _, v := range lib.Videos {
		if v.Blockbuster {
			count++
			if v.Class != Movie1h && v.Class != Movie2h {
				t.Errorf("blockbuster %d has class %v, want a movie class", v.ID, v.Class)
			}
			if v.ReleaseDay == 0 {
				t.Errorf("blockbuster %d released on day 0; should be new content", v.ID)
			}
		}
	}
	if count != 6 { // 2 per week for weeks 1..3
		t.Errorf("blockbuster count = %d, want 6", count)
	}
}

func TestAvailableOn(t *testing.T) {
	lib := Generate(Config{NumVideos: 300, Weeks: 4}, 9)
	day0 := len(lib.AvailableOn(0))
	day27 := len(lib.AvailableOn(27))
	if day0 >= day27 {
		t.Errorf("library should grow: day0=%d day27=%d", day0, day27)
	}
	if day27 != lib.Len() {
		t.Errorf("all videos should be out by day 27: %d vs %d", day27, lib.Len())
	}
}

// Property: regardless of configuration, generation yields exactly NumVideos
// videos, dense IDs, consistent class metadata, and release days within the
// horizon.
func TestGenerateProperties(t *testing.T) {
	f := func(nRaw uint16, weeksRaw, seriesRaw uint8, seed int64) bool {
		n := int(nRaw%2000) + 10
		weeks := int(weeksRaw%6) + 1
		series := int(seriesRaw%5) + 1
		lib := Generate(Config{NumVideos: n, Weeks: weeks, NumSeries: series}, seed)
		if lib.Len() != n {
			return false
		}
		for i, v := range lib.Videos {
			if v.ID != i ||
				v.SizeGB != v.Class.SizeGB() ||
				v.DurationSec != v.Class.DurationSec() ||
				v.ReleaseDay < 0 || v.ReleaseDay >= weeks*7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDefaults(t *testing.T) {
	lib := Generate(Config{}, 1)
	if lib.Len() != 1000 {
		t.Errorf("default NumVideos = %d, want 1000", lib.Len())
	}
	for _, v := range lib.Videos {
		if v.ReleaseDay != 0 {
			t.Errorf("Weeks<=1 must release everything on day 0, got day %d", v.ReleaseDay)
		}
	}
}
