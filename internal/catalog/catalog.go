// Package catalog models the video library: videos with the four size
// classes used in the paper's evaluation (§VII-A), TV-series membership with
// weekly episode releases, blockbuster tagging, and a staggered release
// schedule so that new content keeps arriving during a simulated horizon —
// the situation that makes demand estimation (§VI-A) necessary.
package catalog

import (
	"fmt"
	"math/rand"
)

// Class is a video length/size class. The paper maps all trace videos to
// four classes (§VII-A).
type Class int

// The four size classes with their §VII-A storage footprints.
const (
	MusicVideo Class = iota // 5 min, 100 MB
	TVShow                  // 30 min, 500 MB
	Movie1h                 // 1 h, 1 GB
	Movie2h                 // 2 h, 2 GB
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case MusicVideo:
		return "music-video"
	case TVShow:
		return "tv-show"
	case Movie1h:
		return "movie-1h"
	case Movie2h:
		return "movie-2h"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// SizeGB returns the on-disk size in gigabytes for the class.
func (c Class) SizeGB() float64 {
	switch c {
	case MusicVideo:
		return 0.1
	case TVShow:
		return 0.5
	case Movie1h:
		return 1.0
	case Movie2h:
		return 2.0
	default:
		panic(fmt.Sprintf("catalog: invalid class %d", int(c)))
	}
}

// DurationSec returns the playback duration in seconds for the class.
func (c Class) DurationSec() int64 {
	switch c {
	case MusicVideo:
		return 300
	case TVShow:
		return 1800
	case Movie1h:
		return 3600
	case Movie2h:
		return 7200
	default:
		panic(fmt.Sprintf("catalog: invalid class %d", int(c)))
	}
}

// StandardRateMbps is the streaming bit rate for standard-definition video
// assumed throughout the paper's evaluation.
const StandardRateMbps = 2.0

// NoSeries marks a video that is not an episode of any TV series.
const NoSeries = -1

// Video is one item in the library.
type Video struct {
	ID          int
	Class       Class
	SizeGB      float64
	DurationSec int64
	RateMbps    float64

	// Series is the series id for TV-series episodes, or NoSeries.
	Series int
	// Episode is the 1-based episode number within Series (0 otherwise).
	Episode int
	// ReleaseDay is the day index (0-based from the start of the horizon) on
	// which the video becomes available. Day 0 videos form the initial
	// library.
	ReleaseDay int
	// Blockbuster marks the movies for which §VI-A assumes exogenous
	// release-list knowledge.
	Blockbuster bool
}

// Library is an immutable video catalog.
type Library struct {
	Videos    []Video
	NumSeries int
}

// Config parameterizes library generation.
type Config struct {
	// NumVideos is the total library size, including videos released during
	// the horizon.
	NumVideos int
	// ClassMix gives the probability of each class, indexed by Class. If all
	// zero, DefaultClassMix is used.
	ClassMix [4]float64
	// NumSeries is the number of weekly TV series. Each series releases one
	// new episode per week starting on its release weekday. If zero, a
	// default of max(1, NumVideos/200) is used for horizons with new content.
	NumSeries int
	// Weeks is the horizon length in weeks over which new content arrives.
	// Weeks <= 1 means the whole library is available on day 0.
	Weeks int
	// NewPerWeekFraction is the fraction of the library released in each
	// week after the first (spread over series episodes, blockbusters and
	// other new videos). Default 0.02.
	NewPerWeekFraction float64
	// BlockbustersPerWeek is how many of each week's new movies are tagged
	// blockbusters (§VI-A assumes 1–3). Default 2.
	BlockbustersPerWeek int
}

// DefaultClassMix is the class distribution used when Config.ClassMix is
// unset: mostly short-form and TV content with a substantial movie share,
// mirroring the trace description in §VII-A.
var DefaultClassMix = [4]float64{0.30, 0.40, 0.15, 0.15}

func (cfg *Config) withDefaults() Config {
	out := *cfg
	if out.NumVideos <= 0 {
		out.NumVideos = 1000
	}
	sum := out.ClassMix[0] + out.ClassMix[1] + out.ClassMix[2] + out.ClassMix[3]
	if sum == 0 {
		out.ClassMix = DefaultClassMix
	}
	if out.Weeks <= 0 {
		out.Weeks = 1
	}
	if out.NewPerWeekFraction <= 0 {
		out.NewPerWeekFraction = 0.02
	}
	if out.BlockbustersPerWeek <= 0 {
		out.BlockbustersPerWeek = 2
	}
	if out.NumSeries <= 0 {
		out.NumSeries = out.NumVideos / 200
		if out.NumSeries < 1 {
			out.NumSeries = 1
		}
	}
	return out
}

// Generate builds a deterministic library from cfg and seed.
//
// Layout: the first videos (release day 0) form the initial library. For
// each subsequent week w = 1..Weeks-1, NumSeries episodes (one per series),
// BlockbustersPerWeek blockbuster movies, and enough other new videos to
// reach NewPerWeekFraction*NumVideos are released on day 7*w (series
// episodes) spread across the week (other content). Episode 1 of each series
// is part of the initial library so that history-based estimation has
// something to anchor on.
func Generate(cfg Config, seed int64) *Library {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	lib := &Library{NumSeries: c.NumSeries}
	lib.Videos = make([]Video, 0, c.NumVideos)

	addVideo := func(class Class, series, episode, releaseDay int, blockbuster bool) {
		lib.Videos = append(lib.Videos, Video{
			ID:          len(lib.Videos),
			Class:       class,
			SizeGB:      class.SizeGB(),
			DurationSec: class.DurationSec(),
			RateMbps:    StandardRateMbps,
			Series:      series,
			Episode:     episode,
			ReleaseDay:  releaseDay,
			Blockbuster: blockbuster,
		})
	}

	drawClass := func() Class {
		u := rng.Float64()
		var acc float64
		for cl := MusicVideo; cl < numClasses; cl++ {
			acc += c.ClassMix[cl]
			if u < acc {
				return cl
			}
		}
		return Movie2h
	}

	// Reserve the per-week new content budget.
	newPerWeek := int(c.NewPerWeekFraction * float64(c.NumVideos))
	minWeekly := c.NumSeries + c.BlockbustersPerWeek
	if newPerWeek < minWeekly {
		newPerWeek = minWeekly
	}
	futureCount := newPerWeek * (c.Weeks - 1)
	if futureCount > c.NumVideos/2 {
		futureCount = c.NumVideos / 2
	}
	initialCount := c.NumVideos - futureCount

	// Episode 1 of each series belongs to the initial library.
	for s := 0; s < c.NumSeries && len(lib.Videos) < initialCount; s++ {
		addVideo(TVShow, s, 1, 0, false)
	}
	for len(lib.Videos) < initialCount {
		addVideo(drawClass(), NoSeries, 0, 0, false)
	}

	episode := make([]int, c.NumSeries)
	for s := range episode {
		episode[s] = 1
	}
	for w := 1; w < c.Weeks && len(lib.Videos) < c.NumVideos; w++ {
		day := 7 * w
		budget := newPerWeek
		if remaining := c.NumVideos - len(lib.Videos); budget > remaining {
			budget = remaining
		}
		// One episode per series, released at the start of the week.
		for s := 0; s < c.NumSeries && budget > 0; s++ {
			episode[s]++
			addVideo(TVShow, s, episode[s], day, false)
			budget--
		}
		// Blockbusters: full-length movies released mid-week.
		for b := 0; b < c.BlockbustersPerWeek && budget > 0; b++ {
			class := Movie1h
			if rng.Intn(2) == 0 {
				class = Movie2h
			}
			addVideo(class, NoSeries, 0, day+2, true)
			budget--
		}
		// Other new content spread over the week.
		for budget > 0 {
			addVideo(drawClass(), NoSeries, 0, day+rng.Intn(7), false)
			budget--
		}
	}
	return lib
}

// Len returns the number of videos.
func (l *Library) Len() int { return len(l.Videos) }

// TotalSizeGB returns the storage required for one copy of every video.
func (l *Library) TotalSizeGB() float64 {
	var total float64
	for i := range l.Videos {
		total += l.Videos[i].SizeGB
	}
	return total
}

// AvailableOn returns the ids of videos whose ReleaseDay is <= day.
func (l *Library) AvailableOn(day int) []int {
	var ids []int
	for i := range l.Videos {
		if l.Videos[i].ReleaseDay <= day {
			ids = append(ids, l.Videos[i].ID)
		}
	}
	return ids
}

// SeriesEpisodes returns the episode videos of series s ordered by episode
// number.
func (l *Library) SeriesEpisodes(s int) []Video {
	var eps []Video
	for i := range l.Videos {
		if l.Videos[i].Series == s {
			eps = append(eps, l.Videos[i])
		}
	}
	// Episodes are generated in order, so they are already sorted by episode.
	return eps
}

// PreviousEpisode returns the video for the episode preceding v in its
// series, and whether one exists. Used by the §VI-A series-based demand
// estimator.
func (l *Library) PreviousEpisode(v Video) (Video, bool) {
	if v.Series == NoSeries || v.Episode <= 1 {
		return Video{}, false
	}
	for i := range l.Videos {
		w := l.Videos[i]
		if w.Series == v.Series && w.Episode == v.Episode-1 {
			return w, true
		}
	}
	return Video{}, false
}
