package verify

import (
	"math"
	"testing"

	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/simplex"
)

func mustInstance(t *testing.T, seed int64, opts InstanceOpts) *mip.Instance {
	t.Helper()
	inst, err := RandomInstance(seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func solveExact(t *testing.T, inst *mip.Instance) (*mip.Solution, float64) {
	t.Helper()
	lp, vm, err := simplex.BuildPlacementLP(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simplex.Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != simplex.Optimal {
		t.Fatalf("LP status %v", res.Status)
	}
	return vm.ExtractSolution(res.X), res.Objective
}

func TestCheckSolutionOnExactLPOptimum(t *testing.T) {
	inst := mustInstance(t, 11, InstanceOpts{})
	sol, opt := solveExact(t, inst)
	r := CheckSolution(sol)
	if !r.Ok() {
		t.Fatalf("LP-optimal solution failed audit: %v", r.Err())
	}
	if relDiff(r.Objective, opt) > CertTol {
		t.Errorf("recomputed objective %g vs LP objective %g", r.Objective, opt)
	}
	if v := r.Violation; v.Disk > CertTol || v.Link > CertTol || v.Unserved > CertTol || v.XExceedsY > CertTol {
		t.Errorf("LP-optimal solution shows violations: %+v", v)
	}
}

func TestCheckSolutionStructuralFailures(t *testing.T) {
	inst := mustInstance(t, 12, InstanceOpts{})
	base, _ := solveExact(t, inst)

	t.Run("nil", func(t *testing.T) {
		if CheckSolution(nil).Ok() {
			t.Error("nil solution passed")
		}
	})
	t.Run("open out of range", func(t *testing.T) {
		sol, _ := solveExact(t, inst)
		sol.Videos[0].Open[0].I = int32(inst.NumVHOs())
		if CheckSolution(sol).Ok() {
			t.Error("out-of-range open office passed")
		}
	})
	t.Run("non-ascending open", func(t *testing.T) {
		sol, _ := solveExact(t, inst)
		var vi int
		for vi = range sol.Videos {
			if len(sol.Videos[vi].Open) >= 2 {
				break
			}
		}
		open := sol.Videos[vi].Open
		if len(open) < 2 {
			t.Skip("no video with two open offices")
		}
		open[0], open[1] = open[1], open[0]
		if CheckSolution(sol).Ok() {
			t.Error("non-ascending open list passed")
		}
	})
	t.Run("y above one", func(t *testing.T) {
		sol, _ := solveExact(t, inst)
		sol.Videos[0].Open[0].V = 1.5
		r := CheckSolution(sol)
		if r.Ok() {
			t.Error("y = 1.5 passed")
		}
	})
	t.Run("negative x", func(t *testing.T) {
		sol, _ := solveExact(t, inst)
		var done bool
		for vi := range sol.Videos {
			if len(sol.Videos[vi].Assign) > 0 && len(sol.Videos[vi].Assign[0]) > 0 {
				sol.Videos[vi].Assign[0][0].V = -0.5
				done = true
				break
			}
		}
		if !done {
			t.Skip("no assignment to corrupt")
		}
		if CheckSolution(sol).Ok() {
			t.Error("negative x passed")
		}
	})
	// Make sure the baseline itself was fine, so the subtests failed for the
	// corruption and not for a broken fixture.
	if r := CheckSolution(base); !r.Ok() {
		t.Fatalf("baseline solution failed: %v", r.Err())
	}
}

func TestCheckSolutionFindsViolations(t *testing.T) {
	inst := mustInstance(t, 13, InstanceOpts{})
	t.Run("unserved", func(t *testing.T) {
		sol, _ := solveExact(t, inst)
		var done bool
		for vi := range sol.Videos {
			if len(sol.Videos[vi].Assign) > 0 && len(sol.Videos[vi].Assign[0]) > 0 {
				sol.Videos[vi].Assign[0] = sol.Videos[vi].Assign[0][:0]
				done = true
				break
			}
		}
		if !done {
			t.Skip("no assignment row")
		}
		r := CheckSolution(sol)
		if r.Violation.Unserved < 1-CertTol {
			t.Errorf("dropped assignment row not reflected: unserved = %g", r.Violation.Unserved)
		}
	})
	t.Run("disk overflow", func(t *testing.T) {
		sol, _ := solveExact(t, inst)
		// Open every video everywhere at full strength: with DiskFactor 2 the
		// library fits twice over but not n times over.
		for vi := range sol.Videos {
			sol.Videos[vi].Open = sol.Videos[vi].Open[:0]
			for i := 0; i < inst.NumVHOs(); i++ {
				sol.Videos[vi].Open = append(sol.Videos[vi].Open, mip.Frac{I: int32(i), V: 1})
			}
		}
		r := CheckSolution(sol)
		if r.Violation.Disk <= 0 {
			t.Errorf("everything-everywhere placement shows no disk violation (%g)", r.Violation.Disk)
		}
	})
}

func TestAuditPassesOnSolverOutput(t *testing.T) {
	inst := mustInstance(t, 21, InstanceOpts{})
	for _, tc := range []struct {
		name  string
		solve func() (*epf.Result, error)
	}{
		{"LP", func() (*epf.Result, error) { return epf.Solve(inst, epf.Options{Seed: 21, MaxPasses: 200}) }},
		{"integer", func() (*epf.Result, error) { return epf.SolveInteger(inst, epf.Options{Seed: 21, MaxPasses: 200}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.solve()
			if err != nil {
				t.Fatal(err)
			}
			wantRows := inst.NumVHOs() + inst.G.NumLinks()*inst.Slices
			if len(res.RowDuals) != wantRows {
				t.Fatalf("RowDuals has %d entries, want %d", len(res.RowDuals), wantRows)
			}
			r := Audit(inst, res)
			if !r.Ok() {
				t.Fatalf("audit failed: %v", r.Err())
			}
			if r.CertifiedLB <= 0 {
				t.Errorf("certified lower bound %g not positive", r.CertifiedLB)
			}
			if res.LowerBound > r.CertifiedLB*(1+CertTol)+CertTol {
				t.Errorf("claimed bound %g above certified %g", res.LowerBound, r.CertifiedLB)
			}
			t.Logf("%s: obj %.3f, claimed lb %.3f, certified lb %.3f, gap %.2f%%",
				tc.name, r.Objective, r.ClaimedLB, r.CertifiedLB, 100*r.Gap)
		})
	}
}

func TestAuditDetectsFalseClaims(t *testing.T) {
	inst := mustInstance(t, 22, InstanceOpts{})
	solve := func(t *testing.T) *epf.Result {
		t.Helper()
		res, err := epf.Solve(inst, epf.Options{Seed: 22, MaxPasses: 200})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	t.Run("inflated objective", func(t *testing.T) {
		res := solve(t)
		res.Objective *= 1.5
		if Audit(inst, res).Ok() {
			t.Error("inflated objective claim passed")
		}
	})
	t.Run("inflated lower bound", func(t *testing.T) {
		res := solve(t)
		res.LowerBound = res.Objective * 2
		if Audit(inst, res).Ok() {
			t.Error("lower bound above the optimum passed certification")
		}
	})
	t.Run("understated disk violation", func(t *testing.T) {
		res := solve(t)
		// Double every placement: real disk usage doubles but the claim stays.
		for vi := range res.Sol.Videos {
			for oi := range res.Sol.Videos[vi].Open {
				res.Sol.Videos[vi].Open[oi].V = math.Min(1, 2*res.Sol.Videos[vi].Open[oi].V)
			}
		}
		if Audit(inst, res).Ok() {
			t.Error("tampered placements passed the claimed-violation cross-check")
		}
	})
	t.Run("broken conservation", func(t *testing.T) {
		res := solve(t)
		var done bool
		for vi := range res.Sol.Videos {
			if len(res.Sol.Videos[vi].Assign) > 0 && len(res.Sol.Videos[vi].Assign[0]) > 0 {
				res.Sol.Videos[vi].Assign[0] = res.Sol.Videos[vi].Assign[0][:0]
				done = true
				break
			}
		}
		if !done {
			t.Skip("no assignment row")
		}
		if Audit(inst, res).Ok() {
			t.Error("broken conservation passed")
		}
	})
	t.Run("corrupted duals", func(t *testing.T) {
		res := solve(t)
		if len(res.RowDuals) == 0 {
			t.Fatal("no duals")
		}
		res.RowDuals[0] = math.NaN()
		if Audit(inst, res).Ok() {
			t.Error("NaN dual passed")
		}
	})
	t.Run("foreign instance", func(t *testing.T) {
		res := solve(t)
		other := mustInstance(t, 23, InstanceOpts{})
		if Audit(other, res).Ok() {
			t.Error("audit against the wrong instance passed")
		}
	})
}

func TestCertifyLowerBound(t *testing.T) {
	inst := mustInstance(t, 31, InstanceOpts{})
	_, opt := solveExact(t, inst)

	t.Run("nil duals give trivial bound", func(t *testing.T) {
		lb, err := CertifyLowerBound(inst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lb <= 0 || lb > opt+CertTol*(1+opt) {
			t.Errorf("trivial bound %g outside (0, LP opt %g]", lb, opt)
		}
	})
	t.Run("zero duals match trivial bound", func(t *testing.T) {
		lbNil, _ := CertifyLowerBound(inst, nil)
		zero := make([]float64, inst.NumVHOs()+inst.G.NumLinks()*inst.Slices)
		lb, err := CertifyLowerBound(inst, zero)
		if err != nil {
			t.Fatal(err)
		}
		if lb < lbNil-CertTol*(1+lbNil) {
			t.Errorf("λ=0 bound %g below trivial bound %g", lb, lbNil)
		}
		if lb > opt+CertTol*(1+opt) {
			t.Errorf("λ=0 bound %g exceeds LP optimum %g", lb, opt)
		}
	})
	t.Run("solver duals never exceed the optimum", func(t *testing.T) {
		res, err := epf.Solve(inst, epf.Options{Seed: 31, MaxPasses: 200})
		if err != nil {
			t.Fatal(err)
		}
		lb, err := CertifyLowerBound(inst, res.RowDuals)
		if err != nil {
			t.Fatal(err)
		}
		if lb > opt+CertTol*(1+opt) {
			t.Errorf("certified bound %g exceeds exact LP optimum %g", lb, opt)
		}
	})
	t.Run("rejects bad vectors", func(t *testing.T) {
		if _, err := CertifyLowerBound(nil, nil); err == nil {
			t.Error("nil instance accepted")
		}
		if _, err := CertifyLowerBound(inst, make([]float64, 3)); err == nil {
			t.Error("wrong-length dual vector accepted")
		}
		bad := make([]float64, inst.NumVHOs()+inst.G.NumLinks()*inst.Slices)
		bad[0] = -1
		if _, err := CertifyLowerBound(inst, bad); err == nil {
			t.Error("negative dual accepted")
		}
		bad[0] = math.Inf(1)
		if _, err := CertifyLowerBound(inst, bad); err == nil {
			t.Error("infinite dual accepted")
		}
	})
}
