package verify

import (
	"context"
	"fmt"
	"math"

	"vodplace/internal/epf"
	"vodplace/internal/facloc"
	"vodplace/internal/mip"
	"vodplace/internal/simplex"
)

// Options configures a Differential sweep.
type Options struct {
	// Instances is the number of seeded random placement instances to sweep.
	// Default 50.
	Instances int
	// UFLs is the number of seeded random facility-location problems to
	// cross-check against brute force. Default 50.
	UFLs int
	// Seed is the base seed; instance i uses Seed+i. Default 1.
	Seed int64
	// Instance parameterizes the random placement instances.
	Instance InstanceOpts
	// EPF configures the approximate solver under test. A zero MaxPasses is
	// raised to 200 so small instances converge.
	EPF epf.Options
	// Shards is the shard count of the differential re-solve: every instance
	// is solved unsharded and again with this many catalog shards, and the
	// two results must agree bitwise (objective, lower bound, row duals) and
	// certify the same lower bound. 0 selects 3; negative disables the
	// sharded leg.
	Shards int
	// LPBand is the allowed relative deviation of the EPF objective from the
	// exact LP optimum, in units of the solver's ε-feasibility slack: the
	// objective must land in [opt·(1−LPBand), opt·(1+LPBand)]. Default 0.10,
	// matching the solver's documented "within a few percent of OPT while
	// using up to (1+ε) of each capacity" contract.
	LPBand float64
	// OnInstance, when non-nil, is invoked after each placement instance
	// completes (with its 0-based index). Used for progress and for the
	// cancellation tests.
	OnInstance func(i int)
}

func (o Options) defaults() Options {
	if o.Instances == 0 {
		o.Instances = 50
	}
	if o.UFLs == 0 {
		o.UFLs = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.EPF.MaxPasses == 0 {
		o.EPF.MaxPasses = 200
	}
	if o.LPBand == 0 {
		o.LPBand = 0.10
	}
	if o.Shards == 0 {
		o.Shards = 3
	}
	return o
}

// DiffReport aggregates a Differential sweep. Counters report how much of
// the sweep actually ran (a cancelled sweep returns partial counts), the
// Worst* fields the most extreme observed deviations, and Failures every
// hard disagreement between solvers or failed certificate.
type DiffReport struct {
	// Instances / UFLs is how many placement instances / UFL problems
	// completed.
	Instances int
	UFLs      int
	// WorstLPDev is the largest |EPF objective − LP optimum| / LP optimum.
	WorstLPDev float64
	// WorstLBExcess is the largest (EPF lower bound − LP optimum)/LP optimum;
	// any positive value beyond tolerance is a soundness failure.
	WorstLBExcess float64
	// WorstIntGap is the largest (integer objective − certified LB)/certified
	// LB: the certificate-derived integrality + approximation gap.
	WorstIntGap float64
	// WorstUFLHeurGap is the largest (heuristic cost − brute-force optimum) /
	// optimum over the UFL sweep.
	WorstUFLHeurGap float64
	// Failures lists every hard disagreement found; empty means the sweep
	// passed.
	Failures []string
}

// Ok reports whether the sweep found no hard failures.
func (d *DiffReport) Ok() bool { return len(d.Failures) == 0 }

func (d *DiffReport) failf(format string, args ...any) {
	d.Failures = append(d.Failures, fmt.Sprintf(format, args...))
}

// String summarizes the sweep for logs.
func (d *DiffReport) String() string {
	return fmt.Sprintf("differential: %d instances (worst LP dev %.4f, LB excess %.2g, int gap %.4f), %d UFLs (worst heuristic gap %.4f), %d failures",
		d.Instances, d.WorstLPDev, d.WorstLBExcess, d.WorstIntGap, d.UFLs, d.WorstUFLHeurGap, len(d.Failures))
}

// Differential runs the cross-solver harness: seeded random placement
// instances are solved exactly (dense simplex) and approximately (EPF, then
// integer rounding), every result is audited by the certificate checkers,
// and the two objectives are compared; seeded random UFL problems cross the
// facloc heuristics and dual ascent against brute-force enumeration.
//
// Cancellation follows the repository contract: ctx is checked between
// instances, and a cancelled sweep returns the partial report alongside
// ctx.Err(). The report is deterministic for a fixed Options.
func Differential(ctx context.Context, opts Options) (*DiffReport, error) {
	o := opts.defaults()
	rep := &DiffReport{}
	for i := 0; i < o.Instances; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		seed := o.Seed + int64(i)
		if err := diffInstance(rep, seed, o); err != nil {
			rep.failf("instance seed %d: %v", seed, err)
		}
		rep.Instances++
		if o.OnInstance != nil {
			o.OnInstance(i)
		}
	}
	for i := 0; i < o.UFLs; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		diffUFL(rep, o.Seed+int64(i))
		rep.UFLs++
	}
	return rep, nil
}

// diffInstance runs one placement instance through the exact LP, the EPF
// solver and integer rounding, auditing and comparing everything. A returned
// error means the instance could not be processed at all; comparison
// failures are appended to rep directly.
func diffInstance(rep *DiffReport, seed int64, o Options) error {
	inst, err := RandomInstance(seed, o.Instance)
	if err != nil {
		return err
	}

	lp, _, err := simplex.BuildPlacementLP(inst)
	if err != nil {
		return fmt.Errorf("build LP: %w", err)
	}
	lpRes, err := simplex.Solve(lp)
	if err != nil {
		return fmt.Errorf("simplex: %w", err)
	}
	if lpRes.Status != simplex.Optimal {
		return fmt.Errorf("simplex status %v", lpRes.Status)
	}
	opt := lpRes.Objective

	epfOpts := o.EPF
	epfOpts.Seed = seed
	res, err := epf.Solve(inst, epfOpts)
	if err != nil {
		return fmt.Errorf("epf: %w", err)
	}
	if ar := Audit(inst, res); !ar.Ok() {
		rep.failf("seed %d: LP audit: %v", seed, ar.Err())
	}
	// Soundness: the Lagrangian bound must never exceed the true LP optimum.
	if ex := (res.LowerBound - opt) / math.Max(1, opt); ex > rep.WorstLBExcess {
		rep.WorstLBExcess = ex
	}
	if res.LowerBound > opt+CertTol*(1+opt) {
		rep.failf("seed %d: EPF lower bound %g exceeds exact LP optimum %g", seed, res.LowerBound, opt)
	}
	// Accuracy: the ε-feasible objective must track the LP optimum.
	if dev := math.Abs(res.Objective-opt) / math.Max(1, opt); dev > rep.WorstLPDev {
		rep.WorstLPDev = dev
	}
	if res.Objective > opt*(1+o.LPBand)+CertTol || res.Objective < opt*(1-o.LPBand)-CertTol {
		rep.failf("seed %d: EPF objective %g outside ±%.0f%% band around LP optimum %g (violation %+v)",
			seed, res.Objective, 100*o.LPBand, opt, res.Violation)
	}

	// Sharded re-solve: the shard decomposition must not change a single bit
	// of the result, and the sharded duals must certify the same bound the
	// unsharded audit certified. This is the sharding determinism contract
	// checked end-to-end, not just within the solver's own tests.
	if o.Shards > 0 {
		shOpts := epfOpts
		shOpts.Shards = o.Shards
		shRes, err := epf.Solve(inst, shOpts)
		if err != nil {
			return fmt.Errorf("epf sharded: %w", err)
		}
		if shRes.Objective != res.Objective || shRes.LowerBound != res.LowerBound {
			rep.failf("seed %d: sharded solve (%d shards) diverged: obj %g vs %g, lb %g vs %g",
				seed, o.Shards, shRes.Objective, res.Objective, shRes.LowerBound, res.LowerBound)
		}
		for r := range res.RowDuals {
			if shRes.RowDuals[r] != res.RowDuals[r] {
				rep.failf("seed %d: sharded solve row dual %d differs: %g vs %g", seed, r, shRes.RowDuals[r], res.RowDuals[r])
				break
			}
		}
		certU, errU := CertifyLowerBound(inst, res.RowDuals)
		certS, errS := CertifyLowerBound(inst, shRes.RowDuals)
		switch {
		case errU != nil:
			rep.failf("seed %d: unsharded certificate: %v", seed, errU)
		case errS != nil:
			rep.failf("seed %d: sharded certificate: %v", seed, errS)
		case certU != certS:
			rep.failf("seed %d: certified bounds diverge across sharding: %g vs %g", seed, certU, certS)
		}
	}

	diffInteger(rep, inst, seed, opt, "", epfOpts)

	// Mode matrix: every IncrementalPricing/Warm/ParallelRound combination
	// the CLIs can select must hold the legacy mode's certificates on the
	// same corpus. This sweep is what gated graduating incremental pricing
	// (with parallel rounding) and warm starts from opt-in to default: a mode
	// whose bound ever overshot the exact optimum, or whose objective left
	// the LP band, would fail here before it could ship as a default.
	modes := []struct {
		name string
		mut  func(*epf.Options)
	}{
		{"incremental", func(mo *epf.Options) {
			mo.IncrementalPricing = true
			mo.ParallelRound = true
		}},
		{"warm", func(mo *epf.Options) {
			mo.Warm = res.Warm
			mo.ParallelRound = true
		}},
		{"incremental+warm", func(mo *epf.Options) {
			mo.IncrementalPricing = true
			mo.Warm = res.Warm
			mo.ParallelRound = true
		}},
	}
	for _, m := range modes {
		mOpts := epfOpts
		m.mut(&mOpts)
		mRes, err := epf.Solve(inst, mOpts)
		if err != nil {
			return fmt.Errorf("epf %s: %w", m.name, err)
		}
		if ar := Audit(inst, mRes); !ar.Ok() {
			rep.failf("seed %d: %s audit: %v", seed, m.name, ar.Err())
		}
		if mRes.LowerBound > opt+CertTol*(1+opt) {
			rep.failf("seed %d: %s lower bound %g exceeds exact LP optimum %g", seed, m.name, mRes.LowerBound, opt)
		}
		if dev := math.Abs(mRes.Objective-opt) / math.Max(1, opt); dev > rep.WorstLPDev {
			rep.WorstLPDev = dev
		}
		if mRes.Objective > opt*(1+o.LPBand)+CertTol || mRes.Objective < opt*(1-o.LPBand)-CertTol {
			rep.failf("seed %d: %s objective %g outside ±%.0f%% band around LP optimum %g (violation %+v)",
				seed, m.name, mRes.Objective, 100*o.LPBand, opt, mRes.Violation)
		}
		// Certified-bound parity: the mode's exported duals must stand on
		// their own through the independent certifier, exactly like the
		// legacy mode's — valid, and never above the exact optimum.
		cert, certErr := CertifyLowerBound(inst, mRes.RowDuals)
		switch {
		case certErr != nil:
			rep.failf("seed %d: %s certificate: %v", seed, m.name, certErr)
		case cert > opt+CertTol*(1+opt):
			rep.failf("seed %d: %s certified bound %g exceeds LP optimum %g", seed, m.name, cert, opt)
		}
		// End-to-end determinism of the fully-loaded default mode: a sharded
		// re-solve must reproduce it bit for bit, certificates included.
		if m.name == "incremental+warm" && o.Shards > 0 {
			shOpts := mOpts
			shOpts.Shards = o.Shards
			shRes, err := epf.Solve(inst, shOpts)
			if err != nil {
				return fmt.Errorf("epf %s sharded: %w", m.name, err)
			}
			if shRes.Objective != mRes.Objective || shRes.LowerBound != mRes.LowerBound {
				rep.failf("seed %d: %s sharded solve (%d shards) diverged: obj %g vs %g, lb %g vs %g",
					seed, m.name, o.Shards, shRes.Objective, mRes.Objective, shRes.LowerBound, mRes.LowerBound)
			}
			for r := range mRes.RowDuals {
				if shRes.RowDuals[r] != mRes.RowDuals[r] {
					rep.failf("seed %d: %s sharded row dual %d differs: %g vs %g",
						seed, m.name, r, shRes.RowDuals[r], mRes.RowDuals[r])
					break
				}
			}
		}
	}

	// The integer pipeline in the new default mode (incremental pricing with
	// parallel rounding; cold, matching a first-period CLI solve).
	fastOpts := epfOpts
	fastOpts.IncrementalPricing = true
	fastOpts.ParallelRound = true
	diffInteger(rep, inst, seed, opt, "fast ", fastOpts)
	return nil
}

// diffInteger runs the integer rounding pipeline under the given solver
// options and audits the result: integrality, certificate, the
// feasible-solutions-only bound, and a wide sanity band around the LP
// optimum. label prefixes failure messages so legacy- and fast-mode runs
// stay distinguishable in the report.
func diffInteger(rep *DiffReport, inst *mip.Instance, seed int64, opt float64, label string, epfOpts epf.Options) {
	intRes, err := epf.SolveInteger(inst, epfOpts)
	if err != nil {
		rep.failf("seed %d: %sepf integer: %v", seed, label, err)
		return
	}
	ar := Audit(inst, intRes)
	if !ar.Ok() {
		rep.failf("seed %d: %sinteger audit: %v", seed, label, ar.Err())
	}
	if !intRes.Sol.IsIntegral(1e-4) {
		rep.failf("seed %d: %srounded solution not integral", seed, label)
	}
	// The certified bound applies to feasible solutions only: a rounded
	// solution that overruns capacities by ε effectively buys extra capacity
	// and may legitimately dip below the LP optimum. When rounding happens to
	// be capacity-feasible, the bound is binding.
	feasible := intRes.Violation.Disk <= CertTol && intRes.Violation.Link <= CertTol
	if feasible && ar.CertifiedLB > 0 &&
		intRes.Objective < ar.CertifiedLB-CertTol*(1+ar.CertifiedLB) {
		rep.failf("seed %d: %sfeasible integer objective %g below certified LP bound %g", seed, label, intRes.Objective, ar.CertifiedLB)
	}
	if ar.CertifiedLB > 0 {
		if gap := (intRes.Objective - ar.CertifiedLB) / ar.CertifiedLB; gap > rep.WorstIntGap {
			rep.WorstIntGap = gap
		}
	}
	// Rounding granularity on small instances is coarse; keep a wide sanity
	// band around the LP optimum (the tight band is the LP comparison above).
	if intRes.Objective > opt*1.60+CertTol || intRes.Objective < opt*0.60-CertTol {
		rep.failf("seed %d: %sinteger objective %g implausibly far from LP optimum %g (violation %+v)",
			seed, label, intRes.Objective, opt, intRes.Violation)
	}
}

// diffUFL crosses the facility-location heuristics against brute force on
// one seeded problem: dual ascent must stay at or below the optimum, the
// heuristics at or above it, and every reported cost must match a from-
// scratch re-evaluation of the reported open set.
func diffUFL(rep *DiffReport, seed int64) {
	// Sizes stay within BruteForce's enumeration limit.
	rng := int(seed % 3)
	p := RandomUFL(seed, 4+rng, 6+rng)
	var fs facloc.Solver
	exact := facloc.BruteForce(p)

	dualLB, _ := fs.DualAscent(p)
	if dualLB > exact.Cost+CertTol*(1+exact.Cost) {
		rep.failf("ufl seed %d: dual ascent bound %g exceeds brute-force optimum %g", seed, dualLB, exact.Cost)
	}
	for _, h := range []struct {
		name string
		sol  facloc.Solution
	}{
		{"Solve", fs.Solve(p)},
		{"SolveQuick", fs.SolveQuick(p)},
		{"BruteForce", exact},
	} {
		if re := uflCost(p, h.sol); relDiff(re, h.sol.Cost) > CertTol {
			rep.failf("ufl seed %d: %s claims cost %g but open set evaluates to %g", seed, h.name, h.sol.Cost, re)
		}
		if h.sol.Cost < exact.Cost-CertTol*(1+exact.Cost) {
			rep.failf("ufl seed %d: %s cost %g below brute-force optimum %g", seed, h.name, h.sol.Cost, exact.Cost)
		}
		if h.name == "Solve" {
			if gap := (h.sol.Cost - exact.Cost) / math.Max(1, exact.Cost); gap > rep.WorstUFLHeurGap {
				rep.WorstUFLHeurGap = gap
			}
		}
	}
}

// uflCost re-evaluates a facility-location solution from scratch: open costs
// of the reported set plus each demand's cheapest open assignment.
func uflCost(p *facloc.Problem, s facloc.Solution) float64 {
	open := make(map[int]bool, len(s.Open))
	var cost float64
	for _, i := range s.Open {
		open[i] = true
		cost += p.Open[i]
	}
	for k := 0; k < p.NumDemands(); k++ {
		best := math.Inf(1)
		for i, c := range p.Row(k) {
			if open[i] && c < best {
				best = c
			}
		}
		cost += best
	}
	return cost
}
