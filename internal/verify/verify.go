// Package verify is the repository's independent correctness layer: given a
// placement solution and the numbers a solver claims about it, it re-derives
// every claim from the instance data alone and fails loudly on disagreement.
//
// The package deliberately shares no code with the solvers it audits. The
// EPF driver (internal/epf), the facility-location block solver
// (internal/facloc) and the dense simplex (internal/simplex) all maintain
// incremental state — activities, duals, best trackers — whose bugs are
// exactly the ones that corrupt results silently; the checkers here compute
// everything from scratch with plain dense loops over the instance. The only
// shared surfaces are the problem definition itself (internal/mip's Instance
// and Solution types, internal/topology's path tables), which is the model
// being solved, not a solver.
//
// Three layers:
//
//   - CheckSolution / Audit: feasibility certificates. Conservation,
//     availability, disk and per-slice link activity are re-accumulated
//     densely and compared against both the solver's claims and
//     mip.Solution's own sparse evaluators (a cross-evaluator check).
//
//   - CertifyLowerBound: a duality-gap certificate. Given the coupling-row
//     dual prices λ a solver reports (epf.Result.RowDuals), the Lagrangian
//     bound LR(λ) = Σ_k LB_k(λ) − λ·b is re-derived with freshly built block
//     costs and per-block dual-ascent prices whose feasibility is checked
//     arithmetically — so the bound's validity rests on the check, not on
//     any solver's internal state.
//
//   - Differential: a cross-solver harness (diff.go) sweeping seeded random
//     instances through EPF vs the exact simplex LP, and the facloc
//     heuristics vs brute-force enumeration.
package verify

import (
	"fmt"
	"math"
	"strings"

	"vodplace/internal/epf"
	"vodplace/internal/mip"
)

// CertTol is the relative slack allowed when comparing independently
// re-derived quantities (objectives, bounds) against solver claims: the two
// computations order floating-point sums differently, so exact equality is
// not expected, but disagreement beyond CertTol·scale is a failure.
const CertTol = 1e-6

// Report is the outcome of auditing one solution.
type Report struct {
	// Objective is the independently recomputed objective value.
	Objective float64
	// Violation holds the independently recomputed constraint violations
	// (same component meanings as mip.Violation).
	Violation mip.Violation
	// CertifiedLB is the lower bound this audit could certify (0 when no
	// dual certificate was checked).
	CertifiedLB float64
	// ClaimedLB is the bound the solver reported (Audit only).
	ClaimedLB float64
	// Gap is (Objective − CertifiedLB)/CertifiedLB when a certificate was
	// checked and CertifiedLB > 0.
	Gap float64
	// Failures lists every hard violation found; empty means the audit
	// passed.
	Failures []string
}

// Ok reports whether the audit found no hard failures.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// Err returns nil when the audit passed, or one error summarizing every
// failure.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	return fmt.Errorf("verify: %s", strings.Join(r.Failures, "; "))
}

// String formats the report for CLI -verify output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objective %.6g  violations disk %.3g link %.3g unserved %.3g x>y %.3g",
		r.Objective, r.Violation.Disk, r.Violation.Link, r.Violation.Unserved, r.Violation.XExceedsY)
	if r.CertifiedLB != 0 {
		fmt.Fprintf(&b, "  certified lb %.6g (gap %.2f%%)", r.CertifiedLB, 100*r.Gap)
	}
	if r.Ok() {
		b.WriteString("  [certificates OK]")
	} else {
		fmt.Fprintf(&b, "  [%d FAILURES: %s]", len(r.Failures), strings.Join(r.Failures, "; "))
	}
	return b.String()
}

func (r *Report) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// relDiff returns |a−b| scaled by max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) / scale
}

// CheckSolution re-derives sol's objective and every constraint family with
// dense from-scratch accumulation, then cross-checks the result against
// mip.Solution's own sparse evaluators. It never consults solver state.
func CheckSolution(sol *mip.Solution) *Report {
	r := &Report{}
	if sol == nil || sol.Inst == nil {
		r.failf("nil solution")
		return r
	}
	inst := sol.Inst
	n := inst.NumVHOs()
	L := inst.G.NumLinks()

	diskUse := make([]float64, n)
	linkUse := make([][]float64, inst.Slices)
	for t := range linkUse {
		linkUse[t] = make([]float64, L)
	}
	yDense := make([]float64, n)
	var objective float64

	if len(sol.Videos) != len(inst.Demands) {
		r.failf("solution has %d videos for %d demands", len(sol.Videos), len(inst.Demands))
		return r
	}
	for vi := range sol.Videos {
		d := &inst.Demands[vi]
		vp := &sol.Videos[vi]

		// Dense per-video y, with structural checks on the sparse encoding.
		for i := range yDense {
			yDense[i] = 0
		}
		var ySum float64
		prev := int32(-1)
		for _, f := range vp.Open {
			if f.I < 0 || int(f.I) >= n {
				r.failf("video %d: open office %d out of range", d.Video, f.I)
				return r
			}
			if f.I <= prev {
				r.failf("video %d: open entries not strictly ascending", d.Video)
			}
			prev = f.I
			if math.IsNaN(f.V) || f.V < -mip.FeasTol || f.V > 1+mip.FeasTol {
				r.failf("video %d: y[%d] = %g outside [0,1]", d.Video, f.I, f.V)
			}
			yDense[f.I] = f.V
			ySum += f.V
			diskUse[f.I] += d.SizeGB * f.V
			if inst.UpdateWeight != 0 {
				objective += inst.PlacementCost(vi, int(f.I)) * f.V
			}
		}

		if len(vp.Assign) != len(d.Js) {
			r.failf("video %d: %d assignment rows for %d demand offices", d.Video, len(vp.Assign), len(d.Js))
			return r
		}
		for k := range d.Js {
			j := int(d.Js[k])
			var served float64
			for _, f := range vp.Assign[k] {
				if f.I < 0 || int(f.I) >= n {
					r.failf("video %d: assignment office %d out of range", d.Video, f.I)
					return r
				}
				if math.IsNaN(f.V) || f.V < -mip.FeasTol {
					r.failf("video %d: x[%d→%d] = %g negative", d.Video, f.I, j, f.V)
				}
				served += f.V
				if ex := f.V - yDense[f.I]; ex > r.Violation.XExceedsY {
					r.Violation.XExceedsY = ex
				}
				objective += d.SizeGB * d.Agg[k] * inst.Cost(int(f.I), j) * f.V
				if int(f.I) != j && f.V != 0 {
					// The CSR row visits the dense loop's nonzeros in the same
					// ascending-t order, so accumulation is bit-identical.
					ts, fv := d.ConcNZ(k)
					for ti, tt := range ts {
						flow := d.RateMbps * fv[ti] * f.V
						if flow == 0 {
							continue
						}
						for _, l := range inst.G.Path(int(f.I), j) {
							linkUse[int(tt)][l] += flow
						}
					}
				}
			}
			if dev := math.Abs(served - 1); dev > r.Violation.Unserved {
				r.Violation.Unserved = dev
			}
		}
		// Constraints (3)+(4): a video with no demand must still be stored.
		if len(d.Js) == 0 {
			if dev := 1 - ySum; dev > r.Violation.Unserved {
				r.Violation.Unserved = dev
			}
		}
	}

	for i, u := range diskUse {
		if rel := u/inst.DiskGB[i] - 1; rel > r.Violation.Disk {
			r.Violation.Disk = rel
		}
	}
	for t := range linkUse {
		for l, u := range linkUse[t] {
			if rel := u/inst.LinkCapMbps[l] - 1; rel > r.Violation.Link {
				r.Violation.Link = rel
			}
		}
	}
	r.Objective = objective

	if math.IsNaN(objective) || math.IsInf(objective, 0) {
		r.failf("objective is %g", objective)
	}
	// Cross-evaluator check: the sparse evaluators in internal/mip must agree
	// with this dense re-derivation.
	if d := relDiff(objective, sol.Objective()); d > CertTol {
		r.failf("objective evaluators disagree: dense %g vs sparse %g", objective, sol.Objective())
	}
	mv := sol.Check()
	for _, c := range []struct {
		name        string
		dense, mips float64
	}{
		{"disk", r.Violation.Disk, mv.Disk},
		{"link", r.Violation.Link, mv.Link},
		{"unserved", r.Violation.Unserved, mv.Unserved},
		{"x>y", r.Violation.XExceedsY, mv.XExceedsY},
	} {
		if relDiff(c.dense, c.mips) > CertTol {
			r.failf("%s violation evaluators disagree: dense %g vs sparse %g", c.name, c.dense, c.mips)
		}
	}
	return r
}

// Audit is the full certificate check for one EPF result: feasibility
// re-derivation, cross-checks of the claimed objective and violations, and
// the duality-gap certificate from the reported row duals. Hard failures
// (Report.Err() != nil) mean the result's claims are wrong, not merely that
// the solution is ε-infeasible — coupling-row slack is the solver's reported
// business; lying about it is the auditor's.
func Audit(inst *mip.Instance, res *epf.Result) *Report {
	if inst == nil || res == nil || res.Sol == nil {
		r := &Report{}
		r.failf("nil instance or result")
		return r
	}
	if res.Sol.Inst != inst {
		r := &Report{}
		r.failf("result's solution belongs to a different instance")
		return r
	}
	r := CheckSolution(res.Sol)
	r.ClaimedLB = res.LowerBound

	// The block constraints are maintained exactly by every solver path
	// (including cancelled partial results); violations there are hard bugs.
	if r.Violation.Unserved > mip.FeasTol {
		r.failf("conservation violated: max |Σx−1| = %g", r.Violation.Unserved)
	}
	if r.Violation.XExceedsY > mip.FeasTol {
		r.failf("availability violated: max x−y = %g", r.Violation.XExceedsY)
	}

	// Claimed numbers must match the re-derivation.
	if d := relDiff(res.Objective, r.Objective); d > CertTol {
		r.failf("claimed objective %g vs recomputed %g", res.Objective, r.Objective)
	}
	for _, c := range []struct {
		name             string
		claimed, derived float64
	}{
		{"disk", res.Violation.Disk, r.Violation.Disk},
		{"link", res.Violation.Link, r.Violation.Link},
	} {
		if relDiff(c.claimed, c.derived) > CertTol {
			r.failf("claimed %s violation %g vs recomputed %g", c.name, c.claimed, c.derived)
		}
	}

	// Duality-gap certificate: the claimed bound must be justified by the
	// reported dual prices (or by the trivial no-network bound, which is the
	// λ = 0 certificate).
	cert, err := CertifyLowerBound(inst, res.RowDuals)
	if err != nil {
		r.failf("certificate: %v", err)
		return r
	}
	r.CertifiedLB = cert
	if res.LowerBound > cert*(1+CertTol)+CertTol {
		r.failf("claimed lower bound %g exceeds certified bound %g", res.LowerBound, cert)
	}
	if cert > 0 {
		r.Gap = (r.Objective - cert) / cert
	}
	return r
}
