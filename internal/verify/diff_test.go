package verify

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDifferentialHarness is the acceptance sweep: 50 seeded random
// instances cross-checked between the exact simplex and the EPF solver
// (plus integer rounding), every result audited, and 50 UFL problems crossed
// against brute force.
func TestDifferentialHarness(t *testing.T) {
	start := time.Now()
	rep, err := Differential(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 50 || rep.UFLs != 50 {
		t.Fatalf("incomplete sweep: %d instances, %d UFLs", rep.Instances, rep.UFLs)
	}
	if !rep.Ok() {
		t.Fatalf("differential failures:\n%v", rep.Failures)
	}
	t.Logf("%s (%.1fs)", rep, time.Since(start).Seconds())
}

// TestDifferentialDeterministic: the harness must produce bit-identical
// aggregates for a fixed seed — the property that makes failures
// reproducible from the one-line report.
func TestDifferentialDeterministic(t *testing.T) {
	opts := Options{Instances: 3, UFLs: 5, Seed: 7}
	a, err := Differential(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Differential(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two runs differ:\n%s\n%s", a, b)
	}
}

// TestDifferentialCancellation mirrors the repository's SolveContext
// contract: cancelling mid-sweep returns the partial report with ctx.Err().
func TestDifferentialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 2
	rep, err := Differential(ctx, Options{
		Instances: 50,
		UFLs:      50,
		OnInstance: func(i int) {
			if i+1 == stopAfter {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled sweep returned no partial report")
	}
	if rep.Instances != stopAfter {
		t.Errorf("partial report has %d instances, want %d", rep.Instances, stopAfter)
	}
	if rep.UFLs != 0 {
		t.Errorf("UFL sweep ran after cancellation: %d", rep.UFLs)
	}
	if !rep.Ok() {
		t.Errorf("partial results should be clean: %v", rep.Failures)
	}
}

// TestDifferentialAlreadyCancelled: a pre-cancelled context does no work.
func TestDifferentialAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Differential(ctx, Options{Instances: 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Instances != 0 || rep.UFLs != 0 {
		t.Errorf("work ran under a cancelled context: %+v", rep)
	}
}
