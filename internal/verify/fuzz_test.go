package verify

import (
	"math"
	"testing"

	"vodplace/internal/epf"
	"vodplace/internal/facloc"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
)

// clamp maps a raw fuzz byte into [lo, hi].
func clamp(b uint8, lo, hi int) int {
	return lo + int(b)%(hi-lo+1)
}

// FuzzNewInstance drives instance construction with arbitrary shape
// parameters: whatever NewInstance accepts must satisfy the model's basic
// invariants (finite symmetric costs, valid shortest paths, a finite
// non-negative trivial bound), and whatever it rejects must be rejected
// without panicking.
func FuzzNewInstance(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(7), uint8(1), int64(100))
	f.Add(int64(2), uint8(2), uint8(1), uint8(0), int64(1))
	f.Add(int64(3), uint8(9), uint8(12), uint8(3), int64(-5))
	f.Add(int64(-7), uint8(0), uint8(0), uint8(7), int64(0))
	f.Fuzz(func(t *testing.T, seed int64, nodesB, videosB, slicesB uint8, capRaw int64) {
		nodes := clamp(nodesB, 2, 8)
		videos := clamp(videosB, 0, 10)
		slices := clamp(slicesB, 0, 3)
		g := topology.Random(nodes, 0.5+float64(seed%4)/4, seed)
		demands := make([]mip.VideoDemand, videos)
		rngState := seed
		next := func() int64 { rngState = rngState*6364136223846793005 + 1442695040888963407; return rngState }
		for v := range demands {
			d := mip.VideoDemand{Video: v, SizeGB: 0.5 + float64(uint64(next())%4)/2, RateMbps: 2}
			for j := 0; j < nodes; j++ {
				if uint64(next())%3 != 0 {
					d.Js = append(d.Js, int32(j))
					d.Agg = append(d.Agg, 1+float64(uint64(next())%10))
				}
			}
			d.Conc = make([][]float64, slices)
			for tt := range d.Conc {
				conc := make([]float64, len(d.Js))
				for k := range conc {
					conc[k] = float64(uint64(next()) % 5)
				}
				d.Conc[tt] = conc
			}
			demands[v] = d
		}
		disk := make([]float64, nodes)
		for i := range disk {
			disk[i] = float64(capRaw % 97) // may be ≤ 0: NewInstance must reject
		}
		caps := make([]float64, g.NumLinks())
		for l := range caps {
			caps[l] = float64(capRaw % 89)
		}
		inst, err := mip.NewInstance(g, disk, caps, slices, demands)
		if err != nil {
			return // rejection without panic is the contract
		}
		if lb := inst.LowerBoundNoNetwork(); math.IsNaN(lb) || math.IsInf(lb, 0) || lb < 0 {
			t.Fatalf("trivial bound %g", lb)
		}
		for i := 0; i < nodes; i++ {
			for j := 0; j < nodes; j++ {
				c, cr := inst.Cost(i, j), inst.Cost(j, i)
				if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 || c != cr {
					t.Fatalf("cost(%d,%d) = %g, cost(%d,%d) = %g", i, j, c, j, i, cr)
				}
				if i != j && len(inst.G.Path(i, j)) == 0 {
					t.Fatalf("no path %d→%d in a connected graph", i, j)
				}
			}
		}
	})
}

// FuzzInstanceBuilder drives the streaming InstanceBuilder with arbitrary
// shapes and shard sizes against the batch NewInstance path. The two must
// accept and reject identically (same error text), and on acceptance the
// streamed instance must be value-identical to the batch one with a
// well-formed shard layout: contiguous disjoint ranges covering the catalog,
// no shard above the configured size, and per-shard nonzero counts that
// re-tally from the demands.
func FuzzInstanceBuilder(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(7), uint8(1), uint8(3), int64(100))
	f.Add(int64(2), uint8(2), uint8(1), uint8(0), uint8(1), int64(1))
	f.Add(int64(3), uint8(9), uint8(12), uint8(3), uint8(5), int64(-5))
	f.Add(int64(-7), uint8(0), uint8(0), uint8(7), uint8(0), int64(0))
	f.Fuzz(func(t *testing.T, seed int64, nodesB, videosB, slicesB, shardB uint8, capRaw int64) {
		nodes := clamp(nodesB, 2, 8)
		videos := clamp(videosB, 0, 10)
		slices := clamp(slicesB, 0, 3)
		shardSize := clamp(shardB, 0, 5)
		g := topology.Random(nodes, 0.5+float64(seed%4)/4, seed)
		demands := make([]mip.VideoDemand, videos)
		rngState := seed
		next := func() int64 { rngState = rngState*6364136223846793005 + 1442695040888963407; return rngState }
		for v := range demands {
			d := mip.VideoDemand{Video: v, SizeGB: 0.5 + float64(uint64(next())%4)/2, RateMbps: 2}
			for j := 0; j < nodes; j++ {
				if uint64(next())%3 != 0 {
					d.Js = append(d.Js, int32(j))
					d.Agg = append(d.Agg, 1+float64(uint64(next())%10))
				}
			}
			d.Conc = make([][]float64, slices)
			for tt := range d.Conc {
				conc := make([]float64, len(d.Js))
				for k := range conc {
					conc[k] = float64(uint64(next()) % 5)
				}
				d.Conc[tt] = conc
			}
			demands[v] = d
		}
		disk := make([]float64, nodes)
		for i := range disk {
			disk[i] = float64(capRaw % 97)
		}
		caps := make([]float64, g.NumLinks())
		for l := range caps {
			caps[l] = float64(capRaw % 89)
		}

		batch, batchErr := mip.NewInstance(g, disk, caps, slices, demands)
		b, streamErr := mip.NewInstanceBuilder(g, disk, caps, slices, shardSize)
		var streamed *mip.Instance
		if streamErr == nil {
			for vi := range demands {
				if streamErr = b.Add(&demands[vi]); streamErr != nil {
					break
				}
			}
			if streamErr == nil {
				streamed, streamErr = b.Seal()
			}
		}
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("accept/reject parity broken: batch %v, streamed %v", batchErr, streamErr)
		}
		if batchErr != nil {
			if batchErr.Error() != streamErr.Error() {
				t.Fatalf("error parity broken: batch %q, streamed %q", batchErr, streamErr)
			}
			return
		}

		// Shard geometry: contiguous, disjoint, covering, size-capped, with
		// nonzero counts that re-tally.
		ns := streamed.NumShards()
		if ns < 1 {
			t.Fatalf("sealed instance has %d shards", ns)
		}
		prev := 0
		for si := 0; si < ns; si++ {
			sh := streamed.Shards[si]
			if sh.Lo != prev || sh.Hi < sh.Lo || sh.Hi > streamed.NumVideos() {
				t.Fatalf("shard %d bad range [%d,%d), want lo %d", si, sh.Lo, sh.Hi, prev)
			}
			if shardSize > 0 && sh.Videos() > shardSize {
				t.Fatalf("shard %d holds %d videos, cap %d", si, sh.Videos(), shardSize)
			}
			var nnz int64
			for vi := sh.Lo; vi < sh.Hi; vi++ {
				nnz += int64(streamed.Demands[vi].NNZ())
			}
			if nnz != sh.NNZ {
				t.Fatalf("shard %d claims %d nonzeros, demands hold %d", si, sh.NNZ, nnz)
			}
			prev = sh.Hi
		}
		if prev != streamed.NumVideos() {
			t.Fatalf("shards cover %d of %d videos", prev, streamed.NumVideos())
		}

		// Value identity with the batch path, down to the CSR nonzeros.
		if streamed.NumVideos() != batch.NumVideos() {
			t.Fatalf("streamed %d videos, batch %d", streamed.NumVideos(), batch.NumVideos())
		}
		for vi := range batch.Demands {
			db, ds := &batch.Demands[vi], &streamed.Demands[vi]
			if db.Video != ds.Video || db.SizeGB != ds.SizeGB || db.RateMbps != ds.RateMbps || len(db.Js) != len(ds.Js) {
				t.Fatalf("video %d header mismatch", vi)
			}
			for k := range db.Js {
				if db.Js[k] != ds.Js[k] || db.Agg[k] != ds.Agg[k] {
					t.Fatalf("video %d demand %d differs", vi, k)
				}
				tb, fb := db.ConcNZ(k)
				tsj, fsj := ds.ConcNZ(k)
				if len(tb) != len(tsj) {
					t.Fatalf("video %d demand %d: %d vs %d nonzeros", vi, k, len(tb), len(tsj))
				}
				for x := range tb {
					if tb[x] != tsj[x] || fb[x] != fsj[x] {
						t.Fatalf("video %d demand %d nonzero %d differs", vi, k, x)
					}
				}
			}
		}
	})
}

// FuzzEPFSolve runs the approximate solver on arbitrary small instances and
// audits every result with the independent certificate checker: whatever the
// solver outputs, its claims must survive re-derivation.
func FuzzEPFSolve(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5), uint8(30))
	f.Add(int64(9), uint8(6), uint8(8), uint8(60))
	f.Add(int64(-3), uint8(2), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nodesB, videosB, passesB uint8) {
		inst, err := RandomInstance(seed, InstanceOpts{
			Nodes:  clamp(nodesB, 2, 6),
			Videos: clamp(videosB, 1, 8),
			Slices: clamp(passesB, 1, 2),
		})
		if err != nil {
			t.Skip()
		}
		opts := epf.Options{Seed: seed, MaxPasses: clamp(passesB, 1, 80)}
		res, err := epf.Solve(inst, opts)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if r := Audit(inst, res); !r.Ok() {
			t.Fatalf("LP audit: %v", r.Err())
		}
		intRes, err := epf.SolveInteger(inst, opts)
		if err != nil {
			t.Fatalf("SolveInteger: %v", err)
		}
		if !intRes.Sol.IsIntegral(1e-4) {
			t.Fatal("rounded solution not integral")
		}
		if r := Audit(inst, intRes); !r.Ok() {
			t.Fatalf("integer audit: %v", r.Err())
		}
	})
}

// FuzzFacloc cross-checks the facility-location heuristics, dual ascent and
// brute force on arbitrary problems: dual bound ≤ optimum ≤ heuristic costs,
// and every reported cost must re-evaluate from its reported open set.
func FuzzFacloc(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(6))
	f.Add(int64(5), uint8(8), uint8(12))
	f.Add(int64(-11), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nB, kB uint8) {
		p := RandomUFL(seed, clamp(nB, 1, 9), clamp(kB, 0, 12))
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid problem: %v", err)
		}
		var fs facloc.Solver
		exact := facloc.BruteForce(p)
		tol := CertTol * (1 + math.Abs(exact.Cost))
		if dualLB, _ := fs.DualAscent(p); dualLB > exact.Cost+tol {
			t.Fatalf("dual bound %g above optimum %g", dualLB, exact.Cost)
		}
		for _, h := range []struct {
			name string
			sol  facloc.Solution
		}{{"Solve", fs.Solve(p)}, {"SolveQuick", fs.SolveQuick(p)}, {"BruteForce", exact}} {
			if re := uflCost(p, h.sol); relDiff(re, h.sol.Cost) > CertTol {
				t.Fatalf("%s claims %g, open set evaluates to %g", h.name, h.sol.Cost, re)
			}
			if h.sol.Cost < exact.Cost-tol {
				t.Fatalf("%s cost %g below optimum %g", h.name, h.sol.Cost, exact.Cost)
			}
		}
	})
}
