package verify

import (
	"fmt"
	"math"
	"math/rand"

	"vodplace/internal/facloc"
	"vodplace/internal/mip"
	"vodplace/internal/topology"
)

// InstanceOpts parameterizes the seeded random instances the differential
// harness sweeps. The zero value is replaced by Defaults().
type InstanceOpts struct {
	// Nodes is the number of video hub offices. Default 5.
	Nodes int
	// Videos is the number of videos in the library. Default 7.
	Videos int
	// Slices is the number of time slices. Default 1.
	Slices int
	// Density is the extra-edge density passed to topology.Random. Default 1.
	Density float64
	// DiskFactor scales per-office disk against total library size: each
	// office gets totalSize·DiskFactor/Nodes GB. Default 2.
	DiskFactor float64
	// LinkCapMbps is the uniform link capacity. Default 100.
	LinkCapMbps float64
	// DemandProb is the probability each office demands each video.
	// Default 0.7.
	DemandProb float64
	// Beta is the fixed per-transfer cost component of c_ij = α·hops + β.
	// Default 0.5 (nonzero so the no-network bound is informative).
	Beta float64
}

// Defaults fills zero fields with the harness defaults described above.
func (o InstanceOpts) Defaults() InstanceOpts {
	if o.Nodes == 0 {
		o.Nodes = 5
	}
	if o.Videos == 0 {
		o.Videos = 7
	}
	if o.Slices == 0 {
		o.Slices = 1
	}
	if o.Density == 0 {
		o.Density = 1
	}
	if o.DiskFactor == 0 {
		o.DiskFactor = 2
	}
	if o.LinkCapMbps == 0 {
		o.LinkCapMbps = 100
	}
	if o.DemandProb == 0 {
		o.DemandProb = 0.7
	}
	if o.Beta == 0 {
		o.Beta = 0.5
	}
	return o
}

// RandomInstance builds a seeded random placement instance small enough for
// the dense simplex to solve exactly. The same seed always yields the same
// instance; distinct seeds drive the topology and the demand pattern.
func RandomInstance(seed int64, opts InstanceOpts) (*mip.Instance, error) {
	o := opts.Defaults()
	rng := rand.New(rand.NewSource(seed))
	g := topology.Random(o.Nodes, o.Density, seed)
	demands := make([]mip.VideoDemand, o.Videos)
	var totalSize float64
	for v := range demands {
		size := []float64{0.5, 1, 2}[rng.Intn(3)]
		totalSize += size
		d := mip.VideoDemand{Video: v, SizeGB: size, RateMbps: 2}
		for j := 0; j < o.Nodes; j++ {
			if rng.Float64() < o.DemandProb {
				d.Js = append(d.Js, int32(j))
				d.Agg = append(d.Agg, 1+rng.Float64()*10)
			}
		}
		d.Conc = make([][]float64, o.Slices)
		for t := range d.Conc {
			conc := make([]float64, len(d.Js))
			for k := range conc {
				// Concurrency peaks move across slices so multi-slice
				// instances exercise distinct link rows.
				phase := 0.5 + 0.5*math.Cos(float64(t+v)*math.Pi/float64(o.Slices))
				conc[k] = math.Ceil(d.Agg[k] * phase / 3)
			}
			d.Conc[t] = conc
		}
		demands[v] = d
	}
	disk := make([]float64, o.Nodes)
	for i := range disk {
		disk[i] = totalSize * o.DiskFactor / float64(o.Nodes)
	}
	caps := make([]float64, g.NumLinks())
	for l := range caps {
		caps[l] = o.LinkCapMbps
	}
	inst, err := mip.NewInstance(g, disk, caps, o.Slices, demands)
	if err != nil {
		return nil, fmt.Errorf("seed %d: %w", seed, err)
	}
	inst.Beta = o.Beta
	return inst, nil
}

// RandomUFL builds a seeded random uncapacitated facility-location problem
// with n facilities and k demands, sized for BruteForce enumeration.
func RandomUFL(seed int64, n, k int) *facloc.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &facloc.Problem{
		Open:   make([]float64, n),
		Assign: make([]float64, k*n),
	}
	for i := range p.Open {
		p.Open[i] = rng.Float64() * 10
	}
	// Row-major fill preserves the historical rng draw order.
	for idx := range p.Assign {
		p.Assign[idx] = rng.Float64() * 8
	}
	return p
}
