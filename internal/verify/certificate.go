package verify

import (
	"fmt"
	"math"

	"vodplace/internal/facloc"
	"vodplace/internal/mip"
)

// CertifyLowerBound re-derives a provable lower bound on the placement LP
// (and hence MIP) optimum from a coupling-row dual vector λ, laid out as
// epf.Result.RowDuals documents: entries 0..n-1 price the disk rows, entry
// n + t·L + l prices link l in slice t.
//
// The certificate is the Lagrangian bound LR(λ) = Σ_m LB_m(λ) − λ·b, where
// LB_m is a valid lower bound on video m's block subproblem — an
// uncapacitated facility location LP with open cost
// F_i = λ_disk(i)·s^m + w·s^m·c(o_m,i) and assignment cost
// g_ki = s^m·a_k·c(i,j_k) + Σ_t r^m·f_k(t)·Σ_{l∈P_ij} λ_link(l,t). The block
// costs are built here from the instance data (not by the solver), and the
// per-block bound is justified by a UFL dual vector v whose feasibility
// Σ_k max(0, v_k − g_ki) ≤ F_i is verified arithmetically below — so the
// bound's validity rests on that check, not on how v was produced (the
// Erlenkotter ascent in internal/facloc proposes it).
//
// A second valid bound — the no-network bound Σ_m Σ_k β·s^m·a_k (every
// request served locally) plus the cheapest placement-transfer term — is
// re-derived independently and the maximum of the two is returned, so the
// zero dual vector certifies a solver's initial bound too. Passing nil duals
// certifies only the no-network bound.
func CertifyLowerBound(inst *mip.Instance, rowDuals []float64) (float64, error) {
	if inst == nil {
		return 0, fmt.Errorf("nil instance")
	}
	n := inst.NumVHOs()
	L := inst.G.NumLinks()
	T := inst.Slices
	trivial := noNetworkBound(inst)
	if rowDuals == nil {
		return trivial, nil
	}
	if len(rowDuals) != n+L*T {
		return 0, fmt.Errorf("dual vector has %d entries for %d rows", len(rowDuals), n+L*T)
	}
	for r, v := range rowDuals {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0, fmt.Errorf("dual %d is %g (must be finite and non-negative)", r, v)
		}
	}
	linkDual := func(l, t int) float64 { return rowDuals[n+t*L+l] }

	// Path-aggregated link prices, λ_path[t][i][j] = Σ_{l ∈ P_ij} λ_link(l,t).
	pathDual := make([][]float64, T)
	for t := 0; t < T; t++ {
		pathDual[t] = make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				var sum float64
				for _, l := range inst.G.Path(i, j) {
					sum += linkDual(int(l), t)
				}
				pathDual[t][i*n+j] = sum
			}
		}
	}

	var fs facloc.Solver
	prob := facloc.Problem{Open: make([]float64, n)}
	var lr float64
	for vi := range inst.Demands {
		d := &inst.Demands[vi]
		for i := 0; i < n; i++ {
			prob.Open[i] = rowDuals[i]*d.SizeGB + inst.PlacementCost(vi, i)
		}
		K := len(d.Js)
		if K == 0 {
			// The block minimum is opening the cheapest single facility.
			minF := math.Inf(1)
			for _, f := range prob.Open {
				if f < minF {
					minF = f
				}
			}
			lr += minF
			continue
		}
		prob.Reshape(K)
		for k := 0; k < K; k++ {
			j := int(d.Js[k])
			coef := d.SizeGB * d.Agg[k]
			row := prob.Row(k)
			// Ascending-t CSR nonzeros: the same terms, in the same order, as
			// the dense t-scan, so the certified costs are bit-identical.
			ts, fv := d.ConcNZ(k)
			for i := 0; i < n; i++ {
				c := coef * inst.Cost(i, j)
				for ti, tt := range ts {
					c += d.RateMbps * fv[ti] * pathDual[tt][i*n+j]
				}
				row[i] = c
			}
		}
		bound, err := checkedBlockBound(&fs, &prob)
		if err != nil {
			return 0, fmt.Errorf("video %d: %w", d.Video, err)
		}
		lr += bound
	}
	for i := 0; i < n; i++ {
		lr -= rowDuals[i] * inst.DiskGB[i]
	}
	for t := 0; t < T; t++ {
		for l := 0; l < L; l++ {
			lr -= linkDual(l, t) * inst.LinkCapMbps[l]
		}
	}
	if math.IsNaN(lr) {
		return 0, fmt.Errorf("certified bound is NaN")
	}
	return math.Max(lr, trivial), nil
}

// checkedBlockBound obtains a UFL dual vector for prob and verifies its
// feasibility before summing it: Σ_k max(0, v_k − g_ki) ≤ F_i must hold for
// every facility (up to floating-point slack proportional to the magnitudes
// involved). An infeasible proposal is a certificate failure.
func checkedBlockBound(fs *facloc.Solver, prob *facloc.Problem) (float64, error) {
	_, v := fs.DualAscent(prob)
	if len(v) != prob.NumDemands() {
		return 0, fmt.Errorf("dual ascent returned %d duals for %d demands", len(v), prob.NumDemands())
	}
	var bound float64
	for _, vk := range v {
		bound += vk
	}
	for i, F := range prob.Open {
		var load, scale float64
		for k := range v {
			if ex := v[k] - prob.Row(k)[i]; ex > 0 {
				load += ex
			}
			if a := math.Abs(v[k]); a > scale {
				scale = a
			}
		}
		if F > scale {
			scale = F
		}
		if load > F+CertTol*(1+scale) {
			return 0, fmt.Errorf("block dual infeasible at facility %d: load %g > open cost %g", i, load, F)
		}
	}
	return bound, nil
}

// noNetworkBound re-derives the trivial lower bound: every request served at
// cost β (zero hops), plus — under the update objective — the cheapest
// placement-transfer cost per video. This is the Lagrangian value at λ = 0
// in closed form, computed without the solver's LowerBoundNoNetwork.
func noNetworkBound(inst *mip.Instance) float64 {
	var total float64
	for vi := range inst.Demands {
		d := &inst.Demands[vi]
		for _, a := range d.Agg {
			total += inst.Beta * d.SizeGB * a
		}
		if inst.UpdateWeight != 0 {
			best := math.Inf(1)
			for i := 0; i < inst.NumVHOs(); i++ {
				if c := inst.PlacementCost(vi, i); c < best {
					best = c
				}
			}
			total += best
		}
	}
	return total
}
