// Package facloc solves the uncapacitated facility location (UFL)
// subproblems that arise when the placement LP is decomposed per video
// (§V-C): choosing where to store one video (facility opening, cost F_i from
// the disk duals) and how to serve each office's demand for it (assignment
// cost g_kj from the transfer objective and link duals).
//
// Two solvers are provided:
//
//   - DualAscent: an Erlenkotter-style dual ascent that produces a feasible
//     dual solution and hence a valid lower bound on the UFL *LP* optimum.
//     The exponential-potential-function driver needs valid per-block lower
//     bounds for its Lagrangian bound LR(λ) ≤ OPT to be sound, so it cannot
//     use a primal heuristic value there.
//
//   - Solve: greedy opening followed by add/drop/swap local search in the
//     spirit of Charikar–Guha, producing the integer solution used both as a
//     gradient-descent direction in the LP phase and as the rounded
//     placement in the rounding phase (§V-D).
//
// Problems here are small (facilities = offices, |V| ≈ 23..55 in the paper's
// networks) but solved millions of times, so the code favors O(n·K) passes
// over a flat row-major cost matrix and reuses scratch space via a Solver
// value.
package facloc

import (
	"fmt"
	"math"
)

// Problem is one UFL instance: n facilities, K demand points.
// Minimize Σ_i F_i·y_i + Σ_k g[k][i(k)] over facility sets and assignments.
// All costs must be non-negative (they are built from non-negative duals and
// transfer costs).
type Problem struct {
	// Open[i] is the cost F_i of opening facility i.
	Open []float64
	// Assign is the K×n assignment-cost matrix in flat row-major layout:
	// Assign[k*n+i] is the cost of serving demand point k from facility i,
	// with n = len(Open). The flat layout keeps the per-demand scans of the
	// inner solvers on contiguous memory.
	Assign []float64
}

// NumFacilities returns n.
func (p *Problem) NumFacilities() int { return len(p.Open) }

// NumDemands returns K.
func (p *Problem) NumDemands() int {
	if len(p.Open) == 0 {
		return 0
	}
	return len(p.Assign) / len(p.Open)
}

// Row returns demand k's assignment-cost row (length n).
func (p *Problem) Row(k int) []float64 {
	n := len(p.Open)
	return p.Assign[k*n : k*n+n : k*n+n]
}

// Reshape sets the matrix to K rows of n = len(Open) columns, reusing the
// backing array when possible. Contents are unspecified; callers fill every
// entry.
func (p *Problem) Reshape(k int) {
	sz := k * len(p.Open)
	if cap(p.Assign) < sz {
		p.Assign = make([]float64, sz)
	}
	p.Assign = p.Assign[:sz]
}

// Validate checks structural consistency; solver entry points call it only
// in debug paths, so malformed problems surface in tests rather than deep in
// solver loops.
func (p *Problem) Validate() error {
	n := len(p.Open)
	if n == 0 {
		return fmt.Errorf("facloc: no facilities")
	}
	for i, f := range p.Open {
		if f < 0 || math.IsNaN(f) {
			return fmt.Errorf("facloc: open cost %d is %g", i, f)
		}
	}
	if len(p.Assign)%n != 0 {
		return fmt.Errorf("facloc: assign matrix has %d entries, not a multiple of %d facilities", len(p.Assign), n)
	}
	for idx, g := range p.Assign {
		if g < 0 || math.IsNaN(g) {
			return fmt.Errorf("facloc: assign cost (%d,%d) is %g", idx/n, idx%n, g)
		}
	}
	return nil
}

// Solution is an integer UFL solution.
type Solution struct {
	// Open lists the opened facilities, ascending.
	Open []int
	// Assign[k] is the facility serving demand point k (-1 when K == 0 rows
	// never occur; every demand point is assigned).
	Assign []int
	// Cost is the total cost of the solution.
	Cost float64
}

// Solver carries reusable scratch space. A zero Solver is ready to use; it
// is not safe for concurrent use — use one Solver per goroutine.
type Solver struct {
	// WarmTries / WarmHits count SolveQuickInto / SolveWarmInto calls that
	// received a warm open set, and the subset where the search improved on
	// it (SolveQuickInto: the warm local optimum beat the cold first start;
	// SolveWarmInto: the search moved off the seed). Plain counters (no
	// atomics): each Solver instance is single-goroutine by contract; the epf
	// solver keeps one per worker and folds these into its Stats on the
	// driver goroutine.
	WarmTries int64
	WarmHits  int64

	best1, best2 []float64 // cheapest and second-cheapest open assignment per k
	bestI        []int     // facility achieving best1
	bestI2       []int     // facility achieving best2
	open         []bool
	// openList mirrors open as an ascending index list, so per-demand
	// rescans and open-set sums walk only the open facilities (usually a
	// handful out of n) in the same ascending order the historical
	// full-array scans used — identical candidate sequence, fewer reads.
	openList    []int
	openScratch []bool
	nOpen       int
	gainBuf     []float64
	// dual-ascent scratch
	v       []float64
	slack   []float64
	order   []int
	contrib []int
}

func (s *Solver) reserve(n, k int) {
	if cap(s.best1) < k {
		s.best1 = make([]float64, k)
		s.best2 = make([]float64, k)
		s.bestI = make([]int, k)
		s.bestI2 = make([]int, k)
	}
	s.best1 = s.best1[:k]
	s.best2 = s.best2[:k]
	s.bestI = s.bestI[:k]
	s.bestI2 = s.bestI2[:k]
	if cap(s.open) < n {
		s.open = make([]bool, n)
		s.gainBuf = make([]float64, n)
		s.openList = make([]int, 0, n)
	}
	s.open = s.open[:n]
	s.gainBuf = s.gainBuf[:n]
	for i := range s.open {
		s.open[i] = false
	}
	s.openList = s.openList[:0]
	s.nOpen = 0
}

// rebuildOpenList resyncs openList from the open booleans (used after bulk
// edits of the open set; incremental moves maintain the list directly).
func (s *Solver) rebuildOpenList() {
	s.openList = s.openList[:0]
	for i, o := range s.open {
		if o {
			s.openList = append(s.openList, i)
		}
	}
}

// refreshBests recomputes best/second-best open facilities for every demand.
func (s *Solver) refreshBests(p *Problem) {
	for k := range s.best1 {
		s.rescanDemand(p, k)
	}
}

// rescanDemand recomputes demand k's best and second-best open facilities,
// scanning only the open list (ascending, matching the historical full-row
// scan's candidate order).
func (s *Solver) rescanDemand(p *Problem, k int) {
	row := p.Row(k)
	b1, b2 := math.Inf(1), math.Inf(1)
	bi, bi2 := -1, -1
	for _, i := range s.openList {
		g := row[i]
		if g < b1 {
			b2, bi2 = b1, bi
			b1, bi = g, i
		} else if g < b2 {
			b2, bi2 = g, i
		}
	}
	s.best1[k], s.best2[k] = b1, b2
	s.bestI[k], s.bestI2[k] = bi, bi2
}

// openFacility opens i and updates the best trackers incrementally (O(K)).
func (s *Solver) openFacility(p *Problem, i int) {
	s.open[i] = true
	s.nOpen++
	lst := append(s.openList, i)
	for a := len(lst) - 1; a > 0 && lst[a-1] > i; a-- {
		lst[a], lst[a-1] = lst[a-1], i
	}
	s.openList = lst
	n := len(p.Open)
	for k := range s.best1 {
		g := p.Assign[k*n+i]
		if g < s.best1[k] {
			s.best2[k], s.bestI2[k] = s.best1[k], s.bestI[k]
			s.best1[k], s.bestI[k] = g, i
		} else if g < s.best2[k] {
			s.best2[k], s.bestI2[k] = g, i
		}
	}
}

// closeFacility closes i, rescanning only the demands it backed.
func (s *Solver) closeFacility(p *Problem, i int) {
	s.open[i] = false
	s.nOpen--
	for a, x := range s.openList {
		if x == i {
			s.openList = append(s.openList[:a], s.openList[a+1:]...)
			break
		}
	}
	for k := range s.best1 {
		if s.bestI[k] == i || s.bestI2[k] == i {
			s.rescanDemand(p, k)
		}
	}
}

// openSetCost returns the total cost of the currently open set given fresh
// bests.
func (s *Solver) openSetCost(p *Problem) float64 {
	var total float64
	for _, i := range s.openList {
		total += p.Open[i]
	}
	for k := range s.best1 {
		total += s.best1[k]
	}
	return total
}

// cheapestSingle returns the facility with the cheapest total cost when it
// alone is open. The accumulation runs row-major over the cost matrix;
// every facility's sum is still Open[i] plus its column entries in
// ascending k order, the same addition sequence as a per-column scan.
func (s *Solver) cheapestSingle(p *Problem, kk int) int {
	n := len(p.Open)
	acc := s.gainBuf
	copy(acc, p.Open)
	for k := 0; k < kk; k++ {
		row := p.Row(k)
		for i := 0; i < n; i++ {
			acc[i] += row[i]
		}
	}
	bestSingle, bestCost := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		if acc[i] < bestCost {
			bestSingle, bestCost = i, acc[i]
		}
	}
	return bestSingle
}

// Solve computes an integer UFL solution via local search from two
// complementary starts — the cheapest single facility (greedy-add start) and
// the all-open set (drop start) — keeping the better result. The problem
// must have at least one facility. Even with zero demand points, one
// facility is opened (every video must be stored somewhere — constraints
// (3)+(4) imply Σ_i y_i^m ≥ 1).
func (s *Solver) Solve(p *Problem) Solution {
	var out Solution
	s.SolveInto(p, &out)
	return out
}

// SolveInto is Solve writing the result into out, reusing its backing
// arrays (zero allocations once out has been used for a same-shape problem).
func (s *Solver) SolveInto(p *Problem, out *Solution) {
	n, kk := p.NumFacilities(), p.NumDemands()
	if n == 0 {
		panic("facloc: Solve with no facilities")
	}
	s.reserve(n, kk)

	// Start 1: the single facility with the cheapest total cost.
	s.open[s.cheapestSingle(p, kk)] = true
	s.nOpen = 1
	s.rebuildOpenList()
	s.refreshBests(p)
	s.localSearch(p, true)
	cost1 := s.openSetCost(p)
	if cap(s.openScratch) < n {
		s.openScratch = make([]bool, n)
	}
	open1 := s.openScratch[:n]
	copy(open1, s.open)
	nOpen1 := s.nOpen

	// Start 2: everything open, letting drop moves pare the set down.
	for i := range s.open {
		s.open[i] = true
	}
	s.nOpen = n
	s.rebuildOpenList()
	s.refreshBests(p)
	s.localSearch(p, true)
	if cost1 <= s.openSetCost(p) {
		copy(s.open, open1)
		s.nOpen = nOpen1
		s.rebuildOpenList()
		s.refreshBests(p)
	}
	s.extractInto(p, kk, out)
}

// SolveWarm is Solve started from a warm open set (ascending facility
// indices) instead of the two cold starts: the full add/drop/swap local
// search runs from the warm set alone. With an empty warm set it is exactly
// Solve. Used by the epf rounding phase under cross-period warm starts,
// where the previous period's placement usually sits a couple of moves from
// the new optimum and the cold starts' long climbs are the dominant cost.
func (s *Solver) SolveWarm(p *Problem, warm []int32) Solution {
	var out Solution
	s.SolveWarmInto(p, &out, warm)
	return out
}

// SolveWarmInto is SolveWarm writing the result into out, reusing its
// backing arrays.
func (s *Solver) SolveWarmInto(p *Problem, out *Solution, warm []int32) {
	if len(warm) == 0 {
		s.SolveInto(p, out)
		return
	}
	n, kk := p.NumFacilities(), p.NumDemands()
	if n == 0 {
		panic("facloc: SolveWarm with no facilities")
	}
	s.reserve(n, kk)

	// Single start: the warm open set. The full add/drop/swap search runs
	// from it, so any configuration reachable from the cheapest-single or
	// all-open starts by improving moves is reachable from here too; what is
	// saved is the cold starts' long climbs, which is most of the rounding
	// bill when the warm set already sits near the optimum.
	s.WarmTries++
	for i := range s.open {
		s.open[i] = false
	}
	s.nOpen = 0
	for _, i := range warm {
		if !s.open[i] {
			s.open[i] = true
			s.nOpen++
		}
	}
	s.rebuildOpenList()
	s.refreshBests(p)
	before := s.openSetCost(p)
	s.localSearch(p, true)
	if s.openSetCost(p) < before {
		s.WarmHits++
	}
	s.extractInto(p, kk, out)
}

// SolveQuick is a cheaper Solve for the solver's inner descent loop: both
// starts (cheapest-single and all-open) with add/drop moves, but no swap
// scan — the O(n²K) swap sweep at every local optimum dominated solver
// profiles. Block steps need a good direction, not a certified local
// optimum; the robust Solve is reserved for the rounding phase.
func (s *Solver) SolveQuick(p *Problem) Solution {
	var out Solution
	s.SolveQuickInto(p, &out, nil)
	return out
}

// SolveQuickInto is SolveQuick writing the result into out, reusing its
// backing arrays. When warm is non-empty it replaces the all-open second
// start with the given open set (ascending facility indices) — used by the
// epf solver's opt-in warm-start mode, where the previous pass's block
// solution is usually near the new optimum and seeds the local search much
// closer than the all-open drop start. An empty warm set keeps the default
// bit-exact two-start schedule.
func (s *Solver) SolveQuickInto(p *Problem, out *Solution, warm []int32) {
	n, kk := p.NumFacilities(), p.NumDemands()
	if n == 0 {
		panic("facloc: SolveQuick with no facilities")
	}
	s.reserve(n, kk)
	s.open[s.cheapestSingle(p, kk)] = true
	s.nOpen = 1
	s.rebuildOpenList()
	s.refreshBests(p)
	s.localSearch(p, false)
	cost1 := s.openSetCost(p)
	if cap(s.openScratch) < n {
		s.openScratch = make([]bool, n)
	}
	open1 := s.openScratch[:n]
	copy(open1, s.open)
	nOpen1 := s.nOpen

	for i := range s.open {
		s.open[i] = false
	}
	if len(warm) > 0 {
		s.WarmTries++
		s.nOpen = 0
		for _, i := range warm {
			if !s.open[i] {
				s.open[i] = true
				s.nOpen++
			}
		}
	} else {
		for i := range s.open {
			s.open[i] = true
		}
		s.nOpen = n
	}
	s.rebuildOpenList()
	s.refreshBests(p)
	s.localSearch(p, false)
	cost2 := s.openSetCost(p)
	if len(warm) > 0 && cost2 < cost1 {
		s.WarmHits++
	}
	if cost1 <= cost2 {
		copy(s.open, open1)
		s.nOpen = nOpen1
		s.rebuildOpenList()
		s.refreshBests(p)
	}
	s.extractInto(p, kk, out)
}

// extractInto fills out from the current open set, reusing out's backing
// arrays.
func (s *Solver) extractInto(p *Problem, kk int, out *Solution) {
	out.Open = out.Open[:0]
	if cap(out.Assign) < kk {
		out.Assign = make([]int, kk)
	}
	out.Assign = out.Assign[:kk]
	out.Open = append(out.Open, s.openList...)
	for k := 0; k < kk; k++ {
		if s.bestI[k] < 0 {
			panic(fmt.Sprintf("facloc: demand %d unassigned: nOpen=%d open=%v best1=%v row=%v", k, s.nOpen, out.Open, s.best1[k], p.Row(k)))
		}
		out.Assign[k] = s.bestI[k]
	}
	out.Cost = s.openSetCost(p)
}

// localSearch runs add/drop (and, when swaps is set, swap) moves on the
// current open set to a local optimum or a pass cap. Best trackers are
// maintained incrementally: opening costs O(K), closing O(K + affected·n).
func (s *Solver) localSearch(p *Problem, swaps bool) {
	n := p.NumFacilities()
	kk := len(s.best1)
	const maxPasses = 60
	for pass := 0; pass < maxPasses; pass++ {
		improved := false

		// Add moves: gain of opening i = Σ_k max(0, best1_k − g_ki) − F_i.
		for i := 0; i < n; i++ {
			if s.open[i] {
				continue
			}
			gain := -p.Open[i]
			for k := 0; k < kk; k++ {
				if d := s.best1[k] - p.Assign[k*n+i]; d > 0 {
					gain += d
				}
			}
			if gain > 1e-12 {
				s.openFacility(p, i)
				improved = true
			}
		}

		// Drop moves: gain of closing i = F_i − Σ_{k: served by i} (best2_k − g_ki).
		for i := 0; i < n; i++ {
			if !s.open[i] {
				continue
			}
			gain := p.Open[i]
			feasible := true
			for k := 0; k < kk; k++ {
				if s.bestI[k] == i {
					if math.IsInf(s.best2[k], 1) {
						feasible = false // only open facility for this demand
						break
					}
					gain -= s.best2[k] - s.best1[k]
				}
			}
			// Keep at least one facility open overall.
			if feasible && gain > 1e-12 && s.nOpen > 1 {
				s.closeFacility(p, i)
				improved = true
			}
		}

		// Swap moves: close i, open i'. Evaluated only when add/drop stall,
		// since each evaluation is O(K).
		if swaps && !improved {
			for i := 0; i < n && !improved; i++ {
				if !s.open[i] {
					continue
				}
				for ip := 0; ip < n && !improved; ip++ {
					if s.open[ip] || ip == i {
						continue
					}
					gain := p.Open[i] - p.Open[ip]
					for k := 0; k < kk; k++ {
						cur := s.best1[k]
						// Serving options after the swap: cheapest open
						// facility other than i, or the newly opened ip.
						alt := p.Assign[k*n+ip]
						if s.bestI[k] != i {
							if cur < alt {
								alt = cur
							}
						} else if s.best2[k] < alt {
							alt = s.best2[k]
						}
						gain += cur - alt
					}
					if gain > 1e-12 {
						s.closeFacility(p, i)
						s.openFacility(p, ip)
						improved = true
					}
				}
			}
		}
		if !improved {
			break
		}
	}
}

// DualAscent computes a feasible solution (v, implicit w) of the UFL LP dual
//
//	max Σ_k v_k  s.t.  Σ_k max(0, v_k − g_ki) ≤ F_i  ∀i
//
// and returns its value, a valid lower bound on the UFL LP optimum (and
// hence on the integer optimum). The second return is the dual vector for
// diagnostics. With zero demand points the bound is min_i F_i, since every
// video must still be stored once.
func (s *Solver) DualAscent(p *Problem) (float64, []float64) {
	n, kk := p.NumFacilities(), p.NumDemands()
	if kk == 0 {
		lb := math.Inf(1)
		for _, f := range p.Open {
			if f < lb {
				lb = f
			}
		}
		return lb, nil
	}
	if cap(s.v) < kk {
		s.v = make([]float64, kk)
	}
	s.v = s.v[:kk]
	if cap(s.slack) < n {
		s.slack = make([]float64, n)
	}
	s.slack = s.slack[:n]
	if cap(s.order) < kk {
		s.order = make([]int, kk)
	}
	s.order = s.order[:kk]

	// Initialize v_k to the cheapest assignment cost; facility slacks absorb
	// the implied contributions. Both sweeps of a row run back to back while
	// it is cache-hot; the slack decrements still happen in (k, i) order, so
	// the accumulation sequence is unchanged.
	for i := range s.slack {
		s.slack[i] = p.Open[i]
	}
	for k := 0; k < kk; k++ {
		row := p.Row(k)
		m := math.Inf(1)
		for _, g := range row {
			if g < m {
				m = g
			}
		}
		s.v[k] = m
		for i, g := range row {
			if m > g {
				s.slack[i] -= m - g
			}
		}
	}
	// Slacks can go negative only through floating error; clamp.
	for i := range s.slack {
		if s.slack[i] < 0 {
			s.slack[i] = 0
		}
	}

	// Ascend demand duals in waves: raise each v_k to its next assignment
	// cost breakpoint or until a contributing facility's slack hits zero.
	for k := range s.order {
		s.order[k] = k
	}
	// Processing demands with the lowest initial dual first mimics the
	// classic ascent's uniform raise and converges in few waves; the order
	// is computed once — re-sorting each wave measurably dominated solver
	// profiles without improving the bound. A hand-rolled stable insertion
	// sort replaces sort.SliceStable: the K's here are small, the closure
	// and reflection overhead of the generic sort dominated this function's
	// profile, and a stable sort's output is unique, so the wave order (and
	// the solver trajectory built on it) is bit-identical.
	ord := s.order
	for a := 1; a < kk; a++ {
		x := ord[a]
		vx := s.v[x]
		b := a
		for ; b > 0 && s.v[ord[b-1]] > vx; b-- {
			ord[b] = ord[b-1]
		}
		ord[b] = x
	}
	// active is ord compacted in place as demands freeze: slacks never
	// increase and a frozen v_k never moves, so a demand whose allowed raise
	// once falls to zero can never progress in any later wave — dropping it
	// is exact, not an approximation, and later waves touch only the demands
	// still in play.
	if cap(s.contrib) < n {
		s.contrib = make([]int, n)
	}
	const maxWaves = 64
	active := ord
	for wave := 0; wave < maxWaves; wave++ {
		progressed := false
		na := 0
		for _, k := range active {
			row := p.Row(k)
			vk := s.v[k]
			// One fused sweep: the next assignment-cost breakpoint strictly
			// above v_k, and the minimum slack over contributing facilities
			// (g_ki <= v_k), recorded in ascending order so the raise below
			// touches only them. min() is order-free and the decrement order
			// is unchanged, so nothing differs numerically from the
			// historical full-row sweeps.
			next := math.Inf(1)
			minSlack := math.Inf(1)
			nc := 0
			for i, g := range row {
				if g > vk {
					if g < next {
						next = g
					}
				} else {
					if s.slack[i] < minSlack {
						minSlack = s.slack[i]
					}
					s.contrib[nc] = i
					nc++
				}
			}
			allowed := next - vk
			if minSlack < allowed {
				allowed = minSlack
			}
			if allowed <= 1e-15 || math.IsInf(allowed, 1) {
				continue // frozen for good; drops out of active
			}
			for _, i := range s.contrib[:nc] {
				s.slack[i] -= allowed
				if s.slack[i] < 0 {
					s.slack[i] = 0
				}
			}
			s.v[k] = vk + allowed
			progressed = true
			active[na] = k
			na++
		}
		active = active[:na]
		if !progressed {
			break
		}
	}
	var lb float64
	for _, vk := range s.v {
		lb += vk
	}
	return lb, s.v
}

// BruteForce exhaustively enumerates facility subsets and returns the true
// integer optimum. It is exponential in the facility count and exists for
// test cross-validation only (n ≤ ~15).
func BruteForce(p *Problem) Solution {
	n, kk := p.NumFacilities(), p.NumDemands()
	if n > 20 {
		panic("facloc: BruteForce on too many facilities")
	}
	best := Solution{Cost: math.Inf(1)}
	for mask := 1; mask < 1<<n; mask++ {
		var cost float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cost += p.Open[i]
			}
		}
		assign := make([]int, kk)
		for k := 0; k < kk; k++ {
			row := p.Row(k)
			bi, bg := -1, math.Inf(1)
			for i, g := range row {
				if mask&(1<<i) != 0 && g < bg {
					bi, bg = i, g
				}
			}
			assign[k] = bi
			cost += bg
		}
		if cost < best.Cost {
			var open []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					open = append(open, i)
				}
			}
			best = Solution{Open: open, Assign: assign, Cost: cost}
		}
	}
	return best
}
