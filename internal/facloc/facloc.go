// Package facloc solves the uncapacitated facility location (UFL)
// subproblems that arise when the placement LP is decomposed per video
// (§V-C): choosing where to store one video (facility opening, cost F_i from
// the disk duals) and how to serve each office's demand for it (assignment
// cost g_kj from the transfer objective and link duals).
//
// Two solvers are provided:
//
//   - DualAscent: an Erlenkotter-style dual ascent that produces a feasible
//     dual solution and hence a valid lower bound on the UFL *LP* optimum.
//     The exponential-potential-function driver needs valid per-block lower
//     bounds for its Lagrangian bound LR(λ) ≤ OPT to be sound, so it cannot
//     use a primal heuristic value there.
//
//   - Solve: greedy opening followed by add/drop/swap local search in the
//     spirit of Charikar–Guha, producing the integer solution used both as a
//     gradient-descent direction in the LP phase and as the rounded
//     placement in the rounding phase (§V-D).
//
// Problems here are small (facilities = offices, |V| ≈ 23..55 in the paper's
// networks) but solved millions of times, so the code favors O(n·K) passes
// and reuses scratch space via a Solver value.
package facloc

import (
	"fmt"
	"math"
	"sort"
)

// Problem is one UFL instance: n facilities, K demand points.
// Minimize Σ_i F_i·y_i + Σ_k g[k][i(k)] over facility sets and assignments.
// All costs must be non-negative (they are built from non-negative duals and
// transfer costs).
type Problem struct {
	// Open[i] is the cost F_i of opening facility i.
	Open []float64
	// Assign[k][i] is the cost of serving demand point k from facility i.
	Assign [][]float64
}

// NumFacilities returns n.
func (p *Problem) NumFacilities() int { return len(p.Open) }

// NumDemands returns K.
func (p *Problem) NumDemands() int { return len(p.Assign) }

// Validate checks structural consistency; solver entry points call it only
// in debug paths, so malformed problems surface in tests rather than deep in
// solver loops.
func (p *Problem) Validate() error {
	n := len(p.Open)
	if n == 0 {
		return fmt.Errorf("facloc: no facilities")
	}
	for i, f := range p.Open {
		if f < 0 || math.IsNaN(f) {
			return fmt.Errorf("facloc: open cost %d is %g", i, f)
		}
	}
	for k, row := range p.Assign {
		if len(row) != n {
			return fmt.Errorf("facloc: assign row %d has %d entries for %d facilities", k, len(row), n)
		}
		for i, g := range row {
			if g < 0 || math.IsNaN(g) {
				return fmt.Errorf("facloc: assign cost (%d,%d) is %g", k, i, g)
			}
		}
	}
	return nil
}

// Solution is an integer UFL solution.
type Solution struct {
	// Open lists the opened facilities, ascending.
	Open []int
	// Assign[k] is the facility serving demand point k (-1 when K == 0 rows
	// never occur; every demand point is assigned).
	Assign []int
	// Cost is the total cost of the solution.
	Cost float64
}

// Solver carries reusable scratch space. A zero Solver is ready to use; it
// is not safe for concurrent use — use one Solver per goroutine.
type Solver struct {
	best1, best2 []float64 // cheapest and second-cheapest open assignment per k
	bestI        []int     // facility achieving best1
	bestI2       []int     // facility achieving best2
	open         []bool
	openScratch  []bool
	nOpen        int
	gainBuf      []float64
	// dual-ascent scratch
	v     []float64
	slack []float64
	order []int
}

func (s *Solver) reserve(n, k int) {
	if cap(s.best1) < k {
		s.best1 = make([]float64, k)
		s.best2 = make([]float64, k)
		s.bestI = make([]int, k)
		s.bestI2 = make([]int, k)
	}
	s.best1 = s.best1[:k]
	s.best2 = s.best2[:k]
	s.bestI = s.bestI[:k]
	s.bestI2 = s.bestI2[:k]
	if cap(s.open) < n {
		s.open = make([]bool, n)
		s.gainBuf = make([]float64, n)
	}
	s.open = s.open[:n]
	s.gainBuf = s.gainBuf[:n]
	for i := range s.open {
		s.open[i] = false
	}
	s.nOpen = 0
}

// refreshBests recomputes best/second-best open facilities for every demand.
func (s *Solver) refreshBests(p *Problem) {
	for k := range p.Assign {
		s.rescanDemand(p, k)
	}
}

// rescanDemand recomputes demand k's best and second-best open facilities.
func (s *Solver) rescanDemand(p *Problem, k int) {
	row := p.Assign[k]
	b1, b2 := math.Inf(1), math.Inf(1)
	bi, bi2 := -1, -1
	for i, g := range row {
		if !s.open[i] {
			continue
		}
		if g < b1 {
			b2, bi2 = b1, bi
			b1, bi = g, i
		} else if g < b2 {
			b2, bi2 = g, i
		}
	}
	s.best1[k], s.best2[k] = b1, b2
	s.bestI[k], s.bestI2[k] = bi, bi2
}

// openFacility opens i and updates the best trackers incrementally (O(K)).
func (s *Solver) openFacility(p *Problem, i int) {
	s.open[i] = true
	s.nOpen++
	for k, row := range p.Assign {
		g := row[i]
		if g < s.best1[k] {
			s.best2[k], s.bestI2[k] = s.best1[k], s.bestI[k]
			s.best1[k], s.bestI[k] = g, i
		} else if g < s.best2[k] {
			s.best2[k], s.bestI2[k] = g, i
		}
	}
}

// closeFacility closes i, rescanning only the demands it backed.
func (s *Solver) closeFacility(p *Problem, i int) {
	s.open[i] = false
	s.nOpen--
	for k := range p.Assign {
		if s.bestI[k] == i || s.bestI2[k] == i {
			s.rescanDemand(p, k)
		}
	}
}

// openSetCost returns the total cost of the currently open set given fresh
// bests.
func (s *Solver) openSetCost(p *Problem) float64 {
	var total float64
	for i, o := range s.open {
		if o {
			total += p.Open[i]
		}
	}
	for k := range p.Assign {
		total += s.best1[k]
	}
	return total
}

// Solve computes an integer UFL solution via local search from two
// complementary starts — the cheapest single facility (greedy-add start) and
// the all-open set (drop start) — keeping the better result. The problem
// must have at least one facility. Even with zero demand points, one
// facility is opened (every video must be stored somewhere — constraints
// (3)+(4) imply Σ_i y_i^m ≥ 1).
func (s *Solver) Solve(p *Problem) Solution {
	n, kk := p.NumFacilities(), p.NumDemands()
	if n == 0 {
		panic("facloc: Solve with no facilities")
	}
	s.reserve(n, kk)

	// Start 1: the single facility with the cheapest total cost.
	bestSingle, bestCost := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		c := p.Open[i]
		for k := range p.Assign {
			c += p.Assign[k][i]
		}
		if c < bestCost {
			bestSingle, bestCost = i, c
		}
	}
	s.open[bestSingle] = true
	s.nOpen = 1
	s.refreshBests(p)
	s.localSearch(p, true)
	cost1 := s.openSetCost(p)
	open1 := make([]bool, n)
	copy(open1, s.open)

	// Start 2: everything open, letting drop moves pare the set down.
	for i := range s.open {
		s.open[i] = true
	}
	s.nOpen = n
	s.refreshBests(p)
	s.localSearch(p, true)
	if cost1 <= s.openSetCost(p) {
		copy(s.open, open1)
		s.nOpen = 0
		for _, o := range open1 {
			if o {
				s.nOpen++
			}
		}
		s.refreshBests(p)
	}
	return s.extract(p, kk)
}

// SolveQuick is a cheaper Solve for the solver's inner descent loop: both
// starts (cheapest-single and all-open) with add/drop moves, but no swap
// scan — the O(n²K) swap sweep at every local optimum dominated solver
// profiles. Block steps need a good direction, not a certified local
// optimum; the robust Solve is reserved for the rounding phase.
func (s *Solver) SolveQuick(p *Problem) Solution {
	n, kk := p.NumFacilities(), p.NumDemands()
	if n == 0 {
		panic("facloc: SolveQuick with no facilities")
	}
	s.reserve(n, kk)
	bestSingle, bestCost := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		c := p.Open[i]
		for k := range p.Assign {
			c += p.Assign[k][i]
		}
		if c < bestCost {
			bestSingle, bestCost = i, c
		}
	}
	s.open[bestSingle] = true
	s.nOpen = 1
	s.refreshBests(p)
	s.localSearch(p, false)
	cost1 := s.openSetCost(p)
	if cap(s.openScratch) < n {
		s.openScratch = make([]bool, n)
	}
	open1 := s.openScratch[:n]
	copy(open1, s.open)
	nOpen1 := s.nOpen

	for i := range s.open {
		s.open[i] = true
	}
	s.nOpen = n
	s.refreshBests(p)
	s.localSearch(p, false)
	if cost1 <= s.openSetCost(p) {
		copy(s.open, open1)
		s.nOpen = nOpen1
		s.refreshBests(p)
	}
	return s.extract(p, kk)
}

func (s *Solver) extract(p *Problem, kk int) Solution {
	out := Solution{Assign: make([]int, kk)}
	for i, o := range s.open {
		if o {
			out.Open = append(out.Open, i)
		}
	}
	for k := range p.Assign {
		if s.bestI[k] < 0 {
			panic(fmt.Sprintf("facloc: demand %d unassigned: nOpen=%d open=%v best1=%v row=%v", k, s.nOpen, out.Open, s.best1[k], p.Assign[k]))
		}
		out.Assign[k] = s.bestI[k]
	}
	out.Cost = s.openSetCost(p)
	return out
}

// localSearch runs add/drop (and, when swaps is set, swap) moves on the
// current open set to a local optimum or a pass cap. Best trackers are
// maintained incrementally: opening costs O(K), closing O(K + affected·n).
func (s *Solver) localSearch(p *Problem, swaps bool) {
	n := p.NumFacilities()
	const maxPasses = 60
	for pass := 0; pass < maxPasses; pass++ {
		improved := false

		// Add moves: gain of opening i = Σ_k max(0, best1_k − g_ki) − F_i.
		for i := 0; i < n; i++ {
			if s.open[i] {
				continue
			}
			gain := -p.Open[i]
			for k, row := range p.Assign {
				if d := s.best1[k] - row[i]; d > 0 {
					gain += d
				}
			}
			if gain > 1e-12 {
				s.openFacility(p, i)
				improved = true
			}
		}

		// Drop moves: gain of closing i = F_i − Σ_{k: served by i} (best2_k − g_ki).
		for i := 0; i < n; i++ {
			if !s.open[i] {
				continue
			}
			gain := p.Open[i]
			feasible := true
			for k := range p.Assign {
				if s.bestI[k] == i {
					if math.IsInf(s.best2[k], 1) {
						feasible = false // only open facility for this demand
						break
					}
					gain -= s.best2[k] - s.best1[k]
				}
			}
			// Keep at least one facility open overall.
			if feasible && gain > 1e-12 && s.nOpen > 1 {
				s.closeFacility(p, i)
				improved = true
			}
		}

		// Swap moves: close i, open i'. Evaluated only when add/drop stall,
		// since each evaluation is O(K).
		if swaps && !improved {
			for i := 0; i < n && !improved; i++ {
				if !s.open[i] {
					continue
				}
				for ip := 0; ip < n && !improved; ip++ {
					if s.open[ip] || ip == i {
						continue
					}
					gain := p.Open[i] - p.Open[ip]
					for k, row := range p.Assign {
						cur := s.best1[k]
						// Serving options after the swap: cheapest open
						// facility other than i, or the newly opened ip.
						alt := row[ip]
						if s.bestI[k] != i {
							if cur < alt {
								alt = cur
							}
						} else if s.best2[k] < alt {
							alt = s.best2[k]
						}
						gain += cur - alt
					}
					if gain > 1e-12 {
						s.closeFacility(p, i)
						s.openFacility(p, ip)
						improved = true
					}
				}
			}
		}
		if !improved {
			break
		}
	}
}

// DualAscent computes a feasible solution (v, implicit w) of the UFL LP dual
//
//	max Σ_k v_k  s.t.  Σ_k max(0, v_k − g_ki) ≤ F_i  ∀i
//
// and returns its value, a valid lower bound on the UFL LP optimum (and
// hence on the integer optimum). The second return is the dual vector for
// diagnostics. With zero demand points the bound is min_i F_i, since every
// video must still be stored once.
func (s *Solver) DualAscent(p *Problem) (float64, []float64) {
	n, kk := p.NumFacilities(), p.NumDemands()
	if kk == 0 {
		lb := math.Inf(1)
		for _, f := range p.Open {
			if f < lb {
				lb = f
			}
		}
		return lb, nil
	}
	if cap(s.v) < kk {
		s.v = make([]float64, kk)
	}
	s.v = s.v[:kk]
	if cap(s.slack) < n {
		s.slack = make([]float64, n)
	}
	s.slack = s.slack[:n]
	if cap(s.order) < kk {
		s.order = make([]int, kk)
	}
	s.order = s.order[:kk]

	// Initialize v_k to the cheapest assignment cost; facility slacks absorb
	// the implied contributions.
	for i := range s.slack {
		s.slack[i] = p.Open[i]
	}
	for k, row := range p.Assign {
		m := math.Inf(1)
		for _, g := range row {
			if g < m {
				m = g
			}
		}
		s.v[k] = m
	}
	for k, row := range p.Assign {
		for i, g := range row {
			if s.v[k] > g {
				s.slack[i] -= s.v[k] - g
			}
		}
	}
	// Slacks can go negative only through floating error; clamp.
	for i := range s.slack {
		if s.slack[i] < 0 {
			s.slack[i] = 0
		}
	}

	// Ascend demand duals in waves: raise each v_k to its next assignment
	// cost breakpoint or until a contributing facility's slack hits zero.
	for k := range s.order {
		s.order[k] = k
	}
	// Processing demands with the lowest initial dual first mimics the
	// classic ascent's uniform raise and converges in few waves; the order
	// is computed once — re-sorting each wave measurably dominated solver
	// profiles without improving the bound.
	sort.SliceStable(s.order, func(a, b int) bool { return s.v[s.order[a]] < s.v[s.order[b]] })
	const maxWaves = 64
	for wave := 0; wave < maxWaves; wave++ {
		progressed := false
		for _, k := range s.order {
			row := p.Assign[k]
			// Next breakpoint strictly above v_k.
			next := math.Inf(1)
			for _, g := range row {
				if g > s.v[k] && g < next {
					next = g
				}
			}
			// Max raise allowed by contributing facilities (g_ki <= v_k).
			allowed := next - s.v[k]
			for i, g := range row {
				if g <= s.v[k] && s.slack[i] < allowed {
					allowed = s.slack[i]
				}
			}
			if allowed <= 1e-15 || math.IsInf(allowed, 1) {
				continue
			}
			for i, g := range row {
				if g <= s.v[k] {
					s.slack[i] -= allowed
					if s.slack[i] < 0 {
						s.slack[i] = 0
					}
				}
			}
			s.v[k] += allowed
			progressed = true
		}
		if !progressed {
			break
		}
	}
	var lb float64
	for _, vk := range s.v {
		lb += vk
	}
	return lb, s.v
}

// BruteForce exhaustively enumerates facility subsets and returns the true
// integer optimum. It is exponential in the facility count and exists for
// test cross-validation only (n ≤ ~15).
func BruteForce(p *Problem) Solution {
	n, kk := p.NumFacilities(), p.NumDemands()
	if n > 20 {
		panic("facloc: BruteForce on too many facilities")
	}
	best := Solution{Cost: math.Inf(1)}
	for mask := 1; mask < 1<<n; mask++ {
		var cost float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cost += p.Open[i]
			}
		}
		assign := make([]int, kk)
		for k, row := range p.Assign {
			bi, bg := -1, math.Inf(1)
			for i, g := range row {
				if mask&(1<<i) != 0 && g < bg {
					bi, bg = i, g
				}
			}
			assign[k] = bi
			cost += bg
		}
		if cost < best.Cost {
			var open []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					open = append(open, i)
				}
			}
			best = Solution{Open: open, Assign: assign, Cost: cost}
		}
	}
	return best
}
