package facloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomProblem(rng *rand.Rand, n, k int, openScale float64) *Problem {
	p := &Problem{
		Open:   make([]float64, n),
		Assign: make([]float64, k*n),
	}
	for i := range p.Open {
		p.Open[i] = rng.Float64() * openScale
	}
	for idx := range p.Assign {
		p.Assign[idx] = rng.Float64() * 10
	}
	return p
}

func solutionCost(p *Problem, s Solution) float64 {
	var c float64
	openSet := make(map[int]bool)
	for _, i := range s.Open {
		c += p.Open[i]
		openSet[i] = true
	}
	for k, i := range s.Assign {
		c += p.Row(k)[i]
	}
	_ = openSet
	return c
}

func TestValidate(t *testing.T) {
	good := &Problem{Open: []float64{1}, Assign: []float64{2}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := []*Problem{
		{},
		{Open: []float64{-1}},
		{Open: []float64{1, 1}, Assign: []float64{1, 2, 3}},
		{Open: []float64{1}, Assign: []float64{-3}},
		{Open: []float64{math.NaN()}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestSolveSingleFacility(t *testing.T) {
	// Facility 1 is clearly best: free to open, cheap to serve.
	p := &Problem{
		Open:   []float64{5, 0, 5},
		Assign: []float64{10, 1, 10, 10, 1, 10},
	}
	var s Solver
	sol := s.Solve(p)
	if len(sol.Open) != 1 || sol.Open[0] != 1 {
		t.Errorf("Open = %v, want [1]", sol.Open)
	}
	if sol.Assign[0] != 1 || sol.Assign[1] != 1 {
		t.Errorf("Assign = %v, want all 1", sol.Assign)
	}
	if math.Abs(sol.Cost-2) > 1e-9 {
		t.Errorf("Cost = %g, want 2", sol.Cost)
	}
}

func TestSolveOpensMultiple(t *testing.T) {
	// Two demand clusters, each near its own facility; opening both wins.
	p := &Problem{
		Open: []float64{1, 1},
		Assign: []float64{
			0, 100,
			100, 0,
		},
	}
	var s Solver
	sol := s.Solve(p)
	if len(sol.Open) != 2 {
		t.Errorf("Open = %v, want both facilities", sol.Open)
	}
	if math.Abs(sol.Cost-2) > 1e-9 {
		t.Errorf("Cost = %g, want 2", sol.Cost)
	}
}

func TestSolveZeroDemands(t *testing.T) {
	p := &Problem{Open: []float64{3, 1, 2}}
	var s Solver
	sol := s.Solve(p)
	if len(sol.Open) != 1 || sol.Open[0] != 1 {
		t.Errorf("Open = %v, want [1] (cheapest facility still opened)", sol.Open)
	}
	if math.Abs(sol.Cost-1) > 1e-9 {
		t.Errorf("Cost = %g, want 1", sol.Cost)
	}
}

func TestSolveMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	worst := 1.0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(10)
		p := randomProblem(rng, n, k, 5)
		var s Solver
		got := s.Solve(p)
		want := BruteForce(p)
		if got.Cost < want.Cost-1e-9 {
			t.Fatalf("trial %d: local search cost %g below optimum %g (impossible)", trial, got.Cost, want.Cost)
		}
		ratio := got.Cost / math.Max(want.Cost, 1e-12)
		if ratio > worst {
			worst = ratio
		}
		// Charikar–Guha local search is a 3-approximation in theory; in
		// practice on these sizes it should be essentially optimal.
		if ratio > 1.05 {
			t.Errorf("trial %d: ratio %g too far from optimal (got %g, want %g)", trial, ratio, got.Cost, want.Cost)
		}
	}
	t.Logf("worst local-search/optimal ratio over 200 random instances: %.4f", worst)
}

func TestSolutionCostConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, 6, 8, 3)
		var s Solver
		sol := s.Solve(p)
		if recomputed := solutionCost(p, sol); math.Abs(recomputed-sol.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported cost %g != recomputed %g", trial, sol.Cost, recomputed)
		}
		// Every assignment must point at an open facility.
		open := make(map[int]bool)
		for _, i := range sol.Open {
			open[i] = true
		}
		for k, i := range sol.Assign {
			if !open[i] {
				t.Fatalf("trial %d: demand %d assigned to closed facility %d", trial, k, i)
			}
		}
	}
}

func TestDualAscentIsValidLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(10)
		p := randomProblem(rng, n, k, 5)
		var s Solver
		lb, _ := s.DualAscent(p)
		opt := BruteForce(p).Cost
		if lb > opt+1e-9 {
			t.Fatalf("trial %d: dual ascent bound %g exceeds integer optimum %g", trial, lb, opt)
		}
	}
}

func TestDualAscentTightOnEasyInstances(t *testing.T) {
	// With free facilities the LP optimum is Σ_k min_i g_ki and dual ascent
	// reaches it exactly.
	p := &Problem{
		Open:   []float64{0, 0, 0},
		Assign: []float64{3, 1, 2, 5, 9, 4},
	}
	var s Solver
	lb, _ := s.DualAscent(p)
	if math.Abs(lb-5) > 1e-9 {
		t.Errorf("dual ascent = %g, want 5", lb)
	}
}

func TestDualAscentZeroDemands(t *testing.T) {
	p := &Problem{Open: []float64{4, 2, 9}}
	var s Solver
	lb, _ := s.DualAscent(p)
	if lb != 2 {
		t.Errorf("zero-demand bound = %g, want min open cost 2", lb)
	}
}

func TestDualAscentFeasibility(t *testing.T) {
	// The returned duals must satisfy Σ_k (v_k − g_ki)+ ≤ F_i.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 5, 7, 4)
		var s Solver
		_, v := s.DualAscent(p)
		for i := range p.Open {
			var used float64
			for k := 0; k < p.NumDemands(); k++ {
				if d := v[k] - p.Row(k)[i]; d > 0 {
					used += d
				}
			}
			if used > p.Open[i]+1e-6 {
				t.Fatalf("trial %d: facility %d dual constraint violated: %g > %g", trial, i, used, p.Open[i])
			}
		}
	}
}

// Property: on random instances with varying shapes, LB ≤ heuristic cost
// always, and the heuristic solution serves every demand.
func TestSolverSandwichProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		k := int(kRaw % 12)
		p := randomProblem(rng, n, k, 6)
		var s Solver
		lb, _ := s.DualAscent(p)
		sol := s.Solve(p)
		if len(sol.Assign) != k {
			return false
		}
		return lb <= sol.Cost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Solver reuse across problems of different shapes must not leak state.
func TestSolverReuse(t *testing.T) {
	var s Solver
	rng := rand.New(rand.NewSource(5))
	p1 := randomProblem(rng, 10, 12, 3)
	p2 := randomProblem(rng, 3, 2, 3)
	first := s.Solve(p1).Cost
	_ = s.Solve(p2)
	var fresh Solver
	if again := s.Solve(p1).Cost; math.Abs(again-first) > 1e-9 {
		t.Errorf("reused solver gives %g, fresh run gave %g", again, first)
	}
	if ref := fresh.Solve(p1).Cost; math.Abs(ref-first) > 1e-9 {
		t.Errorf("fresh solver gives %g, want %g", ref, first)
	}
}

// SolveInto and SolveQuickInto must reuse out's backing arrays and agree with
// the allocating wrappers, and a warm start may change the path taken but
// never worsen correctness invariants (open set serves every demand).
func TestSolveIntoReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randomProblem(rng, 8, 10, 3)
	var s Solver
	want := s.Solve(p)
	var out Solution
	s.SolveInto(p, &out)
	if math.Abs(out.Cost-want.Cost) > 1e-12 {
		t.Fatalf("SolveInto cost %g != Solve cost %g", out.Cost, want.Cost)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.SolveInto(p, &out)
	})
	if allocs != 0 {
		t.Errorf("SolveInto allocates %g per run after warm-up, want 0", allocs)
	}
	var q Solution
	s.SolveQuickInto(p, &q, nil)
	allocs = testing.AllocsPerRun(20, func() {
		s.SolveQuickInto(p, &q, nil)
	})
	if allocs != 0 {
		t.Errorf("SolveQuickInto allocates %g per run after warm-up, want 0", allocs)
	}
}

func TestSolveQuickWarmStartValid(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(10)
		p := randomProblem(rng, n, k, 5)
		var s Solver
		cold := s.SolveQuick(p)
		warm := make([]int32, len(cold.Open))
		for a, i := range cold.Open {
			warm[a] = int32(i)
		}
		var out Solution
		s.SolveQuickInto(p, &out, warm)
		if recomputed := solutionCost(p, out); math.Abs(recomputed-out.Cost) > 1e-9 {
			t.Fatalf("trial %d: warm-start cost %g != recomputed %g", trial, out.Cost, recomputed)
		}
		if len(out.Assign) != k {
			t.Fatalf("trial %d: warm-start solution has %d assignments, want %d", trial, len(out.Assign), k)
		}
		// Seeding with the cold solution's own open set cannot be worse than
		// the cold result: the first (cheapest-single) start is shared and
		// local search only improves.
		if out.Cost > cold.Cost+1e-9 {
			t.Fatalf("trial %d: warm start worsened cost %g -> %g", trial, cold.Cost, out.Cost)
		}
	}
}

func BenchmarkSolve55x55(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 55, 55, 5)
	var s Solver
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(p)
	}
}

func BenchmarkDualAscent55x55(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 55, 55, 5)
	var s Solver
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DualAscent(p)
	}
}
