// Package vodplace is a library for optimal content placement in
// large-scale Video-on-Demand systems, reproducing "Optimal Content
// Placement for a Large-Scale VoD System" (Applegate, Archer,
// Gopalakrishnan, Lee, Ramakrishnan — CoNEXT 2010 / IEEE-ACM ToN 2016).
//
// The library covers the paper end to end:
//
//   - a mixed-integer-programming model of video placement under disk and
//     link-bandwidth constraints (Instance, Solution);
//   - the paper's core contribution: a Lagrangian / exponential-potential-
//     function decomposition that solves the LP relaxation orders of
//     magnitude faster than general-purpose LP solvers, plus an integer
//     rounding pass (Solve, SolveInteger);
//   - backbone topology models, synthetic libraries and request traces with
//     the statistical structure of the paper's operational traces
//     (Backbone55, GenerateLibrary, GenerateTrace);
//   - demand estimation from request history, including the series-episode
//     and blockbuster estimators for new releases (BuildInstance);
//   - a trace-driven simulator with LRU/LFU caching baselines and regional
//     origin servers (System.RunMIP, System.RunBaseline, System.RunOriginLRU);
//   - every table and figure of the paper's evaluation, regenerable through
//     the vodplace/internal/experiments registry and the cmd/vodexp tool.
//
// # Quick start
//
//	g := vodplace.Backbone55()
//	lib := vodplace.GenerateLibrary(vodplace.LibraryConfig{NumVideos: 2000, Weeks: 4}, 1)
//	trace := vodplace.GenerateTrace(lib, vodplace.TraceConfig{Days: 28, NumVHOs: g.NumNodes()}, 2)
//	sys := &vodplace.System{
//		G: g, Lib: lib,
//		DiskGB:      vodplace.UniformDisk(lib, g.NumNodes(), 2.0),
//		LinkCapMbps: vodplace.UniformLinks(g, 1000),
//	}
//	run, err := sys.RunMIP(trace, vodplace.MIPOptions{})
//
// See examples/ for complete programs.
package vodplace

import (
	"context"

	"vodplace/internal/catalog"
	"vodplace/internal/core"
	"vodplace/internal/demand"
	"vodplace/internal/epf"
	"vodplace/internal/mip"
	"vodplace/internal/sim"
	"vodplace/internal/topology"
	"vodplace/internal/workload"
)

// Topology types and generators.
type (
	// Graph is a backbone network of video hub offices with fixed
	// shortest-path routing.
	Graph = topology.Graph
	// Link is one directed backbone link.
	Link = topology.Link
)

// NewGraph returns an empty graph over n offices; add edges with AddEdge and
// finalize with Build.
func NewGraph(name string, n int) *Graph { return topology.New(name, n) }

// Backbone55 returns the 55-office IPTV backbone model (76 bidirectional
// links) used as the paper's default network.
func Backbone55() *Graph { return topology.Backbone55() }

// Tree returns an n-office distribution tree (Table IV).
func Tree(n int) *Graph { return topology.Tree(n) }

// FullMesh returns the complete graph over n offices (Table IV).
func FullMesh(n int) *Graph { return topology.FullMesh(n) }

// Tiscali, Sprint and Ebone return graphs with the node/link counts of the
// Rocketfuel maps the paper evaluates on.
func Tiscali() *Graph { return topology.Tiscali() }

// Sprint returns the 33-office Rocketfuel-Sprint-sized graph.
func Sprint() *Graph { return topology.Sprint() }

// Ebone returns the 23-office Rocketfuel-Ebone-sized graph.
func Ebone() *Graph { return topology.Ebone() }

// Catalog types.
type (
	// Library is an immutable video catalog.
	Library = catalog.Library
	// Video is one library item.
	Video = catalog.Video
	// LibraryConfig parameterizes library generation.
	LibraryConfig = catalog.Config
	// VideoClass is a video length/size class.
	VideoClass = catalog.Class
)

// Video classes (§VII-A's four size classes).
const (
	MusicVideo = catalog.MusicVideo
	TVShow     = catalog.TVShow
	Movie1h    = catalog.Movie1h
	Movie2h    = catalog.Movie2h
)

// GenerateLibrary builds a deterministic library: size classes, weekly
// TV-series episodes, blockbusters, and a staggered release schedule.
func GenerateLibrary(cfg LibraryConfig, seed int64) *Library {
	return catalog.Generate(cfg, seed)
}

// Workload types.
type (
	// Trace is a time-ordered request log.
	Trace = workload.Trace
	// Request is one VoD request.
	Request = workload.Request
	// TraceConfig parameterizes trace generation.
	TraceConfig = workload.TraceConfig
)

// GenerateTrace synthesizes a request trace with the diurnal, weekly,
// long-tail and new-release structure of the paper's operational traces.
func GenerateTrace(lib *Library, cfg TraceConfig, seed int64) *Trace {
	return workload.GenerateTrace(lib, cfg, seed)
}

// Populations returns normalized per-office demand weights (12 large / 19
// medium / 24 small at 55 offices).
func Populations(n int, seed int64) []float64 { return workload.Populations(n, seed) }

// Optimization model types.
type (
	// Instance is a placement problem: offices, links, videos, demands,
	// capacities (Table I).
	Instance = mip.Instance
	// VideoDemand is one video's demand profile.
	VideoDemand = mip.VideoDemand
	// Solution is a placement: storage decisions y and routing fractions x.
	Solution = mip.Solution
	// Violation summarizes a solution's constraint violations.
	Violation = mip.Violation
)

// NewInstance validates and finalizes a placement instance.
func NewInstance(g *Graph, diskGB, linkCapMbps []float64, slices int, demands []VideoDemand) (*Instance, error) {
	return mip.NewInstance(g, diskGB, linkCapMbps, slices, demands)
}

// Demand estimation.
type (
	// DemandBuilder assembles instances from trace history with the §VI-A
	// estimation strategies.
	DemandBuilder = demand.Builder
	// DemandConfig parameterizes estimation.
	DemandConfig = demand.Config
	// EstimationMethod selects History, Perfect or None.
	EstimationMethod = demand.Method
)

// Estimation methods (Table VI).
const (
	EstimateFromHistory = demand.History
	EstimatePerfect     = demand.Perfect
	EstimateNone        = demand.None
)

// Solver types.
type (
	// SolverOptions configures the EPF solver.
	SolverOptions = epf.Options
	// SolverResult is the solver output: solution, Lagrangian lower bound,
	// optimality gap, violations.
	SolverResult = epf.Result
	// PassInfo reports per-pass solver progress.
	PassInfo = epf.PassInfo
	// SolverStats reports the solver's work breakdown: blocks optimized,
	// dual refreshes, line searches, scratch reuse, per-phase wall time.
	SolverStats = epf.Stats
)

// Solve runs the exponential-potential-function LP solver (the paper's core
// contribution) and returns an ε-feasible, ε-optimal fractional placement
// with a proven lower bound.
func Solve(inst *Instance, opts SolverOptions) (*SolverResult, error) {
	return epf.Solve(inst, opts)
}

// SolveContext is Solve with cooperative cancellation: the solver stops at
// the next chunk boundary after ctx is done and returns the partial result
// alongside ctx.Err().
func SolveContext(ctx context.Context, inst *Instance, opts SolverOptions) (*SolverResult, error) {
	return epf.SolveContext(ctx, inst, opts)
}

// SolveInteger runs Solve plus the §V-D rounding pass, returning an integral
// placement.
func SolveInteger(inst *Instance, opts SolverOptions) (*SolverResult, error) {
	return epf.SolveInteger(inst, opts)
}

// SolveIntegerContext is SolveInteger with cooperative cancellation.
func SolveIntegerContext(ctx context.Context, inst *Instance, opts SolverOptions) (*SolverResult, error) {
	return epf.SolveIntegerContext(ctx, inst, opts)
}

// Simulation and schemes.
type (
	// System is a deployed footprint: backbone, library, capacities.
	System = core.System
	// MIPOptions configures the MIP-based scheme (update period, history
	// window, complementary cache, estimation method).
	MIPOptions = core.MIPOptions
	// BaselineOptions configures the caching baselines.
	BaselineOptions = core.BaselineOptions
	// MIPRun is the MIP scheme's outcome over a trace.
	MIPRun = core.MIPRun
	// Plan is one solved placement period.
	Plan = core.Plan
	// SimConfig is a raw simulator configuration.
	SimConfig = sim.Config
	// SimResult carries simulation metrics (peak link bandwidth, aggregate
	// transfer volume, hit rates).
	SimResult = sim.Result
)

// Simulate plays a trace against a placement configuration directly.
func Simulate(cfg SimConfig, tr *Trace) (*SimResult, error) { return sim.Run(cfg, tr) }

// UniformDisk returns n equal office disk budgets totalling factor × library
// size.
func UniformDisk(lib *Library, n int, factor float64) []float64 {
	return core.UniformDisk(lib, n, factor)
}

// HeterogeneousDisk returns large/medium/small office disk budgets (Fig. 11).
func HeterogeneousDisk(lib *Library, n int, factor float64) []float64 {
	return core.HeterogeneousDisk(lib, n, factor)
}

// UniformLinks returns equal capacities for every directed link.
func UniformLinks(g *Graph, mbps float64) []float64 { return core.UniformLinks(g, mbps) }
