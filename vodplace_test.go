package vodplace

import (
	"testing"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow through
// the public facade only.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := Backbone55()
	if g.NumNodes() != 55 || g.NumEdges() != 76 {
		t.Fatalf("backbone: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	lib := GenerateLibrary(LibraryConfig{NumVideos: 400, Weeks: 3, NumSeries: 2}, 1)
	trace := GenerateTrace(lib, TraceConfig{Days: 18, NumVHOs: 55, RequestsPerVideoPerDay: 1}, 2)
	if len(trace.Requests) == 0 {
		t.Fatal("empty trace")
	}

	sys := &System{
		G: g, Lib: lib,
		DiskGB:      UniformDisk(lib, 55, 2.0),
		LinkCapMbps: UniformLinks(g, 1000),
	}
	run, err := sys.RunMIP(trace, MIPOptions{Solver: SolverOptions{Seed: 1, MaxPasses: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Plans) == 0 || run.Sim.Requests == 0 {
		t.Fatalf("empty run: %d plans, %d requests", len(run.Plans), run.Sim.Requests)
	}
	for _, p := range run.Plans {
		if !p.Result.Sol.IsIntegral(1e-6) {
			t.Errorf("plan day %d not integral", p.Day)
		}
	}

	base, err := sys.RunBaseline(trace, BaselineOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if base.Requests != run.Sim.Requests {
		t.Errorf("schemes measured different request counts: %d vs %d", base.Requests, run.Sim.Requests)
	}
}

// TestPublicAPIDirectSolve exercises instance building and solving without
// the System wrapper.
func TestPublicAPIDirectSolve(t *testing.T) {
	g := Ebone()
	lib := GenerateLibrary(LibraryConfig{NumVideos: 200, Weeks: 2}, 3)
	trace := GenerateTrace(lib, TraceConfig{Days: 8, NumVHOs: g.NumNodes(), RequestsPerVideoPerDay: 2}, 4)
	builder := &DemandBuilder{
		G: g, Lib: lib,
		DiskGB:      UniformDisk(lib, g.NumNodes(), 2.0),
		LinkCapMbps: UniformLinks(g, 800),
	}
	inst, err := builder.Instance(trace, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveInteger(inst, SolverOptions{Seed: 1, MaxPasses: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sol.IsIntegral(1e-6) {
		t.Error("not integral")
	}
	if res.LowerBound > res.Objective+1e-9 {
		t.Errorf("bound %g above objective %g", res.LowerBound, res.Objective)
	}
	if res.Violation.Unserved > 1e-6 {
		t.Errorf("unserved demand: %+v", res.Violation)
	}

	// Simulate the placement directly.
	pinned := make([][]int, g.NumNodes())
	for vi := range res.Sol.Videos {
		for _, f := range res.Sol.Videos[vi].Open {
			if f.V >= 0.5 {
				pinned[f.I] = append(pinned[f.I], inst.Demands[vi].Video)
			}
		}
	}
	simRes, err := Simulate(SimConfig{G: g, Lib: lib, Pinned: pinned}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Requests != len(trace.Requests) {
		t.Errorf("simulated %d of %d requests", simRes.Requests, len(trace.Requests))
	}
}

// TestGraphConstructionAPI covers the graph-building surface.
func TestGraphConstructionAPI(t *testing.T) {
	g := NewGraph("custom", 4)
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(i, (i+1)%4); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	if g.Hops(0, 2) != 2 {
		t.Errorf("ring hops(0,2) = %d", g.Hops(0, 2))
	}
	for _, gen := range []*Graph{Tree(10), FullMesh(6), Tiscali(), Sprint(), Ebone()} {
		if !gen.Built() {
			t.Error("generator returned unbuilt graph")
		}
	}
	pops := Populations(55, 1)
	if len(pops) != 55 {
		t.Errorf("populations: %d", len(pops))
	}
	het := HeterogeneousDisk(GenerateLibrary(LibraryConfig{NumVideos: 50}, 1), 55, 2)
	if len(het) != 55 {
		t.Errorf("heterogeneous disk: %d", len(het))
	}
}
