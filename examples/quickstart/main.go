// Quickstart: build a small VoD system, solve a placement, inspect it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vodplace"
)

func main() {
	// A 10-office backbone-like network with a 500-video library.
	g := vodplace.NewGraph("demo", 10)
	for i := 0; i < 10; i++ {
		if err := g.AddEdge(i, (i+1)%10); err != nil { // ring
			log.Fatal(err)
		}
	}
	for i := 0; i < 10; i += 3 { // a few chords
		if err := g.AddEdge(i, (i+4)%10); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.Build(); err != nil {
		log.Fatal(err)
	}

	lib := vodplace.GenerateLibrary(vodplace.LibraryConfig{NumVideos: 500, Weeks: 2}, 1)
	trace := vodplace.GenerateTrace(lib, vodplace.TraceConfig{
		Days: 8, NumVHOs: 10, RequestsPerVideoPerDay: 3,
	}, 2)
	fmt.Printf("library: %d videos, %.0f GB; trace: %d requests over %d days\n",
		lib.Len(), lib.TotalSizeGB(), len(trace.Requests), trace.Days)

	// Build a placement instance from the first week of history: aggregate
	// disk twice the library, 1 Gb/s links, link constraints at the two
	// busiest hours.
	builder := &vodplace.DemandBuilder{
		G: g, Lib: lib,
		DiskGB:      vodplace.UniformDisk(lib, 10, 2.0),
		LinkCapMbps: vodplace.UniformLinks(g, 1000),
	}
	inst, err := builder.Instance(trace, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Solve: EPF decomposition + integer rounding.
	res, err := vodplace.SolveInteger(inst, vodplace.SolverOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement: objective %.0f GB·hop, %.1f%% above the Lagrangian bound\n",
		res.Objective, 100*res.Gap)
	fmt.Printf("violations: disk %.2f%%, link %.2f%%\n",
		100*res.Violation.Disk, 100*res.Violation.Link)

	copies := res.Sol.Copies()
	one, multi := 0, 0
	for _, c := range copies {
		if c == 1 {
			one++
		} else {
			multi++
		}
	}
	fmt.Printf("copies: %d videos single-copy, %d replicated (long tail stays thin)\n", one, multi)
}
