// iptv-backbone: the paper's headline experiment at library scale — weekly
// MIP placement with a complementary cache versus Random+LRU caching, on the
// 55-office backbone, over a multi-week trace with new releases.
//
//	go run ./examples/iptv-backbone [-videos 1500] [-days 21]
package main

import (
	"flag"
	"fmt"
	"log"

	"vodplace"
)

func main() {
	videos := flag.Int("videos", 1500, "library size")
	days := flag.Int("days", 21, "trace days")
	flag.Parse()

	g := vodplace.Backbone55()
	lib := vodplace.GenerateLibrary(vodplace.LibraryConfig{
		NumVideos: *videos, Weeks: (*days + 6) / 7, NumSeries: 5,
	}, 1)
	trace := vodplace.GenerateTrace(lib, vodplace.TraceConfig{
		Days: *days, NumVHOs: 55, RequestsPerVideoPerDay: 4,
	}, 2)

	sys := &vodplace.System{
		G: g, Lib: lib,
		DiskGB:      vodplace.UniformDisk(lib, 55, 2.0), // 2x library aggregate
		LinkCapMbps: vodplace.UniformLinks(g, 1000),     // 1 Gb/s links
	}

	fmt.Printf("backbone: 55 offices, %d links; library %.0f GB; %d requests\n",
		g.NumLinks(), lib.TotalSizeGB(), len(trace.Requests))

	// MIP scheme: weekly re-placement from 7-day history, 5% LRU cache.
	mip, err := sys.RunMIP(trace, vodplace.MIPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s peak %7.0f Mb/s  transfers %11.0f GB·hop  local %5.1f%%\n",
		"mip", mip.Sim.MaxLinkMbps, mip.Sim.TotalGBHop, 100*mip.Sim.LocalFrac)
	for _, p := range mip.Plans {
		fmt.Printf("  plan day %2d: objective %11.0f, gap %5.2f%%, violations %.2f%%\n",
			p.Day, p.Result.Objective, 100*p.Result.Gap, 100*p.Result.Violation.Max())
	}

	// Baseline: one random copy of each video, rest of disk as LRU cache,
	// nearest-replica oracle on misses.
	lru, err := sys.RunBaseline(trace, vodplace.BaselineOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s peak %7.0f Mb/s  transfers %11.0f GB·hop  local %5.1f%%\n",
		"random+lru", lru.MaxLinkMbps, lru.TotalGBHop, 100*lru.LocalFrac)

	fmt.Printf("\nMIP uses %.0f%% of the LRU peak bandwidth (paper: ~50%%) and %.0f%% of its transfer volume\n",
		100*mip.Sim.MaxLinkMbps/lru.MaxLinkMbps, 100*mip.Sim.TotalGBHop/lru.TotalGBHop)
}
