// cdn-scaling: how the EPF solver scales with library size — the Table III
// story. Solves placements for growing libraries on a Rocketfuel-sized
// network and prints time per solve, demonstrating near-linear scaling where
// general-purpose LP solvers blow up superlinearly.
//
//	go run ./examples/cdn-scaling [-max 8000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vodplace"
)

func main() {
	maxVideos := flag.Int("max", 8000, "largest library size")
	flag.Parse()

	g := vodplace.Tiscali()
	fmt.Printf("network: %d offices, %d links (Rocketfuel-Tiscali sized)\n\n", g.NumNodes(), g.NumLinks())
	fmt.Printf("%-10s %10s %12s %10s %8s\n", "videos", "time (s)", "objective", "gap", "copies/video")

	var prevTime float64
	for videos := *maxVideos / 8; videos <= *maxVideos; videos *= 2 {
		lib := vodplace.GenerateLibrary(vodplace.LibraryConfig{NumVideos: videos, Weeks: 2}, 1)
		trace := vodplace.GenerateTrace(lib, vodplace.TraceConfig{
			Days: 8, NumVHOs: g.NumNodes(), RequestsPerVideoPerDay: 1,
		}, 2)
		builder := &vodplace.DemandBuilder{
			G: g, Lib: lib,
			DiskGB:      vodplace.UniformDisk(lib, g.NumNodes(), 2.0),
			LinkCapMbps: vodplace.UniformLinks(g, 30*float64(videos)/float64(g.NumNodes())),
		}
		inst, err := builder.Instance(trace, 7)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := vodplace.SolveInteger(inst, vodplace.SolverOptions{Seed: 1, MaxPasses: 60})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		var copies int
		for _, c := range res.Sol.Copies() {
			copies += c
		}
		growth := ""
		if prevTime > 0 {
			growth = fmt.Sprintf("   (%.1fx time for 2x videos)", elapsed/prevTime)
		}
		fmt.Printf("%-10d %10.2f %12.0f %9.2f%% %8.2f%s\n",
			videos, elapsed, res.Objective, 100*res.Gap, float64(copies)/float64(videos), growth)
		prevTime = elapsed
	}
	fmt.Println("\nnear-2x time per 2x library = the linear scaling that lets the paper reach 1M videos")
}
