// feasibility: the Fig. 11 disk/bandwidth tradeoff — for each link capacity,
// find (by binary search over EPF solves) the minimum aggregate disk at
// which every request can be served, for uniform and for large/medium/small
// heterogeneous offices.
//
//	go run ./examples/feasibility [-videos 800]
package main

import (
	"flag"
	"fmt"
	"log"

	"vodplace"
)

func main() {
	videos := flag.Int("videos", 800, "library size")
	flag.Parse()

	const offices = 20
	g := vodplace.NewGraph("regional", offices)
	for i := 0; i < offices; i++ {
		if err := g.AddEdge(i, (i+1)%offices); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < offices; i += 4 {
		if err := g.AddEdge(i, (i+7)%offices); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.Build(); err != nil {
		log.Fatal(err)
	}

	lib := vodplace.GenerateLibrary(vodplace.LibraryConfig{NumVideos: *videos, Weeks: 2}, 1)
	trace := vodplace.GenerateTrace(lib, vodplace.TraceConfig{
		Days: 8, NumVHOs: offices, RequestsPerVideoPerDay: 3,
	}, 2)

	feasible := func(diskFactor, linkMbps float64, hetero bool) bool {
		disk := vodplace.UniformDisk(lib, offices, diskFactor)
		if hetero {
			disk = vodplace.HeterogeneousDisk(lib, offices, diskFactor)
		}
		builder := &vodplace.DemandBuilder{
			G: g, Lib: lib,
			DiskGB:      disk,
			LinkCapMbps: vodplace.UniformLinks(g, linkMbps),
		}
		inst, err := builder.Instance(trace, 7)
		if err != nil {
			return false
		}
		res, err := vodplace.Solve(inst, vodplace.SolverOptions{Seed: 1, MaxPasses: 60})
		if err != nil {
			return false
		}
		return res.Violation.Disk <= 0.02 && res.Violation.Link <= 0.02
	}

	minDisk := func(linkMbps float64, hetero bool) float64 {
		lo, hi := 1.02, 8.0
		if !feasible(hi, linkMbps, hetero) {
			return 0
		}
		if feasible(lo, linkMbps, hetero) {
			return lo
		}
		for i := 0; i < 6; i++ {
			mid := (lo + hi) / 2
			if feasible(mid, linkMbps, hetero) {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}

	fmt.Printf("%-16s %16s %16s\n", "link cap (Mb/s)", "uniform disk", "heterogeneous")
	for _, cap := range []float64{200, 400, 800, 1600} {
		u := minDisk(cap, false)
		h := minDisk(cap, true)
		fmt.Printf("%-16.0f %15.2fx %15.2fx\n", cap, u, h)
	}
	fmt.Println("\nmore bandwidth buys less disk; size-matched offices need less aggregate disk (Fig. 11)")
}
